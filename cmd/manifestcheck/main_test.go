package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"portsim/internal/telemetry"
)

func writeSample(t *testing.T, corrupt func(*telemetry.Manifest)) string {
	t.Helper()
	reg := telemetry.NewRegistry()
	c := telemetry.NewCampaign(reg, 2)
	c.CellDone(telemetry.CellSample{
		Machine: "baseline-1port", Workload: "compress", ConfigJSON: []byte(`{"ports":1}`),
		WallSeconds: 0.1, Cycles: 1000, Insts: 900,
		PortUtilization: 0.5, PortRejectRate: 0.1,
	})
	c.CellDone(telemetry.CellSample{
		Machine: "2-port", Workload: "compress", ConfigJSON: []byte(`{"ports":2}`),
		Failed: true, Error: "experiments: deadline exceeded",
		PortUtilization: -1, PortRejectRate: -1,
	})
	m := c.BuildManifest(telemetry.ManifestInfo{
		CreatedAt: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Command:   []string{"portbench", "-quick"},
		Seed:      42, Insts: 1000,
		Workloads: []string{"compress"},
		Parallel:  2, Experiments: []string{"T2"},
		Bundles: []string{"portbench-repro-2-port-compress.json"},
	})
	path := filepath.Join(t.TempDir(), "MANIFEST.json")
	if corrupt == nil {
		if err := telemetry.WriteManifest(path, m); err != nil {
			t.Fatal(err)
		}
		return path
	}
	corrupt(m)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidManifestSummarised(t *testing.T) {
	path := writeSample(t, nil)
	var b strings.Builder
	if err := run([]string{path}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"valid portsim-manifest/v1",
		"cells 2 (1 simulated, 0 memo hits, 0 store hits, 1 failed)",
		"FAILED compress @ 2-port: experiments: deadline exceeded",
		"repro bundle: portbench-repro-2-port-compress.json",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestQuietSuppressesSummary(t *testing.T) {
	path := writeSample(t, nil)
	var b strings.Builder
	if err := run([]string{"-q", path}, &b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("-q printed output: %q", b.String())
	}
}

func TestCorruptManifestRejected(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*telemetry.Manifest)
		wantErr string
	}{
		{"schema", func(m *telemetry.Manifest) { m.Schema = "v0" }, "schema"},
		{"totals", func(m *telemetry.Manifest) { m.Totals.SimCycles += 7 }, "disagree"},
		{"outcome", func(m *telemetry.Manifest) { m.Cells[0].Outcome = "maybe" }, "outcome"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeSample(t, tc.corrupt)
			var b strings.Builder
			err := run([]string{path}, &b)
			if err == nil {
				t.Fatal("corrupt manifest accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestMissingAndMalformedFiles(t *testing.T) {
	if err := run([]string{filepath.Join(t.TempDir(), "absent.json")}, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{bad}, &b); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := run(nil, &b); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("no-args error = %v", err)
	}
}
