// Command manifestcheck validates a portsim run manifest (the
// MANIFEST.json that portbench -manifest writes) and prints a one-screen
// summary: schema, campaign fingerprint, cell totals and any failed
// cells. It exits non-zero when the document is missing, unparsable, or
// internally inconsistent (wrong schema, totals that disagree with the
// cells, impossible outcomes), so CI can gate on it directly:
//
//	portbench -quick -manifest MANIFEST.json && manifestcheck MANIFEST.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"portsim/internal/cpustack"
	"portsim/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "manifestcheck:", err)
		os.Exit(1)
	}
}

// run validates every path given; split from main for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("manifestcheck", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "suppress the summary; only the exit status reports validity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("usage: manifestcheck [-q] MANIFEST.json...")
	}
	for _, path := range paths {
		m, err := telemetry.ReadManifest(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if *quiet {
			continue
		}
		summarise(out, path, m)
	}
	return nil
}

// summarise prints the manifest's headline facts.
func summarise(out io.Writer, path string, m *telemetry.Manifest) {
	fmt.Fprintf(out, "%s: valid %s\n", path, m.Schema)
	fmt.Fprintf(out, "  created %s by %s (%s/%s)\n", m.CreatedAt, m.GoVersion, m.GOOS, m.GOARCH)
	fmt.Fprintf(out, "  campaign %s: seed %d, %d insts, %d workloads, %d experiments, parallel %d\n",
		m.ConfigHash, m.Seed, m.Insts, len(m.Workloads), len(m.Experiments), m.Parallel)
	fmt.Fprintf(out, "  cells %d (%d simulated, %d memo hits, %d store hits, %d failed); %d cycles / %d insts in %.2fs\n",
		m.Totals.Cells, m.Totals.Cells-m.Totals.MemoHits-m.Totals.StoreHits-m.Totals.Failed,
		m.Totals.MemoHits, m.Totals.StoreHits,
		m.Totals.Failed, m.Totals.SimCycles, m.Totals.SimInsts, m.Totals.WallSeconds)
	if len(m.CPIStack) > 0 {
		// Render the aggregate CPI stack in taxonomy order, as percentages
		// of the simulated-cycle total the buckets partition.
		var total uint64
		for _, v := range m.CPIStack {
			total += v
		}
		fmt.Fprint(out, "  cpi stack:")
		for b := cpustack.Bucket(0); b < cpustack.NumBuckets; b++ {
			v, ok := m.CPIStack[b.String()]
			if !ok {
				continue
			}
			fmt.Fprintf(out, " %s %.1f%%", b, 100*float64(v)/float64(total))
		}
		fmt.Fprintln(out)
	}
	if s := m.Store; s != nil {
		fmt.Fprintf(out, "  store %s: %d restored, %d simulated, %d written, %d quarantined",
			s.Dir, s.Hits, s.Misses, s.Puts, s.Quarantined)
		if s.Resumed {
			fmt.Fprint(out, " (resumed)")
		}
		if s.Fault != "" {
			fmt.Fprintf(out, " (fault %s)", s.Fault)
		}
		if s.Degraded {
			fmt.Fprint(out, " (degraded)")
		}
		fmt.Fprintln(out)
	}
	for _, c := range m.Cells {
		if c.Outcome == telemetry.OutcomeFailed {
			fmt.Fprintf(out, "  FAILED %s @ %s: %s\n", c.Workload, c.Machine, c.Error)
		}
	}
	for _, b := range m.Bundles {
		fmt.Fprintf(out, "  repro bundle: %s\n", b)
	}
}
