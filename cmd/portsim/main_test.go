package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestRunDefaultsProduceSummary(t *testing.T) {
	out, err := runCLI(t, "-insts", "20000")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"machine", "IPC", "loads", "branches", "L1D", "loads by source"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "counters:") {
		t.Error("detailed counters printed without -stats")
	}
}

func TestRunStatsFlag(t *testing.T) {
	out, err := runCLI(t, "-insts", "5000", "-stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"counters:", "port.grants", "l1d.misses", "cycles"} {
		if !strings.Contains(out, frag) {
			t.Errorf("-stats output missing %q", frag)
		}
	}
}

func TestRunOverrides(t *testing.T) {
	out, err := runCLI(t, "-insts", "5000", "-ports", "2", "-sb", "4", "-width", "16", "-combining", "-linebufs", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 port(s) x 16B, sb=4, combining=true, line buffers=2") {
		t.Errorf("overrides not applied:\n%s", out)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-config", "nonexistent"},
		{"-workload", "doom", "-insts", "100"},
		{"-width", "7", "-insts", "100"},
		{"-config-json", "/nonexistent/path.json"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestDumpConfigRoundTrip(t *testing.T) {
	out, err := runCLI(t, "-config", "best-single", "-dump-config")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\"store_combining\": true") {
		t.Fatalf("dump missing combining flag:\n%s", out)
	}
	// The dumped JSON must load back through -config-json.
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, err := runCLI(t, "-config-json", path, "-insts", "5000")
	if err != nil {
		t.Fatalf("config-json round trip failed: %v", err)
	}
	if !strings.Contains(out2, "best-single") {
		t.Errorf("loaded config lost its name:\n%s", out2)
	}
}

func TestBankedPresetRuns(t *testing.T) {
	out, err := runCLI(t, "-config", "banked-4", "-insts", "5000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "banked-4") {
		t.Errorf("banked preset not reported:\n%s", out)
	}
}
