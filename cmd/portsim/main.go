// Command portsim runs one workload on one machine configuration and prints
// IPC plus the detailed statistics.
//
// Usage:
//
//	portsim [flags]
//
//	-config name    machine preset: baseline, dual-port, quad-port, best-single
//	-config-json f  load the machine from a JSON file instead of a preset
//	-dump-config    print the selected machine as JSON and exit
//	-workload name  workload: compress, eqntott, mp3d, raytrace, verilog, database, pmake
//	-insts n        committed-instruction budget
//	-seed n         workload generator seed
//	-ports n        override the port count
//	-width n        override the port width in bytes
//	-sb n           override the store-buffer depth
//	-combining      enable store combining
//	-linebufs n     override the load-all line-buffer count
//	-stats          print every counter, not just the summary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"portsim"
	"portsim/internal/config"
	"portsim/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "portsim:", err)
		os.Exit(1)
	}
}

// run executes the CLI against the given arguments, writing output to out.
// Split from main for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("portsim", flag.ContinueOnError)
	var (
		preset     = fs.String("config", "baseline", "machine preset: "+strings.Join(portsim.ConfigNames(), ", "))
		configJSON = fs.String("config-json", "", "load machine configuration from a JSON file")
		dumpConfig = fs.Bool("dump-config", false, "print the selected machine as JSON and exit")
		workload   = fs.String("workload", "compress", "workload: "+strings.Join(portsim.Workloads(), ", "))
		insts      = fs.Uint64("insts", 300_000, "committed-instruction budget")
		seed       = fs.Int64("seed", 42, "workload generator seed")
		ports      = fs.Int("ports", 0, "override port count (0: keep preset)")
		width      = fs.Int("width", 0, "override port width in bytes (0: keep preset)")
		sbDepth    = fs.Int("sb", 0, "override store-buffer depth (0: keep preset)")
		combining  = fs.Bool("combining", false, "enable store combining")
		lineBufs   = fs.Int("linebufs", -1, "override line-buffer count (-1: keep preset)")
		allStats   = fs.Bool("stats", false, "print every counter")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := loadConfig(*preset, *configJSON)
	if err != nil {
		return err
	}
	if *ports > 0 {
		cfg.Ports.Count = *ports
	}
	if *width > 0 {
		cfg.Ports.WidthBytes = *width
	}
	if *sbDepth > 0 {
		cfg.Ports.StoreBufferEntries = *sbDepth
	}
	if *combining {
		cfg.Ports.StoreCombining = true
	}
	if *lineBufs >= 0 {
		cfg.Ports.LineBuffers = *lineBufs
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if *dumpConfig {
		data, err := cfg.ToJSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}

	sim, err := portsim.New(cfg, *workload, *seed)
	if err != nil {
		return err
	}
	res, err := sim.Run(*insts)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "machine   %s (%d port(s) x %dB, sb=%d, combining=%v, line buffers=%d)\n",
		cfg.Name, cfg.Ports.Count, cfg.Ports.WidthBytes, cfg.Ports.StoreBufferEntries,
		cfg.Ports.StoreCombining, cfg.Ports.LineBuffers)
	fmt.Fprintf(out, "workload  %s, %d instructions (%.1f%% kernel), seed %d\n",
		*workload, res.Instructions, 100*float64(res.KernelInsts)/float64(res.Instructions), *seed)
	fmt.Fprintf(out, "cycles    %d\n", res.Cycles)
	fmt.Fprintf(out, "IPC       %.3f\n", res.IPC)
	fmt.Fprintf(out, "loads     %d (%.1f%% of insts), stores %d (%.1f%%)\n",
		res.Loads, 100*float64(res.Loads)/float64(res.Instructions),
		res.Stores, 100*float64(res.Stores)/float64(res.Instructions))
	fmt.Fprintf(out, "branches  %d, mispredicted %.2f%%\n",
		res.Branches, 100*float64(res.Mispredicts)/float64(res.Branches))
	s := res.Counters
	fmt.Fprintf(out, "L1D       %.2f%% miss rate; port busy %.1f%% (refills %.1f%% of grants)\n",
		100*float64(s.Get(stats.L1DMisses))/float64(s.Get(stats.L1DMisses)+s.Get(stats.L1DHits)),
		100*float64(s.Get(stats.PortGrants))/float64(s.Get(stats.PortCycles)),
		100*float64(s.Get(stats.PortRefillCycles))/max1(float64(s.Get(stats.PortGrants))))
	fmt.Fprintf(out, "loads by source: cache %d, line buffer %d, store buffer %d (LSQ forwards %d)\n",
		s.Get(stats.PortLoadsFromCache), s.Get(stats.PortLoadsFromLineBuffer),
		s.Get(stats.PortLoadsFromStoreBuffer), s.Get(stats.LSQForwards))
	if drains := s.Get(stats.PortSBDrains); drains > 0 {
		fmt.Fprintf(out, "store buffer: %.2f stores retired per port write\n",
			float64(s.Get(stats.PortSBInserts))/float64(drains))
	}
	if *allStats {
		fmt.Fprintln(out, "\ncounters:")
		names := s.Names()
		sort.Strings(names)
		for _, n := range names {
			// Dumping whatever exists is the point of -stats.
			fmt.Fprintf(out, "  %-32s %d\n", n, s.Get(n)) //portlint:ignore counterhygiene n ranges over s.Names()
		}
	}
	return nil
}

func loadConfig(preset, jsonPath string) (portsim.Config, error) {
	if jsonPath != "" {
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			return portsim.Config{}, err
		}
		return config.FromJSON(data)
	}
	cfg, ok := portsim.ConfigByName(preset)
	if !ok {
		return portsim.Config{}, fmt.Errorf("unknown preset %q (have %s)", preset, strings.Join(portsim.ConfigNames(), ", "))
	}
	return cfg, nil
}

func max1(f float64) float64 {
	if f < 1 {
		return 1
	}
	return f
}
