// Package sup is a fixture for the -suppressions audit: one valid
// directive, one missing its invariant comment, one stale (the ignored
// analyzer does not fire on the covered lines), and one naming an analyzer
// that does not exist.
package sup

import "time"

func valid() uint64 {
	return uint64(time.Now().UnixNano()) //portlint:ignore detrand fixture exercising a justified suppression
}

func missingReason() uint64 {
	return uint64(time.Now().UnixNano()) //portlint:ignore detrand
}

func stale() int {
	return 3 //portlint:ignore floatcmp nothing fires on this line, the audit must report it stale
}

func unknown() int {
	return 4 //portlint:ignore nosuchanalyzer typo'd analyzer names must be reported
}
