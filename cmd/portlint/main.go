// Command portlint runs the repository's custom static-analysis suite (see
// internal/lint and the README's "Static analysis & determinism guarantees"
// section) over the given package patterns and reports findings in the
// usual file:line:col format. It exits non-zero when any finding survives
// suppression, so CI can gate on it.
//
// Usage:
//
//	go run ./cmd/portlint ./...          # lint the whole module
//	go run ./cmd/portlint -list         # describe the analyzers
//	go run ./cmd/portlint -counters ./... # dump the written counter names
//
// Suppress a finding by appending a justification-bearing directive to the
// flagged line (or the line above):
//
//	offset := addr - chunk //portlint:ignore cyclemath chunk is addr masked down
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"portsim/internal/lint"
	"portsim/internal/lint/counterhygiene"
	"portsim/internal/lint/loader"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "portlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the tool; split from main for testability. It returns the
// process exit code: 0 clean, 1 findings.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("portlint", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "describe the analyzers and exit")
		counters = fs.Bool("counters", false, "dump every counter name written by the matched packages (for regenerating internal/stats/names.go)")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *list {
		for _, a := range lint.Suite() {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *counters {
		pkgs, err := loader.Load(".", patterns...)
		if err != nil {
			return 2, err
		}
		for _, name := range counterhygiene.WrittenNames(pkgs) {
			fmt.Fprintln(out, name)
		}
		return 0, nil
	}

	findings, err := lint.Run(".", patterns)
	if err != nil {
		return 2, err
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "portlint: %d finding(s)\n", len(findings))
		return 1, nil
	}
	return 0, nil
}
