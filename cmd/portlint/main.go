// Command portlint runs the repository's custom static-analysis suite (see
// internal/lint and the README's "Static analysis & determinism guarantees"
// section) over the given package patterns and reports findings in the
// usual file:line:col format. It exits non-zero when any finding survives
// suppression, so CI can gate on it.
//
// Usage:
//
//	go run ./cmd/portlint ./...          # lint the whole module
//	go run ./cmd/portlint -list         # describe the analyzers
//	go run ./cmd/portlint -counters ./... # dump the written counter names
//	go run ./cmd/portlint -json ./...    # portlint-diag/v1 JSON for CI
//	go run ./cmd/portlint -suppressions ./... # audit //portlint:ignore directives
//
// Suppress a finding by appending a justification-bearing directive to the
// flagged line (or the line above):
//
//	offset := addr - chunk //portlint:ignore cyclemath chunk is addr masked down
//
// The -suppressions audit fails (exit 1) when a directive names an unknown
// analyzer, is missing its invariant comment, or is stale — the ignored
// analyzer no longer fires on the covered lines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"portsim/internal/lint"
	"portsim/internal/lint/counterhygiene"
	"portsim/internal/lint/loader"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "portlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the tool; split from main for testability. It returns the
// process exit code: 0 clean, 1 findings.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("portlint", flag.ContinueOnError)
	var (
		list         = fs.Bool("list", false, "describe the analyzers and exit")
		counters     = fs.Bool("counters", false, "dump every counter name written by the matched packages (for regenerating internal/stats/names.go)")
		jsonOut      = fs.Bool("json", false, "emit portlint-diag/v1 JSON (including suppressed findings) instead of text")
		suppressions = fs.Bool("suppressions", false, "audit //portlint:ignore directives: list each with its invariant comment, fail on missing comments and stale directives")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *list {
		for _, a := range lint.Suite() {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *counters {
		pkgs, err := loader.Load(".", patterns...)
		if err != nil {
			return 2, err
		}
		for _, name := range counterhygiene.WrittenNames(pkgs) {
			fmt.Fprintln(out, name)
		}
		return 0, nil
	}

	if *suppressions {
		return auditSuppressions(out, patterns)
	}

	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		return 2, err
	}
	findings, err := lint.Analyze(pkgs)
	if err != nil {
		return 2, err
	}
	active := lint.Active(findings)

	if *jsonOut {
		root, err := filepath.Abs(".")
		if err != nil {
			return 2, err
		}
		data, err := lint.EncodeDiagnostics(root, findings)
		if err != nil {
			return 2, err
		}
		if _, err := out.Write(data); err != nil {
			return 2, err
		}
		if len(active) > 0 {
			return 1, nil
		}
		return 0, nil
	}

	for _, f := range active {
		fmt.Fprintln(out, f)
	}
	if len(active) > 0 {
		fmt.Fprintf(out, "portlint: %d finding(s)\n", len(active))
		return 1, nil
	}
	return 0, nil
}

// auditSuppressions implements the -suppressions mode: every directive is
// listed with its position, analyzers and invariant comment; a directive
// with no comment, an unknown analyzer name, or no suppressed finding left
// under it (stale) is a problem and fails the audit.
func auditSuppressions(out io.Writer, patterns []string) (int, error) {
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		return 2, err
	}
	findings, err := lint.Analyze(pkgs)
	if err != nil {
		return 2, err
	}
	root, err := filepath.Abs(".")
	if err != nil {
		return 2, err
	}

	known := make(map[string]bool)
	for _, a := range lint.Suite() {
		known[a.Name] = true
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	suppressedAt := make(map[key]bool)
	for _, f := range findings {
		if f.Suppressed {
			suppressedAt[key{f.Position.Filename, f.Position.Line, f.Analyzer}] = true
		}
	}

	dirs := lint.Directives(pkgs)
	problems := 0
	for _, d := range dirs {
		file := d.Position.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		for _, name := range d.Analyzers {
			var issues []string
			if !known[name] {
				issues = append(issues, "UNKNOWN-ANALYZER")
			}
			if d.Reason == "" {
				issues = append(issues, "MISSING-INVARIANT-COMMENT")
			}
			if known[name] &&
				!suppressedAt[key{d.Position.Filename, d.Position.Line, name}] &&
				!suppressedAt[key{d.Position.Filename, d.Position.Line + 1, name}] {
				issues = append(issues, "STALE")
			}
			status := "ok"
			if len(issues) > 0 {
				problems += len(issues)
				status = strings.Join(issues, ",")
			}
			fmt.Fprintf(out, "%s:%d: %s: %q %s\n", file, d.Position.Line, name, d.Reason, status)
		}
	}
	fmt.Fprintf(out, "portlint: %d suppression directive(s), %d problem(s)\n", len(dirs), problems)
	if problems > 0 {
		return 1, nil
	}
	return 0, nil
}
