package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, name := range []string{"configbounds", "counterhygiene", "cyclemath", "detrand", "floatcmp", "hotpath"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("linting cmd/portlint itself: exit %d\n%s", code, out.String())
	}
}

func TestFindingsExitOne(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"../../internal/lint/detrand/testdata/src/a"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("linting a fixture with planted violations: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("missing findings summary:\n%s", out.String())
	}
}
