package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"portsim/internal/lint"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, name := range []string{"configbounds", "counterhygiene", "cyclemath", "detrand", "escapegate", "floatcmp", "hotpath", "hotpathclosure", "maporder"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"./..."}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("linting cmd/portlint itself: exit %d\n%s", code, out.String())
	}
}

func TestFindingsExitOne(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"../../internal/lint/detrand/testdata/src/a"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("linting a fixture with planted violations: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("missing findings summary:\n%s", out.String())
	}
}

// TestJSONByteStable runs -json twice over the hotpathclosure fixture (which
// produces active, suppressed, and chain-bearing findings) and asserts the
// acceptance criterion: byte-identical output that validates against the
// portlint-diag/v1 schema.
func TestJSONByteStable(t *testing.T) {
	fixture := "../../internal/lint/hotpathclosure/testdata/src/a"
	var first, second bytes.Buffer
	code, err := run([]string{"-json", fixture}, &first)
	if err != nil {
		t.Fatalf("run(-json): %v", err)
	}
	if code != 1 {
		t.Fatalf("fixture has active findings; exit %d, want 1", code)
	}
	if _, err := run([]string{"-json", fixture}, &second); err != nil {
		t.Fatalf("run(-json) second pass: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("-json output differs across two consecutive runs:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}

	var diag lint.DiagFile
	if err := json.Unmarshal(first.Bytes(), &diag); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if diag.Format != lint.DiagFormat {
		t.Errorf("format = %q, want %q", diag.Format, lint.DiagFormat)
	}
	if len(diag.Findings) == 0 {
		t.Fatal("no findings in JSON output for a fixture with planted violations")
	}
	active, suppressed, chains := 0, 0, 0
	for _, f := range diag.Findings {
		if f.Analyzer == "" || f.File == "" || f.Message == "" || f.Line <= 0 || f.Col <= 0 {
			t.Errorf("finding missing required fields: %+v", f)
		}
		if f.Suppressed {
			suppressed++
		} else {
			active++
		}
		if len(f.Chain) > 0 {
			chains++
		}
	}
	if active != diag.Counts.Active || suppressed != diag.Counts.Suppressed {
		t.Errorf("counts = %+v, want active %d suppressed %d", diag.Counts, active, suppressed)
	}
	if suppressed == 0 {
		t.Error("fixture's //portlint:ignore hotpathclosure line should appear as a suppressed finding")
	}
	if chains == 0 {
		t.Error("closure findings should carry the root→sink chain")
	}
}

// TestSuppressionsAudit checks the -suppressions mode against a fixture with
// one valid, one comment-less, one stale, and one unknown-analyzer
// directive.
func TestSuppressionsAudit(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-suppressions", "./testdata/src/sup"}, &out)
	if err != nil {
		t.Fatalf("run(-suppressions): %v", err)
	}
	if code != 1 {
		t.Fatalf("audit of a fixture with bad directives: exit %d, want 1\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"MISSING-INVARIANT-COMMENT",
		"STALE",
		"UNKNOWN-ANALYZER",
		"4 suppression directive(s), 3 problem(s)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("audit output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "fixture exercising a justified suppression\" ok") {
		t.Errorf("valid directive not reported ok:\n%s", text)
	}
}

// TestSuppressionsAuditCleanRepo mirrors the CI gate: every directive in the
// repository carries an invariant comment and still fires.
func TestSuppressionsAuditCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo audit is slow")
	}
	var out bytes.Buffer
	code, err := run([]string{"-suppressions", "../../..."}, &out)
	if err != nil {
		t.Fatalf("run(-suppressions ../../...): %v", err)
	}
	if code != 0 {
		t.Fatalf("repository suppression audit failed:\n%s", out.String())
	}
}
