// Command tracegen generates, inspects, and summarises binary instruction
// traces produced by the workload generators.
//
// Usage:
//
//	tracegen gen     -workload name -insts n -seed n -o trace.bin
//	tracegen dump    -i trace.bin [-n count]
//	tracegen stat    -i trace.bin
//	tracegen profile -i trace.bin            (locality analytics)
//	tracegen profile -workload name -insts n (profile a generator directly)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"portsim/internal/isa"
	"portsim/internal/profile"
	"portsim/internal/stats"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	if err := run(os.Args[1], os.Args[2:], os.Stdout); err != nil {
		if err == errUnknownCommand {
			usage()
		}
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// errUnknownCommand reports an unrecognised subcommand.
var errUnknownCommand = fmt.Errorf("unknown subcommand")

// run dispatches a subcommand; split from main for testability.
func run(cmd string, args []string, out io.Writer) error {
	switch cmd {
	case "gen":
		return genCmd(args, out)
	case "dump":
		return dumpCmd(args, out)
	case "stat":
		return statCmd(args, out)
	case "profile":
		return profileCmd(args, out)
	}
	return errUnknownCommand
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracegen gen     -workload name -insts n -seed n -o trace.bin
  tracegen dump    -i trace.bin [-n count]
  tracegen stat    -i trace.bin
  tracegen profile -i trace.bin | -workload name -insts n -seed n`)
	os.Exit(2)
}

func profileCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	in := fs.String("i", "", "input trace (empty: profile a generator)")
	name := fs.String("workload", "compress", "workload to profile when no trace given")
	insts := fs.Uint64("insts", 200_000, "instructions to profile from a generator")
	seed := fs.Int64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a := profile.New(profile.Options{})
	var title string
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r := trace.NewReader(f)
		a.Consume(r, 0)
		if err := r.Err(); err != nil {
			return err
		}
		title = *in
	} else {
		prof, ok := workload.ByName(*name)
		if !ok {
			return fmt.Errorf("unknown workload %q (have %v)", *name, workload.Names())
		}
		gen, err := workload.New(prof, *seed)
		if err != nil {
			return err
		}
		a.Consume(trace.NewLimit(gen, *insts), 0)
		title = fmt.Sprintf("%s (%d instructions, seed %d)", *name, *insts, *seed)
	}
	fmt.Fprint(out, a.Report(title))
	return nil
}

func genCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("workload", "compress", "workload profile name")
	insts := fs.Uint64("insts", 100_000, "instructions to generate")
	seed := fs.Int64("seed", 42, "generator seed")
	outPath := fs.String("o", "trace.bin", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prof, ok := workload.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown workload %q (have %v)", *name, workload.Names())
	}
	gen, err := workload.New(prof, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	var in isa.Inst
	stream := trace.NewLimit(gen, *insts)
	for stream.Next(&in) {
		if err := w.Write(&in); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d instructions to %s (%d bytes, %.2f bytes/inst)\n",
		w.Count(), *outPath, info.Size(), float64(info.Size())/float64(w.Count()))
	return f.Close()
}

func dumpCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("i", "trace.bin", "input trace")
	n := fs.Int("n", 50, "instructions to print (0: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var inst isa.Inst
	count := 0
	for r.Next(&inst) {
		fmt.Fprintln(out, inst.String())
		count++
		if *n > 0 && count >= *n {
			break
		}
	}
	return r.Err()
}

func statCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "trace.bin", "input trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var inst isa.Inst
	var total, kernel, taken uint64
	classes := map[isa.Class]uint64{}
	for r.Next(&inst) {
		total++
		classes[inst.Class]++
		if inst.Kernel {
			kernel++
		}
		if inst.Class == isa.Branch && inst.Taken {
			taken++
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("empty trace")
	}
	t := stats.NewTable(fmt.Sprintf("%s: %d instructions (%.1f%% kernel)",
		*in, total, 100*float64(kernel)/float64(total)),
		"class", "count", "share")
	for c := isa.Class(0); int(c) < isa.NumClasses; c++ {
		if classes[c] == 0 {
			continue
		}
		t.AddRow(c.String(), fmt.Sprint(classes[c]), stats.Percent(float64(classes[c])/float64(total)))
	}
	fmt.Fprint(out, t.String())
	if b := classes[isa.Branch]; b > 0 {
		fmt.Fprintf(out, "conditional branches taken: %s\n", stats.Percent(float64(taken)/float64(b)))
	}
	return nil
}
