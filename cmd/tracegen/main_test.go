package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func runTG(t *testing.T, cmd string, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(cmd, args, &b)
	return b.String(), err
}

func TestGenStatDumpProfilePipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.bin")
	out, err := runTG(t, "gen", "-workload", "eqntott", "-insts", "20000", "-seed", "7", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote 20000 instructions") {
		t.Fatalf("gen output: %s", out)
	}

	out, err = runTG(t, "stat", "-i", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"20000 instructions", "load", "branch", "conditional branches taken"} {
		if !strings.Contains(out, frag) {
			t.Errorf("stat missing %q:\n%s", frag, out)
		}
	}

	out, err = runTG(t, "dump", "-i", path, "-n", "10")
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out, "\n"); lines != 10 {
		t.Errorf("dump printed %d lines, want 10", lines)
	}

	out, err = runTG(t, "profile", "-i", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"adjacency @32B", "footprint", "instruction mix"} {
		if !strings.Contains(out, frag) {
			t.Errorf("profile missing %q:\n%s", frag, out)
		}
	}
}

func TestProfileDirectFromGenerator(t *testing.T) {
	out, err := runTG(t, "profile", "-workload", "pmake", "-insts", "20000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pmake (20000 instructions") {
		t.Errorf("profile title wrong:\n%s", out)
	}
	if !strings.Contains(out, "kernel fraction") {
		t.Error("profile missing kernel fraction")
	}
}

func TestErrors(t *testing.T) {
	if _, err := runTG(t, "frobnicate"); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if _, err := runTG(t, "gen", "-workload", "doom"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := runTG(t, "stat", "-i", "/nonexistent"); err == nil {
		t.Error("missing trace accepted")
	}
	if _, err := runTG(t, "profile", "-workload", "doom"); err == nil {
		t.Error("unknown workload accepted by profile")
	}
	// A garbage file must be rejected by stat and profile.
	path := filepath.Join(t.TempDir(), "garbage.bin")
	if err := writeFile(path, "this is not a trace"); err != nil {
		t.Fatal(err)
	}
	if _, err := runTG(t, "stat", "-i", path); err == nil {
		t.Error("garbage trace accepted by stat")
	}
	if _, err := runTG(t, "profile", "-i", path); err == nil {
		t.Error("garbage trace accepted by profile")
	}
}
