// Command portbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index) and prints them as plain-
// text tables. EXPERIMENTS.md is produced from this command's output.
//
// Usage:
//
//	portbench [-quick] [-insts n] [-seed n] [-only T1,F6,...] [-csv]
//	          [-parallel n] [-arena-budget size] [-progress[=rich|plain]] [-flightrec]
//	          [-inject mode:workload[:after]] [-repro-dir dir]
//	          [-store dir] [-resume] [-inject-store mode[:rate]]
//	          [-cpistack] [-listen addr] [-manifest path] [-hold d]
//	          [-trace-out path] [-trace-cell workload@machine] [-trace-depth n]
//	portbench -repro bundle.json
//
// Simulations run on a bounded worker pool (-parallel, default GOMAXPROCS);
// results are merged in submission order, so every table is byte-identical
// to a -parallel 1 run.
//
// Experiment cells are crash-contained: a failed cell (panic, deadline,
// watchdog stall) fails its experiment but the suite continues, rendering
// every healthy table. Each distinct cell failure is reported once with its
// machine configuration, stack and flight-recorder tail, and a JSON repro
// bundle is written next to the run (-repro-dir); `portbench -repro` replays
// a bundle deterministically with the flight recorder armed.
//
// Durable campaigns (-store, see EXPERIMENTS.md "Durable campaigns"):
// every finished cell — result or deterministic failure — is written
// crash-safely to a content-addressed store, so a killed campaign rerun
// with the same -store restores its finished cells instead of
// re-simulating them. Tables are byte-identical with the store on, off,
// cold or warm; corrupt entries are quarantined (*.corrupt) and
// re-simulated, and a broken store degrades to store-less operation
// rather than failing the run. -inject-store drives those paths on
// purpose for robustness testing.
//
// Trace arenas (on by default, see DESIGN.md "Trace arenas"): each
// (workload, seed) dynamic trace is generated once into an immutable
// in-memory arena and replayed by every cell that needs it, bounded by
// -arena-budget (default 512MiB; off/0 disables). Cells that do not fit
// fall back to live generation. Tables are byte-identical with arenas
// on, off, or partially fallen back, serial or parallel.
//
// Observability (all opt-in, see README.md "Observability"): -listen
// serves live campaign metrics over HTTP (/metrics Prometheus text,
// /vars JSON, /healthz, /campaign live campaign status, /debug/pprof
// runtime profiles with per-cell labels); -manifest writes a
// portsim-manifest/v1 run manifest; -trace-out captures one cell's
// pipeline events as a Chrome trace-event JSON for Perfetto; -cpistack
// arms per-cell cycle accounting (CPI stacks: a table after the suite,
// cpi_stack sections in the manifest, portsim_cpi_* series on /metrics,
// a cpi counter track in the Perfetto trace). Tables are byte-identical
// whether any of these are on or off.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"portsim/internal/benchfmt"
	"portsim/internal/cellstore"
	"portsim/internal/diag"
	"portsim/internal/experiments"
	"portsim/internal/stats"
	"portsim/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "portbench:", err)
		os.Exit(1)
	}
}

// run executes the experiment suite; split from main for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("portbench", flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "reduced workload set and instruction budget")
		insts     = fs.Uint64("insts", 0, "override the committed-instruction budget per run")
		seed      = fs.Int64("seed", 42, "workload generator seed")
		only      = fs.String("only", "", "comma-separated experiment ids to run (default: all)")
		csv       = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		parallel  = fs.Int("parallel", 0, "concurrent simulations (<=0: GOMAXPROCS); tables are byte-identical at any setting")
		arena     = fs.String("arena-budget", "", "shared trace-arena byte budget (e.g. 256MiB, 1g; off/0 disables); tables are byte-identical at any setting")
		flightrec = fs.Bool("flightrec", false, "arm the per-cell pipeline flight recorder (failure forensics)")
		noSkip    = fs.Bool("no-skip", false, "step every simulated cycle instead of event-driven fast-forward; tables are byte-identical either way")
		inject    = fs.String("inject", "", "poison one workload's cells: mode:workload[:after] with mode panic|badinst|wedge")
		repro     = fs.String("repro", "", "replay a repro bundle file instead of running the suite")
		reproDir  = fs.String("repro-dir", ".", "directory for repro bundles written on cell failure")

		storeDir    = fs.String("store", "", "durable cell store directory: finished cells are written crash-safely and restored by later runs")
		resume      = fs.Bool("resume", false, "resume a previous campaign from -store (the store directory must already exist)")
		injectStore = fs.String("inject-store", "", "inject store failures: mode[:rate] with mode torn|corrupt|ioerr, rate in (0,1]")

		cpistack = fs.Bool("cpistack", false, "collect per-cell cycle-accounting CPI stacks: table after the suite, cpi_stack in -manifest, portsim_cpi_* on /metrics; tables are byte-identical either way")

		listen     = fs.String("listen", "", "serve live campaign metrics over HTTP on this address (/metrics, /vars, /healthz, /campaign, /debug/pprof)")
		manifest   = fs.String("manifest", "", "write a portsim-manifest/v1 run manifest (JSON) to this path")
		hold       = fs.Duration("hold", 0, "keep the -listen endpoint up this long after the suite finishes")
		traceOut   = fs.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto) of one cell to this path")
		traceCell  = fs.String("trace-cell", "", "cell to trace as workload@machine (default: first workload on the baseline machine)")
		traceDepth = fs.Int("trace-depth", 0, "trace event-ring depth (default 1Mi events)")

		cpuprofile   = fs.String("cpuprofile", "", "write a CPU profile of the suite to this file")
		memprofile   = fs.String("memprofile", "", "write a post-GC heap profile to this file at exit")
		allocprofile = fs.String("allocprofile", "", "write an allocation profile (every malloc since start) to this file at exit")
		benchjson    = fs.String("benchjson", "", "write machine-readable throughput json: a .json filename, or a directory for BENCH_<date>.json")
	)
	var progress progressMode
	fs.Var(&progress, "progress", "report completed cells on stderr: rich status line, or plain for one line per cell")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *repro != "" {
		return runRepro(*repro, out)
	}

	spec := experiments.DefaultSpec()
	if *quick {
		spec = experiments.QuickSpec()
	}
	if *insts > 0 {
		spec.Insts = *insts
	}
	spec.Seed = *seed
	spec.Parallel = *parallel
	spec.FlightRecorder = *flightrec
	spec.NoSkip = *noSkip
	spec.CPIStack = *cpistack
	budget, err := experiments.ParseArenaBudget(*arena)
	if err != nil {
		return err
	}
	spec.ArenaBudget = budget
	if *inject != "" {
		fault, err := experiments.ParseFault(*inject)
		if err != nil {
			return err
		}
		spec.Fault = fault
	}
	var store *cellstore.Store
	var storeFault *cellstore.Fault
	if *storeDir == "" {
		if *resume {
			return fmt.Errorf("-resume needs -store")
		}
		if *injectStore != "" {
			return fmt.Errorf("-inject-store needs -store")
		}
	} else {
		if *injectStore != "" {
			f, err := cellstore.ParseFault(*injectStore)
			if err != nil {
				return err
			}
			storeFault = f
		}
		if *resume {
			if _, err := os.Stat(*storeDir); err != nil {
				return fmt.Errorf("-resume: store %s: %w (nothing to resume; drop -resume to start one)", *storeDir, err)
			}
		}
		st, err := cellstore.Open(*storeDir, cellstore.Options{
			Fault: storeFault,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, "portbench: "+format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		store = st
		spec.Store = store
	}
	if *traceOut != "" {
		w, m, err := parseTraceCell(*traceCell, spec)
		if err != nil {
			return err
		}
		spec.Trace = &experiments.TraceSpec{Workload: w, Machine: m, Depth: *traceDepth}
	} else if *traceCell != "" || *traceDepth != 0 {
		return fmt.Errorf("-trace-cell and -trace-depth need -trace-out")
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	prof, err := startProfiles(*cpuprofile, *memprofile, *allocprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := prof.stop(); err != nil {
			fmt.Fprintln(os.Stderr, "portbench: profile:", err)
		}
	}()

	fmt.Fprintf(out, "portbench: %d workloads x %d instructions, seed %d\n\n",
		len(spec.Workloads), spec.Insts, spec.Seed)
	runner := experiments.NewRunner(spec)
	bench := newBenchRecorder(runner)
	suiteMallocs := mallocs()
	start := time.Now()

	type experiment struct {
		id  string
		run func() (*stats.Table, error)
	}
	suite := []experiment{
		{"T1", func() (*stats.Table, error) { return experiments.T1Baseline(), nil }},
		{"T2", func() (*stats.Table, error) { _, t, err := experiments.T2Characterisation(runner); return t, err }},
		{"F1", func() (*stats.Table, error) { _, t, err := experiments.F1PortCount(runner); return t, err }},
		{"F2", func() (*stats.Table, error) { _, t, err := experiments.F2BufferDepth(runner); return t, err }},
		{"F3", func() (*stats.Table, error) { _, t, err := experiments.F3PortWidth(runner); return t, err }},
		{"F4", func() (*stats.Table, error) { _, t, err := experiments.F4LineBuffers(runner); return t, err }},
		{"F5", func() (*stats.Table, error) { _, t, err := experiments.F5StoreCombining(runner); return t, err }},
		{"F6", func() (*stats.Table, error) { _, t, err := experiments.F6Headline(runner); return t, err }},
		{"T3", func() (*stats.Table, error) { _, t, err := experiments.T3PortUtilisation(runner); return t, err }},
		{"T4", func() (*stats.Table, error) { _, t, err := experiments.T4GrantDistribution(runner); return t, err }},
		{"F7", func() (*stats.Table, error) { _, t, err := experiments.F7KernelIntensity(runner); return t, err }},
		{"A1", func() (*stats.Table, error) { _, t, err := experiments.A1Ablation(runner); return t, err }},
		{"A2", func() (*stats.Table, error) { _, t, err := experiments.A2Banking(runner); return t, err }},
		{"A3", func() (*stats.Table, error) { _, t, err := experiments.A3Prefetch(runner); return t, err }},
		{"A4", func() (*stats.Table, error) { _, t, err := experiments.A4MemSpeculation(runner); return t, err }},
		{"A5", func() (*stats.Table, error) { _, t, err := experiments.A5WritePolicy(runner); return t, err }},
		{"A6", func() (*stats.Table, error) { _, t, err := experiments.A6Multiprogramming(runner); return t, err }},
		{"A7", func() (*stats.Table, error) { _, t, err := experiments.A7ArbitrationPolicy(runner); return t, err }},
		{"A8", func() (*stats.Table, error) { _, t, err := experiments.A8WrongPathFetch(runner); return t, err }},
	}

	// Telemetry is strictly opt-in: with every flag off the runner's
	// observer slot stays nil and no campaign state exists at all.
	var sink *telemetrySink
	if progress != progressOff || *listen != "" || *manifest != "" || *traceOut != "" || *cpistack {
		ids := make([]string, 0, len(suite))
		for _, e := range suite {
			ids = append(ids, e.id)
		}
		s, err := newTelemetrySink(runner, spec, plannedCells(spec, ids, want), progress, *listen, store)
		if err != nil {
			return err
		}
		sink = s
		defer sink.close(*hold)
	}

	ran := 0
	var failed []string
	var failures []error
	var ranIDs []string
	for _, e := range suite {
		if !want(e.id) {
			continue
		}
		ranIDs = append(ranIDs, e.id)
		runner.SetExperiment(e.id)
		bench.begin()
		table, err := e.run()
		bench.end(e.id)
		if err != nil {
			// One poisoned cell must not abandon the campaign: record the
			// failure, keep rendering every healthy table, and report the
			// forensics (with repro bundles) after the suite.
			failed = append(failed, e.id)
			failures = append(failures, fmt.Errorf("%s: %w", e.id, err))
			fmt.Fprintf(out, "%s: FAILED: %v\n\n", e.id, err)
			ran++
			continue
		}
		if *csv {
			fmt.Fprintln(out, table.CSV())
		} else {
			fmt.Fprintln(out, table.String())
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches -only=%q", *only)
	}
	if sink != nil {
		sink.printer.finish()
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "total wall time: %s\n", elapsed.Round(time.Millisecond))
	if runner.SimulatedCycles() > 0 {
		// A near-zero elapsed time (a tiny -insts spec on a fast host)
		// would print +Inf or absurd throughput; clamp the divisor to a
		// microsecond so the report stays finite and honest about the
		// timer's resolution.
		const minSecs = 1e-6
		secs := elapsed.Seconds()
		if secs < minSecs {
			secs = minSecs
		}
		fmt.Fprintf(out, "simulated %d cycles / %d instructions (%.2f Mcycles/s, %.2f Minsts/s host throughput)\n",
			runner.SimulatedCycles(), runner.SimulatedInstructions(),
			float64(runner.SimulatedCycles())/secs/1e6,
			float64(runner.SimulatedInstructions())/secs/1e6)
	}
	if store != nil {
		st := store.Stats()
		line := fmt.Sprintf("store: %d restored, %d simulated, %d written", st.Hits, st.Misses, st.Puts)
		if st.Quarantined > 0 {
			line += fmt.Sprintf(", %d quarantined", st.Quarantined)
		}
		if st.Degraded {
			line += " (degraded: finished store-less)"
		}
		fmt.Fprintln(out, line)
	}
	if ast, ok := runner.ArenaStats(); ok {
		line := fmt.Sprintf("arenas: %d built, %d replays, %d resident (%.1f MiB of %.0f MiB budget)",
			ast.Builds, ast.Hits, ast.Count,
			float64(ast.Bytes)/(1<<20), float64(ast.Budget)/(1<<20))
		if ast.Fallbacks > 0 {
			line += fmt.Sprintf(", %d fallbacks", ast.Fallbacks)
		}
		if ast.Evictions > 0 {
			line += fmt.Sprintf(", %d evictions", ast.Evictions)
		}
		fmt.Fprintln(out, line)
	}
	benchPathUsed := ""
	if *benchjson != "" {
		now := time.Now()
		path := benchPath(*benchjson, now)
		report := bench.report(spec, runner.Parallel(), elapsed, mallocs()-suiteMallocs, now) //portlint:ignore cyclemath runtime.MemStats.Mallocs is monotonic
		if err := benchfmt.Write(path, report); err != nil {
			return err
		}
		fmt.Fprintf(out, "bench json written: %s\n", path)
		benchPathUsed = path
	}
	if *traceOut != "" {
		if err := writeTrace(out, runner, sink, *traceOut); err != nil {
			return err
		}
	}
	cells := 0
	var bundles []string
	if len(failures) > 0 {
		cells, bundles = reportFailures(out, failures, spec, *reproDir)
	}
	if *manifest != "" {
		info := telemetry.ManifestInfo{
			CreatedAt:   time.Now(),
			Command:     append([]string{"portbench"}, args...),
			Seed:        spec.Seed,
			Insts:       spec.Insts,
			Workloads:   spec.Workloads,
			Parallel:    runner.Parallel(),
			Experiments: ranIDs,
			BenchJSON:   benchPathUsed,
			TraceOut:    *traceOut,
			Bundles:     bundles,
			WallSeconds: elapsed.Seconds(),
		}
		if store != nil {
			st := store.Stats()
			fault := ""
			if storeFault != nil {
				fault = storeFault.String()
			}
			info.Store = &telemetry.ManifestStore{
				Dir:         *storeDir,
				Resumed:     *resume,
				Fault:       fault,
				Hits:        st.Hits,
				Misses:      st.Misses,
				Puts:        st.Puts,
				PutFailures: st.PutFailures,
				Quarantined: st.Quarantined,
				Degraded:    st.Degraded,
			}
		}
		if ast, ok := runner.ArenaStats(); ok {
			info.Arenas = &telemetry.ManifestArenas{
				BudgetBytes: ast.Budget,
				Count:       ast.Count,
				Bytes:       ast.Bytes,
				Builds:      ast.Builds,
				Hits:        ast.Hits,
				Fallbacks:   ast.Fallbacks,
				Evictions:   ast.Evictions,
			}
		}
		if err := telemetry.WriteManifest(*manifest, sink.camp.BuildManifest(info)); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		fmt.Fprintf(out, "manifest written: %s\n", *manifest)
	}
	// The CPI table is deliberately the last output: byte-identity checks
	// between -cpistack on and off strip it with one sed range anchored on
	// the "CPI stacks" title line.
	if *cpistack {
		table := sink.cpiTable()
		if *csv {
			fmt.Fprintln(out, table.CSV())
		} else {
			fmt.Fprintln(out, table.String())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d experiment(s) failed (%s) with %d distinct cell failure(s)",
			len(failed), strings.Join(failed, ","), cells)
	}
	return nil
}

// reportFailures prints each distinct cell failure's forensic detail and
// writes its repro bundle, returning the distinct-cell count and the
// bundle paths written (for the run manifest). The memo cache shares one
// CellError across every experiment that touched the dead cell, so
// deduplication is by CellError identity.
func reportFailures(out io.Writer, failures []error, spec experiments.Spec, reproDir string) (int, []string) {
	var distinct []*experiments.CellError
	seen := map[*experiments.CellError]bool{}
	for _, err := range failures {
		for _, ce := range experiments.CellErrors(err) {
			if !seen[ce] {
				seen[ce] = true
				distinct = append(distinct, ce)
			}
		}
	}
	var written []string
	for _, ce := range distinct {
		fmt.Fprintf(out, "\n%s\n", ce.Detail())
		name := fmt.Sprintf("portbench-repro-%s-%s.json", sanitizeName(ce.Machine.Name), sanitizeName(ce.Workload))
		path := filepath.Join(reproDir, name)
		bundle, err := experiments.BundleFor(ce, spec).Encode()
		if err != nil {
			fmt.Fprintf(out, "repro bundle not written: %v\n", err)
			continue
		}
		if err := os.WriteFile(path, bundle, 0o644); err != nil {
			fmt.Fprintf(out, "repro bundle not written: %v\n", err)
			continue
		}
		fmt.Fprintf(out, "repro bundle written: %s (replay with: portbench -repro %s)\n", path, path)
		written = append(written, path)
	}
	return len(distinct), written
}

// sanitizeName makes a machine or workload name safe as a filename chunk.
func sanitizeName(s string) string {
	if s == "" {
		return "unknown"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
}

// runRepro replays a repro bundle with the flight recorder armed and prints
// a deterministic report: the failure headline (with the stall diagnosis
// when the watchdog fired) and the flight-recorder tail. Stack traces are
// deliberately omitted — they carry goroutine ids and addresses that vary
// run to run, and the original failure report already included one. The
// command exits non-zero when the failure reproduces.
func runRepro(path string, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	bundle, err := experiments.ParseBundle(data)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replaying %s: %s on %s (seed %d, %d insts)\n",
		path, bundle.Workload, bundle.Machine.Name, bundle.Seed, bundle.Insts)
	res, err := bundle.Replay()
	if err != nil {
		for _, ce := range experiments.CellErrors(err) {
			fmt.Fprintf(out, "\nCELL ERROR: %s\n%s\n", ce.Error(), diag.FormatEvents(ce.Events))
		}
		return fmt.Errorf("failure reproduced: %w", err)
	}
	fmt.Fprintf(out, "did not reproduce: completed %d instructions in %d cycles (IPC %.3f)\n",
		res.Instructions, res.Cycles, res.IPC)
	return nil
}
