// Command portbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index) and prints them as plain-
// text tables. EXPERIMENTS.md is produced from this command's output.
//
// Usage:
//
//	portbench [-quick] [-insts n] [-seed n] [-only T1,F6,...] [-csv]
//	          [-parallel n] [-progress]
//
// Simulations run on a bounded worker pool (-parallel, default GOMAXPROCS);
// results are merged in submission order, so every table is byte-identical
// to a -parallel 1 run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"portsim/internal/experiments"
	"portsim/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "portbench:", err)
		os.Exit(1)
	}
}

// run executes the experiment suite; split from main for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("portbench", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "reduced workload set and instruction budget")
		insts    = fs.Uint64("insts", 0, "override the committed-instruction budget per run")
		seed     = fs.Int64("seed", 42, "workload generator seed")
		only     = fs.String("only", "", "comma-separated experiment ids to run (default: all)")
		csv      = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		parallel = fs.Int("parallel", 0, "concurrent simulations (<=0: GOMAXPROCS); tables are byte-identical at any setting")
		progress = fs.Bool("progress", false, "report completed simulation cells on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := experiments.DefaultSpec()
	if *quick {
		spec = experiments.QuickSpec()
	}
	if *insts > 0 {
		spec.Insts = *insts
	}
	spec.Seed = *seed
	spec.Parallel = *parallel

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	fmt.Fprintf(out, "portbench: %d workloads x %d instructions, seed %d\n\n",
		len(spec.Workloads), spec.Insts, spec.Seed)
	runner := experiments.NewRunner(spec)
	if *progress {
		runner.SetProgress(func(done int) {
			fmt.Fprintf(os.Stderr, "\rportbench: %d cells done", done)
		})
	}
	start := time.Now()

	type experiment struct {
		id  string
		run func() (*stats.Table, error)
	}
	suite := []experiment{
		{"T1", func() (*stats.Table, error) { return experiments.T1Baseline(), nil }},
		{"T2", func() (*stats.Table, error) { _, t, err := experiments.T2Characterisation(runner); return t, err }},
		{"F1", func() (*stats.Table, error) { _, t, err := experiments.F1PortCount(runner); return t, err }},
		{"F2", func() (*stats.Table, error) { _, t, err := experiments.F2BufferDepth(runner); return t, err }},
		{"F3", func() (*stats.Table, error) { _, t, err := experiments.F3PortWidth(runner); return t, err }},
		{"F4", func() (*stats.Table, error) { _, t, err := experiments.F4LineBuffers(runner); return t, err }},
		{"F5", func() (*stats.Table, error) { _, t, err := experiments.F5StoreCombining(runner); return t, err }},
		{"F6", func() (*stats.Table, error) { _, t, err := experiments.F6Headline(runner); return t, err }},
		{"T3", func() (*stats.Table, error) { _, t, err := experiments.T3PortUtilisation(runner); return t, err }},
		{"T4", func() (*stats.Table, error) { _, t, err := experiments.T4GrantDistribution(runner); return t, err }},
		{"F7", func() (*stats.Table, error) { _, t, err := experiments.F7KernelIntensity(runner); return t, err }},
		{"A1", func() (*stats.Table, error) { _, t, err := experiments.A1Ablation(runner); return t, err }},
		{"A2", func() (*stats.Table, error) { _, t, err := experiments.A2Banking(runner); return t, err }},
		{"A3", func() (*stats.Table, error) { _, t, err := experiments.A3Prefetch(runner); return t, err }},
		{"A4", func() (*stats.Table, error) { _, t, err := experiments.A4MemSpeculation(runner); return t, err }},
		{"A5", func() (*stats.Table, error) { _, t, err := experiments.A5WritePolicy(runner); return t, err }},
		{"A6", func() (*stats.Table, error) { _, t, err := experiments.A6Multiprogramming(runner); return t, err }},
		{"A7", func() (*stats.Table, error) { _, t, err := experiments.A7ArbitrationPolicy(runner); return t, err }},
		{"A8", func() (*stats.Table, error) { _, t, err := experiments.A8WrongPathFetch(runner); return t, err }},
	}
	ran := 0
	for _, e := range suite {
		if !want(e.id) {
			continue
		}
		table, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if *csv {
			fmt.Fprintln(out, table.CSV())
		} else {
			fmt.Fprintln(out, table.String())
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches -only=%q", *only)
	}
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "total wall time: %s\n", elapsed.Round(time.Millisecond))
	if runner.SimulatedCycles() > 0 {
		// A near-zero elapsed time (a tiny -insts spec on a fast host)
		// would print +Inf or absurd throughput; clamp the divisor to a
		// microsecond so the report stays finite and honest about the
		// timer's resolution.
		const minSecs = 1e-6
		secs := elapsed.Seconds()
		if secs < minSecs {
			secs = minSecs
		}
		fmt.Fprintf(out, "simulated %d cycles / %d instructions (%.2f Mcycles/s, %.2f Minsts/s host throughput)\n",
			runner.SimulatedCycles(), runner.SimulatedInstructions(),
			float64(runner.SimulatedCycles())/secs/1e6,
			float64(runner.SimulatedInstructions())/secs/1e6)
	}
	return nil
}
