package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"portsim/internal/telemetry"
)

// stripTelemetryFooter removes the lines that legitimately differ when
// telemetry flags are on: timing, bench/trace/manifest confirmations.
func stripTelemetryFooter(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "total wall time:"),
			strings.Contains(line, "host throughput"),
			strings.HasPrefix(line, "trace written:"),
			strings.HasPrefix(line, "manifest written:"),
			strings.HasPrefix(line, "bench json written:"):
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestTelemetryDoesNotPerturbTables is the tables-byte-identity
// acceptance criterion: every telemetry surface enabled at once must not
// change a single byte of the rendered tables.
func TestTelemetryDoesNotPerturbTables(t *testing.T) {
	plain, err := runPB(t, "-quick", "-insts", "4000", "-only", "T2,F1,F6")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	traced, err := runPB(t, "-quick", "-insts", "4000", "-only", "T2,F1,F6",
		"-progress=plain",
		"-listen", "127.0.0.1:0",
		"-manifest", filepath.Join(dir, "MANIFEST.json"),
		"-trace-out", filepath.Join(dir, "cell.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if stripTelemetryFooter(traced) != stripTelemetryFooter(plain) {
		t.Errorf("telemetry changed the tables:\n--- off ---\n%s\n--- on ---\n%s", plain, traced)
	}
}

// TestManifestMatchesPlannedCells runs the full suite and checks the
// manifest agrees with the planned-cell arithmetic the ETA and the
// planned gauge rely on, and that the document passes its own validator.
func TestManifestMatchesPlannedCells(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "MANIFEST.json")
	if _, err := runPB(t, "-quick", "-insts", "1000", "-manifest", path); err != nil {
		t.Fatal(err)
	}
	m, err := telemetry.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	per := cellsPerExperiment(len(m.Workloads))
	want := 0
	for _, id := range m.Experiments {
		want += per[id]
	}
	if m.Totals.Cells != want {
		t.Errorf("manifest holds %d cells, planned arithmetic says %d", m.Totals.Cells, want)
	}
	if m.Totals.MemoHits == 0 {
		t.Error("full suite must share cells through the memo cache")
	}
	if m.Totals.Failed != 0 {
		t.Errorf("%d cells failed in a healthy run", m.Totals.Failed)
	}
	if m.Totals.SimCycles == 0 || m.ConfigHash == "" {
		t.Errorf("manifest missing totals or hash: %+v", m.Totals)
	}
}

// TestManifestRecordsFailures injects a fault and checks the manifest
// still validates, with failed cells and the repro bundle path recorded.
func TestManifestRecordsFailures(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "MANIFEST.json")
	_, err := runPB(t, "-quick", "-insts", "2000", "-only", "T2",
		"-inject", "panic:compress:100", "-manifest", path, "-repro-dir", dir)
	if err == nil {
		t.Fatal("poisoned run succeeded")
	}
	m, rerr := telemetry.ReadManifest(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Totals.Failed == 0 {
		t.Error("manifest records no failed cells")
	}
	if len(m.Bundles) == 0 {
		t.Error("manifest records no repro bundles")
	}
	for _, b := range m.Bundles {
		if _, err := os.Stat(b); err != nil {
			t.Errorf("bundle %s not on disk: %v", b, err)
		}
	}
}

// TestTraceFlagWiring checks -trace-out writes a trace for the default
// cell and that the dependent flags are rejected without it.
func TestTraceFlagWiring(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.trace.json")
	out, err := runPB(t, "-quick", "-insts", "2000", "-only", "T2", "-trace-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trace written: "+path) {
		t.Errorf("trace confirmation missing:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"traceEvents"`)) || !bytes.Contains(data, []byte(`"port lane 0"`)) {
		t.Error("trace file lacks the expected track structure")
	}

	if _, err := runPB(t, "-quick", "-only", "T2", "-trace-cell", "compress"); err == nil {
		t.Error("-trace-cell without -trace-out accepted")
	}
	if _, err := runPB(t, "-quick", "-only", "T2", "-trace-depth", "64"); err == nil {
		t.Error("-trace-depth without -trace-out accepted")
	}
}

// TestTraceCellNeverRan checks a trace filter that matches no suite cell
// degrades to a warning, not an error or an empty file.
func TestTraceCellNeverRan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cell.trace.json")
	if _, err := runPB(t, "-quick", "-insts", "2000", "-only", "T2",
		"-trace-out", path, "-trace-cell", "compress@no-such-machine"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err == nil {
		t.Error("trace file written for a cell that never ran")
	}
}

// TestListenServesDuringHold drives the real flag path: -listen with a
// random port plus -hold keeps the endpoint alive after the suite, long
// enough for an external scraper (here: this test) to read the finished
// campaign's gauges.
func TestListenServesDuringHold(t *testing.T) {
	addrCh := make(chan string, 1)
	testListenHook = func(addr string) { addrCh <- addr }
	defer func() { testListenHook = nil }()

	done := make(chan error, 1)
	go func() {
		_, err := runPB(t, "-quick", "-insts", "2000", "-only", "T2",
			"-listen", "127.0.0.1:0", "-hold", "5s")
		done <- err
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run finished before the listen hook fired: %v", err)
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/healthz"); !strings.Contains(body, `"status": "ok"`) && !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %s", body)
	}
	deadline := time.Now().Add(4 * time.Second)
	for {
		if body := get("/metrics"); strings.Contains(body, "portsim_cells_done_total 3\n") {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("campaign never reached done=3:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestProgressModeParsing pins the flag grammar of -progress.
func TestProgressModeParsing(t *testing.T) {
	cases := []struct {
		in   string
		want progressMode
		err  bool
	}{
		{"", progressRich, false},
		{"true", progressRich, false},
		{"rich", progressRich, false},
		{"plain", progressPlain, false},
		{"false", progressOff, false},
		{"off", progressOff, false},
		{"loud", progressOff, true},
	}
	for _, tc := range cases {
		var m progressMode
		err := m.Set(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("Set(%q) error = %v", tc.in, err)
		}
		if err == nil && m != tc.want {
			t.Errorf("Set(%q) = %v, want %v", tc.in, m, tc.want)
		}
	}
	var m progressMode
	if !m.IsBoolFlag() {
		t.Error("progress flag must accept bare -progress")
	}
}

// TestProgressPrinterModes exercises both renderers against a buffer.
func TestProgressPrinterModes(t *testing.T) {
	reg := telemetry.NewRegistry()
	camp := telemetry.NewCampaign(reg, 2)
	var plainBuf bytes.Buffer
	plain := newProgressPrinter(progressPlain, &plainBuf, 2, camp)
	plain.cellDone(telemetry.CellSample{Workload: "compress", Machine: "baseline-1port"})
	plain.cellDone(telemetry.CellSample{Workload: "compress", Machine: "baseline-1port", MemoHit: true})
	camp.CellDone(telemetry.CellSample{Machine: "m", Workload: "w", ConfigJSON: []byte("{}"),
		PortUtilization: -1, PortRejectRate: -1})
	plain.cellDone(telemetry.CellSample{Workload: "eqntott", Machine: "2-port", Failed: true})
	got := plainBuf.String()
	if !strings.Contains(got, "compress @ baseline-1port (memo)") {
		t.Errorf("plain mode missing memo marker:\n%s", got)
	}
	if !strings.Contains(got, "eqntott @ 2-port FAILED") {
		t.Errorf("plain mode missing failure marker:\n%s", got)
	}
	if strings.Count(got, "\n") != 3 {
		t.Errorf("plain mode must emit one line per cell:\n%q", got)
	}

	var richBuf bytes.Buffer
	rich := newProgressPrinter(progressRich, &richBuf, 2, camp)
	rich.cellDone(telemetry.CellSample{Workload: "compress", Machine: "baseline-1port"})
	rich.finish()
	line := richBuf.String()
	if !strings.HasPrefix(line, "\r") || !strings.Contains(line, "1/2 cells") {
		t.Errorf("rich line malformed: %q", line)
	}
	if !strings.HasSuffix(line, "\n") {
		t.Error("finish must terminate the rich line")
	}

	off := newProgressPrinter(progressOff, &richBuf, 2, camp)
	before := richBuf.Len()
	off.cellDone(telemetry.CellSample{})
	off.finish()
	if richBuf.Len() != before {
		t.Error("off mode wrote output")
	}
}
