package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"portsim/internal/telemetry"
)

// stripStore drops the store and arena footer lines on top of the timing
// footer: the store economics (restored vs simulated) and the arena replay
// counts legitimately differ between cold, warm and store-less runs — a
// restored cell never acquires an arena — while every table must not.
func stripStore(out string) string {
	var kept []string
	for _, line := range strings.Split(stripTiming(out), "\n") {
		if strings.HasPrefix(line, "store: ") || strings.HasPrefix(line, "arenas: ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// storeFooter extracts the "store: N restored, M simulated, ..." counts.
func storeFooter(t *testing.T, out string) (restored, simulated int) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "store: ") {
			if _, err := fmt.Sscanf(line, "store: %d restored, %d simulated", &restored, &simulated); err != nil {
				t.Fatalf("unparseable store footer %q: %v", line, err)
			}
			return restored, simulated
		}
	}
	t.Fatalf("no store footer in output:\n%s", out)
	return 0, 0
}

// TestStoreColdWarmOffByteIdentical is the CLI-level durability contract:
// the rendered tables must match byte for byte with no store, a cold store
// and a warm resumed store, and the warm run must restore every cell.
func TestStoreColdWarmOffByteIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cells")
	base := []string{"-quick", "-insts", "4000", "-only", "T2,F1", "-parallel", "2"}

	off, err := runPB(t, base...)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := runPB(t, append(base, "-store", dir)...)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := runPB(t, append(base, "-store", dir, "-resume")...)
	if err != nil {
		t.Fatal(err)
	}
	if stripStore(cold) != stripStore(off) {
		t.Errorf("cold-store output diverged from store-less:\n--- off ---\n%s\n--- cold ---\n%s", off, cold)
	}
	if stripStore(warm) != stripStore(off) {
		t.Errorf("warm-store output diverged from store-less:\n--- off ---\n%s\n--- warm ---\n%s", off, warm)
	}
	coldRestored, coldSim := storeFooter(t, cold)
	if coldRestored != 0 || coldSim == 0 {
		t.Errorf("cold run footer = %d restored, %d simulated; want all simulated", coldRestored, coldSim)
	}
	warmRestored, warmSim := storeFooter(t, warm)
	if warmSim != 0 || warmRestored != coldSim {
		t.Errorf("warm run footer = %d restored, %d simulated; want %d restored, 0 simulated",
			warmRestored, warmSim, coldSim)
	}
}

// TestStoreFlagValidation covers the flag error paths.
func TestStoreFlagValidation(t *testing.T) {
	if _, err := runPB(t, "-quick", "-resume"); err == nil || !strings.Contains(err.Error(), "-resume needs -store") {
		t.Errorf("-resume without -store: %v", err)
	}
	if _, err := runPB(t, "-quick", "-inject-store", "torn"); err == nil || !strings.Contains(err.Error(), "-inject-store needs -store") {
		t.Errorf("-inject-store without -store: %v", err)
	}
	missing := filepath.Join(t.TempDir(), "never-created")
	if _, err := runPB(t, "-quick", "-store", missing, "-resume"); err == nil || !strings.Contains(err.Error(), "nothing to resume") {
		t.Errorf("-resume with missing store dir: %v", err)
	}
	dir := t.TempDir()
	if _, err := runPB(t, "-quick", "-store", dir, "-inject-store", "frob"); err == nil {
		t.Error("bad -inject-store mode accepted")
	}
	if _, err := runPB(t, "-quick", "-store", dir, "-inject-store", "torn:2"); err == nil {
		t.Error("out-of-range -inject-store rate accepted")
	}
}

// TestStoreFaultModesFinishGreen drives each -inject-store mode through a
// cold run and a warm rerun: every mode must leave the campaign green with
// byte-identical tables; torn and corrupt entries quarantine on the warm
// read, ioerr degrades the store mid-run.
func TestStoreFaultModesFinishGreen(t *testing.T) {
	base := []string{"-quick", "-insts", "4000", "-only", "F1"}
	ref, err := runPB(t, base...)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"torn", "corrupt", "ioerr"} {
		t.Run(mode, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "cells")
			faulted, err := runPB(t, append(base, "-store", dir, "-inject-store", mode)...)
			if err != nil {
				t.Fatalf("faulted cold run failed: %v", err)
			}
			if stripStore(faulted) != stripStore(ref) {
				t.Errorf("faulted run tables diverged:\n--- ref ---\n%s\n--- faulted ---\n%s", ref, faulted)
			}
			if mode == "ioerr" {
				if !strings.Contains(faulted, "degraded") {
					t.Errorf("ioerr run did not report degradation:\n%s", faulted)
				}
				return
			}
			// Every entry was damaged at write time; the warm run must
			// quarantine them all, re-simulate, and still match.
			warm, err := runPB(t, append(base, "-store", dir, "-resume")...)
			if err != nil {
				t.Fatalf("warm run over damaged store failed: %v", err)
			}
			if stripStore(warm) != stripStore(ref) {
				t.Errorf("warm run tables diverged:\n--- ref ---\n%s\n--- warm ---\n%s", ref, warm)
			}
			if !strings.Contains(warm, "quarantined") {
				t.Errorf("warm run over damaged store reported no quarantines:\n%s", warm)
			}
			if restored, _ := storeFooter(t, warm); restored != 0 {
				t.Errorf("restored %d cells from all-damaged store", restored)
			}
		})
	}
}

// TestStoreManifestRecordsResume pins the manifest's store summary.
func TestStoreManifestRecordsResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cells")
	manifest := filepath.Join(t.TempDir(), "MANIFEST.json")
	base := []string{"-quick", "-insts", "4000", "-only", "F1", "-store", dir}
	if _, err := runPB(t, base...); err != nil {
		t.Fatal(err)
	}
	if _, err := runPB(t, append(base, "-resume", "-manifest", manifest)...); err != nil {
		t.Fatal(err)
	}
	m, err := telemetry.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Store == nil || !m.Store.Resumed || m.Store.Dir != dir {
		t.Fatalf("manifest store summary = %+v", m.Store)
	}
	if m.Store.Hits == 0 || m.Totals.StoreHits == 0 {
		t.Errorf("resumed manifest reports no store hits: store %+v totals %+v", m.Store, m.Totals)
	}
}

// TestStoreChild is the subprocess half of TestKillAndResume, real only
// when the environment says so: it runs the suite with the parent's args
// and is SIGKILLed partway through.
func TestStoreChild(t *testing.T) {
	if os.Getenv("PORTBENCH_STORE_CHILD") != "1" {
		t.Skip("helper for TestKillAndResume")
	}
	if err := run(strings.Split(os.Getenv("PORTBENCH_STORE_ARGS"), "\x1f"), os.Stdout); err != nil {
		t.Fatal(err)
	}
}

// TestKillAndResume is the crash-safety proof: start a campaign against a
// store, SIGKILL the process partway through, then resume with the same
// store and assert the tables are byte-identical to an undisturbed run
// while strictly fewer cells simulate the second time.
func TestKillAndResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cells")
	args := []string{"-quick", "-insts", "8000", "-only", "F1,F2", "-parallel", "1", "-progress=plain", "-store", dir}

	cmd := exec.Command(os.Args[0], "-test.run", "^TestStoreChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"PORTBENCH_STORE_CHILD=1",
		"PORTBENCH_STORE_ARGS="+strings.Join(args, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The plain progress stream reports each finished cell; kill after a
	// handful so the store holds a strict subset of the campaign.
	const killAfter = 4
	seen := 0
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if strings.Contains(sc.Text(), "portbench: cell ") {
			if seen++; seen >= killAfter {
				break
			}
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL failed: %v", err)
	}
	go io.Copy(io.Discard, stderr) //nolint:errcheck // draining a dead child
	_ = cmd.Wait()
	if seen < killAfter {
		t.Fatalf("child finished after only %d cells; campaign too small to kill mid-run", seen)
	}

	entries, err := filepath.Glob(filepath.Join(dir, "*.cell.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("killed campaign left no durable cells (%v, %v)", entries, err)
	}

	ref, err := runPB(t, "-quick", "-insts", "8000", "-only", "F1,F2", "-parallel", "1")
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := runPB(t, append(args, "-resume")...)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if stripStore(resumed) != stripStore(ref) {
		t.Errorf("resumed output diverged from undisturbed run:\n--- ref ---\n%s\n--- resumed ---\n%s", ref, resumed)
	}
	restored, simulated := storeFooter(t, resumed)
	if restored == 0 {
		t.Error("resume restored nothing; the kill lost every finished cell")
	}
	if simulated == 0 {
		t.Error("resume simulated nothing; the child must have finished before the kill")
	}
	if restored+simulated != 0 && simulated >= restored+simulated {
		t.Errorf("resume simulated %d of %d cells — not strictly fewer", simulated, restored+simulated)
	}

	// The interrupted run may have died mid-Put; the write discipline means
	// at worst a swept temp file, never a half-visible entry, so the store
	// directory must now be fully healthy.
	leftover, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(leftover) != 0 {
		t.Errorf("temp files survived the resume sweep: %v", leftover)
	}
	if strings.Contains(resumed, "quarantined") {
		t.Errorf("crash-safe writes should never need a quarantine on resume:\n%s", resumed)
	}
}
