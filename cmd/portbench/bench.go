package main

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"portsim/internal/benchfmt"
	"portsim/internal/experiments"
)

// profiler owns the pprof outputs requested on the command line. CPU
// profiling runs for the whole suite; the heap and allocation profiles are
// snapshots written at stop time.
type profiler struct {
	cpuFile             *os.File
	memPath, allocsPath string
}

// startProfiles opens the requested profile outputs. The returned profiler's
// stop must run even on error paths, or the CPU profile is truncated.
func startProfiles(cpuPath, memPath, allocsPath string) (*profiler, error) {
	p := &profiler{memPath: memPath, allocsPath: allocsPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		p.cpuFile = f
	}
	return p, nil
}

// stop finalises every requested profile. The heap profile runs a GC first
// so it shows live memory, not garbage awaiting collection; the allocs
// profile deliberately does not — it records every allocation since start,
// which is the signal a zero-alloc cycle loop is judged by.
func (p *profiler) stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
	}
	if p.memPath != "" {
		runtime.GC()
		if err := writeProfile("heap", p.memPath); err != nil {
			return err
		}
	}
	if p.allocsPath != "" {
		if err := writeProfile("allocs", p.allocsPath); err != nil {
			return err
		}
	}
	return nil
}

func writeProfile(name, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.Lookup(name).WriteTo(f, 0)
}

// benchPath resolves the -benchjson argument: an explicit .json filename is
// used verbatim (CI pins BENCH_ci.json); anything else is a directory that
// receives the date-stamped BENCH_<yyyy-mm-dd>.json trajectory file.
func benchPath(arg string, now time.Time) string {
	if strings.HasSuffix(arg, ".json") {
		return arg
	}
	return filepath.Join(arg, "BENCH_"+now.Format("2006-01-02")+".json")
}

// benchRecorder accumulates per-experiment throughput for -benchjson. All
// measurement is deltas of the runner's simulated-work counters and the
// runtime's malloc counter around each experiment; experiments whose cells
// were all memoised from earlier experiments contribute zero new work.
type benchRecorder struct {
	runner *experiments.Runner

	startCycles, startInsts, startMallocs uint64
	startTime                             time.Time

	experiments []benchfmt.Experiment
}

func newBenchRecorder(r *experiments.Runner) *benchRecorder {
	return &benchRecorder{runner: r}
}

func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// begin marks the start of one experiment.
func (b *benchRecorder) begin() {
	b.startCycles = b.runner.SimulatedCycles()
	b.startInsts = b.runner.SimulatedInstructions()
	b.startMallocs = mallocs()
	b.startTime = time.Now()
}

// end records the experiment begun by the matching begin.
func (b *benchRecorder) end(id string) {
	e := benchfmt.Experiment{
		ID:          id,
		WallSeconds: time.Since(b.startTime).Seconds(),
		SimCycles:   b.runner.SimulatedCycles() - b.startCycles,      //portlint:ignore cyclemath the runner's work counters are monotonic; begin sampled the smaller value
		SimInsts:    b.runner.SimulatedInstructions() - b.startInsts, //portlint:ignore cyclemath monotonic counter, begin sampled the smaller value
		Allocs:      mallocs() - b.startMallocs,                      //portlint:ignore cyclemath runtime.MemStats.Mallocs is monotonic
	}
	e.Derive()
	b.experiments = append(b.experiments, e)
}

// report assembles the final BENCH report for the whole run.
func (b *benchRecorder) report(spec experiments.Spec, parallel int, elapsed time.Duration, allocs uint64, now time.Time) *benchfmt.Report {
	total := benchfmt.Experiment{
		ID:          "total",
		WallSeconds: elapsed.Seconds(),
		SimCycles:   b.runner.SimulatedCycles(),
		SimInsts:    b.runner.SimulatedInstructions(),
		Allocs:      allocs,
	}
	total.Derive()
	return &benchfmt.Report{
		Schema:      benchfmt.Schema,
		Date:        now.Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Parallel:    parallel,
		HostCPUs:    runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workloads:   len(spec.Workloads),
		Insts:       spec.Insts,
		Seed:        spec.Seed,
		Experiments: b.experiments,
		Total:       total,
	}
}
