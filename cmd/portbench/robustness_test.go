package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"portsim/internal/config"
	"portsim/internal/experiments"
)

// TestInjectRendersHealthyTablesAndReportsOneCell is the CLI containment
// contract: with one poisoned workload, the suite exits non-zero, the
// healthy experiments still render, and exactly one cell failure is
// reported — with configuration, diagnosis and a repro bundle.
func TestInjectRendersHealthyTablesAndReportsOneCell(t *testing.T) {
	dir := t.TempDir()
	out, err := runPB(t, "-quick", "-insts", "4000", "-only", "T1,T2",
		"-inject", "wedge:eqntott", "-repro-dir", dir)
	if err == nil || !strings.Contains(err.Error(), "experiment(s) failed") {
		t.Fatalf("err = %v, want suite failure", err)
	}
	if !strings.Contains(out, "T1: baseline machine parameters") {
		t.Error("healthy T1 table missing from a failed run")
	}
	if !strings.Contains(out, "T2: FAILED:") {
		t.Error("poisoned T2 not marked FAILED")
	}
	if n := strings.Count(out, "CELL ERROR:"); n != 1 {
		t.Errorf("%d CELL ERROR reports, want exactly 1:\n%s", n, out)
	}
	if !strings.Contains(out, "store buffer full") {
		t.Error("stall diagnosis does not name the wedged store buffer")
	}
	if !strings.Contains(out, `"fault_stuck_drain": true`) {
		t.Error("reported machine configuration lost the fault knob")
	}
	if !strings.Contains(out, "flight-recorder events") {
		t.Error("flight-recorder tail missing from the cell report")
	}
	if !strings.Contains(out, "repro bundle written:") {
		t.Error("no repro bundle announced")
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "portbench-repro-*.json"))
	if len(matches) != 1 {
		t.Fatalf("%d repro bundles on disk, want 1: %v", len(matches), matches)
	}
	if _, err := os.Stat(matches[0]); err != nil {
		t.Fatal(err)
	}
}

// TestReproReplaysDeterministically replays a just-written bundle twice and
// requires byte-identical output and a reproduced-failure exit.
func TestReproReplaysDeterministically(t *testing.T) {
	dir := t.TempDir()
	if _, err := runPB(t, "-quick", "-insts", "4000", "-only", "T2",
		"-inject", "wedge:eqntott", "-repro-dir", dir); err == nil {
		t.Fatal("setup: poisoned run did not fail")
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "portbench-repro-*.json"))
	if len(matches) != 1 {
		t.Fatalf("setup: %d bundles, want 1", len(matches))
	}

	first, err1 := runPB(t, "-repro", matches[0])
	second, err2 := runPB(t, "-repro", matches[0])
	for _, err := range []error{err1, err2} {
		if err == nil || !strings.Contains(err.Error(), "failure reproduced") {
			t.Fatalf("replay err = %v, want failure reproduced", err)
		}
	}
	if first != second {
		t.Errorf("replay output not deterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "CELL ERROR:") || !strings.Contains(first, "flight-recorder events") {
		t.Errorf("replay report incomplete:\n%s", first)
	}
}

// TestReproOnHealthyBundleReportsClean replays a bundle with no fault and
// expects a clean did-not-reproduce exit.
func TestReproOnHealthyBundleReportsClean(t *testing.T) {
	b := &experiments.Bundle{
		Version:  experiments.BundleVersion,
		Machine:  config.Baseline(),
		Workload: "compress",
		Seed:     42,
		Insts:    2_000,
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "clean.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runPB(t, "-repro", path)
	if err != nil {
		t.Fatalf("healthy replay failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "did not reproduce") {
		t.Errorf("healthy replay output:\n%s", out)
	}
}

// TestInjectFlagValidation covers the -inject and -repro error paths.
func TestInjectFlagValidation(t *testing.T) {
	if _, err := runPB(t, "-quick", "-inject", "frob:compress"); err == nil || !strings.Contains(err.Error(), "unknown fault mode") {
		t.Errorf("bad -inject mode: err = %v", err)
	}
	if _, err := runPB(t, "-repro", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing -repro file accepted")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runPB(t, "-repro", garbage); err == nil || !strings.Contains(err.Error(), "parsing repro bundle") {
		t.Errorf("garbage bundle: err = %v", err)
	}
}
