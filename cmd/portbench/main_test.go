package main

import (
	"strings"
	"testing"
)

func runPB(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestOnlySelectsExperiments(t *testing.T) {
	out, err := runPB(t, "-quick", "-insts", "5000", "-only", "T1,F1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "T1: baseline machine parameters") {
		t.Error("T1 table missing")
	}
	if !strings.Contains(out, "F1: IPC vs number of cache ports") {
		t.Error("F1 table missing")
	}
	if strings.Contains(out, "F6:") {
		t.Error("unselected experiment ran")
	}
	if !strings.Contains(out, "total wall time") {
		t.Error("footer missing")
	}
}

func TestOnlyIsCaseInsensitive(t *testing.T) {
	out, err := runPB(t, "-quick", "-insts", "5000", "-only", "t1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "T1:") {
		t.Error("lower-case id not matched")
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if _, err := runPB(t, "-quick", "-only", "Z9"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestHeaderReportsSpec(t *testing.T) {
	out, err := runPB(t, "-quick", "-insts", "4000", "-seed", "9", "-only", "T1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 workloads x 4000 instructions, seed 9") {
		t.Errorf("header wrong:\n%s", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestCSVOutput(t *testing.T) {
	out, err := runPB(t, "-quick", "-insts", "4000", "-only", "T1", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# T1: baseline machine parameters") {
		t.Error("CSV title comment missing")
	}
	if !strings.Contains(out, "parameter,value") {
		t.Error("CSV header missing")
	}
	if strings.Contains(out, "---") {
		t.Error("aligned-table separator leaked into CSV mode")
	}
}
