package main

import (
	"strings"
	"testing"
)

func runPB(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestOnlySelectsExperiments(t *testing.T) {
	out, err := runPB(t, "-quick", "-insts", "5000", "-only", "T1,F1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "T1: baseline machine parameters") {
		t.Error("T1 table missing")
	}
	if !strings.Contains(out, "F1: IPC vs number of cache ports") {
		t.Error("F1 table missing")
	}
	if strings.Contains(out, "F6:") {
		t.Error("unselected experiment ran")
	}
	if !strings.Contains(out, "total wall time") {
		t.Error("footer missing")
	}
}

func TestOnlyIsCaseInsensitive(t *testing.T) {
	out, err := runPB(t, "-quick", "-insts", "5000", "-only", "t1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "T1:") {
		t.Error("lower-case id not matched")
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if _, err := runPB(t, "-quick", "-only", "Z9"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestHeaderReportsSpec(t *testing.T) {
	out, err := runPB(t, "-quick", "-insts", "4000", "-seed", "9", "-only", "T1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 workloads x 4000 instructions, seed 9") {
		t.Errorf("header wrong:\n%s", strings.SplitN(out, "\n", 2)[0])
	}
}

// stripTiming drops the wall-time and host-throughput footer lines, the
// only output that legitimately differs between runs.
func stripTiming(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "total wall time:") || strings.Contains(line, "host throughput") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestParallelOutputByteIdentical is the CLI-level determinism guarantee:
// everything but the timing footer must match between -parallel 1 and
// -parallel 8.
func TestParallelOutputByteIdentical(t *testing.T) {
	serial, err := runPB(t, "-quick", "-insts", "4000", "-only", "T2,F1,F6", "-parallel", "1")
	if err != nil {
		t.Fatal(err)
	}
	par, err := runPB(t, "-quick", "-insts", "4000", "-only", "T2,F1,F6", "-parallel", "8")
	if err != nil {
		t.Fatal(err)
	}
	if stripTiming(par) != stripTiming(serial) {
		t.Errorf("-parallel 8 output diverged from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, par)
	}
}

func TestProgressFlagRuns(t *testing.T) {
	out, err := runPB(t, "-quick", "-insts", "2000", "-only", "T2", "-parallel", "2", "-progress")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "cells done") {
		t.Error("progress leaked into the table stream; it must stay on stderr")
	}
}

// TestThroughputReportFinite guards the rate math: even a degenerate spec
// that finishes in roughly zero wall time must not print Inf or NaN.
func TestThroughputReportFinite(t *testing.T) {
	out, err := runPB(t, "-quick", "-insts", "1000", "-only", "T2")
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"Inf", "NaN"} {
		if strings.Contains(out, bad) {
			t.Errorf("throughput report contains %s:\n%s", bad, out)
		}
	}
	if !strings.Contains(out, "host throughput") {
		t.Errorf("throughput footer missing:\n%s", out)
	}
}

func TestCSVOutput(t *testing.T) {
	out, err := runPB(t, "-quick", "-insts", "4000", "-only", "T1", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# T1: baseline machine parameters") {
		t.Error("CSV title comment missing")
	}
	if !strings.Contains(out, "parameter,value") {
		t.Error("CSV header missing")
	}
	if strings.Contains(out, "---") {
		t.Error("aligned-table separator leaked into CSV mode")
	}
}
