package main

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"portsim/internal/telemetry"
)

// progressMode selects how -progress reports cell completions. The flag
// doubles as a boolean (-progress means rich) and accepts an explicit
// mode (-progress=plain for CI logs, -progress=false to silence).
type progressMode int

const (
	progressOff progressMode = iota
	progressRich
	progressPlain
)

func (m *progressMode) String() string {
	switch *m {
	case progressRich:
		return "rich"
	case progressPlain:
		return "plain"
	}
	return "false"
}

func (m *progressMode) Set(s string) error {
	switch strings.ToLower(s) {
	case "", "true", "rich":
		*m = progressRich
	case "plain":
		*m = progressPlain
	case "false", "off":
		*m = progressOff
	default:
		return fmt.Errorf("progress mode %q, want rich, plain or false", s)
	}
	return nil
}

// IsBoolFlag lets plain -progress (no value) select rich mode.
func (m *progressMode) IsBoolFlag() bool { return true }

// progressPrinter renders cell completions on w (stderr in production).
// Rich mode keeps one self-overwriting status line with throughput and an
// ETA; plain mode emits a newline-terminated line per cell so CI logs
// stay greppable. The printer is fed from the runner's cell observer, so
// it may be called from many worker goroutines at once.
type progressPrinter struct {
	mode    progressMode
	w       io.Writer
	planned int
	camp    *telemetry.Campaign

	// clock and start let tests drive the rate and ETA math with a fake
	// timeline; production uses time.Now.
	clock func() time.Time
	start time.Time

	mu      sync.Mutex
	last    time.Time
	lastLen int
}

// Rich-mode display guards. A rate needs measurable elapsed time or the
// division explodes into nonsense; an ETA needs a handful of actually
// simulated (non-memo) cells before the per-cell average means anything.
const (
	rateMinElapsed = time.Millisecond
	etaMinElapsed  = 100 * time.Millisecond
	etaMinBasis    = 3
)

func newProgressPrinter(mode progressMode, w io.Writer, planned int, camp *telemetry.Campaign) *progressPrinter {
	p := &progressPrinter{mode: mode, w: w, planned: planned, camp: camp, clock: time.Now}
	p.start = p.clock()
	return p
}

// cellDone reports one completed cell. Rich updates are throttled to ~10
// per second; the final cell always renders so the line ends accurate.
func (p *progressPrinter) cellDone(s telemetry.CellSample) {
	if p == nil || p.mode == progressOff {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	done := p.camp.Done()
	if p.mode == progressPlain {
		status := ""
		switch {
		case s.Failed:
			status = " FAILED"
		case s.MemoHit:
			status = " (memo)"
		case s.StoreHit:
			status = " (store)"
		}
		fmt.Fprintf(p.w, "portbench: cell %d/%d: %s @ %s%s\n",
			done, p.planned, s.Workload, s.Machine, status)
		return
	}
	now := p.clock()
	if done < p.planned && now.Sub(p.last) < 100*time.Millisecond {
		return
	}
	p.last = now
	p.render(done)
}

// render draws the rich status line, padding over the previous one. The
// throughput and ETA figures are based only on cells that were actually
// simulated: memo hits complete in microseconds, and counting them as
// full-cost cells used to both deflate the Mcycles/s denominator's
// meaning and collapse the ETA toward zero whenever a campaign opened on
// a run of memo hits.
func (p *progressPrinter) render(done int) {
	elapsed := p.clock().Sub(p.start)
	line := fmt.Sprintf("portbench: %d/%d cells", done, p.planned)
	if elapsed >= rateMinElapsed {
		line += fmt.Sprintf(" | %.1f Mcycles/s", float64(p.camp.SimCycles())/elapsed.Seconds()/1e6)
	}
	// Store hits, like memo hits, finish in microseconds; the per-cell
	// average must be over cells that actually simulated or a resumed
	// campaign's opening run of restores collapses the ETA toward zero.
	simDone := done - p.camp.MemoHits() - p.camp.StoreHits()
	if simDone >= etaMinBasis && done < p.planned && elapsed >= etaMinElapsed {
		// Assume the remaining cells are all full-cost: a memo hit among
		// them only makes the estimate finish early, never blow through.
		perCell := elapsed.Seconds() / float64(simDone)
		eta := time.Duration(perCell * float64(p.planned-done) * float64(time.Second))
		line += fmt.Sprintf(" | ETA %s", eta.Round(time.Second))
	}
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	p.lastLen = len(line)
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
}

// finish terminates the rich status line so later stderr output starts
// on a fresh line.
func (p *progressPrinter) finish() {
	if p == nil || p.mode != progressRich {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.render(p.camp.Done())
	fmt.Fprintln(p.w)
}
