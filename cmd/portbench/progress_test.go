package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"portsim/internal/telemetry"
)

// TestRichProgressRateBasis pins the rich-mode rate and ETA math to a fake
// clock. The regression it guards: memo-hit cells complete in microseconds,
// and the old estimate divided elapsed time by ALL completed cells, so a
// campaign that opened on a run of memo hits reported an ETA near zero and
// a meaningless throughput. The rate basis must be the non-memo cells only,
// the ETA must stay suppressed until that basis is stable, and a near-zero
// elapsed time must not produce a rate at all.
func TestRichProgressRateBasis(t *testing.T) {
	reg := telemetry.NewRegistry()
	camp := telemetry.NewCampaign(reg, 10)
	var buf bytes.Buffer
	p := newProgressPrinter(progressRich, &buf, 10, camp)
	cur := time.Unix(1000, 0)
	p.clock = func() time.Time { return cur }
	p.start = cur

	// Four memo hits land almost instantly. No simulated cell has
	// finished: no rate (elapsed is sub-millisecond) and no ETA (empty
	// basis) may appear.
	cur = cur.Add(500 * time.Microsecond)
	for i := 0; i < 4; i++ {
		camp.CellDone(telemetry.CellSample{Workload: "w", Machine: "m",
			ConfigJSON: []byte("{}"), MemoHit: true})
	}
	p.cellDone(telemetry.CellSample{MemoHit: true})
	got := buf.String()
	if !strings.Contains(got, "4/10 cells") {
		t.Fatalf("missing cell count: %q", got)
	}
	if strings.Contains(got, "Mcycles/s") {
		t.Errorf("rate rendered on near-zero elapsed: %q", got)
	}
	if strings.Contains(got, "ETA") {
		t.Errorf("ETA rendered with zero simulated cells as basis: %q", got)
	}

	// Three real cells at 300M cycles each, finishing six seconds in.
	// Rate: 900M cycles / 6s = 150 Mcycles/s. ETA: 6s/3 simulated cells
	// × 3 remaining = 6s. The memo-inclusive math this replaces would
	// have claimed 6s/7 × 3 ≈ 3s.
	cur = time.Unix(1006, 0)
	for i := 0; i < 3; i++ {
		camp.CellDone(telemetry.CellSample{Workload: "w", Machine: "m",
			ConfigJSON: []byte("{}"), Cycles: 300e6, Insts: 100e6,
			WallSeconds: 2, PortUtilization: -1, PortRejectRate: -1})
	}
	buf.Reset()
	p.cellDone(telemetry.CellSample{})
	got = buf.String()
	if !strings.Contains(got, "150.0 Mcycles/s") {
		t.Errorf("rate not based on simulated cycles over elapsed: %q", got)
	}
	if !strings.Contains(got, "ETA 6s") {
		t.Errorf("ETA not based on non-memo cells (want 6s, memo-diluted math gives ~3s): %q", got)
	}

	// Rich updates are throttled: a cell landing 10ms later must not
	// redraw.
	cur = cur.Add(10 * time.Millisecond)
	before := buf.Len()
	camp.CellDone(telemetry.CellSample{Workload: "w", Machine: "m",
		ConfigJSON: []byte("{}"), MemoHit: true})
	p.cellDone(telemetry.CellSample{MemoHit: true})
	if buf.Len() != before {
		t.Errorf("throttle ignored the fake clock: %q", buf.String()[before:])
	}
}

// TestRichProgressEtaBasisThreshold holds the ETA back until enough
// simulated cells exist to average over, even when plenty of time has
// passed.
func TestRichProgressEtaBasisThreshold(t *testing.T) {
	reg := telemetry.NewRegistry()
	camp := telemetry.NewCampaign(reg, 10)
	var buf bytes.Buffer
	p := newProgressPrinter(progressRich, &buf, 10, camp)
	cur := time.Unix(2000, 0)
	p.clock = func() time.Time { return cur }
	p.start = cur

	cur = cur.Add(5 * time.Second)
	for i := 0; i < etaMinBasis-1; i++ {
		camp.CellDone(telemetry.CellSample{Workload: "w", Machine: "m",
			ConfigJSON: []byte("{}"), Cycles: 1e6, Insts: 1e6,
			WallSeconds: 1, PortUtilization: -1, PortRejectRate: -1})
	}
	p.cellDone(telemetry.CellSample{})
	if got := buf.String(); strings.Contains(got, "ETA") {
		t.Errorf("ETA rendered below the %d-cell basis: %q", etaMinBasis, got)
	}
	if got := buf.String(); !strings.Contains(got, "Mcycles/s") {
		t.Errorf("rate missing despite measurable elapsed time: %q", got)
	}
}
