package main

import (
	"path/filepath"
	"strings"
	"testing"

	"portsim/internal/telemetry"
)

// stripArenas drops the arena footer on top of the timing footer, for
// comparisons between runs whose arena economics legitimately differ.
func stripArenas(out string) string {
	var kept []string
	for _, line := range strings.Split(stripTiming(out), "\n") {
		if strings.HasPrefix(line, "arenas: ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestArenaOnOffByteIdentical is the CLI-level statement of the tentpole
// guarantee: every table is byte-identical with trace arenas on (default),
// off, and squeezed into a budget that forces fallbacks — serial and
// parallel.
func TestArenaOnOffByteIdentical(t *testing.T) {
	base := []string{"-quick", "-insts", "4000", "-only", "T2,F1,A6"}
	on, err := runPB(t, base...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(on, "arenas: ") {
		t.Errorf("default run missing the arena footer:\n%s", on)
	}
	off, err := runPB(t, append(base, "-arena-budget", "off")...)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off, "arenas: ") {
		t.Error("-arena-budget off still printed the arena footer")
	}
	if stripArenas(on) != stripArenas(off) {
		t.Errorf("arenas-on output diverged from arenas-off:\n--- on ---\n%s\n--- off ---\n%s", on, off)
	}
	tight, err := runPB(t, append(base, "-arena-budget", "200kb")...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tight, "fallbacks") {
		t.Errorf("tight budget produced no fallbacks:\n%s", tight)
	}
	if stripArenas(tight) != stripArenas(off) {
		t.Errorf("fallback output diverged from arenas-off:\n--- tight ---\n%s\n--- off ---\n%s", tight, off)
	}
	par, err := runPB(t, append(base, "-parallel", "8")...)
	if err != nil {
		t.Fatal(err)
	}
	if stripTiming(par) != stripTiming(on) {
		t.Errorf("-parallel 8 with arenas diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", on, par)
	}
}

// TestArenaBudgetRejected: a malformed -arena-budget is a flag error, not
// a silent default.
func TestArenaBudgetRejected(t *testing.T) {
	if _, err := runPB(t, "-quick", "-only", "T1", "-arena-budget", "lots"); err == nil {
		t.Error("malformed -arena-budget accepted")
	}
}

// TestManifestArenaSummary: a campaign with arenas enabled records their
// economics in the run manifest; with arenas off the section is absent.
func TestManifestArenaSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "MANIFEST.json")
	if _, err := runPB(t, "-quick", "-insts", "4000", "-only", "F1", "-manifest", path); err != nil {
		t.Fatal(err)
	}
	m, err := telemetry.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Arenas == nil {
		t.Fatal("manifest has no arena summary with arenas on")
	}
	if m.Arenas.Builds == 0 || m.Arenas.Hits == 0 || m.Arenas.Bytes == 0 {
		t.Errorf("arena summary implausible: %+v", m.Arenas)
	}

	off := filepath.Join(t.TempDir(), "MANIFEST.json")
	if _, err := runPB(t, "-quick", "-insts", "4000", "-only", "F1", "-manifest", off, "-arena-budget", "off"); err != nil {
		t.Fatal(err)
	}
	mo, err := telemetry.ReadManifest(off)
	if err != nil {
		t.Fatal(err)
	}
	if mo.Arenas != nil {
		t.Errorf("manifest has an arena summary with arenas off: %+v", mo.Arenas)
	}
}
