package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"portsim/internal/cellstore"
	"portsim/internal/config"
	"portsim/internal/core"
	"portsim/internal/cpustack"
	"portsim/internal/experiments"
	"portsim/internal/stats"
	"portsim/internal/telemetry"
)

// testListenHook, when set by a test, receives the bound -listen address.
var testListenHook func(addr string)

// cellsPerExperiment returns how many cells each experiment submits for a
// spec with w workloads. Duplicate submissions (memo hits) count: the
// observer fires once per submission, so these figures are what the
// planned gauge and the ETA are measured against.
func cellsPerExperiment(w int) map[string]int {
	return map[string]int{
		"T1": 0,     // static table, no simulation
		"T2": w,     // baseline per workload
		"F1": 3 * w, // port counts 1,2,4
		"F2": 6 * w, // store-buffer depths 1..32
		"F3": 3 * w, // naive widths 8,16,32
		"F4": 5 * w, // line buffers 0,1,2,4,8
		"F5": 4 * w, // 2 depths x combining on/off
		"F6": 3 * w, // single, best-single, dual
		"T3": w,     // best-single per workload
		"T4": 3 * w, // 3 machines
		"F7": 12,    // 4 kernel intensities x 3 machines (database only)
		"A1": 7 * w, // dual ratio column + 6 ablation configs
		"A2": 7 * w, // dual ratio column + 6 banking configs
		"A3": 3 * w, // single, single+pf, best+pf
		"A4": 2 * w, // conservative, speculative
		"A5": 3 * w, // write-back, write-through, WT+combining
		"A6": 12,    // 4 multiprogramming levels x 3 machines (compress only)
		"A7": 2 * w, // loads-first, stores-first
		"A8": 2 * w, // idealised, wrong-path
	}
}

// plannedCells counts the cells the selected experiments will submit.
func plannedCells(spec experiments.Spec, ids []string, want func(string) bool) int {
	per := cellsPerExperiment(len(spec.Workloads))
	total := 0
	for _, id := range ids {
		if want(id) {
			total += per[id]
		}
	}
	return total
}

// parseTraceCell splits a -trace-cell value ("workload@machine") into its
// parts; either side may be empty to take the default (first workload of
// the spec, baseline machine).
func parseTraceCell(s string, spec experiments.Spec) (workload, machine string, err error) {
	workload, machine, _ = strings.Cut(s, "@")
	if workload == "" {
		if len(spec.Workloads) == 0 {
			return "", "", fmt.Errorf("trace cell: no workloads in spec")
		}
		workload = spec.Workloads[0]
	}
	if machine == "" {
		machine = config.Baseline().Name
	}
	return workload, machine, nil
}

// cellSample converts a runner cell event into the telemetry snapshot:
// identity, outcome and the port rates derived from the final counters.
// Everything here runs once per cell, after the simulation finished —
// never inside the cycle loop.
func cellSample(ev experiments.CellEvent) telemetry.CellSample {
	s := telemetry.CellSample{
		Machine:         ev.Machine,
		Workload:        ev.Workload,
		ConfigJSON:      ev.ConfigJSON,
		MemoHit:         ev.MemoHit,
		StoreHit:        ev.StoreHit,
		WallSeconds:     ev.WallSeconds,
		PortUtilization: -1,
		PortRejectRate:  -1,
		// Set even for failed cells: a wedged cell's partial stack is the
		// diagnosis (which bucket ate the cycles before the watchdog fired).
		CPIStack: ev.CPIStack,
	}
	if ev.Err != nil {
		s.Failed = true
		s.Error = ev.Err.Error()
		return s
	}
	res := ev.Result
	s.Cycles = res.Cycles
	s.Insts = res.Instructions
	m, err := config.FromJSON(ev.ConfigJSON)
	if err != nil {
		return s
	}
	slots := core.SlotsPerCycle(m.Ports)
	c := res.Counters
	s.PortUtilization = stats.SafeRatio(
		float64(c.Get(stats.PortGrants)),
		float64(c.Get(stats.PortCycles))*float64(slots))
	rejects := stats.PortRejects(c)
	s.PortRejectRate = stats.SafeRatio(
		float64(rejects),
		float64(c.Get(stats.PortLoadAccesses)+rejects))
	return s
}

// telemetrySink owns the optional observability surfaces of a portbench
// run: the live-metrics registry and HTTP server, the campaign
// accumulator behind /metrics and the manifest, the progress printer,
// and the lane count learned for the traced cell.
type telemetrySink struct {
	camp    *telemetry.Campaign
	srv     *telemetry.Server
	printer *progressPrinter

	traceWorkload string
	traceMachine  string
	laneMu        sync.Mutex
	traceLanes    int

	// cpiRows collects each distinct cell's frozen CPI stack for the
	// end-of-run table (-cpistack). Memo hits are skipped — the first
	// delivery of a cell already captured it.
	cpiMu   sync.Mutex
	cpiRows map[string]cpiRow
}

// cpiRow is one line of the CPI-stack table.
type cpiRow struct {
	workload, machine, hash string
	failed                  bool
	snap                    *cpustack.Snapshot
}

// newTelemetrySink wires the campaign metrics, the runner's cell
// observer and, when requested, the HTTP endpoint. The caller only
// constructs a sink when some telemetry flag is set; otherwise the
// runner's observer slot stays nil — the zero-cost path.
func newTelemetrySink(runner *experiments.Runner, spec experiments.Spec,
	planned int, mode progressMode, listen string, store *cellstore.Store) (*telemetrySink, error) {
	reg := telemetry.NewRegistry()
	sink := &telemetrySink{
		camp:    telemetry.NewCampaign(reg, planned),
		cpiRows: make(map[string]cpiRow),
	}
	if spec.CPIStack {
		sink.camp.EnableCPIStack(reg)
	}
	if store != nil {
		reg.GaugeFunc("portsim_store_quarantined_total",
			"Corrupt cell-store entries quarantined (moved to *.corrupt) this run.",
			func() float64 { return float64(store.Stats().Quarantined) })
		reg.GaugeFunc("portsim_store_degraded",
			"1 when the cell store has degraded to store-less operation, else 0.",
			func() float64 {
				if store.Stats().Degraded {
					return 1
				}
				return 0
			})
	}
	if _, ok := runner.ArenaStats(); ok {
		reg.GaugeFunc("portsim_arena_count",
			"Trace arenas resident in the shared registry.",
			func() float64 {
				st, _ := runner.ArenaStats()
				return float64(st.Count)
			})
		reg.GaugeFunc("portsim_arena_bytes",
			"Bytes held by resident trace arenas.",
			func() float64 {
				st, _ := runner.ArenaStats()
				return float64(st.Bytes)
			})
		reg.GaugeFunc("portsim_arena_hits_total",
			"Cell acquisitions served from an already-materialised trace arena.",
			func() float64 {
				st, _ := runner.ArenaStats()
				return float64(st.Hits)
			})
		reg.GaugeFunc("portsim_arena_fallbacks_total",
			"Cell acquisitions that ran from live generation because the arena budget had no room.",
			func() float64 {
				st, _ := runner.ArenaStats()
				return float64(st.Fallbacks)
			})
		reg.GaugeFunc("portsim_arena_evictions_total",
			"Idle trace arenas dropped to make room under the byte budget.",
			func() float64 {
				st, _ := runner.ArenaStats()
				return float64(st.Evictions)
			})
		reg.GaugeFunc("portsim_arena_budget_bytes",
			"Configured trace-arena byte budget.",
			func() float64 {
				st, _ := runner.ArenaStats()
				return float64(st.Budget)
			})
	}
	sink.printer = newProgressPrinter(mode, os.Stderr, planned, sink.camp)
	if spec.Trace != nil {
		sink.traceWorkload = spec.Trace.Workload
		sink.traceMachine = spec.Trace.Machine
	}
	runner.SetCellObserver(func(ev experiments.CellEvent) {
		s := cellSample(ev)
		sink.noteLanes(s)
		sink.noteCPI(s)
		sink.camp.CellDone(s)
		sink.printer.cellDone(s)
	}, time.Now)
	runner.SetCellStartObserver(func(cs experiments.CellStart) {
		sink.camp.CellStarted(telemetry.CellStartSample{
			Machine:    cs.Machine,
			Workload:   cs.Workload,
			ConfigJSON: cs.ConfigJSON,
			Experiment: cs.Experiment,
			Stack:      cs.Stack,
		})
	})
	if listen != "" {
		srv, err := telemetry.Serve(listen, reg)
		if err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		srv.SetCampaign(sink.camp)
		sink.srv = srv
		fmt.Fprintf(os.Stderr, "telemetry: listening on %s\n", srv.Addr())
		if testListenHook != nil {
			testListenHook(srv.Addr())
		}
	}
	return sink, nil
}

// noteCPI records a cell's frozen CPI stack for the end-of-run table. A
// memo hit re-delivers a stack the first delivery already recorded; a
// store hit restores one from a previous campaign and is kept.
func (t *telemetrySink) noteCPI(s telemetry.CellSample) {
	if s.CPIStack == nil || s.MemoHit {
		return
	}
	key := s.Workload + "\x00" + s.Machine + "\x00" + telemetry.HashConfig(s.ConfigJSON)
	t.cpiMu.Lock()
	t.cpiRows[key] = cpiRow{
		workload: s.Workload,
		machine:  s.Machine,
		hash:     telemetry.HashConfig(s.ConfigJSON),
		failed:   s.Failed,
		snap:     s.CPIStack,
	}
	t.cpiMu.Unlock()
}

// cpiTable renders the collected stacks, one row per distinct cell sorted
// by (workload, machine, config hash), one percentage column per bucket.
// The title line starts with "CPI stacks" so byte-identity comparisons can
// strip the block with a single sed range.
func (t *telemetrySink) cpiTable() *stats.Table {
	t.cpiMu.Lock()
	rows := make([]cpiRow, 0, len(t.cpiRows))
	for _, r := range t.cpiRows {
		rows = append(rows, r)
	}
	t.cpiMu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.workload != b.workload {
			return a.workload < b.workload
		}
		if a.machine != b.machine {
			return a.machine < b.machine
		}
		return a.hash < b.hash
	})
	header := []string{"workload", "machine", "cycles"}
	for b := cpustack.Bucket(0); b < cpustack.NumBuckets; b++ {
		header = append(header, b.String())
	}
	tbl := stats.NewTable("CPI stacks: % of simulated cycles per attribution bucket", header...)
	for _, r := range rows {
		total := r.snap.Total()
		machine := r.machine
		if r.failed {
			machine += " (failed)"
		}
		cells := []string{r.workload, machine, strconv.FormatUint(total, 10)}
		for b := cpustack.Bucket(0); b < cpustack.NumBuckets; b++ {
			if total == 0 {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, stats.Percent(float64(r.snap.Get(b))/float64(total)))
		}
		tbl.AddRow(cells...)
	}
	return tbl
}

// noteLanes remembers the traced cell's port slots per cycle, which
// becomes the lane count of the trace's per-port track group.
func (t *telemetrySink) noteLanes(s telemetry.CellSample) {
	if s.Workload != t.traceWorkload || s.Machine != t.traceMachine || s.Failed {
		return
	}
	m, err := config.FromJSON(s.ConfigJSON)
	if err != nil {
		return
	}
	t.laneMu.Lock()
	if t.traceLanes == 0 {
		t.traceLanes = core.SlotsPerCycle(m.Ports)
	}
	t.laneMu.Unlock()
}

// lanes returns the learned lane count (0 if the traced cell never ran).
func (t *telemetrySink) lanes() int {
	t.laneMu.Lock()
	defer t.laneMu.Unlock()
	return t.traceLanes
}

// close shuts the metrics endpoint down, first holding it open for the
// requested grace period so external scrapers (CI smoke tests, a curl in
// another terminal) can observe the finished campaign. Shutdown is
// graceful: a scrape in flight at the end of the hold completes rather
// than seeing a reset connection.
func (t *telemetrySink) close(hold time.Duration) {
	if t == nil || t.srv == nil {
		return
	}
	if hold > 0 {
		fmt.Fprintf(os.Stderr, "telemetry: holding metrics endpoint for %s\n", hold)
		time.Sleep(hold)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := t.srv.Shutdown(ctx); err != nil {
		t.srv.Close()
	}
}

// writeTrace converts the runner's captured flight-recorder events into
// a Chrome trace-event JSON file for Perfetto / chrome://tracing.
func writeTrace(out io.Writer, runner *experiments.Runner, sink *telemetrySink, path string) error {
	cap := runner.Trace()
	if cap == nil {
		fmt.Fprintf(os.Stderr, "telemetry: trace cell %s@%s never ran; no trace written\n",
			sink.traceWorkload, sink.traceMachine)
		return nil
	}
	trace, err := telemetry.BuildTrace(cap.Events, telemetry.TraceMeta{
		Machine:  cap.Machine,
		Workload: cap.Workload,
		Seed:     cap.Seed,
		Lanes:    sink.lanes(),
		Dropped:  cap.Dropped,
		Total:    cap.Total,
	})
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	data, err := trace.Encode()
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	fmt.Fprintf(out, "trace written: %s (%d events, %d dropped; open in ui.perfetto.dev)\n",
		path, len(cap.Events), cap.Dropped)
	return nil
}
