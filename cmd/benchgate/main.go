// Command benchgate is the CI benchmark-trajectory gate: it compares a
// freshly produced BENCH json (from `portbench -benchjson`) against the
// checked-in baseline and exits non-zero when throughput has regressed.
//
// Usage:
//
//	benchgate -baseline results/BENCH_baseline.json -current BENCH_ci.json
//	          [-max-regress 0.10] [-max-alloc-growth 0.25]
//
// Two total-run metrics are gated: cycles/sec may not fall more than
// -max-regress below the baseline, and allocs/1k-cycles may not grow more
// than -max-alloc-growth above it. The allocation metric is hardware-
// independent and is the stricter long-term signal; the rate metric catches
// gross slowdowns on comparable hardware.
package main

import (
	"flag"
	"fmt"
	"os"

	"portsim/internal/benchfmt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baselinePath   = fs.String("baseline", "", "checked-in baseline BENCH json")
		currentPath    = fs.String("current", "", "freshly produced BENCH json")
		maxRegress     = fs.Float64("max-regress", 0.10, "max fractional cycles/sec regression before failing")
		maxAllocGrowth = fs.Float64("max-alloc-growth", 0.25, "max fractional allocs/1k-cycles growth before failing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" || *currentPath == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	baseline, err := benchfmt.Read(*baselinePath)
	if err != nil {
		return err
	}
	current, err := benchfmt.Read(*currentPath)
	if err != nil {
		return err
	}
	if baseline.Parallel != current.Parallel || baseline.Insts != current.Insts || baseline.Workloads != current.Workloads {
		return fmt.Errorf("runs are not comparable: baseline %d workloads x %d insts at parallel %d, current %d x %d at %d",
			baseline.Workloads, baseline.Insts, baseline.Parallel,
			current.Workloads, current.Insts, current.Parallel)
	}
	fmt.Printf("baseline: %.0f cycles/s, %.2f allocs/1k-cycles (%s, %s)\n",
		baseline.Total.CyclesPerSec, baseline.Total.AllocsPer1kCycles, baseline.Date, hostLine(baseline))
	fmt.Printf("current:  %.0f cycles/s, %.2f allocs/1k-cycles (%s, %s)\n",
		current.Total.CyclesPerSec, current.Total.AllocsPer1kCycles, current.Date, hostLine(current))
	if baseline.HostCPUs != 0 && current.HostCPUs != 0 && baseline.HostCPUs != current.HostCPUs {
		fmt.Printf("note: host CPU counts differ (%d vs %d); the cycles/sec comparison spans machines\n",
			baseline.HostCPUs, current.HostCPUs)
	}
	if err := benchfmt.Compare(baseline, current, *maxRegress, *maxAllocGrowth); err != nil {
		return err
	}
	fmt.Println("benchgate: ok")
	return nil
}

// hostLine renders a report's host description for the verdict: the rate
// metrics only compare cleanly between equal hosts, so both sides are
// printed next to the numbers they qualify.
func hostLine(r *benchfmt.Report) string {
	if r.HostCPUs == 0 && r.GoMaxProcs == 0 {
		return "host unknown"
	}
	return fmt.Sprintf("%d cpus, gomaxprocs %d", r.HostCPUs, r.GoMaxProcs)
}
