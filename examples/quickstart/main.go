// Quickstart: run one workload on the paper's baseline and proposed
// machines and print the IPC of each — the smallest useful portsim program.
package main

import (
	"fmt"
	"log"

	"portsim"
)

func main() {
	const (
		workload = "compress"
		insts    = 200_000
		seed     = 42
	)
	for _, preset := range []string{"baseline", "best-single", "dual-port"} {
		cfg, ok := portsim.ConfigByName(preset)
		if !ok {
			log.Fatalf("unknown preset %q", preset)
		}
		sim, err := portsim.New(cfg, workload, seed)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(insts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s IPC %.3f  (%d cycles for %d instructions)\n",
			preset, res.IPC, res.Cycles, res.Instructions)
	}
}
