// Tracereplay demonstrates the trace workflow: generate a workload's
// instruction stream once, serialise it to the compact binary trace format,
// and replay the identical stream against several machine configurations —
// the way studies hold the workload constant while sweeping hardware.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"portsim"
	"portsim/internal/isa"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

func main() {
	const insts = 100_000
	path := filepath.Join(os.TempDir(), "portsim-demo.trace")

	// 1. Capture: generate the mp3d stream and write it out.
	prof, ok := workload.ByName("mp3d")
	if !ok {
		log.Fatal("mp3d workload missing")
	}
	gen, err := workload.New(prof, 42)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w := trace.NewWriter(f)
	var in isa.Inst
	limited := trace.NewLimit(gen, insts)
	for limited.Next(&in) {
		if err := w.Write(&in); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("captured %d instructions to %s (%.2f bytes/inst)\n\n",
		w.Count(), path, float64(info.Size())/float64(w.Count()))

	// 2. Replay the identical stream on each machine preset.
	for _, preset := range []string{"baseline", "banked-4", "best-single", "dual-port"} {
		cfg, ok := portsim.ConfigByName(preset)
		if !ok {
			log.Fatalf("unknown preset %q", preset)
		}
		rf, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		reader := trace.NewReader(rf)
		sim, err := portsim.NewFromStream(cfg, reader)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(0) // to end of trace
		if err != nil {
			log.Fatal(err)
		}
		if err := reader.Err(); err != nil {
			log.Fatal(err)
		}
		rf.Close()
		fmt.Printf("%-12s IPC %.3f (%d cycles)\n", preset, res.IPC, res.Cycles)
	}
	os.Remove(path)
}
