// Portsweep explores the paper's design space on one workload: port count,
// store-buffer depth, and the load-all line-buffer count, printing an IPC
// table per dimension. It shows how to build custom machine variants from a
// preset through the public API.
package main

import (
	"flag"
	"fmt"
	"log"

	"portsim"
)

func main() {
	workload := flag.String("workload", "eqntott", "workload to sweep")
	insts := flag.Uint64("insts", 150_000, "instructions per point")
	flag.Parse()

	fmt.Printf("design-space sweep on %q (%d instructions per point)\n\n", *workload, *insts)

	fmt.Println("ports (8-byte, no techniques):")
	for _, n := range []int{1, 2, 4} {
		cfg := portsim.BaselineConfig()
		cfg.Ports.Count = n
		fmt.Printf("  %d port(s): IPC %.3f\n", n, run(cfg, *workload, *insts))
	}

	fmt.Println("\nstore-buffer depth (single 8-byte port):")
	for _, d := range []int{1, 4, 16} {
		cfg := portsim.BaselineConfig()
		cfg.Ports.StoreBufferEntries = d
		fmt.Printf("  depth %2d: IPC %.3f\n", d, run(cfg, *workload, *insts))
	}

	fmt.Println("\nload-all line buffers (single 32-byte port):")
	for _, n := range []int{0, 2, 8} {
		cfg := portsim.BaselineConfig()
		cfg.Ports.WidthBytes = 32
		cfg.Ports.LineBuffers = n
		fmt.Printf("  %d buffers: IPC %.3f\n", n, run(cfg, *workload, *insts))
	}

	fmt.Println("\nall techniques (paper's proposal):")
	fmt.Printf("  best-single: IPC %.3f\n", run(portsim.BestSingleConfig(), *workload, *insts))
	fmt.Printf("  dual-port reference: IPC %.3f\n", run(portsim.DualPortConfig(), *workload, *insts))
}

func run(cfg portsim.Config, workload string, insts uint64) float64 {
	sim, err := portsim.New(cfg, workload, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(insts)
	if err != nil {
		log.Fatal(err)
	}
	return res.IPC
}
