// Oswork studies the paper's central methodological point: operating-system
// activity changes the memory behaviour the cache port sees. It takes the
// OLTP workload, sweeps the kernel-entry cadence through a customised
// profile, and reports how OS intensity affects IPC, the L1D miss rate, and
// how much of the single-port gap the paper's techniques recover.
package main

import (
	"fmt"
	"log"

	"portsim"
)

func main() {
	base, ok := portsim.WorkloadByName("database")
	if !ok {
		log.Fatal("database workload missing")
	}
	const insts = 150_000

	fmt.Println("OS intensity study on the OLTP workload")
	fmt.Printf("%-10s %8s %8s %8s %8s %10s\n",
		"intensity", "kernel%", "single", "best", "dual", "recovered")
	for _, pt := range []struct {
		label string
		every int // mean user instructions between kernel entries; 0 = none
	}{
		{"none", 0},
		{"low", 16000},
		{"medium", 4000},
		{"high", 1200},
	} {
		prof := base
		prof.Name = "database-" + pt.label
		if pt.every == 0 {
			prof.Kernel.EveryMean = 0
		} else {
			prof.Kernel.EveryMean = pt.every
		}

		single := run(portsim.BaselineConfig(), prof)
		best := run(portsim.BestSingleConfig(), prof)
		dual := run(portsim.DualPortConfig(), prof)

		kernelFrac := float64(single.KernelInsts) / float64(single.Instructions)
		gap := dual.IPC - single.IPC
		recovered := 0.0
		if gap > 0 {
			recovered = (best.IPC - single.IPC) / gap
		}
		fmt.Printf("%-10s %7.1f%% %8.3f %8.3f %8.3f %9.0f%%\n",
			pt.label, 100*kernelFrac, single.IPC, best.IPC, dual.IPC, 100*recovered)
	}
	fmt.Println("\n'recovered' is the fraction of the single-to-dual IPC gap that the")
	fmt.Println("paper's techniques (wide port + load-all + combining buffer) win back.")
}

func run(cfg portsim.Config, prof portsim.Profile) *portsim.Result {
	sim, err := portsim.NewFromProfile(cfg, prof, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(150_000)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
