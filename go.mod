module portsim

go 1.22
