package portsim_test

import (
	"strings"
	"testing"

	"portsim"
)

// TestNilStreamRejected pins the public-API hardening: a nil stream is
// reported at construction, not as a panic mid-run.
func TestNilStreamRejected(t *testing.T) {
	sim, err := portsim.NewFromStream(portsim.BaselineConfig(), nil)
	if err == nil || !strings.Contains(err.Error(), "nil instruction stream") {
		t.Fatalf("NewFromStream(nil) = %v, %v; want nil-stream error", sim, err)
	}
}

// TestUnboundedRunOnEndlessGeneratorRejected pins the other foot-gun: the
// built-in workload generators never end, so Run(0) would never return.
func TestUnboundedRunOnEndlessGeneratorRejected(t *testing.T) {
	sim, err := portsim.New(portsim.BaselineConfig(), "compress", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(0); err == nil || !strings.Contains(err.Error(), "maxInstructions must be positive") {
		t.Fatalf("Run(0) on an endless generator = %v; want the unbounded-run error", err)
	}
	// The rejected call must not consume the simulation.
	if res, err := sim.Run(2_000); err != nil || res.Instructions != 2_000 {
		t.Fatalf("bounded Run after rejected Run(0): %v, %v", res, err)
	}
}

// TestCustomProfileUnboundedRejected checks NewFromProfile marks the
// simulation endless too.
func TestCustomProfileUnboundedRejected(t *testing.T) {
	prof, ok := portsim.WorkloadByName("compress")
	if !ok {
		t.Fatal("compress missing")
	}
	sim, err := portsim.NewFromProfile(portsim.BaselineConfig(), prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(0); err == nil {
		t.Fatal("Run(0) on a profile-backed endless generator accepted")
	}
}
