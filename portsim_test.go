package portsim_test

import (
	"testing"

	"portsim"
	"portsim/internal/isa"
	"portsim/internal/trace"
)

func TestPresetsAvailable(t *testing.T) {
	names := portsim.ConfigNames()
	if len(names) != 7 {
		t.Fatalf("expected 7 presets, got %v", names)
	}
	for _, name := range names {
		cfg, ok := portsim.ConfigByName(name)
		if !ok {
			t.Errorf("preset %q missing", name)
		}
		if cfg.Name == "" {
			t.Errorf("preset %q has empty machine name", name)
		}
	}
	if _, ok := portsim.ConfigByName("octo-port"); ok {
		t.Error("unknown preset resolved")
	}
}

func TestWorkloadsAvailable(t *testing.T) {
	if len(portsim.Workloads()) != 7 {
		t.Fatalf("expected 7 workloads, got %v", portsim.Workloads())
	}
	for _, name := range portsim.Workloads() {
		if _, ok := portsim.WorkloadByName(name); !ok {
			t.Errorf("workload %q missing", name)
		}
	}
}

func TestQuickRun(t *testing.T) {
	sim, err := portsim.New(portsim.BaselineConfig(), "compress", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 20_000 {
		t.Errorf("committed %d, want 20000", res.Instructions)
	}
	if res.IPC <= 0 || res.IPC > 4 {
		t.Errorf("IPC %.3f implausible", res.IPC)
	}
	if res.Counters.Get("port.cycles") == 0 {
		t.Error("port statistics missing")
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := portsim.New(portsim.BaselineConfig(), "quake", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := portsim.BaselineConfig()
	cfg.Ports.Count = 0
	if _, err := portsim.New(cfg, "compress", 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSimulationIsSingleUse(t *testing.T) {
	sim, err := portsim.New(portsim.BaselineConfig(), "compress", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1000); err == nil {
		t.Error("second Run on the same simulation succeeded")
	}
}

func TestCustomProfile(t *testing.T) {
	prof, _ := portsim.WorkloadByName("eqntott")
	prof.Name = "eqntott-no-os"
	prof.Kernel.EveryMean = 0
	sim, err := portsim.NewFromProfile(portsim.DualPortConfig(), prof, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelInsts != 0 {
		t.Errorf("OS-disabled profile committed %d kernel instructions", res.KernelInsts)
	}
}

func TestCustomStream(t *testing.T) {
	insts := make([]portsim.Instruction, 100)
	for i := range insts {
		insts[i] = portsim.Instruction{
			PC:    uint64(0x1000 + (i%8)*4),
			Class: isa.IntALU,
			Dest:  isa.Reg(1 + i%8),
		}
	}
	sim, err := portsim.NewFromStream(portsim.BaselineConfig(), trace.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(0) // run to stream end
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 100 {
		t.Errorf("committed %d, want 100", res.Instructions)
	}
}

func TestSeedsChangeResults(t *testing.T) {
	ipc := func(seed int64) float64 {
		sim, err := portsim.New(portsim.BaselineConfig(), "database", seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(20_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	if ipc(1) == ipc(2) {
		t.Error("different seeds produced identical IPC; generator seeding broken")
	}
	if ipc(3) != ipc(3) {
		t.Error("same seed produced different IPC; determinism broken")
	}
}
