// Package portsim is a cycle-level simulator of a dynamic superscalar
// microprocessor with a configurable multi-ported first-level data cache,
// reproducing Wilson, Olukotun & Rosenblum, "Increasing Cache Port
// Efficiency for Dynamic Superscalar Microprocessors" (ISCA 1996).
//
// The package exposes four machine presets (a single-ported baseline, dual-
// and quad-ported references, and the paper's proposed "best single"
// configuration: one wide port with a deep combining store buffer and
// load-all line buffers), seven synthetic workloads modelled on the paper's
// SimOS applications including operating-system activity, and a Simulation
// type that runs a workload on a machine and reports IPC plus detailed port
// and cache statistics.
//
// Quick start:
//
//	sim, err := portsim.New(portsim.BestSingleConfig(), "compress", 42)
//	if err != nil { ... }
//	res, err := sim.Run(500_000)
//	fmt.Printf("IPC %.3f\n", res.IPC)
//
// The full experiment suite behind EXPERIMENTS.md lives in cmd/portbench.
package portsim

import (
	"fmt"

	"portsim/internal/config"
	"portsim/internal/cpu"
	"portsim/internal/isa"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

// Config is a complete machine configuration. Construct one with a preset
// (BaselineConfig and friends) and adjust fields, then validate with
// (*Config).Validate via the underlying type.
type Config = config.Machine

// PortConfig is the data-cache port arrangement block of a Config — the
// experimental variables of the paper.
type PortConfig = config.Ports

// Result summarises a finished simulation: cycles, instructions, IPC, and a
// counter set with every detailed statistic (port.*, l1d.*, ...).
type Result = cpu.Result

// Profile describes a synthetic workload; see Workloads for the built-in
// set modelled on the paper's applications.
type Profile = workload.Profile

// Instruction is one dynamic instruction record, for callers that drive the
// simulator with their own streams.
type Instruction = isa.Inst

// InstructionStream supplies dynamic instructions to a Simulation.
type InstructionStream = trace.Stream

// BaselineConfig returns the paper's baseline: a single 8-byte cache port
// with a minimal store buffer and no port-efficiency techniques.
func BaselineConfig() Config { return config.Baseline() }

// DualPortConfig returns the expensive dual-ported reference machine.
func DualPortConfig() Config { return config.DualPort() }

// QuadPortConfig returns the idealised four-ported machine.
func QuadPortConfig() Config { return config.QuadPort() }

// BestSingleConfig returns the paper's proposal: one 32-byte port, a
// 16-entry combining store buffer and four load-all line buffers.
func BestSingleConfig() Config { return config.BestSingle() }

// ConfigNames lists the preset names accepted by ConfigByName.
func ConfigNames() []string { return config.PresetNames() }

// ConfigByName returns a preset machine configuration.
func ConfigByName(name string) (Config, bool) {
	ctor, ok := config.Presets[name]
	if !ok {
		return Config{}, false
	}
	return ctor(), true
}

// Workloads lists the built-in workload names in the order the paper-style
// tables use.
func Workloads() []string { return workload.Names() }

// WorkloadByName returns a built-in workload profile, which callers may
// modify before passing to NewFromProfile.
func WorkloadByName(name string) (Profile, bool) { return workload.ByName(name) }

// Simulation is one machine plus one instruction stream, ready to run. A
// Simulation is single-use: create a new one for every run.
type Simulation struct {
	core *cpu.Core
	done bool
	// endless marks a simulation over a built-in workload generator,
	// which never exhausts its stream: Run must be given a positive
	// instruction bound or it would spin until the deadline guard —
	// and with a zero bound the guard is disabled, so it would never
	// return at all.
	endless bool
}

// New builds a simulation of the named built-in workload on the given
// machine.
func New(cfg Config, workloadName string, seed int64) (*Simulation, error) {
	prof, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("portsim: unknown workload %q (have %v)", workloadName, Workloads())
	}
	return NewFromProfile(cfg, prof, seed)
}

// NewFromProfile builds a simulation of an arbitrary (possibly customised)
// workload profile.
func NewFromProfile(cfg Config, prof Profile, seed int64) (*Simulation, error) {
	gen, err := workload.New(prof, seed)
	if err != nil {
		return nil, err
	}
	s, err := NewFromStream(cfg, gen)
	if err != nil {
		return nil, err
	}
	s.endless = true
	return s, nil
}

// NewFromStream builds a simulation over a caller-supplied instruction
// stream (for replaying captured traces or custom generators). The stream
// must be non-nil.
func NewFromStream(cfg Config, stream InstructionStream) (*Simulation, error) {
	if stream == nil {
		return nil, fmt.Errorf("portsim: nil instruction stream")
	}
	core, err := cpu.New(&cfg, stream)
	if err != nil {
		return nil, err
	}
	return &Simulation{core: core}, nil
}

// Run simulates until maxInstructions commit (zero: until the stream ends)
// and returns the result. The built-in workload generators never end, so a
// positive bound is required with them; Run rejects the combination instead
// of hanging. Runs are guarded by a cycle deadline and a forward-progress
// watchdog, so a wedged model returns a diagnosed error rather than
// spinning forever.
func (s *Simulation) Run(maxInstructions uint64) (*Result, error) {
	if s.done {
		return nil, fmt.Errorf("portsim: simulation already ran; create a new one")
	}
	if s.endless && maxInstructions == 0 {
		return nil, fmt.Errorf("portsim: maxInstructions must be positive: the built-in workload generators never end, so an unbounded run would never return")
	}
	s.done = true
	return s.core.Run(cpu.Options{
		MaxInstructions: maxInstructions,
		DeadlineCycles:  cpu.DeadlineFor(maxInstructions),
		StallCycles:     cpu.DefaultStallCycles,
	})
}
