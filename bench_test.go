// Benchmarks: one testing.B per reconstructed table/figure (DESIGN.md's
// experiment index). Each benchmark executes its experiment end to end per
// iteration at a reduced scale and reports the experiment's headline number
// as a custom metric, so `go test -bench=.` both times the harness and
// regenerates the result shapes. The full-scale tables behind EXPERIMENTS.md
// come from cmd/portbench.
package portsim_test

import (
	"fmt"
	"runtime"
	"testing"

	"portsim"
	"portsim/internal/experiments"
)

// benchSpec keeps benchmark iterations affordable while still running every
// stage of each experiment. Parallel is pinned to GOMAXPROCS so the CI
// bench smoke exercises the parallel experiment engine, not the serial
// fallback.
func benchSpec() experiments.Spec {
	return experiments.Spec{
		Workloads: []string{"compress", "eqntott", "database"},
		Insts:     30_000,
		Seed:      42,
		Parallel:  runtime.GOMAXPROCS(0),
	}
}

// newBenchRunner builds a fresh runner with the benchmark timer stopped, so
// reported ns/op and allocs/op measure the experiment itself, not spec or
// runner construction. The runner must be fresh each iteration — its memo
// cache would otherwise turn iterations 2+ into cache lookups.
func newBenchRunner(b *testing.B) *experiments.Runner {
	b.StopTimer()
	r := experiments.NewRunner(benchSpec())
	b.StartTimer()
	return r
}

func BenchmarkT1BaselineConfig(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if T1 := experiments.T1Baseline(); T1.String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkT2WorkloadCharacterisation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.T2Characterisation(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].BaselineIPC, "compress-IPC")
	}
}

func BenchmarkF1PortCount(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.F1PortCount(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].IPC[1]/rows[0].IPC[2], "single/dual")
	}
}

func BenchmarkF2BufferDepth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.F2BufferDepth(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].IPC[32]/rows[0].IPC[1], "deep/shallow")
	}
}

func BenchmarkF3PortWidth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.F3PortWidth(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].IPC[32]/rows[0].IPC[8], "wide/narrow")
	}
}

func BenchmarkF4LineBuffers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.F4LineBuffers(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].HitRate[4], "lb-hit-rate")
	}
}

func BenchmarkF5StoreCombining(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.F5StoreCombining(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].StoresPerDrain[16], "stores-per-drain")
	}
}

func BenchmarkF6HeadlineComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.F6Headline(r)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, row := range rows {
			sum += row.BestOfDual
		}
		b.ReportMetric(sum/float64(len(rows)), "best/dual")
	}
}

func BenchmarkT3PortUtilisation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.T3PortUtilisation(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].PortUtilisation, "port-util")
	}
}

func BenchmarkF7KernelIntensity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.F7KernelIntensity(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].KernelFrac, "kernel-frac-high")
	}
}

func BenchmarkA1Ablation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.A1Ablation(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-2].OfDual, "all-techniques/dual")
	}
}

func BenchmarkA2Banking(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.A2Banking(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[3].OfDual, "8-banks/dual")
	}
}

func BenchmarkA3Prefetch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.A3Prefetch(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Accuracy, "pf-accuracy")
	}
}

func BenchmarkA4MemSpeculation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.A4MemSpeculation(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Speculative/rows[0].Conservative, "spec-speedup")
	}
}

func BenchmarkA5WritePolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.A5WritePolicy(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].WTPlain/rows[0].WBPlain, "wt/wb")
	}
}

func BenchmarkA6Multiprogramming(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.A6Multiprogramming(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].L1DMiss, "miss-at-8-procs")
	}
}

func BenchmarkA7ArbitrationPolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.A7ArbitrationPolicy(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].StoresFirst/rows[0].LoadsFirst, "sf/lf")
	}
}

func BenchmarkT4GrantDistribution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.T4GrantDistribution(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Frac[1], "busy-frac")
	}
}

func BenchmarkA8WrongPathFetch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		rows, _, err := experiments.A8WrongPathFetch(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].PollutedIPC/rows[0].IdealIPC, "polluted/ideal")
	}
}

// BenchmarkParallelScaling times the multi-cell headline experiment at one
// worker and at GOMAXPROCS workers on a fresh (unmemoised) runner each
// iteration: the ratio of the two is the experiment engine's wall-clock
// speedup on this host.
func BenchmarkParallelScaling(b *testing.B) {
	levels := []int{1}
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		levels = append(levels, procs)
	}
	for _, p := range levels {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				spec := benchSpec()
				spec.Parallel = p
				r := experiments.NewRunner(spec)
				b.StartTimer()
				rows, _, err := experiments.F6Headline(r)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].BestOfDual, "best/dual")
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed in simulated
// instructions per wall-clock second — the number that bounds how large the
// full-scale experiment runs can be.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const insts = 100_000
	b.SetBytes(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim, err := portsim.New(portsim.BaselineConfig(), "compress", 42)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := sim.Run(insts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Instructions != insts {
			b.Fatalf("committed %d", res.Instructions)
		}
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}
