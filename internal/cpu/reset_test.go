package cpu

import (
	"testing"

	"portsim/internal/config"
	"portsim/internal/workload"
)

// resetRun simulates one workload on the core and returns the result.
func resetRun(t *testing.T, c *Core, insts uint64) *Result {
	t.Helper()
	res, err := c.Run(Options{
		MaxInstructions: insts,
		DeadlineCycles:  DeadlineFor(insts),
		StallCycles:     DefaultStallCycles,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireSameResult fails unless two results agree on every number the
// experiment tables could render, including the full counter set.
func requireSameResult(t *testing.T, what string, got, want *Result) {
	t.Helper()
	if got.Cycles != want.Cycles || got.Instructions != want.Instructions || got.IPC != want.IPC {
		t.Fatalf("%s: headline mismatch: got cycles=%d insts=%d ipc=%v, want cycles=%d insts=%d ipc=%v",
			what, got.Cycles, got.Instructions, got.IPC, want.Cycles, want.Instructions, want.IPC)
	}
	if got.UserInsts != want.UserInsts || got.KernelInsts != want.KernelInsts ||
		got.Loads != want.Loads || got.Stores != want.Stores ||
		got.Branches != want.Branches || got.Mispredicts != want.Mispredicts {
		t.Fatalf("%s: class-count mismatch:\ngot  %+v\nwant %+v", what, got, want)
	}
	if gs, ws := got.Counters.String(), want.Counters.String(); gs != ws {
		t.Fatalf("%s: counter sets differ:\ngot:\n%s\nwant:\n%s", what, gs, ws)
	}
}

// TestResetMatchesFresh is the contract behind the experiment runner's core
// pool: a core that already ran one workload and was Reset for another must
// produce a result bit-identical to a freshly constructed core running that
// other workload. Any subsystem field that Reset forgets to restore shows up
// here as a counter or cycle-count divergence.
func TestResetMatchesFresh(t *testing.T) {
	const insts = 25_000
	machines := []config.Machine{config.Baseline(), config.BestSingle(), config.DualPort()}
	for _, m := range machines {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			// The warm-up and measured workloads differ on purpose: a
			// stale-state bug only shows when the histories disagree.
			warm, err := workload.New(mustProfile(t, "compress"), 42)
			if err != nil {
				t.Fatal(err)
			}
			meas, err := workload.New(mustProfile(t, "database"), 42)
			if err != nil {
				t.Fatal(err)
			}

			reused, err := New(&m, warm)
			if err != nil {
				t.Fatal(err)
			}
			resetRun(t, reused, insts)
			if err := reused.Reset(meas); err != nil {
				t.Fatal(err)
			}
			got := resetRun(t, reused, insts)

			measFresh, err := workload.New(mustProfile(t, "database"), 42)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := New(&m, measFresh)
			if err != nil {
				t.Fatal(err)
			}
			want := resetRun(t, fresh, insts)

			requireSameResult(t, "reset-vs-fresh", got, want)
			checkInvariants(t, reused)
		})
	}
}

// TestResetRepeatedly reuses one core across several cycles of the same
// workload; every pass must reproduce the first bit-for-bit.
func TestResetRepeatedly(t *testing.T) {
	const insts = 15_000
	m := config.BestSingle()
	g, err := workload.New(mustProfile(t, "eqntott"), 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(&m, g)
	if err != nil {
		t.Fatal(err)
	}
	want := resetRun(t, c, insts)
	for pass := 0; pass < 3; pass++ {
		g, err := workload.New(mustProfile(t, "eqntott"), 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Reset(g); err != nil {
			t.Fatal(err)
		}
		got := resetRun(t, c, insts)
		requireSameResult(t, "repeat pass", got, want)
	}
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return p
}
