package cpu

import (
	"testing"

	"portsim/internal/config"
	"portsim/internal/cpustack"
	"portsim/internal/stats"
	"portsim/internal/workload"
)

// acctRun simulates one bounded cell with accounting armed and returns the
// result plus the frozen stack.
func acctRun(t *testing.T, m config.Machine, prof string, noSkip bool) (*Result, *cpustack.Snapshot) {
	t.Helper()
	g, err := workload.New(mustProfile(t, prof), 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(&m, g)
	if err != nil {
		t.Fatal(err)
	}
	stack := cpustack.NewStack()
	res, err := c.Run(Options{
		MaxInstructions: 8_000,
		DeadlineCycles:  DeadlineFor(8_000),
		StallCycles:     DefaultStallCycles,
		NoSkip:          noSkip,
		CPIStack:        stack,
	})
	if err != nil {
		t.Fatalf("%s on %s (noskip=%v): %v", prof, m.Name, noSkip, err)
	}
	if res.CPIStack == nil {
		t.Fatalf("%s on %s: armed run returned nil CPIStack", prof, m.Name)
	}
	if got, want := res.CPIStack.Total(), stack.Total(); got != want {
		t.Fatalf("snapshot total %d != live stack total %d", got, want)
	}
	return res, res.CPIStack
}

// TestCPIStackConservation is the tentpole invariant over every machine
// preset × skip on/off: the attribution buckets partition the run's
// cycles exactly, and the per-bucket totals are identical whether the
// clock stepped every cycle or fast-forwarded over inert gaps.
func TestCPIStackConservation(t *testing.T) {
	for _, preset := range config.PresetNames() {
		m := config.Presets[preset]()
		t.Run(preset, func(t *testing.T) {
			resSkip, stackSkip := acctRun(t, m, "compress", false)
			resStep, stackStep := acctRun(t, m, "compress", true)
			if err := stackSkip.CheckConservation(resSkip.Cycles); err != nil {
				t.Errorf("skip on: %v", err)
			}
			if err := stackStep.CheckConservation(resStep.Cycles); err != nil {
				t.Errorf("skip off: %v", err)
			}
			if resSkip.Cycles != resStep.Cycles {
				t.Fatalf("cycle counts diverge with accounting armed: skip %d, step %d",
					resSkip.Cycles, resStep.Cycles)
			}
			if *stackSkip != *stackStep {
				for b := cpustack.Bucket(0); b < cpustack.NumBuckets; b++ {
					if stackSkip.Get(b) != stackStep.Get(b) {
						t.Errorf("bucket %s: skip %d, step %d",
							b, stackSkip.Get(b), stackStep.Get(b))
					}
				}
			}
			if stackSkip.Get(cpustack.Useful) == 0 {
				t.Error("no cycles attributed to useful work")
			}
		})
	}
}

// TestCPIStackDoesNotPerturbResults pins the byte-identity contract:
// arming accounting must not change a single counter, and the counter set
// must not grow a CPI entry (the stack rides on Result.CPIStack, outside
// the table-rendering path).
func TestCPIStackDoesNotPerturbResults(t *testing.T) {
	run := func(stack *cpustack.Stack) *Result {
		g, err := workload.New(mustProfile(t, "database"), 42)
		if err != nil {
			t.Fatal(err)
		}
		m := config.BestSingle()
		c, err := New(&m, g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(Options{MaxInstructions: 8_000, CPIStack: stack})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	armed := run(cpustack.NewStack())
	if plain.CPIStack != nil {
		t.Error("unarmed run carries a CPI stack")
	}
	if plain.Counters.String() != armed.Counters.String() {
		t.Errorf("counters diverge with accounting armed:\n--- off ---\n%s\n--- on ---\n%s",
			plain.Counters, armed.Counters)
	}
	if plain.Cycles != armed.Cycles || plain.IPC != armed.IPC {
		t.Errorf("headline results diverge: off (%d cycles, IPC %v), on (%d cycles, IPC %v)",
			plain.Cycles, plain.IPC, armed.Cycles, armed.IPC)
	}
}

// TestCPIStackAttributionSanity cross-checks the stack against counters
// the model already keeps: a store-buffer-starved machine (2-entry
// buffer, no combining) must show store-buffer-full cycles, and the
// attribution must track the independently counted commit stalls.
func TestCPIStackAttributionSanity(t *testing.T) {
	m := config.Baseline() // 2-entry store buffer: commit stalls guaranteed
	res, stack := acctRun(t, m, "compress", false)
	if got := stack.Get(cpustack.StoreBufferFull); got == 0 {
		t.Error("baseline run attributed zero cycles to store-buffer-full")
	}
	// The bucket and the counter measure overlapping but distinct things:
	// a cycle that retires an instruction and then hits a refused store
	// bumps the counter but is attributed useful (precedence rule 1),
	// while the end-of-run drain tail lands in the bucket without touching
	// the counter. Useful + store-buffer-full must cover the counter.
	sb := stack.Get(cpustack.StoreBufferFull)
	useful := stack.Get(cpustack.Useful)
	if ctr := res.Counters.Get(stats.StallCommitStoreBuffer); sb+useful < ctr {
		t.Errorf("store-buffer-full %d + useful %d < commit-stall counter %d", sb, useful, ctr)
	}
	if sb > res.Cycles {
		t.Errorf("store-buffer-full bucket %d exceeds the run's %d cycles", sb, res.Cycles)
	}
}

// TestStepDoesNotAllocateWithCPIStack extends the zero-alloc proof to the
// accounting path: classifying and charging a cycle must not touch the
// heap, with the stack armed exactly as the experiment runner arms it.
func TestStepDoesNotAllocateWithCPIStack(t *testing.T) {
	m := config.BestSingle()
	g, err := workload.New(mustProfile(t, "compress"), 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(&m, g)
	if err != nil {
		t.Fatal(err)
	}
	c.acct = cpustack.NewStack()
	var snap acctSnap
	acctedStep := func() {
		c.acctBegin(&snap)
		c.step()
		c.acctStep(&snap)
	}
	for i := 0; i < 20_000; i++ {
		acctedStep()
	}
	if avg := testing.AllocsPerRun(2000, acctedStep); avg != 0 {
		t.Errorf("accounted step allocates %v objects/cycle in steady state; want 0", avg)
	}
	if c.acct.Total() == 0 {
		t.Error("armed stack accumulated nothing")
	}
}

// TestCPIStackGapClassifierCoversWedge drives the fault-injected wedge
// (store buffer stuck mid-drain) and checks the wedged cycles land in the
// named store-buffer bucket, not in useful work: the watchdog kills the
// run, and the live stack — the caller-owned half of Options.CPIStack —
// still carries the attribution of everything up to the abort.
func TestCPIStackGapClassifierCoversWedge(t *testing.T) {
	m := config.Baseline()
	m.Ports.FaultStuckDrain = true
	g, err := workload.New(mustProfile(t, "compress"), 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(&m, g)
	if err != nil {
		t.Fatal(err)
	}
	stack := cpustack.NewStack()
	_, err = c.Run(Options{
		MaxInstructions: 8_000,
		DeadlineCycles:  DeadlineFor(8_000),
		StallCycles:     DefaultStallCycles,
		CPIStack:        stack,
	})
	if err == nil {
		t.Fatal("wedged run did not fail")
	}
	sb := stack.Get(cpustack.StoreBufferFull)
	useful := stack.Get(cpustack.Useful)
	if sb == 0 {
		t.Fatal("wedged run attributed zero cycles to store-buffer-full")
	}
	if sb <= useful {
		t.Errorf("wedge not dominant: store-buffer-full %d <= useful %d", sb, useful)
	}
	// Partial-run conservation: every charge matched a simulated cycle.
	if got := stack.Total(); got != c.Cycle() {
		t.Errorf("aborted run leaks cycles: buckets %d, clock %d", got, c.Cycle())
	}
}

// TestCPIStackSeedsVary widens the equivalence check across workloads and
// seeds on the machine the paper proposes.
func TestCPIStackSkipIdentityAcrossWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("skip-identity sweep is not short")
	}
	for _, prof := range []string{"eqntott", "database", "pmake"} {
		m := config.BestSingle()
		t.Run(prof, func(t *testing.T) {
			_, stackSkip := acctRun(t, m, prof, false)
			_, stackStep := acctRun(t, m, prof, true)
			if *stackSkip != *stackStep {
				t.Errorf("stacks diverge between skip and step:\nskip: %v\nstep: %v",
					stackSkip.Buckets, stackStep.Buckets)
			}
		})
	}
}
