package cpu

import (
	"errors"
	"testing"

	"portsim/internal/config"
	"portsim/internal/isa"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

// TestROBWrapAround runs far more instructions than the ROB holds so the
// ring indices wrap many times; the invariant checks catch reuse bugs.
func TestROBWrapAround(t *testing.T) {
	m := config.Baseline()
	m.Core.ROBEntries = 8
	classes := make([]isa.Class, 5000)
	for i := range classes {
		classes[i] = isa.IntALU
	}
	res := run(t, m, prog(classes, nil))
	if res.Instructions != 5000 {
		t.Errorf("committed %d", res.Instructions)
	}
}

// TestPhysicalRegisterExhaustion gives the renamer a single spare register:
// dispatch must stall-and-recover, never deadlock or double-allocate.
func TestPhysicalRegisterExhaustion(t *testing.T) {
	m := config.Baseline()
	m.Core.IntPhysRegs = 33
	classes := make([]isa.Class, 2000)
	for i := range classes {
		classes[i] = isa.IntALU
	}
	res := run(t, m, prog(classes, nil))
	if res.Instructions != 2000 {
		t.Errorf("committed %d", res.Instructions)
	}
	if res.IPC > 1.01 {
		t.Errorf("IPC %.3f with one spare register; rename stall not modelled", res.IPC)
	}
}

// TestFPDividerSerialises checks the unpipelined divider: independent FP
// divides still issue one per FPDiv latency.
func TestFPDividerSerialises(t *testing.T) {
	n := 200
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{
			PC:    uint64(0x1000 + (i%8)*4),
			Class: isa.FPDiv,
			Dest:  isa.FPBase + isa.Reg(1+i%20),
		}
	}
	res := run(t, config.Baseline(), insts)
	want := 1.0 / float64(config.Baseline().Lat.FPDiv)
	if res.IPC > want*1.2 {
		t.Errorf("independent FP divides ran at IPC %.3f; divider pipelined?", res.IPC)
	}
}

// TestIntDivVsMulContention: divides block the shared mul/div unit.
func TestIntDivVsMulContention(t *testing.T) {
	mixed := make([]isa.Inst, 0, 400)
	for i := 0; i < 200; i++ {
		mixed = append(mixed,
			isa.Inst{PC: uint64(0x1000 + (i%4)*8), Class: isa.IntDiv, Dest: isa.Reg(1 + i%8)},
			isa.Inst{PC: uint64(0x1004 + (i%4)*8), Class: isa.IntMul, Dest: isa.Reg(9 + i%8)},
		)
	}
	res := run(t, config.Baseline(), mixed)
	// Each div occupies the unit for IntDiv cycles; muls squeeze between.
	maxIPC := 2.0 / float64(config.Baseline().Lat.IntDiv)
	if res.IPC > maxIPC*1.3 {
		t.Errorf("div+mul stream IPC %.3f exceeds the divider bound %.3f", res.IPC, maxIPC)
	}
}

// TestTinyLoadQueue forces load-queue back-pressure without deadlock.
func TestTinyLoadQueue(t *testing.T) {
	m := config.Baseline()
	m.Core.LoadQueueEntries = 1
	classes := make([]isa.Class, 600)
	addrs := make([]uint64, 600)
	for i := range classes {
		classes[i] = isa.Load
		addrs[i] = uint64(0x8000 + (i%64)*8)
	}
	res := run(t, m, prog(classes, addrs))
	if res.Instructions != 600 {
		t.Errorf("committed %d", res.Instructions)
	}
	if res.IPC > 1.01 {
		t.Errorf("IPC %.3f with a 1-entry load queue", res.IPC)
	}
}

// TestTinyMSHR bounds outstanding misses to one; a miss-heavy stream must
// still complete, strictly slower than with full MSHRs.
func TestTinyMSHR(t *testing.T) {
	classes := make([]isa.Class, 400)
	addrs := make([]uint64, 400)
	for i := range classes {
		classes[i] = isa.Load
		addrs[i] = uint64(0x100000 + i*4096) // every load a distinct page/line
	}
	m := config.Baseline()
	m.L1D.MSHRs = 1
	one := run(t, m, prog(classes, addrs))
	full := run(t, config.Baseline(), prog(classes, addrs))
	if one.Cycles <= full.Cycles {
		t.Errorf("1 MSHR (%d cycles) not slower than 8 MSHRs (%d)", one.Cycles, full.Cycles)
	}
}

// TestDeadlineTrips verifies the deadlock guard path.
func TestDeadlineTrips(t *testing.T) {
	p, _ := workload.ByName("compress")
	g, err := workload.New(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := config.Baseline()
	c, err := New(&m, g)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(Options{MaxInstructions: 10_000_000, DeadlineCycles: 100})
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("got %v, want ErrDeadline", err)
	}
}

// TestCommitWidthBoundsIPC: no configuration can exceed the commit width.
func TestCommitWidthBoundsIPC(t *testing.T) {
	m := config.QuadPort()
	m.Core.IntALUs = 8
	m.Core.IssueWidth = 16
	classes := make([]isa.Class, 8000)
	for i := range classes {
		classes[i] = isa.IntALU
	}
	insts := prog(classes, nil)
	for i := range insts {
		insts[i].Src1, insts[i].Src2 = 0, 0
	}
	res := run(t, m, insts)
	if res.IPC > float64(m.Core.CommitWidth) {
		t.Errorf("IPC %.3f exceeds commit width %d", res.IPC, m.Core.CommitWidth)
	}
}

// TestBankedEndToEnd runs a workload on the banked machine through the full
// core and checks it lands between single- and dual-ported performance.
func TestBankedEndToEnd(t *testing.T) {
	ipc := func(m config.Machine) float64 {
		p, _ := workload.ByName("eqntott")
		g, err := workload.New(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(&m, g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(Options{MaxInstructions: 40_000, DeadlineCycles: 20_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	single := ipc(config.Baseline())
	banked := ipc(config.Banked(8))
	dual := ipc(config.DualPort())
	if banked < single*0.995 {
		t.Errorf("8 banks (%.3f) below single port (%.3f)", banked, single)
	}
	if banked > dual*1.01 {
		t.Errorf("8 banks (%.3f) above dual port (%.3f)", banked, dual)
	}
}

// TestStreamEndMidPipeline: a stream that ends while instructions are in
// flight still drains cleanly.
func TestStreamEndMidPipeline(t *testing.T) {
	insts := []isa.Inst{
		{PC: 0x1000, Class: isa.Load, Dest: 1, Addr: 0x200000, Size: 8}, // long miss
		{PC: 0x1004, Class: isa.IntALU, Dest: 2, Src1: 1},
		{PC: 0x1008, Class: isa.Store, Src1: 2, Addr: 0x200008, Size: 8},
	}
	res := run(t, config.Baseline(), insts)
	if res.Instructions != 3 {
		t.Errorf("committed %d, want 3", res.Instructions)
	}
	if res.Stores != 1 {
		t.Errorf("stores = %d", res.Stores)
	}
}

// TestTraceRoundTripThroughCore: a generator stream serialised to the
// binary trace format and replayed produces the identical simulation result
// as the live generator.
func TestTraceRoundTripThroughCore(t *testing.T) {
	p, _ := workload.ByName("verilog")
	g, err := workload.New(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	tee := trace.NewTee(trace.NewLimit(g, 30_000))
	m := config.Baseline()
	c, err := New(&m, tee)
	if err != nil {
		t.Fatal(err)
	}
	live, err := c.Run(Options{DeadlineCycles: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the captured instructions.
	m2 := config.Baseline()
	c2, err := New(&m2, trace.NewSliceStream(tee.Captured))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := c2.Run(Options{DeadlineCycles: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if live.Cycles != replay.Cycles || live.Instructions != replay.Instructions {
		t.Errorf("replay diverged: live %d cycles/%d insts, replay %d/%d",
			live.Cycles, live.Instructions, replay.Cycles, replay.Instructions)
	}
}

// TestKernelEntryDrainsPipeline: every syscall serialises, so a kernel-
// heavy run must show at least one fetch-stall cycle per syscall.
func TestKernelEntryDrainsPipeline(t *testing.T) {
	p, _ := workload.ByName("pmake")
	g, err := workload.New(p, 23)
	if err != nil {
		t.Fatal(err)
	}
	m := config.Baseline()
	c, err := New(&m, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(Options{MaxInstructions: 60_000, DeadlineCycles: 30_000_000})
	if err != nil {
		t.Fatal(err)
	}
	syscalls := res.Counters.Get("class.syscall")
	if syscalls == 0 {
		t.Fatal("pmake run had no kernel entries")
	}
	if res.Counters.Get("stall.fetch_cycles") < syscalls {
		t.Error("fewer fetch-stall cycles than syscalls; serialisation missing")
	}
}

// TestSpeculativeLoadsViolationPath builds a guaranteed memory-order
// violation: a store whose address depends on a slow divide, followed
// immediately by a load to the same address. Conservatively the load waits;
// speculatively it issues early and must be squashed (counted) when the
// store resolves.
func TestSpeculativeLoadsViolationPath(t *testing.T) {
	mk := func() []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < 50; i++ {
			insts = append(insts,
				isa.Inst{PC: 0x1000, Class: isa.IntDiv, Dest: 1, Src1: 1},              // slow address
				isa.Inst{PC: 0x1004, Class: isa.Store, Src1: 1, Addr: 0x8000, Size: 8}, // late-resolving store
				isa.Inst{PC: 0x1008, Class: isa.Load, Dest: 2, Addr: 0x8000, Size: 8},  // same address
				isa.Inst{PC: 0x100c, Class: isa.IntALU, Dest: 3, Src1: 2},
			)
		}
		return insts
	}
	m := config.Baseline()
	m.Core.SpeculativeLoads = true
	m.Core.ViolationPenalty = 8
	spec := run(t, m, mk())
	if got := spec.Counters.Get("lsq.violations"); got == 0 {
		t.Error("no violations detected on a guaranteed-conflict stream")
	}
	cons := run(t, config.Baseline(), mk())
	if cons.Counters.Get("lsq.violations") != 0 {
		t.Error("conservative mode reported violations")
	}
}

// TestSpeculativeLoadsHelpIndependentStreams: with stores whose addresses
// resolve slowly but never conflict with the loads, speculation must win.
func TestSpeculativeLoadsHelpIndependentStreams(t *testing.T) {
	mk := func() []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < 100; i++ {
			insts = append(insts,
				isa.Inst{PC: 0x1000, Class: isa.IntDiv, Dest: 1, Src1: 1},
				isa.Inst{PC: 0x1004, Class: isa.Store, Src1: 1, Addr: uint64(0x8000 + i*8), Size: 8},
				isa.Inst{PC: 0x1008, Class: isa.Load, Dest: 2, Addr: uint64(0x20000 + (i%16)*8), Size: 8},
				isa.Inst{PC: 0x100c, Class: isa.IntALU, Dest: 3, Src1: 2},
			)
		}
		return insts
	}
	m := config.Baseline()
	m.Core.SpeculativeLoads = true
	m.Core.ViolationPenalty = 8
	spec := run(t, m, mk())
	cons := run(t, config.Baseline(), mk())
	if spec.Cycles >= cons.Cycles {
		t.Errorf("speculation (%d cycles) not faster than conservative (%d) on independent streams",
			spec.Cycles, cons.Cycles)
	}
	if spec.Counters.Get("lsq.violations") != 0 {
		t.Errorf("independent streams produced %d violations", spec.Counters.Get("lsq.violations"))
	}
}

// TestWrongPathFetchPollutes: with a static predictor and a taken loop
// branch, every iteration mispredicts; wrong-path fetching must touch lines
// the correct path never does.
func TestWrongPathFetchPollutes(t *testing.T) {
	mk := func(wrongPath bool) *Result {
		m := config.Baseline()
		m.Pred.Kind = "static"
		m.Core.WrongPathFetch = wrongPath
		var insts []isa.Inst
		for i := 0; i < 200; i++ {
			insts = append(insts,
				isa.Inst{PC: 0x1000, Class: isa.IntALU, Dest: 1},
				isa.Inst{PC: 0x1004, Class: isa.Branch, Target: 0x1000, Taken: i != 199},
			)
		}
		return run(t, m, insts)
	}
	with := mk(true)
	without := mk(false)
	if with.Counters.Get("fetch.wrong_path_lines") == 0 {
		t.Fatal("no wrong-path lines fetched")
	}
	if without.Counters.Get("fetch.wrong_path_lines") != 0 {
		t.Fatal("wrong-path lines fetched with the feature off")
	}
	if with.Counters.Get("l1i.misses") <= without.Counters.Get("l1i.misses") {
		t.Errorf("wrong-path fetch produced no extra L1I misses (%d vs %d)",
			with.Counters.Get("l1i.misses"), without.Counters.Get("l1i.misses"))
	}
}
