package cpu

import (
	"testing"

	"portsim/internal/config"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

// arenaFor materialises a (profile, seed) trace with the read-ahead slack
// the runner uses, so the cursor never reports exhaustion inside the
// budget.
func arenaFor(t *testing.T, name string, seed int64, insts uint64) *trace.Arena {
	t.Helper()
	gen, err := workload.New(mustProfile(t, name), seed)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Materialize(gen, int(insts)+StreamChunk)
}

// TestRunCursorMatchesGenerator is the core-level byte-identity guarantee
// of the arena fast path: simulating from an arena cursor — batched fetch
// groups, PredictGroup-trained predictors, metadata-driven group cuts —
// must produce the identical Result, counter for counter, as simulating
// the live generator through the per-instruction fetch loop. Covered
// machines include the wrong-path-fetch model (whose stall-time I-cache
// pollution depends on exact group endings) and both skip modes.
func TestRunCursorMatchesGenerator(t *testing.T) {
	const insts = 15_000
	wrongPath := config.Baseline()
	wrongPath.Name = "wrong-path"
	wrongPath.Core.WrongPathFetch = true
	machines := []config.Machine{config.Baseline(), config.BestSingle(), config.DualPort(), wrongPath}
	for _, m := range machines {
		m := m
		for _, noSkip := range []bool{false, true} {
			name := m.Name
			if noSkip {
				name += "/noskip"
			}
			t.Run(name, func(t *testing.T) {
				for _, wl := range []string{"compress", "database"} {
					gen, err := workload.New(mustProfile(t, wl), 42)
					if err != nil {
						t.Fatal(err)
					}
					opts := Options{
						MaxInstructions: insts,
						DeadlineCycles:  DeadlineFor(insts),
						StallCycles:     DefaultStallCycles,
						NoSkip:          noSkip,
					}
					liveCore, err := New(&m, gen)
					if err != nil {
						t.Fatal(err)
					}
					live, err := liveCore.Run(opts)
					if err != nil {
						t.Fatal(err)
					}
					cursorCore, err := New(&m, arenaFor(t, wl, 42, insts).NewCursor())
					if err != nil {
						t.Fatal(err)
					}
					replay, err := cursorCore.Run(opts)
					if err != nil {
						t.Fatal(err)
					}
					compareResults(t, wl, live, replay)
				}
			})
		}
	}
}

// compareResults demands exact equality of every reported number.
func compareResults(t *testing.T, what string, live, replay *Result) {
	t.Helper()
	type pair struct {
		name       string
		live, repl uint64
	}
	pairs := []pair{
		{"cycles", live.Cycles, replay.Cycles},
		{"instructions", live.Instructions, replay.Instructions},
		{"user insts", live.UserInsts, replay.UserInsts},
		{"kernel insts", live.KernelInsts, replay.KernelInsts},
		{"loads", live.Loads, replay.Loads},
		{"stores", live.Stores, replay.Stores},
		{"branches", live.Branches, replay.Branches},
		{"mispredicts", live.Mispredicts, replay.Mispredicts},
	}
	for _, p := range pairs {
		if p.live != p.repl {
			t.Errorf("%s: %s diverged: live %d, arena replay %d", what, p.name, p.live, p.repl)
		}
	}
	if live.IPC != replay.IPC {
		t.Errorf("%s: IPC diverged: live %v, arena replay %v", what, live.IPC, replay.IPC)
	}
	liveNames := live.Counters.Names()
	replNames := replay.Counters.Names()
	if len(liveNames) != len(replNames) {
		t.Fatalf("%s: counter sets differ: live %v, arena replay %v", what, liveNames, replNames)
	}
	for i, name := range liveNames {
		if replNames[i] != name {
			t.Fatalf("%s: counter order diverged at %d: live %q, arena replay %q", what, i, name, replNames[i])
		}
		lv := live.Counters.Get(name)   //portlint:ignore counterhygiene name ranges over Counters.Names()
		rv := replay.Counters.Get(name) //portlint:ignore counterhygiene name ranges over Counters.Names()
		if lv != rv {
			t.Errorf("%s: counter %s diverged: live %d, arena replay %d", what, name, lv, rv)
		}
	}
}

// TestResetCursorMatchesFresh extends the pooling contract to the arena
// path: a core built for a live generator and reset onto a cursor must
// behave exactly like a core constructed fresh on that cursor, and vice
// versa — cells of either stream kind share one pool.
func TestResetCursorMatchesFresh(t *testing.T) {
	const insts = 8_000
	m := config.Baseline()
	a := arenaFor(t, "compress", 42, insts)
	opts := Options{MaxInstructions: insts, DeadlineCycles: DeadlineFor(insts), StallCycles: DefaultStallCycles}

	fresh, err := New(&m, a.NewCursor())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.New(mustProfile(t, "eqntott"), 7)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := New(&m, gen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pooled.Run(opts); err != nil {
		t.Fatal(err)
	}
	if err := pooled.Reset(a.NewCursor()); err != nil {
		t.Fatal(err)
	}
	got, err := pooled.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "reset-to-cursor", want, got)

	// And back: a cursor-born core reset onto a live generator must match a
	// generator-fresh core.
	gen2, err := workload.New(mustProfile(t, "compress"), 42)
	if err != nil {
		t.Fatal(err)
	}
	genFresh, err := New(&m, gen2)
	if err != nil {
		t.Fatal(err)
	}
	wantGen, err := genFresh.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	gen3, err := workload.New(mustProfile(t, "compress"), 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Reset(gen3); err != nil {
		t.Fatal(err)
	}
	gotGen, err := fresh.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "reset-to-generator", wantGen, gotGen)
}

// TestStepDoesNotAllocateWithCursor is the zero-alloc proof for the
// batched front end: steady-state cycles fetching whole groups from an
// arena cursor never touch the heap.
func TestStepDoesNotAllocateWithCursor(t *testing.T) {
	for _, m := range []config.Machine{config.Baseline(), config.BestSingle()} {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			gen, err := workload.New(mustProfile(t, "compress"), 42)
			if err != nil {
				t.Fatal(err)
			}
			a := trace.Materialize(gen, 400_000)
			c, err := New(&m, a.NewCursor())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20_000; i++ {
				c.step()
			}
			if avg := testing.AllocsPerRun(2000, c.step); avg != 0 {
				t.Errorf("step with arena cursor allocates %v objects/cycle; want 0", avg)
			}
		})
	}
}
