package cpu

import (
	"math"
	"testing"

	"portsim/internal/config"
	"portsim/internal/isa"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

// prog builds a straight-line program at 0x1000 from the given classes,
// filling in plausible registers; memory ops read/write the addrs slice in
// order.
func prog(classes []isa.Class, addrs []uint64) []isa.Inst {
	insts := make([]isa.Inst, len(classes))
	ai := 0
	for i, cls := range classes {
		// PCs cycle within one instruction-cache line so the tests
		// measure backend behaviour, not cold-code fetch misses.
		pc := uint64(0x1000 + (i%8)*4)
		in := isa.Inst{PC: pc, Class: cls}
		switch cls {
		case isa.Load:
			in.Dest = isa.Reg(1 + i%20)
			in.Addr = addrs[ai]
			in.Size = 8
			ai++
		case isa.Store:
			in.Src1 = isa.Reg(1 + i%20)
			in.Addr = addrs[ai]
			in.Size = 8
			ai++
		case isa.IntALU, isa.IntMul, isa.IntDiv:
			in.Dest = isa.Reg(1 + i%20)
		case isa.FPAdd, isa.FPMul, isa.FPDiv:
			in.Dest = isa.FPBase + isa.Reg(1+i%20)
		}
		insts[i] = in
	}
	return insts
}

func run(t *testing.T, m config.Machine, insts []isa.Inst) *Result {
	t.Helper()
	c, err := New(&m, trace.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(Options{DeadlineCycles: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	return res
}

// checkInvariants verifies the renamer's conservation laws after a run: the
// machine is empty, and every physical register is either mapped or free,
// never both, never neither.
func checkInvariants(t *testing.T, c *Core) {
	t.Helper()
	if c.robCount != 0 || c.fbCount != 0 {
		t.Fatalf("machine not drained: rob=%d fetchBuf=%d", c.robCount, c.fbCount)
	}
	if c.lqCount != 0 || c.sqCount != 0 || c.intQCount != 0 || c.fpQCount != 0 {
		t.Fatalf("queue counters nonzero after drain: lq=%d sq=%d int=%d fp=%d",
			c.lqCount, c.sqCount, c.intQCount, c.fpQCount)
	}
	seen := make(map[int16]string)
	for i, p := range c.intMap {
		if prev, dup := seen[p]; dup {
			t.Fatalf("int phys %d mapped twice (%s and r%d)", p, prev, i)
		}
		seen[p] = "mapped"
	}
	for _, p := range c.intFree {
		if prev, dup := seen[p]; dup {
			t.Fatalf("int phys %d is %s and free", p, prev)
		}
		seen[p] = "free"
	}
	if len(seen) != c.cfg.Core.IntPhysRegs {
		t.Fatalf("int phys registers leaked: %d accounted of %d", len(seen), c.cfg.Core.IntPhysRegs)
	}
	seenFP := make(map[int16]bool)
	for _, p := range c.fpMap {
		if seenFP[p] {
			t.Fatal("fp phys mapped twice")
		}
		seenFP[p] = true
	}
	for _, p := range c.fpFree {
		if seenFP[p] {
			t.Fatal("fp phys mapped and free")
		}
		seenFP[p] = true
	}
	if len(seenFP) != c.cfg.Core.FPPhysRegs {
		t.Fatalf("fp phys registers leaked: %d of %d", len(seenFP), c.cfg.Core.FPPhysRegs)
	}
}

func TestEmptyStream(t *testing.T) {
	res := run(t, config.Baseline(), nil)
	if res.Instructions != 0 {
		t.Errorf("committed %d from an empty stream", res.Instructions)
	}
}

func TestIndependentALUThroughput(t *testing.T) {
	// 4000 independent single-cycle ops on a 4-wide machine: IPC should
	// approach 2 (two ALUs are the bottleneck, not width).
	classes := make([]isa.Class, 4000)
	for i := range classes {
		classes[i] = isa.IntALU
	}
	insts := prog(classes, nil)
	for i := range insts {
		insts[i].Dest = isa.Reg(1 + i%20)
		insts[i].Src1 = 0
		insts[i].Src2 = 0
	}
	res := run(t, config.Baseline(), insts)
	if res.IPC < 1.7 || res.IPC > 2.05 {
		t.Errorf("independent ALU IPC = %.2f, want ~2 (ALU-bound)", res.IPC)
	}
}

func TestDependenceChainSerialises(t *testing.T) {
	// A chain of dependent multiplies runs at 1/latency IPC.
	n := 1000
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{PC: uint64(0x1000 + (i%8)*4), Class: isa.IntMul, Dest: 1, Src1: 1}
	}
	res := run(t, config.Baseline(), insts)
	want := 1.0 / float64(config.Baseline().Lat.IntMul)
	if res.IPC > want*1.15 || res.IPC < want*0.8 {
		t.Errorf("dependent mul chain IPC = %.3f, want ~%.3f", res.IPC, want)
	}
}

func TestLoadsCommitAndCount(t *testing.T) {
	classes := make([]isa.Class, 100)
	addrs := make([]uint64, 0, 50)
	for i := range classes {
		if i%2 == 0 {
			classes[i] = isa.Load
			addrs = append(addrs, uint64(0x8000+8*len(addrs)))
		} else {
			classes[i] = isa.IntALU
		}
	}
	res := run(t, config.Baseline(), prog(classes, addrs))
	if res.Loads != 50 {
		t.Errorf("loads = %d, want 50", res.Loads)
	}
	if res.Instructions != 100 {
		t.Errorf("instructions = %d, want 100", res.Instructions)
	}
}

func TestStoreLoadForwardingInLSQ(t *testing.T) {
	// store A; load A pairs: each load must forward from the in-flight
	// store in the LSQ rather than waiting for memory.
	var insts []isa.Inst
	for i := 0; i < 200; i++ {
		insts = append(insts,
			isa.Inst{PC: 0x1000, Class: isa.Store, Src1: 1, Addr: 0x8000, Size: 8},
			isa.Inst{PC: 0x1004, Class: isa.Load, Dest: 2, Addr: 0x8000, Size: 8},
		)
	}
	res := run(t, config.Baseline(), insts)
	if got := res.Counters.Get("lsq.forwards"); got < 150 {
		t.Errorf("lsq.forwards = %d, want most of the 200 load instances", got)
	}
}

func TestPartialOverlapStallsUntilCommit(t *testing.T) {
	// A 4-byte store partially overlapping an 8-byte load: the load must
	// wait for the store to commit and drain, so no LSQ forward happens.
	insts := []isa.Inst{
		{PC: 0x1000, Class: isa.Store, Src1: 1, Addr: 0x8000, Size: 4},
		{PC: 0x1004, Class: isa.Load, Dest: 2, Addr: 0x8000, Size: 8},
	}
	res := run(t, config.Baseline(), insts)
	if res.Counters.Get("lsq.forwards") != 0 {
		t.Error("partial overlap forwarded")
	}
	if res.Instructions != 2 {
		t.Errorf("instructions = %d", res.Instructions)
	}
}

func TestMispredictsCostCycles(t *testing.T) {
	// A tight always-taken loop branch: with a static (always not-taken)
	// predictor every iteration mispredicts; gshare plus the BTB learn it
	// after a handful of iterations.
	m := config.Baseline()
	m.Pred.Kind = "static"
	var insts []isa.Inst
	for i := 0; i < 200; i++ {
		taken := i != 199
		insts = append(insts, isa.Inst{PC: 0x1000, Class: isa.IntALU, Dest: 1})
		insts = append(insts, isa.Inst{PC: 0x1004, Class: isa.Branch, Target: 0x1000, Taken: taken})
	}
	resStatic := run(t, m, insts)
	if resStatic.Mispredicts != 199 {
		t.Errorf("static predictor mispredicts = %d, want 199 (every taken instance)", resStatic.Mispredicts)
	}
	// The same program with a warmed-up gshare+BTB mispredicts less and
	// runs faster.
	resG := run(t, config.Baseline(), insts)
	if resG.Mispredicts >= resStatic.Mispredicts {
		t.Errorf("gshare mispredicts %d not below static %d", resG.Mispredicts, resStatic.Mispredicts)
	}
	if resG.Cycles >= resStatic.Cycles {
		t.Errorf("gshare cycles %d not below static %d", resG.Cycles, resStatic.Cycles)
	}
}

func TestSyscallSerialises(t *testing.T) {
	// ALUs, a syscall, more ALUs: cycles must exceed the no-syscall run
	// by at least the drain + redirect penalty.
	mk := func(withSyscall bool) []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < 40; i++ {
			insts = append(insts, isa.Inst{PC: uint64(0x1000 + (i%8)*4), Class: isa.IntALU, Dest: 1 + isa.Reg(i%8)})
		}
		if withSyscall {
			insts = append(insts, isa.Inst{PC: 0x1020, Class: isa.Syscall, Target: 0x1000})
		}
		for i := 0; i < 40; i++ {
			insts = append(insts, isa.Inst{PC: uint64(0x1000 + (i%8)*4), Class: isa.IntALU, Dest: 1 + isa.Reg(i%8)})
		}
		return insts
	}
	with := run(t, config.Baseline(), mk(true))
	without := run(t, config.Baseline(), mk(false))
	if with.Cycles <= without.Cycles+uint64(config.Baseline().Core.MispredictPenalty) {
		t.Errorf("syscall cost only %d cycles over %d; serialisation missing",
			with.Cycles-without.Cycles, without.Cycles)
	}
}

func TestStoreBufferBackPressureStallsCommit(t *testing.T) {
	// A long burst of stores to distinct lines with a tiny store buffer
	// must record commit stalls.
	m := config.Baseline()
	m.Ports.StoreBufferEntries = 1
	classes := make([]isa.Class, 200)
	addrs := make([]uint64, 200)
	for i := range classes {
		classes[i] = isa.Store
		addrs[i] = uint64(0x10000 + i*4096)
	}
	res := run(t, m, prog(classes, addrs))
	if res.Counters.Get("stall.commit_store_buffer") == 0 {
		t.Error("no commit stalls with a 1-entry store buffer and 200 store misses")
	}
}

func TestDualPortBeatsSingleOnLoadBursts(t *testing.T) {
	// Pairs of independent loads to distinct, cache-resident lines: a
	// dual-ported cache should clearly outperform a single port.
	var insts []isa.Inst
	for round := 0; round < 300; round++ {
		for i := 0; i < 4; i++ {
			insts = append(insts, isa.Inst{
				PC: uint64(0x1000 + i*4), Class: isa.Load, Dest: isa.Reg(1 + (round*4+i)%20),
				Addr: uint64(0x8000 + (i*4+round)%16*32), Size: 8,
			})
		}
	}
	single := run(t, config.Baseline(), insts)
	dual := run(t, config.DualPort(), insts)
	if dual.IPC <= single.IPC*1.1 {
		t.Errorf("dual-port IPC %.3f not clearly above single %.3f on a load-saturated stream",
			dual.IPC, single.IPC)
	}
}

func TestMaxInstructionsBound(t *testing.T) {
	p, _ := workload.ByName("compress")
	g, err := workload.New(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	m := config.Baseline()
	c, err := New(&m, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(Options{MaxInstructions: 5000, DeadlineCycles: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 5000 {
		t.Errorf("committed %d, want exactly 5000", res.Instructions)
	}
}

func TestWorkloadRunsAreDeterministic(t *testing.T) {
	ipc := func() float64 {
		p, _ := workload.ByName("database")
		g, err := workload.New(p, 21)
		if err != nil {
			t.Fatal(err)
		}
		m := config.BestSingle()
		c, err := New(&m, g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(Options{MaxInstructions: 30000, DeadlineCycles: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	a, b := ipc(), ipc()
	if a != b {
		t.Errorf("identical runs produced IPC %v and %v", a, b)
	}
}

func TestAllWorkloadsRunOnAllPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product run is slow")
	}
	for _, wname := range workload.Names() {
		for _, preset := range config.PresetNames() {
			p, _ := workload.ByName(wname)
			g, err := workload.New(p, 5)
			if err != nil {
				t.Fatal(err)
			}
			m := config.Presets[preset]()
			c, err := New(&m, g)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(Options{MaxInstructions: 20000, DeadlineCycles: 5_000_000})
			if err != nil {
				t.Fatalf("%s on %s: %v", wname, preset, err)
			}
			if res.IPC <= 0 || res.IPC > float64(m.Core.CommitWidth) {
				t.Errorf("%s on %s: implausible IPC %.3f", wname, preset, res.IPC)
			}
			checkInvariants(t, c)
		}
	}
}

func TestKernelUserAccounting(t *testing.T) {
	p, _ := workload.ByName("pmake")
	g, err := workload.New(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := config.Baseline()
	c, err := New(&m, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(Options{MaxInstructions: 50000, DeadlineCycles: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelInsts == 0 {
		t.Error("pmake run committed no kernel instructions")
	}
	if res.UserInsts+res.KernelInsts != res.Instructions {
		t.Error("user+kernel does not sum to total")
	}
}

func TestICacheMissesSlowFetch(t *testing.T) {
	// A program whose working set of code far exceeds L1I (32KB) versus
	// a tight loop: the big-footprint run must show I-cache misses.
	p, _ := workload.ByName("database") // 1500 blocks, large code footprint
	g, _ := workload.New(p, 13)
	m := config.Baseline()
	c, _ := New(&m, g)
	res, err := c.Run(Options{MaxInstructions: 30000, DeadlineCycles: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get("l1i.misses") == 0 {
		t.Error("large-code workload produced no instruction-cache misses")
	}
}

// TestDeadlineForSaturates: the deadlock-guard deadline must saturate at
// math.MaxUint64 for absurd instruction budgets instead of wrapping into a
// near-zero instant deadline.
func TestDeadlineForSaturates(t *testing.T) {
	if got := DeadlineFor(0); got != 0 {
		t.Errorf("DeadlineFor(0) = %d; zero must stay zero (guard disabled)", got)
	}
	if got := DeadlineFor(1000); got != 400_000 {
		t.Errorf("DeadlineFor(1000) = %d, want 400000", got)
	}
	const boundary = math.MaxUint64 / deadlineCyclesPerInst
	if got := DeadlineFor(boundary); got != deadlineCyclesPerInst*boundary {
		t.Errorf("DeadlineFor(boundary) = %d; the largest exact product must not saturate", got)
	}
	for _, insts := range []uint64{boundary + 1, math.MaxUint64} {
		if got := DeadlineFor(insts); got != math.MaxUint64 {
			t.Errorf("DeadlineFor(%d) = %d, want saturation at MaxUint64 (wrap would be %d)",
				insts, got, deadlineCyclesPerInst*insts)
		}
	}
}
