package cpu

import (
	"math/rand"
	"testing"

	"portsim/internal/config"
	"portsim/internal/workload"
)

// randomMachine draws a valid machine configuration exercising every
// feature dimension: port count/width/banks, buffer depths, combining,
// line buffers, fill width, prefetching, write policy, TLB sizes, memory
// speculation, predictor kinds, and structure sizes.
func randomMachine(rng *rand.Rand) config.Machine {
	m := config.Baseline()
	pick := func(xs ...int) int { return xs[rng.Intn(len(xs))] }

	if rng.Intn(2) == 0 {
		m.Ports.Count = pick(1, 2, 4)
	} else {
		m.Ports.Count = 1
		m.Ports.Banks = pick(2, 4, 8)
	}
	m.Ports.WidthBytes = pick(8, 16, 32)
	m.Ports.StoreBufferEntries = pick(1, 2, 4, 8, 16)
	m.Ports.StoreCombining = rng.Intn(2) == 0 && m.Ports.WidthBytes > 8
	if m.Ports.WidthBytes > 8 && rng.Intn(2) == 0 {
		m.Ports.LineBuffers = pick(1, 2, 4, 8)
	}
	m.Ports.FillBytesPerCycle = pick(8, 16, 32)
	if rng.Intn(3) == 0 {
		m.Ports.PrefetchNextLine = true
		m.Ports.PrefetchDegree = pick(1, 2, 4)
	}
	m.Ports.StoresFirst = rng.Intn(4) == 0

	m.L1D.WriteThrough = rng.Intn(4) == 0
	m.L1D.MSHRs = pick(0, 1, 4, 8)
	m.L1D.Assoc = pick(1, 2, 4)
	m.L1I.Assoc = pick(1, 2)

	m.Core.ROBEntries = pick(8, 16, 32, 64, 128)
	m.Core.LoadQueueEntries = pick(1, 4, 16)
	m.Core.StoreQueueEntries = pick(1, 4, 16)
	m.Core.IntIQEntries = pick(4, 16, 32)
	m.Core.FPIQEntries = pick(4, 16, 32)
	m.Core.IntPhysRegs = pick(33, 48, 96)
	m.Core.FPPhysRegs = pick(33, 48, 96)
	m.Core.MemIssuePerCycle = pick(1, 2, 4)
	if rng.Intn(3) == 0 {
		m.Core.SpeculativeLoads = true
		m.Core.ViolationPenalty = pick(4, 8, 16)
	}

	m.Pred.Kind = []string{"gshare", "bimodal", "static"}[rng.Intn(3)]
	if m.Pred.Kind == "static" {
		m.Pred.TableEntries = 0
	} else {
		m.Pred.TableEntries = pick(256, 4096)
	}
	if rng.Intn(4) == 0 {
		m.Pred.BTBEntries = 0
	}
	if rng.Intn(4) == 0 {
		m.Pred.RASEntries = 0
	}
	if rng.Intn(4) == 0 {
		m.ITLB = config.TLB{}
		m.DTLB = config.TLB{}
	} else {
		m.DTLB.Entries = pick(4, 16, 64)
	}
	return m
}

// TestRandomConfigurationsComplete is the feature-interaction fuzz: every
// random-but-valid machine must run every workload snippet to completion
// within a sane cycle bound, drain cleanly, and satisfy the renamer
// conservation invariants. A hang, panic, or leak in ANY feature
// combination fails here.
func TestRandomConfigurationsComplete(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 10
	}
	rng := rand.New(rand.NewSource(99))
	names := workload.Names()
	for i := 0; i < iterations; i++ {
		m := randomMachine(rng)
		if err := m.Validate(); err != nil {
			t.Fatalf("iteration %d: generator produced invalid config: %v\n%+v", i, err, m.Ports)
		}
		wname := names[rng.Intn(len(names))]
		p, _ := workload.ByName(wname)
		g, err := workload.New(p, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(&m, g)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		res, err := c.Run(Options{MaxInstructions: 8_000, DeadlineCycles: 4_000_000})
		if err != nil {
			cfg, _ := m.ToJSON()
			t.Fatalf("iteration %d (%s): %v\nconfig: %s", i, wname, err, cfg)
		}
		if res.Instructions != 8_000 {
			t.Fatalf("iteration %d (%s): committed %d of 8000", i, wname, res.Instructions)
		}
		if res.IPC <= 0 || res.IPC > float64(m.Core.CommitWidth) {
			t.Fatalf("iteration %d (%s): IPC %.3f out of range", i, wname, res.IPC)
		}
		checkInvariants(t, c)
	}
}

// TestRandomConfigurationsDeterministic re-runs a random configuration and
// demands identical cycle counts — determinism must hold across the whole
// feature space, not just the presets.
func TestRandomConfigurationsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 8; i++ {
		m := randomMachine(rng)
		wname := workload.Names()[rng.Intn(len(workload.Names()))]
		cycles := func() uint64 {
			p, _ := workload.ByName(wname)
			g, err := workload.New(p, 77)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(&m, g)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(Options{MaxInstructions: 10_000, DeadlineCycles: 5_000_000})
			if err != nil {
				t.Fatal(err)
			}
			return res.Cycles
		}
		if a, b := cycles(), cycles(); a != b {
			t.Fatalf("iteration %d (%s): nondeterministic (%d vs %d cycles)", i, wname, a, b)
		}
	}
}
