package cpu

import (
	"testing"

	"portsim/internal/config"
	"portsim/internal/diag"
	"portsim/internal/workload"
)

// TestStepDoesNotAllocate is the tentpole's regression guard: once the
// pipeline is warm, advancing the machine one cycle must not touch the heap.
// step() is the tightest steppable unit — Run is a loop around it — so a
// zero here means the whole steady-state cycle loop is allocation-free. The
// warm-up phase absorbs one-time growth (MSHR slices, store-buffer scratch,
// the batched-stream chunk buffer) that is amortised, not steady-state.
func TestStepDoesNotAllocate(t *testing.T) {
	for _, m := range []config.Machine{config.Baseline(), config.BestSingle()} {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			g, err := workload.New(mustProfile(t, "compress"), 42)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(&m, g)
			if err != nil {
				t.Fatal(err)
			}
			// The generator never ends, so the machine cannot drain
			// mid-measurement.
			for i := 0; i < 20_000; i++ {
				c.step()
			}
			if avg := testing.AllocsPerRun(2000, c.step); avg != 0 {
				t.Errorf("step allocates %v objects/cycle in steady state; want 0", avg)
			}
		})
	}
}

// TestStepDoesNotAllocateWithRecorder extends the guard to the telemetry
// path: the hot loop must stay allocation-free both with the flight
// recorder disabled (nil — the default when no telemetry flag is set;
// every Record call nil-checks and returns) and with a deep trace ring
// armed, where Record writes events into pre-allocated storage. Together
// with TestStepDoesNotAllocate this proves -trace-out costs the cycle
// loop nothing but the ring writes, and costs it literally nothing when
// off.
func TestStepDoesNotAllocateWithRecorder(t *testing.T) {
	for _, depth := range []int{0, 1 << 16} {
		m := config.BestSingle()
		name := "armed"
		if depth == 0 {
			name = "nil"
		}
		t.Run(name, func(t *testing.T) {
			g, err := workload.New(mustProfile(t, "compress"), 42)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(&m, g)
			if err != nil {
				t.Fatal(err)
			}
			var rec *diag.Recorder
			if depth > 0 {
				rec = diag.NewRecorder(depth)
			}
			c.rec = rec
			c.port.SetRecorder(rec)
			for i := 0; i < 20_000; i++ {
				c.step()
			}
			if avg := testing.AllocsPerRun(2000, c.step); avg != 0 {
				t.Errorf("step with %s recorder allocates %v objects/cycle; want 0", name, avg)
			}
			if depth > 0 && rec.Len() == 0 {
				t.Error("armed recorder captured no events")
			}
		})
	}
}
