package cpu

import (
	"testing"

	"portsim/internal/config"
	"portsim/internal/workload"
)

// TestStepDoesNotAllocate is the tentpole's regression guard: once the
// pipeline is warm, advancing the machine one cycle must not touch the heap.
// step() is the tightest steppable unit — Run is a loop around it — so a
// zero here means the whole steady-state cycle loop is allocation-free. The
// warm-up phase absorbs one-time growth (MSHR slices, store-buffer scratch,
// the batched-stream chunk buffer) that is amortised, not steady-state.
func TestStepDoesNotAllocate(t *testing.T) {
	for _, m := range []config.Machine{config.Baseline(), config.BestSingle()} {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			g, err := workload.New(mustProfile(t, "compress"), 42)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(&m, g)
			if err != nil {
				t.Fatal(err)
			}
			// The generator never ends, so the machine cannot drain
			// mid-measurement.
			for i := 0; i < 20_000; i++ {
				c.step()
			}
			if avg := testing.AllocsPerRun(2000, c.step); avg != 0 {
				t.Errorf("step allocates %v objects/cycle in steady state; want 0", avg)
			}
		})
	}
}
