package cpu

import (
	"portsim/internal/diag"
	"portsim/internal/isa"
)

// dispatch renames and inserts up to DecodeWidth instructions from the
// fetch buffer into the reorder buffer and issue bookkeeping. It stalls on
// any exhausted resource: ROB slots, physical registers, issue-queue or
// load/store-queue occupancy.
//
//portlint:hotpath
func (c *Core) dispatch() {
	for n := 0; n < c.cfg.Core.DecodeWidth && c.fbCount > 0; n++ {
		if c.robCount == len(c.rob) {
			c.robFullCycles++
			return
		}
		f := c.fbFront()
		in := &f.inst
		// Queue-occupancy and physical-register gating, shared with the
		// event-driven skip gate so the two can never disagree.
		if !c.dispatchGatesOK(in) {
			return
		}

		idx := c.robIndex(c.robCount)
		e := &c.rob[idx]
		*e = robEntry{
			inst:         *in,
			seq:          f.seq,
			state:        stateDispatched,
			doneAt:       never,
			destPhys:     -1,
			prevPhys:     -1,
			src1Phys:     c.renameSrc(in.Src1),
			src2Phys:     c.renameSrc(in.Src2),
			dispatchedAt: c.cycle,
			mispredicted: f.mispredicted,
			serialize:    f.serialize,
		}
		if in.Dest != isa.RegZero {
			e.destPhys, e.prevPhys = c.allocDest(in.Dest)
		}
		switch {
		case in.Class == isa.Load:
			c.lqCount++
			e.sqMark = c.sqTail
		case in.Class == isa.Store:
			c.sqCount++
			c.sqRing[c.sqTail&uint64(len(c.sqRing)-1)] = int32(idx)
			c.sqTail++
			c.dispStores++
		case in.Class.IsFPOp():
			c.fpQCount++
		case in.Class == isa.Nop || in.Class == isa.Syscall:
			// No functional unit: completes immediately. Syscall
			// ordering comes from in-order commit plus the fetch
			// stall it already owns.
			e.state = stateIssued
			e.doneAt = c.cycle + 1
			c.noteIssued(int32(idx), e.doneAt)
		default:
			c.intQCount++
		}
		if e.state == stateDispatched {
			c.dispList[c.dispCount] = int32(idx)
			c.dispCount++
		}
		c.robCount++
		c.fbPop()
	}
}

// renameSrc resolves a source register to its current physical mapping.
func (c *Core) renameSrc(r isa.Reg) int16 {
	if r == isa.RegZero {
		return -1
	}
	if r.IsFP() {
		return c.fpMap[r-isa.FPBase]
	}
	return c.intMap[r]
}

// allocDest takes a free physical register for the destination and returns
// (new, previous) mappings. The new register is marked not-ready until the
// producer issues.
func (c *Core) allocDest(r isa.Reg) (newPhys, prevPhys int16) {
	if r.IsFP() {
		i := r - isa.FPBase
		newPhys = c.fpFree[len(c.fpFree)-1]
		c.fpFree = c.fpFree[:len(c.fpFree)-1]
		prevPhys = c.fpMap[i]
		c.fpMap[i] = newPhys
		c.fpReady[newPhys] = never
		return newPhys, prevPhys
	}
	newPhys = c.intFree[len(c.intFree)-1]
	c.intFree = c.intFree[:len(c.intFree)-1]
	prevPhys = c.intMap[r]
	c.intMap[r] = newPhys
	c.intReady[newPhys] = never
	return newPhys, prevPhys
}

// srcReadyAt returns the cycle a source operand becomes available (0 for
// no dependence).
func (c *Core) srcReadyAt(reg isa.Reg, phys int16) uint64 {
	if phys < 0 {
		return 0
	}
	if reg.IsFP() {
		return c.fpReady[phys]
	}
	return c.intReady[phys]
}

// operandsReadyAt gives the cycle both operands are available.
func (c *Core) operandsReadyAt(e *robEntry) uint64 {
	a := c.srcReadyAt(e.inst.Src1, e.src1Phys)
	b := c.srcReadyAt(e.inst.Src2, e.src2Phys)
	if b > a {
		a = b
	}
	return a
}

// setDestReady publishes the completion time of an instruction's result.
func (c *Core) setDestReady(e *robEntry, at uint64) {
	if e.destPhys < 0 {
		return
	}
	if e.inst.Dest.IsFP() {
		c.fpReady[e.destPhys] = at
	} else {
		c.intReady[e.destPhys] = at
	}
}

// fuState tracks per-cycle functional-unit consumption during issue.
type fuState struct {
	issued int
	memOps int
	intALU int
	intMul int
	fpAdd  int
	fpMul  int
}

// issue scans the dispatched-entry list oldest-first and starts execution
// of every instruction whose operands are available and whose functional
// unit (or memory-port path) is free this cycle. Iterating dispList instead
// of the whole reorder buffer keeps the scan proportional to the number of
// entries that could actually start — during miss shadows the ROB is full
// of issued and done entries this loop would only step over.
//
//portlint:hotpath
func (c *Core) issue() {
	if c.dispCount == 0 {
		return
	}
	var fu fuState
	lat := &c.cfg.Lat
	for k := 0; k < c.dispCount && fu.issued < c.cfg.Core.IssueWidth; k++ {
		idx := c.dispList[k]
		e := &c.rob[idx]
		in := &e.inst
		ready := c.operandsReadyAt(e)
		if ready == never || ready > c.cycle {
			continue
		}
		switch in.Class {
		case isa.IntALU, isa.Branch, isa.Jump, isa.Call, isa.Return:
			if fu.intALU >= c.cfg.Core.IntALUs {
				continue
			}
			fu.intALU++
			c.start(e, idx, &fu, c.cycle+uint64(lat.IntALU))
		case isa.IntMul:
			if fu.intMul >= c.cfg.Core.IntMulDivs || c.cycle < c.intDivFreeAt {
				continue
			}
			fu.intMul++
			c.start(e, idx, &fu, c.cycle+uint64(lat.IntMul))
		case isa.IntDiv:
			if fu.intMul >= c.cfg.Core.IntMulDivs || c.cycle < c.intDivFreeAt {
				continue
			}
			fu.intMul++
			done := c.cycle + uint64(lat.IntDiv)
			c.intDivFreeAt = done // divider is unpipelined
			c.start(e, idx, &fu, done)
		case isa.FPAdd:
			if fu.fpAdd >= c.cfg.Core.FPAdders {
				continue
			}
			fu.fpAdd++
			c.start(e, idx, &fu, c.cycle+uint64(lat.FPAdd))
		case isa.FPMul:
			if fu.fpMul >= c.cfg.Core.FPMulDivs || c.cycle < c.fpDivFreeAt {
				continue
			}
			fu.fpMul++
			c.start(e, idx, &fu, c.cycle+uint64(lat.FPMul))
		case isa.FPDiv:
			if fu.fpMul >= c.cfg.Core.FPMulDivs || c.cycle < c.fpDivFreeAt {
				continue
			}
			fu.fpMul++
			done := c.cycle + uint64(lat.FPDiv)
			c.fpDivFreeAt = done
			c.start(e, idx, &fu, done)
		case isa.Store:
			// handled below: stores need only their ADDRESS operand
			// to issue; data may arrive later.
		case isa.Load:
			c.issueLoad(e, idx, &fu, ready)
		}
	}
	// Stores issue on address availability alone, so they are scheduled
	// in a second pass that ignores the data operand's readiness.
	// dispStores counts dispatched stores exactly, so a zero proves the
	// pass would find nothing.
	if c.dispStores > 0 {
		for k := 0; k < c.dispCount && fu.issued < c.cfg.Core.IssueWidth; k++ {
			idx := c.dispList[k]
			e := &c.rob[idx]
			if e.state != stateDispatched || e.inst.Class != isa.Store {
				continue
			}
			addrReady := c.srcReadyAt(e.inst.Src1, e.src1Phys)
			if addrReady == never || addrReady > c.cycle {
				continue
			}
			c.issueStore(e, idx, &fu, addrReady)
		}
	}
	if fu.issued == 0 {
		return // nothing left the worklist: compaction would be a no-op
	}
	// Compact: entries that issued this cycle leave the worklist. Order is
	// preserved, so the list stays program-ordered.
	w := 0
	for k := 0; k < c.dispCount; k++ {
		if c.rob[c.dispList[k]].state == stateDispatched {
			c.dispList[w] = c.dispList[k]
			w++
		}
	}
	c.dispCount = w
}

// start transitions an entry to issued with the given completion time and
// releases its issue-queue slot.
//
//portlint:hotpath
func (c *Core) start(e *robEntry, idx int32, fu *fuState, doneAt uint64) {
	e.state = stateIssued
	e.doneAt = doneAt
	c.noteIssued(idx, doneAt)
	c.setDestReady(e, doneAt)
	if c.rec != nil {
		c.rec.Record(c.cycle, diag.EventIssue, e.seq, e.inst.Addr)
	}
	fu.issued++
	switch {
	case e.inst.Class == isa.Load || e.inst.Class == isa.Store:
		// Load/store queue slots are held until commit.
	case e.inst.Class.IsFPOp():
		c.fpQCount--
	default:
		c.intQCount--
	}
}

// agenDoneAt is the cycle a memory operation's effective address is
// available: one AGen latency after its operands are ready (or after
// dispatch, for operand-free addresses).
func agenDoneAt(e *robEntry, opsReady uint64, agen int) uint64 {
	base := opsReady
	if e.dispatchedAt > base {
		base = e.dispatchedAt
	}
	return base + uint64(agen)
}

// issueStore performs the store's address generation as soon as the
// address operand is available — the data operand may still be in flight.
// The store completes (becomes committable) only when its data is also
// ready; complete() finalises that. The cache write itself happens after
// commit, through the store buffer.
func (c *Core) issueStore(e *robEntry, idx int32, fu *fuState, addrOpReady uint64) {
	if fu.memOps >= c.cfg.Core.MemIssuePerCycle {
		return
	}
	if agenDoneAt(e, addrOpReady, c.cfg.Lat.AGen) > c.cycle {
		return // address generation still in flight
	}
	fu.memOps++
	fu.issued++
	e.addrReadyAt = c.cycle
	e.state = stateIssued
	e.doneAt = c.storeDoneAt(e)
	c.dispStores--
	c.noteIssued(idx, e.doneAt)
	if c.cfg.Core.SpeculativeLoads {
		c.checkMemOrder(e)
	}
}

// storeDoneAt computes when an address-issued store's data is available:
// one cycle after AGEN, or when the data operand arrives, whichever is
// later. Returns never while the data producer is unscheduled.
func (c *Core) storeDoneAt(e *robEntry) uint64 {
	dataReady := c.srcReadyAt(e.inst.Src2, e.src2Phys)
	if dataReady == never {
		return never
	}
	done := e.addrReadyAt + 1
	if dataReady+1 > done {
		done = dataReady + 1
	}
	return done
}

// checkMemOrder runs when a store's address resolves under memory-
// dependence speculation: any younger load that already issued with an
// overlapping address consumed stale data and squashes the pipeline. The
// trace-driven model charges the squash as a fetch bubble (the refetched
// path is identical, so only the timing cost matters).
func (c *Core) checkMemOrder(store *robEntry) {
	b, st := store.inst.Addr, uint64(store.inst.Size)
	for off := 0; off < c.robCount; off++ {
		e := &c.rob[c.robIndex(off)]
		if e.seq <= store.seq || e.inst.Class != isa.Load || e.state == stateDispatched {
			continue
		}
		a, sz := e.inst.Addr, uint64(e.inst.Size)
		if a < b+st && b < a+sz {
			c.memViolations++
			stallUntil := c.cycle + uint64(c.cfg.Core.ViolationPenalty)
			if stallUntil > c.fetchBlockedTil {
				c.fetchBlockedTil = stallUntil
			}
			// The load's data is refetched from the store: delay its
			// completion past the store's.
			if redo := c.cycle + 1; e.doneAt < redo {
				if e.state == stateDone {
					// Re-issuing a completed load; complete's
					// worklist must see it again. (A still-issued
					// load is already listed.)
					c.issList[c.issCount] = int32(c.robIndex(off))
					c.issCount++
				}
				e.doneAt = redo
				e.state = stateIssued
				if redo < c.nextDoneAt {
					c.nextDoneAt = redo
				}
				c.setDestReady(e, redo)
			}
			return
		}
	}
}

// issueLoad tries to start a load: address generated, older store addresses
// known, store-to-load forwarding or a memory-port access.
//
//portlint:hotpath
func (c *Core) issueLoad(e *robEntry, idx int32, fu *fuState, opsReady uint64) {
	if fu.memOps >= c.cfg.Core.MemIssuePerCycle {
		return
	}
	if agenDoneAt(e, opsReady, c.cfg.Lat.AGen) > c.cycle {
		return
	}
	in := &e.inst
	// Memory disambiguation. Conservative (R10000-style) by default:
	// every older store must have a known address before the load may
	// proceed. With SpeculativeLoads, unknown-address stores are assumed
	// non-conflicting; issueStore detects violations when they resolve.
	// The scan walks the store-queue ring backward from the load's
	// dispatch-time mark: exactly the older stores still in flight,
	// youngest first — the same stores, in the same order, the full
	// backward ROB walk used to visit.
	var cover *robEntry // youngest older store fully covering the load
	if c.sqCount > 0 {
		mask := uint64(len(c.sqRing) - 1)
		for p := e.sqMark; p > c.sqHead; {
			p--
			s := &c.rob[c.sqRing[p&mask]]
			if s.state == stateDispatched {
				if c.cfg.Core.SpeculativeLoads {
					continue // speculate past the unresolved store
				}
				return // address unknown: stall
			}
			a, sz := in.Addr, uint64(in.Size)
			b, st := s.inst.Addr, uint64(s.inst.Size)
			if a < b+st && b < a+sz { // overlap
				if b <= a && a+sz <= b+st {
					cover = s
					break
				}
				return // partial overlap: wait for the store to commit
			}
		}
	}
	if cover != nil {
		// Store-to-load forwarding inside the LSQ: data comes from the
		// store queue one cycle later; no cache port involved.
		if cover.doneAt > c.cycle {
			return // store data not yet available
		}
		fu.memOps++
		c.start(e, idx, fu, c.cycle+1)
		c.lsqForwards++
		return
	}
	r := c.port.TryLoad(c.cycle, in.Addr, int(in.Size))
	if !r.Accepted {
		c.rec.Record(c.cycle, diag.EventReject, e.seq, in.Addr)
		return // port busy, MSHRs full, or store-buffer conflict: retry
	}
	c.rec.Record(c.cycle, diag.EventGrant, e.seq, in.Addr)
	fu.memOps++
	c.start(e, idx, fu, r.Ready)
}
