package cpu

import (
	"portsim/internal/diag"
	"portsim/internal/isa"
)

// dispatch renames and inserts up to DecodeWidth instructions from the
// fetch buffer into the reorder buffer and issue bookkeeping. It stalls on
// any exhausted resource: ROB slots, physical registers, issue-queue or
// load/store-queue occupancy.
//
//portlint:hotpath
func (c *Core) dispatch() {
	for n := 0; n < c.cfg.Core.DecodeWidth && c.fbCount > 0; n++ {
		if c.robCount == len(c.rob) {
			c.robFullCycles++
			return
		}
		f := c.fbFront()
		in := &f.inst
		// Queue-occupancy gating.
		switch {
		case in.Class == isa.Load:
			if c.lqCount >= c.cfg.Core.LoadQueueEntries {
				return
			}
		case in.Class == isa.Store:
			if c.sqCount >= c.cfg.Core.StoreQueueEntries {
				return
			}
		case in.Class.IsFPOp():
			if c.fpQCount >= c.cfg.Core.FPIQEntries {
				return
			}
		default:
			if c.intQCount >= c.cfg.Core.IntIQEntries {
				return
			}
		}
		// Physical-register availability.
		if in.Dest != isa.RegZero {
			if in.Dest.IsFP() {
				if len(c.fpFree) == 0 {
					return
				}
			} else if len(c.intFree) == 0 {
				return
			}
		}

		idx := c.robIndex(c.robCount)
		e := &c.rob[idx]
		*e = robEntry{
			inst:         *in,
			seq:          f.seq,
			state:        stateDispatched,
			doneAt:       never,
			destPhys:     -1,
			prevPhys:     -1,
			src1Phys:     c.renameSrc(in.Src1),
			src2Phys:     c.renameSrc(in.Src2),
			dispatchedAt: c.cycle,
			mispredicted: f.mispredicted,
			serialize:    f.serialize,
		}
		if in.Dest != isa.RegZero {
			e.destPhys, e.prevPhys = c.allocDest(in.Dest)
		}
		switch {
		case in.Class == isa.Load:
			c.lqCount++
		case in.Class == isa.Store:
			c.sqCount++
		case in.Class.IsFPOp():
			c.fpQCount++
		case in.Class == isa.Nop || in.Class == isa.Syscall:
			// No functional unit: completes immediately. Syscall
			// ordering comes from in-order commit plus the fetch
			// stall it already owns.
			e.state = stateIssued
			e.doneAt = c.cycle + 1
			c.noteIssued(e.doneAt)
		default:
			c.intQCount++
		}
		c.robCount++
		c.fbPop()
	}
}

// renameSrc resolves a source register to its current physical mapping.
func (c *Core) renameSrc(r isa.Reg) int16 {
	if r == isa.RegZero {
		return -1
	}
	if r.IsFP() {
		return c.fpMap[r-isa.FPBase]
	}
	return c.intMap[r]
}

// allocDest takes a free physical register for the destination and returns
// (new, previous) mappings. The new register is marked not-ready until the
// producer issues.
func (c *Core) allocDest(r isa.Reg) (newPhys, prevPhys int16) {
	if r.IsFP() {
		i := r - isa.FPBase
		newPhys = c.fpFree[len(c.fpFree)-1]
		c.fpFree = c.fpFree[:len(c.fpFree)-1]
		prevPhys = c.fpMap[i]
		c.fpMap[i] = newPhys
		c.fpReady[newPhys] = never
		return newPhys, prevPhys
	}
	newPhys = c.intFree[len(c.intFree)-1]
	c.intFree = c.intFree[:len(c.intFree)-1]
	prevPhys = c.intMap[r]
	c.intMap[r] = newPhys
	c.intReady[newPhys] = never
	return newPhys, prevPhys
}

// srcReadyAt returns the cycle a source operand becomes available (0 for
// no dependence).
func (c *Core) srcReadyAt(reg isa.Reg, phys int16) uint64 {
	if phys < 0 {
		return 0
	}
	if reg.IsFP() {
		return c.fpReady[phys]
	}
	return c.intReady[phys]
}

// operandsReadyAt gives the cycle both operands are available.
func (c *Core) operandsReadyAt(e *robEntry) uint64 {
	a := c.srcReadyAt(e.inst.Src1, e.src1Phys)
	b := c.srcReadyAt(e.inst.Src2, e.src2Phys)
	if b > a {
		a = b
	}
	return a
}

// setDestReady publishes the completion time of an instruction's result.
func (c *Core) setDestReady(e *robEntry, at uint64) {
	if e.destPhys < 0 {
		return
	}
	if e.inst.Dest.IsFP() {
		c.fpReady[e.destPhys] = at
	} else {
		c.intReady[e.destPhys] = at
	}
}

// fuState tracks per-cycle functional-unit consumption during issue.
type fuState struct {
	issued int
	memOps int
	intALU int
	intMul int
	fpAdd  int
	fpMul  int
}

// issue scans the reorder buffer oldest-first and starts execution of every
// dispatched instruction whose operands are available and whose functional
// unit (or memory-port path) is free this cycle.
//
//portlint:hotpath
func (c *Core) issue() {
	var fu fuState
	lat := &c.cfg.Lat
	for off := 0; off < c.robCount && fu.issued < c.cfg.Core.IssueWidth; off++ {
		e := &c.rob[c.robIndex(off)]
		if e.state != stateDispatched {
			continue
		}
		in := &e.inst
		ready := c.operandsReadyAt(e)
		if ready == never || ready > c.cycle {
			continue
		}
		switch in.Class {
		case isa.IntALU, isa.Branch, isa.Jump, isa.Call, isa.Return:
			if fu.intALU >= c.cfg.Core.IntALUs {
				continue
			}
			fu.intALU++
			c.start(e, &fu, c.cycle+uint64(lat.IntALU))
		case isa.IntMul:
			if fu.intMul >= c.cfg.Core.IntMulDivs || c.cycle < c.intDivFreeAt {
				continue
			}
			fu.intMul++
			c.start(e, &fu, c.cycle+uint64(lat.IntMul))
		case isa.IntDiv:
			if fu.intMul >= c.cfg.Core.IntMulDivs || c.cycle < c.intDivFreeAt {
				continue
			}
			fu.intMul++
			done := c.cycle + uint64(lat.IntDiv)
			c.intDivFreeAt = done // divider is unpipelined
			c.start(e, &fu, done)
		case isa.FPAdd:
			if fu.fpAdd >= c.cfg.Core.FPAdders {
				continue
			}
			fu.fpAdd++
			c.start(e, &fu, c.cycle+uint64(lat.FPAdd))
		case isa.FPMul:
			if fu.fpMul >= c.cfg.Core.FPMulDivs || c.cycle < c.fpDivFreeAt {
				continue
			}
			fu.fpMul++
			c.start(e, &fu, c.cycle+uint64(lat.FPMul))
		case isa.FPDiv:
			if fu.fpMul >= c.cfg.Core.FPMulDivs || c.cycle < c.fpDivFreeAt {
				continue
			}
			fu.fpMul++
			done := c.cycle + uint64(lat.FPDiv)
			c.fpDivFreeAt = done
			c.start(e, &fu, done)
		case isa.Store:
			// handled below: stores need only their ADDRESS operand
			// to issue; data may arrive later.
		case isa.Load:
			c.issueLoad(e, off, &fu, ready)
		}
	}
	// Stores issue on address availability alone, so they are scheduled
	// in a second pass that ignores the data operand's readiness. sqCount
	// tracks stores resident in the ROB, so a zero count proves the pass
	// would find nothing.
	if c.sqCount == 0 {
		return
	}
	for off := 0; off < c.robCount && fu.issued < c.cfg.Core.IssueWidth; off++ {
		e := &c.rob[c.robIndex(off)]
		if e.state != stateDispatched || e.inst.Class != isa.Store {
			continue
		}
		addrReady := c.srcReadyAt(e.inst.Src1, e.src1Phys)
		if addrReady == never || addrReady > c.cycle {
			continue
		}
		c.issueStore(e, &fu, addrReady)
	}
}

// start transitions an entry to issued with the given completion time and
// releases its issue-queue slot.
//
//portlint:hotpath
func (c *Core) start(e *robEntry, fu *fuState, doneAt uint64) {
	e.state = stateIssued
	e.doneAt = doneAt
	c.noteIssued(doneAt)
	c.setDestReady(e, doneAt)
	if c.rec != nil {
		c.rec.Record(c.cycle, diag.EventIssue, e.seq, e.inst.Addr)
	}
	fu.issued++
	switch {
	case e.inst.Class == isa.Load || e.inst.Class == isa.Store:
		// Load/store queue slots are held until commit.
	case e.inst.Class.IsFPOp():
		c.fpQCount--
	default:
		c.intQCount--
	}
}

// agenDoneAt is the cycle a memory operation's effective address is
// available: one AGen latency after its operands are ready (or after
// dispatch, for operand-free addresses).
func agenDoneAt(e *robEntry, opsReady uint64, agen int) uint64 {
	base := opsReady
	if e.dispatchedAt > base {
		base = e.dispatchedAt
	}
	return base + uint64(agen)
}

// issueStore performs the store's address generation as soon as the
// address operand is available — the data operand may still be in flight.
// The store completes (becomes committable) only when its data is also
// ready; complete() finalises that. The cache write itself happens after
// commit, through the store buffer.
func (c *Core) issueStore(e *robEntry, fu *fuState, addrOpReady uint64) {
	if fu.memOps >= c.cfg.Core.MemIssuePerCycle {
		return
	}
	if agenDoneAt(e, addrOpReady, c.cfg.Lat.AGen) > c.cycle {
		return // address generation still in flight
	}
	fu.memOps++
	fu.issued++
	e.addrReadyAt = c.cycle
	e.state = stateIssued
	e.doneAt = c.storeDoneAt(e)
	c.noteIssued(e.doneAt)
	if c.cfg.Core.SpeculativeLoads {
		c.checkMemOrder(e)
	}
}

// storeDoneAt computes when an address-issued store's data is available:
// one cycle after AGEN, or when the data operand arrives, whichever is
// later. Returns never while the data producer is unscheduled.
func (c *Core) storeDoneAt(e *robEntry) uint64 {
	dataReady := c.srcReadyAt(e.inst.Src2, e.src2Phys)
	if dataReady == never {
		return never
	}
	done := e.addrReadyAt + 1
	if dataReady+1 > done {
		done = dataReady + 1
	}
	return done
}

// checkMemOrder runs when a store's address resolves under memory-
// dependence speculation: any younger load that already issued with an
// overlapping address consumed stale data and squashes the pipeline. The
// trace-driven model charges the squash as a fetch bubble (the refetched
// path is identical, so only the timing cost matters).
func (c *Core) checkMemOrder(store *robEntry) {
	b, st := store.inst.Addr, uint64(store.inst.Size)
	for off := 0; off < c.robCount; off++ {
		e := &c.rob[c.robIndex(off)]
		if e.seq <= store.seq || e.inst.Class != isa.Load || e.state == stateDispatched {
			continue
		}
		a, sz := e.inst.Addr, uint64(e.inst.Size)
		if a < b+st && b < a+sz {
			c.memViolations++
			stallUntil := c.cycle + uint64(c.cfg.Core.ViolationPenalty)
			if stallUntil > c.fetchBlockedTil {
				c.fetchBlockedTil = stallUntil
			}
			// The load's data is refetched from the store: delay its
			// completion past the store's.
			if redo := c.cycle + 1; e.doneAt < redo {
				if e.state == stateDone {
					// Re-issuing a completed load; complete's
					// bookkeeping must see it again.
					c.issuedCount++
				}
				e.doneAt = redo
				e.state = stateIssued
				if redo < c.nextDoneAt {
					c.nextDoneAt = redo
				}
				c.setDestReady(e, redo)
			}
			return
		}
	}
}

// issueLoad tries to start a load: address generated, older store addresses
// known, store-to-load forwarding or a memory-port access.
//
//portlint:hotpath
func (c *Core) issueLoad(e *robEntry, off int, fu *fuState, opsReady uint64) {
	if fu.memOps >= c.cfg.Core.MemIssuePerCycle {
		return
	}
	if agenDoneAt(e, opsReady, c.cfg.Lat.AGen) > c.cycle {
		return
	}
	in := &e.inst
	// Memory disambiguation. Conservative (R10000-style) by default:
	// every older store must have a known address before the load may
	// proceed. With SpeculativeLoads, unknown-address stores are assumed
	// non-conflicting; issueStore detects violations when they resolve.
	// A zero sqCount proves there is no older store to disambiguate
	// against, skipping the backward scan entirely.
	var cover *robEntry // youngest older store fully covering the load
	if c.sqCount > 0 {
		for prev := off - 1; prev >= 0; prev-- {
			s := &c.rob[c.robIndex(prev)]
			if s.inst.Class != isa.Store {
				continue
			}
			if s.state == stateDispatched {
				if c.cfg.Core.SpeculativeLoads {
					continue // speculate past the unresolved store
				}
				return // address unknown: stall
			}
			a, sz := in.Addr, uint64(in.Size)
			b, st := s.inst.Addr, uint64(s.inst.Size)
			if a < b+st && b < a+sz { // overlap
				if b <= a && a+sz <= b+st {
					cover = s
					break
				}
				return // partial overlap: wait for the store to commit
			}
		}
	}
	if cover != nil {
		// Store-to-load forwarding inside the LSQ: data comes from the
		// store queue one cycle later; no cache port involved.
		if cover.doneAt > c.cycle {
			return // store data not yet available
		}
		fu.memOps++
		c.start(e, fu, c.cycle+1)
		c.lsqForwards++
		return
	}
	r := c.port.TryLoad(c.cycle, in.Addr, int(in.Size))
	if !r.Accepted {
		c.rec.Record(c.cycle, diag.EventReject, e.seq, in.Addr)
		return // port busy, MSHRs full, or store-buffer conflict: retry
	}
	c.rec.Record(c.cycle, diag.EventGrant, e.seq, in.Addr)
	fu.memOps++
	c.start(e, fu, r.Ready)
}
