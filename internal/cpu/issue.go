package cpu

import (
	"portsim/internal/diag"
	"portsim/internal/isa"
)

// dispatch renames and inserts up to DecodeWidth instructions from the
// fetch buffer into the reorder buffer and issue bookkeeping. It stalls on
// any exhausted resource: ROB slots, physical registers, issue-queue or
// load/store-queue occupancy.
//
//portlint:hotpath
func (c *Core) dispatch() {
	for n := 0; n < c.cfg.Core.DecodeWidth && c.fbCount > 0; n++ {
		if c.robCount == len(c.rob) {
			c.robFullCycles++
			return
		}
		f := c.fbFront()
		in := &f.inst
		// Queue-occupancy and physical-register gating, shared with the
		// event-driven skip gate so the two can never disagree.
		if !c.dispatchGatesOK(in) {
			return
		}

		idx := c.robIndex(c.robCount)
		e := &c.rob[idx]
		// ROB slots are reused, so every robEntry field must be (re)written
		// here — field-by-field rather than via a composite literal, which
		// would construct and copy a temporary on the hottest path.
		e.inst = *in
		e.seq = f.seq
		e.state = stateDispatched
		e.doneAt = never
		e.destPhys = -1
		e.prevPhys = -1
		e.src1Phys = c.renameSrc(in.Src1)
		e.src2Phys = c.renameSrc(in.Src2)
		e.addrReadyAt = 0
		e.sqMark = 0
		e.dispatchedAt = c.cycle
		e.readyCache = never
		e.readyGen = staleGen
		e.waitNext = -1
		e.onWaitList = false
		e.inLive = false
		e.inHeap = false
		e.lsqCleanGen = 0
		e.mispredicted = f.mispredicted
		e.serialize = f.serialize
		if in.Dest != isa.RegZero {
			e.destPhys, e.prevPhys = c.allocDest(in.Dest)
		}
		switch {
		case in.Class == isa.Load:
			c.lqCount++
			e.sqMark = c.sqTail
		case in.Class == isa.Store:
			c.sqCount++
			c.sqRing[c.sqTail&uint64(len(c.sqRing)-1)] = int32(idx)
			c.sqTail++
		case in.Class.IsFPOp():
			c.fpQCount++
		case in.Class == isa.Nop || in.Class == isa.Syscall:
			// No functional unit: completes immediately. Syscall
			// ordering comes from in-order commit plus the fetch
			// stall it already owns.
			e.state = stateIssued
			e.doneAt = c.cycle + 1
			c.noteIssued(int32(idx), e.doneAt)
		default:
			c.intQCount++
		}
		if e.state == stateDispatched {
			c.route(e, int32(idx))
		}
		c.robCount++
		c.fbPop()
	}
}

// renameSrc resolves a source register to its current physical mapping.
func (c *Core) renameSrc(r isa.Reg) int16 {
	if r == isa.RegZero {
		return -1
	}
	if r.IsFP() {
		return c.fpMap[r-isa.FPBase]
	}
	return c.intMap[r]
}

// allocDest takes a free physical register for the destination and returns
// (new, previous) mappings. The new register is marked not-ready until the
// producer issues.
func (c *Core) allocDest(r isa.Reg) (newPhys, prevPhys int16) {
	if r.IsFP() {
		i := r - isa.FPBase
		newPhys = c.fpFree[len(c.fpFree)-1]
		c.fpFree = c.fpFree[:len(c.fpFree)-1]
		prevPhys = c.fpMap[i]
		c.fpMap[i] = newPhys
		c.fpReady[newPhys] = never
		return newPhys, prevPhys
	}
	newPhys = c.intFree[len(c.intFree)-1]
	c.intFree = c.intFree[:len(c.intFree)-1]
	prevPhys = c.intMap[r]
	c.intMap[r] = newPhys
	c.intReady[newPhys] = never
	return newPhys, prevPhys
}

// srcReadyAt returns the cycle a source operand becomes available (0 for
// no dependence).
func (c *Core) srcReadyAt(reg isa.Reg, phys int16) uint64 {
	if phys < 0 {
		return 0
	}
	if reg.IsFP() {
		return c.fpReady[phys]
	}
	return c.intReady[phys]
}

// operandsReadyAt gives the cycle both operands are available.
func (c *Core) operandsReadyAt(e *robEntry) uint64 {
	a := c.srcReadyAt(e.inst.Src1, e.src1Phys)
	b := c.srcReadyAt(e.inst.Src2, e.src2Phys)
	if b > a {
		a = b
	}
	return a
}

// readyAt returns the cycle the entry clears issue's operand gate — both
// operands for most classes, the address operand alone for stores — serving
// it from the entry's readyCache while readyGen matches. A cached finite
// value is final until a memory-order squash bumps the global generation; a
// cached never is parked on the blocking register's waiter list, and the
// publish that ends the wait (setDestReady) stales exactly those caches.
//
//portlint:hotpath
func (c *Core) readyAt(e *robEntry, idx int32) uint64 {
	if e.readyGen == c.readyGen {
		return e.readyCache
	}
	return c.readyAtSlow(e, idx)
}

// readyAtSlow recomputes and refills a missed readiness cache, parking the
// entry on a waiter list when a producer is unscheduled; split from readyAt
// so the cache-hit path inlines into the issue and skip scans.
//
//portlint:hotpath
func (c *Core) readyAtSlow(e *robEntry, idx int32) uint64 {
	var r uint64
	if e.inst.Class == isa.Store {
		r = c.srcReadyAt(e.inst.Src1, e.src1Phys)
		if r == never {
			c.addWaiter(e, idx, e.inst.Src1, e.src1Phys)
		}
	} else {
		a := c.srcReadyAt(e.inst.Src1, e.src1Phys)
		b := c.srcReadyAt(e.inst.Src2, e.src2Phys)
		// Park on whichever producer is unscheduled; if both are, the
		// first publish triggers a recompute that re-parks on the other.
		if a == never {
			c.addWaiter(e, idx, e.inst.Src1, e.src1Phys)
		} else if b == never {
			c.addWaiter(e, idx, e.inst.Src2, e.src2Phys)
		}
		r = a
		if b > r {
			r = b
		}
	}
	e.readyCache = r
	e.readyGen = c.readyGen
	return r
}

// addWaiter parks a dispatched entry on the unpublished register blocking
// it; the pop in setDestReady is the only thing that un-parks it. A parked
// entry keeps its valid-never cache across squash-driven recomputes, so the
// onWaitList guard prevents double insertion.
func (c *Core) addWaiter(e *robEntry, idx int32, reg isa.Reg, phys int16) {
	if e.onWaitList {
		return
	}
	var head *int32
	if reg.IsFP() {
		head = &c.fpWaiter[phys]
	} else {
		head = &c.intWaiter[phys]
	}
	e.waitNext = *head
	*head = idx
	e.onWaitList = true
}

// setDestReady publishes the completion time of an instruction's result and
// wakes the consumers parked on the destination register: their valid-never
// readiness caches are staled and each is re-routed to the worklist its
// recomputed readiness calls for — the wake heap when the publish scheduled
// it (publishes always land in the future, so a woken entry is never
// immediately live), or another register's waiter list when a second
// producer is still unscheduled.
//
//portlint:hotpath
func (c *Core) setDestReady(e *robEntry, at uint64) {
	if e.destPhys < 0 {
		return
	}
	var head *int32
	if e.inst.Dest.IsFP() {
		c.fpReady[e.destPhys] = at
		head = &c.fpWaiter[e.destPhys]
	} else {
		c.intReady[e.destPhys] = at
		head = &c.intWaiter[e.destPhys]
	}
	idx := *head
	*head = -1
	for idx != -1 {
		w := &c.rob[idx]
		next := w.waitNext
		w.onWaitList = false
		w.readyGen = staleGen
		if w.state == stateDispatched {
			c.route(w, idx)
		} else {
			// Address-issued store whose data producer just scheduled:
			// finalise the completion it was parked for and file it on
			// complete()'s worklist (noteIssued left it off while doneAt
			// was unknown).
			d := c.storeDoneAt(w)
			w.doneAt = d
			c.issList[c.issCount] = idx
			c.issCount++
			if d < c.nextDoneAt {
				c.nextDoneAt = d
			}
		}
		idx = next
	}
}

// route files a dispatched entry into the worklist matching its readiness:
// the live scan list when its operands have already arrived, the wake heap
// when the next issue attempt is at a known future cycle, or — via the
// waiter registration inside readyAtSlow — a register waiter list when a
// producer is unscheduled. Idempotent through the inLive/inHeap guards, so
// re-routing after a squash or a conservative wake is always safe.
//
//portlint:hotpath
func (c *Core) route(e *robEntry, idx int32) {
	r := c.readyAt(e, idx)
	if r == never {
		return // parked on the blocking register's waiter list
	}
	if r <= c.cycle {
		c.liveInsert(e, idx)
		return
	}
	c.heapPush(c.attemptTime(e, r), idx)
}

// liveInsert places a dispatched entry whose readiness has arrived into its
// live scan list (liveStores for stores, liveList for the rest) at its
// program-order position. A newly dispatched or freshly woken entry is
// usually younger than everything already listed, so the insert scans from
// the tail and almost always appends. Inserting while issue() is mid-scan
// is safe: the entry's producers all sit at earlier positions, so its slot
// lands beyond the scan cursor.
//
//portlint:hotpath
func (c *Core) liveInsert(e *robEntry, idx int32) {
	if e.inLive {
		return
	}
	e.inLive = true
	list := c.liveList
	count := &c.liveCount
	if e.inst.Class == isa.Store {
		list = c.liveStores
		count = &c.liveStoreCount
	}
	n := *count
	*count = n + 1
	k := n
	for k > 0 && c.rob[list[k-1]].seq > e.seq {
		list[k] = list[k-1]
		k--
	}
	list[k] = idx
}

// heapPush schedules a dispatched entry's next issue attempt on the wake
// min-heap. An entry already in the heap keeps its existing (earlier or
// equal, hence conservative) wake time: the wake re-routes it anyway.
//
//portlint:hotpath
func (c *Core) heapPush(at uint64, idx int32) {
	e := &c.rob[idx]
	if e.inHeap {
		return
	}
	e.inHeap = true
	h := append(c.wakeHeap, wakeEntry{at: at, idx: idx}) //portlint:ignore hotpath inHeap bounds len by ROBEntries, the preallocated capacity; never grows
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p].at <= h[i].at {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	c.wakeHeap = h
}

// drainWake pops every wake-heap entry whose attempt time has arrived and
// re-routes it — normally into the live list; back to the heap or a waiter
// list when a squash moved its readiness after the push.
//
//portlint:hotpath
func (c *Core) drainWake() {
	for len(c.wakeHeap) > 0 && c.wakeHeap[0].at <= c.cycle {
		h := c.wakeHeap
		idx := h[0].idx
		n := len(h) - 1
		h[0] = h[n]
		c.wakeHeap = h[:n]
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			if r := l + 1; r < n && h[r].at < h[l].at {
				l = r
			}
			if h[i].at <= h[l].at {
				break
			}
			h[i], h[l] = h[l], h[i]
			i = l
		}
		e := &c.rob[idx]
		e.inHeap = false
		c.route(e, idx) // may push back onto c.wakeHeap; resynced above
	}
}

// attemptTime maps an entry's (finite) operand readiness to the first cycle
// it could pass issue()'s per-entry gates: address generation for memory
// ops, the unpipelined dividers for mul/div. Divider times are read at call
// time and only ever move later, so a stored result is a conservative lower
// bound on the true attempt cycle.
//
//portlint:hotpath
func (c *Core) attemptTime(e *robEntry, ready uint64) uint64 {
	switch e.inst.Class {
	case isa.Load, isa.Store:
		return agenDoneAt(e, ready, c.cfg.Lat.AGen)
	case isa.IntMul, isa.IntDiv:
		if c.intDivFreeAt > ready {
			return c.intDivFreeAt
		}
		return ready
	case isa.FPMul, isa.FPDiv:
		if c.fpDivFreeAt > ready {
			return c.fpDivFreeAt
		}
		return ready
	default:
		return ready
	}
}

// fuState tracks per-cycle functional-unit consumption during issue.
type fuState struct {
	issued int
	memOps int
	intALU int
	intMul int
	fpAdd  int
	fpMul  int
}

// issue starts execution of every instruction whose operands are available
// and whose functional unit (or memory-port path) is free this cycle. The
// scan walks only the live list — the program-ordered dispatched entries
// whose readiness has already arrived — after draining matured wake-heap
// entries into it; everything still waiting on a future cycle or an
// unscheduled producer is parked off-list and costs the scan nothing. The
// issue decisions are identical to a scan of all dispatched entries: the
// parked entries are exactly those such a scan would have skipped (or
// visited without effect, for attempts gated on address generation or a
// busy divider).
//
//portlint:hotpath
func (c *Core) issue() {
	c.drainWake()
	if c.liveCount == 0 && c.liveStoreCount == 0 {
		return
	}
	var fu fuState
	lat := &c.cfg.Lat
	parked := 0 // live entries re-parked after a squash moved their readiness
	for k := 0; k < c.liveCount && fu.issued < c.cfg.Core.IssueWidth; k++ {
		idx := c.liveList[k]
		e := &c.rob[idx]
		ready := c.readyAt(e, idx)
		if ready > c.cycle {
			// Only a memory-order squash moves a live entry's readiness:
			// re-park it where it now belongs (readyAtSlow already put a
			// now-never entry on a waiter list).
			e.inLive = false
			parked++
			if ready != never {
				c.heapPush(c.attemptTime(e, ready), idx)
			}
			continue
		}
		in := &e.inst
		switch in.Class {
		case isa.IntALU, isa.Branch, isa.Jump, isa.Call, isa.Return:
			if fu.intALU >= c.cfg.Core.IntALUs {
				continue
			}
			fu.intALU++
			c.start(e, idx, &fu, c.cycle+uint64(lat.IntALU))
		case isa.IntMul:
			if fu.intMul >= c.cfg.Core.IntMulDivs || c.cycle < c.intDivFreeAt {
				continue
			}
			fu.intMul++
			c.start(e, idx, &fu, c.cycle+uint64(lat.IntMul))
		case isa.IntDiv:
			if fu.intMul >= c.cfg.Core.IntMulDivs || c.cycle < c.intDivFreeAt {
				continue
			}
			fu.intMul++
			done := c.cycle + uint64(lat.IntDiv)
			c.intDivFreeAt = done // divider is unpipelined
			c.start(e, idx, &fu, done)
		case isa.FPAdd:
			if fu.fpAdd >= c.cfg.Core.FPAdders {
				continue
			}
			fu.fpAdd++
			c.start(e, idx, &fu, c.cycle+uint64(lat.FPAdd))
		case isa.FPMul:
			if fu.fpMul >= c.cfg.Core.FPMulDivs || c.cycle < c.fpDivFreeAt {
				continue
			}
			fu.fpMul++
			c.start(e, idx, &fu, c.cycle+uint64(lat.FPMul))
		case isa.FPDiv:
			if fu.fpMul >= c.cfg.Core.FPMulDivs || c.cycle < c.fpDivFreeAt {
				continue
			}
			fu.fpMul++
			done := c.cycle + uint64(lat.FPDiv)
			c.fpDivFreeAt = done
			c.start(e, idx, &fu, done)
		case isa.Load:
			c.issueLoad(e, idx, &fu, ready)
		}
	}
	// Stores issue on address availability alone — which is what readyAt
	// tracks for them — so they live on their own list and are scheduled
	// in a second pass that ignores the data operand's readiness.
	for k := 0; k < c.liveStoreCount && fu.issued < c.cfg.Core.IssueWidth; k++ {
		idx := c.liveStores[k]
		e := &c.rob[idx]
		addrReady := c.readyAt(e, idx)
		if addrReady > c.cycle {
			// Squash-moved readiness: re-park, as in the first pass.
			e.inLive = false
			parked++
			if addrReady != never {
				c.heapPush(c.attemptTime(e, addrReady), idx)
			}
			continue
		}
		c.issueStore(e, idx, &fu, addrReady)
	}
	if fu.issued == 0 && parked == 0 {
		return // nothing left the worklists: compaction would be a no-op
	}
	// Compact: entries that issued or re-parked this cycle leave their
	// live list. Order is preserved, so the lists stay program-ordered.
	w := 0
	for k := 0; k < c.liveCount; k++ {
		idx := c.liveList[k]
		if c.rob[idx].inLive {
			c.liveList[w] = idx
			w++
		}
	}
	c.liveCount = w
	w = 0
	for k := 0; k < c.liveStoreCount; k++ {
		idx := c.liveStores[k]
		if c.rob[idx].inLive {
			c.liveStores[w] = idx
			w++
		}
	}
	c.liveStoreCount = w
}

// start transitions an entry to issued with the given completion time and
// releases its issue-queue slot.
//
//portlint:hotpath
func (c *Core) start(e *robEntry, idx int32, fu *fuState, doneAt uint64) {
	e.state = stateIssued
	e.inLive = false
	e.doneAt = doneAt
	c.noteIssued(idx, doneAt)
	c.setDestReady(e, doneAt)
	if c.rec != nil {
		c.rec.Record(c.cycle, diag.EventIssue, e.seq, e.inst.Addr)
	}
	fu.issued++
	switch {
	case e.inst.Class == isa.Load || e.inst.Class == isa.Store:
		// Load/store queue slots are held until commit.
	case e.inst.Class.IsFPOp():
		c.fpQCount--
	default:
		c.intQCount--
	}
}

// agenDoneAt is the cycle a memory operation's effective address is
// available: one AGen latency after its operands are ready (or after
// dispatch, for operand-free addresses).
func agenDoneAt(e *robEntry, opsReady uint64, agen int) uint64 {
	base := opsReady
	if e.dispatchedAt > base {
		base = e.dispatchedAt
	}
	return base + uint64(agen)
}

// issueStore performs the store's address generation as soon as the
// address operand is available — the data operand may still be in flight.
// The store completes (becomes committable) only when its data is also
// ready; complete() finalises that. The cache write itself happens after
// commit, through the store buffer.
func (c *Core) issueStore(e *robEntry, idx int32, fu *fuState, addrOpReady uint64) {
	if fu.memOps >= c.cfg.Core.MemIssuePerCycle {
		return
	}
	if agenDoneAt(e, addrOpReady, c.cfg.Lat.AGen) > c.cycle {
		return // address generation still in flight
	}
	fu.memOps++
	fu.issued++
	e.addrReadyAt = c.cycle
	e.state = stateIssued
	e.inLive = false
	e.doneAt = c.storeDoneAt(e)
	c.sqGen++ // this store's address is now known: clean verdicts expire
	c.noteIssued(idx, e.doneAt)
	if e.doneAt == never {
		// Data producer unscheduled: park on its waiter list so the
		// publish finalises this store's completion (setDestReady) —
		// complete() never polls for it.
		c.addWaiter(e, idx, e.inst.Src2, e.src2Phys)
	}
	if c.cfg.Core.SpeculativeLoads {
		c.checkMemOrder(e)
	}
}

// storeDoneAt computes when an address-issued store's data is available:
// one cycle after AGEN, or when the data operand arrives, whichever is
// later. Returns never while the data producer is unscheduled.
func (c *Core) storeDoneAt(e *robEntry) uint64 {
	dataReady := c.srcReadyAt(e.inst.Src2, e.src2Phys)
	if dataReady == never {
		return never
	}
	done := e.addrReadyAt + 1
	if dataReady+1 > done {
		done = dataReady + 1
	}
	return done
}

// checkMemOrder runs when a store's address resolves under memory-
// dependence speculation: any younger load that already issued with an
// overlapping address consumed stale data and squashes the pipeline. The
// trace-driven model charges the squash as a fetch bubble (the refetched
// path is identical, so only the timing cost matters).
func (c *Core) checkMemOrder(store *robEntry) {
	b, st := store.inst.Addr, uint64(store.inst.Size)
	for off := 0; off < c.robCount; off++ {
		e := &c.rob[c.robIndex(off)]
		if e.seq <= store.seq || e.inst.Class != isa.Load || e.state == stateDispatched {
			continue
		}
		a, sz := e.inst.Addr, uint64(e.inst.Size)
		if a < b+st && b < a+sz {
			c.memViolations++
			stallUntil := c.cycle + uint64(c.cfg.Core.ViolationPenalty)
			if stallUntil > c.fetchBlockedTil {
				c.fetchBlockedTil = stallUntil
			}
			// The load's data is refetched from the store: delay its
			// completion past the store's.
			if redo := c.cycle + 1; e.doneAt < redo {
				if e.state == stateDone {
					// Re-issuing a completed load; complete's
					// worklist must see it again. (A still-issued
					// load is already listed.)
					c.issList[c.issCount] = int32(c.robIndex(off))
					c.issCount++
				}
				e.doneAt = redo
				e.state = stateIssued
				if redo < c.nextDoneAt {
					c.nextDoneAt = redo
				}
				c.setDestReady(e, redo)
				// The load's result time just moved after being
				// published: invalidate every readiness cache. Stale
				// live-list and wake-heap placements re-park lazily on
				// their next visit.
				c.readyGen++
			}
			return
		}
	}
}

// issueLoad tries to start a load: address generated, older store addresses
// known, store-to-load forwarding or a memory-port access.
//
//portlint:hotpath
func (c *Core) issueLoad(e *robEntry, idx int32, fu *fuState, opsReady uint64) {
	if fu.memOps >= c.cfg.Core.MemIssuePerCycle {
		return
	}
	if agenDoneAt(e, opsReady, c.cfg.Lat.AGen) > c.cycle {
		return
	}
	in := &e.inst
	// Memory disambiguation. Conservative (R10000-style) by default:
	// every older store must have a known address before the load may
	// proceed. With SpeculativeLoads, unknown-address stores are assumed
	// non-conflicting; issueStore detects violations when they resolve.
	// The scan walks the store-queue ring backward from the load's
	// dispatch-time mark: exactly the older stores still in flight,
	// youngest first — the same stores, in the same order, the full
	// backward ROB walk used to visit.
	var cover *robEntry // youngest older store fully covering the load
	if c.sqCount > 0 && e.lsqCleanGen != c.sqGen {
		mask := uint64(len(c.sqRing) - 1)
		for p := e.sqMark; p > c.sqHead; {
			p--
			s := &c.rob[c.sqRing[p&mask]]
			if s.state == stateDispatched {
				if c.cfg.Core.SpeculativeLoads {
					continue // speculate past the unresolved store
				}
				return // address unknown: stall
			}
			a, sz := in.Addr, uint64(in.Size)
			b, st := s.inst.Addr, uint64(s.inst.Size)
			if a < b+st && b < a+sz { // overlap
				if b <= a && a+sz <= b+st {
					cover = s
					break
				}
				return // partial overlap: wait for the store to commit
			}
		}
		if cover == nil {
			// Clean: no older in-flight store overlaps (nor, without
			// speculation, remains unresolved). Stores can only leave the
			// window from here on, so the verdict holds until the next
			// store issue bumps sqGen — retries skip the scan.
			e.lsqCleanGen = c.sqGen
		}
	}
	if cover != nil {
		// Store-to-load forwarding inside the LSQ: data comes from the
		// store queue one cycle later; no cache port involved.
		if cover.doneAt > c.cycle {
			return // store data not yet available
		}
		fu.memOps++
		c.start(e, idx, fu, c.cycle+1)
		c.lsqForwards++
		return
	}
	r := c.port.TryLoad(c.cycle, in.Addr, int(in.Size))
	if !r.Accepted {
		c.rec.Record(c.cycle, diag.EventReject, e.seq, in.Addr)
		return // port busy, MSHRs full, or store-buffer conflict: retry
	}
	c.rec.Record(c.cycle, diag.EventGrant, e.seq, in.Addr)
	fu.memOps++
	c.start(e, idx, fu, r.Ready)
}
