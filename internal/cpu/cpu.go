// Package cpu implements the dynamic superscalar processor model: a
// 4-wide out-of-order core in the style of the MIPS R10000 — fetch with
// branch prediction, register renaming over physical register files, a
// reorder buffer, issue queues, a load/store queue with store-to-load
// forwarding, and in-order commit. The data side of the machine talks to
// the cache hierarchy exclusively through internal/core's MemPort, which is
// where the paper's port-efficiency techniques live.
//
// The model is trace-driven with execution timing: the workload generator
// supplies the committed path, and speculation is modelled by running the
// branch predictor at fetch and charging redirect bubbles when it disagrees
// with the trace. Wrong-path instructions are not simulated; their cost
// appears as the fetch stall between a mispredicted branch entering the
// pipeline and its resolution, plus the configured redirect penalty. This
// is the standard trace-driven approximation and preserves the property the
// study needs: the burstiness and density of memory references offered to
// the cache port.
package cpu

import (
	"errors"
	"fmt"
	"math"

	"portsim/internal/bpred"
	"portsim/internal/config"
	"portsim/internal/core"
	"portsim/internal/cpustack"
	"portsim/internal/diag"
	"portsim/internal/isa"
	"portsim/internal/mem"
	"portsim/internal/stats"
	"portsim/internal/trace"
)

// never is a completion time that has not been scheduled yet.
const never = math.MaxUint64

// staleGen marks a robEntry readiness cache invalid: readyGen counts up
// from zero and cannot reach it.
const staleGen = ^uint64(0)

// entryState tracks an instruction's progress through the backend.
type entryState uint8

const (
	stateDispatched entryState = iota
	stateIssued                // execution scheduled; completes at doneAt
	stateDone                  // result available
)

// robEntry is one in-flight instruction.
type robEntry struct {
	inst isa.Inst
	seq  uint64

	state  entryState
	doneAt uint64 // completion cycle (valid once issued)

	// Renaming.
	destPhys, prevPhys int16 // -1 when the instruction has no destination
	src1Phys, src2Phys int16 // -1 when no dependence

	// Memory ordering (loads/stores only).
	addrReadyAt uint64 // cycle the effective address is known
	sqMark      uint64 // loads: store-ring tail at dispatch; older stores live in [sqHead, sqMark)

	// dispatchedAt anchors address-generation timing for operand-free
	// memory operations.
	dispatchedAt uint64

	// readyCache memoises the entry's operand-readiness (operandsReadyAt,
	// or the address operand alone for stores) so the per-cycle issue and
	// skip scans compare one cached word instead of re-reading the ready
	// files. The cache is valid while readyGen matches Core.readyGen: a
	// finite value is final until a memory-order squash bumps the global
	// generation, and a cached never is parked on the blocking register's
	// waiter list, whose pop (at publish, in setDestReady) sets readyGen
	// to staleGen to force the recompute.
	readyCache uint64
	readyGen   uint64

	// waitNext links this entry on a register waiter list while onWaitList
	// (see Core.intWaiter); -1 terminates the list.
	waitNext   int32
	onWaitList bool

	// inLive / inHeap record which issue worklist the entry currently sits
	// in (Core.liveList / Core.wakeHeap) so routing stays idempotent: a
	// dispatched entry lives in at most one of {live list, wake heap,
	// waiter list} plus transiently live+heap after a squash re-route, and
	// the flags keep double insertion impossible.
	inLive bool
	inHeap bool

	// lsqCleanGen caches a load's clean disambiguation verdict: while it
	// equals Core.sqGen, the scan over older in-flight stores is known to
	// find no overlap (and, conservatively, no unresolved address), so a
	// retrying load skips it. Stores leaving the ring cannot dirty a clean
	// verdict; a store issuing can (its now-known address may overlap), and
	// that is exactly what bumps sqGen. Zero (the dispatch state) never
	// matches: sqGen starts at one and counts up.
	lsqCleanGen uint64

	// Control flow.
	mispredicted bool // fetch stalled on this instruction until resolution
	serialize    bool // syscall: fetch resumes only after commit
}

// wakeEntry schedules a dispatched entry's next issue attempt: the ROB
// slice index and the first cycle the entry could pass issue()'s per-entry
// gates (Core.wakeHeap is a min-heap on at).
type wakeEntry struct {
	at  uint64
	idx int32
}

// fetchedInst sits in the fetch buffer between fetch and rename.
type fetchedInst struct {
	inst         isa.Inst
	seq          uint64
	mispredicted bool
	serialize    bool
}

// Options tune a simulation run.
type Options struct {
	// MaxInstructions bounds the committed instruction count; zero means
	// run until the stream ends.
	MaxInstructions uint64
	// DeadlineCycles aborts the run with an error if the cycle count
	// exceeds it — a guard against model deadlocks. Zero disables it.
	DeadlineCycles uint64
	// StallCycles is the forward-progress watchdog: if no instruction
	// commits for this many consecutive cycles the run aborts with an
	// error wrapping ErrStall that names the wedged resource (see
	// Core.StallDiagnosis). Zero disables the watchdog. Unlike
	// DeadlineCycles, which scales with the whole instruction budget, the
	// watchdog bounds a single commit gap, so it catches a wedge within
	// tens of thousands of cycles instead of hundreds of millions.
	StallCycles uint64
	// Recorder, when non-nil, receives cycle-stamped pipeline events
	// (fetch, issue, port grants, store drains, commits, stalls) for
	// failure forensics. A nil recorder costs one nil test per event
	// site. Arming a recorder also disables cycle skipping (see NoSkip):
	// the recorder's contract is one timeline entry per interesting cycle,
	// and stepping every cycle is what keeps its stamps trivially honest.
	Recorder *diag.Recorder
	// NoSkip forces the run to step every cycle instead of fast-forwarding
	// over provably inert stretches (the event-driven clock). Results are
	// byte-identical either way — NoSkip exists as an escape hatch and as
	// the reference timeline the equivalence tests and the CI table diff
	// compare against.
	NoSkip bool
	// CPIStack, when non-nil, arms cycle accounting: every simulated
	// cycle is attributed to exactly one cpustack bucket (see acct.go for
	// the precedence order), and Run verifies the conservation law —
	// bucket sum == cycle count — before returning. The stack is caller-
	// owned so a live observer (the /campaign endpoint) can snapshot it
	// mid-run; Result.CPIStack carries the final frozen stack. Accounting
	// does not disable cycle skipping: the gap classifier reproduces the
	// stepped attribution exactly, so the stack, like every counter, is
	// byte-identical with skip on or off. A nil stack costs one pointer
	// test per stepped cycle and nothing inside step().
	CPIStack *cpustack.Stack
}

// DefaultStallCycles is the watchdog threshold the experiment engine arms.
// The longest legitimate commit gap in this model is a dependent chain of
// DRAM-latency misses plus a full store-buffer drain — well under a
// thousand cycles for every valid configuration — so fifty thousand cycles
// without a commit can only be a wedge.
const DefaultStallCycles = 50_000

// deadlineCyclesPerInst is the deadlock-guard budget: no sane run needs
// 400 cycles per committed instruction.
const deadlineCyclesPerInst = 400

// DeadlineFor returns the deadlock-guard deadline for a committed-
// instruction budget. The multiplication saturates at math.MaxUint64
// instead of wrapping: a wrapped product would turn the guard into a
// near-instant deadline for absurdly large budgets, while a saturated one
// merely never fires (the cycle counter cannot exceed it). Zero stays
// zero, which disables the guard.
func DeadlineFor(insts uint64) uint64 {
	if insts > math.MaxUint64/deadlineCyclesPerInst {
		return math.MaxUint64
	}
	return deadlineCyclesPerInst * insts
}

// Result summarises a completed simulation.
type Result struct {
	Cycles       uint64
	Instructions uint64
	UserInsts    uint64
	KernelInsts  uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64

	// IPC is Instructions/Cycles.
	IPC float64
	// Counters carries every detailed statistic (port.*, cache.*, ...).
	Counters *stats.Set
	// CPIStack is the frozen cycle-attribution stack, nil unless
	// Options.CPIStack armed accounting. Kept out of Counters so every
	// existing table and stored counter row stays byte-identical with
	// accounting on or off.
	CPIStack *cpustack.Snapshot
}

// Core is the simulated processor plus its memory system.
type Core struct {
	cfg  *config.Machine
	sys  *mem.System
	port *core.MemPort
	pred *bpred.Unit

	stream trace.Stream
	cycle  uint64
	seq    uint64

	// Batched stream state. When the stream implements trace.Batcher,
	// fetch pulls instructions through batchBuf in streamChunk-sized
	// refills: one dynamic dispatch per chunk instead of one per
	// instruction. The generators' output is independent of when they are
	// called, so pulling ahead of the pipeline changes nothing the core
	// observes.
	batcher            trace.Batcher
	batchBuf           []isa.Inst
	batchPos, batchLen int

	// Arena fast path. When the stream is a *trace.Cursor, fetch consumes
	// whole fetch groups straight from the arena's packed arrays
	// (fetchArena): line-boundary and redirect checks become mask/flag
	// tests on precomputed metadata and the predictors train once per
	// group. fetchOps is the reusable scratch the group's control
	// instructions are staged in for bpred.Unit.PredictGroup.
	cursor   *trace.Cursor
	fetchOps []bpred.Op

	// Reorder buffer as a ring.
	rob       []robEntry
	robHead   int
	robCount  int
	committed uint64
	maxInsts  uint64

	// Issue/complete fast-path bookkeeping. issList/issCount is the
	// compact (unordered) list of ROB slice indices in stateIssued with a
	// scheduled (finite) completion — complete()'s worklist, so its scan
	// touches only entries that can transition instead of the whole ROB.
	// nextDoneAt is a lower bound on the earliest completion among listed
	// entries; complete skips its scan entirely while it lies in the
	// future, which is the common case during long miss shadows. An
	// address-issued store whose data producer is unscheduled (doneAt ==
	// never) stays off the list — it cannot complete — until the
	// producer's publish finalises its doneAt and files it here
	// (setDestReady), so unknown completions neither force nor pad a
	// walk. Count-managed at full ROB capacity: no appends on the hot
	// path.
	issList    []int32
	issCount   int
	nextDoneAt uint64

	// Two-tier issue worklist. liveList (non-stores) and liveStores
	// (stores, which issue on address availability alone in a second
	// pass) hold the program-ordered ROB slice indices of dispatched
	// entries whose operand readiness has already arrived — the only
	// entries issue()'s scans visit. Entries whose readiness (or address
	// generation / divider turn) arrives at a known future cycle wait in
	// wakeHeap, a binary min-heap keyed on that attempt time; drainWake
	// moves them to the matching live list when the clock reaches it.
	// Entries blocked on an unscheduled producer sit on that register's
	// waiter list (intWaiter/fpWaiter) and rejoin through the publish in
	// setDestReady. Heap times may go stale-early (a squash raises
	// readiness, a divider busies up after the push) — the wake then just
	// re-parks the entry, which is safe because a premature visit of an
	// unready entry was always a no-op in the single-list scheme too. All
	// three structures are count-managed at full ROB capacity: no appends
	// on the hot path.
	liveList       []int32
	liveCount      int
	liveStores     []int32
	liveStoreCount int
	wakeHeap       []wakeEntry

	// Store-queue ring: the program-ordered ROB indices of every store
	// between dispatch and commit. sqHead/sqTail are monotone positions
	// (occupancy sqTail-sqHead == sqCount); the backing array is a power
	// of two so position-to-slot is a mask. issueLoad's disambiguation
	// scan walks [sqHead, load.sqMark) backward — exactly the older
	// in-flight stores — instead of every older ROB entry.
	sqRing         []int32
	sqHead, sqTail uint64

	// sqGen is the store-resolution generation backing robEntry.lsqCleanGen
	// (bumped by issueStore, the only event that can dirty a clean
	// disambiguation verdict). Starts at one so a zeroed cache never hits.
	sqGen uint64

	// Physical register files: readyAt per register, free lists.
	intReady, fpReady []uint64
	intFree, fpFree   []int16
	intMap, fpMap     [32]int16

	// Waiter lists: for each unpublished physical register, the dispatched
	// entries whose readiness cache is parked at never waiting on it,
	// singly linked through robEntry.waitNext (-1 terminates). setDestReady
	// pops the destination's list and invalidates exactly those caches —
	// that is what makes a cached never trustworthy between publishes.
	intWaiter, fpWaiter []int32

	// Issue-queue and load/store-queue occupancy (entries are tracked in
	// the ROB itself; these counters model the finite structures).
	intQCount, fpQCount int
	lqCount, sqCount    int

	// Functional-unit availability.
	intDivFreeAt, fpDivFreeAt uint64

	// readyGen is the operand-readiness generation: bumped whenever a
	// memory-order squash rewrites an already-published ready time, which
	// is the only event that can move one. robEntry.readyCache values
	// stamped with an older generation are recomputed on next read.
	readyGen uint64

	// Fetch state. The fetch buffer is a fixed-capacity ring (fbHead is
	// the oldest entry, fbCount the occupancy) so steady-state fetch and
	// dispatch never allocate.
	fetchBuf        []fetchedInst
	fbHead, fbCount int
	fetchBlockedTil uint64
	stallSeq        uint64 // seq of the unresolved control inst blocking fetch (0 = none)
	stallOnCommit   bool   // the blocking instruction releases fetch at commit (syscall)
	curFetchLine    uint64
	havePending     bool
	pending         isa.Inst
	streamDone      bool
	wrongPathPC     uint64 // next wrong-path fetch address (0 = none)
	wrongPathLines  uint64

	// lastCommitSeq guards the fundamental ROB invariant: commits happen
	// in fetch (= program) order. Violations indicate ring-index bugs and
	// abort immediately.
	lastCommitSeq uint64

	// rec is the optional flight recorder (nil when disabled).
	rec *diag.Recorder

	// acct is the optional cycle-attribution stack (nil when disabled);
	// lastBucket tracks the previous classification so a traced cell
	// records an EventCPI only on transitions. See acct.go.
	acct       *cpustack.Stack
	lastBucket cpustack.Bucket

	// Statistics.
	loads, stores, branches, mispredicts uint64
	memViolations                        uint64
	lsqForwards                          uint64
	userInsts, kernelInsts               uint64
	fetchStallCycles, robFullCycles      uint64
	commitStallSB                        uint64
	classCount                           [isa.NumClasses]uint64
}

// pow2AtLeast rounds n up to the next power of two so a ring position maps
// to its slot with a mask instead of a modulo.
func pow2AtLeast(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New builds a core from a validated machine configuration and an
// instruction stream.
func New(cfg *config.Machine, stream trace.Stream) (*Core, error) {
	if stream == nil {
		return nil, errors.New("cpu: nil instruction stream")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys, err := mem.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	pred, err := bpred.New(cfg.Pred)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:          cfg,
		sys:          sys,
		port:         core.NewMemPort(cfg.Ports, sys),
		pred:         pred,
		stream:       stream,
		rob:          make([]robEntry, cfg.Core.ROBEntries),
		liveList:     make([]int32, cfg.Core.ROBEntries),
		liveStores:   make([]int32, cfg.Core.StoreQueueEntries),
		wakeHeap:     make([]wakeEntry, 0, cfg.Core.ROBEntries),
		issList:      make([]int32, cfg.Core.ROBEntries),
		sqRing:       make([]int32, pow2AtLeast(cfg.Core.StoreQueueEntries)),
		fetchBuf:     make([]fetchedInst, 4*cfg.Core.FetchWidth),
		nextDoneAt:   never,
		curFetchLine: ^uint64(0),
		sqGen:        1,
	}
	if cur, ok := stream.(*trace.Cursor); ok {
		c.cursor = cur
	} else if b, ok := stream.(trace.Batcher); ok {
		c.batcher = b
		c.batchBuf = make([]isa.Inst, streamChunk)
	}
	c.fetchOps = make([]bpred.Op, cfg.Core.FetchWidth)
	c.intReady = make([]uint64, cfg.Core.IntPhysRegs)
	c.fpReady = make([]uint64, cfg.Core.FPPhysRegs)
	c.intWaiter = make([]int32, cfg.Core.IntPhysRegs)
	c.fpWaiter = make([]int32, cfg.Core.FPPhysRegs)
	for i := range c.intWaiter {
		c.intWaiter[i] = -1
	}
	for i := range c.fpWaiter {
		c.fpWaiter[i] = -1
	}
	// Architectural registers 0..31 map to physical 0..31 initially; the
	// rest are free.
	for i := 0; i < 32; i++ {
		c.intMap[i] = int16(i)
		c.fpMap[i] = int16(i)
	}
	for i := 32; i < cfg.Core.IntPhysRegs; i++ {
		c.intFree = append(c.intFree, int16(i))
	}
	for i := 32; i < cfg.Core.FPPhysRegs; i++ {
		c.fpFree = append(c.fpFree, int16(i))
	}
	return c, nil
}

// Reset restores the core — pipeline, renamer, predictors, port subsystem,
// memory hierarchy — to exactly the state New would have produced for the
// same configuration, rewired to a fresh stream. Every backing array is
// reused, so a pooled simulation pays no per-cell allocation for the large
// structures (cache tags, predictor tables, register files). The caller
// must guarantee the machine configuration is unchanged; the equivalence
// with a freshly constructed core is what TestResetMatchesFresh checks.
func (c *Core) Reset(stream trace.Stream) error {
	if stream == nil {
		return errors.New("cpu: nil instruction stream")
	}
	c.sys.Reset()
	c.port.Reset()
	c.pred.Reset()
	c.stream = stream
	c.cycle, c.seq = 0, 0
	c.batcher = nil
	c.cursor = nil
	if cur, ok := stream.(*trace.Cursor); ok {
		c.cursor = cur
	} else if b, ok := stream.(trace.Batcher); ok {
		c.batcher = b
		if c.batchBuf == nil {
			c.batchBuf = make([]isa.Inst, streamChunk)
		}
	}
	c.batchPos, c.batchLen = 0, 0
	clear(c.rob)
	c.robHead, c.robCount = 0, 0
	c.committed, c.maxInsts = 0, 0
	c.issCount = 0
	c.nextDoneAt = never
	c.liveCount = 0
	c.liveStoreCount = 0
	c.wakeHeap = c.wakeHeap[:0]
	c.sqHead, c.sqTail = 0, 0
	c.sqGen = 1
	clear(c.intReady)
	clear(c.fpReady)
	for i := range c.intWaiter {
		c.intWaiter[i] = -1
	}
	for i := range c.fpWaiter {
		c.fpWaiter[i] = -1
	}
	c.intFree = c.intFree[:0]
	c.fpFree = c.fpFree[:0]
	for i := 0; i < 32; i++ {
		c.intMap[i] = int16(i)
		c.fpMap[i] = int16(i)
	}
	for i := 32; i < c.cfg.Core.IntPhysRegs; i++ {
		c.intFree = append(c.intFree, int16(i))
	}
	for i := 32; i < c.cfg.Core.FPPhysRegs; i++ {
		c.fpFree = append(c.fpFree, int16(i))
	}
	c.intQCount, c.fpQCount = 0, 0
	c.lqCount, c.sqCount = 0, 0
	c.intDivFreeAt, c.fpDivFreeAt = 0, 0
	c.readyGen = 0
	clear(c.fetchBuf)
	c.fbHead, c.fbCount = 0, 0
	c.fetchBlockedTil = 0
	c.stallSeq = 0
	c.stallOnCommit = false
	c.curFetchLine = ^uint64(0)
	c.havePending = false
	c.pending = isa.Inst{}
	c.streamDone = false
	c.wrongPathPC, c.wrongPathLines = 0, 0
	c.lastCommitSeq = 0
	c.rec = nil
	c.acct = nil
	c.lastBucket = cpustack.NumBuckets
	c.loads, c.stores, c.branches, c.mispredicts = 0, 0, 0, 0
	c.memViolations, c.lsqForwards = 0, 0
	c.userInsts, c.kernelInsts = 0, 0
	c.fetchStallCycles, c.robFullCycles = 0, 0
	c.commitStallSB = 0
	c.classCount = [isa.NumClasses]uint64{}
	return nil
}

// Port exposes the memory-port subsystem for inspection.
func (c *Core) Port() *core.MemPort { return c.port }

// Mem exposes the memory hierarchy for inspection.
func (c *Core) Mem() *mem.System { return c.sys }

// Cycle returns the current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// ErrDeadline reports that a run exceeded its cycle budget, which indicates
// a model deadlock or a grossly underestimated deadline.
var ErrDeadline = errors.New("cpu: deadline exceeded; possible pipeline deadlock")

// ErrStall reports that the forward-progress watchdog fired: no instruction
// committed for Options.StallCycles consecutive stepped events. The budget
// is spent on step() invocations, not raw cycles, because the event-driven
// clock legitimately jumps thousands of cycles in one step — a DRAM-gap
// skip must not read as a wedge, and a wedge must not hide behind skipped
// cycles. With skipping off the two notions coincide exactly.
var ErrStall = errors.New("cpu: no forward progress")

// Run simulates until the stream ends or opts.MaxInstructions commit, then
// drains the pipeline and the store buffer, and returns the result.
//
// After every stepped cycle, unless skipping is disabled (opts.NoSkip, or a
// recorder is armed), the loop asks nextEventCycle for the next cycle that
// can do work and fast-forwards the clock to it; skipTo applies the batched
// idle-cycle counters so the results are byte-identical to stepping. The
// deadline stays cycle-denominated — a skip target is clamped to
// DeadlineCycles+1 so the guard fires at the same cycle it would have under
// stepping.
func (c *Core) Run(opts Options) (*Result, error) {
	c.maxInsts = opts.MaxInstructions
	c.rec = opts.Recorder
	c.port.SetRecorder(opts.Recorder)
	c.acct = opts.CPIStack
	c.lastBucket = cpustack.NumBuckets // invalid: the first classification always records
	skip := !opts.NoSkip && opts.Recorder == nil
	lastProgress := c.cycle
	lastCommitted := c.committed
	steps := uint64(0) // stepped events since the last commit
	var snap acctSnap
	for {
		if c.drained() {
			break
		}
		if opts.DeadlineCycles > 0 && c.cycle > opts.DeadlineCycles {
			return nil, fmt.Errorf("%w (cycle %d, committed %d): %s",
				ErrDeadline, c.cycle, c.committed, c.StallDiagnosis())
		}
		if opts.StallCycles > 0 && steps > opts.StallCycles {
			return nil, fmt.Errorf("%w (no commit since cycle %d; now cycle %d after %d stepped events, committed %d): %s",
				ErrStall, lastProgress, c.cycle, steps, c.committed, c.StallDiagnosis())
		}
		if c.acct == nil {
			c.step()
		} else {
			c.acctBegin(&snap)
			c.step()
			c.acctStep(&snap)
		}
		steps++
		if c.committed != lastCommitted {
			lastCommitted = c.committed
			lastProgress = c.cycle
			steps = 0
		}
		if skip && !c.drained() {
			target := c.nextEventCycle()
			if opts.DeadlineCycles > 0 && target > opts.DeadlineCycles+1 {
				target = opts.DeadlineCycles + 1
			}
			if target > c.cycle {
				c.skipTo(target)
			}
		}
	}
	// Account the final store-buffer drain. The tail past the last stepped
	// cycle is pure store-buffer back-pressure: the pipeline is drained and
	// only buffered stores keep the clock running.
	if c.port.PendingStores() > 0 {
		last := c.port.DrainAll(c.cycle)
		if last > c.cycle {
			c.acct.Charge(cpustack.StoreBufferFull, last-c.cycle)
			c.cycle = last
		}
	}
	// The conservation law is the whole warrant for trusting a CPI stack;
	// verify it on every armed run, not just under test.
	if c.acct != nil {
		if got := c.acct.Total(); got != c.cycle {
			return nil, fmt.Errorf("cpu: cpi-stack conservation violated: buckets sum to %d over %d cycles", got, c.cycle)
		}
	}
	return c.result(), nil
}

// streamChunk is how many instructions a batched stream refill pulls.
const streamChunk = 128

// StreamChunk is streamChunk for consumers sizing finite replay streams:
// the core may pull up to one refill past the committed-instruction limit,
// so a replayed trace needs this much slack beyond the budget to stay
// indistinguishable from an endless generator.
const StreamChunk = streamChunk

// streamNext delivers the next stream instruction, through the chunk buffer
// when the stream supports batching.
//
//portlint:hotpath
func (c *Core) streamNext(in *isa.Inst) bool {
	if c.batcher == nil {
		return c.stream.Next(in)
	}
	if c.batchPos == c.batchLen {
		c.batchLen = c.batcher.NextBatch(c.batchBuf)
		c.batchPos = 0
		if c.batchLen == 0 {
			return false
		}
	}
	*in = c.batchBuf[c.batchPos]
	c.batchPos++
	return true
}

// fbPush appends one instruction to the fetch-buffer ring. Callers must
// check fbCount < len(fetchBuf) first.
//
//portlint:hotpath
func (c *Core) fbPush(f fetchedInst) {
	*c.fbSlot() = f
}

// fbSlot reserves the next fetch-buffer slot and returns it for in-place
// construction, sparing the arena fast path fbPush's whole-struct copy.
// Callers must check fbCount < len(fetchBuf) first; slots are reused, so
// every field must be (re)written.
//
//portlint:hotpath
func (c *Core) fbSlot() *fetchedInst {
	i := c.fbHead + c.fbCount
	if n := len(c.fetchBuf); i >= n {
		i -= n
	}
	c.fbCount++
	return &c.fetchBuf[i]
}

// fbFront returns the oldest fetched instruction. Callers must check
// fbCount > 0 first.
//
//portlint:hotpath
func (c *Core) fbFront() *fetchedInst { return &c.fetchBuf[c.fbHead] }

// fbPop removes the oldest fetched instruction.
//
//portlint:hotpath
func (c *Core) fbPop() {
	c.fbHead++
	if c.fbHead == len(c.fetchBuf) {
		c.fbHead = 0
	}
	c.fbCount--
}

// drained reports that no work remains anywhere in the machine.
func (c *Core) drained() bool {
	if c.robCount > 0 || c.fbCount > 0 || c.havePending {
		return false
	}
	if c.limitReached() {
		return true
	}
	return c.streamDone
}

// limitReached gates fetch: once maxInsts instructions have been fetched,
// no more enter the pipeline, so exactly maxInsts commit.
func (c *Core) limitReached() bool {
	return c.maxInsts > 0 && c.seq >= c.maxInsts
}

// step advances one cycle. Stage order within a cycle follows the usual
// reverse-pipeline convention so that each stage sees the previous cycle's
// state of the stage in front of it.
//
//portlint:hotpath
func (c *Core) step() {
	c.port.BeginCycle(c.cycle)
	c.commit()
	c.complete()
	c.issue()
	c.dispatch()
	c.fetch()
	c.port.EndCycle(c.cycle)
	c.port.FinishCycle()
	c.cycle++
}

// result assembles the Result from the counters.
func (c *Core) result() *Result {
	s := stats.NewSet()
	s.Add(stats.Cycles, c.cycle)
	s.Add(stats.Instructions, c.committed)
	s.Add(stats.InstsUser, c.userInsts)
	s.Add(stats.InstsKernel, c.kernelInsts)
	s.Add(stats.Loads, c.loads)
	s.Add(stats.Stores, c.stores)
	s.Add(stats.Branches, c.branches)
	s.Add(stats.Mispredicts, c.mispredicts)
	s.Add(stats.StallFetchCycles, c.fetchStallCycles)
	s.Add(stats.StallROBFullCycles, c.robFullCycles)
	s.Add(stats.StallCommitStoreBuffer, c.commitStallSB)
	s.Add(stats.LSQForwards, c.lsqForwards)
	s.Add(stats.LSQViolations, c.memViolations)
	for cls := 0; cls < isa.NumClasses; cls++ {
		if c.classCount[cls] > 0 {
			s.Add(stats.ClassCounter(isa.Class(cls).String()), c.classCount[cls])
		}
	}
	s.Add(stats.L1DHits, c.sys.L1D.Hits())
	s.Add(stats.L1DMisses, c.sys.L1D.Misses())
	s.Add(stats.L1DWritebacks, c.sys.L1D.Writebacks())
	s.Add(stats.FetchWrongPathLines, c.wrongPathLines)
	s.Add(stats.L1IHits, c.sys.L1I.Hits())
	s.Add(stats.L1IMisses, c.sys.L1I.Misses())
	s.Add(stats.L2Hits, c.sys.L2.Hits())
	s.Add(stats.L2Misses, c.sys.L2.Misses())
	s.Add(stats.DRAMAccesses, c.sys.DRAMAccesses())
	s.Add(stats.ITLBHits, c.sys.ITLB.Hits())
	s.Add(stats.ITLBMisses, c.sys.ITLB.Misses())
	s.Add(stats.DTLBHits, c.sys.DTLB.Hits())
	s.Add(stats.DTLBMisses, c.sys.DTLB.Misses())
	c.port.Report(s)
	ipc := 0.0
	if c.cycle > 0 {
		ipc = float64(c.committed) / float64(c.cycle)
	}
	return &Result{
		Cycles:       c.cycle,
		Instructions: c.committed,
		UserInsts:    c.userInsts,
		KernelInsts:  c.kernelInsts,
		Loads:        c.loads,
		Stores:       c.stores,
		Branches:     c.branches,
		Mispredicts:  c.mispredicts,
		IPC:          ipc,
		Counters:     s,
		CPIStack:     c.acct.Snapshot(),
	}
}

// robIndex converts a ring offset from head into a slice index. The offset
// is always below robCount <= len(rob), so a single conditional subtract
// replaces the much costlier modulo on this per-cycle-per-entry path.
//
//portlint:hotpath
func (c *Core) robIndex(off int) int {
	i := c.robHead + off
	if n := len(c.rob); i >= n {
		i -= n
	}
	return i
}

// commit retires up to CommitWidth completed instructions in program order.
//
//portlint:hotpath
func (c *Core) commit() {
	width := c.cfg.Core.CommitWidth
	for n := 0; n < width && c.robCount > 0; n++ {
		e := &c.rob[c.robHead]
		if e.state != stateDone || e.doneAt > c.cycle {
			return
		}
		if e.inst.Class == isa.Store {
			if !c.port.TryCommitStore(c.cycle, e.inst.Addr, int(e.inst.Size)) {
				c.commitStallSB++
				if c.rec != nil {
					c.rec.Record(c.cycle, diag.EventStall, e.seq, e.inst.Addr)
				}
				return
			}
		}
		c.retire(e)
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCount--
	}
}

// retire finalises one instruction: trains the predictor in program order,
// releases the previous physical mapping, releases fetch stalls owned by
// serialising instructions, and updates counters.
//
//portlint:hotpath
func (c *Core) retire(e *robEntry) {
	if e.seq <= c.lastCommitSeq {
		panic(fmt.Sprintf("cpu: commit out of order: seq %d after %d", e.seq, c.lastCommitSeq))
	}
	c.lastCommitSeq = e.seq
	if c.rec != nil {
		c.rec.Record(c.cycle, diag.EventCommit, e.seq, e.inst.PC)
	}
	in := &e.inst
	if e.prevPhys >= 0 {
		if in.Dest.IsFP() {
			c.fpFree = append(c.fpFree, e.prevPhys) //portlint:ignore hotpath free-list capacity is FPPhysRegs, fixed at construction; the renamer's conservation law keeps len <= cap
		} else {
			c.intFree = append(c.intFree, e.prevPhys) //portlint:ignore hotpath free-list capacity is IntPhysRegs, fixed at construction; the renamer's conservation law keeps len <= cap
		}
	}
	if e.mispredicted {
		c.mispredicts++
	}
	switch in.Class {
	case isa.Load:
		c.lqCount--
	case isa.Store:
		c.sqCount--
		c.sqHead++ // in-order commit: the head store is the ring's oldest
	}
	if e.serialize && c.stallSeq == e.seq {
		// Syscall: fetch resumes after the drain plus the redirect
		// bubble.
		c.stallSeq = 0
		c.fetchBlockedTil = c.cycle + uint64(c.cfg.Core.MispredictPenalty)
	}
	c.committed++
	c.classCount[in.Class]++
	if in.Kernel {
		c.kernelInsts++
	} else {
		c.userInsts++
	}
	switch in.Class {
	case isa.Load:
		c.loads++
	case isa.Store:
		c.stores++
	case isa.Branch:
		c.branches++
	}
}

// complete promotes issued entries whose completion time has arrived.
//
// The scan is skipped outright when the bookkeeping proves no entry can
// transition this cycle: nothing is issued, or every issued entry's
// completion lies later than now (nextDoneAt; an address-issued store
// whose completion is still unknown carries doneAt == never and is
// finalised by its data producer's publish, not here). When the scan does
// run, it walks only issList — the entries actually in stateIssued — and
// every transition it performs is independent of the others (ready times
// are published at issue, not completion), so the list's unordered visit
// is equivalent to the ROB-ordered walk it replaces.
//
//portlint:hotpath
func (c *Core) complete() {
	if c.issCount == 0 || c.nextDoneAt > c.cycle {
		return
	}
	next := uint64(never)
	w := 0
	for k := 0; k < c.issCount; k++ {
		idx := c.issList[k]
		e := &c.rob[idx]
		if e.doneAt <= c.cycle {
			e.state = stateDone
			if e.mispredicted && c.stallSeq == e.seq && !e.serialize {
				// Misprediction resolved: redirect fetch.
				c.stallSeq = 0
				c.fetchBlockedTil = e.doneAt + uint64(c.cfg.Core.MispredictPenalty)
			}
			continue // promoted: leaves the worklist
		}
		if e.doneAt < next {
			next = e.doneAt
		}
		c.issList[w] = idx
		w++
	}
	c.issCount = w
	c.nextDoneAt = next
}

// noteIssued records that the entry at ROB slice index idx entered
// stateIssued with completion time doneAt (possibly never, for an
// address-issued store awaiting its data producer), keeping complete's
// worklist and skip bookkeeping exact.
//
//portlint:hotpath
func (c *Core) noteIssued(idx int32, doneAt uint64) {
	if doneAt == never {
		// Address-issued store awaiting its data producer: it cannot
		// complete until the publish finalises doneAt, and setDestReady
		// files it on the worklist at that moment. Listing it now would
		// only pad every complete() walk in between.
		return
	}
	c.issList[c.issCount] = idx
	c.issCount++
	if doneAt < c.nextDoneAt {
		c.nextDoneAt = doneAt
	}
}
