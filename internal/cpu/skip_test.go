package cpu

import (
	"errors"
	"testing"

	"portsim/internal/config"
	"portsim/internal/isa"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

// runMode simulates one workload/preset cell with skipping on or off and
// returns the result plus the core (for cycle inspection on error paths).
func runMode(t *testing.T, m config.Machine, name string, opts Options) (*Result, *Core, error) {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	g, err := workload.New(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(&m, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(opts)
	return res, c, err
}

// TestSkipEquivalence pins the tentpole contract: event-driven cycle
// skipping is an accounting identity, not an approximation. For a spread of
// workload/preset cells the full Result — cycle count, instruction mix and
// every detailed counter — must match a cycle-stepped run bit for bit.
func TestSkipEquivalence(t *testing.T) {
	cells := []struct{ workload, preset string }{
		{"compress", "baseline"},
		{"eqntott", "quad-port"},
		{"mp3d", "banked-4"},
	}
	for _, cell := range cells {
		t.Run(cell.workload+"/"+cell.preset, func(t *testing.T) {
			m := config.Presets[cell.preset]()
			opts := Options{MaxInstructions: 100_000, DeadlineCycles: 50_000_000}
			skipped, _, err := runMode(t, m, cell.workload, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.NoSkip = true
			stepped, _, err := runMode(t, m, cell.workload, opts)
			if err != nil {
				t.Fatal(err)
			}
			if skipped.Cycles != stepped.Cycles {
				t.Errorf("cycles diverge: skip=%d step=%d", skipped.Cycles, stepped.Cycles)
			}
			if skipped.Instructions != stepped.Instructions ||
				skipped.UserInsts != stepped.UserInsts ||
				skipped.KernelInsts != stepped.KernelInsts ||
				skipped.Loads != stepped.Loads ||
				skipped.Stores != stepped.Stores ||
				skipped.Branches != stepped.Branches ||
				skipped.Mispredicts != stepped.Mispredicts {
				t.Errorf("instruction mix diverges:\nskip: %+v\nstep: %+v", skipped, stepped)
			}
			if skipped.IPC != stepped.IPC {
				t.Errorf("IPC diverges: skip=%v step=%v", skipped.IPC, stepped.IPC)
			}
			if a, b := skipped.Counters.String(), stepped.Counters.String(); a != b {
				t.Errorf("counters diverge:\nskip: %s\nstep: %s", a, b)
			}
		})
	}
}

// coldLoadChain builds a serial chain of loads: each load's address operand
// is the previous load's destination, and every address lands on a fresh
// page 8KB further on, so each commit waits out a DTLB walk plus a full
// memory-hierarchy miss (~60+ cycles) with nothing else to do.
func coldLoadChain(n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{
			PC:    uint64(0x1000 + (i%8)*4),
			Class: isa.Load,
			Dest:  1,
			Src1:  1,
			Addr:  0x4000_0000 + uint64(i)*0x2000,
			Size:  8,
		}
	}
	return insts
}

// TestWatchdogCountsSteppedEvents pins the watchdog re-specification that
// cycle skipping forced: Options.StallCycles counts stepped events without
// a commit, not raw cycles. A serial cold-load chain opens >50-cycle commit
// gaps; with a 40-event budget the cycle-stepped run must trip ErrStall
// mid-gap (the pre-skip behaviour, preserved because stepping every cycle
// makes events and cycles coincide), while the skipping run crosses each
// gap in a handful of events and completes.
func TestWatchdogCountsSteppedEvents(t *testing.T) {
	m := config.Baseline()
	insts := coldLoadChain(30)
	opts := Options{StallCycles: 40, DeadlineCycles: 1_000_000, NoSkip: true}

	c, err := New(&m, trace.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(opts); !errors.Is(err, ErrStall) {
		t.Errorf("cycle-stepped run: err = %v, want ErrStall (each cold load stalls commit for >40 cycles)", err)
	}

	opts.NoSkip = false
	c, err = New(&m, trace.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(opts)
	if err != nil {
		t.Errorf("skipping run: err = %v, want success (a skipped gap is one stepped event)", err)
	} else if res.Instructions != uint64(len(insts)) {
		t.Errorf("skipping run committed %d insts, want %d", res.Instructions, len(insts))
	}

	// With a budget that covers the gaps, both modes complete with
	// identical timing — the watchdog never perturbs a healthy run.
	opts.StallCycles = DefaultStallCycles
	var cycles [2]uint64
	for i, noSkip := range []bool{false, true} {
		opts.NoSkip = noSkip
		c, err := New(&m, trace.NewSliceStream(insts))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(opts)
		if err != nil {
			t.Fatalf("noSkip=%v: %v", noSkip, err)
		}
		cycles[i] = res.Cycles
	}
	if cycles[0] != cycles[1] {
		t.Errorf("healthy watchdog run diverges: skip=%d step=%d cycles", cycles[0], cycles[1])
	}
}

// TestDeadlineIdenticalUnderSkip pins the deadline clamp: fast-forwarding
// never jumps past DeadlineCycles+1, so a run that exceeds its budget dies
// at exactly the same cycle whether or not it skipped to get there.
func TestDeadlineIdenticalUnderSkip(t *testing.T) {
	m := config.Baseline()
	opts := Options{DeadlineCycles: 5_000}
	_, cSkip, err := runMode(t, m, "compress", opts)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("skip run: err = %v, want ErrDeadline", err)
	}
	opts.NoSkip = true
	_, cStep, err := runMode(t, m, "compress", opts)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("stepped run: err = %v, want ErrDeadline", err)
	}
	if cSkip.Cycle() != cStep.Cycle() {
		t.Errorf("deadline fires at different cycles: skip=%d step=%d", cSkip.Cycle(), cStep.Cycle())
	}
}
