package cpu

import (
	"portsim/internal/cpustack"
	"portsim/internal/diag"
	"portsim/internal/isa"
)

// This file is the cycle-accounting layer: when Options.CPIStack arms a
// stack, every simulated cycle is attributed to exactly one cpustack
// bucket, and the bucket sum equals the cycle count exactly — with cycle
// skipping on or off, serial or parallel. The discipline mirrors
// internal/diag: a nil stack costs the run one pointer test per stepped
// cycle and nothing in step() itself, and an armed stack charges through
// preallocated atomic counters, so the AllocsPerRun proofs hold either
// way.
//
// Attribution precedence for a stepped cycle (first match wins; DESIGN.md
// "CPI stacks" records the rationale):
//
//  1. an instruction committed                     → useful
//  2. the head store was refused by the buffer     → store-buffer-full
//  3. a ready load was refused for MSHR pressure   → mem.mshr-full
//  4. a ready load was refused structurally        → issue.port-reject
//  5. head issued, memory op, DRAM channel busy    → mem.dram-bandwidth
//  6. head issued, memory op, channel idle         → mem.fill-wait
//  7. head issued or queued on the muldiv unit     → issue.divider
//  8. head issued, short-latency op in flight      → commit-stall
//  9. head dispatched, operands not ready          → issue.operand-wait
// 10. reorder buffer empty                         → fetch-starved
//
// A skipped gap applies the same rules to its (constant) machine state;
// the only conditions that can flip mid-gap — the DRAM channel freeing,
// the muldiv unit freeing — are split at the exact boundary cycle, so the
// per-bucket totals are identical to stepping the gap. skipped-inert is
// reserved for a gap the classifier cannot attribute; conservation holds
// regardless, and the bucket makes the attribution hole visible instead
// of hiding it under a named cause.

// acctSnap is the pre-step counter snapshot classifyStepped diffs against.
type acctSnap struct {
	committed     uint64
	commitStallSB uint64
	rejMSHR       uint64
	rejStruct     uint64
}

// acctBegin snapshots the commit and rejection counters before a stepped
// cycle. Only called when accounting is armed.
//
//portlint:hotpath
func (c *Core) acctBegin(s *acctSnap) {
	s.committed = c.committed
	s.commitStallSB = c.commitStallSB
	s.rejMSHR, s.rejStruct = c.port.RejectBreakdown()
}

// acctStep classifies the cycle just stepped (the one that ended at
// c.cycle-1) against the pre-step snapshot and charges one cycle. When a
// recorder is armed it also emits an EventCPI on every bucket transition,
// which is what BuildTrace turns into Perfetto counter tracks.
//
//portlint:hotpath
func (c *Core) acctStep(s *acctSnap) {
	b := c.classifyStepped(s)
	c.acct.Charge(b, 1)
	if c.rec != nil && b != c.lastBucket {
		c.lastBucket = b
		c.rec.Record(c.cycle-1, diag.EventCPI, uint64(b), 0)
	}
}

// classifyStepped applies the stepped-cycle precedence order.
//
//portlint:hotpath
func (c *Core) classifyStepped(s *acctSnap) cpustack.Bucket {
	if c.committed != s.committed {
		return cpustack.Useful
	}
	if c.commitStallSB != s.commitStallSB {
		return cpustack.StoreBufferFull
	}
	mshr, structural := c.port.RejectBreakdown()
	if mshr != s.rejMSHR {
		return cpustack.MemMSHRFull
	}
	if structural != s.rejStruct {
		return cpustack.IssuePortReject
	}
	return c.classifyHead(c.cycle - 1)
}

// classifyHead attributes a commit-free cycle by the state of the oldest
// in-flight instruction at cycle t — the instruction the whole machine is
// ultimately waiting on.
//
//portlint:hotpath
func (c *Core) classifyHead(t uint64) cpustack.Bucket {
	if c.robCount == 0 {
		return cpustack.FetchStarved
	}
	h := &c.rob[c.robHead]
	switch h.state {
	case stateIssued:
		switch h.inst.Class {
		case isa.Load, isa.Store:
			if c.sys.DRAMBusy(t) {
				return cpustack.MemDRAMBandwidth
			}
			return cpustack.MemFillWait
		case isa.IntMul, isa.IntDiv, isa.FPMul, isa.FPDiv:
			return cpustack.IssueDivider
		default:
			return cpustack.CommitStall
		}
	case stateDone:
		// commit() ran before complete() promoted the head, so the retire
		// happens next cycle: completion-to-commit latency. (A done store
		// refused by the buffer was already attributed via the
		// commit-stall counter delta.)
		return cpustack.CommitStall
	default: // stateDispatched
		if c.muldivQueued(h, t) {
			return cpustack.IssueDivider
		}
		return cpustack.IssueOperandWait
	}
}

// muldivQueued reports whether a dispatched head needs the unpipelined
// multiply/divide unit while it is busy at cycle t — queued behind the
// divider rather than waiting on operands.
//
//portlint:hotpath
func (c *Core) muldivQueued(h *robEntry, t uint64) bool {
	switch h.inst.Class {
	case isa.IntMul, isa.IntDiv:
		return t < c.intDivFreeAt
	case isa.FPMul, isa.FPDiv:
		return t < c.fpDivFreeAt
	}
	return false
}

// acctGap attributes a skipped gap of n cycles ending at target
// (exclusive). Every cycle in the gap is inert — no commit, no port
// offer, no state transition — so the stepped classifier's outcome is
// constant across it except for the two clock-crossing conditions (DRAM
// channel freeing, muldiv unit freeing), which are split at their exact
// boundary. Called from skipTo before the clock advances, so c.cycle is
// still the gap's first cycle.
//
//portlint:hotpath
func (c *Core) acctGap(n uint64, target uint64) {
	if c.robCount == 0 {
		c.acct.Charge(cpustack.FetchStarved, n)
		return
	}
	h := &c.rob[c.robHead]
	switch h.state {
	case stateDone:
		if h.inst.Class == isa.Store && h.doneAt <= c.cycle {
			// nextEventCycle only lets a done head into a gap when the
			// store buffer refuses its commit.
			c.acct.Charge(cpustack.StoreBufferFull, n)
		} else {
			c.acct.Charge(cpustack.SkippedInert, n)
		}
	case stateIssued:
		switch h.inst.Class {
		case isa.Load, isa.Store:
			// The channel can free mid-gap (no accesses start inside a
			// gap, so busyUntil is constant): split bandwidth vs fill
			// wait exactly where stepping would.
			c.chargeSplit(c.sys.DRAMBusyUntil(), target, n,
				cpustack.MemDRAMBandwidth, cpustack.MemFillWait)
		case isa.IntMul, isa.IntDiv, isa.FPMul, isa.FPDiv:
			c.acct.Charge(cpustack.IssueDivider, n)
		default:
			c.acct.Charge(cpustack.CommitStall, n)
		}
	default: // stateDispatched
		switch h.inst.Class {
		case isa.IntMul, isa.IntDiv:
			c.chargeSplit(c.intDivFreeAt, target, n,
				cpustack.IssueDivider, cpustack.IssueOperandWait)
		case isa.FPMul, isa.FPDiv:
			c.chargeSplit(c.fpDivFreeAt, target, n,
				cpustack.IssueDivider, cpustack.IssueOperandWait)
		default:
			c.acct.Charge(cpustack.IssueOperandWait, n)
		}
	}
}

// chargeSplit charges the gap [c.cycle, target) across a boundary: cycles
// before boundary go to the before bucket, the rest to after. The stepped
// classifier tests "t < boundary", so the split reproduces it exactly.
//
//portlint:hotpath
func (c *Core) chargeSplit(boundary, target, n uint64, before, after cpustack.Bucket) {
	switch {
	case boundary <= c.cycle:
		c.acct.Charge(after, n)
	case boundary >= target:
		c.acct.Charge(before, n)
	default:
		c.acct.Charge(before, boundary-c.cycle)
		c.acct.Charge(after, target-boundary)
	}
}
