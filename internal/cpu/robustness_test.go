package cpu

import (
	"errors"
	"strings"
	"testing"

	"portsim/internal/config"
	"portsim/internal/diag"
	"portsim/internal/isa"
	"portsim/internal/trace"
)

// TestNewRejectsNilStream pins the constructor hardening: a nil stream is a
// caller bug reported as an error, not a panic 40k cycles later.
func TestNewRejectsNilStream(t *testing.T) {
	m := config.Baseline()
	c, err := New(&m, nil)
	if err == nil || !strings.Contains(err.Error(), "nil instruction stream") {
		t.Fatalf("New(nil stream) = %v, %v; want nil-stream error", c, err)
	}
}

// TestRetirePanicsOnOutOfOrderCommit covers the ROB's in-order invariant
// guard: retiring a sequence number at or below the last commit must abort.
func TestRetirePanicsOnOutOfOrderCommit(t *testing.T) {
	m := config.Baseline()
	c, err := New(&m, trace.NewSliceStream(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		p := recover() //portlint:ignore recoverhygiene test asserts the panic fires
		if p == nil {
			t.Fatal("out-of-order retire did not panic")
		}
		if msg, ok := p.(string); !ok || !strings.Contains(msg, "commit out of order") {
			t.Errorf("panic %v, want the commit-order message", p)
		}
	}()
	// lastCommitSeq starts at 0 and seq 0 is never a legal commit, so this
	// is the smallest out-of-order retire.
	c.retire(&robEntry{seq: 0})
}

// wedgedStoreProgram is a store burst against a machine whose store buffer
// never drains: commit must wedge once the buffer fills.
func wedgedStoreProgram() (config.Machine, []isa.Inst) {
	m := config.Baseline()
	m.Ports.FaultStuckDrain = true
	var insts []isa.Inst
	for i := 0; i < 64; i++ {
		insts = append(insts, isa.Inst{
			PC:    uint64(0x1000 + (i%8)*4),
			Class: isa.Store,
			Src1:  isa.Reg(1 + i%20),
			Addr:  uint64(0x2000 + i*64),
			Size:  8,
		})
	}
	return m, insts
}

// TestWatchdogDiagnosesWedgedStoreBuffer drives the forward-progress
// watchdog end to end: a store buffer that never drains trips ErrStall and
// the diagnosis names the store buffer, not a bare timeout.
func TestWatchdogDiagnosesWedgedStoreBuffer(t *testing.T) {
	m, insts := wedgedStoreProgram()
	c, err := New(&m, trace.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	rec := diag.NewRecorder(0)
	_, err = c.Run(Options{StallCycles: 2_000, Recorder: rec})
	if !errors.Is(err, ErrStall) {
		t.Fatalf("err = %v, want ErrStall", err)
	}
	if !strings.Contains(err.Error(), "store buffer full") {
		t.Errorf("diagnosis %q does not name the wedged store buffer", err)
	}
	if !strings.Contains(err.Error(), "no commit since cycle") {
		t.Errorf("diagnosis %q does not report the progress horizon", err)
	}
	// The recorder saw the commit-stall events leading up to the abort.
	var stalls int
	for _, e := range rec.Events() {
		if e.Kind == diag.EventStall {
			stalls++
		}
	}
	if stalls == 0 {
		t.Errorf("flight recorder captured no commit-stall events; total=%d", rec.Total())
	}
}

// TestDeadlineDiagnosesWedgedStoreBuffer checks the deadline guard carries
// the same diagnosis when it fires first.
func TestDeadlineDiagnosesWedgedStoreBuffer(t *testing.T) {
	m, insts := wedgedStoreProgram()
	c, err := New(&m, trace.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(Options{DeadlineCycles: 1_000})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !strings.Contains(err.Error(), "store buffer full") {
		t.Errorf("deadline diagnosis %q does not name the wedged store buffer", err)
	}
}

// TestWatchdogQuietOnHealthyRun checks the watchdog never fires on a clean
// workload at the default threshold.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	m := config.Baseline()
	insts := prog([]isa.Class{isa.Load, isa.IntALU, isa.Store, isa.IntALU}, []uint64{0x2000, 0x2008})
	c, err := New(&m, trace.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(Options{StallCycles: DefaultStallCycles, DeadlineCycles: 1_000_000}); err != nil {
		t.Fatalf("healthy run tripped a guard: %v", err)
	}
}

// TestStallDiagnosisOnDrainedCore checks the healthy-core rendering.
func TestStallDiagnosisOnDrainedCore(t *testing.T) {
	m := config.Baseline()
	c, err := New(&m, trace.NewSliceStream(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if d := c.StallDiagnosis(); !strings.Contains(d, "instruction stream ended") {
		t.Errorf("drained-core diagnosis = %q", d)
	}
}

// TestFlightRecorderCapturesPipelineEvents runs a short program with the
// recorder armed and checks the event mix covers fetch through commit.
func TestFlightRecorderCapturesPipelineEvents(t *testing.T) {
	m := config.Baseline()
	insts := prog([]isa.Class{isa.Load, isa.IntALU, isa.Store, isa.IntALU}, []uint64{0x2000, 0x2008})
	c, err := New(&m, trace.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	rec := diag.NewRecorder(0)
	if _, err := c.Run(Options{Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	kinds := map[diag.EventKind]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	for _, want := range []diag.EventKind{diag.EventFetch, diag.EventIssue, diag.EventCommit} {
		if kinds[want] == 0 {
			t.Errorf("no %s events recorded; kinds = %v", want, kinds)
		}
	}
	if kinds[diag.EventCommit] != len(insts) {
		t.Errorf("%d commit events for %d instructions", kinds[diag.EventCommit], len(insts))
	}
}

// TestRunWithoutRecorderMatchesRecordedRun is the zero-overhead-when-disabled
// guarantee in its observable form: the recorder must not perturb timing.
func TestRunWithoutRecorderMatchesRecordedRun(t *testing.T) {
	m := config.Baseline()
	insts := prog([]isa.Class{isa.Load, isa.Store, isa.IntALU, isa.Load}, []uint64{0x2000, 0x2008, 0x2010})
	runWith := func(rec *diag.Recorder) *Result {
		t.Helper()
		c, err := New(&m, trace.NewSliceStream(insts))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(Options{Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, recorded := runWith(nil), runWith(diag.NewRecorder(0))
	if plain.Cycles != recorded.Cycles || plain.Instructions != recorded.Instructions {
		t.Errorf("recorder perturbed the simulation: %d cycles/%d insts vs %d/%d",
			plain.Cycles, plain.Instructions, recorded.Cycles, recorded.Instructions)
	}
}
