package cpu

import (
	"portsim/internal/core"
	"portsim/internal/isa"
	"portsim/internal/mem"
)

// The hierarchy implements the next-event contract structurally (mem cannot
// import core); pin it here, where both packages are visible.
var _ core.NextEventer = (*mem.System)(nil)

// nextEventCycle returns the earliest cycle at or after c.cycle at which the
// machine can do observable work. Returning c.cycle means "this cycle may be
// active; do not skip". The one-sided NextEventer invariant applies: an
// early answer costs a wasted wake-up, a late answer corrupts the
// simulation, so every test below errs toward "active".
//
// A cycle is inert exactly when every stage of step() would reduce to its
// idle-cycle form: fetch stalled (or out of work), dispatch blocked, no
// issued entry completing, no dispatched entry able to start, the commit
// head not retiring, and the port subsystem quiet. The per-cycle counters
// those idle forms still bump (fetch-stall, ROB-full, commit-stall, port
// cycle/grant/occupancy) are batched by skipTo, which is what keeps the
// statistics byte-identical to stepped execution.
//
//portlint:hotpath
func (c *Core) nextEventCycle() uint64 {
	now := c.cycle
	// Fetch. A stalled front end doing wrong-path pollution touches the
	// I-cache every cycle; an unstalled one with buffer space and stream
	// work fetches this cycle. Otherwise the only fetch event is the
	// blocked-until cycle itself.
	if c.stallSeq != 0 {
		if !c.stallOnCommit && c.cfg.Core.WrongPathFetch && c.wrongPathPC != 0 {
			return now
		}
	} else if now >= c.fetchBlockedTil {
		if c.fbCount < len(c.fetchBuf) && !c.limitReached() && (c.havePending || !c.streamDone) {
			return now
		}
	}
	next := uint64(never)
	if c.stallSeq == 0 && c.fetchBlockedTil > now {
		next = c.fetchBlockedTil
	}
	// Dispatch: the front fetch-buffer entry clearing its gates makes the
	// cycle active. (A full ROB is not an event by itself — the head's
	// completion below bounds that wait.)
	if c.fbCount > 0 && c.robCount < len(c.rob) && c.dispatchGatesOK(&c.fbFront().inst) {
		return now
	}
	// Commit: a done head retires this cycle unless it is a store the
	// buffer refuses — that wait ends with a port event (a drain
	// completing frees the slot), not a commit event.
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		if h.state == stateDone && h.doneAt <= now {
			if h.inst.Class != isa.Store || c.port.StoreBuffer().CanAccept(h.inst.Addr, int(h.inst.Size)) {
				return now
			}
		}
	}
	// Completions: nextDoneAt is the exact minimum completion time among
	// issued entries (noteIssued and complete() maintain it). Address-
	// issued stores whose completion is still unscheduled (doneAt ==
	// never) need no candidate of their own: such a store's data producer
	// is either still dispatched — its attemptAt below is the wake-up — or
	// already issued, in which case the producer's own doneAt sits in
	// nextDoneAt and the store is finalised by the complete() walk that
	// runs at that wake-up (neverStores > 0 forces the walk), strictly
	// before the store's eventual completion time. Either way the machine
	// wakes no later than anything the store could do.
	if c.issCount > 0 && c.nextDoneAt != never {
		if c.nextDoneAt <= now {
			return now
		}
		if c.nextDoneAt < next {
			next = c.nextDoneAt
		}
	}
	// Dispatched entries first attempt issue at attemptAt. A `never` means
	// the entry waits on a producer that carries its own event.
	for k := 0; k < c.dispCount; k++ {
		t := c.attemptAt(&c.rob[c.dispList[k]])
		if t == never {
			continue
		}
		if t <= now {
			return now
		}
		if t < next {
			next = t
		}
	}
	if t := c.port.NextEvent(now); t <= now {
		return now
	} else if t < next {
		next = t
	}
	if t := c.sys.NextEvent(now); t <= now {
		return now
	} else if t < next {
		next = t
	}
	if next == never {
		// Nothing scheduled anywhere. With work still in flight that is a
		// wedge, not an idle machine: refuse to skip so ordinary stepping
		// reaches the watchdog with an honest cycle count.
		return now
	}
	return next
}

// attemptAt is the first cycle a dispatched entry could pass issue()'s
// per-entry gates: operand readiness, address generation for memory ops, and
// the unpipelined dividers. Per-cycle contention (issue width, ALU counts,
// memory issue slots) is ignored — contention only arises on cycles where
// something else issues, which are active cycles anyway. Returns never when
// the entry waits on an unscheduled producer.
//
//portlint:hotpath
func (c *Core) attemptAt(e *robEntry) uint64 {
	in := &e.inst
	switch in.Class {
	case isa.Load:
		ops := c.operandsReadyAt(e)
		if ops == never {
			return never
		}
		return agenDoneAt(e, ops, c.cfg.Lat.AGen)
	case isa.Store:
		// Stores issue on the address operand alone.
		addr := c.srcReadyAt(in.Src1, e.src1Phys)
		if addr == never {
			return never
		}
		return agenDoneAt(e, addr, c.cfg.Lat.AGen)
	case isa.IntMul, isa.IntDiv:
		ops := c.operandsReadyAt(e)
		if ops == never {
			return never
		}
		if c.intDivFreeAt > ops {
			ops = c.intDivFreeAt
		}
		return ops
	case isa.FPMul, isa.FPDiv:
		ops := c.operandsReadyAt(e)
		if ops == never {
			return never
		}
		if c.fpDivFreeAt > ops {
			ops = c.fpDivFreeAt
		}
		return ops
	default:
		return c.operandsReadyAt(e)
	}
}

// skipTo fast-forwards the clock from c.cycle to target, applying the
// batched equivalent of the inert cycles in between: the same per-cycle
// counters ordinary stepping would have bumped, with no other state change.
// The caller guarantees every cycle in [c.cycle, target) is inert
// (nextEventCycle returned target), which makes each batched condition
// constant across the gap:
//
//   - fetch-stall: a stall owner only releases at a completion event, and a
//     blocked-until fetch wakes exactly at fetchBlockedTil — both end gaps;
//   - ROB-full: no commit frees a slot and no dispatch fills the buffer
//     further during a gap;
//   - commit-stall: the head store stays refused until a drain completes,
//     which is a port event.
//
//portlint:hotpath
func (c *Core) skipTo(target uint64) {
	n := target - c.cycle //portlint:ignore cyclemath caller established target > c.cycle
	if c.stallSeq != 0 || c.cycle < c.fetchBlockedTil {
		c.fetchStallCycles += n
	}
	if c.fbCount > 0 && c.robCount == len(c.rob) {
		c.robFullCycles += n
	}
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		if h.state == stateDone && h.doneAt <= c.cycle && h.inst.Class == isa.Store {
			// nextEventCycle only lets a done head through when its
			// commit is refused by the store buffer.
			c.commitStallSB += n
		}
	}
	c.port.SkipCycles(n)
	c.cycle = target
}

// dispatchGatesOK reports whether an instruction at the front of the fetch
// buffer clears dispatch's resource gates this cycle: issue-queue or
// load/store-queue occupancy and destination-register availability. Shared
// by dispatch() and the skip gate so the two can never disagree.
//
//portlint:hotpath
func (c *Core) dispatchGatesOK(in *isa.Inst) bool {
	switch {
	case in.Class == isa.Load:
		if c.lqCount >= c.cfg.Core.LoadQueueEntries {
			return false
		}
	case in.Class == isa.Store:
		if c.sqCount >= c.cfg.Core.StoreQueueEntries {
			return false
		}
	case in.Class.IsFPOp():
		if c.fpQCount >= c.cfg.Core.FPIQEntries {
			return false
		}
	default:
		if c.intQCount >= c.cfg.Core.IntIQEntries {
			return false
		}
	}
	if in.Dest != isa.RegZero {
		if in.Dest.IsFP() {
			if len(c.fpFree) == 0 {
				return false
			}
		} else if len(c.intFree) == 0 {
			return false
		}
	}
	return true
}
