package cpu

import (
	"portsim/internal/core"
	"portsim/internal/isa"
	"portsim/internal/mem"
)

// The hierarchy implements the next-event contract structurally (mem cannot
// import core); pin it here, where both packages are visible.
var _ core.NextEventer = (*mem.System)(nil)

// nextEventCycle returns the earliest cycle at or after c.cycle at which the
// machine can do observable work. Returning c.cycle means "this cycle may be
// active; do not skip". The one-sided NextEventer invariant applies: an
// early answer costs a wasted wake-up, a late answer corrupts the
// simulation, so every test below errs toward "active".
//
// A cycle is inert exactly when every stage of step() would reduce to its
// idle-cycle form: fetch stalled (or out of work), dispatch blocked, no
// issued entry completing, no dispatched entry able to start, the commit
// head not retiring, and the port subsystem quiet. The per-cycle counters
// those idle forms still bump (fetch-stall, ROB-full, commit-stall, port
// cycle/grant/occupancy) are batched by skipTo, which is what keeps the
// statistics byte-identical to stepped execution.
//
//portlint:hotpath
func (c *Core) nextEventCycle() uint64 {
	now := c.cycle
	// Fetch. A stalled front end doing wrong-path pollution touches the
	// I-cache every cycle; an unstalled one with buffer space and stream
	// work fetches this cycle. Otherwise the only fetch event is the
	// blocked-until cycle itself.
	if c.stallSeq != 0 {
		if !c.stallOnCommit && c.cfg.Core.WrongPathFetch && c.wrongPathPC != 0 {
			return now
		}
	} else if now >= c.fetchBlockedTil {
		if c.fbCount < len(c.fetchBuf) && !c.limitReached() && (c.havePending || !c.streamDone) {
			return now
		}
	}
	next := uint64(never)
	if c.stallSeq == 0 && c.fetchBlockedTil > now {
		next = c.fetchBlockedTil
	}
	// Dispatch: the front fetch-buffer entry clearing its gates makes the
	// cycle active. (A full ROB is not an event by itself — the head's
	// completion below bounds that wait.)
	if c.fbCount > 0 && c.robCount < len(c.rob) && c.dispatchGatesOK(&c.fbFront().inst) {
		return now
	}
	// Commit: a done head retires this cycle unless it is a store the
	// buffer refuses — that wait ends with a port event (a drain
	// completing frees the slot), not a commit event.
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		if h.state == stateDone && h.doneAt <= now {
			if h.inst.Class != isa.Store || c.port.StoreBuffer().CanAccept(h.inst.Addr, int(h.inst.Size)) {
				return now
			}
		}
	}
	// Completions: nextDoneAt is the exact minimum completion time among
	// issued entries (noteIssued and complete() maintain it). Address-
	// issued stores whose completion is still unscheduled (doneAt ==
	// never) need no candidate of their own: such a store is parked on
	// its data producer's waiter list, and the producer — necessarily
	// still dispatched, since issuing publishes — carries the wake-up
	// through its own worklist placement below. The publish at its issue
	// finalises the store's doneAt into nextDoneAt on the spot, so the
	// machine wakes no later than anything the store could do.
	if c.issCount > 0 && c.nextDoneAt != never {
		if c.nextDoneAt <= now {
			return now
		}
		if c.nextDoneAt < next {
			next = c.nextDoneAt
		}
	}
	// Dispatched entries first attempt issue at attemptAt. Only the live
	// lists need exact per-entry times: wake-heap entries carry a
	// conservative attempt time as their key (the top bounds them all),
	// and waiter-parked entries wait on a producer that carries its own
	// event.
	for k := 0; k < c.liveCount; k++ {
		idx := c.liveList[k]
		t := c.attemptAt(&c.rob[idx], idx)
		if t == never {
			continue
		}
		if t <= now {
			return now
		}
		if t < next {
			next = t
		}
	}
	for k := 0; k < c.liveStoreCount; k++ {
		idx := c.liveStores[k]
		t := c.attemptAt(&c.rob[idx], idx)
		if t == never {
			continue
		}
		if t <= now {
			return now
		}
		if t < next {
			next = t
		}
	}
	if len(c.wakeHeap) > 0 {
		if t := c.wakeHeap[0].at; t <= now {
			return now
		} else if t < next {
			next = t
		}
	}
	if t := c.port.NextEvent(now); t <= now {
		return now
	} else if t < next {
		next = t
	}
	if t := c.sys.NextEvent(now); t <= now {
		return now
	} else if t < next {
		next = t
	}
	if next == never {
		// Nothing scheduled anywhere. With work still in flight that is a
		// wedge, not an idle machine: refuse to skip so ordinary stepping
		// reaches the watchdog with an honest cycle count.
		return now
	}
	return next
}

// attemptAt is the first cycle a dispatched entry could pass issue()'s
// per-entry gates: operand readiness, address generation for memory ops, and
// the unpipelined dividers. Per-cycle contention (issue width, ALU counts,
// memory issue slots) is ignored — contention only arises on cycles where
// something else issues, which are active cycles anyway. Returns never when
// the entry waits on an unscheduled producer.
//
//portlint:hotpath
func (c *Core) attemptAt(e *robEntry, idx int32) uint64 {
	ready := c.readyAt(e, idx) // operand readiness (address-only for stores)
	if ready == never {
		return never
	}
	return c.attemptTime(e, ready)
}

// skipTo fast-forwards the clock from c.cycle to target, applying the
// batched equivalent of the inert cycles in between: the same per-cycle
// counters ordinary stepping would have bumped, with no other state change.
// The caller guarantees every cycle in [c.cycle, target) is inert
// (nextEventCycle returned target), which makes each batched condition
// constant across the gap:
//
//   - fetch-stall: a stall owner only releases at a completion event, and a
//     blocked-until fetch wakes exactly at fetchBlockedTil — both end gaps;
//   - ROB-full: no commit frees a slot and no dispatch fills the buffer
//     further during a gap;
//   - commit-stall: the head store stays refused until a drain completes,
//     which is a port event.
//
//portlint:hotpath
func (c *Core) skipTo(target uint64) {
	n := target - c.cycle //portlint:ignore cyclemath caller established target > c.cycle
	if c.acct != nil {
		c.acctGap(n, target)
	}
	if c.stallSeq != 0 || c.cycle < c.fetchBlockedTil {
		c.fetchStallCycles += n
	}
	if c.fbCount > 0 && c.robCount == len(c.rob) {
		c.robFullCycles += n
	}
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		if h.state == stateDone && h.doneAt <= c.cycle && h.inst.Class == isa.Store {
			// nextEventCycle only lets a done head through when its
			// commit is refused by the store buffer.
			c.commitStallSB += n
		}
	}
	c.port.SkipCycles(n)
	c.cycle = target
}

// dispatchGatesOK reports whether an instruction at the front of the fetch
// buffer clears dispatch's resource gates this cycle: issue-queue or
// load/store-queue occupancy and destination-register availability. Shared
// by dispatch() and the skip gate so the two can never disagree.
//
//portlint:hotpath
func (c *Core) dispatchGatesOK(in *isa.Inst) bool {
	switch {
	case in.Class == isa.Load:
		if c.lqCount >= c.cfg.Core.LoadQueueEntries {
			return false
		}
	case in.Class == isa.Store:
		if c.sqCount >= c.cfg.Core.StoreQueueEntries {
			return false
		}
	case in.Class.IsFPOp():
		if c.fpQCount >= c.cfg.Core.FPIQEntries {
			return false
		}
	default:
		if c.intQCount >= c.cfg.Core.IntIQEntries {
			return false
		}
	}
	if in.Dest != isa.RegZero {
		if in.Dest.IsFP() {
			if len(c.fpFree) == 0 {
				return false
			}
		} else if len(c.intFree) == 0 {
			return false
		}
	}
	return true
}
