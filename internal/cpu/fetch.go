package cpu

import (
	"portsim/internal/bpred"
	"portsim/internal/diag"
	"portsim/internal/isa"
	"portsim/internal/trace"
)

// fetch pulls up to FetchWidth instructions from the stream into the fetch
// buffer, modelling the instruction cache (one line per cycle) and the
// branch predictor. A predicted-taken control transfer ends the fetch group;
// a misprediction (or a serialising syscall) stalls fetch until the
// offending instruction resolves (or commits).
//
//portlint:hotpath
func (c *Core) fetch() {
	if c.stallSeq != 0 || c.cycle < c.fetchBlockedTil {
		c.fetchStallCycles++
		if c.stallSeq != 0 && !c.stallOnCommit && c.cfg.Core.WrongPathFetch && c.wrongPathPC != 0 {
			// The real front end keeps fetching down the predicted
			// (wrong) path until the branch resolves, polluting the
			// instruction cache. One line per stalled cycle.
			if r := c.sys.InstFetch(c.cycle, c.wrongPathPC); r.Accepted {
				c.wrongPathPC += uint64(c.cfg.L1I.LineBytes)
				c.wrongPathLines++
			}
		}
		return
	}
	c.wrongPathPC = 0
	if c.cursor != nil {
		c.fetchArena()
		return
	}
	lineMask := ^uint64(uint64(c.cfg.L1I.LineBytes) - 1)
	fetched := 0
	for fetched < c.cfg.Core.FetchWidth && c.fbCount < len(c.fetchBuf) {
		if c.limitReached() {
			return
		}
		if !c.havePending {
			if c.streamDone || !c.streamNext(&c.pending) {
				c.streamDone = true
				return
			}
			c.havePending = true
		}
		in := c.pending
		line := in.PC & lineMask
		if line != c.curFetchLine {
			if fetched > 0 {
				// One instruction line per cycle: the group ends
				// at the line boundary; the held instruction
				// starts the next group.
				return
			}
			r := c.sys.InstFetch(c.cycle, in.PC)
			if !r.Accepted {
				c.fetchBlockedTil = c.cycle + 1
				return
			}
			c.curFetchLine = line
			if r.Ready > c.cycle+uint64(c.cfg.L1I.HitLatency) {
				// Instruction-cache miss: deliver when the line
				// arrives.
				c.fetchBlockedTil = r.Ready
				return
			}
		}
		c.havePending = false
		c.seq++
		f := fetchedInst{inst: in, seq: c.seq}
		if in.Class.IsCtrl() {
			c.predict(&f)
		}
		c.fbPush(f)
		if c.rec != nil {
			c.rec.Record(c.cycle, diag.EventFetch, f.seq, in.PC)
		}
		fetched++
		if f.mispredicted || f.serialize {
			// Fetch stops until this instruction resolves (branch)
			// or commits (syscall).
			c.stallSeq = f.seq
			c.stallOnCommit = f.serialize
			if f.mispredicted && c.cfg.Core.WrongPathFetch {
				c.wrongPathPC = wrongPathStart(&f.inst)
			}
			return
		}
		if in.Redirects() {
			// Correctly predicted taken: the group ends; fetch
			// resumes at the target next cycle. Invalidate the
			// line tracker so the target line is fetched fresh.
			c.curFetchLine = ^uint64(0)
			return
		}
	}
}

// fetchArena is fetch's arena fast path: one whole fetch group per call,
// consumed straight from the cursor's packed arrays. The group's extent
// comes from precomputed metadata — the line-boundary check is a mask test
// on the PC array and the group-ending redirect test is one flag bit — and
// the branch predictors run over the group's control instructions in a
// single PredictGroup call. The group fetched, every predictor update and
// every counter are exactly what the per-instruction loop in fetch would
// have produced for the same trace; the arena on/off CI diff holds this to
// byte identity.
//
//portlint:hotpath
func (c *Core) fetchArena() {
	n := c.cfg.Core.FetchWidth
	if space := len(c.fetchBuf) - c.fbCount; space < n {
		n = space
	}
	if n <= 0 {
		return
	}
	if c.limitReached() {
		return
	}
	if c.maxInsts > 0 {
		if left := c.maxInsts - c.seq; uint64(n) > left { //portlint:ignore cyclemath limitReached() above returned false, so c.seq < c.maxInsts here
			n = int(left)
		}
	}
	a := c.cursor.Arena()
	pos := c.cursor.Pos()
	if rem := a.Len() - pos; rem == 0 {
		c.streamDone = true
		return
	} else if rem < n {
		n = rem
	}
	pcs := a.PCs()
	metas := a.Meta()
	lineMask := ^uint64(uint64(c.cfg.L1I.LineBytes) - 1)
	line := pcs[pos] & lineMask
	if line != c.curFetchLine {
		r := c.sys.InstFetch(c.cycle, pcs[pos])
		if !r.Accepted {
			c.fetchBlockedTil = c.cycle + 1
			return
		}
		c.curFetchLine = line
		if r.Ready > c.cycle+uint64(c.cfg.L1I.HitLatency) {
			// Instruction-cache miss: deliver when the line arrives.
			c.fetchBlockedTil = r.Ready
			return
		}
	}
	// Group extent: cut (exclusive) at the first line crossing, cut
	// (inclusive) after the first redirecting control instruction, staging
	// the group's control ops for the batch predictor as we go.
	targets := a.Targets()
	classes := a.Classes()
	nops := 0
	for i := 0; i < n; i++ {
		p := pos + i
		if i > 0 && pcs[p]&lineMask != line {
			// One instruction line per cycle: the group ends at the
			// boundary; the crossing instruction starts the next group.
			n = i
			break
		}
		m := metas[p]
		if m&trace.MetaCtrl == 0 {
			continue
		}
		c.fetchOps[nops] = bpred.Op{
			PC:     pcs[p],
			Target: targets[p],
			Class:  isa.Class(classes[p]),
			Taken:  m&trace.MetaTaken != 0,
			Index:  i,
		}
		nops++
		if m&trace.MetaRedirect != 0 {
			// The committed path leaves the fall-through here: whether
			// predicted or not, nothing behind it fetches this cycle.
			n = i + 1
			break
		}
	}
	stop := -1
	if k := c.pred.PredictGroup(c.fetchOps[:nops]); k > 0 {
		if op := &c.fetchOps[k-1]; op.Mispredicted || op.Serialize {
			n = op.Index + 1
			stop = k - 1
		}
	}
	for i := 0; i < n; i++ {
		c.seq++
		f := c.fbSlot()
		f.seq = c.seq
		f.mispredicted = false
		f.serialize = false
		a.Inst(pos+i, &f.inst)
		if stop >= 0 && i == c.fetchOps[stop].Index {
			f.mispredicted = c.fetchOps[stop].Mispredicted
			f.serialize = c.fetchOps[stop].Serialize
		}
		if c.rec != nil {
			c.rec.Record(c.cycle, diag.EventFetch, f.seq, f.inst.PC)
		}
	}
	c.cursor.Advance(n)
	if stop >= 0 {
		// Fetch stops until this instruction resolves (branch) or commits
		// (syscall).
		ender := &c.fetchOps[stop]
		c.stallSeq = c.seq
		c.stallOnCommit = ender.Serialize
		if ender.Mispredicted && c.cfg.Core.WrongPathFetch {
			var last isa.Inst
			a.Inst(pos+n-1, &last)
			c.wrongPathPC = wrongPathStart(&last)
		}
		return
	}
	if metas[pos+n-1]&trace.MetaRedirect != 0 {
		// Correctly predicted taken: the group ends; fetch resumes at the
		// target next cycle. Invalidate the line tracker so the target
		// line is fetched fresh.
		c.curFetchLine = ^uint64(0)
	}
}

// wrongPathStart picks the address the front end would (wrongly) have
// fetched from: the fall-through when the branch was actually taken, the
// stale target otherwise.
func wrongPathStart(in *isa.Inst) uint64 {
	if in.Redirects() {
		return in.FallThrough()
	}
	if in.Target != 0 {
		return in.Target
	}
	return in.FallThrough()
}

// predict runs the front-end predictors on a control instruction and marks
// it mispredicted when the machine could not have followed the trace's
// path. Predictor structures are trained here rather than at commit: fetch
// order equals program order in a trace-driven model (there is no wrong
// path), and training at fetch keeps gshare's global history exactly in
// step with the fetch stream — the behaviour of real hardware's
// speculatively updated, repair-on-mispredict history register.
func (c *Core) predict(f *fetchedInst) {
	in := &f.inst
	switch in.Class {
	case isa.Branch:
		predTaken := c.pred.Dir.Predict(in.PC)
		if predTaken != in.Taken {
			f.mispredicted = true
		} else if in.Taken {
			// Direction right, but fetch can only redirect with a
			// target from the BTB.
			tgt, ok := c.pred.BTB.Lookup(in.PC)
			if !ok || tgt != in.Target {
				f.mispredicted = true
			}
		}
		c.pred.Dir.Update(in.PC, in.Taken)
		if in.Taken {
			c.pred.BTB.Insert(in.PC, in.Target)
		}
	case isa.Jump:
		tgt, ok := c.pred.BTB.Lookup(in.PC)
		if !ok || tgt != in.Target {
			f.mispredicted = true
		}
		c.pred.BTB.Insert(in.PC, in.Target)
	case isa.Call:
		tgt, ok := c.pred.BTB.Lookup(in.PC)
		if !ok || tgt != in.Target {
			f.mispredicted = true
		}
		c.pred.BTB.Insert(in.PC, in.Target)
		c.pred.RAS.Push(in.FallThrough())
	case isa.Return:
		tgt, ok := c.pred.RAS.Pop()
		if !ok || tgt != in.Target {
			f.mispredicted = true
		}
	case isa.Syscall:
		// Kernel entry serialises the pipeline.
		f.serialize = true
	}
}
