package cpu

import (
	"fmt"
	"strings"

	"portsim/internal/isa"
)

// StallDiagnosis classifies why the machine is not committing, from live
// pipeline and port state. It is called when the forward-progress watchdog
// or the deadline guard fires, so the report names the wedged resource
// (store buffer, line buffers, port arbitration, instruction stream)
// instead of leaving a bare timeout. It is also safe to call on a healthy
// core, where it simply describes the reorder-buffer head.
func (c *Core) StallDiagnosis() string {
	if c.robCount == 0 {
		switch {
		case c.streamDone && c.fbCount == 0 && !c.havePending:
			return "stream stall: reorder buffer empty and the instruction stream ended"
		case c.stallSeq != 0:
			return fmt.Sprintf("fetch stall: reorder buffer empty, fetch blocked on unresolved control instruction seq %d", c.stallSeq)
		case c.cycle < c.fetchBlockedTil:
			return fmt.Sprintf("fetch stall: reorder buffer empty, fetch blocked until cycle %d", c.fetchBlockedTil)
		default:
			return "stream stall: reorder buffer empty with no fetch block; the instruction stream is not delivering"
		}
	}

	e := &c.rob[c.robHead]
	head := fmt.Sprintf("ROB head seq %d (%s, %d/%d entries occupied)",
		e.seq, e.inst.Class, c.robCount, len(c.rob))
	sb := c.port.StoreBuffer()
	lbs := c.port.LineBuffers()

	var b strings.Builder
	switch {
	case e.state == stateDone && e.inst.Class == isa.Store &&
		!sb.CanAccept(e.inst.Addr, int(e.inst.Size)):
		fmt.Fprintf(&b, "store buffer full: %s cannot commit; %d/%d entries occupied and not draining",
			head, sb.Len(), sb.Cap())
	case e.state == stateIssued && e.doneAt == never:
		fmt.Fprintf(&b, "store data starvation: %s issued its address but its data producer never scheduled", head)
	case e.state == stateDispatched && (e.inst.Class == isa.Load || e.inst.Class == isa.Store):
		fmt.Fprintf(&b, "port starvation: %s cannot issue its memory access", head)
	case e.state == stateDispatched:
		fmt.Fprintf(&b, "issue starvation: %s never issued (operand or functional-unit wait)", head)
	case e.doneAt > c.cycle && e.doneAt != never:
		fmt.Fprintf(&b, "in-flight wait: %s completes at cycle %d", head, e.doneAt)
	default:
		fmt.Fprintf(&b, "unclassified: %s state=%d doneAt=%d", head, e.state, e.doneAt)
	}

	portBusy, mshr, storeConflict := c.port.Rejects()
	fmt.Fprintf(&b, "; load rejects: port-busy=%d mshr=%d store-conflict=%d bank-conflict=%d",
		portBusy, mshr, storeConflict, c.port.BankConflicts())
	if lbs.Size() > 0 {
		if live := lbs.Live(); live == lbs.Size() {
			fmt.Fprintf(&b, "; all %d line buffers busy", lbs.Size())
		} else {
			fmt.Fprintf(&b, "; line buffers %d/%d live", live, lbs.Size())
		}
	}
	return b.String()
}
