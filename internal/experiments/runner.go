// Package experiments implements the paper's evaluation: one function per
// reconstructed table or figure (see DESIGN.md's experiment index). Each
// experiment builds machine variants, runs every workload through the
// simulator, and renders a paper-style plain-text table plus typed rows for
// programmatic checks. cmd/portbench and the repository benchmarks are thin
// wrappers over this package.
package experiments

import (
	"fmt"

	"portsim/internal/config"
	"portsim/internal/cpu"
	"portsim/internal/stats"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

// Spec sets the scale of an experiment run.
type Spec struct {
	// Workloads are the profile names to evaluate.
	Workloads []string
	// Insts is the committed-instruction budget per simulation.
	Insts uint64
	// Seed feeds every workload generator.
	Seed int64
}

// DefaultSpec runs every workload at full length, the configuration behind
// EXPERIMENTS.md.
func DefaultSpec() Spec {
	return Spec{Workloads: workload.Names(), Insts: 300_000, Seed: 42}
}

// QuickSpec is a reduced configuration for tests and -short benchmarks.
func QuickSpec() Spec {
	return Spec{Workloads: []string{"compress", "eqntott", "database"}, Insts: 40_000, Seed: 42}
}

// Runner executes simulations and memoises results, since several
// experiments share machine configurations.
type Runner struct {
	spec  Spec
	cache map[string]*cpu.Result
	// simCycles and simInsts accumulate over actual simulations only —
	// memoised cache hits are excluded — so host-throughput reports
	// (cmd/portbench) divide real simulated work by real wall time.
	simCycles uint64
	simInsts  uint64
}

// NewRunner returns a runner for the spec.
func NewRunner(spec Spec) *Runner {
	return &Runner{spec: spec, cache: make(map[string]*cpu.Result)}
}

// Spec returns the runner's spec.
func (r *Runner) Spec() Spec { return r.spec }

// SimulatedCycles returns the total simulated cycles across every
// non-memoised run this runner has executed.
func (r *Runner) SimulatedCycles() uint64 { return r.simCycles }

// SimulatedInstructions returns the total committed instructions across
// every non-memoised run this runner has executed.
func (r *Runner) SimulatedInstructions() uint64 { return r.simInsts }

// Run simulates one workload on one machine, reusing a previous result for
// the identical configuration.
func (r *Runner) Run(m config.Machine, workloadName string) (*cpu.Result, error) {
	cfgJSON, err := m.ToJSON()
	if err != nil {
		return nil, err
	}
	key := workloadName + "\x00" + string(cfgJSON)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	prof, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", workloadName)
	}
	res, err := r.runProfile(m, prof)
	if err != nil {
		return nil, err
	}
	r.cache[key] = res
	return res, nil
}

// runProfile simulates an explicit profile (used by the kernel-intensity
// sweep, which mutates profiles); results are not memoised.
func (r *Runner) runProfile(m config.Machine, prof workload.Profile) (*cpu.Result, error) {
	gen, err := workload.New(prof, r.spec.Seed)
	if err != nil {
		return nil, err
	}
	return r.runStream(m, gen, prof.Name)
}

// runStream simulates an arbitrary stream (not memoised).
func (r *Runner) runStream(m config.Machine, stream trace.Stream, what string) (*cpu.Result, error) {
	c, err := cpu.New(&m, stream)
	if err != nil {
		return nil, err
	}
	// The deadline is a deadlock guard: no sane run needs 400 cycles per
	// instruction.
	res, err := c.Run(cpu.Options{
		MaxInstructions: r.spec.Insts,
		DeadlineCycles:  400 * r.spec.Insts,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", what, m.Name, err)
	}
	r.simCycles += res.Cycles
	r.simInsts += res.Instructions
	return res, nil
}

// geoMeanIPC computes the geometric-mean IPC over per-workload results.
func geoMeanIPC(results []*cpu.Result) float64 {
	ipcs := make([]float64, len(results))
	for i, r := range results {
		ipcs[i] = r.IPC
	}
	return stats.GeoMean(ipcs)
}
