package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"portsim/internal/cellstore"
	"portsim/internal/config"
	"portsim/internal/cpu"
	"portsim/internal/cpustack"
	"portsim/internal/diag"
	"portsim/internal/stats"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

// Spec sets the scale of an experiment run.
type Spec struct {
	// Workloads are the profile names to evaluate.
	Workloads []string
	// Insts is the committed-instruction budget per simulation.
	Insts uint64
	// Seed feeds every workload generator.
	Seed int64
	// Parallel bounds the number of simulations executing concurrently.
	// Zero or negative selects runtime.GOMAXPROCS(0). Every simulation is
	// deterministic and cells are merged in submission order, so the
	// rendered tables are byte-identical at any parallelism level.
	Parallel int
	// FlightRecorder arms the per-cell pipeline flight recorder so any
	// cell failure carries its last diag.DefaultDepth events. It is off
	// by default; cells poisoned by Fault always record regardless.
	FlightRecorder bool
	// Fault, when non-nil, poisons every cell of the matching workload —
	// the fault-injection hook behind the robustness tests and portbench
	// -inject. Healthy workloads are unaffected.
	Fault *Fault
	// Trace, when non-nil, arms a deep flight recorder for the first
	// simulation of the named cell so its tail can be exported as a
	// Perfetto trace (portbench -trace-out). All other cells run exactly
	// as without it, so tables stay byte-identical.
	Trace *TraceSpec
	// Store, when non-nil, is the durable cell store consulted between the
	// in-process memo and the simulator (lookup order: memo → store →
	// simulate → Put). A warm store restores finished cells — results and
	// deterministic failures alike — without simulating; the tables a
	// campaign renders are byte-identical with the store on, off, cold or
	// warm. Store trouble never fails a run: corrupt entries quarantine and
	// re-simulate, a broken disk degrades the store to store-less operation.
	Store *cellstore.Store
	// NoSkip steps every simulated cycle instead of letting the core
	// fast-forward over inert stretches (cpu.Options.NoSkip). Skipping is
	// table-neutral by construction; this escape hatch exists for the CI
	// byte-identity diff and for timing forensics.
	NoSkip bool
	// ArenaBudget bounds the shared trace-arena registry in bytes: each
	// (profile, seed) dynamic trace is materialised once and replayed by
	// every cell that needs it, falling back to live generation for cells
	// the budget cannot hold. Zero selects DefaultArenaBudget; negative
	// disables arenas entirely. Tables are byte-identical at any setting —
	// replay and live generation produce the same instruction stream.
	ArenaBudget int64
	// CPIStack arms per-cell cycle accounting (cpu.Options.CPIStack):
	// every simulated cell carries a conservation-checked attribution
	// stack on its CellEvent and Result. Accounting never perturbs
	// results — tables are byte-identical on or off — and adds one atomic
	// charge per simulated cycle when armed.
	CPIStack bool
}

// TraceSpec names the one cell whose pipeline events a campaign captures.
type TraceSpec struct {
	// Workload is the workload name to match.
	Workload string
	// Machine is the machine name to match; empty matches any machine.
	Machine string
	// Depth is the recorder ring capacity; DefaultTraceDepth when not
	// positive.
	Depth int
}

// DefaultTraceDepth is the trace recorder's ring capacity: deep enough to
// hold the full event stream of a quick cell (a few events per cycle over
// tens of thousands of cycles), shallow enough to stay tens of megabytes.
const DefaultTraceDepth = 1 << 20

// TraceCapture is the captured tail of the traced cell.
type TraceCapture struct {
	// Machine and Workload identify the cell that was captured.
	Machine  string
	Workload string
	// Seed is the spec's workload seed.
	Seed int64
	// Events is the recorder tail in recording (cycle) order.
	Events []diag.Event
	// Dropped counts events lost to ring wraparound before the tail;
	// Total is every event recorded.
	Dropped uint64
	Total   uint64
}

// CellEvent describes one finished experiment cell, delivered to the
// observer installed with SetCellObserver. One event fires per cell
// submission: memo hits report the cached result with MemoHit set.
type CellEvent struct {
	// Machine and Workload identify the cell. ConfigJSON is the machine
	// configuration as simulated (after fault arming, if any).
	Machine    string
	Workload   string
	ConfigJSON []byte
	// MemoHit marks a cell satisfied from the memo cache without
	// simulating.
	MemoHit bool
	// StoreHit marks a cell restored from the durable store (Spec.Store)
	// without simulating. At most one of MemoHit/StoreHit is set: waiters
	// on an in-flight cell report MemoHit even when the owner's fill was a
	// store restore.
	StoreHit bool
	// WallSeconds is the cell's simulation wall time (zero for memo hits
	// and when no clock was injected).
	WallSeconds float64
	// Result is the cell's result; nil when the cell failed, in which
	// case Err carries the failure.
	Result *cpu.Result
	Err    error
	// CPIStack is the cell's frozen cycle-attribution stack when
	// Spec.CPIStack armed accounting; nil otherwise. Unlike
	// Result.CPIStack it is populated for failed cells too — the
	// attribution of a wedged run is exactly what a diagnosis wants.
	CPIStack *cpustack.Snapshot
}

// CellStart announces a cell entering simulation, delivered to the
// observer installed with SetCellStartObserver. Memo and store hits never
// start — they complete without simulating — so a start pairs with
// exactly one later CellEvent for the same (machine, workload, config).
type CellStart struct {
	// Machine and Workload identify the cell; ConfigJSON is the machine
	// configuration as simulated (after fault arming, if any).
	Machine    string
	Workload   string
	ConfigJSON []byte
	// Experiment is the experiment label set with SetExperiment, "" when
	// the driver did not label the sweep.
	Experiment string
	// Stack is the cell's live CPI stack — the same object the simulation
	// charges — so a status plane can snapshot mid-run attribution. Nil
	// when Spec.CPIStack is off.
	Stack *cpustack.Stack
}

// DefaultSpec runs every workload at full length, the configuration behind
// EXPERIMENTS.md.
func DefaultSpec() Spec {
	return Spec{Workloads: workload.Names(), Insts: 300_000, Seed: 42}
}

// QuickSpec is a reduced configuration for tests and -short benchmarks.
func QuickSpec() Spec {
	return Spec{Workloads: []string{"compress", "eqntott", "database"}, Insts: 40_000, Seed: 42}
}

// memoEntry is one singleflight slot in the runner's memo cache: the first
// caller of a key owns the simulation and everyone else blocks on done.
type memoEntry struct {
	done chan struct{}
	res  *cpu.Result
	err  error
}

// Runner executes simulations and memoises results, since several
// experiments share machine configurations. It is safe for concurrent use:
// the memo cache is singleflight (a duplicate configuration waits for the
// in-flight simulation instead of re-running it) and the work accumulators
// are atomic.
type Runner struct {
	spec     Spec
	parallel int

	mu    sync.Mutex
	cache map[string]*memoEntry

	// Core pool: finished cores keyed by machine-config JSON, reset and
	// reused by later cells with the identical configuration so a campaign
	// does not reallocate cache tags, predictor tables and register files
	// per cell. Cores from failed or panicked cells are never returned.
	poolMu   sync.Mutex
	pool     map[string][]*cpu.Core
	poolHits atomic.Uint64
	poolMiss atomic.Uint64

	// simCycles and simInsts accumulate over actual simulations only —
	// memoised cache hits are excluded — so host-throughput reports
	// (cmd/portbench) divide real simulated work by real wall time.
	simCycles atomic.Uint64
	simInsts  atomic.Uint64

	// progressMu serialises progress callbacks so a user-supplied sink
	// (e.g. a terminal line) never sees interleaved or regressing counts.
	progressMu sync.Mutex
	doneCells  int
	progress   func(done int)

	// obsMu guards the per-cell observers (telemetry sink, campaign
	// status plane) and serialises their invocations. The observers are
	// nil when telemetry is off; the cost of the check is one mutex
	// acquisition per cell — never per cycle.
	obsMu    sync.Mutex
	observer func(CellEvent)
	obsNow   func() time.Time
	startObs func(CellStart)

	// experiment is the current experiment label for cell starts and
	// pprof labels, set by the driver between sweeps (SetExperiment).
	experiment atomic.Value // string

	// traceMu guards the single trace capture of a Spec.Trace campaign.
	traceMu    sync.Mutex
	traceArmed bool
	traceCap   *TraceCapture

	// arenas is the shared trace-arena registry (see arena.go); nil when
	// disabled by Spec.ArenaBudget or an unbounded instruction budget.
	arenas *arenaRegistry
}

// NewRunner returns a runner for the spec.
func NewRunner(spec Spec) *Runner {
	parallel := spec.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		spec:     spec,
		parallel: parallel,
		cache:    make(map[string]*memoEntry),
		pool:     make(map[string][]*cpu.Core),
	}
	budget := spec.ArenaBudget
	if budget == 0 {
		budget = DefaultArenaBudget
	}
	// An unbounded run (Insts == 0) cannot size arenas, so it streams live.
	if budget > 0 && spec.Insts > 0 {
		r.arenas = newArenaRegistry(budget)
	}
	return r
}

// Spec returns the runner's spec.
func (r *Runner) Spec() Spec { return r.spec }

// Parallel returns the effective worker count.
func (r *Runner) Parallel() int { return r.parallel }

// SetProgress installs a callback invoked with the cumulative number of
// completed experiment cells. Calls are serialised; the callback must not
// invoke the runner.
func (r *Runner) SetProgress(fn func(done int)) {
	r.progressMu.Lock()
	r.progress = fn
	r.progressMu.Unlock()
}

// noteProgress records one completed cell and notifies the callback.
func (r *Runner) noteProgress() {
	r.progressMu.Lock()
	r.doneCells++
	done, fn := r.doneCells, r.progress
	if fn != nil {
		fn(done)
	}
	r.progressMu.Unlock()
}

// SetCellObserver installs a per-cell telemetry sink invoked once for
// every cell submission — simulated, memoised or failed. now supplies the
// wall clock for cell timing and may be nil (cells then report zero wall
// time); the runner itself never reads a clock, keeping the determinism
// lint meaningful. Calls are serialised; the observer must not invoke the
// runner. A nil fn disables observation.
func (r *Runner) SetCellObserver(fn func(CellEvent), now func() time.Time) {
	r.obsMu.Lock()
	r.observer = fn
	r.obsNow = now
	r.obsMu.Unlock()
}

// cellObserver returns the current observer and clock.
func (r *Runner) cellObserver() (func(CellEvent), func() time.Time) {
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	return r.observer, r.obsNow
}

// SetCellStartObserver installs a callback invoked when a cell enters
// simulation, carrying the cell's live CPI stack (when armed) so a status
// plane can report running cells. Memo and store hits never fire it.
// Calls are serialised with the cell observer; a nil fn disables it.
func (r *Runner) SetCellStartObserver(fn func(CellStart)) {
	r.obsMu.Lock()
	r.startObs = fn
	r.obsMu.Unlock()
}

// cellStartObserver returns the current start observer.
func (r *Runner) cellStartObserver() func(CellStart) {
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	return r.startObs
}

// emitCellStart delivers one start notification under the observer lock.
func (r *Runner) emitCellStart(ev CellStart) {
	r.obsMu.Lock()
	if r.startObs != nil {
		r.startObs(ev)
	}
	r.obsMu.Unlock()
}

// SetExperiment labels the cells submitted from now on with an experiment
// name (cell starts, pprof profiler labels). The drivers run experiments
// sequentially, so a single label suffices; it never influences results.
func (r *Runner) SetExperiment(name string) { r.experiment.Store(name) }

// Experiment returns the current experiment label.
func (r *Runner) Experiment() string {
	name, _ := r.experiment.Load().(string)
	return name
}

// emitCell delivers one observer event under the observer lock.
func (r *Runner) emitCell(ev CellEvent) {
	r.obsMu.Lock()
	if r.observer != nil {
		r.observer(ev)
	}
	r.obsMu.Unlock()
}

// Trace returns the captured trace of the Spec.Trace cell, or nil when no
// matching cell has simulated (or tracing was not requested).
func (r *Runner) Trace() *TraceCapture {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	return r.traceCap
}

// armTrace claims the campaign's single trace slot when the cell matches
// Spec.Trace, returning the deep recorder to simulate with. Only the
// first matching simulation captures; memoisation guarantees the first
// simulation of a (machine, workload) pair is the one whose result every
// table sees.
func (r *Runner) armTrace(machineName, workloadName string) *diag.Recorder {
	t := r.spec.Trace
	if t == nil || t.Workload != workloadName {
		return nil
	}
	if t.Machine != "" && t.Machine != machineName {
		return nil
	}
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if r.traceArmed {
		return nil
	}
	r.traceArmed = true
	depth := t.Depth
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	return diag.NewRecorder(depth)
}

// captureTrace stores the traced cell's tail for Trace().
func (r *Runner) captureTrace(rec *diag.Recorder, machineName, workloadName string) {
	r.traceMu.Lock()
	r.traceCap = &TraceCapture{
		Machine:  machineName,
		Workload: workloadName,
		Seed:     r.spec.Seed,
		Events:   rec.Events(),
		Dropped:  rec.Dropped(),
		Total:    rec.Total(),
	}
	r.traceMu.Unlock()
}

// SimulatedCycles returns the total simulated cycles across every
// non-memoised run this runner has executed.
func (r *Runner) SimulatedCycles() uint64 { return r.simCycles.Load() }

// SimulatedInstructions returns the total committed instructions across
// every non-memoised run this runner has executed.
func (r *Runner) SimulatedInstructions() uint64 { return r.simInsts.Load() }

// Run simulates one workload on one machine, reusing a previous result for
// the identical configuration. Concurrent calls with the same configuration
// share one simulation: the first caller runs it, the rest wait for it.
// Failures are memoised like results: the simulator is deterministic, so a
// failed cell would fail identically on every retry, and caching the
// CellError means the whole campaign reports one failure per distinct cell
// instead of re-dying once per experiment that shares the configuration.
func (r *Runner) Run(m config.Machine, workloadName string) (*cpu.Result, error) {
	cfgJSON, err := m.ToJSON()
	if err != nil {
		return nil, err
	}
	key := workloadName + "\x00" + string(cfgJSON)
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-e.done
		ev := CellEvent{
			Machine:    m.Name,
			Workload:   workloadName,
			ConfigJSON: cfgJSON,
			MemoHit:    true,
			Result:     e.res,
			Err:        e.err,
		}
		if e.res != nil {
			ev.CPIStack = e.res.CPIStack
		}
		r.emitCell(ev)
		return e.res, e.err
	}
	e := &memoEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()
	r.fill(e, func() (*cpu.Result, error) { return r.runDurable(m, cfgJSON, workloadName) })
	return e.res, e.err
}

// fill runs the owning caller's simulation into the memo entry and then
// releases the waiters. The deferred recover sits between the work and the
// close (LIFO order: recover stores the error first, then done is closed),
// fixing the memo-poisoning bug where a panicking owner closed e.done with
// res == nil, err == nil and every waiter received a silent nil result
// forever. runStream contains panics with full cell context; this recover
// is the backstop for panics outside the simulation itself (workload
// resolution, result accounting).
func (r *Runner) fill(e *memoEntry, run func() (*cpu.Result, error)) {
	defer close(e.done)
	defer func() {
		if p := recover(); p != nil {
			e.res = nil
			e.err = &CellError{
				Seed:  r.spec.Seed,
				Insts: r.spec.Insts,
				Stack: string(debug.Stack()),
				Err:   fmt.Errorf("%w: %v", ErrCellPanic, p),
			}
		}
	}()
	e.res, e.err = run()
}

// runWorkload resolves a workload name and simulates it (no memoisation).
func (r *Runner) runWorkload(m config.Machine, workloadName string) (*cpu.Result, error) {
	prof, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", workloadName)
	}
	return r.runProfile(m, prof)
}

// runProfile simulates an explicit profile (used by the kernel-intensity
// sweep, which mutates profiles); results are not memoised. The stream is
// an arena cursor when the registry holds this trace, the live generator
// otherwise — identical instruction sequences either way.
func (r *Runner) runProfile(m config.Machine, prof workload.Profile) (*cpu.Result, error) {
	stream, release, err := r.profileStream(prof, r.spec.Seed)
	if err != nil {
		return nil, err
	}
	if release != nil {
		defer release()
	}
	res, err := r.runStream(m, stream, prof.Name)
	if err != nil {
		// The profile is ad hoc (no workload.ByName entry), so a repro
		// bundle must carry it verbatim.
		var ce *CellError
		if errors.As(err, &ce) && ce.Profile == nil {
			p := prof
			ce.Profile = &p
		}
	}
	return res, err
}

// acquireCore returns a core for the machine, reusing a pooled one (reset
// for the new stream) when an identical configuration has already finished
// a cell. The returned key re-pools the core via releaseCore; an empty key
// means the core is not poolable (fault-armed cells mutate their machine
// configuration mid-construction, so their cores are built and dropped).
func (r *Runner) acquireCore(m *config.Machine, stream trace.Stream, poolable bool) (*cpu.Core, string, error) {
	if !poolable {
		c, err := cpu.New(m, stream)
		return c, "", err
	}
	cfgJSON, err := m.ToJSON()
	if err != nil {
		return nil, "", err
	}
	key := string(cfgJSON)
	r.poolMu.Lock()
	if cores := r.pool[key]; len(cores) > 0 {
		c := cores[len(cores)-1]
		r.pool[key] = cores[:len(cores)-1]
		r.poolMu.Unlock()
		r.poolHits.Add(1)
		return c, key, c.Reset(stream)
	}
	r.poolMu.Unlock()
	r.poolMiss.Add(1)
	c, err := cpu.New(m, stream)
	return c, key, err
}

// releaseCore returns a healthy core to the pool. The per-key depth is
// bounded by the worker count: beyond that, extra cores could never be in
// use simultaneously anyway.
func (r *Runner) releaseCore(key string, c *cpu.Core) {
	if key == "" {
		return
	}
	r.poolMu.Lock()
	if len(r.pool[key]) < r.parallel {
		r.pool[key] = append(r.pool[key], c)
	}
	r.poolMu.Unlock()
}

// PoolStats reports how many cells reused a pooled core versus built one,
// for tests and throughput diagnostics.
func (r *Runner) PoolStats() (hits, misses uint64) {
	return r.poolHits.Load(), r.poolMiss.Load()
}

// runStream simulates an arbitrary stream (not memoised). This is the cell
// crash boundary: a panic anywhere in the simulation — the stream, the
// pipeline model, the memory system — is contained here into a CellError
// carrying the machine configuration, the cell identity, the stack, and
// the flight recorder's tail. Simulation errors (deadline, watchdog stall)
// are wrapped into CellErrors with the same context, minus the stack.
func (r *Runner) runStream(m config.Machine, stream trace.Stream, what string) (res *cpu.Result, err error) {
	// A trace-armed cell gets the deep recorder; otherwise the ordinary
	// forensic ring, armed only when requested or fault-poisoned.
	traceRec := r.armTrace(m.Name, what)
	rec := traceRec
	poolable := !r.spec.Fault.applies(what)
	if rec == nil && (r.spec.FlightRecorder || !poolable) {
		rec = diag.NewRecorder(0)
	}
	if !poolable {
		stream = r.spec.Fault.arm(&m, stream)
	}
	cellErr := func(stack string, cause error) *CellError {
		events := rec.Events()
		if len(events) > diag.DefaultDepth {
			// A trace-deep recorder holds ~10^6 events; a failure report
			// only ever shows the tail, so cap what the error carries.
			events = events[len(events)-diag.DefaultDepth:]
		}
		return &CellError{
			Machine:  m,
			Workload: what,
			Seed:     r.spec.Seed,
			Insts:    r.spec.Insts,
			Stack:    stack,
			Events:   events,
			Err:      cause,
		}
	}
	// Per-cell cycle accounting: a fresh caller-owned stack per cell, so
	// the live object can be handed to the status plane (CellStart) while
	// the simulation charges it, and snapshotted even when the cell fails.
	var stack *cpustack.Stack
	if r.spec.CPIStack {
		stack = cpustack.NewStack()
	}
	// The observer defer is registered before the recover defer, so on a
	// panic it runs after recovery has turned the panic into res/err and
	// reports the cell's final outcome. The trace is captured on every
	// path — a trace of the failing cell is exactly what a diagnosis
	// wants.
	obs, obsNow := r.cellObserver()
	startObs := r.cellStartObserver()
	var cfgJSON []byte
	if obs != nil || startObs != nil {
		cfgJSON, _ = m.ToJSON()
	}
	var cellStart time.Time
	if obs != nil && obsNow != nil {
		cellStart = obsNow()
	}
	defer func() {
		if traceRec != nil {
			r.captureTrace(traceRec, m.Name, what)
		}
		if obs == nil {
			return
		}
		ev := CellEvent{
			Machine:    m.Name,
			Workload:   what,
			ConfigJSON: cfgJSON,
			Result:     res,
			Err:        err,
			CPIStack:   stack.Snapshot(),
		}
		if obsNow != nil {
			ev.WallSeconds = obsNow().Sub(cellStart).Seconds()
		}
		r.emitCell(ev)
	}()
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = cellErr(string(debug.Stack()), fmt.Errorf("%w: %v", ErrCellPanic, p))
		}
	}()
	if startObs != nil {
		r.emitCellStart(CellStart{
			Machine:    m.Name,
			Workload:   what,
			ConfigJSON: cfgJSON,
			Experiment: r.Experiment(),
			Stack:      stack,
		})
	}
	simulate := func() {
		var c *cpu.Core
		var key string
		c, key, err = r.acquireCore(&m, stream, poolable)
		if err != nil {
			return
		}
		res, err = c.Run(cpu.Options{
			MaxInstructions: r.spec.Insts,
			DeadlineCycles:  cpu.DeadlineFor(r.spec.Insts),
			StallCycles:     cpu.DefaultStallCycles,
			Recorder:        rec,
			NoSkip:          r.spec.NoSkip,
			CPIStack:        stack,
		})
		if err != nil {
			// The failed core is dropped, not pooled: its state is part
			// of the failure evidence and may be wedged.
			res = nil
			err = cellErr("", fmt.Errorf("experiments: %s on %s: %w", what, m.Name, err))
			return
		}
		r.simCycles.Add(res.Cycles)
		r.simInsts.Add(res.Instructions)
		r.releaseCore(key, c)
	}
	if obs != nil || startObs != nil {
		// With a telemetry plane attached, label the simulation goroutine
		// so CPU profiles (/debug/pprof/profile) segment by cell and
		// experiment. Labels never influence results; the plain path
		// stays completely untouched when observability is off.
		pprof.Do(context.Background(), pprof.Labels(
			"cell", cellstore.HashConfig(cfgJSON),
			"experiment", r.Experiment(),
			"workload", what,
			"machine", m.Name,
		), func(context.Context) { simulate() })
	} else {
		simulate()
	}
	return res, err
}

// geoMeanIPC computes the geometric-mean IPC over per-workload results.
func geoMeanIPC(results []*cpu.Result) float64 {
	ipcs := make([]float64, len(results))
	for i, r := range results {
		ipcs[i] = r.IPC
	}
	return stats.GeoMean(ipcs)
}
