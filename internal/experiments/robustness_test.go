package experiments

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"portsim/internal/config"
	"portsim/internal/cpu"
)

// faultSpec is a small spec with one poisoned workload.
func faultSpec(f *Fault) Spec {
	return Spec{
		Workloads: []string{"compress", "eqntott", "database"},
		Insts:     5_000,
		Seed:      42,
		Parallel:  2,
		Fault:     f,
	}
}

// TestFaultPanicContainedInExperiment is the headline containment test: one
// poisoned cell in a three-workload experiment yields exactly one diagnosed
// CellError — with configuration, stack, and flight-recorder events — while
// the healthy cells complete.
func TestFaultPanicContainedInExperiment(t *testing.T) {
	r := NewRunner(faultSpec(&Fault{Mode: FaultPanic, Workload: "eqntott", After: 1_000}))
	_, _, err := T2Characterisation(r)
	if err == nil {
		t.Fatal("poisoned experiment returned no error")
	}
	if !errors.Is(err, ErrCellPanic) {
		t.Fatalf("err = %v, want ErrCellPanic in the tree", err)
	}
	ces := CellErrors(err)
	if len(ces) != 1 {
		t.Fatalf("%d CellErrors, want exactly 1: %v", len(ces), err)
	}
	ce := ces[0]
	if ce.Workload != "eqntott" {
		t.Errorf("CellError names workload %q, want the poisoned eqntott", ce.Workload)
	}
	if ce.Machine.Name == "" {
		t.Error("CellError carries no machine configuration")
	}
	if _, jerr := ce.Machine.ToJSON(); jerr != nil {
		t.Errorf("CellError machine does not serialise: %v", jerr)
	}
	if ce.Seed != 42 || ce.Insts != 5_000 {
		t.Errorf("CellError identity seed=%d insts=%d, want 42/5000", ce.Seed, ce.Insts)
	}
	if !strings.Contains(ce.Stack, "panic") && !strings.Contains(ce.Stack, "goroutine") {
		t.Errorf("CellError stack looks empty: %q", ce.Stack)
	}
	// The fault fired after 1000 clean instructions, so the recorder (armed
	// automatically for poisoned cells) must have filled well past 64 events.
	if len(ce.Events) < 64 {
		t.Errorf("flight recorder captured %d events, want >= 64", len(ce.Events))
	}
	if !strings.Contains(ce.Detail(), "machine configuration:") {
		t.Error("Detail() omits the machine configuration block")
	}
	// The healthy cells ran to completion: real simulated work accumulated.
	if r.SimulatedInstructions() == 0 {
		t.Error("no healthy cell completed alongside the contained failure")
	}
}

// TestFaultBadInstDrivesStoreBufferPanic checks that a corrupted instruction
// reaches the store buffer's real validation panic at commit, and that the
// containment boundary converts it into a CellError instead of crashing.
func TestFaultBadInstDrivesStoreBufferPanic(t *testing.T) {
	r := NewRunner(faultSpec(&Fault{Mode: FaultBadInst, Workload: "compress", After: 500}))
	_, err := r.Run(config.Baseline(), "compress")
	if err == nil {
		t.Fatal("badinst cell returned no error")
	}
	if !errors.Is(err, ErrCellPanic) {
		t.Fatalf("err = %v, want ErrCellPanic", err)
	}
	if !strings.Contains(err.Error(), "store size 0 unsupported") {
		t.Errorf("err = %v, want the store buffer's size-validation panic", err)
	}
	ces := CellErrors(err)
	if len(ces) != 1 || len(ces[0].Events) == 0 {
		t.Errorf("badinst CellError missing flight-recorder events: %v", err)
	}
}

// TestFaultWedgeDiagnosedByWatchdog checks the stall path: a store buffer
// that never drains is caught by the forward-progress watchdog and the
// diagnosis names the wedged resource.
func TestFaultWedgeDiagnosedByWatchdog(t *testing.T) {
	r := NewRunner(faultSpec(&Fault{Mode: FaultWedge, Workload: "eqntott"}))
	_, err := r.Run(config.Baseline(), "eqntott")
	if err == nil {
		t.Fatal("wedged cell returned no error")
	}
	if !errors.Is(err, cpu.ErrStall) {
		t.Fatalf("err = %v, want cpu.ErrStall", err)
	}
	if !strings.Contains(err.Error(), "store buffer") {
		t.Errorf("stall diagnosis %q does not name the wedged store buffer", err)
	}
	ces := CellErrors(err)
	if len(ces) != 1 {
		t.Fatalf("%d CellErrors, want 1", len(ces))
	}
	if !ces[0].Machine.Ports.FaultStuckDrain {
		t.Error("CellError machine does not carry the armed wedge knob; a repro bundle would not reproduce")
	}
	if ces[0].Stack != "" {
		t.Errorf("watchdog stall is not a panic; stack should be empty, got %d bytes", len(ces[0].Stack))
	}
}

// TestMemoCachesFailures pins the failure-memoisation decision: the simulator
// is deterministic, so a failed cell is cached like a result and every caller
// — sequential or concurrent — receives the same *CellError, never a silent
// (nil, nil). This is the regression test for the memo-poisoning bug where a
// panicking owner closed done before storing anything.
func TestMemoCachesFailures(t *testing.T) {
	r := NewRunner(faultSpec(&Fault{Mode: FaultPanic, Workload: "eqntott", After: 100}))

	const callers = 16
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(config.Baseline(), "eqntott")
			if res != nil {
				t.Errorf("caller %d got a result from a poisoned cell", i)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d received (nil, nil) from a failed cell: the memo entry was poisoned", i)
		}
		if err != errs[0] {
			t.Fatalf("caller %d received a different error object; failure was re-simulated instead of memoised", i)
		}
	}
	// A later sequential call still hits the cached failure.
	if _, err := r.Run(config.Baseline(), "eqntott"); err != errs[0] {
		t.Errorf("sequential retry got %v, want the memoised CellError", err)
	}
}

// TestFillContainsPanicBeforeRelease unit-tests the singleflight owner path
// directly: the deferred recover must store the error before done closes.
func TestFillContainsPanicBeforeRelease(t *testing.T) {
	r := NewRunner(Spec{Workloads: []string{"compress"}, Insts: 7, Seed: 3, Parallel: 1})
	e := &memoEntry{done: make(chan struct{})}
	r.fill(e, func() (*cpu.Result, error) { panic("owner exploded") })
	select {
	case <-e.done:
	default:
		t.Fatal("fill returned without closing done")
	}
	if e.res != nil {
		t.Errorf("panicked fill stored a result: %v", e.res)
	}
	if e.err == nil || !errors.Is(e.err, ErrCellPanic) {
		t.Fatalf("e.err = %v, want ErrCellPanic", e.err)
	}
	var ce *CellError
	if !errors.As(e.err, &ce) {
		t.Fatalf("e.err = %T, want *CellError", e.err)
	}
	if ce.Seed != 3 || ce.Insts != 7 {
		t.Errorf("backstop CellError identity seed=%d insts=%d, want 3/7", ce.Seed, ce.Insts)
	}
	if ce.Stack == "" {
		t.Error("backstop CellError carries no stack")
	}
}

// TestBundleRoundTripAndDeterministicReplay drives the full repro loop:
// fail a cell, bundle it, encode/parse the bundle, replay it twice, and
// require both replays to reproduce the identical failure.
func TestBundleRoundTripAndDeterministicReplay(t *testing.T) {
	spec := faultSpec(&Fault{Mode: FaultWedge, Workload: "eqntott"})
	r := NewRunner(spec)
	_, err := r.Run(config.Baseline(), "eqntott")
	ces := CellErrors(err)
	if len(ces) != 1 {
		t.Fatalf("setup: %d CellErrors from wedged cell: %v", len(ces), err)
	}

	data, err := BundleFor(ces[0], spec).Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseBundle(data)
	if err != nil {
		t.Fatalf("ParseBundle on our own Encode output: %v", err)
	}
	if !b.Machine.Ports.FaultStuckDrain {
		t.Fatal("bundle lost the wedge knob")
	}

	replay := func() *CellError {
		t.Helper()
		res, err := b.Replay()
		if err == nil {
			t.Fatalf("replay did not reproduce; got clean result %+v", res)
		}
		ces := CellErrors(err)
		if len(ces) != 1 {
			t.Fatalf("replay produced %d CellErrors, want 1: %v", len(ces), err)
		}
		return ces[0]
	}
	first, second := replay(), replay()
	if first.Error() != second.Error() {
		t.Errorf("replays diverged:\n  first:  %s\n  second: %s", first, second)
	}
	if !reflect.DeepEqual(first.Events, second.Events) {
		t.Errorf("replay flight-recorder events diverged (%d vs %d events)", len(first.Events), len(second.Events))
	}
	if len(first.Events) == 0 {
		t.Error("replay ran without the flight recorder")
	}
	if first.Error() != ces[0].Error() {
		t.Errorf("replay failure %q differs from the original %q", first, ces[0])
	}
}

// TestBundleForCarriesStreamFault checks that stream faults (which live
// outside the machine config) travel in the bundle, and unrelated faults do
// not.
func TestBundleForCarriesStreamFault(t *testing.T) {
	f := &Fault{Mode: FaultPanic, Workload: "compress", After: 9}
	ce := &CellError{Machine: config.Baseline(), Workload: "compress", Seed: 1, Insts: 100}
	if b := BundleFor(ce, Spec{Fault: f}); b.Fault != f {
		t.Error("matching stream fault not attached to the bundle")
	}
	other := &CellError{Machine: config.Baseline(), Workload: "eqntott", Seed: 1, Insts: 100}
	if b := BundleFor(other, Spec{Fault: f}); b.Fault != nil {
		t.Error("fault attached to a bundle for an unpoisoned workload")
	}
}

// TestParseBundleRejectsGarbage covers the validation edges.
func TestParseBundleRejectsGarbage(t *testing.T) {
	good := &Bundle{Version: BundleVersion, Machine: config.Baseline(), Workload: "compress", Seed: 1, Insts: 10}
	encode := func(mutate func(*Bundle)) []byte {
		t.Helper()
		b := *good
		mutate(&b)
		data, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"not json", []byte("{"), "parsing repro bundle"},
		{"bad version", encode(func(b *Bundle) { b.Version = 99 }), "version 99 not supported"},
		{"zero insts", encode(func(b *Bundle) { b.Insts = 0 }), "zero instruction budget"},
		{"unknown workload", encode(func(b *Bundle) { b.Workload = "nope" }), `unknown workload "nope"`},
		{"bad machine", encode(func(b *Bundle) { b.Machine.Core.ROBEntries = 0 }), "repro bundle machine"},
	}
	for _, tc := range cases {
		if _, err := ParseBundle(tc.data); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	if _, err := ParseBundle(encode(func(*Bundle) {})); err != nil {
		t.Errorf("valid bundle rejected: %v", err)
	}
}

// TestParseFault covers the -inject syntax.
func TestParseFault(t *testing.T) {
	f, err := ParseFault("panic:compress:1000")
	if err != nil || f.Mode != FaultPanic || f.Workload != "compress" || f.After != 1000 {
		t.Errorf("ParseFault(panic:compress:1000) = %+v, %v", f, err)
	}
	if f.String() != "panic:compress:1000" {
		t.Errorf("String() = %q", f.String())
	}
	f, err = ParseFault("wedge:eqntott")
	if err != nil || f.Mode != FaultWedge || f.After != 0 {
		t.Errorf("ParseFault(wedge:eqntott) = %+v, %v", f, err)
	}
	if f.String() != "wedge:eqntott" {
		t.Errorf("String() = %q", f.String())
	}
	for _, bad := range []string{"", "panic", "panic:", ":compress", "frob:compress", "panic:compress:xyz", "panic:compress:1:2", "wedge:compress:100"} {
		if _, err := ParseFault(bad); err == nil {
			t.Errorf("ParseFault(%q) accepted", bad)
		}
	}
}

// TestCellErrorsWalksJoinedTrees checks extraction through errors.Join and
// wrapping, with pointer dedup (one memoised failure surfacing twice).
func TestCellErrorsWalksJoinedTrees(t *testing.T) {
	ce1 := &CellError{Workload: "a", Err: errors.New("x")}
	ce2 := &CellError{Workload: "b", Err: errors.New("y")}
	tree := errors.Join(
		ce1,
		errors.New("unrelated"),
		errors.Join(ce2, ce1), // ce1 again: memoised failure shared by two experiments
	)
	got := CellErrors(tree)
	if len(got) != 2 || got[0] != ce1 || got[1] != ce2 {
		t.Errorf("CellErrors = %v, want [ce1 ce2] deduped in traversal order", got)
	}
	if CellErrors(nil) != nil {
		t.Error("CellErrors(nil) != nil")
	}
	if CellErrors(errors.New("plain")) != nil {
		t.Error("CellErrors on a plain error returned findings")
	}
}
