package experiments

import (
	"errors"
	"fmt"
	"strings"

	"portsim/internal/config"
	"portsim/internal/diag"
	"portsim/internal/workload"
)

// ErrCellPanic marks a CellError produced by containing a panic (as opposed
// to a simulation returning an ordinary error such as a watchdog stall).
var ErrCellPanic = errors.New("experiments: cell panicked")

// CellError is the structured failure of one experiment cell: everything
// needed to understand and reproduce it without re-running the whole suite.
// The runner converts both contained panics and simulation errors (deadline,
// watchdog stall) into CellErrors, so a failed campaign reports which
// (machine, workload) cell died, with what configuration, and what the
// pipeline was doing at the time.
type CellError struct {
	// Machine is the full configuration of the failed cell, as simulated
	// (fault knobs included), serialisable with Machine.ToJSON.
	Machine config.Machine
	// Workload is the workload (or mutated-profile) name.
	Workload string
	// Profile is set when the cell ran an ad-hoc mutated profile rather
	// than a named built-in workload (the kernel-intensity sweep); a repro
	// bundle needs it to rebuild the same stream.
	Profile *workload.Profile
	// Seed and Insts are the generator seed and instruction budget.
	Seed  int64
	Insts uint64
	// Stack is the contained panic's stack trace, empty for ordinary
	// simulation errors.
	Stack string
	// Events is the flight recorder's tail (oldest first), empty when the
	// recorder was disabled for the run.
	Events []diag.Event
	// Err is the underlying failure; it wraps ErrCellPanic for contained
	// panics and cpu.ErrStall / cpu.ErrDeadline for aborted simulations.
	Err error
}

// Error returns the one-line headline; Detail carries the forensics.
func (e *CellError) Error() string {
	name := e.Machine.Name
	if name == "" {
		name = "(unknown machine)"
	}
	w := e.Workload
	if w == "" {
		w = "(unknown workload)"
	}
	return fmt.Sprintf("cell %s on %s (seed %d, %d insts): %v", w, name, e.Seed, e.Insts, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is / errors.As.
func (e *CellError) Unwrap() error { return e.Err }

// Detail renders the full forensic report: headline, machine configuration
// JSON, the contained stack (if any), and the flight-recorder tail.
func (e *CellError) Detail() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CELL ERROR: %s\n", e.Error())
	if cfg, err := e.Machine.ToJSON(); err == nil {
		fmt.Fprintf(&b, "machine configuration:\n%s\n", cfg)
	} else {
		fmt.Fprintf(&b, "machine configuration unavailable: %v\n", err)
	}
	if e.Stack != "" {
		fmt.Fprintf(&b, "panic stack:\n%s\n", strings.TrimRight(e.Stack, "\n"))
	}
	b.WriteString(diag.FormatEvents(e.Events))
	return b.String()
}

// CellErrors walks an error tree (including errors.Join aggregates) and
// returns every CellError in it, in traversal order. Duplicate pointers —
// the same memoised cell failure surfacing through several experiments —
// appear once.
func CellErrors(err error) []*CellError {
	var (
		out  []*CellError
		seen = map[*CellError]bool{}
		walk func(error)
	)
	walk = func(err error) {
		if err == nil {
			return
		}
		if ce, ok := err.(*CellError); ok {
			if !seen[ce] {
				seen[ce] = true
				out = append(out, ce)
			}
			walk(ce.Err)
			return
		}
		switch x := err.(type) {
		case interface{ Unwrap() error }:
			walk(x.Unwrap())
		case interface{ Unwrap() []error }:
			for _, sub := range x.Unwrap() {
				walk(sub)
			}
		}
	}
	walk(err)
	return out
}
