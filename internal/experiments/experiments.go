// Package experiments implements the paper's evaluation: one function per
// reconstructed table or figure (see DESIGN.md's experiment index). Each
// experiment builds machine variants, runs every workload through the
// simulator, and renders a paper-style plain-text table plus typed rows for
// programmatic checks. cmd/portbench and the repository benchmarks are thin
// wrappers over this package.
//
// Experiments execute on the Runner's bounded worker pool: every (machine,
// workload) cell is submitted in the order the serial harness would have
// visited it, simulated concurrently, and consumed by submission index, so
// tables and geomeans are byte-identical at any parallelism level.
package experiments

import (
	"fmt"

	"portsim/internal/config"
	"portsim/internal/cpu"
	"portsim/internal/stats"
	"portsim/internal/workload"
)

// T1Baseline renders the baseline machine-parameter table (Table 1). It
// needs no simulation.
func T1Baseline() *stats.Table {
	m := config.Baseline()
	t := stats.NewTable("T1: baseline machine parameters", "parameter", "value")
	add := func(k string, v any) { t.AddRowf(k, v) }
	add("fetch/decode/issue/commit width", fmt.Sprintf("%d/%d/%d/%d",
		m.Core.FetchWidth, m.Core.DecodeWidth, m.Core.IssueWidth, m.Core.CommitWidth))
	add("reorder buffer", m.Core.ROBEntries)
	add("int/fp issue queues", fmt.Sprintf("%d/%d", m.Core.IntIQEntries, m.Core.FPIQEntries))
	add("load/store queues", fmt.Sprintf("%d/%d", m.Core.LoadQueueEntries, m.Core.StoreQueueEntries))
	add("int/fp physical registers", fmt.Sprintf("%d/%d", m.Core.IntPhysRegs, m.Core.FPPhysRegs))
	add("functional units (alu/muldiv/fpadd/fpmul)", fmt.Sprintf("%d/%d/%d/%d",
		m.Core.IntALUs, m.Core.IntMulDivs, m.Core.FPAdders, m.Core.FPMulDivs))
	add("memory ops issued per cycle", m.Core.MemIssuePerCycle)
	add("branch predictor", fmt.Sprintf("%s %d entries, %d-bit history", m.Pred.Kind, m.Pred.TableEntries, m.Pred.HistoryBits))
	add("BTB / RAS", fmt.Sprintf("%d-entry %d-way / %d-entry", m.Pred.BTBEntries, m.Pred.BTBAssoc, m.Pred.RASEntries))
	add("mispredict redirect penalty", m.Core.MispredictPenalty)
	add("L1I", fmt.Sprintf("%dKB %d-way %dB lines, %d cycle", m.L1I.SizeBytes>>10, m.L1I.Assoc, m.L1I.LineBytes, m.L1I.HitLatency))
	add("L1D", fmt.Sprintf("%dKB %d-way %dB lines, %d cycle, %d MSHRs", m.L1D.SizeBytes>>10, m.L1D.Assoc, m.L1D.LineBytes, m.L1D.HitLatency, m.L1D.MSHRs))
	add("L2", fmt.Sprintf("%dMB %d-way %dB lines, %d cycle", m.Mem.L2.SizeBytes>>20, m.Mem.L2.Assoc, m.Mem.L2.LineBytes, m.Mem.L2.HitLatency))
	add("memory latency / interval", fmt.Sprintf("%d / %d cycles", m.Mem.DRAMLatency, m.Mem.DRAMInterval))
	add("ITLB / DTLB", fmt.Sprintf("%d / %d entries, %dKB pages, %d-cycle walk",
		m.ITLB.Entries, m.DTLB.Entries, 1<<(m.DTLB.PageBits-10), m.DTLB.MissPenalty))
	add("L1D fill path", fmt.Sprintf("%d bytes/cycle", m.Ports.FillBytesPerCycle))
	add("baseline data-cache port", fmt.Sprintf("%d port x %d bytes, %d-entry store buffer",
		m.Ports.Count, m.Ports.WidthBytes, m.Ports.StoreBufferEntries))
	return t
}

// T2Row characterises one workload on the baseline machine.
type T2Row struct {
	Workload      string
	LoadFrac      float64
	StoreFrac     float64
	BranchFrac    float64
	KernelFrac    float64
	L1DMissRate   float64
	MispredictPct float64
	BaselineIPC   float64
}

// T2Characterisation measures the workload properties the study depends on
// (Table 2).
func T2Characterisation(r *Runner) ([]T2Row, *stats.Table, error) {
	t := stats.NewTable("T2: workload characterisation (baseline single-port machine)",
		"workload", "loads", "stores", "branches", "kernel", "L1D miss", "mispred", "IPC")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		cells = append(cells, r.runCell(config.Baseline(), w))
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []T2Row
	for i, w := range workloads {
		res := results[i]
		n := float64(res.Instructions)
		s := res.Counters
		row := T2Row{
			Workload:      w,
			LoadFrac:      stats.SafeRatio(float64(res.Loads), n),
			StoreFrac:     stats.SafeRatio(float64(res.Stores), n),
			BranchFrac:    stats.SafeRatio(float64(res.Branches), n),
			KernelFrac:    stats.SafeRatio(float64(res.KernelInsts), n),
			L1DMissRate:   stats.SafeRatio(float64(s.Get(stats.L1DMisses)), float64(s.Get(stats.L1DMisses)+s.Get(stats.L1DHits))),
			MispredictPct: stats.SafeRatio(float64(res.Mispredicts), float64(res.Branches)),
			BaselineIPC:   res.IPC,
		}
		rows = append(rows, row)
		t.AddRow(w, stats.Percent(row.LoadFrac), stats.Percent(row.StoreFrac),
			stats.Percent(row.BranchFrac), stats.Percent(row.KernelFrac),
			stats.Percent(row.L1DMissRate), stats.Percent(row.MispredictPct),
			stats.Cell(row.BaselineIPC))
	}
	return rows, t, nil
}

// F1Row holds one workload's IPC across port counts.
type F1Row struct {
	Workload string
	IPC      map[int]float64 // port count -> IPC
}

// F1PortCount measures IPC against the number of ideal cache ports
// (Figure 1): the motivation that a single port leaves performance behind.
func F1PortCount(r *Runner) ([]F1Row, *stats.Table, error) {
	counts := []int{1, 2, 4}
	t := stats.NewTable("F1: IPC vs number of cache ports",
		"workload", "1 port", "2 ports", "4 ports", "1p/2p")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		for _, n := range counts {
			m := config.Baseline()
			m.Name = fmt.Sprintf("%d-port", n)
			m.Ports.Count = n
			cells = append(cells, r.runCell(m, w))
		}
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []F1Row
	perCount := map[int][]*cpu.Result{}
	k := 0
	for _, w := range workloads {
		row := F1Row{Workload: w, IPC: map[int]float64{}}
		for _, n := range counts {
			res := results[k]
			k++
			row.IPC[n] = res.IPC
			perCount[n] = append(perCount[n], res)
		}
		rows = append(rows, row)
		t.AddRow(w, stats.Cell(row.IPC[1]), stats.Cell(row.IPC[2]), stats.Cell(row.IPC[4]),
			stats.Cell(stats.SafeRatio(row.IPC[1], row.IPC[2])))
	}
	g1, g2, g4 := geoMeanIPC(perCount[1]), geoMeanIPC(perCount[2]), geoMeanIPC(perCount[4])
	t.AddRow("geomean", stats.Cell(g1), stats.Cell(g2), stats.Cell(g4), stats.Cell(stats.SafeRatio(g1, g2)))
	return rows, t, nil
}

// F2Row holds the buffer-depth sweep for one workload.
type F2Row struct {
	Workload string
	IPC      map[int]float64 // store-buffer depth -> IPC
}

// F2Depths are the store-buffer depths swept by F2.
var F2Depths = []int{1, 2, 4, 8, 16, 32}

// F2BufferDepth sweeps the decoupling store-buffer depth on the single-port
// machine (Figure 2): deeper buffering smooths store bursts away from the
// port and then saturates.
func F2BufferDepth(r *Runner) ([]F2Row, *stats.Table, error) {
	header := []string{"workload"}
	for _, d := range F2Depths {
		header = append(header, fmt.Sprintf("sb=%d", d))
	}
	t := stats.NewTable("F2: single-port IPC vs store-buffer depth", header...)
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		for _, d := range F2Depths {
			m := config.Baseline()
			m.Name = fmt.Sprintf("sb-%d", d)
			m.Ports.StoreBufferEntries = d
			cells = append(cells, r.runCell(m, w))
		}
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []F2Row
	perDepth := map[int][]*cpu.Result{}
	k := 0
	for _, w := range workloads {
		row := F2Row{Workload: w, IPC: map[int]float64{}}
		rowCells := []string{w}
		for _, d := range F2Depths {
			res := results[k]
			k++
			row.IPC[d] = res.IPC
			perDepth[d] = append(perDepth[d], res)
			rowCells = append(rowCells, stats.Cell(res.IPC))
		}
		rows = append(rows, row)
		t.AddRow(rowCells...)
	}
	rowCells := []string{"geomean"}
	for _, d := range F2Depths {
		rowCells = append(rowCells, stats.Cell(geoMeanIPC(perDepth[d])))
	}
	t.AddRow(rowCells...)
	return rows, t, nil
}

// F3Row holds the naive-wide-port sweep for one workload.
type F3Row struct {
	Workload string
	IPC      map[int]float64 // port width -> IPC
}

// F3Widths are the port widths swept.
var F3Widths = []int{8, 16, 32}

// F3PortWidth widens the single port WITHOUT load-all line buffers or store
// combining (Figure 3). The expected result is the paper's motivating
// observation: width alone is wasted — scalar loads and stores cannot use
// the extra bytes, so the techniques of F4/F5 are needed to convert width
// into bandwidth.
func F3PortWidth(r *Runner) ([]F3Row, *stats.Table, error) {
	header := []string{"workload"}
	for _, wd := range F3Widths {
		header = append(header, fmt.Sprintf("%dB", wd))
	}
	t := stats.NewTable("F3: single-port IPC vs naive port width (no load-all, no combining)", header...)
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		for _, wd := range F3Widths {
			m := config.Baseline()
			m.Name = fmt.Sprintf("naive-%dB", wd)
			m.Ports.WidthBytes = wd
			cells = append(cells, r.runCell(m, w))
		}
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []F3Row
	k := 0
	for _, w := range workloads {
		row := F3Row{Workload: w, IPC: map[int]float64{}}
		rowCells := []string{w}
		for _, wd := range F3Widths {
			res := results[k]
			k++
			row.IPC[wd] = res.IPC
			rowCells = append(rowCells, stats.Cell(res.IPC))
		}
		rows = append(rows, row)
		t.AddRow(rowCells...)
	}
	return rows, t, nil
}

// F4Row holds the load-all sweep for one workload.
type F4Row struct {
	Workload string
	IPC      map[int]float64 // line-buffer count -> IPC
	HitRate  map[int]float64 // line-buffer count -> buffer hit rate
}

// F4Buffers are the line-buffer counts swept.
var F4Buffers = []int{0, 1, 2, 4, 8}

// F4LineBuffers enables the load-all policy on a single 32-byte port and
// sweeps the number of line buffers (Figure 4).
func F4LineBuffers(r *Runner) ([]F4Row, *stats.Table, error) {
	header := []string{"workload"}
	for _, n := range F4Buffers {
		header = append(header, fmt.Sprintf("lb=%d", n), "hit")
	}
	t := stats.NewTable("F4: load-all line buffers on a single 32B port (IPC and buffer hit rate)", header...)
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		for _, n := range F4Buffers {
			m := config.Baseline()
			m.Name = fmt.Sprintf("loadall-%d", n)
			m.Ports.WidthBytes = 32
			m.Ports.LineBuffers = n
			cells = append(cells, r.runCell(m, w))
		}
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []F4Row
	k := 0
	for _, w := range workloads {
		row := F4Row{Workload: w, IPC: map[int]float64{}, HitRate: map[int]float64{}}
		rowCells := []string{w}
		for _, n := range F4Buffers {
			res := results[k]
			k++
			s := res.Counters
			served := s.Get(stats.PortLoadsFromLineBuffer)
			row.IPC[n] = res.IPC
			row.HitRate[n] = stats.SafeRatio(float64(served), float64(res.Loads))
			rowCells = append(rowCells, stats.Cell(res.IPC), stats.Percent(row.HitRate[n]))
		}
		rows = append(rows, row)
		t.AddRow(rowCells...)
	}
	return rows, t, nil
}

// F5Row holds the store-combining comparison for one workload.
type F5Row struct {
	Workload       string
	IPCOff, IPCOn  map[int]float64 // depth -> IPC
	StoresPerDrain map[int]float64 // depth -> program stores per port write (combining on)
}

// F5Depths are the buffer depths compared with combining on and off.
var F5Depths = []int{8, 16}

// F5StoreCombining measures store combining on a single 32-byte port
// (Figure 5): IPC and the number of program stores retired per port write.
func F5StoreCombining(r *Runner) ([]F5Row, *stats.Table, error) {
	t := stats.NewTable("F5: store combining on a single 32B port",
		"workload", "off sb=8", "on sb=8", "off sb=16", "on sb=16", "stores/drain (on,16)")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		for _, d := range F5Depths {
			for _, comb := range []bool{false, true} {
				m := config.Baseline()
				m.Name = fmt.Sprintf("comb-%v-%d", comb, d)
				m.Ports.WidthBytes = 32
				m.Ports.StoreBufferEntries = d
				m.Ports.StoreCombining = comb
				cells = append(cells, r.runCell(m, w))
			}
		}
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []F5Row
	k := 0
	for _, w := range workloads {
		row := F5Row{Workload: w, IPCOff: map[int]float64{}, IPCOn: map[int]float64{}, StoresPerDrain: map[int]float64{}}
		for _, d := range F5Depths {
			for _, comb := range []bool{false, true} {
				res := results[k]
				k++
				if comb {
					row.IPCOn[d] = res.IPC
					s := res.Counters
					if drains := s.Get(stats.PortSBDrains); drains > 0 {
						row.StoresPerDrain[d] = stats.SafeRatio(float64(s.Get(stats.PortSBInserts)), float64(drains))
					}
				} else {
					row.IPCOff[d] = res.IPC
				}
			}
		}
		rows = append(rows, row)
		t.AddRow(w, stats.Cell(row.IPCOff[8]), stats.Cell(row.IPCOn[8]),
			stats.Cell(row.IPCOff[16]), stats.Cell(row.IPCOn[16]),
			stats.Cell(row.StoresPerDrain[16]))
	}
	return rows, t, nil
}

// F6Row is the headline comparison for one workload.
type F6Row struct {
	Workload   string
	SingleIPC  float64 // plain single port
	BestIPC    float64 // single wide port + buffering + load-all + combining
	DualIPC    float64 // dual-ported reference
	BestOfDual float64 // BestIPC / DualIPC
}

// F6Headline reproduces the paper's headline result (Figure 6): the
// technique-equipped single-ported cache against the dual-ported reference.
// The paper reports 91%; EXPERIMENTS.md records the measured ratio.
func F6Headline(r *Runner) ([]F6Row, *stats.Table, error) {
	t := stats.NewTable("F6: headline — single port + techniques vs dual port",
		"workload", "single", "best-single", "dual", "single/dual", "best/dual")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		cells = append(cells,
			r.runCell(config.Baseline(), w),
			r.runCell(config.BestSingle(), w),
			r.runCell(config.DualPort(), w))
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []F6Row
	var singles, bests, duals []*cpu.Result
	for i, w := range workloads {
		s, b, d := results[3*i], results[3*i+1], results[3*i+2]
		row := F6Row{Workload: w, SingleIPC: s.IPC, BestIPC: b.IPC, DualIPC: d.IPC,
			BestOfDual: stats.SafeRatio(b.IPC, d.IPC)}
		rows = append(rows, row)
		singles, bests, duals = append(singles, s), append(bests, b), append(duals, d)
		t.AddRow(w, stats.Cell(s.IPC), stats.Cell(b.IPC), stats.Cell(d.IPC),
			stats.Percent(stats.SafeRatio(s.IPC, d.IPC)), stats.Percent(row.BestOfDual))
	}
	gs, gb, gd := geoMeanIPC(singles), geoMeanIPC(bests), geoMeanIPC(duals)
	t.AddRow("geomean", stats.Cell(gs), stats.Cell(gb), stats.Cell(gd),
		stats.Percent(stats.SafeRatio(gs, gd)), stats.Percent(stats.SafeRatio(gb, gd)))
	return rows, t, nil
}

// T3Row is the port-utilisation accounting for one workload on the
// best-single machine.
type T3Row struct {
	Workload        string
	LoadsFromCache  float64
	LoadsFromLB     float64
	LoadsFromSB     float64
	StoresPerDrain  float64
	PortUtilisation float64
	RefillShare     float64 // fraction of port grants consumed by refills
}

// T3PortUtilisation accounts for where the best-single machine's loads come
// from and what occupies its one port (Table 3).
func T3PortUtilisation(r *Runner) ([]T3Row, *stats.Table, error) {
	t := stats.NewTable("T3: best-single port accounting",
		"workload", "loads cache", "loads line-buf", "loads store-buf", "stores/drain", "port util", "refill share")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		cells = append(cells, r.runCell(config.BestSingle(), w))
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []T3Row
	for i, w := range workloads {
		res := results[i]
		s := res.Counters
		loads := float64(res.Loads)
		grants := float64(s.Get(stats.PortGrants))
		row := T3Row{
			Workload:        w,
			LoadsFromCache:  stats.SafeRatio(float64(s.Get(stats.PortLoadsFromCache)), loads),
			LoadsFromLB:     stats.SafeRatio(float64(s.Get(stats.PortLoadsFromLineBuffer)), loads),
			LoadsFromSB:     stats.SafeRatio(float64(s.Get(stats.PortLoadsFromStoreBuffer)), loads),
			PortUtilisation: stats.SafeRatio(grants, float64(s.Get(stats.PortCycles))),
			RefillShare:     stats.SafeRatio(float64(s.Get(stats.PortRefillCycles)), grants),
		}
		if drains := s.Get(stats.PortSBDrains); drains > 0 {
			row.StoresPerDrain = stats.SafeRatio(float64(s.Get(stats.PortSBInserts)), float64(drains))
		}
		rows = append(rows, row)
		t.AddRow(w, stats.Percent(row.LoadsFromCache), stats.Percent(row.LoadsFromLB),
			stats.Percent(row.LoadsFromSB), stats.Cell(row.StoresPerDrain),
			stats.Percent(row.PortUtilisation), stats.Percent(row.RefillShare))
	}
	return rows, t, nil
}

// F7Row holds one kernel-intensity point.
type F7Row struct {
	Label         string
	KernelFrac    float64
	SingleIPC     float64
	BestIPC       float64
	DualIPC       float64
	TechniqueGain float64 // BestIPC / SingleIPC
	GapRecovered  float64 // (Best-Single)/(Dual-Single)
}

// F7KernelIntensity varies the OS intensity of the database workload and
// measures how much the techniques recover at each level (Figure 7). The
// expected shape: kernel episodes disrupt spatial locality and thrash the
// line buffers, so the techniques help least at the highest OS intensity.
func F7KernelIntensity(r *Runner) ([]F7Row, *stats.Table, error) {
	base, ok := workload.ByName("database")
	if !ok {
		return nil, nil, fmt.Errorf("experiments: database workload missing")
	}
	points := []struct {
		label string
		every int // kernel entry cadence; 0 disables
	}{
		{"none", 0},
		{"low", 16000},
		{"medium", 4000},
		{"high", 1200},
	}
	t := stats.NewTable("F7: technique gain vs kernel intensity (database workload)",
		"intensity", "kernel frac", "single", "best-single", "dual", "best/single", "gap recovered")
	machines := []config.Machine{config.Baseline(), config.BestSingle(), config.DualPort()}
	var cells []cell
	for _, pt := range points {
		prof := base
		prof.Name = "database-k-" + pt.label
		if pt.every == 0 {
			prof.Kernel = workload.KernelSpec{}
		} else {
			prof.Kernel.EveryMean = pt.every
		}
		for _, m := range machines {
			cells = append(cells, func() (*cpu.Result, error) { return r.runProfile(m, prof) })
		}
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []F7Row
	for i, pt := range points {
		single, best, dual := results[3*i], results[3*i+1], results[3*i+2]
		row := F7Row{
			Label:         pt.label,
			KernelFrac:    stats.SafeRatio(float64(single.KernelInsts), float64(single.Instructions)),
			SingleIPC:     single.IPC,
			BestIPC:       best.IPC,
			DualIPC:       dual.IPC,
			TechniqueGain: stats.SafeRatio(best.IPC, single.IPC),
		}
		if gap := dual.IPC - single.IPC; gap > 0 {
			row.GapRecovered = (best.IPC - single.IPC) / gap
		}
		rows = append(rows, row)
		t.AddRow(pt.label, stats.Percent(row.KernelFrac), stats.Cell(row.SingleIPC),
			stats.Cell(row.BestIPC), stats.Cell(row.DualIPC), stats.Cell(row.TechniqueGain),
			stats.Percent(row.GapRecovered))
	}
	return rows, t, nil
}

// A1Row is one ablation configuration's geomean IPC.
type A1Row struct {
	Label   string
	Geomean float64
	OfDual  float64
}

// A1Ablation isolates each technique on the single-port machine (the
// design-choice ablation DESIGN.md calls out): deep buffering alone,
// combining alone, load-all alone, and all combined, against the plain
// single port and the dual-ported reference.
func A1Ablation(r *Runner) ([]A1Row, *stats.Table, error) {
	single := config.Baseline()

	buffered := config.Baseline()
	buffered.Name = "buffered"
	buffered.Ports.StoreBufferEntries = 16

	combining := config.Baseline()
	combining.Name = "combining"
	combining.Ports.WidthBytes = 32
	combining.Ports.StoreBufferEntries = 16
	combining.Ports.StoreCombining = true

	loadall := config.Baseline()
	loadall.Name = "load-all"
	loadall.Ports.WidthBytes = 32
	loadall.Ports.LineBuffers = 4

	configs := []struct {
		label string
		m     config.Machine
	}{
		{"single (none)", single},
		{"+ deep store buffer", buffered},
		{"+ combining (wide)", combining},
		{"+ load-all (wide)", loadall},
		{"all techniques", config.BestSingle()},
		{"dual port", config.DualPort()},
	}
	workloads := r.Spec().Workloads
	// Dual first, for the ratio column; duplicate cells join the in-flight
	// or memoised simulation, so the extra submission is free.
	var cells []cell
	for _, w := range workloads {
		cells = append(cells, r.runCell(config.DualPort(), w))
	}
	for _, cfg := range configs {
		for _, w := range workloads {
			cells = append(cells, r.runCell(cfg.m, w))
		}
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	dualGeo := geoMeanIPC(results[:len(workloads)])
	t := stats.NewTable("A1: technique ablation (geomean IPC over all workloads)",
		"configuration", "geomean IPC", "of dual")
	var rows []A1Row
	k := len(workloads)
	for _, cfg := range configs {
		g := geoMeanIPC(results[k : k+len(workloads)])
		k += len(workloads)
		row := A1Row{Label: cfg.label, Geomean: g, OfDual: stats.SafeRatio(g, dualGeo)}
		rows = append(rows, row)
		t.AddRow(cfg.label, stats.Cell(g), stats.Percent(row.OfDual))
	}
	return rows, t, nil
}

// A2Row is one configuration of the banking comparison.
type A2Row struct {
	Label   string
	Geomean float64
	OfDual  float64
}

// A2Banking compares line-interleaved banking — the classic cheap
// alternative to true multi-porting — against the paper's techniques and
// the dual-ported reference (extension experiment; see DESIGN.md). Expected
// shape: banking recovers much of the dual-port gap because most concurrent
// accesses hit distinct lines, but same-line bursts (exactly the spatial
// locality load-all exploits) still conflict.
func A2Banking(r *Runner) ([]A2Row, *stats.Table, error) {
	configs := []struct {
		label string
		m     config.Machine
	}{
		{"single port", config.Baseline()},
		{"2 banks", config.Banked(2)},
		{"4 banks", config.Banked(4)},
		{"8 banks", config.Banked(8)},
		{"best-single (techniques)", config.BestSingle()},
		{"dual port", config.DualPort()},
	}
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		cells = append(cells, r.runCell(config.DualPort(), w))
	}
	for _, cfg := range configs {
		for _, w := range workloads {
			cells = append(cells, r.runCell(cfg.m, w))
		}
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	dualGeo := geoMeanIPC(results[:len(workloads)])
	t := stats.NewTable("A2: banking vs multi-porting vs the paper's techniques (geomean IPC)",
		"configuration", "geomean IPC", "of dual")
	var rows []A2Row
	k := len(workloads)
	for _, cfg := range configs {
		g := geoMeanIPC(results[k : k+len(workloads)])
		k += len(workloads)
		row := A2Row{Label: cfg.label, Geomean: g, OfDual: stats.SafeRatio(g, dualGeo)}
		rows = append(rows, row)
		t.AddRow(cfg.label, stats.Cell(g), stats.Percent(row.OfDual))
	}
	return rows, t, nil
}

// A3Row is one prefetch configuration's result for one workload.
type A3Row struct {
	Workload  string
	BaseIPC   float64 // single port, no prefetch
	PfIPC     float64 // single port, next-line prefetch
	BestPfIPC float64 // best-single plus prefetch
	Accuracy  float64 // useful prefetches / prefetches issued (single port)
}

// A3Prefetch measures next-line prefetching on the single-ported machine
// (extension experiment): prefetch probes ride in idle port slots, so the
// benefit of prefetching is itself gated by port bandwidth — streaming
// workloads gain, pointer-chasing ones see mostly wasted fills.
func A3Prefetch(r *Runner) ([]A3Row, *stats.Table, error) {
	pf := config.Baseline()
	pf.Name = "prefetch"
	pf.Ports.PrefetchNextLine = true
	pf.Ports.PrefetchDegree = 1

	bestPf := config.BestSingle()
	bestPf.Name = "best-prefetch"
	bestPf.Ports.PrefetchNextLine = true
	bestPf.Ports.PrefetchDegree = 1

	t := stats.NewTable("A3: next-line prefetching through idle port slots",
		"workload", "single", "single+pf", "best+pf", "pf accuracy")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		cells = append(cells,
			r.runCell(config.Baseline(), w),
			r.runCell(pf, w),
			r.runCell(bestPf, w))
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []A3Row
	for i, w := range workloads {
		base, withPf, best := results[3*i], results[3*i+1], results[3*i+2]
		s := withPf.Counters
		row := A3Row{Workload: w, BaseIPC: base.IPC, PfIPC: withPf.IPC, BestPfIPC: best.IPC}
		if issued := s.Get(stats.PortPrefetches); issued > 0 {
			row.Accuracy = stats.SafeRatio(float64(s.Get(stats.PortUsefulPrefetches)), float64(issued))
		}
		rows = append(rows, row)
		t.AddRow(w, stats.Cell(row.BaseIPC), stats.Cell(row.PfIPC), stats.Cell(row.BestPfIPC),
			stats.Percent(row.Accuracy))
	}
	return rows, t, nil
}

// A4Row is the disambiguation comparison for one workload.
type A4Row struct {
	Workload        string
	Conservative    float64 // IPC with R10000-style conservative disambiguation
	Speculative     float64 // IPC with memory-dependence speculation
	ViolationsPerKI float64
}

// A4MemSpeculation compares conservative load/store disambiguation (loads
// wait for every older store address) against memory-dependence speculation
// (loads issue past unknown stores and squash on a real conflict) on the
// single-ported baseline (extension experiment).
func A4MemSpeculation(r *Runner) ([]A4Row, *stats.Table, error) {
	spec := config.Baseline()
	spec.Name = "mem-speculation"
	spec.Core.SpeculativeLoads = true
	spec.Core.ViolationPenalty = 8

	t := stats.NewTable("A4: conservative vs speculative memory disambiguation (single port)",
		"workload", "conservative", "speculative", "speedup", "violations/kI")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		cells = append(cells,
			r.runCell(config.Baseline(), w),
			r.runCell(spec, w))
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []A4Row
	for i, w := range workloads {
		cons, sp := results[2*i], results[2*i+1]
		row := A4Row{
			Workload:        w,
			Conservative:    cons.IPC,
			Speculative:     sp.IPC,
			ViolationsPerKI: stats.SafeRatio(1000*float64(sp.Counters.Get(stats.LSQViolations)), float64(sp.Instructions)),
		}
		rows = append(rows, row)
		t.AddRow(w, stats.Cell(row.Conservative), stats.Cell(row.Speculative),
			stats.Cell(stats.SafeRatio(row.Speculative, row.Conservative)), stats.Cell(row.ViolationsPerKI))
	}
	return rows, t, nil
}

// A5Row compares write policies for one workload.
type A5Row struct {
	Workload    string
	WBPlain     float64 // write-back, no combining (the baseline policy)
	WTPlain     float64 // write-through, no combining
	WTCombining float64 // write-through with the combining buffer
	WTDRAMPerKI float64 // DRAM accesses per 1000 instructions, WT plain
	WBDRAMPerKI float64
}

// A5WritePolicy contrasts write-back against write-through/no-allocate on
// the single-ported machine (extension experiment). Write-through multiplies
// the store traffic reaching the L2 — the design point where combining write
// buffers were historically indispensable — so the expected shape is:
// write-back >= write-through, with combining recovering part of the
// write-through loss.
func A5WritePolicy(r *Runner) ([]A5Row, *stats.Table, error) {
	wt := config.Baseline()
	wt.Name = "write-through"
	wt.L1D.WriteThrough = true

	wtc := config.Baseline()
	wtc.Name = "write-through-combining"
	wtc.L1D.WriteThrough = true
	wtc.Ports.WidthBytes = 32
	wtc.Ports.StoreBufferEntries = 16
	wtc.Ports.StoreCombining = true

	t := stats.NewTable("A5: write-back vs write-through/no-allocate (single port)",
		"workload", "write-back", "write-through", "WT+combining", "WB dram/kI", "WT dram/kI")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		cells = append(cells,
			r.runCell(config.Baseline(), w),
			r.runCell(wt, w),
			r.runCell(wtc, w))
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []A5Row
	for i, w := range workloads {
		wb, plain, comb := results[3*i], results[3*i+1], results[3*i+2]
		row := A5Row{
			Workload:    w,
			WBPlain:     wb.IPC,
			WTPlain:     plain.IPC,
			WTCombining: comb.IPC,
			WBDRAMPerKI: stats.SafeRatio(1000*float64(wb.Counters.Get(stats.DRAMAccesses)), float64(wb.Instructions)),
			WTDRAMPerKI: stats.SafeRatio(1000*float64(plain.Counters.Get(stats.DRAMAccesses)), float64(plain.Instructions)),
		}
		rows = append(rows, row)
		t.AddRow(w, stats.Cell(row.WBPlain), stats.Cell(row.WTPlain), stats.Cell(row.WTCombining),
			stats.Cell(row.WBDRAMPerKI), stats.Cell(row.WTDRAMPerKI))
	}
	return rows, t, nil
}

// A6Row is one multiprogramming level's result.
type A6Row struct {
	Processes  int
	SingleIPC  float64
	BestIPC    float64
	DualIPC    float64
	L1DMiss    float64 // single-port L1D miss rate
	DTLBMissKI float64 // single-port DTLB misses per 1000 instructions
}

// A6Multiprogramming sweeps the multiprogramming level of the compress
// workload (extension experiment): context switches between disjoint
// address spaces cold-start the caches and TLBs, shifting the machine from
// a port-bound to a miss-bound regime and shrinking what the port
// techniques can recover — the same direction as F7's kernel-intensity
// result, by a different mechanism.
func A6Multiprogramming(r *Runner) ([]A6Row, *stats.Table, error) {
	prof, ok := workload.ByName("compress")
	if !ok {
		return nil, nil, fmt.Errorf("experiments: compress workload missing")
	}
	const quantum = 5000
	t := stats.NewTable("A6: multiprogramming level (compress, 5k-instruction quanta)",
		"processes", "single", "best-single", "dual", "L1D miss", "dtlb miss/kI")
	levels := []int{1, 2, 4, 8}
	machines := []config.Machine{config.Baseline(), config.BestSingle(), config.DualPort()}
	var cells []cell
	for _, n := range levels {
		for _, m := range machines {
			cells = append(cells, func() (*cpu.Result, error) {
				return r.runMultiprogram(m, prof, n, quantum, fmt.Sprintf("compress-x%d", n))
			})
		}
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []A6Row
	for i, n := range levels {
		single, best, dual := results[3*i], results[3*i+1], results[3*i+2]
		s := single.Counters
		row := A6Row{
			Processes:  n,
			SingleIPC:  single.IPC,
			BestIPC:    best.IPC,
			DualIPC:    dual.IPC,
			L1DMiss:    stats.SafeRatio(float64(s.Get(stats.L1DMisses)), float64(s.Get(stats.L1DMisses)+s.Get(stats.L1DHits))),
			DTLBMissKI: stats.SafeRatio(1000*float64(s.Get(stats.DTLBMisses)), float64(single.Instructions)),
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprint(n), stats.Cell(row.SingleIPC), stats.Cell(row.BestIPC),
			stats.Cell(row.DualIPC), stats.Percent(row.L1DMiss), stats.Cell(row.DTLBMissKI))
	}
	return rows, t, nil
}

// A7Row compares arbitration policies for one workload.
type A7Row struct {
	Workload    string
	LoadsFirst  float64
	StoresFirst float64
}

// A7ArbitrationPolicy compares load-priority port arbitration (the paper's
// choice) against store-priority on the single-ported machine (extension
// experiment). Loads sit on the critical dependence path while committed
// stores are already architecturally done, so loads-first should win.
func A7ArbitrationPolicy(r *Runner) ([]A7Row, *stats.Table, error) {
	sf := config.Baseline()
	sf.Name = "stores-first"
	sf.Ports.StoresFirst = true

	t := stats.NewTable("A7: port arbitration — loads-first vs stores-first (single port)",
		"workload", "loads-first", "stores-first", "ratio")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		cells = append(cells,
			r.runCell(config.Baseline(), w),
			r.runCell(sf, w))
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []A7Row
	for i, w := range workloads {
		lf, s := results[2*i], results[2*i+1]
		row := A7Row{Workload: w, LoadsFirst: lf.IPC, StoresFirst: s.IPC}
		rows = append(rows, row)
		t.AddRow(w, stats.Cell(row.LoadsFirst), stats.Cell(row.StoresFirst),
			stats.Cell(stats.SafeRatio(row.StoresFirst, row.LoadsFirst)))
	}
	return rows, t, nil
}

// T4Row is the per-cycle grant distribution of one machine on one workload.
type T4Row struct {
	Machine  string
	Workload string
	// Frac[k] is the fraction of cycles with exactly k port grants.
	Frac []float64
}

// T4GrantDistribution shows how many port slots each cycle actually uses on
// the single-, best- and dual-ported machines (Table 4): the burstiness
// that makes the second port valuable is visible as the mass at the maximum
// grant count.
func T4GrantDistribution(r *Runner) ([]T4Row, *stats.Table, error) {
	machines := []config.Machine{config.Baseline(), config.BestSingle(), config.DualPort()}
	t := stats.NewTable("T4: per-cycle port-grant distribution",
		"machine", "workload", "0 grants", "1 grant", "2 grants")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, m := range machines {
		for _, w := range workloads {
			cells = append(cells, r.runCell(m, w))
		}
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []T4Row
	k := 0
	for _, m := range machines {
		maxG := m.Ports.Count
		for _, w := range workloads {
			res := results[k]
			k++
			s := res.Counters
			cycles := float64(s.Get(stats.PortCycles))
			row := T4Row{Machine: m.Name, Workload: w}
			rowCells := []string{m.Name, w}
			for g := 0; g <= 2; g++ {
				frac := 0.0
				if g <= maxG {
					frac = stats.SafeRatio(float64(s.Get(stats.GrantBucket(g))), cycles)
				}
				row.Frac = append(row.Frac, frac)
				if g <= maxG {
					rowCells = append(rowCells, stats.Percent(frac))
				} else {
					rowCells = append(rowCells, "-")
				}
			}
			rows = append(rows, row)
			t.AddRow(rowCells...)
		}
	}
	return rows, t, nil
}

// A8Row compares idealised vs wrong-path-polluting fetch for one workload.
type A8Row struct {
	Workload      string
	IdealIPC      float64
	PollutedIPC   float64
	ExtraL1IPerKI float64 // additional L1I misses per 1000 instructions
}

// A8WrongPathFetch turns on wrong-path instruction fetching during branch
// resolution (extension experiment): the front end keeps pulling the
// predicted-but-wrong path into the L1I. The effect cuts both ways —
// pollution costs misses, but wrong and correct paths often reconverge, so
// the wrong-path lines act as accidental instruction prefetch; the net IPC
// effect is small while the extra cache traffic is real.
func A8WrongPathFetch(r *Runner) ([]A8Row, *stats.Table, error) {
	wp := config.Baseline()
	wp.Name = "wrong-path-fetch"
	wp.Core.WrongPathFetch = true

	t := stats.NewTable("A8: idealised vs wrong-path-polluting fetch (single port)",
		"workload", "idealised", "wrong-path", "ratio", "extra L1I miss/kI")
	workloads := r.Spec().Workloads
	var cells []cell
	for _, w := range workloads {
		cells = append(cells,
			r.runCell(config.Baseline(), w),
			r.runCell(wp, w))
	}
	results, err := r.runAll(cells)
	if err != nil {
		return nil, nil, err
	}
	var rows []A8Row
	for i, w := range workloads {
		ideal, pol := results[2*i], results[2*i+1]
		row := A8Row{
			Workload:    w,
			IdealIPC:    ideal.IPC,
			PollutedIPC: pol.IPC,
			ExtraL1IPerKI: stats.SafeRatio(
				1000*(float64(pol.Counters.Get(stats.L1IMisses))-float64(ideal.Counters.Get(stats.L1IMisses))),
				float64(pol.Instructions)),
		}
		rows = append(rows, row)
		t.AddRow(w, stats.Cell(row.IdealIPC), stats.Cell(row.PollutedIPC),
			stats.Cell(stats.SafeRatio(row.PollutedIPC, row.IdealIPC)), stats.Cell(row.ExtraL1IPerKI))
	}
	return rows, t, nil
}
