package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"portsim/internal/config"
	"portsim/internal/cpu"
)

// equivSpec is small enough to run the comparison grid three times over.
func equivSpec(parallel int) Spec {
	spec := QuickSpec()
	spec.Insts = 10_000
	spec.Parallel = parallel
	return spec
}

// suiteSnapshot runs a representative slice of the suite — memoised cells
// (T2, F1, F6), profile cells (F7) and stream cells (A6) — and captures both
// the rendered text and the typed rows.
type suiteSnapshot struct {
	text string
	t2   []T2Row
	f1   []F1Row
	f6   []F6Row
	f7   []F7Row
	a6   []A6Row
}

func snapshotSuite(t *testing.T, parallel int) suiteSnapshot {
	t.Helper()
	r := NewRunner(equivSpec(parallel))
	var b strings.Builder
	snap := suiteSnapshot{}
	var err error
	var table interface{ String() string }
	if snap.t2, table, err = T2Characterisation(r); err != nil {
		t.Fatalf("parallel=%d T2: %v", parallel, err)
	}
	b.WriteString(table.String())
	if snap.f1, table, err = F1PortCount(r); err != nil {
		t.Fatalf("parallel=%d F1: %v", parallel, err)
	}
	b.WriteString(table.String())
	if snap.f6, table, err = F6Headline(r); err != nil {
		t.Fatalf("parallel=%d F6: %v", parallel, err)
	}
	b.WriteString(table.String())
	if snap.f7, table, err = F7KernelIntensity(r); err != nil {
		t.Fatalf("parallel=%d F7: %v", parallel, err)
	}
	b.WriteString(table.String())
	if snap.a6, table, err = A6Multiprogramming(r); err != nil {
		t.Fatalf("parallel=%d A6: %v", parallel, err)
	}
	b.WriteString(table.String())
	snap.text = b.String()
	return snap
}

// TestSerialParallelEquivalence is the determinism guarantee: the rendered
// tables and the typed rows must be byte- and bit-identical whether cells
// run one at a time or eight at a time.
func TestSerialParallelEquivalence(t *testing.T) {
	serial := snapshotSuite(t, 1)
	for _, p := range []int{4, 8} {
		par := snapshotSuite(t, p)
		if par.text != serial.text {
			t.Errorf("parallel=%d table text diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				p, serial.text, par.text)
		}
		if !reflect.DeepEqual(par.t2, serial.t2) {
			t.Errorf("parallel=%d T2 rows diverged", p)
		}
		if !reflect.DeepEqual(par.f1, serial.f1) {
			t.Errorf("parallel=%d F1 rows diverged", p)
		}
		if !reflect.DeepEqual(par.f6, serial.f6) {
			t.Errorf("parallel=%d F6 rows diverged", p)
		}
		if !reflect.DeepEqual(par.f7, serial.f7) {
			t.Errorf("parallel=%d F7 rows diverged", p)
		}
		if !reflect.DeepEqual(par.a6, serial.a6) {
			t.Errorf("parallel=%d A6 rows diverged", p)
		}
	}
}

// TestMemoCacheSingleflight hammers the shared memo cache with duplicate
// configurations from many goroutines: every caller must get the same
// result object, and exactly one simulation may actually execute per
// distinct configuration. Run under -race this is the memo-cache race test.
func TestMemoCacheSingleflight(t *testing.T) {
	spec := QuickSpec()
	spec.Insts = 3_000
	spec.Parallel = 8
	r := NewRunner(spec)

	const callers = 32
	baseline := make([]*cpu.Result, callers)
	dual := make([]*cpu.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(config.Baseline(), "compress")
			if err != nil {
				t.Errorf("caller %d baseline: %v", i, err)
				return
			}
			baseline[i] = res
			res, err = r.Run(config.DualPort(), "compress")
			if err != nil {
				t.Errorf("caller %d dual: %v", i, err)
				return
			}
			dual[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if baseline[i] != baseline[0] {
			t.Fatalf("caller %d got a different baseline result object; duplicate simulation ran", i)
		}
		if dual[i] != dual[0] {
			t.Fatalf("caller %d got a different dual result object; duplicate simulation ran", i)
		}
	}
	if baseline[0] == dual[0] {
		t.Fatal("distinct machines shared a memo entry")
	}
	// Exactly two simulations executed: the accumulators must hold exactly
	// their combined committed instructions, not 32x.
	want := baseline[0].Instructions + dual[0].Instructions
	if got := r.SimulatedInstructions(); got != want {
		t.Errorf("accumulated %d instructions, want %d (exactly two simulations)", got, want)
	}
}

// TestRunAllPreservesSubmissionOrder checks the merge layer directly with
// synthetic cells.
func TestRunAllPreservesSubmissionOrder(t *testing.T) {
	r := NewRunner(Spec{Workloads: []string{"compress"}, Insts: 1, Seed: 1, Parallel: 8})
	const n = 100
	cells := make([]cell, n)
	for i := 0; i < n; i++ {
		res := &cpu.Result{Instructions: uint64(i)}
		cells[i] = func() (*cpu.Result, error) { return res, nil }
	}
	results, err := r.runAll(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("%d results for %d cells", len(results), n)
	}
	for i, res := range results {
		if res.Instructions != uint64(i) {
			t.Fatalf("result %d carries payload %d; order not preserved", i, res.Instructions)
		}
	}
}

// TestRunAllRunsToCompletion checks the crash-containment batch contract:
// a failing cell must not abandon the rest of the batch. Every cell runs,
// the failure is surfaced in the aggregated error, and the healthy cells'
// results come back alongside it so callers can render a partial table.
func TestRunAllRunsToCompletion(t *testing.T) {
	r := NewRunner(Spec{Workloads: []string{"compress"}, Insts: 1, Seed: 1, Parallel: 1})
	var ran []int
	cells := []cell{
		func() (*cpu.Result, error) { ran = append(ran, 0); return &cpu.Result{Instructions: 10}, nil },
		func() (*cpu.Result, error) { ran = append(ran, 1); return nil, fmt.Errorf("cell 1 exploded") },
		func() (*cpu.Result, error) { ran = append(ran, 2); return &cpu.Result{Instructions: 30}, nil },
	}
	results, err := r.runAll(cells)
	if err == nil || !strings.Contains(err.Error(), "cell 1 exploded") {
		t.Fatalf("err = %v, want the cell failure", err)
	}
	// With one worker, execution is in order and continues past the failure.
	if !reflect.DeepEqual(ran, []int{0, 1, 2}) {
		t.Errorf("cells run = %v, want all three despite the failure", ran)
	}
	if len(results) != 3 {
		t.Fatalf("%d results for 3 cells", len(results))
	}
	if results[0] == nil || results[0].Instructions != 10 {
		t.Errorf("healthy cell 0 result missing from failed batch: %v", results[0])
	}
	if results[1] != nil {
		t.Errorf("failed cell 1 produced a result: %v", results[1])
	}
	if results[2] == nil || results[2].Instructions != 30 {
		t.Errorf("healthy cell 2 result missing from failed batch: %v", results[2])
	}
}

// TestRunAllContainsCellPanic checks the pool's last line of defence: a
// panic inside a cell closure becomes a CellError instead of killing the
// process, and the other cells still complete.
func TestRunAllContainsCellPanic(t *testing.T) {
	r := NewRunner(Spec{Workloads: []string{"compress"}, Insts: 1, Seed: 1, Parallel: 2})
	cells := []cell{
		func() (*cpu.Result, error) { return &cpu.Result{Instructions: 10}, nil },
		func() (*cpu.Result, error) { panic("synthetic cell panic") },
		func() (*cpu.Result, error) { return &cpu.Result{Instructions: 30}, nil },
	}
	results, err := r.runAll(cells)
	if err == nil || !errors.Is(err, ErrCellPanic) {
		t.Fatalf("err = %v, want ErrCellPanic", err)
	}
	ces := CellErrors(err)
	if len(ces) != 1 {
		t.Fatalf("%d CellErrors, want exactly 1", len(ces))
	}
	if !strings.Contains(ces[0].Error(), "synthetic cell panic") {
		t.Errorf("CellError %q does not name the panic value", ces[0].Error())
	}
	if ces[0].Stack == "" {
		t.Error("contained panic carries no stack trace")
	}
	if results[0] == nil || results[2] == nil {
		t.Errorf("healthy cells lost: results = %v", results)
	}
}

// TestExperimentErrorPropagates drives the error path end to end: an
// unknown workload in the spec must fail the experiment under any
// parallelism, naming the bad workload.
func TestExperimentErrorPropagates(t *testing.T) {
	for _, p := range []int{1, 4} {
		spec := Spec{Workloads: []string{"compress", "doom", "eqntott"}, Insts: 2_000, Seed: 42, Parallel: p}
		_, _, err := T2Characterisation(NewRunner(spec))
		if err == nil || !strings.Contains(err.Error(), "doom") {
			t.Errorf("parallel=%d: err = %v, want unknown-workload failure", p, err)
		}
	}
}

// TestProgressReporting checks the optional progress callback: counts are
// strictly increasing and end at the number of submitted cells.
func TestProgressReporting(t *testing.T) {
	spec := QuickSpec()
	spec.Insts = 3_000
	spec.Parallel = 4
	r := NewRunner(spec)
	var mu sync.Mutex
	var seen []int
	r.SetProgress(func(done int) {
		mu.Lock()
		seen = append(seen, done)
		mu.Unlock()
	})
	if _, _, err := T2Characterisation(r); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(spec.Workloads) {
		t.Fatalf("%d progress calls for %d cells", len(seen), len(spec.Workloads))
	}
	for i, done := range seen {
		if done != i+1 {
			t.Errorf("progress call %d reported %d; counts must be serialised and increasing", i, done)
		}
	}
}

// TestSpecParallelDefaults checks the GOMAXPROCS default and explicit
// override.
func TestSpecParallelDefaults(t *testing.T) {
	if p := NewRunner(QuickSpec()).Parallel(); p < 1 {
		t.Errorf("default parallelism %d; want >= 1 (GOMAXPROCS)", p)
	}
	spec := QuickSpec()
	spec.Parallel = 3
	if p := NewRunner(spec).Parallel(); p != 3 {
		t.Errorf("explicit parallelism %d, want 3", p)
	}
}
