package experiments

import (
	"testing"

	"portsim/internal/workload"
)

// arenaTestSpec is a small campaign that still covers both runner stream
// paths: single-program cells (F1 memoised sweep) and the multiprogrammed
// interleave (A6, never memoised).
func arenaTestSpec(budget int64) Spec {
	return Spec{Workloads: []string{"compress"}, Insts: 6_000, Seed: 42, ArenaBudget: budget}
}

// runArenaCampaign renders the F1 and A6 tables for one arena budget.
func runArenaCampaign(t *testing.T, budget int64) (string, *Runner) {
	t.Helper()
	r := NewRunner(arenaTestSpec(budget))
	_, f1, err := F1PortCount(r)
	if err != nil {
		t.Fatalf("F1 (budget %d): %v", budget, err)
	}
	_, a6, err := A6Multiprogramming(r)
	if err != nil {
		t.Fatalf("A6 (budget %d): %v", budget, err)
	}
	return f1.String() + a6.String(), r
}

// TestTablesIdenticalArenasOnOff is the tentpole's hard constraint at the
// experiments layer: every rendered table must be byte-identical whether
// cells replay shared arenas (default budget), fall back to live
// generation cell by cell (a budget big enough for single-program arenas
// but not all multiprogram ones), or never see an arena at all (disabled).
func TestTablesIdenticalArenasOnOff(t *testing.T) {
	want, withArenas := runArenaCampaign(t, 0)
	st, ok := withArenas.ArenaStats()
	if !ok {
		t.Fatal("arenas unexpectedly disabled at default budget")
	}
	if st.Builds == 0 || st.Hits == 0 {
		t.Fatalf("default-budget campaign did not share arenas: %+v", st)
	}

	off, disabled := runArenaCampaign(t, -1)
	if _, ok := disabled.ArenaStats(); ok {
		t.Fatal("ArenaStats reported ok on a disabled registry")
	}
	if off != want {
		t.Errorf("tables diverge between arenas on and off:\n--- arenas on ---\n%s\n--- arenas off ---\n%s", want, off)
	}

	// A budget of exactly two arenas: some A6 levels (up to 8 processes)
	// must fall back while single-program cells replay.
	twoArenas := 2 * int64(arenaTestSpec(0).Insts+arenaSlack) * 30
	partial, partialRunner := runArenaCampaign(t, twoArenas)
	pst, _ := partialRunner.ArenaStats()
	if pst.Fallbacks == 0 {
		t.Fatalf("expected budget-forced fallbacks at %d bytes: %+v", twoArenas, pst)
	}
	if partial != want {
		t.Errorf("tables diverge under partial fallback:\n--- arenas on ---\n%s\n--- partial ---\n%s", want, partial)
	}
}

// TestArenaRegistrySharing pins the generate-once property: a sweep that
// simulates the same workload on many machines materialises its trace
// exactly once, and parallel execution neither duplicates builds nor
// changes the totals.
func TestArenaRegistrySharing(t *testing.T) {
	for _, parallel := range []int{1, 8} {
		spec := arenaTestSpec(0)
		spec.Parallel = parallel
		r := NewRunner(spec)
		if _, _, err := F1PortCount(r); err != nil {
			t.Fatal(err)
		}
		st, ok := r.ArenaStats()
		if !ok {
			t.Fatal("arenas disabled")
		}
		if st.Builds != 1 {
			t.Errorf("parallel=%d: F1 on one workload built %d arenas, want 1", parallel, st.Builds)
		}
		if st.Hits == 0 {
			t.Errorf("parallel=%d: no arena sharing recorded: %+v", parallel, st)
		}
		if st.Count != 1 || st.Bytes == 0 || st.Bytes > st.Budget {
			t.Errorf("parallel=%d: implausible residency: %+v", parallel, st)
		}
	}
}

// TestArenaRegistryEviction: idle arenas are dropped, least recently used
// first, to make room inside the budget; held arenas are never evicted.
func TestArenaRegistryEviction(t *testing.T) {
	prof, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("compress workload missing")
	}
	const n = 1_000
	reg := newArenaRegistry(2 * n * 30) // room for two arenas
	c1, rel1, err := reg.acquire(prof, 1, n)
	if err != nil || c1 == nil {
		t.Fatalf("acquire seed 1: %v %v", c1, err)
	}
	c2, rel2, err := reg.acquire(prof, 2, n)
	if err != nil || c2 == nil {
		t.Fatalf("acquire seed 2: %v %v", c2, err)
	}
	// Both held: a third must fall back, not evict.
	c3, _, err := reg.acquire(prof, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	if c3 != nil {
		t.Fatal("third acquire succeeded with the budget full of held arenas")
	}
	rel1()
	// Seed 1 idle: now the third fits by evicting it.
	c3, rel3, err := reg.acquire(prof, 3, n)
	if err != nil || c3 == nil {
		t.Fatalf("acquire seed 3 after release: %v %v", c3, err)
	}
	st := reg.stats()
	if st.Evictions != 1 || st.Fallbacks != 1 || st.Count != 2 {
		t.Errorf("stats after eviction: %+v", st)
	}
	// Seed 2 was held throughout: a re-acquire is a hit, not a rebuild.
	before := reg.stats().Builds
	c2b, rel2b, err := reg.acquire(prof, 2, n)
	if err != nil || c2b == nil {
		t.Fatalf("re-acquire seed 2: %v %v", c2b, err)
	}
	if reg.stats().Builds != before {
		t.Error("re-acquiring a held arena rebuilt it")
	}
	rel2()
	rel2b()
	rel3()
}

// TestParseArenaBudget covers the flag grammar.
func TestParseArenaBudget(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"off", -1, false},
		{"OFF", -1, false},
		{"0", -1, false},
		{"256MiB", 256 << 20, false},
		{"1GiB", 1 << 30, false},
		{"2g", 2 << 30, false},
		{"64kb", 64_000, false},
		{"100", 100, false},
		{"1.5m", 3 << 19, false},
		{"12b", 12, false},
		{"banana", 0, true},
		{"-5m", 0, true},
	}
	for _, c := range cases {
		got, err := ParseArenaBudget(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseArenaBudget(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseArenaBudget(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseArenaBudget(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
