package experiments

import (
	"testing"
	"time"

	"portsim/internal/config"
)

// fakeClock is a deterministic time source for observer tests.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(125 * time.Millisecond)
	return c.t
}

func observerSpec() Spec {
	return Spec{Workloads: []string{"compress"}, Insts: 5_000, Seed: 42}
}

// TestObserverFiresPerSubmission pins the one-event-per-cell contract:
// the owning simulation reports MemoHit=false, every duplicate submission
// reports MemoHit=true with the shared result, and wall time comes from
// the injected clock.
func TestObserverFiresPerSubmission(t *testing.T) {
	r := NewRunner(observerSpec())
	var events []CellEvent
	clock := &fakeClock{t: time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)}
	r.SetCellObserver(func(ev CellEvent) { events = append(events, ev) }, clock.now)

	m := config.Baseline()
	res1, err := r.Run(m, "compress")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Run(m, "compress")
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Error("memo cache did not share the result")
	}
	if len(events) != 2 {
		t.Fatalf("observer fired %d times, want 2", len(events))
	}
	first, second := events[0], events[1]
	if first.MemoHit {
		t.Error("owning simulation reported MemoHit")
	}
	if !second.MemoHit {
		t.Error("duplicate submission did not report MemoHit")
	}
	for i, ev := range events {
		if ev.Machine != m.Name || ev.Workload != "compress" {
			t.Errorf("event %d identity = %s/%s", i, ev.Machine, ev.Workload)
		}
		if ev.Result == nil || ev.Err != nil {
			t.Errorf("event %d: result %v, err %v", i, ev.Result, ev.Err)
		}
		if len(ev.ConfigJSON) == 0 {
			t.Errorf("event %d missing config JSON", i)
		}
	}
	// The fake clock advances 125ms per read; the owner reads it twice.
	if first.WallSeconds != 0.125 {
		t.Errorf("owner wall = %v, want 0.125", first.WallSeconds)
	}
	if second.WallSeconds != 0 {
		t.Errorf("memo hit wall = %v, want 0", second.WallSeconds)
	}
	if first.Result.Cycles == 0 {
		t.Error("observer result has no cycles")
	}
}

// TestObserverSeesFailures checks a poisoned cell reports Err (and a nil
// Result) through the observer, exactly once per submission.
func TestObserverSeesFailures(t *testing.T) {
	spec := observerSpec()
	fault, err := ParseFault("panic:compress:100")
	if err != nil {
		t.Fatal(err)
	}
	spec.Fault = fault
	r := NewRunner(spec)
	var events []CellEvent
	r.SetCellObserver(func(ev CellEvent) { events = append(events, ev) }, nil)

	if _, err := r.Run(config.Baseline(), "compress"); err == nil {
		t.Fatal("poisoned cell succeeded")
	}
	if _, err := r.Run(config.Baseline(), "compress"); err == nil {
		t.Fatal("memoised poisoned cell succeeded")
	}
	if len(events) != 2 {
		t.Fatalf("observer fired %d times, want 2", len(events))
	}
	for i, ev := range events {
		if ev.Err == nil || ev.Result != nil {
			t.Errorf("event %d: err %v result %v, want failure", i, ev.Err, ev.Result)
		}
	}
	if events[0].MemoHit || !events[1].MemoHit {
		t.Errorf("memo flags = %v/%v, want false/true", events[0].MemoHit, events[1].MemoHit)
	}
	// No clock injected: wall time must be zero, not wall-clock noise.
	if events[0].WallSeconds != 0 {
		t.Errorf("wall without clock = %v, want 0", events[0].WallSeconds)
	}
}

// TestObserverDoesNotPerturbResults runs an experiment with and without
// the observer and requires byte-identical tables — the telemetry-off
// invariant at the engine level.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	spec := Spec{Workloads: []string{"compress", "eqntott"}, Insts: 8_000, Seed: 42}

	plain := NewRunner(spec)
	_, wantTable, err := F1PortCount(plain)
	if err != nil {
		t.Fatal(err)
	}

	observed := NewRunner(spec)
	count := 0
	clock := &fakeClock{t: time.Unix(0, 0)}
	observed.SetCellObserver(func(CellEvent) { count++ }, clock.now)
	_, gotTable, err := F1PortCount(observed)
	if err != nil {
		t.Fatal(err)
	}
	if gotTable.String() != wantTable.String() {
		t.Errorf("observer changed the table:\n--- without ---\n%s\n--- with ---\n%s", wantTable, gotTable)
	}
	// F1 sweeps 3 machines over 2 workloads = 6 submissions.
	if count != 6 {
		t.Errorf("observer fired %d times, want 6", count)
	}
}

// TestTraceCapture arms Spec.Trace for one cell and checks the capture:
// right cell, cycle-sorted events, one capture even when more cells
// match, and no capture at all for non-matching specs.
func TestTraceCapture(t *testing.T) {
	spec := Spec{Workloads: []string{"compress", "eqntott"}, Insts: 5_000, Seed: 42,
		Trace: &TraceSpec{Workload: "compress", Machine: config.Baseline().Name}}
	r := NewRunner(spec)
	if r.Trace() != nil {
		t.Fatal("capture exists before any simulation")
	}
	// eqntott on baseline matches the workload filter but not the cell;
	// compress on DualPort matches neither.
	if _, err := r.Run(config.Baseline(), "eqntott"); err != nil {
		t.Fatal(err)
	}
	if r.Trace() != nil {
		t.Fatal("captured a non-matching workload")
	}
	if _, err := r.Run(config.DualPort(), "compress"); err != nil {
		t.Fatal(err)
	}
	if r.Trace() != nil {
		t.Fatal("captured a non-matching machine")
	}
	if _, err := r.Run(config.Baseline(), "compress"); err != nil {
		t.Fatal(err)
	}
	cap1 := r.Trace()
	if cap1 == nil {
		t.Fatal("no capture after the matching cell ran")
	}
	if cap1.Machine != config.Baseline().Name || cap1.Workload != "compress" || cap1.Seed != 42 {
		t.Errorf("capture identity = %s/%s seed %d", cap1.Machine, cap1.Workload, cap1.Seed)
	}
	if len(cap1.Events) == 0 {
		t.Fatal("capture has no events")
	}
	for i := 1; i < len(cap1.Events); i++ {
		if cap1.Events[i].Cycle < cap1.Events[i-1].Cycle {
			t.Fatalf("capture cycle order broken at %d", i)
		}
	}
	if cap1.Total != uint64(len(cap1.Events))+cap1.Dropped {
		t.Errorf("total %d != events %d + dropped %d", cap1.Total, len(cap1.Events), cap1.Dropped)
	}
}

// TestTraceDoesNotPerturbResults checks the traced run's table matches an
// untraced run byte for byte.
func TestTraceDoesNotPerturbResults(t *testing.T) {
	spec := Spec{Workloads: []string{"compress"}, Insts: 8_000, Seed: 42}
	plain := NewRunner(spec)
	_, wantTable, err := F1PortCount(plain)
	if err != nil {
		t.Fatal(err)
	}

	spec.Trace = &TraceSpec{Workload: "compress"}
	traced := NewRunner(spec)
	_, gotTable, err := F1PortCount(traced)
	if err != nil {
		t.Fatal(err)
	}
	if gotTable.String() != wantTable.String() {
		t.Errorf("tracing changed the table:\n--- without ---\n%s\n--- with ---\n%s", wantTable, gotTable)
	}
	if traced.Trace() == nil {
		t.Error("no capture from the traced run")
	}
}

// TestTraceDepthOverride bounds the ring and checks wraparound accounting
// survives into the capture.
func TestTraceDepthOverride(t *testing.T) {
	spec := Spec{Workloads: []string{"compress"}, Insts: 5_000, Seed: 42,
		Trace: &TraceSpec{Workload: "compress", Depth: 64}}
	r := NewRunner(spec)
	if _, err := r.Run(config.Baseline(), "compress"); err != nil {
		t.Fatal(err)
	}
	c := r.Trace()
	if c == nil {
		t.Fatal("no capture")
	}
	if len(c.Events) != 64 {
		t.Errorf("capture holds %d events, want 64", len(c.Events))
	}
	if c.Dropped == 0 {
		t.Error("a 5000-inst cell must overflow a 64-event ring")
	}
}
