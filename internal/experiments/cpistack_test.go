package experiments

import (
	"testing"

	"portsim/internal/cellstore"
	"portsim/internal/config"
	"portsim/internal/cpustack"
)

// TestCPIStackRidesCellEvents pins the delivery contract for armed
// accounting: the owning simulation's event carries a frozen stack that
// conserves the cell's cycles, the start observer sees the live stack
// before the simulation runs, and a memo hit re-delivers the owner's
// snapshot.
func TestCPIStackRidesCellEvents(t *testing.T) {
	spec := observerSpec()
	spec.CPIStack = true
	r := NewRunner(spec)
	var events []CellEvent
	var starts []CellStart
	r.SetCellObserver(func(ev CellEvent) { events = append(events, ev) }, nil)
	r.SetCellStartObserver(func(cs CellStart) { starts = append(starts, cs) })
	r.SetExperiment("T2")

	m := config.Baseline()
	res, err := r.Run(m, "compress")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(m, "compress"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("observer fired %d times, want 2", len(events))
	}
	// Only the owning simulation starts; the memo hit never enters the
	// simulator.
	if len(starts) != 1 {
		t.Fatalf("start observer fired %d times, want 1", len(starts))
	}
	if starts[0].Machine != m.Name || starts[0].Workload != "compress" ||
		starts[0].Experiment != "T2" || starts[0].Stack == nil {
		t.Errorf("start event wrong: %+v", starts[0])
	}
	// The live stack handed to the start observer is the one the owner's
	// snapshot froze.
	if got := starts[0].Stack.Total(); got != res.Cycles {
		t.Errorf("live stack total %d, cell ran %d cycles", got, res.Cycles)
	}
	for i, ev := range events {
		if ev.CPIStack == nil {
			t.Fatalf("event %d has no CPI stack", i)
		}
		if err := ev.CPIStack.CheckConservation(res.Cycles); err != nil {
			t.Errorf("event %d: %v", i, err)
		}
	}
	if *events[0].CPIStack != *events[1].CPIStack {
		t.Error("memo hit delivered a different stack than the owner")
	}
}

// TestCPIStackSeesWedgedCell drives the fault-injected wedge through the
// runner with accounting armed: the failed cell's event must still carry
// the partial stack, with the wedged cycles in the store-buffer bucket —
// named attribution, not "useful" — which is exactly the diagnosis the
// status plane shows for a stuck cell.
func TestCPIStackSeesWedgedCell(t *testing.T) {
	spec := observerSpec()
	spec.CPIStack = true
	fault, err := ParseFault("wedge:compress")
	if err != nil {
		t.Fatal(err)
	}
	spec.Fault = fault
	r := NewRunner(spec)
	var events []CellEvent
	r.SetCellObserver(func(ev CellEvent) { events = append(events, ev) }, nil)

	if _, err := r.Run(config.Baseline(), "compress"); err == nil {
		t.Fatal("wedged cell succeeded")
	}
	if len(events) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(events))
	}
	ev := events[0]
	if ev.Err == nil || ev.Result != nil {
		t.Fatalf("expected a failed cell, got err %v result %v", ev.Err, ev.Result)
	}
	if ev.CPIStack == nil {
		t.Fatal("failed cell carries no CPI stack")
	}
	sb := ev.CPIStack.Get(cpustack.StoreBufferFull)
	useful := ev.CPIStack.Get(cpustack.Useful)
	if sb == 0 || sb <= useful {
		t.Errorf("wedge not attributed: store-buffer-full %d, useful %d", sb, useful)
	}
}

// TestCPIStackDoesNotPerturbTables is the engine-level byte-identity gate:
// a full experiment table must render identically with accounting on and
// off.
func TestCPIStackDoesNotPerturbTables(t *testing.T) {
	spec := Spec{Workloads: []string{"compress", "eqntott"}, Insts: 8_000, Seed: 42}
	plain := NewRunner(spec)
	_, wantTable, err := F1PortCount(plain)
	if err != nil {
		t.Fatal(err)
	}
	spec.CPIStack = true
	armed := NewRunner(spec)
	_, gotTable, err := F1PortCount(armed)
	if err != nil {
		t.Fatal(err)
	}
	if gotTable.String() != wantTable.String() {
		t.Errorf("accounting changed the table:\n--- off ---\n%s\n--- on ---\n%s", wantTable, gotTable)
	}
}

// TestCPIStackSurvivesStoreRoundTrip runs a durable cell with accounting
// armed, then restores it in a fresh campaign: the store-hit event must
// deliver the original breakdown bucket for bucket.
func TestCPIStackSurvivesStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	open := func() *cellstore.Store {
		st, err := cellstore.Open(dir, cellstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	spec := observerSpec()
	spec.CPIStack = true
	spec.Store = open()
	first := NewRunner(spec)
	var owner []CellEvent
	first.SetCellObserver(func(ev CellEvent) { owner = append(owner, ev) }, nil)
	if _, err := first.Run(config.Baseline(), "compress"); err != nil {
		t.Fatal(err)
	}
	if len(owner) != 1 || owner[0].CPIStack == nil {
		t.Fatal("owning run delivered no CPI stack")
	}

	spec.Store = open()
	second := NewRunner(spec)
	var restored []CellEvent
	second.SetCellObserver(func(ev CellEvent) { restored = append(restored, ev) }, nil)
	if _, err := second.Run(config.Baseline(), "compress"); err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 {
		t.Fatalf("restore run fired %d events, want 1", len(restored))
	}
	ev := restored[0]
	if !ev.StoreHit {
		t.Fatal("second campaign did not hit the store")
	}
	if ev.CPIStack == nil {
		t.Fatal("store hit delivered no CPI stack")
	}
	if *ev.CPIStack != *owner[0].CPIStack {
		t.Errorf("restored stack differs:\nowner:    %v\nrestored: %v",
			owner[0].CPIStack.Buckets, ev.CPIStack.Buckets)
	}
}
