package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"portsim/internal/config"
	"portsim/internal/isa"
	"portsim/internal/trace"
)

// FaultMode selects what a Fault injects.
type FaultMode string

// Fault modes.
const (
	// FaultPanic makes the workload's instruction stream panic after
	// Fault.After instructions — a stand-in for any generator or model
	// bug that unwinds the simulation goroutine.
	FaultPanic FaultMode = "panic"
	// FaultBadInst corrupts one instruction (a zero-size store) after
	// Fault.After instructions, driving the real store-buffer panic path
	// at commit.
	FaultBadInst FaultMode = "badinst"
	// FaultWedge sets the machine's FaultStuckDrain knob so the store
	// buffer never drains: commit wedges and the forward-progress
	// watchdog must diagnose it.
	FaultWedge FaultMode = "wedge"
)

// Fault describes one injected failure for robustness testing: every cell
// whose workload (or profile) name matches Workload is poisoned the same
// way; all other cells run clean. The fault is applied inside the
// simulation of the cell — after memo-key computation — so duplicate
// configurations across experiments share one contained failure exactly as
// they would share one result.
type Fault struct {
	// Mode is the kind of failure to inject.
	Mode FaultMode `json:"mode"`
	// Workload is the workload/profile name to poison.
	Workload string `json:"workload"`
	// After is how many instructions the stream delivers cleanly before
	// the fault fires (panic and badinst modes).
	After uint64 `json:"after,omitempty"`
}

// ParseFault parses the portbench -inject syntax "mode:workload[:after]".
func ParseFault(s string) (*Fault, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
		return nil, fmt.Errorf("experiments: bad fault %q; want mode:workload[:after]", s)
	}
	f := &Fault{Mode: FaultMode(parts[0]), Workload: parts[1]}
	switch f.Mode {
	case FaultPanic, FaultBadInst, FaultWedge:
	default:
		return nil, fmt.Errorf("experiments: unknown fault mode %q (have %s, %s, %s)",
			parts[0], FaultPanic, FaultBadInst, FaultWedge)
	}
	if len(parts) == 3 {
		if f.Mode == FaultWedge {
			// Wedge fires at machine construction, not at an instruction
			// count; a trailing :after would be silently ignored, which is
			// exactly the kind of fault spec a robustness run should reject.
			return nil, fmt.Errorf("experiments: fault mode %s takes no instruction count (got %q)", FaultWedge, s)
		}
		n, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad fault instruction count %q: %v", parts[2], err)
		}
		f.After = n
	}
	return f, nil
}

// String renders the fault in ParseFault syntax.
func (f *Fault) String() string {
	if f.After > 0 {
		return fmt.Sprintf("%s:%s:%d", f.Mode, f.Workload, f.After)
	}
	return fmt.Sprintf("%s:%s", f.Mode, f.Workload)
}

// applies reports whether the fault targets the named cell.
func (f *Fault) applies(workloadName string) bool {
	return f != nil && f.Workload == workloadName
}

// arm poisons one cell: it mutates the machine (wedge mode) and/or wraps
// the instruction stream (panic and badinst modes). The machine is passed
// by pointer to the cell's private copy; the caller's configuration is
// untouched.
func (f *Fault) arm(m *config.Machine, stream trace.Stream) trace.Stream {
	switch f.Mode {
	case FaultWedge:
		m.Ports.FaultStuckDrain = true
		return stream
	case FaultPanic, FaultBadInst:
		return &faultStream{inner: stream, fault: f}
	}
	return stream
}

// faultStream wraps a trace.Stream and injects the fault after the
// configured number of clean instructions.
type faultStream struct {
	inner trace.Stream
	fault *Fault
	n     uint64
	fired bool
}

// Next delivers the underlying stream until the fault point.
func (s *faultStream) Next(in *isa.Inst) bool {
	if !s.inner.Next(in) {
		return false
	}
	s.n++
	if s.fired || s.n <= s.fault.After {
		return true
	}
	s.fired = true
	switch s.fault.Mode {
	case FaultPanic:
		panic(fmt.Sprintf("fault: injected stream panic in workload %q after %d instructions",
			s.fault.Workload, s.fault.After))
	case FaultBadInst:
		// A zero-size store passes fetch, rename and issue, then hits the
		// store buffer's size validation at commit — the documented
		// misuse panic in core.StoreBuffer.Insert.
		in.Class = isa.Store
		in.Size = 0
	}
	return true
}
