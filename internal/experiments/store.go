package experiments

import (
	"encoding/json"
	"errors"
	"fmt"

	"portsim/internal/cellstore"
	"portsim/internal/config"
	"portsim/internal/cpu"
	"portsim/internal/cpustack"
	"portsim/internal/stats"
)

// This file is the experiments side of the durable cell store: the runner
// owns the lookup order (in-process memo → store → simulate → Put) and the
// encoding between simulator types and the store's opaque payloads. The
// store itself (internal/cellstore) never sees a cpu.Result or CellError —
// portlint's layerimports roster forbids it from importing the model
// packages — so everything crossing the boundary is serialised here.

// storedResult is the persisted form of a cpu.Result. Counters are encoded
// as parallel name/value slices in creation order, because rebuilding a
// stats.Set by Add-ing in that order reproduces the original set exactly —
// table rendering walks Names(), so restored cells render byte-identically
// to simulated ones.
type storedResult struct {
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	UserInsts    uint64 `json:"user_insts"`
	KernelInsts  uint64 `json:"kernel_insts"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
	Branches     uint64 `json:"branches"`
	Mispredicts  uint64 `json:"mispredicts"`
	// IPC roundtrips exactly: encoding/json renders float64 with the
	// shortest representation that parses back to the same bits.
	IPC           float64  `json:"ipc"`
	CounterNames  []string `json:"counter_names"`
	CounterValues []uint64 `json:"counter_values"`
	// CPIStack is the cycle-accounting breakdown keyed by bucket name,
	// present only when the cell was simulated with accounting armed.
	CPIStack map[string]uint64 `json:"cpi_stack,omitempty"`
}

// encodeResult serialises a result into the store's opaque payload.
func encodeResult(res *cpu.Result) (json.RawMessage, error) {
	sr := storedResult{
		Cycles:       res.Cycles,
		Instructions: res.Instructions,
		UserInsts:    res.UserInsts,
		KernelInsts:  res.KernelInsts,
		Loads:        res.Loads,
		Stores:       res.Stores,
		Branches:     res.Branches,
		Mispredicts:  res.Mispredicts,
		IPC:          res.IPC,
		CPIStack:     res.CPIStack.Map(),
	}
	if res.Counters != nil {
		sr.CounterNames = res.Counters.Names()
		sr.CounterValues = make([]uint64, len(sr.CounterNames))
		for i, name := range sr.CounterNames {
			sr.CounterValues[i] = res.Counters.Get(name) //portlint:ignore counterhygiene name ranges over Counters.Names()
		}
	}
	return json.Marshal(&sr)
}

// decodeResult rebuilds a cpu.Result from a stored payload.
func decodeResult(raw json.RawMessage) (*cpu.Result, error) {
	var sr storedResult
	if err := json.Unmarshal(raw, &sr); err != nil {
		return nil, fmt.Errorf("experiments: stored result not parseable: %w", err)
	}
	if len(sr.CounterNames) != len(sr.CounterValues) {
		return nil, fmt.Errorf("experiments: stored result has %d counter names but %d values",
			len(sr.CounterNames), len(sr.CounterValues))
	}
	res := &cpu.Result{
		Cycles:       sr.Cycles,
		Instructions: sr.Instructions,
		UserInsts:    sr.UserInsts,
		KernelInsts:  sr.KernelInsts,
		Loads:        sr.Loads,
		Stores:       sr.Stores,
		Branches:     sr.Branches,
		Mispredicts:  sr.Mispredicts,
		IPC:          sr.IPC,
		Counters:     stats.NewSet(),
	}
	for i, name := range sr.CounterNames {
		res.Counters.Add(name, sr.CounterValues[i]) //portlint:ignore counterhygiene restoring the simulator's own recorded names verbatim
	}
	stack, err := cpustack.FromMap(sr.CPIStack)
	if err != nil {
		return nil, fmt.Errorf("experiments: stored result: %w", err)
	}
	res.CPIStack = stack
	return res, nil
}

// restoredError is the underlying error of a CellError rebuilt from the
// store. It preserves the original message verbatim and, via Is, keeps
// errors.Is(err, ErrCellPanic) true for failures born from contained
// panics — callers triage restored failures exactly like fresh ones.
type restoredError struct {
	msg      string
	panicked bool
}

func (e *restoredError) Error() string { return e.msg }

// Is reports ErrCellPanic identity for restored panic failures.
func (e *restoredError) Is(target error) bool {
	return e.panicked && target == ErrCellPanic
}

// storeKey computes the cell's durable identity. The fault descriptor is
// part of the key whenever the spec poisons this workload, so a cell that
// failed under -inject can never be restored into a clean campaign (or a
// clean result into a poisoned one).
func (r *Runner) storeKey(machineName string, cfgJSON []byte, workloadName string) cellstore.Key {
	k := cellstore.Key{
		ConfigHash: cellstore.HashConfig(cfgJSON),
		Machine:    machineName,
		Workload:   workloadName,
		Seed:       r.spec.Seed,
		Insts:      r.spec.Insts,
	}
	if r.spec.Fault.applies(workloadName) {
		k.Fault = r.spec.Fault.String()
	}
	return k
}

// runDurable is the store layer between the memo and the simulator: consult
// the store, restore on a hit, otherwise simulate and persist the outcome.
// It runs only in the memo owner's fill path, so the store sees each
// distinct cell once per campaign regardless of parallelism.
func (r *Runner) runDurable(m config.Machine, cfgJSON []byte, workloadName string) (*cpu.Result, error) {
	st := r.spec.Store
	if st == nil {
		return r.runWorkload(m, workloadName)
	}
	key := r.storeKey(m.Name, cfgJSON, workloadName)
	if entry, _ := st.Get(key); entry != nil {
		res, err, decErr := r.restoreEntry(entry, m, workloadName)
		if decErr == nil {
			// Store hits skip runStream, so its observer defer never runs;
			// deliver the cell event here with StoreHit set.
			ev := CellEvent{
				Machine:    m.Name,
				Workload:   workloadName,
				ConfigJSON: cfgJSON,
				StoreHit:   true,
				Result:     res,
				Err:        err,
			}
			if res != nil {
				ev.CPIStack = res.CPIStack
			}
			r.emitCell(ev)
			return res, err
		}
		// The envelope verified but the experiments-layer payload did not
		// decode (e.g. written by an incompatible build). Quarantine it and
		// fall through to a fresh simulation.
		st.Quarantine(key, decErr)
	}
	res, err := r.runWorkload(m, workloadName)
	r.putEntry(st, key, res, err)
	return res, err
}

// restoreEntry rebuilds the cell outcome from a stored entry. The third
// return is non-nil when the payload is undecodable (the caller
// quarantines); otherwise exactly one of res/err is set.
func (r *Runner) restoreEntry(entry *cellstore.Entry, m config.Machine, workloadName string) (*cpu.Result, error, error) {
	if entry.Failure != nil {
		f := entry.Failure
		// Rebuild the CellError from the coordinates at hand. Wedge-mode
		// faults mutate the cell's private machine copy before simulating;
		// re-arm the knob so the restored failure reports the configuration
		// as simulated. The flight-recorder events are forensics of the
		// original run and are not persisted — the stack is.
		if r.spec.Fault.applies(workloadName) && r.spec.Fault.Mode == FaultWedge {
			m.Ports.FaultStuckDrain = true
		}
		return nil, &CellError{
			Machine:  m,
			Workload: workloadName,
			Seed:     entry.Key.Seed,
			Insts:    entry.Key.Insts,
			Stack:    f.Stack,
			Err:      &restoredError{msg: f.Message, panicked: f.Panicked},
		}, nil
	}
	res, err := decodeResult(entry.Result)
	if err != nil {
		return nil, nil, err
	}
	return res, nil, nil
}

// putEntry persists one finished cell. Results always store; failures store
// only when they are deterministic cell failures (CellError) — anything
// else (say, an unknown workload name) is a configuration error that costs
// nothing to rediscover. Put errors are advisory: the store quarantines,
// retries and degrades on its own, and a campaign never fails over
// durability.
func (r *Runner) putEntry(st *cellstore.Store, key cellstore.Key, res *cpu.Result, err error) {
	e := cellstore.Entry{Key: key}
	switch {
	case err == nil:
		raw, encErr := encodeResult(res)
		if encErr != nil {
			return
		}
		e.Result = raw
	default:
		var ce *CellError
		if !errors.As(err, &ce) {
			return
		}
		e.Failure = &cellstore.Failure{
			Message:  ce.Err.Error(),
			Panicked: errors.Is(ce.Err, ErrCellPanic),
			Stack:    ce.Stack,
		}
	}
	_ = st.Put(&e)
}
