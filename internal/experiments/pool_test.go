package experiments

import (
	"testing"

	"portsim/internal/config"
)

// TestPoolReusesCoresIdentically exercises the runner's core pool directly:
// several workloads on the same machine configuration share one pooled core
// (distinct workloads defeat the memo cache, so each Run is a real
// simulation), and the pooled results must match a pool-cold runner's
// bit-for-bit.
func TestPoolReusesCoresIdentically(t *testing.T) {
	spec := QuickSpec()
	spec.Parallel = 1 // serialise so every cell after the first can hit the pool
	warm := NewRunner(spec)
	m := config.Baseline()
	type key struct{ cycles, insts uint64 }
	got := make(map[string]key)
	for _, w := range spec.Workloads {
		res, err := warm.Run(m, w)
		if err != nil {
			t.Fatal(err)
		}
		got[w] = key{res.Cycles, res.Instructions}
	}
	hits, misses := warm.PoolStats()
	if hits == 0 {
		t.Fatalf("pool never hit across %d distinct cells (misses=%d)", len(spec.Workloads), misses)
	}
	if misses == 0 {
		t.Fatal("pool reported zero misses; the first cell must build a core")
	}

	// A fresh runner per workload can never reuse a core; its results are
	// the pool-free reference.
	for _, w := range spec.Workloads {
		cold := NewRunner(spec)
		res, err := cold.Run(m, w)
		if err != nil {
			t.Fatal(err)
		}
		if h, _ := cold.PoolStats(); h != 0 {
			t.Fatalf("cold runner somehow hit its pool (%d)", h)
		}
		if got[w] != (key{res.Cycles, res.Instructions}) {
			t.Fatalf("%s: pooled result %+v differs from pool-cold %+v", w, got[w], key{res.Cycles, res.Instructions})
		}
	}
}

// TestPoolSkipsFaultArmedCells checks that fault-injected cells never share
// cores with healthy ones: arming mutates the machine configuration, so a
// pooled core would leak the mutation into healthy cells.
func TestPoolSkipsFaultArmedCells(t *testing.T) {
	spec := QuickSpec()
	spec.Parallel = 1
	spec.Fault = &Fault{Mode: FaultPanic, Workload: spec.Workloads[0], After: 1000}
	r := NewRunner(spec)
	m := config.Baseline()
	if _, err := r.Run(m, spec.Workloads[0]); err == nil {
		t.Fatal("fault-armed cell unexpectedly succeeded")
	}
	if hits, misses := r.PoolStats(); hits != 0 || misses != 0 {
		t.Fatalf("fault-armed cell touched the pool: hits=%d misses=%d", hits, misses)
	}
	// A healthy workload on the same runner still pools normally.
	if _, err := r.Run(m, spec.Workloads[1]); err != nil {
		t.Fatal(err)
	}
	if _, misses := r.PoolStats(); misses != 1 {
		t.Fatalf("healthy cell should have built (and pooled) one core, misses=%d", misses)
	}
}

// TestFaultArmedCellsIsolatedFromUnarmed is the -inject isolation
// regression: a fault-armed cell shares its base machine configuration with
// unarmed cells, and the only things keeping the poison contained are (a)
// the memo key carrying the workload name, computed before arming mutates
// the config, and (b) the pool refusing armed cells entirely. If either
// gate regressed, the wedge failure below would be served to — or a wedged
// core handed to — the healthy cell.
func TestFaultArmedCellsIsolatedFromUnarmed(t *testing.T) {
	spec := QuickSpec()
	spec.Parallel = 1
	armedW, cleanW := spec.Workloads[0], spec.Workloads[1]
	spec.Fault = &Fault{Mode: FaultWedge, Workload: armedW}
	r := NewRunner(spec)
	var events []CellEvent
	r.SetCellObserver(func(ev CellEvent) { events = append(events, ev) }, nil)
	m := config.Baseline()

	// Healthy cell first: simulates and pools one core for this config.
	cleanRes, err := r.Run(m, cleanW)
	if err != nil {
		t.Fatal(err)
	}

	// Armed cell on the SAME base config: must fail (stuck drain trips
	// the watchdog) and must not draw the pooled healthy core.
	if _, err := r.Run(m, armedW); err == nil {
		t.Fatal("wedge-armed cell unexpectedly succeeded")
	}
	if hits, _ := r.PoolStats(); hits != 0 {
		t.Fatalf("armed cell reused a pooled core (hits=%d); wedge mutation would leak", hits)
	}

	// Re-running both cells must memo-join their own prior outcome, never
	// cross: the armed key differs from the clean key by workload name
	// even though the base config JSON is identical.
	if _, err := r.Run(m, armedW); err == nil {
		t.Fatal("armed rerun lost its memoised failure")
	}
	again, err := r.Run(m, cleanW)
	if err != nil {
		t.Fatalf("clean rerun poisoned by armed cell: %v", err)
	}
	if again != cleanRes {
		t.Fatal("clean rerun did not memo-join its own result")
	}
	for _, ev := range events[2:] {
		if !ev.MemoHit {
			t.Fatalf("rerun of %s re-simulated instead of memo-joining", ev.Workload)
		}
	}
	for _, ev := range events {
		if ev.Workload == armedW && ev.Err == nil {
			t.Fatalf("armed cell %s reported success", armedW)
		}
		if ev.Workload == cleanW && ev.Err != nil {
			t.Fatalf("clean cell %s reported failure: %v", cleanW, ev.Err)
		}
	}

	// The healthy result must be bit-identical to a fault-free runner's:
	// arming one workload may not perturb any other cell.
	ref := NewRunner(QuickSpec())
	want, err := ref.Run(m, cleanW)
	if err != nil {
		t.Fatal(err)
	}
	if cleanRes.Cycles != want.Cycles || cleanRes.Instructions != want.Instructions ||
		cleanRes.Counters.String() != want.Counters.String() {
		t.Fatalf("clean cell perturbed by fault arming: got %d cycles / %d insts, want %d / %d",
			cleanRes.Cycles, cleanRes.Instructions, want.Cycles, want.Instructions)
	}
}
