package experiments

import (
	"testing"

	"portsim/internal/config"
)

// TestPoolReusesCoresIdentically exercises the runner's core pool directly:
// several workloads on the same machine configuration share one pooled core
// (distinct workloads defeat the memo cache, so each Run is a real
// simulation), and the pooled results must match a pool-cold runner's
// bit-for-bit.
func TestPoolReusesCoresIdentically(t *testing.T) {
	spec := QuickSpec()
	spec.Parallel = 1 // serialise so every cell after the first can hit the pool
	warm := NewRunner(spec)
	m := config.Baseline()
	type key struct{ cycles, insts uint64 }
	got := make(map[string]key)
	for _, w := range spec.Workloads {
		res, err := warm.Run(m, w)
		if err != nil {
			t.Fatal(err)
		}
		got[w] = key{res.Cycles, res.Instructions}
	}
	hits, misses := warm.PoolStats()
	if hits == 0 {
		t.Fatalf("pool never hit across %d distinct cells (misses=%d)", len(spec.Workloads), misses)
	}
	if misses == 0 {
		t.Fatal("pool reported zero misses; the first cell must build a core")
	}

	// A fresh runner per workload can never reuse a core; its results are
	// the pool-free reference.
	for _, w := range spec.Workloads {
		cold := NewRunner(spec)
		res, err := cold.Run(m, w)
		if err != nil {
			t.Fatal(err)
		}
		if h, _ := cold.PoolStats(); h != 0 {
			t.Fatalf("cold runner somehow hit its pool (%d)", h)
		}
		if got[w] != (key{res.Cycles, res.Instructions}) {
			t.Fatalf("%s: pooled result %+v differs from pool-cold %+v", w, got[w], key{res.Cycles, res.Instructions})
		}
	}
}

// TestPoolSkipsFaultArmedCells checks that fault-injected cells never share
// cores with healthy ones: arming mutates the machine configuration, so a
// pooled core would leak the mutation into healthy cells.
func TestPoolSkipsFaultArmedCells(t *testing.T) {
	spec := QuickSpec()
	spec.Parallel = 1
	spec.Fault = &Fault{Mode: FaultPanic, Workload: spec.Workloads[0], After: 1000}
	r := NewRunner(spec)
	m := config.Baseline()
	if _, err := r.Run(m, spec.Workloads[0]); err == nil {
		t.Fatal("fault-armed cell unexpectedly succeeded")
	}
	if hits, misses := r.PoolStats(); hits != 0 || misses != 0 {
		t.Fatalf("fault-armed cell touched the pool: hits=%d misses=%d", hits, misses)
	}
	// A healthy workload on the same runner still pools normally.
	if _, err := r.Run(m, spec.Workloads[1]); err != nil {
		t.Fatal(err)
	}
	if _, misses := r.PoolStats(); misses != 1 {
		t.Fatalf("healthy cell should have built (and pooled) one core, misses=%d", misses)
	}
}
