package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"portsim/internal/cellstore"
	"portsim/internal/config"
	"portsim/internal/cpu"
)

// storeSpec is QuickSpec over a durable store in dir.
func storeSpec(t *testing.T, dir string) (Spec, *cellstore.Store) {
	t.Helper()
	st, err := cellstore.Open(dir, cellstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := QuickSpec()
	spec.Store = st
	return spec, st
}

// sameResult asserts two results are identical including the full counter
// set in creation order — the byte-identity contract behind restored cells.
func sameResult(t *testing.T, got, want *cpu.Result) {
	t.Helper()
	if got.Cycles != want.Cycles || got.Instructions != want.Instructions ||
		got.UserInsts != want.UserInsts || got.KernelInsts != want.KernelInsts ||
		got.Loads != want.Loads || got.Stores != want.Stores ||
		got.Branches != want.Branches || got.Mispredicts != want.Mispredicts {
		t.Fatalf("scalar mismatch: got %+v want %+v", got, want)
	}
	if got.IPC != want.IPC { //portlint:ignore floatcmp restored IPC must be bit-identical, not approximately equal
		t.Fatalf("IPC mismatch: got %v want %v", got.IPC, want.IPC)
	}
	gn, wn := got.Counters.Names(), want.Counters.Names()
	if !reflect.DeepEqual(gn, wn) {
		t.Fatalf("counter names (order included) differ:\ngot  %v\nwant %v", gn, wn)
	}
	for _, name := range wn {
		if got.Counters.Get(name) != want.Counters.Get(name) {
			t.Fatalf("counter %s: got %d want %d", name, got.Counters.Get(name), want.Counters.Get(name))
		}
	}
}

// TestStoreColdWarmOffIdentical runs the same cell with no store, a cold
// store and a warm store and asserts all three results are identical — the
// core byte-identity contract — and that the warm run simulated nothing.
func TestStoreColdWarmOffIdentical(t *testing.T) {
	dir := t.TempDir()
	off, err := NewRunner(QuickSpec()).Run(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}

	spec, st := storeSpec(t, dir)
	cold := NewRunner(spec)
	res, err := cold.Run(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, off)
	if s := st.Stats(); s.Misses != 1 || s.Puts != 1 || s.Hits != 0 {
		t.Fatalf("cold store stats = %+v, want 1 miss, 1 put", s)
	}

	spec2, st2 := storeSpec(t, dir)
	warm := NewRunner(spec2)
	res2, err := warm.Run(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res2, off)
	if warm.SimulatedCycles() != 0 {
		t.Fatalf("warm run simulated %d cycles, want 0", warm.SimulatedCycles())
	}
	if s := st2.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("warm store stats = %+v, want 1 hit", s)
	}
}

// TestStoreHitEmitsCellEvent asserts restored cells reach the telemetry
// observer with StoreHit set (they bypass runStream's observer defer) and
// that memo waiters on the same runner still report MemoHit.
func TestStoreHitEmitsCellEvent(t *testing.T) {
	dir := t.TempDir()
	spec, _ := storeSpec(t, dir)
	if _, err := NewRunner(spec).Run(config.Baseline(), "compress"); err != nil {
		t.Fatal(err)
	}

	spec2, _ := storeSpec(t, dir)
	r := NewRunner(spec2)
	var events []CellEvent
	r.SetCellObserver(func(ev CellEvent) { events = append(events, ev) }, nil)
	if _, err := r.Run(config.Baseline(), "compress"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(config.Baseline(), "compress"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("observer saw %d events, want 2", len(events))
	}
	if !events[0].StoreHit || events[0].MemoHit || events[0].Result == nil {
		t.Fatalf("first event = %+v, want StoreHit with result", events[0])
	}
	if !events[1].MemoHit || events[1].StoreHit {
		t.Fatalf("second event = %+v, want MemoHit only", events[1])
	}
}

// TestStoreFailurePersisted drives a poisoned cell through a cold store,
// then restores it warm: the cell fails exactly once across runs, with the
// same headline, ErrCellPanic identity and the original stack preserved.
func TestStoreFailurePersisted(t *testing.T) {
	dir := t.TempDir()
	spec, _ := storeSpec(t, dir)
	spec.Fault = &Fault{Mode: FaultPanic, Workload: "compress", After: 100}
	_, err := NewRunner(spec).Run(config.Baseline(), "compress")
	if err == nil {
		t.Fatal("poisoned cell did not fail")
	}

	spec2, st2 := storeSpec(t, dir)
	spec2.Fault = &Fault{Mode: FaultPanic, Workload: "compress", After: 100}
	warm := NewRunner(spec2)
	_, err2 := warm.Run(config.Baseline(), "compress")
	if err2 == nil {
		t.Fatal("restored poisoned cell did not fail")
	}
	if s := st2.Stats(); s.Hits != 1 {
		t.Fatalf("warm store stats = %+v, want the failure restored as a hit", s)
	}
	if warm.SimulatedCycles() != 0 {
		t.Fatal("restoring a stored failure should not simulate")
	}
	if err.Error() != err2.Error() {
		t.Fatalf("restored failure headline differs:\ncold %q\nwarm %q", err, err2)
	}
	if !errors.Is(err2, ErrCellPanic) {
		t.Fatalf("restored failure lost ErrCellPanic identity: %v", err2)
	}
	var ce *CellError
	if !errors.As(err2, &ce) {
		t.Fatalf("restored failure is not a CellError: %T", err2)
	}
	if !strings.Contains(ce.Stack, "goroutine") {
		t.Fatal("restored failure lost the original panic stack")
	}
	if ce.Machine.Name != config.Baseline().Name {
		t.Fatalf("restored failure machine = %q", ce.Machine.Name)
	}
}

// TestStoreFaultInKey asserts a poisoned cell and its clean twin live under
// different store identities: a store warmed by a faulted campaign never
// leaks the failure into a clean one, and vice versa.
func TestStoreFaultInKey(t *testing.T) {
	dir := t.TempDir()
	spec, _ := storeSpec(t, dir)
	spec.Fault = &Fault{Mode: FaultPanic, Workload: "compress", After: 100}
	if _, err := NewRunner(spec).Run(config.Baseline(), "compress"); err == nil {
		t.Fatal("poisoned cell did not fail")
	}

	clean, st := storeSpec(t, dir)
	res, err := NewRunner(clean).Run(config.Baseline(), "compress")
	if err != nil || res == nil {
		t.Fatalf("clean run poisoned by stored fault entry: %v", err)
	}
	if s := st.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("clean store stats = %+v, want a miss (different identity)", s)
	}
}

// TestStoreQuarantineResimulates corrupts the stored entry on disk and
// asserts the warm run detects it, quarantines, re-simulates to the correct
// result and heals the store with a fresh Put.
func TestStoreQuarantineResimulates(t *testing.T) {
	dir := t.TempDir()
	spec, _ := storeSpec(t, dir)
	want, err := NewRunner(spec).Run(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}

	entries, err := filepath.Glob(filepath.Join(dir, "*.cell.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v, %v", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	spec2, st2 := storeSpec(t, dir)
	warm := NewRunner(spec2)
	res, err := warm.Run(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, want)
	if warm.SimulatedCycles() == 0 {
		t.Fatal("corrupt entry should force a re-simulation")
	}
	s := st2.Stats()
	if s.Quarantined != 1 || s.Puts != 1 {
		t.Fatalf("store stats = %+v, want 1 quarantine and 1 healing put", s)
	}
	if _, err := os.Stat(entries[0] + ".corrupt"); err != nil {
		t.Fatalf("corrupt entry not preserved for post-mortem: %v", err)
	}

	// Third run: the healed store serves the re-simulated result.
	spec3, st3 := storeSpec(t, dir)
	res3, err := NewRunner(spec3).Run(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res3, want)
	if s := st3.Stats(); s.Hits != 1 {
		t.Fatalf("healed store stats = %+v, want 1 hit", s)
	}
}

// TestStoreKeyCoordinates pins what participates in the durable identity:
// machine config, workload, seed and instruction budget all separate cells.
func TestStoreKeyCoordinates(t *testing.T) {
	dir := t.TempDir()
	spec, st := storeSpec(t, dir)
	r := NewRunner(spec)
	if _, err := r.Run(config.Baseline(), "compress"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(config.Baseline(), "eqntott"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(config.DualPort(), "compress"); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Puts != 3 || s.Hits != 0 {
		t.Fatalf("store stats = %+v, want 3 distinct entries", s)
	}

	// A different seed or budget must miss the warm store.
	for _, mutate := range []func(*Spec){
		func(s *Spec) { s.Seed++ },
		func(s *Spec) { s.Insts /= 2 },
	} {
		spec2, st2 := storeSpec(t, dir)
		mutate(&spec2)
		if _, err := NewRunner(spec2).Run(config.Baseline(), "compress"); err != nil {
			t.Fatal(err)
		}
		if s := st2.Stats(); s.Hits != 0 || s.Misses != 1 {
			t.Fatalf("mutated-spec store stats = %+v, want a miss", s)
		}
	}
}

// TestStoreDegradedRunsClean points the runner at a store whose directory
// is gone mid-campaign: every cell still computes, the campaign succeeds,
// and the store reports itself degraded instead of erroring the run.
func TestStoreDegradedRunsClean(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	spec, st := storeSpec(t, dir)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// Plant a file where the store's temp files would go so CreateTemp
	// cannot succeed.
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(spec)
	res, err := r.Run(config.Baseline(), "compress")
	if err != nil || res == nil {
		t.Fatalf("campaign failed over store trouble: %v", err)
	}
	if s := st.Stats(); !s.Degraded || s.PutFailures != 1 {
		t.Fatalf("store stats = %+v, want degraded with 1 put failure", s)
	}
}
