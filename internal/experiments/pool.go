package experiments

import (
	"errors"
	"sync"
	"sync/atomic"

	"portsim/internal/config"
	"portsim/internal/cpu"
)

// cell is one schedulable simulation of an experiment grid: a (machine,
// workload) pair, a mutated profile, or an ad-hoc stream. Cells must be
// independent and deterministic — the pool runs them in any order and
// merges results by submission index.
type cell func() (*cpu.Result, error)

// runCell wraps the memoised Run as a cell.
func (r *Runner) runCell(m config.Machine, workload string) cell {
	return func() (*cpu.Result, error) { return r.Run(m, workload) }
}

// runAll executes cells on a bounded worker pool of r.Parallel() goroutines
// and returns the results in submission order, so every consumer — table
// rows, geomeans, ratio columns — sees exactly the sequence a serial run
// would have produced. The first cell failure cancels cells that have not
// started yet; in-flight simulations finish and are discarded. Errors are
// aggregated in submission order, which with one worker degenerates to the
// serial behaviour of returning the first failure alone.
func (r *Runner) runAll(cells []cell) ([]*cpu.Result, error) {
	n := len(cells)
	results := make([]*cpu.Result, n)
	cellErrs := make([]error, n)
	workers := r.parallel
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				res, err := cells[i]()
				if err != nil {
					cellErrs[i] = err
					failed.Store(true)
					return
				}
				results[i] = res
				r.noteProgress()
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		var errs []error
		for _, err := range cellErrs {
			if err != nil {
				errs = append(errs, err)
			}
		}
		return nil, errors.Join(errs...)
	}
	return results, nil
}
