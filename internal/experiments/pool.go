package experiments

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"portsim/internal/config"
	"portsim/internal/cpu"
)

// cell is one schedulable simulation of an experiment grid: a (machine,
// workload) pair, a mutated profile, or an ad-hoc stream. Cells must be
// independent and deterministic — the pool runs them in any order and
// merges results by submission index.
type cell func() (*cpu.Result, error)

// runCell wraps the memoised Run as a cell.
func (r *Runner) runCell(m config.Machine, workload string) cell {
	return func() (*cpu.Result, error) { return r.Run(m, workload) }
}

// runCellContained executes one cell with a panic backstop. The runner's
// own simulation path (runStream) already contains panics with full cell
// context; this catches panics in the cell closures themselves — the last
// line of defence keeping a worker goroutine's panic from killing the whole
// process.
func runCellContained(c cell) (res *cpu.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = &CellError{
				Stack: string(debug.Stack()),
				Err:   fmt.Errorf("%w: %v", ErrCellPanic, p),
			}
		}
	}()
	return c()
}

// runAll executes cells on a bounded worker pool of r.Parallel() goroutines
// and returns the results in submission order, so every consumer — table
// rows, geomeans, ratio columns — sees exactly the sequence a serial run
// would have produced. Every cell runs to completion even when others fail:
// one poisoned cell must not abandon the rest of a long campaign, and the
// memo cache makes a retried duplicate cheap anyway. Cell failures are
// aggregated (in submission order) into the returned error; the partial
// results are returned alongside so callers that can render a healthy
// subset may do so.
func (r *Runner) runAll(cells []cell) ([]*cpu.Result, error) {
	n := len(cells)
	results := make([]*cpu.Result, n)
	cellErrs := make([]error, n)
	workers := r.parallel
	if workers > n {
		workers = n
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res, err := runCellContained(cells[i])
				if err != nil {
					cellErrs[i] = err
					continue
				}
				results[i] = res
				r.noteProgress()
			}
		}()
	}
	wg.Wait()
	var errs []error
	for _, err := range cellErrs {
		if err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return results, errors.Join(errs...)
	}
	return results, nil
}
