package experiments

import (
	"strings"
	"testing"

	"portsim/internal/config"
)

// quickRunner is shared by the shape tests; runs are memoised inside it.
func quickRunner() *Runner { return NewRunner(QuickSpec()) }

func TestT1RendersAllParameters(t *testing.T) {
	out := T1Baseline().String()
	for _, frag := range []string{"reorder buffer", "L1D", "L2", "gshare", "fill path", "store buffer"} {
		if !strings.Contains(out, frag) {
			t.Errorf("T1 missing %q:\n%s", frag, out)
		}
	}
}

func TestRunnerMemoises(t *testing.T) {
	r := quickRunner()
	a, err := r.Run(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(config.Baseline(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical run not memoised")
	}
	c, err := r.Run(config.DualPort(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different machines shared a memo entry")
	}
}

func TestRunnerRejectsUnknownWorkload(t *testing.T) {
	if _, err := quickRunner().Run(config.Baseline(), "doom"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestT2Shapes(t *testing.T) {
	r := quickRunner()
	rows, table, err := T2Characterisation(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(r.Spec().Workloads) {
		t.Fatalf("%d rows for %d workloads", len(rows), len(r.Spec().Workloads))
	}
	for _, row := range rows {
		if row.LoadFrac <= 0.1 || row.LoadFrac > 0.5 {
			t.Errorf("%s: load fraction %.3f implausible", row.Workload, row.LoadFrac)
		}
		if row.StoreFrac <= 0.02 || row.StoreFrac > 0.3 {
			t.Errorf("%s: store fraction %.3f implausible", row.Workload, row.StoreFrac)
		}
		if row.BaselineIPC <= 0 || row.BaselineIPC > 4 {
			t.Errorf("%s: IPC %.3f out of range", row.Workload, row.BaselineIPC)
		}
		if row.L1DMissRate <= 0 || row.L1DMissRate > 0.5 {
			t.Errorf("%s: miss rate %.3f implausible", row.Workload, row.L1DMissRate)
		}
	}
	if !strings.Contains(table.String(), "compress") {
		t.Error("table missing workload rows")
	}
}

// TestF1MorePortsNeverHurt checks the central monotonicity of Figure 1.
func TestF1MorePortsNeverHurt(t *testing.T) {
	rows, _, err := F1PortCount(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.IPC[2] < row.IPC[1]*0.995 {
			t.Errorf("%s: 2 ports (%.3f) below 1 port (%.3f)", row.Workload, row.IPC[2], row.IPC[1])
		}
		if row.IPC[4] < row.IPC[2]*0.995 {
			t.Errorf("%s: 4 ports (%.3f) below 2 ports (%.3f)", row.Workload, row.IPC[4], row.IPC[2])
		}
		// Diminishing returns: the 2->4 step must be smaller than 1->2.
		if gain12, gain24 := row.IPC[2]-row.IPC[1], row.IPC[4]-row.IPC[2]; gain24 > gain12 {
			t.Errorf("%s: port returns not diminishing (1->2 %+.3f, 2->4 %+.3f)",
				row.Workload, gain12, gain24)
		}
	}
}

// TestF2DeeperBuffersNeverHurt checks Figure 2's monotone-then-saturate
// shape.
func TestF2DeeperBuffersNeverHurt(t *testing.T) {
	rows, _, err := F2BufferDepth(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.IPC[32] < row.IPC[1]*0.995 {
			t.Errorf("%s: deep buffer (%.3f) below unbuffered (%.3f)", row.Workload, row.IPC[32], row.IPC[1])
		}
		// Saturation: the 16->32 step is tiny.
		if rel := row.IPC[32]/row.IPC[16] - 1; rel > 0.03 {
			t.Errorf("%s: buffer depth not saturating (16->32 gains %.1f%%)", row.Workload, 100*rel)
		}
	}
}

// TestF3NaiveWidthIsWasted checks Figure 3's motivating observation: width
// without load-all or combining changes almost nothing.
func TestF3NaiveWidthIsWasted(t *testing.T) {
	rows, _, err := F3PortWidth(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if rel := row.IPC[32]/row.IPC[8] - 1; rel > 0.02 || rel < -0.02 {
			t.Errorf("%s: naive width changed IPC by %.1f%%; should be inert", row.Workload, 100*rel)
		}
	}
}

// TestF4LoadAllHelpsSpatialWorkloads checks Figure 4: line buffers raise
// IPC, capture more loads with more buffers, and help spatially local
// workloads most.
func TestF4LoadAllHelpsSpatialWorkloads(t *testing.T) {
	rows, _, err := F4LineBuffers(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]F4Row{}
	for _, row := range rows {
		byName[row.Workload] = row
		if row.IPC[4] < row.IPC[0]*0.995 {
			t.Errorf("%s: 4 line buffers (%.3f) below none (%.3f)", row.Workload, row.IPC[4], row.IPC[0])
		}
		if row.HitRate[8] < row.HitRate[1]*0.95 {
			t.Errorf("%s: hit rate fell with more buffers (1:%.3f 8:%.3f)",
				row.Workload, row.HitRate[1], row.HitRate[8])
		}
	}
	if eq, db := byName["eqntott"], byName["database"]; eq.Workload != "" && db.Workload != "" {
		if eq.HitRate[4] <= db.HitRate[4] {
			t.Errorf("sequential eqntott (%.3f) should out-hit random database (%.3f)",
				eq.HitRate[4], db.HitRate[4])
		}
	}
}

// TestF5CombiningSavesPortWrites checks Figure 5: combining retires more
// than one store per drain and never hurts IPC.
func TestF5CombiningSavesPortWrites(t *testing.T) {
	rows, _, err := F5StoreCombining(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, row := range rows {
		if row.StoresPerDrain[16] < 1.0 {
			t.Errorf("%s: stores/drain %.2f below 1; accounting broken", row.Workload, row.StoresPerDrain[16])
		}
		if row.StoresPerDrain[16] > best {
			best = row.StoresPerDrain[16]
		}
		if row.IPCOn[16] < row.IPCOff[16]*0.99 {
			t.Errorf("%s: combining hurt IPC (%.3f vs %.3f)", row.Workload, row.IPCOn[16], row.IPCOff[16])
		}
	}
	// Combining is workload-dependent: random stores rarely share a chunk,
	// but at least the sequential-store workloads must combine strongly.
	if best < 1.3 {
		t.Errorf("no workload combined stores effectively (best %.2f stores/drain)", best)
	}
}

// TestF6HeadlineShape checks the paper's headline ordering: single <= best
// <= dual (within noise), with best recovering part of the gap and landing
// in the >=90%-of-dual band the paper reports.
func TestF6HeadlineShape(t *testing.T) {
	rows, table, err := F6Headline(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.DualIPC < row.SingleIPC {
			t.Errorf("%s: dual (%.3f) below single (%.3f)", row.Workload, row.DualIPC, row.SingleIPC)
		}
		if row.BestIPC < row.SingleIPC*0.99 {
			t.Errorf("%s: techniques hurt (best %.3f vs single %.3f)", row.Workload, row.BestIPC, row.SingleIPC)
		}
		if row.BestOfDual < 0.85 || row.BestOfDual > 1.02 {
			t.Errorf("%s: best/dual %.3f outside the plausible band", row.Workload, row.BestOfDual)
		}
	}
	if !strings.Contains(table.String(), "geomean") {
		t.Error("headline table missing geomean row")
	}
}

func TestT3Accounting(t *testing.T) {
	rows, _, err := T3PortUtilisation(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		sum := row.LoadsFromCache + row.LoadsFromLB + row.LoadsFromSB
		// LSQ-forwarded loads never reach the port, so the sum is <= 1.
		if sum > 1.001 || sum < 0.5 {
			t.Errorf("%s: load sources sum to %.3f", row.Workload, sum)
		}
		if row.PortUtilisation <= 0 || row.PortUtilisation > 1 {
			t.Errorf("%s: utilisation %.3f out of range", row.Workload, row.PortUtilisation)
		}
		if row.StoresPerDrain < 1 {
			t.Errorf("%s: stores/drain %.2f below 1", row.Workload, row.StoresPerDrain)
		}
	}
}

// TestF7KernelDisruption checks Figure 7's shape: kernel fraction rises
// across the sweep.
func TestF7KernelDisruption(t *testing.T) {
	rows, _, err := F7KernelIntensity(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d intensity points", len(rows))
	}
	if rows[0].KernelFrac != 0 {
		t.Errorf("disabled kernel produced fraction %.3f", rows[0].KernelFrac)
	}
	// Episode lengths are geometric, so short quick-spec runs are noisy;
	// require the broad trend rather than strict monotonicity.
	for i := 1; i < len(rows); i++ {
		if rows[i].KernelFrac <= rows[i-1].KernelFrac-0.08 {
			t.Errorf("kernel fraction fell sharply: %v then %v", rows[i-1].KernelFrac, rows[i].KernelFrac)
		}
	}
	if rows[1].KernelFrac <= 0 {
		t.Error("low intensity produced no kernel activity")
	}
	if last := rows[len(rows)-1].KernelFrac; last < 0.15 {
		t.Errorf("high intensity kernel fraction %.3f too low", last)
	}
	for _, row := range rows {
		if row.TechniqueGain < 0.99 {
			t.Errorf("%s: techniques hurt (gain %.3f)", row.Label, row.TechniqueGain)
		}
	}
}

// TestA1AblationOrdering checks that the combined techniques beat any
// single technique and the plain single port.
func TestA1AblationOrdering(t *testing.T) {
	rows, _, err := A1Ablation(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]A1Row{}
	for _, row := range rows {
		byLabel[row.Label] = row
	}
	all := byLabel["all techniques"]
	if all.Geomean < byLabel["single (none)"].Geomean {
		t.Error("combined techniques below plain single port")
	}
	for _, label := range []string{"+ deep store buffer", "+ combining (wide)", "+ load-all (wide)"} {
		if all.Geomean < byLabel[label].Geomean*0.995 {
			t.Errorf("combined techniques (%.3f) below %s alone (%.3f)",
				all.Geomean, label, byLabel[label].Geomean)
		}
	}
	if dual := byLabel["dual port"]; dual.OfDual < 0.999 || dual.OfDual > 1.001 {
		t.Errorf("dual port of-dual ratio %.3f != 1", dual.OfDual)
	}
}

// TestA2BankingShape checks the banking comparison: more banks help
// monotonically (within noise) and approach — but do not exceed — the
// dual-ported reference.
func TestA2BankingShape(t *testing.T) {
	rows, _, err := A2Banking(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]A2Row{}
	for _, row := range rows {
		byLabel[row.Label] = row
	}
	single := byLabel["single port"]
	if byLabel["2 banks"].Geomean < single.Geomean*0.995 {
		t.Errorf("2 banks (%.3f) below single port (%.3f)", byLabel["2 banks"].Geomean, single.Geomean)
	}
	if byLabel["8 banks"].Geomean < byLabel["2 banks"].Geomean*0.995 {
		t.Errorf("8 banks (%.3f) below 2 banks (%.3f)", byLabel["8 banks"].Geomean, byLabel["2 banks"].Geomean)
	}
	if byLabel["8 banks"].OfDual > 1.02 {
		t.Errorf("8 banks (%.3f of dual) implausibly beat dual porting", byLabel["8 banks"].OfDual)
	}
}

// TestA3PrefetchShape checks the prefetch extension: accuracy is a valid
// fraction, streaming workloads are not hurt, and prefetching never
// degrades IPC by more than noise (it only uses idle slots).
func TestA3PrefetchShape(t *testing.T) {
	rows, _, err := A3Prefetch(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Accuracy < 0 || row.Accuracy > 1 {
			t.Errorf("%s: prefetch accuracy %.3f out of range", row.Workload, row.Accuracy)
		}
		if row.PfIPC < row.BaseIPC*0.98 {
			t.Errorf("%s: idle-slot prefetching cost %.1f%% IPC",
				row.Workload, 100*(1-row.PfIPC/row.BaseIPC))
		}
	}
	// compress streams its input: prefetching must actually help it.
	for _, row := range rows {
		if row.Workload == "compress" && row.PfIPC <= row.BaseIPC {
			t.Errorf("compress: prefetch did not help (%.3f vs %.3f)", row.PfIPC, row.BaseIPC)
		}
	}
}

// TestA4SpeculationShape: memory-dependence speculation should never lose
// much (violations are rare with well-separated regions) and the violation
// counter must be plausible.
func TestA4SpeculationShape(t *testing.T) {
	rows, _, err := A4MemSpeculation(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Speculative < row.Conservative*0.97 {
			t.Errorf("%s: speculation lost %.1f%%", row.Workload, 100*(1-row.Speculative/row.Conservative))
		}
		if row.ViolationsPerKI < 0 || row.ViolationsPerKI > 50 {
			t.Errorf("%s: %.1f violations/kI implausible", row.Workload, row.ViolationsPerKI)
		}
	}
}

// TestA5WritePolicyShape: write-back should not lose to write-through, and
// combining must recover part of any write-through loss.
func TestA5WritePolicyShape(t *testing.T) {
	rows, _, err := A5WritePolicy(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.WTPlain > row.WBPlain*1.02 {
			t.Errorf("%s: write-through (%.3f) beat write-back (%.3f)", row.Workload, row.WTPlain, row.WBPlain)
		}
		if row.WTCombining < row.WTPlain*0.99 {
			t.Errorf("%s: combining hurt write-through (%.3f vs %.3f)", row.Workload, row.WTCombining, row.WTPlain)
		}
	}
}

// TestA6MultiprogrammingShape: more processes mean colder caches/TLBs and
// lower IPC; dual still beats single at every level.
func TestA6MultiprogrammingShape(t *testing.T) {
	rows, _, err := A6Multiprogramming(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, row := range rows {
		if row.DualIPC < row.SingleIPC {
			t.Errorf("x%d: dual (%.3f) below single (%.3f)", row.Processes, row.DualIPC, row.SingleIPC)
		}
		if i > 0 && row.L1DMiss < rows[i-1].L1DMiss*0.9 {
			t.Errorf("x%d: miss rate fell sharply with more processes (%.3f -> %.3f)",
				row.Processes, rows[i-1].L1DMiss, row.L1DMiss)
		}
	}
	if rows[3].SingleIPC >= rows[0].SingleIPC {
		t.Errorf("8 processes (%.3f) not slower than 1 (%.3f)", rows[3].SingleIPC, rows[0].SingleIPC)
	}
	if rows[3].DTLBMissKI <= rows[0].DTLBMissKI {
		t.Errorf("TLB pressure did not grow with processes (%.2f vs %.2f)",
			rows[3].DTLBMissKI, rows[0].DTLBMissKI)
	}
}

// TestHeadlineRobustAcrossSeeds re-runs the headline comparison with three
// different workload seeds: the geomean best/dual ratio must stay in a
// tight band, or the reproduction would hinge on one lucky stream.
func TestHeadlineRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed run is slow")
	}
	var ratios []float64
	for _, seed := range []int64{42, 7, 1234} {
		spec := QuickSpec()
		spec.Seed = seed
		rows, _, err := F6Headline(NewRunner(spec))
		if err != nil {
			t.Fatal(err)
		}
		prod := 1.0
		for _, row := range rows {
			prod *= row.BestOfDual
		}
		ratios = append(ratios, prod)
	}
	for i := 1; i < len(ratios); i++ {
		rel := ratios[i] / ratios[0]
		if rel < 0.9 || rel > 1.1 {
			t.Errorf("seed sensitivity: best/dual product %v vs %v", ratios[i], ratios[0])
		}
	}
}

// TestA7LoadsFirstWins: giving committed stores the port ahead of critical-
// path loads must not help.
func TestA7LoadsFirstWins(t *testing.T) {
	rows, _, err := A7ArbitrationPolicy(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.StoresFirst > row.LoadsFirst*1.01 {
			t.Errorf("%s: stores-first (%.3f) beat loads-first (%.3f)",
				row.Workload, row.StoresFirst, row.LoadsFirst)
		}
	}
}

// TestT4GrantDistributionSums: the per-cycle grant fractions of a single-
// ported machine must cover (nearly) all cycles, and some cycles must use
// the port.
func TestT4GrantDistributionSums(t *testing.T) {
	rows, _, err := T4GrantDistribution(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Machine != "baseline-1port" {
			continue
		}
		sum := row.Frac[0] + row.Frac[1]
		if sum < 0.99 || sum > 1.001 {
			t.Errorf("%s/%s: single-port grant fractions sum to %.3f", row.Machine, row.Workload, sum)
		}
		if row.Frac[1] < 0.2 {
			t.Errorf("%s/%s: port busy only %.1f%% of cycles", row.Machine, row.Workload, 100*row.Frac[1])
		}
	}
}

// TestA8WrongPathShape: wrong-path fetching must generate real extra
// instruction-cache traffic, and its IPC effect stays small in either
// direction — it pollutes, but it also accidentally prefetches lines the
// correct path reaches soon after (paths reconverge), so small gains are
// legitimate.
func TestA8WrongPathShape(t *testing.T) {
	rows, _, err := A8WrongPathFetch(quickRunner())
	if err != nil {
		t.Fatal(err)
	}
	sawExtra := false
	for _, row := range rows {
		ratio := row.PollutedIPC / row.IdealIPC
		if ratio < 0.9 || ratio > 1.05 {
			t.Errorf("%s: wrong-path effect %.3f outside the plausible band", row.Workload, ratio)
		}
		if row.ExtraL1IPerKI > 0.01 {
			sawExtra = true
		}
	}
	if !sawExtra {
		t.Error("no workload showed extra L1I misses; wrong-path fetch inert")
	}
}
