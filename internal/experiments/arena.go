package experiments

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"portsim/internal/config"
	"portsim/internal/cpu"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

// This file is the generate-once side of the trace arenas: a refcounted,
// byte-budgeted registry that materialises each (profile, seed) dynamic
// trace exactly once and hands every cell of the sweep a zero-alloc cursor
// over it. The arena itself lives in internal/trace; the registry owns the
// sharing policy — singleflight builds, LRU eviction of idle arenas, and
// the fallback to live streaming generation when the budget is exhausted.
// Cursor replay and live generation are instruction-identical by
// construction (the arena is a verbatim capture of the same generator), so
// every experiment table is byte-identical with arenas on, off, or
// partially fallen back; the CI arena diff gate enforces this end to end.

// DefaultArenaBudget is the registry's byte budget when Spec.ArenaBudget is
// zero: 512 MiB holds every arena of a full default campaign (each 300k-inst
// trace costs ~9 MB) with room to spare.
const DefaultArenaBudget int64 = 512 << 20

// arenaSlack is how many instructions past the committed-instruction budget
// each arena materialises. The core's batched stream refills pull up to
// cpu.StreamChunk instructions ahead of the fetch limit, so the extra tail
// guarantees a replayed cursor never reports exhaustion where the endless
// live generator would not — with or without the multiprogram interleaver
// in between.
const arenaSlack = cpu.StreamChunk

// arenaKey identifies one materialised trace: the full profile (as
// canonical JSON — the kernel-intensity sweep runs mutated profiles that
// share a name) plus the generator seed and the materialised length.
type arenaKey struct {
	profile string
	seed    int64
	n       uint64
}

// arenaEntry is one registry slot. refs counts live cursors plus, during
// the build, the building caller — an entry under construction is never
// evictable. Waiters block on ready.
type arenaEntry struct {
	ready   chan struct{}
	arena   *trace.Arena
	err     error
	bytes   int64
	refs    int
	lastUse uint64
}

// ArenaStats is a snapshot of the registry for telemetry and manifests.
type ArenaStats struct {
	// Budget is the configured byte budget; Bytes and Count describe the
	// arenas currently resident.
	Budget int64
	Count  int
	Bytes  int64
	// Builds counts traces materialised, Hits cursor acquisitions served
	// from an existing arena, Fallbacks cells sent to live generation
	// because the budget was exhausted, Evictions idle arenas dropped to
	// make room.
	Builds    uint64
	Hits      uint64
	Fallbacks uint64
	Evictions uint64
}

// arenaRegistry is the refcounted arena cache. Safe for concurrent use.
type arenaRegistry struct {
	budget int64

	mu      sync.Mutex
	entries map[arenaKey]*arenaEntry
	bytes   int64
	clock   uint64

	builds, hits, fallbacks, evictions uint64
}

func newArenaRegistry(budget int64) *arenaRegistry {
	return &arenaRegistry{budget: budget, entries: make(map[arenaKey]*arenaEntry)}
}

// acquire returns a cursor over the materialised (profile, seed) trace of n
// instructions plus a release closure, or (nil, nil, nil) when the byte
// budget forces this cell onto live generation. Concurrent acquires of the
// same key share one build: the first caller materialises, the rest wait.
func (ar *arenaRegistry) acquire(prof workload.Profile, seed int64, n uint64) (*trace.Cursor, func(), error) {
	profJSON, err := json.Marshal(prof)
	if err != nil {
		return nil, nil, err
	}
	key := arenaKey{profile: string(profJSON), seed: seed, n: n}
	need := int64(n) * trace.BytesPerInst
	ar.mu.Lock()
	if e, ok := ar.entries[key]; ok {
		e.refs++
		ar.clock++
		e.lastUse = ar.clock
		ar.hits++
		ar.mu.Unlock()
		<-e.ready
		if e.err != nil {
			ar.release(key, e)
			return nil, nil, e.err
		}
		return e.arena.NewCursor(), func() { ar.release(key, e) }, nil
	}
	// Make room: evict idle arenas, least recently used first.
	for ar.bytes+need > ar.budget && ar.evictOne() {
	}
	if ar.bytes+need > ar.budget {
		ar.fallbacks++
		ar.mu.Unlock()
		return nil, nil, nil
	}
	e := &arenaEntry{ready: make(chan struct{}), bytes: need, refs: 1}
	ar.clock++
	e.lastUse = ar.clock
	ar.entries[key] = e
	ar.bytes += need
	ar.builds++
	ar.mu.Unlock()

	gen, genErr := workload.New(prof, seed)
	if genErr != nil {
		e.err = genErr
	} else {
		e.arena = trace.Materialize(gen, int(n))
	}
	close(e.ready)
	if e.err != nil {
		ar.release(key, e)
		return nil, nil, e.err
	}
	return e.arena.NewCursor(), func() { ar.release(key, e) }, nil
}

// release drops one reference. Failed builds are purged as soon as the last
// holder lets go so they neither consume budget nor pin the error.
func (ar *arenaRegistry) release(key arenaKey, e *arenaEntry) {
	ar.mu.Lock()
	e.refs--
	if e.refs == 0 && e.err != nil {
		delete(ar.entries, key)
		ar.bytes -= e.bytes
	}
	ar.mu.Unlock()
}

// evictOne drops the least recently used idle arena. Caller holds mu. The
// map scan accumulates a minimum over unique lastUse stamps, so iteration
// order cannot affect the victim.
func (ar *arenaRegistry) evictOne() bool {
	var victimKey arenaKey
	var victim *arenaEntry
	for k, e := range ar.entries {
		if e.refs == 0 && (victim == nil || e.lastUse < victim.lastUse) {
			victimKey, victim = k, e
		}
	}
	if victim == nil {
		return false
	}
	delete(ar.entries, victimKey)
	ar.bytes -= victim.bytes
	ar.evictions++
	return true
}

// stats snapshots the registry.
func (ar *arenaRegistry) stats() ArenaStats {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	return ArenaStats{
		Budget:    ar.budget,
		Count:     len(ar.entries),
		Bytes:     ar.bytes,
		Builds:    ar.builds,
		Hits:      ar.hits,
		Fallbacks: ar.fallbacks,
		Evictions: ar.evictions,
	}
}

// ArenaStats reports the arena registry snapshot; ok is false when arenas
// are disabled for this runner (negative Spec.ArenaBudget, or a spec with
// no instruction budget to size arenas by).
func (r *Runner) ArenaStats() (ArenaStats, bool) {
	if r.arenas == nil {
		return ArenaStats{}, false
	}
	return r.arenas.stats(), true
}

// arenaLen is the materialised length of every arena in this campaign: the
// per-cell instruction budget plus the core's read-ahead slack. One shared
// length keeps single-program and multiprogram cells on the same arenas.
func (r *Runner) arenaLen() uint64 { return r.spec.Insts + arenaSlack }

// profileStream returns the cell's instruction stream: a cursor over the
// shared arena when the registry can hold the trace, the live generator
// otherwise. The release closure is nil on the live path.
func (r *Runner) profileStream(prof workload.Profile, seed int64) (trace.Stream, func(), error) {
	if r.arenas != nil {
		cur, release, err := r.arenas.acquire(prof, seed, r.arenaLen())
		if err != nil {
			return nil, nil, err
		}
		if cur != nil {
			return cur, release, nil
		}
	}
	gen, err := workload.New(prof, seed)
	if err != nil {
		return nil, nil, err
	}
	return gen, nil, nil
}

// runMultiprogram simulates one multiprogrammed cell. When the registry
// holds arenas for every process's trace, the quantum interleave replays
// over per-process cursors — instruction-identical to the live
// NewMultiprogram stream (golden-tested in internal/workload) — otherwise
// the cell falls back to live generation wholesale.
func (r *Runner) runMultiprogram(m config.Machine, prof workload.Profile, processes, quantumMean int, what string) (*cpu.Result, error) {
	if r.arenas != nil {
		cursors := make([]*trace.Cursor, 0, processes)
		releases := make([]func(), 0, processes)
		releaseAll := func() {
			for _, rel := range releases {
				rel()
			}
		}
		complete := true
		for i := 0; i < processes; i++ {
			cur, rel, err := r.arenas.acquire(prof, r.spec.Seed+int64(i)*workload.SeedStride, r.arenaLen())
			if err != nil {
				releaseAll()
				return nil, err
			}
			if cur == nil {
				complete = false
				break
			}
			cursors = append(cursors, cur)
			releases = append(releases, rel)
		}
		if complete {
			mp, err := workload.NewMultiprogramReplay(cursors, quantumMean, r.spec.Seed)
			if err != nil {
				releaseAll()
				return nil, err
			}
			res, err := r.runStream(m, mp, what)
			releaseAll()
			return res, err
		}
		releaseAll()
	}
	mp, err := workload.NewMultiprogram(prof, processes, quantumMean, r.spec.Seed)
	if err != nil {
		return nil, err
	}
	return r.runStream(m, mp, what)
}

// ParseArenaBudget parses a -arena-budget flag value: a byte size with an
// optional binary or decimal unit suffix ("256MiB", "1g", "64000000"),
// "off" or "0" to disable arenas, or "" for the default budget. Returns 0
// for the default, a negative value for disabled, a positive byte count
// otherwise.
func ParseArenaBudget(s string) (int64, error) {
	lower := strings.ToLower(strings.TrimSpace(s))
	switch lower {
	case "":
		return 0, nil
	case "off", "0":
		return -1, nil
	}
	units := []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1_000}, {"mb", 1_000_000}, {"gb", 1_000_000_000},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30},
		{"b", 1},
	}
	num, mult := lower, int64(1)
	for _, u := range units {
		if strings.HasSuffix(lower, u.suffix) {
			num = strings.TrimSpace(strings.TrimSuffix(lower, u.suffix))
			mult = u.mult
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("experiments: arena budget %q is not a byte size", s)
	}
	n := int64(v * float64(mult))
	if n <= 0 {
		return -1, nil
	}
	return n, nil
}
