package experiments

import (
	"encoding/json"
	"fmt"

	"portsim/internal/config"
	"portsim/internal/cpu"
	"portsim/internal/workload"
)

// BundleVersion is the current repro-bundle format version.
const BundleVersion = 1

// Bundle is a self-contained, JSON-serialisable reproduction recipe for one
// failed experiment cell: the exact machine configuration (fault knobs
// included), the workload identity, the generator seed, and the instruction
// budget. Replaying a bundle re-runs the one cell with the flight recorder
// armed, so a failure captured in an unattended campaign can be dissected
// later with `portbench -repro <file>`.
type Bundle struct {
	Version int `json:"version"`
	// Machine is the failed cell's configuration, exactly as simulated.
	Machine config.Machine `json:"machine"`
	// Workload names a built-in workload; Profile overrides it for cells
	// that ran an ad-hoc mutated profile.
	Workload string            `json:"workload"`
	Profile  *workload.Profile `json:"profile,omitempty"`
	Seed     int64             `json:"seed"`
	Insts    uint64            `json:"insts"`
	// Fault, when present, is re-armed on replay — required for stream
	// faults (panic, badinst), which live outside the machine config.
	Fault *Fault `json:"fault,omitempty"`
}

// BundleFor builds a repro bundle from a cell failure and the spec that
// produced it. Wedge faults already travel inside the machine configuration
// (FaultStuckDrain); stream faults must be carried explicitly.
func BundleFor(ce *CellError, spec Spec) *Bundle {
	b := &Bundle{
		Version:  BundleVersion,
		Machine:  ce.Machine,
		Workload: ce.Workload,
		Profile:  ce.Profile,
		Seed:     ce.Seed,
		Insts:    ce.Insts,
	}
	if spec.Fault.applies(ce.Workload) {
		b.Fault = spec.Fault
	}
	return b
}

// Encode serialises the bundle as indented JSON.
func (b *Bundle) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiments: encoding repro bundle: %w", err)
	}
	return append(data, '\n'), nil
}

// ParseBundle decodes and validates a repro bundle.
func ParseBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("experiments: parsing repro bundle: %w", err)
	}
	if b.Version != BundleVersion {
		return nil, fmt.Errorf("experiments: repro bundle version %d not supported (want %d)", b.Version, BundleVersion)
	}
	if err := b.Machine.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: repro bundle machine: %w", err)
	}
	if b.Insts == 0 {
		return nil, fmt.Errorf("experiments: repro bundle has a zero instruction budget")
	}
	if b.Profile == nil {
		if _, ok := workload.ByName(b.Workload); !ok {
			return nil, fmt.Errorf("experiments: repro bundle names unknown workload %q and carries no profile", b.Workload)
		}
	}
	return &b, nil
}

// Replay re-runs the bundled cell with the flight recorder armed. The
// simulator is deterministic, so a replay either reproduces the original
// failure — returning a CellError with fresh events and stack — or returns
// the clean result, proving the failure is gone.
func (b *Bundle) Replay() (*cpu.Result, error) {
	r := NewRunner(Spec{
		Workloads:      []string{b.Workload},
		Insts:          b.Insts,
		Seed:           b.Seed,
		Parallel:       1,
		FlightRecorder: true,
		Fault:          b.Fault,
	})
	if b.Profile != nil {
		return r.runProfile(b.Machine, *b.Profile)
	}
	return r.Run(b.Machine, b.Workload)
}
