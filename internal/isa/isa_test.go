package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegIsFP(t *testing.T) {
	if RegZero.IsFP() {
		t.Error("zero register classified as FP")
	}
	if Reg(31).IsFP() {
		t.Error("r31 classified as FP")
	}
	if !FPBase.IsFP() {
		t.Error("FPBase not classified as FP")
	}
	if !Reg(63).IsFP() {
		t.Error("r63 not classified as FP")
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Nop:     "nop",
		IntALU:  "int-alu",
		IntDiv:  "int-div",
		FPMul:   "fp-mul",
		Load:    "load",
		Store:   "store",
		Branch:  "branch",
		Syscall: "syscall",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range class string %q does not mention the value", got)
	}
}

func TestClassPredicates(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		wantMem := c == Load || c == Store
		if got := c.IsMem(); got != wantMem {
			t.Errorf("%v.IsMem() = %v, want %v", c, got, wantMem)
		}
		wantCtrl := c == Branch || c == Jump || c == Call || c == Return || c == Syscall
		if got := c.IsCtrl(); got != wantCtrl {
			t.Errorf("%v.IsCtrl() = %v, want %v", c, got, wantCtrl)
		}
		wantUncond := wantCtrl && c != Branch
		if got := c.IsUncond(); got != wantUncond {
			t.Errorf("%v.IsUncond() = %v, want %v", c, got, wantUncond)
		}
		wantFP := c == FPAdd || c == FPMul || c == FPDiv
		if got := c.IsFPOp(); got != wantFP {
			t.Errorf("%v.IsFPOp() = %v, want %v", c, got, wantFP)
		}
	}
}

func TestNextPC(t *testing.T) {
	tests := []struct {
		name string
		in   Inst
		want uint64
	}{
		{"alu falls through", Inst{PC: 0x1000, Class: IntALU}, 0x1004},
		{"not-taken branch falls through", Inst{PC: 0x1000, Class: Branch, Target: 0x2000, Taken: false}, 0x1004},
		{"taken branch targets", Inst{PC: 0x1000, Class: Branch, Target: 0x2000, Taken: true}, 0x2000},
		{"jump always targets", Inst{PC: 0x1000, Class: Jump, Target: 0x3000}, 0x3000},
		{"call always targets", Inst{PC: 0x1000, Class: Call, Target: 0x3000}, 0x3000},
		{"return always targets", Inst{PC: 0x1000, Class: Return, Target: 0x3000}, 0x3000},
		{"syscall always targets", Inst{PC: 0x1000, Class: Syscall, Target: 0xffff0000}, 0xffff0000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.in.NextPC(); got != tt.want {
				t.Errorf("NextPC() = %#x, want %#x", got, tt.want)
			}
		})
	}
}

func TestRedirects(t *testing.T) {
	if (&Inst{Class: Branch, Taken: false}).Redirects() {
		t.Error("not-taken branch reported as redirecting")
	}
	if !(&Inst{Class: Branch, Taken: true}).Redirects() {
		t.Error("taken branch reported as not redirecting")
	}
	if !(&Inst{Class: Return}).Redirects() {
		t.Error("return reported as not redirecting")
	}
	if (&Inst{Class: Load}).Redirects() {
		t.Error("load reported as redirecting")
	}
}

func TestValidate(t *testing.T) {
	valid := []Inst{
		{PC: 4, Class: IntALU, Dest: 3, Src1: 1, Src2: 2},
		{PC: 4, Class: Load, Dest: 5, Src1: 1, Addr: 0x1000, Size: 8},
		{PC: 4, Class: Store, Src1: 1, Src2: 5, Addr: 0x1002, Size: 2},
		{PC: 4, Class: Branch, Target: 0x40, Taken: true},
		{PC: 4, Class: Nop},
	}
	for i, in := range valid {
		if err := in.Validate(); err != nil {
			t.Errorf("valid inst %d rejected: %v", i, err)
		}
	}
	invalid := []Inst{
		{PC: 4, Class: Class(99)},
		{PC: 4, Class: IntALU, Dest: 64},
		{PC: 4, Class: IntALU, Src1: 200},
		{PC: 4, Class: Load, Dest: 5, Addr: 0x1000, Size: 3},
		{PC: 4, Class: Load, Dest: 5, Addr: 0x1001, Size: 8},
		{PC: 4, Class: Load, Dest: RegZero, Addr: 0x1000, Size: 8},
		{PC: 4, Class: Store, Addr: 0x1000, Size: 0},
	}
	for i, in := range invalid {
		if err := in.Validate(); err == nil {
			t.Errorf("invalid inst %d accepted: %+v", i, in)
		}
	}
}

func TestStringForms(t *testing.T) {
	mem := Inst{PC: 0x400, Class: Load, Dest: 4, Src1: 2, Addr: 0x8000, Size: 8}
	if s := mem.String(); !strings.Contains(s, "load") || !strings.Contains(s, "0x8000") {
		t.Errorf("memory string %q missing class or address", s)
	}
	br := Inst{PC: 0x400, Class: Branch, Target: 0x500, Taken: true, Kernel: true}
	if s := br.String(); !strings.Contains(s, "[k]") || !strings.Contains(s, "(t)") {
		t.Errorf("branch string %q missing kernel mode or outcome", s)
	}
	alu := Inst{PC: 0x400, Class: IntALU, Dest: 1, Src1: 2, Src2: 3}
	if s := alu.String(); !strings.Contains(s, "int-alu") {
		t.Errorf("alu string %q missing class", s)
	}
}

// TestNextPCConsistency checks, property-style, that NextPC always agrees
// with Redirects: a redirecting instruction lands on Target, anything else on
// the fall-through.
func TestNextPCConsistency(t *testing.T) {
	f := func(pc, target uint64, class uint8, taken bool) bool {
		in := Inst{PC: pc, Target: target, Class: Class(class % uint8(NumClasses)), Taken: taken}
		if in.Redirects() {
			return in.NextPC() == target
		}
		return in.NextPC() == pc+4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
