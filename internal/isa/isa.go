// Package isa defines the minimal dynamic instruction representation used by
// the simulator. The paper's evaluation machine is a MIPS R10000-class
// dynamic superscalar; for a trace-driven timing model only the properties
// that affect timing matter: operation class (which functional unit and
// latency), register dependences, memory address/size, control-flow outcome,
// and the privilege mode the instruction executed in.
//
// The package deliberately does not model instruction encodings or data
// values: the workload generators in internal/workload emit already-decoded
// dynamic instruction records.
package isa

import "fmt"

// Reg names an architectural register. Register 0 is the hard-wired zero
// register and never carries a dependence. Integer registers occupy
// [1, NumIntRegs), floating-point registers occupy [FPBase, FPBase+NumFPRegs).
type Reg uint8

// Architectural register file layout.
const (
	// RegZero is the hard-wired zero register; writes to it are discarded
	// and reads from it never create a dependence.
	RegZero Reg = 0
	// NumIntRegs is the number of architectural integer registers
	// (including RegZero).
	NumIntRegs = 32
	// FPBase is the architectural number of the first floating-point
	// register.
	FPBase Reg = 32
	// NumFPRegs is the number of architectural floating-point registers.
	NumFPRegs = 32
	// NumArchRegs is the total architectural register name space.
	NumArchRegs = 64
)

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= FPBase }

// Class identifies the operation class of a dynamic instruction. The class
// determines which functional unit executes the instruction and with what
// latency, and whether the instruction touches memory or redirects fetch.
type Class uint8

// Operation classes.
const (
	// Nop performs no work but still occupies pipeline slots.
	Nop Class = iota
	// IntALU covers single-cycle integer operations (add, logical, shift,
	// compare, address arithmetic).
	IntALU
	// IntMul is integer multiplication.
	IntMul
	// IntDiv is integer division (long latency, unpipelined).
	IntDiv
	// FPAdd covers floating-point add/subtract/compare/convert.
	FPAdd
	// FPMul is floating-point multiplication.
	FPMul
	// FPDiv is floating-point divide/square root (long latency, unpipelined).
	FPDiv
	// Load is a memory read of Size bytes at Addr.
	Load
	// Store is a memory write of Size bytes at Addr.
	Store
	// Branch is a conditional branch; Taken and Target give its outcome.
	Branch
	// Jump is an unconditional direct jump (always taken).
	Jump
	// Call is a subroutine call (pushes a return address).
	Call
	// Return is a subroutine return (pops a return address).
	Return
	// Syscall transfers control into the kernel; the workload generators
	// use it to delimit kernel episodes. It drains the pipeline like a
	// serialising instruction.
	Syscall
	numClasses
)

// NumClasses is the number of distinct operation classes, for sizing
// per-class statistics tables.
const NumClasses = int(numClasses)

var classNames = [NumClasses]string{
	"nop", "int-alu", "int-mul", "int-div",
	"fp-add", "fp-mul", "fp-div",
	"load", "store",
	"branch", "jump", "call", "return", "syscall",
}

// String returns the lower-case mnemonic name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMem reports whether the class accesses the data memory system.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsCtrl reports whether the class can redirect instruction fetch.
func (c Class) IsCtrl() bool {
	switch c {
	case Branch, Jump, Call, Return, Syscall:
		return true
	}
	return false
}

// IsUncond reports whether the class always redirects fetch. Conditional
// branches redirect only when taken.
func (c Class) IsUncond() bool {
	switch c {
	case Jump, Call, Return, Syscall:
		return true
	}
	return false
}

// IsFPOp reports whether the class executes on the floating-point pipelines.
func (c Class) IsFPOp() bool { return c == FPAdd || c == FPMul || c == FPDiv }

// Inst is one dynamic (committed-path) instruction. Workload generators emit
// the stream the processor would commit; the timing model replays it,
// modelling speculation by comparing predicted and actual control-flow
// outcomes. Wrong-path instructions are not represented explicitly; their
// cost appears as fetch-redirect penalties.
type Inst struct {
	// PC is the virtual address of the instruction. Instructions are
	// 4 bytes, so sequential execution advances PC by 4.
	PC uint64
	// Addr is the effective virtual address for Load and Store classes;
	// it is meaningless for other classes.
	Addr uint64
	// Target is the destination PC for control-flow classes (for
	// conditional branches, the destination if taken).
	Target uint64
	// Class is the operation class.
	Class Class
	// Dest is the destination register, or RegZero for none.
	Dest Reg
	// Src1 and Src2 are the source registers; RegZero means no dependence.
	Src1, Src2 Reg
	// Size is the memory access size in bytes (1, 2, 4 or 8) for Load and
	// Store classes.
	Size uint8
	// Taken reports the actual outcome of a conditional branch.
	Taken bool
	// Kernel reports that the instruction executed in kernel mode. The
	// statistics layer segregates user and kernel behaviour, following
	// the paper's emphasis on workloads that include the OS.
	Kernel bool
}

// FallThrough returns the PC of the next sequential instruction.
func (in *Inst) FallThrough() uint64 { return in.PC + 4 }

// NextPC returns the PC the instruction actually transfers control to: the
// target for taken control flow, the fall-through otherwise.
func (in *Inst) NextPC() uint64 {
	if in.Class.IsUncond() || (in.Class == Branch && in.Taken) {
		return in.Target
	}
	return in.FallThrough()
}

// Redirects reports whether the instruction actually redirected fetch away
// from the fall-through path.
func (in *Inst) Redirects() bool {
	return in.Class.IsUncond() || (in.Class == Branch && in.Taken)
}

// Validate checks internal consistency of the record and returns a
// descriptive error for malformed instructions. It is used by the trace
// reader and by generator tests.
func (in *Inst) Validate() error {
	if int(in.Class) >= NumClasses {
		return fmt.Errorf("isa: invalid class %d", in.Class)
	}
	if in.Dest >= NumArchRegs || in.Src1 >= NumArchRegs || in.Src2 >= NumArchRegs {
		return fmt.Errorf("isa: register out of range in %v", in)
	}
	if in.Class.IsMem() {
		switch in.Size {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("isa: memory access size %d invalid", in.Size)
		}
		if in.Addr%uint64(in.Size) != 0 {
			return fmt.Errorf("isa: misaligned %s of %d bytes at %#x", in.Class, in.Size, in.Addr)
		}
	}
	if in.Class == Load && in.Dest == RegZero {
		return fmt.Errorf("isa: load at %#x has no destination", in.PC)
	}
	return nil
}

// String renders a compact human-readable form, used by trace dumps.
func (in *Inst) String() string {
	mode := "u"
	if in.Kernel {
		mode = "k"
	}
	switch {
	case in.Class.IsMem():
		return fmt.Sprintf("%#x[%s] %s r%d,r%d->r%d @%#x/%d", in.PC, mode, in.Class, in.Src1, in.Src2, in.Dest, in.Addr, in.Size)
	case in.Class.IsCtrl():
		t := "nt"
		if in.Redirects() {
			t = "t"
		}
		return fmt.Sprintf("%#x[%s] %s ->%#x (%s)", in.PC, mode, in.Class, in.Target, t)
	default:
		return fmt.Sprintf("%#x[%s] %s r%d,r%d->r%d", in.PC, mode, in.Class, in.Src1, in.Src2, in.Dest)
	}
}
