package mem

// neverEvent mirrors core.NeverEvent: the NextEvent answer when nothing is
// in flight. mem sits below internal/core in the import graph, so the
// constant is restated here; the interface assertion tying System to the
// core contract lives in internal/cpu, which imports both.
const neverEvent = ^uint64(0)

// nextEvent returns the soonest fill-completion cycle strictly after now, or
// neverEvent when the file is empty or fully expired. A completing fill
// frees an MSHR slot (un-refusing accesses rejected for MSHR pressure) and
// lets merged requesters proceed, so it bounds how far the clock may skip.
//
//portlint:hotpath
func (f *mshrFile) nextEvent(now uint64) uint64 {
	next := neverEvent
	for i := range f.fills {
		if f.fills[i].done > now && f.fills[i].done < next {
			next = f.fills[i].done
		}
	}
	return next
}

// NextEvent reports when the DRAM channel frees up, or neverEvent when it is
// already idle. Channel occupancy only shapes the timing of accesses issued
// while it is busy, so this is purely a conservative wake-up: skipping past
// nextFree would also be sound, but reporting it keeps the contract uniform.
//
//portlint:hotpath
func (d *DRAM) NextEvent(now uint64) uint64 {
	if d.nextFree > now {
		return d.nextFree
	}
	return neverEvent
}

// DRAMBusy reports whether the DRAM channel is occupied at cycle now —
// an access issued now would queue behind the one in flight. The cycle
// accounting layer uses it to split a memory-bound head-of-ROB wait into
// bandwidth (channel busy) versus latency (fill in flight, channel idle).
//
//portlint:hotpath
func (s *System) DRAMBusy(now uint64) bool { return s.dram.nextFree > now }

// DRAMBusyUntil returns the first cycle the DRAM channel is free (which
// may be in the past when it is already idle). Gap accounting uses it to
// split a skipped stretch at the exact cycle the stepped classifier would
// have switched from dram-bandwidth to fill-wait.
//
//portlint:hotpath
func (s *System) DRAMBusyUntil() uint64 { return s.dram.nextFree }

// NextEvent reports the soonest autonomous state change in the hierarchy at
// or after now: the earliest outstanding MSHR fill at any level completing,
// or the DRAM channel freeing. The TLBs hold no timed state (miss penalties
// are charged inline at access time), so they contribute no events.
// Structurally implements core.NextEventer; see that interface for the
// one-sided "no event sooner than returned" invariant.
//
//portlint:hotpath
func (s *System) NextEvent(now uint64) uint64 {
	next := s.l1iMSHR.nextEvent(now)
	if t := s.l1dMSHR.nextEvent(now); t < next {
		next = t
	}
	if t := s.l2MSHR.nextEvent(now); t < next {
		next = t
	}
	if t := s.dram.NextEvent(now); t < next {
		next = t
	}
	return next
}
