package mem

import (
	"testing"

	"portsim/internal/config"
)

func newTLB(t *testing.T, entries, pageBits, penalty int) *TLB {
	t.Helper()
	tl, err := NewTLB(config.TLB{Entries: entries, PageBits: pageBits, MissPenalty: penalty})
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestTLBMissThenHit(t *testing.T) {
	tl := newTLB(t, 4, 12, 20)
	if got := tl.Translate(0x1234); got != 20 {
		t.Errorf("cold lookup penalty = %d, want 20", got)
	}
	if got := tl.Translate(0x1FFF); got != 0 {
		t.Errorf("same-page lookup penalty = %d, want 0", got)
	}
	if got := tl.Translate(0x2000); got != 20 {
		t.Errorf("next-page lookup penalty = %d, want 20", got)
	}
	if tl.Hits() != 1 || tl.Misses() != 2 {
		t.Errorf("hits=%d misses=%d", tl.Hits(), tl.Misses())
	}
	if got := tl.MissRate(); got != 2.0/3.0 {
		t.Errorf("MissRate = %v", got)
	}
}

func TestTLBLRUReplacement(t *testing.T) {
	tl := newTLB(t, 2, 12, 10)
	tl.Translate(0x1000) // page 1
	tl.Translate(0x2000) // page 2
	tl.Translate(0x1000) // refresh page 1
	tl.Translate(0x3000) // evicts page 2
	if got := tl.Translate(0x1000); got != 0 {
		t.Error("MRU page evicted")
	}
	if got := tl.Translate(0x2000); got == 0 {
		t.Error("LRU page survived")
	}
}

func TestTLBFlushAll(t *testing.T) {
	tl := newTLB(t, 4, 12, 10)
	tl.Translate(0x1000)
	tl.FlushAll()
	if got := tl.Translate(0x1000); got == 0 {
		t.Error("entry survived flush")
	}
}

func TestTLBDisabled(t *testing.T) {
	tl := newTLB(t, 0, 0, 0)
	if tl.Enabled() {
		t.Error("zero-entry TLB reports enabled")
	}
	if got := tl.Translate(0x1000); got != 0 {
		t.Error("disabled TLB charged a penalty")
	}
	if tl.MissRate() != 0 {
		t.Error("disabled TLB has a miss rate")
	}
}

func TestTLBRejectsBadConfig(t *testing.T) {
	bad := []config.TLB{
		{Entries: -1},
		{Entries: 4, PageBits: 5, MissPenalty: 10},
		{Entries: 4, PageBits: 40, MissPenalty: 10},
		{Entries: 4, PageBits: 12, MissPenalty: 0},
	}
	for i, cfg := range bad {
		if _, err := NewTLB(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSystemChargesTLBWalks(t *testing.T) {
	m := config.Baseline()
	m.DTLB = config.TLB{Entries: 2, PageBits: 12, MissPenalty: 50}
	s, err := NewSystem(&m)
	if err != nil {
		t.Fatal(err)
	}
	cold := s.DataAccess(0, 0x100000, false)
	if !cold.Accepted {
		t.Fatal("access refused")
	}
	// Warm the cache line, then touch it again after evicting the TLB
	// entry: the second access pays only the walk on top of a cache hit.
	warm := s.DataAccess(cold.Ready+1, 0x100000, false)
	base := warm.Ready - (cold.Ready + 1)
	s.DataAccess(warm.Ready+1, 0x200000, false)
	s.DataAccess(warm.Ready+100, 0x300000, false) // evicts page 0x100
	again := s.DataAccess(warm.Ready+1000, 0x100000, false)
	walked := again.Ready - (warm.Ready + 1000)
	if walked < base+50 {
		t.Errorf("TLB-missing hit took %d cycles, want >= %d (walk not charged?)", walked, base+50)
	}
}

func TestSystemTLBDisabledIsFree(t *testing.T) {
	m := config.Baseline()
	m.ITLB = config.TLB{}
	m.DTLB = config.TLB{}
	s, err := NewSystem(&m)
	if err != nil {
		t.Fatal(err)
	}
	r := s.DataAccess(0, 0x1000, false)
	if !r.Accepted {
		t.Fatal("access refused")
	}
	if s.DTLB.Enabled() {
		t.Error("disabled DTLB reports enabled")
	}
}
