package mem

import (
	"testing"

	"portsim/internal/config"
)

func TestDRAMLatencyAndBandwidth(t *testing.T) {
	d := NewDRAM(config.Memory{DRAMLatency: 60, DRAMInterval: 8})
	if got := d.Access(100); got != 160 {
		t.Errorf("first access ready at %d, want 160", got)
	}
	// Second access one cycle later queues behind the interval.
	if got := d.Access(101); got != 100+8+60 {
		t.Errorf("queued access ready at %d, want 168", got)
	}
	// An access long after the channel freed sees only the latency.
	if got := d.Access(1000); got != 1060 {
		t.Errorf("idle access ready at %d, want 1060", got)
	}
	if d.Accesses() != 3 {
		t.Errorf("access count = %d", d.Accesses())
	}
}

func TestDRAMZeroInterval(t *testing.T) {
	d := NewDRAM(config.Memory{DRAMLatency: 10, DRAMInterval: 0})
	if d.Access(5) != 15 || d.Access(5) != 15 {
		t.Error("zero-interval DRAM should allow back-to-back accesses")
	}
}

func newSystem(t *testing.T) *System {
	t.Helper()
	m := config.Baseline()
	s, err := NewSystem(&m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSystemL1Hit(t *testing.T) {
	s := newSystem(t)
	r1 := s.DataAccess(10, 0x1000, false)
	if !r1.Accepted || r1.L1Hit {
		t.Fatalf("cold access = %+v, want accepted miss", r1)
	}
	if r1.Ready <= 10+1 {
		t.Errorf("miss completed at %d, implausibly fast", r1.Ready)
	}
	r2 := s.DataAccess(r1.Ready+1, 0x1008, false)
	if !r2.Accepted || !r2.L1Hit {
		t.Fatalf("warm access = %+v, want hit", r2)
	}
	if r2.Ready != r1.Ready+1+1 {
		t.Errorf("hit latency wrong: ready %d from cycle %d", r2.Ready, r1.Ready+1)
	}
}

func TestSystemMSHRMerge(t *testing.T) {
	s := newSystem(t)
	r1 := s.DataAccess(0, 0x2000, false)
	r2 := s.DataAccess(1, 0x2008, false) // same line, fill in flight
	if !r2.Accepted || !r2.MergedMSHR {
		t.Fatalf("second access = %+v, want MSHR merge", r2)
	}
	if r2.Ready < r1.Ready {
		t.Error("merged access completed before the fill it merged into")
	}
	if got := s.OutstandingDataMisses(1); got != 1 {
		t.Errorf("outstanding misses = %d, want 1 (merge must not allocate)", got)
	}
}

func TestSystemMSHRExhaustion(t *testing.T) {
	m := config.Baseline()
	m.L1D.MSHRs = 2
	s, err := NewSystem(&m)
	if err != nil {
		t.Fatal(err)
	}
	if !s.DataAccess(0, 0x10000, false).Accepted {
		t.Fatal("first miss refused")
	}
	if !s.DataAccess(0, 0x20000, false).Accepted {
		t.Fatal("second miss refused")
	}
	r := s.DataAccess(0, 0x30000, false)
	if r.Accepted {
		t.Fatal("third concurrent miss accepted with 2 MSHRs")
	}
	// After the fills land, the same access is accepted.
	r = s.DataAccess(100000, 0x30000, false)
	if !r.Accepted {
		t.Fatal("access refused after MSHRs drained")
	}
}

func TestSystemUnlimitedMSHRs(t *testing.T) {
	m := config.Baseline()
	m.L1D.MSHRs = 0
	m.Mem.L2.MSHRs = 0
	s, err := NewSystem(&m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if !s.DataAccess(0, uint64(0x100000+i*4096), false).Accepted {
			t.Fatalf("miss %d refused with unlimited MSHRs", i)
		}
	}
}

func TestSystemL2HitFasterThanDRAM(t *testing.T) {
	s := newSystem(t)
	// First touch: L1 miss, L2 miss -> DRAM.
	cold := s.DataAccess(0, 0x5000, false)
	// Evict 0x5000 from L1 by filling its set; L1D is 32KB 2-way 32B
	// lines => 512 sets, stride 512*32 = 16KB maps to the same set.
	s.DataAccess(cold.Ready, 0x5000+16384, false)
	r2 := s.DataAccess(cold.Ready+200, 0x5000+32768, false)
	// Now 0x5000 should be L1-absent but L2-resident.
	warm := s.DataAccess(r2.Ready+200, 0x5000, false)
	if warm.L1Hit {
		t.Skip("eviction pattern did not displace the line; geometry changed?")
	}
	coldLat := cold.Ready - 0
	warmLat := warm.Ready - (r2.Ready + 200)
	if warmLat >= coldLat {
		t.Errorf("L2 hit latency %d not faster than DRAM fill %d", warmLat, coldLat)
	}
}

func TestSystemWritePropagatesDirty(t *testing.T) {
	s := newSystem(t)
	r := s.DataAccess(0, 0x6000, true)
	if !r.Accepted {
		t.Fatal("store refused")
	}
	// Evict it: two more lines in the same set (stride 16KB).
	now := r.Ready + 1
	a := s.DataAccess(now, 0x6000+16384, false)
	b := s.DataAccess(a.Ready+1, 0x6000+32768, false)
	_ = b
	// The dirty line's writeback allocates in L2; statistics must show an
	// L1D writeback.
	if s.L1D.Writebacks() == 0 {
		t.Error("dirty line eviction produced no writeback")
	}
}

func TestInstFetchSeparateFromData(t *testing.T) {
	s := newSystem(t)
	s.InstFetch(0, 0x1000)
	if s.L1D.Misses() != 0 {
		t.Error("instruction fetch touched the data cache")
	}
	if s.L1I.Misses() != 1 {
		t.Error("instruction fetch did not touch the instruction cache")
	}
}

func TestMonotoneReadiness(t *testing.T) {
	// Property: data is never ready before the request cycle plus the L1
	// hit latency.
	s := newSystem(t)
	addrs := []uint64{0, 0x40, 0x1000, 0x40, 0x20000, 0x1000, 0x333000, 0}
	now := uint64(0)
	for _, a := range addrs {
		r := s.DataAccess(now, a, false)
		if !r.Accepted {
			now += 100
			continue
		}
		if r.Ready < now+1 {
			t.Fatalf("access at %d ready at %d, before hit latency", now, r.Ready)
		}
		now = r.Ready
	}
}

func TestWriteThroughStoresNeverDirty(t *testing.T) {
	m := config.Baseline()
	m.L1D.WriteThrough = true
	s, err := NewSystem(&m)
	if err != nil {
		t.Fatal(err)
	}
	// Load a line, store to it, then evict it: no writeback may occur.
	r := s.DataAccess(0, 0x1000, false)
	w := s.DataAccess(r.Ready+1, 0x1000, true)
	if !w.Accepted || !w.NoFill {
		t.Fatalf("write-through store = %+v, want accepted NoFill", w)
	}
	if !w.L1Hit {
		t.Error("store to resident line reported as L1 miss")
	}
	s.DataAccess(w.Ready+1, 0x1000+16384, false)
	s.DataAccess(w.Ready+500, 0x1000+32768, false)
	if s.L1D.Writebacks() != 0 {
		t.Errorf("write-through cache produced %d writebacks", s.L1D.Writebacks())
	}
}

func TestWriteThroughMissDoesNotAllocate(t *testing.T) {
	m := config.Baseline()
	m.L1D.WriteThrough = true
	s, err := NewSystem(&m)
	if err != nil {
		t.Fatal(err)
	}
	w := s.DataAccess(0, 0x5000, true)
	if !w.Accepted || w.L1Hit || !w.NoFill {
		t.Fatalf("cold write-through store = %+v", w)
	}
	if s.L1D.Contains(0x5000) {
		t.Error("no-write-allocate cache allocated on a store miss")
	}
	// The written line must be in L2 (dirty there).
	if !s.L2.Contains(0x5000) {
		t.Error("write did not propagate to L2")
	}
}

func TestWriteBackDefaultUnchanged(t *testing.T) {
	s := newSystem(t)
	w := s.DataAccess(0, 0x5000, true)
	if w.NoFill {
		t.Error("write-back store reported NoFill")
	}
	if !s.L1D.Contains(0x5000) {
		t.Error("write-allocate cache did not allocate")
	}
}

func TestWriteThroughConfigValidation(t *testing.T) {
	m := config.Baseline()
	m.L1I.WriteThrough = true
	if err := m.Validate(); err == nil {
		t.Error("write-through L1I accepted")
	}
	m = config.Baseline()
	m.Mem.L2.WriteThrough = true
	if err := m.Validate(); err == nil {
		t.Error("write-through L2 accepted")
	}
	m = config.Baseline()
	m.L1D.WriteThrough = true
	if err := m.Validate(); err != nil {
		t.Errorf("write-through L1D rejected: %v", err)
	}
}
