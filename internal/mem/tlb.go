package mem

import (
	"fmt"

	"portsim/internal/config"
)

// TLB is a fully associative translation lookaside buffer with true-LRU
// replacement. The simulator charges a fixed page-walk penalty on a miss;
// translations themselves are identity-mapped (the timing model does not
// need physical addresses, only the hit/miss behaviour). OS-heavy workloads
// with scattered footprints stress it exactly as the paper's methodology
// intends.
type TLB struct {
	pageBits uint
	entries  []tlbEntry
	clock    uint64
	penalty  uint64

	// mru is the index of the last entry hit or filled. Page locality
	// makes consecutive translations land on the same entry, so checking
	// it first turns the common case into one compare instead of a full
	// associative scan. Pure fast path: hit/miss outcomes, LRU stamps and
	// victim choice are identical to the scan below.
	mru int

	hits, misses uint64
}

type tlbEntry struct {
	vpn   uint64
	lru   uint64
	valid bool
}

// NewTLB builds a TLB from configuration; a zero entry count returns a
// disabled TLB whose Translate never charges a penalty.
func NewTLB(cfg config.TLB) (*TLB, error) {
	if cfg.Entries < 0 {
		return nil, fmt.Errorf("mem: negative TLB size")
	}
	if cfg.Entries > 0 {
		if cfg.PageBits < 10 || cfg.PageBits > 30 {
			return nil, fmt.Errorf("mem: TLB page size 2^%d out of range", cfg.PageBits)
		}
		if cfg.MissPenalty < 1 {
			return nil, fmt.Errorf("mem: TLB miss penalty must be positive")
		}
	}
	return &TLB{
		pageBits: uint(cfg.PageBits),
		entries:  make([]tlbEntry, cfg.Entries),
		penalty:  uint64(cfg.MissPenalty),
	}, nil
}

// Enabled reports whether the TLB models anything.
func (t *TLB) Enabled() bool { return len(t.entries) > 0 }

// Translate looks up the page of addr and returns the page-walk penalty in
// cycles: zero on a hit (or when disabled), the configured walk latency on
// a miss (after which the translation is resident).
func (t *TLB) Translate(addr uint64) (penalty uint64) {
	if len(t.entries) == 0 {
		return 0
	}
	vpn := addr >> t.pageBits
	t.clock++
	if m := &t.entries[t.mru]; m.valid && m.vpn == vpn {
		m.lru = t.clock
		t.hits++
		return 0
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			e.lru = t.clock
			t.mru = i
			t.hits++
			return 0
		}
	}
	// Miss: pick the replacement victim — the last invalid entry if any
	// (matching the historical single-pass scan), else true LRU.
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			continue
		}
		if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.misses++
	t.entries[victim] = tlbEntry{vpn: vpn, lru: t.clock, valid: true}
	t.mru = victim
	return t.penalty
}

// FlushAll invalidates every entry (context-switch style disruption; used
// by tests and OS-disruption studies).
func (t *TLB) FlushAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// Reset invalidates every entry and zeroes the statistics, restoring the
// just-constructed state for pooled reuse.
func (t *TLB) Reset() {
	clear(t.entries)
	t.clock = 0
	t.mru = 0
	t.hits, t.misses = 0, 0
}

// Hits and Misses return lookup statistics.
func (t *TLB) Hits() uint64   { return t.hits }
func (t *TLB) Misses() uint64 { return t.misses }

// MissRate returns misses/(hits+misses), zero when unused.
func (t *TLB) MissRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.misses) / float64(total)
}
