// Package mem implements the memory system below the first-level caches: a
// byte-addressable flat memory for functional tests, a bandwidth-limited
// DRAM timing model, and System — the composed L1I/L1D/L2/DRAM hierarchy the
// timing simulator talks to.
//
// Timing model. The hierarchy is queried with (cycle, address) pairs and
// answers with the cycle at which the data is available. Misses allocate
// MSHRs; while an MSHR for a line is outstanding, further accesses to the
// line merge into it. When all MSHRs of a level are busy the access is
// refused and the caller retries on a later cycle — exactly the back-
// pressure that makes extra cache ports valuable in the paper's study.
package mem

import (
	"fmt"

	"portsim/internal/cache"
	"portsim/internal/config"
)

// DRAM models main memory with a fixed access latency and a minimum interval
// between accesses (finite bandwidth). Requests that arrive while the
// channel is busy queue behind it.
type DRAM struct {
	latency  uint64
	interval uint64
	nextFree uint64
	accesses uint64
}

// NewDRAM constructs the DRAM model from configuration.
func NewDRAM(cfg config.Memory) *DRAM {
	return &DRAM{latency: uint64(cfg.DRAMLatency), interval: uint64(cfg.DRAMInterval)}
}

// Access schedules one memory access issued at cycle now and returns the
// cycle its data is available.
func (d *DRAM) Access(now uint64) uint64 {
	start := now
	if d.nextFree > start {
		start = d.nextFree
	}
	d.nextFree = start + d.interval
	d.accesses++
	return start + d.latency
}

// Accesses returns the number of DRAM accesses performed.
func (d *DRAM) Accesses() uint64 { return d.accesses }

// Reset restores the just-constructed state (channel idle, no accesses).
func (d *DRAM) Reset() {
	d.nextFree = 0
	d.accesses = 0
}

// mshrEntry is one outstanding line fill: the line address and the cycle
// the fill completes.
type mshrEntry struct {
	line, done uint64
}

// mshrFile tracks outstanding line fills for one cache level. The file is a
// small flat slice rather than a map: MSHR counts are single digits in every
// machine configuration, so a linear scan beats hashing and keeps the cycle
// loop allocation-free.
type mshrFile struct {
	limit int         // 0 means unlimited
	fills []mshrEntry // outstanding fills, oldest first
}

func newMSHRFile(limit int) *mshrFile {
	capHint := limit
	if capHint <= 0 {
		capHint = 8
	}
	return &mshrFile{limit: limit, fills: make([]mshrEntry, 0, capHint)}
}

// expire drops completed fills, preserving the order of the survivors.
//
//portlint:hotpath
func (f *mshrFile) expire(now uint64) {
	kept := f.fills[:0]
	for _, e := range f.fills {
		if e.done > now {
			kept = append(kept, e)
		}
	}
	f.fills = kept
}

// outstanding returns the fill-completion cycle for a line if one is in
// flight.
//
//portlint:hotpath
func (f *mshrFile) outstanding(lineAddr uint64) (uint64, bool) {
	for i := range f.fills {
		if f.fills[i].line == lineAddr {
			return f.fills[i].done, true
		}
	}
	return 0, false
}

// reset drops every outstanding fill.
func (f *mshrFile) reset() { f.fills = f.fills[:0] }

// full reports whether a new fill cannot be accepted.
func (f *mshrFile) full() bool { return f.limit > 0 && len(f.fills) >= f.limit }

// add records a new outstanding fill.
func (f *mshrFile) add(lineAddr, done uint64) {
	f.fills = append(f.fills, mshrEntry{line: lineAddr, done: done}) //portlint:ignore hotpathclosure fills is preallocated to the MSHR limit and callers check full() first, so append never grows past its construction-time capacity
}

// AccessResult describes the outcome of a hierarchy access.
type AccessResult struct {
	// Accepted is false when the access was refused (MSHRs full); the
	// caller must retry on a later cycle. No state was changed.
	Accepted bool
	// Ready is the cycle the data is available (valid when Accepted).
	Ready uint64
	// L1Hit reports whether the access hit in the first-level cache
	// (including merging into an outstanding fill of the same line).
	L1Hit bool
	// MergedMSHR reports that the access merged into an in-flight fill.
	MergedMSHR bool
	// NoFill reports that the access completes without bringing a line
	// into the L1 (write-through store misses do not allocate), so no
	// refill bandwidth is owed.
	NoFill bool
	// EvictedDirty reports that the access displaced a dirty L1 line,
	// whose victim read-out costs array (port) bandwidth.
	EvictedDirty bool
}

// System is the composed memory hierarchy: split L1 caches over a unified
// L2 over DRAM. The L1 data cache is accessed through the port machinery in
// internal/core; System itself has no notion of ports — it answers "when
// would this access complete" and applies miss-level parallelism limits.
type System struct {
	L1I, L1D *cache.Level
	L2       *cache.Level
	ITLB     *TLB
	DTLB     *TLB
	dram     *DRAM

	l1iMSHR, l1dMSHR, l2MSHR *mshrFile
	l1dWriteThrough          bool

	// Writeback accounting: dirty victims consume a DRAM slot.
	l2Writebacks uint64
}

// NewSystem builds the hierarchy from a validated machine configuration.
func NewSystem(m *config.Machine) (*System, error) {
	l1i, err := cache.NewLevel(m.L1I)
	if err != nil {
		return nil, fmt.Errorf("mem: L1I: %w", err)
	}
	l1d, err := cache.NewLevel(m.L1D)
	if err != nil {
		return nil, fmt.Errorf("mem: L1D: %w", err)
	}
	l2, err := cache.NewLevel(m.Mem.L2)
	if err != nil {
		return nil, fmt.Errorf("mem: L2: %w", err)
	}
	itlb, err := NewTLB(m.ITLB)
	if err != nil {
		return nil, fmt.Errorf("mem: ITLB: %w", err)
	}
	dtlb, err := NewTLB(m.DTLB)
	if err != nil {
		return nil, fmt.Errorf("mem: DTLB: %w", err)
	}
	return &System{
		L1I:             l1i,
		L1D:             l1d,
		L2:              l2,
		ITLB:            itlb,
		DTLB:            dtlb,
		l1dWriteThrough: m.L1D.WriteThrough,
		dram:            NewDRAM(m.Mem),
		l1iMSHR:         newMSHRFile(m.L1I.MSHRs),
		l1dMSHR:         newMSHRFile(m.L1D.MSHRs),
		l2MSHR:          newMSHRFile(m.Mem.L2.MSHRs),
	}, nil
}

// DRAMAccesses returns the number of DRAM accesses (fills plus writebacks).
func (s *System) DRAMAccesses() uint64 { return s.dram.Accesses() }

// Reset restores the whole hierarchy — caches, TLBs, MSHR files, DRAM — to
// its just-constructed state, reusing every backing array. Pooled
// simulations call this between cells so a campaign does not reallocate
// the (large) cache and predictor structures per cell.
func (s *System) Reset() {
	s.L1I.Reset()
	s.L1D.Reset()
	s.L2.Reset()
	s.ITLB.Reset()
	s.DTLB.Reset()
	s.dram.Reset()
	s.l1iMSHR.reset()
	s.l1dMSHR.reset()
	s.l2MSHR.reset()
	s.l2Writebacks = 0
}

// fillFromL2 charges the time to obtain a line from L2 (or below) starting
// at cycle `at`, installing it into L2 as needed, and returns the cycle the
// line is available to the requesting L1. It may refuse if the L2 MSHRs are
// exhausted.
func (s *System) fillFromL2(at uint64, lineAddr uint64) (ready uint64, ok bool) {
	s.l2MSHR.expire(at)
	if done, merged := s.l2MSHR.outstanding(lineAddr); merged {
		return done, true
	}
	l2lat := uint64(s.L2.Geom().HitLatency)
	if s.L2.Lookup(lineAddr, false) {
		return at + l2lat, true
	}
	if s.l2MSHR.full() {
		// Undo nothing: Lookup on a miss only counted statistics, which
		// is acceptable (a refused probe still consumed tag bandwidth).
		return 0, false
	}
	done := s.dram.Access(at + l2lat)
	if _, dirty, evicted := s.L2.Install(lineAddr, false); evicted && dirty {
		s.l2Writebacks++
		s.dram.Access(done) // writeback occupies a DRAM slot after the fill
	}
	s.l2MSHR.add(lineAddr, done)
	return done, true
}

// access is the shared L1 access path for both instruction and data sides.
func (s *System) access(l1 *cache.Level, mshr *mshrFile, now uint64, addr uint64, write bool) AccessResult {
	mshr.expire(now)
	hitLat := uint64(l1.Geom().HitLatency)
	lineAddr := l1.LineAddr(addr)
	if done, merged := mshr.outstanding(lineAddr); merged {
		// The line is being filled; data is available when the fill
		// lands, plus the normal hit latency to read it out. A write
		// merging into a fill must still mark the line dirty once
		// installed — the line was installed at allocation time, so
		// Lookup below handles the dirty bit.
		l1.Lookup(addr, write)
		return AccessResult{Accepted: true, Ready: done + hitLat, L1Hit: true, MergedMSHR: true}
	}
	if l1.Lookup(addr, write) {
		return AccessResult{Accepted: true, Ready: now + hitLat, L1Hit: true}
	}
	if mshr.full() {
		return AccessResult{}
	}
	fillReady, ok := s.fillFromL2(now+hitLat, s.L2.LineAddr(addr))
	if !ok {
		return AccessResult{}
	}
	// Install eagerly; timing is carried by the MSHR entry. A dirty L1
	// victim is written back into L2 (write-back hierarchy): charge an L2
	// tag access but no DRAM trip unless L2 later evicts it.
	evictedDirty := false
	if victim, dirty, evicted := l1.Install(addr, write); evicted && dirty {
		evictedDirty = true
		s.L2.Lookup(victim, true)
		// If the victim missed in L2 (silently dropped inclusion), the
		// writeback allocates there.
		if !s.L2.Contains(victim) {
			s.L2.Install(victim, true)
		}
	}
	mshr.add(lineAddr, fillReady)
	return AccessResult{Accepted: true, Ready: fillReady + hitLat, L1Hit: false, EvictedDirty: evictedDirty}
}

// InstFetch models an instruction fetch of the line containing pc at cycle
// now, including the ITLB lookup: a translation miss delays the fetch by
// the page-walk latency before the cache access starts.
func (s *System) InstFetch(now, pc uint64) AccessResult {
	now += s.ITLB.Translate(pc)
	return s.access(s.L1I, s.l1iMSHR, now, pc, false)
}

// DataAccess models a data access at cycle now, including the DTLB lookup;
// a translation miss serialises the page walk before the cache access.
func (s *System) DataAccess(now, addr uint64, write bool) AccessResult {
	now += s.DTLB.Translate(addr)
	if write && s.l1dWriteThrough {
		return s.writeThrough(now, addr)
	}
	return s.access(s.L1D, s.l1dMSHR, now, addr, write)
}

// writeThrough performs a store against a write-through, no-write-allocate
// L1D: the line is updated (but never dirtied) if present, and the write
// always propagates to the L2 (allocating there on a miss, with the DRAM
// fill charged to the store's completion). Store misses do not fill the L1.
func (s *System) writeThrough(now, addr uint64) AccessResult {
	hitLat := uint64(s.L1D.Geom().HitLatency)
	hit := s.L1D.Lookup(addr, false) // write-through lines stay clean
	l2Line := s.L2.LineAddr(addr)
	ready, ok := s.fillFromL2(now+hitLat, l2Line)
	if !ok {
		return AccessResult{}
	}
	s.L2.Lookup(addr, true) // the write dirties the L2 copy
	if ready < now+hitLat {
		ready = now + hitLat
	}
	return AccessResult{Accepted: true, Ready: ready, L1Hit: hit, NoFill: true}
}

// OutstandingDataMisses returns the number of in-flight L1D fills at cycle
// now (after expiring completed ones), used by statistics and tests.
func (s *System) OutstandingDataMisses(now uint64) int {
	s.l1dMSHR.expire(now)
	return len(s.l1dMSHR.fills)
}
