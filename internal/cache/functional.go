package cache

import (
	"fmt"

	"portsim/internal/config"
)

// Store is the backing memory interface of a Functional cache: a byte-
// addressable store that reads and writes arbitrary spans. internal/mem's
// FlatMem is the usual implementation.
type Store interface {
	// ReadAt copies len(p) bytes starting at addr into p.
	ReadAt(addr uint64, p []byte)
	// WriteAt copies p into the store starting at addr.
	WriteAt(addr uint64, p []byte)
}

// Functional is a data-carrying write-back write-allocate cache over a
// backing Store. It reuses Level for tags, state and replacement, and adds
// per-way data arrays. Its purpose is correctness testing: any sequence of
// Read/Write calls must be indistinguishable from the same calls applied to
// the Store directly (after a final Flush).
type Functional struct {
	level   *Level
	data    [][]byte // indexed [set*assoc+way][LineBytes]
	backing Store
}

// NewFunctional builds a functional cache with the given geometry over the
// backing store.
func NewFunctional(geom config.CacheGeom, backing Store) (*Functional, error) {
	if backing == nil {
		return nil, fmt.Errorf("cache: functional cache requires a backing store")
	}
	level, err := NewLevel(geom)
	if err != nil {
		return nil, err
	}
	n := geom.Sets() * geom.Assoc
	data := make([][]byte, n)
	raw := make([]byte, n*geom.LineBytes)
	for i := range data {
		data[i] = raw[i*geom.LineBytes : (i+1)*geom.LineBytes]
	}
	f := &Functional{level: level, data: data, backing: backing}
	return f, nil
}

// Level exposes the underlying tag/state model (for statistics).
func (f *Functional) Level() *Level { return f.level }

func (f *Functional) wayData(addr uint64) []byte {
	setIdx := f.level.setIndex(addr)
	set := f.level.sets[setIdx]
	tag := f.level.tagOf(addr)
	for i := range set {
		if set[i].state != stateInvalid && set[i].tag == tag {
			return f.data[int(setIdx)*f.level.geom.Assoc+i]
		}
	}
	return nil
}

// ensure brings the line containing addr into the cache, writing back any
// dirty victim, and returns the line's data slice.
func (f *Functional) ensure(addr uint64, write bool) []byte {
	if d := f.wayData(addr); d != nil {
		f.level.Lookup(addr, write) // refresh LRU/dirty and count the hit
		return d
	}
	f.level.Lookup(addr, write) // count the miss
	lineAddr := f.level.LineAddr(addr)
	setIdx := f.level.setIndex(addr)
	// Capture the victim's data before Install overwrites the way: find
	// which way Install will pick by replicating its choice through the
	// returned victim address.
	victimAddr, victimDirty, evicted := f.level.Install(addr, write)
	// Locate the way now holding our tag.
	set := f.level.sets[setIdx]
	tag := f.level.tagOf(addr)
	wayIdx := -1
	for i := range set {
		if set[i].state != stateInvalid && set[i].tag == tag {
			wayIdx = i
			break
		}
	}
	if wayIdx < 0 {
		panic("cache: line vanished immediately after install")
	}
	d := f.data[int(setIdx)*f.level.geom.Assoc+wayIdx]
	// The way Install selected is the one now holding our tag; its data
	// array still holds the victim's bytes, so write them back first.
	if evicted && victimDirty {
		f.backing.WriteAt(victimAddr, d)
	}
	f.backing.ReadAt(lineAddr, d)
	return d
}

// Read copies len(p) bytes at addr through the cache. The span must not
// cross a line boundary (the simulator's accesses never do: they are
// naturally aligned and at most 8 bytes).
func (f *Functional) Read(addr uint64, p []byte) error {
	if err := f.checkSpan(addr, len(p)); err != nil {
		return err
	}
	d := f.ensure(addr, false)
	off := addr - f.level.LineAddr(addr) //portlint:ignore cyclemath line base is addr with low bits masked off
	copy(p, d[off:off+uint64(len(p))])
	return nil
}

// Write copies p into the cache at addr (write-allocate, write-back). The
// span must not cross a line boundary.
func (f *Functional) Write(addr uint64, p []byte) error {
	if err := f.checkSpan(addr, len(p)); err != nil {
		return err
	}
	d := f.ensure(addr, true)
	off := addr - f.level.LineAddr(addr) //portlint:ignore cyclemath line base is addr with low bits masked off
	copy(d[off:off+uint64(len(p))], p)
	return nil
}

func (f *Functional) checkSpan(addr uint64, n int) error {
	if n <= 0 || n > f.level.geom.LineBytes {
		return fmt.Errorf("cache: span of %d bytes invalid for %d-byte lines", n, f.level.geom.LineBytes)
	}
	if f.level.LineAddr(addr) != f.level.LineAddr(addr+uint64(n)-1) {
		return fmt.Errorf("cache: span [%#x,%#x) crosses a line boundary", addr, addr+uint64(n))
	}
	return nil
}

// Flush writes every dirty line back to the store and invalidates the whole
// cache. After Flush, the store holds the complete memory image.
func (f *Functional) Flush() {
	for setIdx, set := range f.level.sets {
		for i := range set {
			if set[i].state == stateDirty {
				lineAddr := f.level.lineAddrFromTag(set[i].tag)
				f.backing.WriteAt(lineAddr, f.data[setIdx*f.level.geom.Assoc+i])
			}
			set[i].state = stateInvalid
		}
	}
}
