package cache

import (
	"testing"

	"portsim/internal/config"
)

func smallGeom() config.CacheGeom {
	// 2 sets, 2 ways, 32-byte lines => 128 bytes total.
	return config.CacheGeom{SizeBytes: 128, Assoc: 2, LineBytes: 32, HitLatency: 1}
}

func TestNewLevelRejectsBadGeometry(t *testing.T) {
	bad := []config.CacheGeom{
		{SizeBytes: 0, Assoc: 1, LineBytes: 32},
		{SizeBytes: 128, Assoc: 0, LineBytes: 32},
		{SizeBytes: 100, Assoc: 2, LineBytes: 32},
		{SizeBytes: 96, Assoc: 1, LineBytes: 32},  // 3 sets
		{SizeBytes: 120, Assoc: 1, LineBytes: 24}, // non-pow2 line
	}
	for i, g := range bad {
		if _, err := NewLevel(g); err == nil {
			t.Errorf("geometry %d accepted: %+v", i, g)
		}
	}
}

func TestLineAddr(t *testing.T) {
	l, err := NewLevel(smallGeom())
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LineAddr(0x1234); got != 0x1220 {
		t.Errorf("LineAddr(0x1234) = %#x, want 0x1220", got)
	}
	if got := l.LineAddr(0x1220); got != 0x1220 {
		t.Errorf("LineAddr of aligned address moved to %#x", got)
	}
}

func TestLookupMissThenHit(t *testing.T) {
	l, _ := NewLevel(smallGeom())
	if l.Lookup(0x100, false) {
		t.Fatal("empty cache hit")
	}
	l.Install(0x100, false)
	if !l.Lookup(0x100, false) {
		t.Fatal("installed line missed")
	}
	if !l.Lookup(0x11f, false) {
		t.Fatal("other byte of same line missed")
	}
	if l.Lookup(0x120, false) {
		t.Fatal("adjacent line hit spuriously")
	}
	if l.Hits() != 2 || l.Misses() != 2 {
		t.Errorf("hits=%d misses=%d, want 2 and 2", l.Hits(), l.Misses())
	}
	if got := l.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
}

func TestMissRateEmpty(t *testing.T) {
	l, _ := NewLevel(smallGeom())
	if l.MissRate() != 0 {
		t.Error("empty cache miss rate should be 0")
	}
}

func TestWriteMakesDirtyAndEvictsAsWriteback(t *testing.T) {
	l, _ := NewLevel(smallGeom())
	// Set index = (addr>>5)&1. Addresses 0x00, 0x40, 0x80 share set 0.
	l.Install(0x00, true) // dirty
	l.Install(0x40, false)
	victim, dirty, evicted := l.Install(0x80, false)
	if !evicted || victim != 0x00 || !dirty {
		t.Errorf("Install eviction = (%#x,%v,%v), want dirty eviction of 0x00", victim, dirty, evicted)
	}
	if l.Writebacks() != 1 {
		t.Errorf("writebacks = %d, want 1", l.Writebacks())
	}
}

func TestLookupWriteDirtiesExistingLine(t *testing.T) {
	l, _ := NewLevel(smallGeom())
	l.Install(0x00, false)
	l.Lookup(0x08, true) // store hit dirties the line
	l.Install(0x40, false)
	_, dirty, evicted := l.Install(0x80, false)
	if !evicted || !dirty {
		t.Error("line dirtied by store hit was not written back on eviction")
	}
}

func TestLRUOrder(t *testing.T) {
	l, _ := NewLevel(smallGeom())
	l.Install(0x00, false)
	l.Install(0x40, false)
	l.Lookup(0x00, false) // 0x00 becomes MRU
	victim, _, evicted := l.Install(0x80, false)
	if !evicted || victim != 0x40 {
		t.Errorf("victim = %#x, want LRU line 0x40", victim)
	}
	if !l.Contains(0x00) {
		t.Error("MRU line evicted")
	}
}

func TestInstallPrefersInvalidWay(t *testing.T) {
	l, _ := NewLevel(smallGeom())
	l.Install(0x00, false)
	if _, _, evicted := l.Install(0x40, false); evicted {
		t.Error("installed into a set with a free way yet evicted something")
	}
	if !l.Contains(0x00) || !l.Contains(0x40) {
		t.Error("both lines should be resident")
	}
}

func TestInstallExistingLineIsIdempotent(t *testing.T) {
	l, _ := NewLevel(smallGeom())
	l.Install(0x00, false)
	if _, _, evicted := l.Install(0x00, true); evicted {
		t.Error("re-install of resident line evicted")
	}
	l.Install(0x40, false)
	// 0x00 must now be dirty (second install was a write).
	_, dirty, _ := l.Install(0x80, false)
	if !dirty {
		t.Error("write re-install did not dirty the line")
	}
}

func TestInvalidate(t *testing.T) {
	l, _ := NewLevel(smallGeom())
	l.Install(0x00, true)
	present, dirty := l.Invalidate(0x00)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if l.Contains(0x00) {
		t.Error("line survived invalidation")
	}
	if present, _ := l.Invalidate(0x00); present {
		t.Error("double invalidation reported present")
	}
}

func TestOnEvictHook(t *testing.T) {
	l, _ := NewLevel(smallGeom())
	var evicted []uint64
	l.OnEvict = func(a uint64) { evicted = append(evicted, a) }
	l.Install(0x00, false)
	l.Install(0x40, false)
	l.Install(0x80, false) // evicts 0x00
	l.Invalidate(0x40)
	if len(evicted) != 2 || evicted[0] != 0x00 || evicted[1] != 0x40 {
		t.Errorf("OnEvict saw %v, want [0x00 0x40]", evicted)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	l, _ := NewLevel(smallGeom())
	l.Install(0x00, false)
	l.Install(0x40, false)
	// Touch 0x00 via Contains (must NOT refresh LRU), then touch 0x40 via
	// Lookup (does refresh). Victim must be 0x00.
	l.Contains(0x00)
	l.Lookup(0x40, false)
	hits, misses := l.Hits(), l.Misses()
	l.Contains(0x00)
	if l.Hits() != hits || l.Misses() != misses {
		t.Error("Contains changed statistics")
	}
	victim, _, _ := l.Install(0x80, false)
	if victim != 0x00 {
		t.Errorf("victim = %#x; Contains must not refresh LRU", victim)
	}
}
