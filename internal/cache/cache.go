// Package cache implements the set-associative cache models used by the
// simulator. Two views are provided over the same geometry and replacement
// machinery:
//
//   - Level: a tag/state model for the timing simulator. It tracks presence,
//     dirtiness and LRU order, and reports evictions so higher layers (the
//     load-all line buffers of internal/core) can keep themselves coherent.
//   - Functional: a data-carrying write-back cache over a backing Store,
//     used by correctness tests to prove that the port-efficiency machinery
//     (store combining, line buffering) never corrupts the memory image.
//
// All caches are write-back, write-allocate, with true-LRU replacement, as
// in the paper's R10000-class memory system.
package cache

import (
	"fmt"

	"portsim/internal/config"
)

// Line states.
const (
	stateInvalid uint8 = iota
	stateClean
	stateDirty
)

type way struct {
	tag   uint64
	state uint8
	lru   uint64
}

// Level is the tag/state cache model. It is not safe for concurrent use;
// the simulator is single-threaded by design (cycle-driven determinism).
type Level struct {
	geom    config.CacheGeom
	sets    [][]way
	setMask uint64
	offBits uint
	clock   uint64

	// Statistics, exported through accessors.
	hits, misses, writebacks, evictions uint64

	// OnEvict, when non-nil, is invoked with the line-aligned address of
	// every line that leaves the cache (replacement or invalidation).
	// internal/core uses it to invalidate load-all line buffers whose
	// backing line is gone.
	OnEvict func(lineAddr uint64)
}

// NewLevel constructs a cache level from validated geometry.
func NewLevel(geom config.CacheGeom) (*Level, error) {
	if geom.SizeBytes <= 0 || geom.Assoc <= 0 || geom.LineBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %+v", geom)
	}
	if geom.SizeBytes%(geom.Assoc*geom.LineBytes) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by assoc*line", geom.SizeBytes)
	}
	nsets := geom.Sets()
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", nsets)
	}
	if geom.LineBytes&(geom.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", geom.LineBytes)
	}
	offBits := uint(0)
	for 1<<offBits < geom.LineBytes {
		offBits++
	}
	sets := make([][]way, nsets)
	backing := make([]way, nsets*geom.Assoc)
	for i := range sets {
		sets[i] = backing[i*geom.Assoc : (i+1)*geom.Assoc]
	}
	return &Level{geom: geom, sets: sets, setMask: uint64(nsets - 1), offBits: offBits}, nil
}

// Reset invalidates every line and zeroes the statistics, restoring the
// level to its just-constructed state (the OnEvict hook is retained, and
// does not fire: a reset is a teardown, not a replacement). Pooled
// simulations reuse the tag arrays across runs through this.
func (l *Level) Reset() {
	for _, set := range l.sets {
		clear(set)
	}
	l.clock = 0
	l.hits, l.misses, l.writebacks, l.evictions = 0, 0, 0, 0
}

// Geom returns the level's geometry.
func (l *Level) Geom() config.CacheGeom { return l.geom }

// LineAddr returns addr rounded down to its line.
func (l *Level) LineAddr(addr uint64) uint64 { return addr &^ (uint64(l.geom.LineBytes) - 1) }

func (l *Level) setIndex(addr uint64) uint64 { return (addr >> l.offBits) & l.setMask }

func (l *Level) tagOf(addr uint64) uint64 { return addr >> l.offBits }

// Lookup probes the cache for addr. On a hit it refreshes LRU state and, for
// write accesses, marks the line dirty. It returns whether the line was
// present.
func (l *Level) Lookup(addr uint64, write bool) bool {
	set := l.sets[l.setIndex(addr)]
	tag := l.tagOf(addr)
	for i := range set {
		if set[i].state != stateInvalid && set[i].tag == tag {
			l.clock++
			set[i].lru = l.clock
			if write {
				set[i].state = stateDirty
			}
			l.hits++
			return true
		}
	}
	l.misses++
	return false
}

// Contains probes without updating LRU or statistics.
func (l *Level) Contains(addr uint64) bool {
	set := l.sets[l.setIndex(addr)]
	tag := l.tagOf(addr)
	for i := range set {
		if set[i].state != stateInvalid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Install brings the line containing addr into the cache (dirty if the
// triggering access was a write, per write-allocate). If a valid line is
// displaced, Install returns its line address and whether it was dirty
// (requiring a writeback). Installing an already-present line just refreshes
// its state.
func (l *Level) Install(addr uint64, write bool) (victimAddr uint64, victimDirty bool, evicted bool) {
	setIdx := l.setIndex(addr)
	set := l.sets[setIdx]
	tag := l.tagOf(addr)
	l.clock++
	victim := 0
	for i := range set {
		if set[i].state != stateInvalid && set[i].tag == tag {
			set[i].lru = l.clock
			if write {
				set[i].state = stateDirty
			}
			return 0, false, false
		}
		if set[i].state == stateInvalid {
			victim = i
			// Keep scanning: the line might still be present in a
			// later way, which must win over filling a hole.
			continue
		}
		if set[victim].state != stateInvalid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	if v.state != stateInvalid {
		victimAddr = l.lineAddrFromTag(v.tag)
		victimDirty = v.state == stateDirty
		evicted = true
		l.evictions++
		if victimDirty {
			l.writebacks++
		}
		if l.OnEvict != nil {
			l.OnEvict(victimAddr)
		}
	}
	v.tag = tag
	v.lru = l.clock
	if write {
		v.state = stateDirty
	} else {
		v.state = stateClean
	}
	return victimAddr, victimDirty, evicted
}

// Invalidate removes the line containing addr if present, returning whether
// it was present and dirty. The OnEvict hook fires for invalidations too.
func (l *Level) Invalidate(addr uint64) (present, dirty bool) {
	set := l.sets[l.setIndex(addr)]
	tag := l.tagOf(addr)
	for i := range set {
		if set[i].state != stateInvalid && set[i].tag == tag {
			dirty = set[i].state == stateDirty
			set[i].state = stateInvalid
			l.evictions++
			if dirty {
				l.writebacks++
			}
			if l.OnEvict != nil {
				l.OnEvict(l.LineAddr(addr))
			}
			return true, dirty
		}
	}
	return false, false
}

func (l *Level) lineAddrFromTag(tag uint64) uint64 { return tag << l.offBits }

// Hits, Misses, Writebacks and Evictions return access statistics.
func (l *Level) Hits() uint64       { return l.hits }
func (l *Level) Misses() uint64     { return l.misses }
func (l *Level) Writebacks() uint64 { return l.writebacks }
func (l *Level) Evictions() uint64  { return l.evictions }

// MissRate returns misses / (hits+misses), zero when no accesses occurred.
func (l *Level) MissRate() float64 {
	total := l.hits + l.misses
	if total == 0 {
		return 0
	}
	return float64(l.misses) / float64(total)
}
