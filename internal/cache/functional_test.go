package cache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"portsim/internal/config"
	"portsim/internal/flatmem"
)

func newFuncCache(t *testing.T) (*Functional, *flatmem.Mem) {
	t.Helper()
	f, err := NewFunctional(smallGeom(), flatmem.New())
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with a handle on the backing store.
	backing := flatmem.New()
	f, err = NewFunctional(smallGeom(), backing)
	if err != nil {
		t.Fatal(err)
	}
	return f, backing
}

func TestFunctionalRequiresBacking(t *testing.T) {
	if _, err := NewFunctional(smallGeom(), nil); err == nil {
		t.Error("nil backing accepted")
	}
}

func TestFunctionalReadMissesToBacking(t *testing.T) {
	f, backing := newFuncCache(t)
	backing.WriteAt(0x100, []byte{1, 2, 3, 4})
	got := make([]byte, 4)
	if err := f.Read(0x100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("Read = %v", got)
	}
	if f.Level().Misses() != 1 || f.Level().Hits() != 0 {
		t.Errorf("miss not counted: hits=%d misses=%d", f.Level().Hits(), f.Level().Misses())
	}
	// Second read hits.
	if err := f.Read(0x102, got[:2]); err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 {
		t.Errorf("hit read = %v", got[:2])
	}
	if f.Level().Hits() != 1 {
		t.Error("hit not counted")
	}
}

func TestFunctionalWriteBack(t *testing.T) {
	f, backing := newFuncCache(t)
	if err := f.Write(0x00, []byte{0xaa}); err != nil {
		t.Fatal(err)
	}
	// Not yet in backing (write-back).
	b := make([]byte, 1)
	backing.ReadAt(0x00, b)
	if b[0] != 0 {
		t.Error("write-through behaviour detected; expected write-back")
	}
	// Evict set 0 by filling two more lines mapping to it.
	if err := f.Read(0x40, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Read(0x80, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	backing.ReadAt(0x00, b)
	if b[0] != 0xaa {
		t.Error("dirty victim not written back")
	}
}

func TestFunctionalFlush(t *testing.T) {
	f, backing := newFuncCache(t)
	if err := f.Write(0x20, []byte{9, 8}); err != nil {
		t.Fatal(err)
	}
	f.Flush()
	b := make([]byte, 2)
	backing.ReadAt(0x20, b)
	if b[0] != 9 || b[1] != 8 {
		t.Errorf("flush lost data: %v", b)
	}
	if f.Level().Contains(0x20) {
		t.Error("flush left a valid line")
	}
}

func TestFunctionalRejectsBadSpans(t *testing.T) {
	f, _ := newFuncCache(t)
	if err := f.Read(0x1e, make([]byte, 4)); err == nil {
		t.Error("line-crossing read accepted")
	}
	if err := f.Write(0x00, nil); err == nil {
		t.Error("empty write accepted")
	}
	if err := f.Write(0x00, make([]byte, 33)); err == nil {
		t.Error("over-line write accepted")
	}
}

// TestFunctionalMatchesFlatMemory is the central property test from
// DESIGN.md: any sequence of naturally aligned reads and writes through the
// cache returns exactly the bytes a flat memory would, and after Flush the
// backing store equals the reference image.
func TestFunctionalMatchesFlatMemory(t *testing.T) {
	type op struct {
		Write bool
		Addr  uint16
		Size  uint8
		Val   uint64
	}
	f := func(ops []op, seed int64) bool {
		backing := flatmem.New()
		cch, err := NewFunctional(config.CacheGeom{SizeBytes: 256, Assoc: 2, LineBytes: 32, HitLatency: 1}, backing)
		if err != nil {
			t.Fatal(err)
		}
		ref := flatmem.New()
		for _, o := range ops {
			size := uint64(1) << (o.Size % 4) // 1,2,4,8
			addr := uint64(o.Addr) &^ (size - 1)
			buf := make([]byte, size)
			if o.Write {
				for i := range buf {
					buf[i] = byte(o.Val >> (8 * i))
				}
				if err := cch.Write(addr, buf); err != nil {
					return false
				}
				ref.WriteAt(addr, buf)
			} else {
				if err := cch.Read(addr, buf); err != nil {
					return false
				}
				want := make([]byte, size)
				ref.ReadAt(addr, want)
				if !bytes.Equal(buf, want) {
					return false
				}
			}
		}
		cch.Flush()
		// Compare the full touched region.
		got := make([]byte, 1<<16)
		want := make([]byte, 1<<16)
		backing.ReadAt(0, got)
		ref.ReadAt(0, want)
		return bytes.Equal(got, want)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestFunctionalRandomStress drives a longer deterministic random workload
// against the reference model with a direct-mapped cache (maximum conflict
// pressure).
func TestFunctionalRandomStress(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	backing := flatmem.New()
	cch, err := NewFunctional(config.CacheGeom{SizeBytes: 128, Assoc: 1, LineBytes: 16, HitLatency: 1}, backing)
	if err != nil {
		t.Fatal(err)
	}
	ref := flatmem.New()
	for i := 0; i < 20000; i++ {
		size := uint64(1) << rng.Intn(4)
		addr := (uint64(rng.Intn(1 << 12))) &^ (size - 1)
		buf := make([]byte, size)
		if rng.Intn(2) == 0 {
			rng.Read(buf)
			if err := cch.Write(addr, buf); err != nil {
				t.Fatal(err)
			}
			ref.WriteAt(addr, buf)
		} else {
			if err := cch.Read(addr, buf); err != nil {
				t.Fatal(err)
			}
			want := make([]byte, size)
			ref.ReadAt(addr, want)
			if !bytes.Equal(buf, want) {
				t.Fatalf("op %d: read %#x/%d = %v, want %v", i, addr, size, buf, want)
			}
		}
	}
	cch.Flush()
	got := make([]byte, 1<<12)
	want := make([]byte, 1<<12)
	backing.ReadAt(0, got)
	ref.ReadAt(0, want)
	if !bytes.Equal(got, want) {
		t.Fatal("memory image diverged after flush")
	}
}
