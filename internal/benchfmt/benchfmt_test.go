package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

func report(cyclesPerSec, allocsPer1k float64) *Report {
	return &Report{
		Schema: Schema,
		Total:  Experiment{ID: "total", CyclesPerSec: cyclesPerSec, AllocsPer1kCycles: allocsPer1k},
	}
}

func TestDerive(t *testing.T) {
	e := Experiment{WallSeconds: 2, SimCycles: 4_000_000, SimInsts: 3_000_000, Allocs: 8000}
	e.Derive()
	if e.CyclesPerSec != 2_000_000 || e.InstsPerSec != 1_500_000 {
		t.Errorf("rates: got %v cycles/s, %v insts/s", e.CyclesPerSec, e.InstsPerSec)
	}
	if e.AllocsPer1kCycles != 2 {
		t.Errorf("allocs/1k-cycles: got %v, want 2", e.AllocsPer1kCycles)
	}
	// Zero wall time / zero cycles must not divide by zero.
	var z Experiment
	z.Derive()
	if z.CyclesPerSec != 0 || z.AllocsPer1kCycles != 0 {
		t.Errorf("zero experiment derived nonzero rates: %+v", z)
	}
}

func TestCompare(t *testing.T) {
	base := report(1_000_000, 10)
	cases := []struct {
		name    string
		current *Report
		wantErr string
	}{
		{"identical", report(1_000_000, 10), ""},
		{"faster and leaner", report(2_000_000, 1), ""},
		{"within tolerance", report(950_000, 10.5), ""},
		{"rate regressed", report(800_000, 10), "cycles/sec regressed"},
		{"allocs grew", report(1_000_000, 20), "allocs/1k-cycles grew"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Compare(base, tc.current, 0.10, 0.25)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected failure: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestCompareZeroBaselineSkipsCheck(t *testing.T) {
	// A baseline with no recorded metric (older file) must not fail the gate.
	if err := Compare(report(0, 0), report(1, 100), 0.10, 0.25); err != nil {
		t.Fatalf("zero baseline should disable checks: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := report(123_456, 7.5)
	want.Date = "2026-08-05"
	want.HostCPUs = 16
	want.GoMaxProcs = 12
	want.Experiments = []Experiment{{ID: "F1", SimCycles: 99}}
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != want.Total || got.Date != want.Date || len(got.Experiments) != 1 || got.Experiments[0].SimCycles != 99 {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if got.HostCPUs != 16 || got.GoMaxProcs != 12 {
		t.Fatalf("host fields drifted: cpus %d, gomaxprocs %d", got.HostCPUs, got.GoMaxProcs)
	}
}

// TestHostFieldsOptional: BENCH files written before the host fields
// existed parse with both zero — benchgate treats that as "host unknown"
// rather than rejecting the trajectory history.
func TestHostFieldsOptional(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	if err := Write(path, report(1000, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.HostCPUs != 0 || got.GoMaxProcs != 0 {
		t.Fatalf("absent host fields read as %d/%d, want 0/0", got.HostCPUs, got.GoMaxProcs)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	r := report(1, 1)
	r.Schema = "something-else/v9"
	if err := Write(path, r); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
