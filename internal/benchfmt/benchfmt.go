// Package benchfmt defines the BENCH_*.json throughput-trajectory format
// shared by `portbench -benchjson` (the writer) and `benchgate` (the CI
// comparator). A BENCH file records, per experiment and in total, how fast
// the simulator chewed through simulated cycles and how much it allocated
// doing so; the trajectory of these files across PRs is the repository's
// performance history.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema identifies the current file format.
const Schema = "portsim-bench/v1"

// Experiment is one experiment's (or the whole run's) throughput record.
type Experiment struct {
	// ID is the experiment identifier (T1, F6, ...) or "total".
	ID string `json:"id"`
	// WallSeconds is the wall-clock time the experiment took.
	WallSeconds float64 `json:"wall_seconds"`
	// SimCycles and SimInsts count simulated work actually executed for
	// this experiment — memoised cells contribute zero, so an experiment
	// that reused every cell legitimately reports no new work.
	SimCycles uint64 `json:"sim_cycles"`
	SimInsts  uint64 `json:"sim_insts"`
	// Allocs is the number of heap allocations (runtime mallocs) observed
	// while the experiment ran.
	Allocs uint64 `json:"allocs"`
	// CyclesPerSec and InstsPerSec are SimCycles/WallSeconds and
	// SimInsts/WallSeconds; zero when the experiment did no new work.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	InstsPerSec  float64 `json:"insts_per_sec"`
	// AllocsPer1kCycles is Allocs per thousand simulated cycles, the
	// hardware-independent allocation-pressure metric: it compares across
	// machines, unlike cycles/sec.
	AllocsPer1kCycles float64 `json:"allocs_per_1k_cycles"`
}

// Report is one BENCH_*.json file.
type Report struct {
	Schema    string `json:"schema"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Parallel is the simulation worker count the run used; cycles/sec is
	// only comparable between runs at equal parallelism.
	Parallel int `json:"parallel"`
	// HostCPUs and GoMaxProcs describe the machine the run measured:
	// runtime.NumCPU() and runtime.GOMAXPROCS(0). A throughput delta
	// between two BENCH files means nothing if these differ — benchgate
	// prints both sides so a cross-host comparison is visibly suspect.
	// Zero in files written before the fields existed.
	HostCPUs   int `json:"host_cpus,omitempty"`
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// Spec echoes the run scale so a reader can tell quick from full runs.
	Workloads int    `json:"workloads"`
	Insts     uint64 `json:"insts"`
	Seed      int64  `json:"seed"`
	// Notes carries free-form context, e.g. before/after numbers for the
	// PR that produced the file.
	Notes string `json:"notes,omitempty"`

	Experiments []Experiment `json:"experiments"`
	Total       Experiment   `json:"total"`
}

// Derive fills an experiment's rate fields from its raw fields.
func (e *Experiment) Derive() {
	if e.WallSeconds > 0 {
		e.CyclesPerSec = float64(e.SimCycles) / e.WallSeconds
		e.InstsPerSec = float64(e.SimInsts) / e.WallSeconds
	}
	if e.SimCycles > 0 {
		e.AllocsPer1kCycles = float64(e.Allocs) / float64(e.SimCycles) * 1000
	}
}

// Write marshals the report (indented, trailing newline) to path.
func Write(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read parses a BENCH file and validates its schema tag.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %v", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("benchfmt: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// Compare checks current against baseline and returns a non-nil error when
// current's total cycles/sec has regressed by more than maxRegress (a
// fraction: 0.10 means 10%) or its total allocs/1k-cycles has grown by more
// than maxAllocGrowth. A zero baseline metric disables that check — a
// baseline recorded before the metric existed must not hard-fail the gate.
func Compare(baseline, current *Report, maxRegress, maxAllocGrowth float64) error {
	if b, c := baseline.Total.CyclesPerSec, current.Total.CyclesPerSec; b > 0 {
		floor := b * (1 - maxRegress)
		if c < floor {
			return fmt.Errorf("cycles/sec regressed %.1f%%: %.0f -> %.0f (floor %.0f at -max-regress %.2f)",
				(1-c/b)*100, b, c, floor, maxRegress)
		}
	}
	if b, c := baseline.Total.AllocsPer1kCycles, current.Total.AllocsPer1kCycles; b > 0 {
		ceil := b * (1 + maxAllocGrowth)
		if c > ceil {
			return fmt.Errorf("allocs/1k-cycles grew %.1f%%: %.2f -> %.2f (ceiling %.2f at -max-alloc-growth %.2f)",
				(c/b-1)*100, b, c, ceil, maxAllocGrowth)
		}
	}
	return nil
}
