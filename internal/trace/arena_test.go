package trace

import (
	"testing"

	"portsim/internal/isa"
)

var _ Batcher = (*Cursor)(nil)

// arenaTestProgram builds a varied synthetic trace: every class kind,
// taken and not-taken branches, kernel episodes, memory operations with
// sizes — enough to exercise every metadata bit.
func arenaTestProgram(n int) []isa.Inst {
	insts := make([]isa.Inst, 0, n)
	pc := uint64(0x40_0000)
	for i := 0; len(insts) < n; i++ {
		var in isa.Inst
		switch i % 11 {
		case 0:
			in = isa.Inst{PC: pc, Class: isa.IntALU, Dest: 3, Src1: 4, Src2: 5}
		case 1:
			in = isa.Inst{PC: pc, Class: isa.Load, Dest: 6, Src1: 3, Addr: 0x1000 + uint64(i)*8, Size: 8}
		case 2:
			in = isa.Inst{PC: pc, Class: isa.Store, Src1: 6, Src2: 3, Addr: 0x2000 + uint64(i)*4, Size: 4}
		case 3:
			in = isa.Inst{PC: pc, Class: isa.Branch, Src1: 6, Taken: i%2 == 0, Target: pc + 64}
		case 4:
			in = isa.Inst{PC: pc, Class: isa.FPAdd, Dest: 40, Src1: 41, Src2: 42}
		case 5:
			in = isa.Inst{PC: pc, Class: isa.Jump, Target: pc + 128}
		case 6:
			in = isa.Inst{PC: pc, Class: isa.Call, Target: pc + 256}
		case 7:
			in = isa.Inst{PC: pc, Class: isa.Return, Target: pc - 512}
		case 8:
			in = isa.Inst{PC: pc, Class: isa.Syscall, Target: 0x8000_0000}
		case 9:
			in = isa.Inst{PC: pc, Class: isa.Load, Dest: 7, Src1: 8, Addr: 0x9000, Size: 4, Kernel: true}
		case 10:
			in = isa.Inst{PC: pc, Class: isa.IntMul, Dest: 9, Src1: 10, Src2: 11}
		}
		insts = append(insts, in)
		if in.Redirects() {
			pc = in.Target
		} else {
			pc = in.FallThrough()
		}
	}
	return insts
}

// TestArenaReplayMatchesSource is the arena's core contract: a cursor over
// a materialised stream replays instruction-for-instruction what the
// source stream produced, via Next and via NextBatch in awkward chunk
// sizes, and the precomputed metadata bits restate the instruction's own
// properties exactly.
func TestArenaReplayMatchesSource(t *testing.T) {
	const n = 5_000
	want := arenaTestProgram(n)
	a := Materialize(NewSliceStream(want), n)
	if a.Len() != n {
		t.Fatalf("Len = %d, want %d", a.Len(), n)
	}
	if a.Bytes() != int64(n)*BytesPerInst {
		t.Fatalf("Bytes = %d, want %d", a.Bytes(), int64(n)*BytesPerInst)
	}

	cur := a.NewCursor()
	var got isa.Inst
	for i := range want {
		if !cur.Next(&got) {
			t.Fatalf("cursor exhausted at %d", i)
		}
		if got != want[i] {
			t.Fatalf("instruction %d diverged:\n source %+v\n replay %+v", i, want[i], got)
		}
	}
	if cur.Next(&got) {
		t.Fatal("cursor yielded past the arena's end")
	}

	meta := a.Meta()
	for i := range want {
		in := &want[i]
		checks := []struct {
			name string
			bit  uint8
			want bool
		}{
			{"taken", MetaTaken, in.Taken},
			{"kernel", MetaKernel, in.Kernel},
			{"mem", MetaMem, in.Class.IsMem()},
			{"ctrl", MetaCtrl, in.Class.IsCtrl()},
			{"redirect", MetaRedirect, in.Redirects()},
		}
		for _, c := range checks {
			if got := meta[i]&c.bit != 0; got != c.want {
				t.Fatalf("instruction %d meta %s = %v, want %v", i, c.name, got, c.want)
			}
		}
	}

	batched := a.NewCursor()
	chunks := []int{1, 3, 7, 64, 128, 1000}
	var replay []isa.Inst
	for i := 0; len(replay) < n; i++ {
		buf := make([]isa.Inst, chunks[i%len(chunks)])
		k := batched.NextBatch(buf)
		replay = append(replay, buf[:k]...)
		if k < len(buf) {
			break
		}
	}
	if len(replay) != n {
		t.Fatalf("NextBatch drained %d instructions, want %d", len(replay), n)
	}
	for i := range want {
		if replay[i] != want[i] {
			t.Fatalf("batched instruction %d diverged", i)
		}
	}
}

// TestMaterializeBounds covers truncation (n smaller than the stream) and
// early stream exhaustion (n larger).
func TestMaterializeBounds(t *testing.T) {
	prog := arenaTestProgram(300)
	if got := Materialize(NewSliceStream(prog), 100).Len(); got != 100 {
		t.Errorf("truncating Materialize kept %d instructions, want 100", got)
	}
	if got := Materialize(NewSliceStream(prog), 1000).Len(); got != 300 {
		t.Errorf("over-asking Materialize kept %d instructions, want 300", got)
	}
	// The batch path must land on identical contents.
	sliced := Materialize(NewSliceStream(prog), 300)
	var in isa.Inst
	cur := sliced.NewCursor()
	for i := 0; cur.Next(&in); i++ {
		if in != prog[i] {
			t.Fatalf("instruction %d diverged through the non-batch path", i)
		}
	}
}

// TestCursorDoesNotAllocate is the zero-alloc proof for the replay path:
// once the arena exists, streaming from it — scalar, batched, or via the
// direct decode the core's fetch stage uses — never touches the heap.
func TestCursorDoesNotAllocate(t *testing.T) {
	a := Materialize(NewSliceStream(arenaTestProgram(4096)), 4096)
	cur := a.NewCursor()
	var in isa.Inst
	if avg := testing.AllocsPerRun(1000, func() {
		if !cur.Next(&in) {
			cur = a.NewCursor()
		}
	}); avg != 0 {
		t.Errorf("Cursor.Next allocates %v objects/call; want 0", avg)
	}
	buf := make([]isa.Inst, 64)
	bcur := a.NewCursor()
	if avg := testing.AllocsPerRun(1000, func() {
		if bcur.NextBatch(buf) < len(buf) {
			bcur = a.NewCursor()
		}
	}); avg != 0 {
		t.Errorf("Cursor.NextBatch allocates %v objects/call; want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { a.Inst(17, &in) }); avg != 0 {
		t.Errorf("Arena.Inst allocates %v objects/call; want 0", avg)
	}
}
