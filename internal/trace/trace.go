// Package trace defines the dynamic instruction stream abstraction that
// connects workload generators to the timing simulator, plus a compact
// binary on-disk format so generated traces can be captured once and
// replayed (the cmd/tracegen tool).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"portsim/internal/isa"
)

// Stream produces a dynamic instruction stream. Implementations must be
// deterministic for a given construction (same seed, same stream).
type Stream interface {
	// Next fills in with the next dynamic instruction and returns true,
	// or returns false when the stream is exhausted. The pointed-to value
	// is owned by the caller between calls.
	Next(in *isa.Inst) bool
}

// Batcher is an optional extension of Stream: implementations can fill a
// whole slice of instructions in one call, so a consumer pays one dynamic
// dispatch per chunk instead of one per instruction. NextBatch fills a
// prefix of dst and returns its length; a count shorter than len(dst)
// means the stream is exhausted. The filled prefix must be exactly the
// sequence the same number of Next calls would have produced — batching is
// a calling convention, never a semantic change.
type Batcher interface {
	Stream
	NextBatch(dst []isa.Inst) int
}

// SliceStream replays a fixed instruction slice; used heavily in tests to
// drive the core with hand-built programs.
type SliceStream struct {
	insts []isa.Inst
	pos   int
}

// NewSliceStream returns a stream over the given instructions.
func NewSliceStream(insts []isa.Inst) *SliceStream {
	return &SliceStream{insts: insts}
}

// Next implements Stream.
func (s *SliceStream) Next(in *isa.Inst) bool {
	if s.pos >= len(s.insts) {
		return false
	}
	*in = s.insts[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Limit wraps a stream and truncates it after n instructions.
type Limit struct {
	inner Stream
	left  uint64
}

// NewLimit returns a stream yielding at most n instructions of inner.
func NewLimit(inner Stream, n uint64) *Limit {
	return &Limit{inner: inner, left: n}
}

// Next implements Stream.
func (l *Limit) Next(in *isa.Inst) bool {
	if l.left == 0 {
		return false
	}
	if !l.inner.Next(in) {
		l.left = 0
		return false
	}
	l.left--
	return true
}

// Tee passes a stream through while appending every instruction to a slice,
// for capturing generator output in tests.
type Tee struct {
	inner    Stream
	Captured []isa.Inst
}

// NewTee returns a capturing wrapper around inner.
func NewTee(inner Stream) *Tee { return &Tee{inner: inner} }

// Next implements Stream.
//
//portlint:coldpath Tee is a test-capture wrapper; campaigns never put one on the simulated path, so its growing append is not per-cycle work
func (t *Tee) Next(in *isa.Inst) bool {
	if !t.inner.Next(in) {
		return false
	}
	t.Captured = append(t.Captured, *in)
	return true
}

// Binary format
//
// A trace file is the magic string, a format version byte, then a sequence
// of records. Each record is:
//
//	flags   byte   (class in low 4 bits would not fit; layout below)
//	class   byte
//	dest, src1, src2  byte each
//	size    byte   (memory ops only)
//	taken/kernel packed into flags
//	pc, addr, target  uvarint deltas/absolutes
//
// PCs are delta-encoded against the previous record's fall-through to keep
// sequential code small.

const magic = "PORTSIMTRC"
const version = 1

// Flag bits in the record header.
const (
	flagTaken  = 1 << 0
	flagKernel = 1 << 1
	flagMem    = 1 << 2
	flagCtrl   = 1 << 3
)

// Writer serialises instructions to a binary trace.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	count  uint64
	opened bool
}

// NewWriter returns a Writer targeting w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) writeHeader() error {
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	return w.w.WriteByte(version)
}

// Write appends one instruction record.
func (w *Writer) Write(in *isa.Inst) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to write invalid instruction: %w", err)
	}
	if !w.opened {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.opened = true
	}
	var flags byte
	if in.Taken {
		flags |= flagTaken
	}
	if in.Kernel {
		flags |= flagKernel
	}
	if in.Class.IsMem() {
		flags |= flagMem
	}
	if in.Class.IsCtrl() {
		flags |= flagCtrl
	}
	var buf [2 + 3 + binary.MaxVarintLen64*3 + 1]byte
	n := 0
	buf[n] = flags
	n++
	buf[n] = byte(in.Class)
	n++
	buf[n] = byte(in.Dest)
	n++
	buf[n] = byte(in.Src1)
	n++
	buf[n] = byte(in.Src2)
	n++
	// PC as zig-zag delta from the previous instruction's fall-through.
	delta := int64(in.PC) - int64(w.lastPC)
	n += binary.PutVarint(buf[n:], delta)
	w.lastPC = in.FallThrough()
	if in.Class.IsMem() {
		buf[n] = in.Size
		n++
		n += binary.PutUvarint(buf[n:], in.Addr)
	}
	if in.Class.IsCtrl() {
		n += binary.PutUvarint(buf[n:], in.Target)
	}
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Flush writes buffered data through. Must be called before closing the
// underlying file.
func (w *Writer) Flush() error {
	if !w.opened {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.opened = true
	}
	return w.w.Flush()
}

// Reader deserialises a binary trace; it implements Stream.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
	opened bool
	err    error
}

// NewReader returns a Reader over r. Header validation happens on first
// Next; Err reports any format error afterwards.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) readHeader() error {
	got := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(r.r, got); err != nil {
		return fmt.Errorf("trace: short header: %w", err)
	}
	if string(got[:len(magic)]) != magic {
		return errors.New("trace: bad magic; not a portsim trace")
	}
	if got[len(magic)] != version {
		return fmt.Errorf("trace: unsupported version %d", got[len(magic)])
	}
	return nil
}

// Next implements Stream. On malformed input it stops the stream and
// records the error, retrievable via Err.
//
//portlint:coldpath file-trace decode is cmd/tracegen tooling, I/O-bound by construction; experiment campaigns stream from generators or arenas, never through a Reader
func (r *Reader) Next(in *isa.Inst) bool {
	if r.err != nil {
		return false
	}
	if !r.opened {
		if err := r.readHeader(); err != nil {
			r.err = err
			return false
		}
		r.opened = true
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			r.err = err
		}
		return false
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	*in = isa.Inst{
		Class:  isa.Class(hdr[0]),
		Dest:   isa.Reg(hdr[1]),
		Src1:   isa.Reg(hdr[2]),
		Src2:   isa.Reg(hdr[3]),
		Taken:  flags&flagTaken != 0,
		Kernel: flags&flagKernel != 0,
	}
	delta, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("trace: truncated pc: %w", err)
		return false
	}
	in.PC = uint64(int64(r.lastPC) + delta)
	r.lastPC = in.FallThrough()
	if flags&flagMem != 0 {
		size, err := r.r.ReadByte()
		if err != nil {
			r.err = fmt.Errorf("trace: truncated size: %w", err)
			return false
		}
		in.Size = size
		if in.Addr, err = binary.ReadUvarint(r.r); err != nil {
			r.err = fmt.Errorf("trace: truncated addr: %w", err)
			return false
		}
	}
	if flags&flagCtrl != 0 {
		if in.Target, err = binary.ReadUvarint(r.r); err != nil {
			r.err = fmt.Errorf("trace: truncated target: %w", err)
			return false
		}
	}
	if err := in.Validate(); err != nil {
		r.err = err
		return false
	}
	return true
}

// Err returns the first error encountered while reading, or nil at clean
// end of stream.
func (r *Reader) Err() error { return r.err }
