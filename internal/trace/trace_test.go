package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"portsim/internal/isa"
)

func sampleInsts() []isa.Inst {
	return []isa.Inst{
		{PC: 0x1000, Class: isa.IntALU, Dest: 3, Src1: 1, Src2: 2},
		{PC: 0x1004, Class: isa.Load, Dest: 4, Src1: 3, Addr: 0x8000, Size: 8},
		{PC: 0x1008, Class: isa.Store, Src1: 3, Src2: 4, Addr: 0x8008, Size: 4},
		{PC: 0x100c, Class: isa.Branch, Target: 0x1000, Taken: true},
		{PC: 0x1000, Class: isa.FPMul, Dest: 40, Src1: 33, Src2: 34, Kernel: true},
		{PC: 0x1004, Class: isa.Call, Target: 0x9000},
		{PC: 0x9000, Class: isa.Return, Target: 0x1008},
	}
}

func TestSliceStream(t *testing.T) {
	insts := sampleInsts()
	s := NewSliceStream(insts)
	var in isa.Inst
	for i := range insts {
		if !s.Next(&in) {
			t.Fatalf("stream ended at %d", i)
		}
		if in != insts[i] {
			t.Fatalf("inst %d = %+v, want %+v", i, in, insts[i])
		}
	}
	if s.Next(&in) {
		t.Error("stream yielded past the end")
	}
	s.Reset()
	if !s.Next(&in) || in != insts[0] {
		t.Error("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	s := NewLimit(NewSliceStream(sampleInsts()), 3)
	var in isa.Inst
	n := 0
	for s.Next(&in) {
		n++
	}
	if n != 3 {
		t.Errorf("limited stream yielded %d, want 3", n)
	}
	// Limit larger than the stream just passes everything.
	s = NewLimit(NewSliceStream(sampleInsts()), 100)
	n = 0
	for s.Next(&in) {
		n++
	}
	if n != len(sampleInsts()) {
		t.Errorf("over-limit yielded %d", n)
	}
	// Zero limit yields nothing.
	s = NewLimit(NewSliceStream(sampleInsts()), 0)
	if s.Next(&in) {
		t.Error("zero limit yielded")
	}
}

func TestTee(t *testing.T) {
	tee := NewTee(NewSliceStream(sampleInsts()))
	var in isa.Inst
	for tee.Next(&in) {
	}
	if len(tee.Captured) != len(sampleInsts()) {
		t.Errorf("captured %d, want %d", len(tee.Captured), len(sampleInsts()))
	}
	for i, got := range tee.Captured {
		if got != sampleInsts()[i] {
			t.Errorf("captured inst %d differs", i)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	insts := sampleInsts()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(insts)) {
		t.Errorf("Count = %d", w.Count())
	}
	r := NewReader(&buf)
	var in isa.Inst
	for i := range insts {
		if !r.Next(&in) {
			t.Fatalf("reader ended at %d: %v", i, r.Err())
		}
		if in != insts[i] {
			t.Errorf("inst %d = %+v, want %+v", i, in, insts[i])
		}
	}
	if r.Next(&in) {
		t.Error("reader yielded past the end")
	}
	if r.Err() != nil {
		t.Errorf("clean EOF reported error %v", r.Err())
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	bad := isa.Inst{Class: isa.Load, Dest: 0, Addr: 0x1000, Size: 8} // load without dest
	if err := w.Write(&bad); err == nil {
		t.Error("invalid instruction written")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("not a trace at all")))
	var in isa.Inst
	if r.Next(&in) {
		t.Error("garbage accepted")
	}
	if r.Err() == nil {
		t.Error("no error for garbage input")
	}
}

func TestReaderRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("PORTSIMTRC")
	buf.WriteByte(99)
	r := NewReader(&buf)
	var in isa.Inst
	if r.Next(&in) || r.Err() == nil {
		t.Error("wrong version accepted")
	}
}

func TestReaderTruncated(t *testing.T) {
	insts := sampleInsts()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop mid-record (a few bytes shy of the end).
	r := NewReader(bytes.NewReader(full[:len(full)-2]))
	var in isa.Inst
	n := 0
	for r.Next(&in) {
		n++
	}
	if r.Err() == nil {
		t.Error("truncation not reported")
	}
	if n >= len(insts) {
		t.Error("read every instruction from a truncated trace")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var in isa.Inst
	if r.Next(&in) {
		t.Error("empty trace yielded an instruction")
	}
	if r.Err() != nil {
		t.Errorf("empty trace errored: %v", r.Err())
	}
}

// TestBinaryRoundTripProperty: arbitrary valid instruction sequences survive
// the encode/decode round trip exactly.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(raw []uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		insts := make([]isa.Inst, 0, len(raw))
		pc := uint64(0x10000)
		for _, v := range raw {
			var in isa.Inst
			in.PC = pc
			switch v % 5 {
			case 0:
				in.Class = isa.IntALU
				in.Dest = isa.Reg(1 + v%31)
				in.Src1 = isa.Reg(v % 32)
			case 1:
				in.Class = isa.Load
				in.Dest = isa.Reg(1 + v%31)
				in.Size = 1 << (v % 4)
				in.Addr = (v % (1 << 40)) &^ (uint64(in.Size) - 1)
			case 2:
				in.Class = isa.Store
				in.Size = 1 << (v % 4)
				in.Addr = (v % (1 << 40)) &^ (uint64(in.Size) - 1)
			case 3:
				in.Class = isa.Branch
				in.Target = v % (1 << 40)
				in.Taken = v%2 == 0
			case 4:
				in.Class = isa.FPAdd
				in.Dest = isa.Reg(33 + v%30)
				in.Src1 = isa.Reg(32 + v%32)
			}
			in.Kernel = rng.Intn(4) == 0
			if in.Validate() != nil {
				continue
			}
			insts = append(insts, in)
			pc = in.NextPC()
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := range insts {
			if err := w.Write(&insts[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		var in isa.Inst
		for i := range insts {
			if !r.Next(&in) || in != insts[i] {
				return false
			}
		}
		return !r.Next(&in) && r.Err() == nil
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("PORTSIM"))) // shorter than magic+version
	var in isa.Inst
	if r.Next(&in) || r.Err() == nil {
		t.Error("truncated header accepted")
	}
}

func TestReaderTruncatedRecordFields(t *testing.T) {
	// Build one valid record, then chop at every byte boundary: the reader
	// must fail cleanly (error or clean EOF at the header boundary), never
	// yield a corrupted instruction silently past the chop.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := isa.Inst{PC: 0x1000, Class: isa.Load, Dest: 2, Addr: 0x8000, Size: 8}
	if err := w.Write(&in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	headerLen := len("PORTSIMTRC") + 1
	for cut := headerLen + 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		var got isa.Inst
		if r.Next(&got) {
			t.Fatalf("cut at %d of %d yielded an instruction", cut, len(full))
		}
		if r.Err() == nil {
			t.Fatalf("cut at %d reported clean EOF mid-record", cut)
		}
	}
}

func TestReaderRejectsCorruptClass(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := isa.Inst{PC: 0x1000, Class: isa.IntALU, Dest: 2}
	if err := w.Write(&in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the class byte of the first record (flags byte is right
	// after the 11-byte header; class follows it).
	data[len("PORTSIMTRC")+1+1] = 0xee
	r := NewReader(bytes.NewReader(data))
	var got isa.Inst
	if r.Next(&got) || r.Err() == nil {
		t.Error("corrupt class accepted")
	}
}

func TestTeeStopsCleanly(t *testing.T) {
	tee := NewTee(NewSliceStream(nil))
	var in isa.Inst
	if tee.Next(&in) {
		t.Error("empty tee yielded")
	}
	if len(tee.Captured) != 0 {
		t.Error("empty tee captured instructions")
	}
}
