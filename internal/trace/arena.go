package trace

import "portsim/internal/isa"

// An Arena is an immutable, materialised dynamic instruction trace in
// struct-of-arrays layout. Sweeps that vary only the machine axis replay
// one arena through many Cursors instead of re-running the workload
// generator per cell, and the packed metadata lets the core's fetch stage
// reduce its per-instruction control tests to mask/flag operations.
//
// Every stored word is machine-independent: PCs, addresses, targets and
// register names come straight from the generator, and the metadata byte
// only restates properties of the instruction itself (its class kind, and
// whether the committed path redirects at it — isa.Inst.Redirects, which
// depends on the class and the trace's taken bit, never on predictor or
// cache state). Nothing in an arena encodes a fetch width, a line size or
// a predictor decision, so one arena serves every machine configuration.
//
// Arenas are append-once: Materialize fills one and nothing mutates it
// afterwards, so any number of Cursors — across goroutines — may read it
// concurrently without synchronisation.
type Arena struct {
	pc     []uint64
	addr   []uint64
	target []uint64
	class  []uint8
	dest   []uint8
	src1   []uint8
	src2   []uint8
	size   []uint8
	meta   []uint8
}

// Metadata flag bits, one byte per instruction. MetaRedirect is the
// precomputed isa.Inst.Redirects bit: the committed path leaves the
// fall-through at this instruction (unconditional control, or a taken
// branch).
const (
	MetaTaken    = 1 << 0
	MetaKernel   = 1 << 1
	MetaMem      = 1 << 2
	MetaCtrl     = 1 << 3
	MetaRedirect = 1 << 4
)

// BytesPerInst is the arena storage cost per instruction: three 64-bit
// words (pc, addr, target) plus six bytes (class, three registers, size,
// metadata). Byte budgets divide by this.
const BytesPerInst = 3*8 + 6

// Materialize drains up to n instructions from s into a new arena, using
// the stream's batch interface when it has one. A shorter arena means the
// stream ended early.
func Materialize(s Stream, n int) *Arena {
	a := &Arena{
		pc:     make([]uint64, 0, n),
		addr:   make([]uint64, 0, n),
		target: make([]uint64, 0, n),
		class:  make([]uint8, 0, n),
		dest:   make([]uint8, 0, n),
		src1:   make([]uint8, 0, n),
		src2:   make([]uint8, 0, n),
		size:   make([]uint8, 0, n),
		meta:   make([]uint8, 0, n),
	}
	if b, ok := s.(Batcher); ok {
		var buf [128]isa.Inst
		for len(a.pc) < n {
			want := n - len(a.pc)
			if want > len(buf) {
				want = len(buf)
			}
			got := b.NextBatch(buf[:want])
			for i := 0; i < got; i++ {
				a.push(&buf[i])
			}
			if got < want {
				break
			}
		}
		return a
	}
	var in isa.Inst
	for len(a.pc) < n && s.Next(&in) {
		a.push(&in)
	}
	return a
}

// push appends one instruction.
func (a *Arena) push(in *isa.Inst) {
	var m uint8
	if in.Taken {
		m |= MetaTaken
	}
	if in.Kernel {
		m |= MetaKernel
	}
	if in.Class.IsMem() {
		m |= MetaMem
	}
	if in.Class.IsCtrl() {
		m |= MetaCtrl
	}
	if in.Redirects() {
		m |= MetaRedirect
	}
	a.pc = append(a.pc, in.PC)
	a.addr = append(a.addr, in.Addr)
	a.target = append(a.target, in.Target)
	a.class = append(a.class, uint8(in.Class))
	a.dest = append(a.dest, uint8(in.Dest))
	a.src1 = append(a.src1, uint8(in.Src1))
	a.src2 = append(a.src2, uint8(in.Src2))
	a.size = append(a.size, in.Size)
	a.meta = append(a.meta, m)
}

// Len returns the number of instructions held.
func (a *Arena) Len() int { return len(a.pc) }

// Bytes returns the arena's storage footprint.
func (a *Arena) Bytes() int64 { return int64(len(a.pc)) * BytesPerInst }

// PCs exposes the packed instruction addresses.
//
//portlint:hotpath
func (a *Arena) PCs() []uint64 { return a.pc }

// Targets exposes the packed control-transfer targets (zero for non-control
// instructions).
//
//portlint:hotpath
func (a *Arena) Targets() []uint64 { return a.target }

// Classes exposes the packed instruction classes as raw bytes.
//
//portlint:hotpath
func (a *Arena) Classes() []uint8 { return a.class }

// Meta exposes the packed per-instruction metadata flag bytes.
//
//portlint:hotpath
func (a *Arena) Meta() []uint8 { return a.meta }

// Inst decodes instruction i into in, exactly as the originating stream
// produced it.
//
//portlint:hotpath
func (a *Arena) Inst(i int, in *isa.Inst) {
	m := a.meta[i]
	in.PC = a.pc[i]
	in.Addr = a.addr[i]
	in.Target = a.target[i]
	in.Class = isa.Class(a.class[i])
	in.Dest = isa.Reg(a.dest[i])
	in.Src1 = isa.Reg(a.src1[i])
	in.Src2 = isa.Reg(a.src2[i])
	in.Size = a.size[i]
	in.Taken = m&MetaTaken != 0
	in.Kernel = m&MetaKernel != 0
}

// NewCursor returns a fresh replay position over the arena. Cursors are
// cheap; one arena serves any number of them concurrently.
func (a *Arena) NewCursor() *Cursor { return &Cursor{a: a} }

// Cursor replays an arena from the beginning. It implements Stream and
// Batcher with zero allocations, and additionally exposes its position so
// consumers that understand arenas (the core's fetch stage) can read the
// packed arrays directly and advance in whole fetch groups.
type Cursor struct {
	a   *Arena
	pos int
}

// Arena returns the backing arena.
//
//portlint:hotpath
func (c *Cursor) Arena() *Arena { return c.a }

// Pos returns the index of the next instruction to replay.
//
//portlint:hotpath
func (c *Cursor) Pos() int { return c.pos }

// Remaining returns how many instructions are left.
//
//portlint:hotpath
func (c *Cursor) Remaining() int { return len(c.a.pc) - c.pos }

// Advance consumes n instructions without decoding them. The caller must
// not advance past the arena's length.
//
//portlint:hotpath
func (c *Cursor) Advance(n int) { c.pos += n }

// Next implements Stream.
//
//portlint:hotpath
func (c *Cursor) Next(in *isa.Inst) bool {
	if c.pos >= len(c.a.pc) {
		return false
	}
	c.a.Inst(c.pos, in)
	c.pos++
	return true
}

// NextBatch implements Batcher.
//
//portlint:hotpath
func (c *Cursor) NextBatch(dst []isa.Inst) int {
	n := len(c.a.pc) - c.pos
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		c.a.Inst(c.pos+i, &dst[i])
	}
	c.pos += n
	return n
}
