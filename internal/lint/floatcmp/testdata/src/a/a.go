// Package a is a floatcmp fixture: exact float equality is flagged,
// ordered comparisons and integer equality are not.
package a

type ipc float64

func compare(a, b float64, f float32, n, m int, r ipc) bool {
	if a == b { // want `floating-point == comparison is unreliable`
		return true
	}
	if f != 2.5 { // want `floating-point != comparison is unreliable`
		return true
	}
	if r == 1.0 { // want `floating-point == comparison is unreliable`
		return true
	}
	if a < b || a >= b {
		return true
	}
	return n == m
}
