// Package floatcmp implements the portlint analyzer that flags == and !=
// between floating-point values. The experiment harness reduces counters to
// float64 ratios (IPC, miss rates, port utilisation); exact equality on
// those is either a tautology or a latent bug that flips with evaluation
// order, so comparisons must be ordered (<, <=, ...), epsilon-based, or
// restructured onto the integer counters. Test files are not analyzed.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"portsim/internal/lint/analysis"
)

// Analyzer is the floatcmp analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flags == and != comparisons between floating-point values in " +
		"stats and experiment code",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(*ast.BinaryExpr)
			if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.TypesInfo, e.X) || isFloat(pass.TypesInfo, e.Y) {
				pass.Reportf(e.OpPos,
					"floating-point %s comparison is unreliable; use an ordered comparison, an epsilon, or compare the underlying integer counters",
					e.Op)
			}
			return true
		})
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
