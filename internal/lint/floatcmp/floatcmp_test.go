package floatcmp_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "a")
}
