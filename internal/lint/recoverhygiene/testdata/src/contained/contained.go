// Package contained is a recoverhygiene fixture standing in for an
// allowlisted containment package: its recover() calls are exempt.
package contained

func contain(run func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	run()
	return false
}
