// Package a is a recoverhygiene fixture: bare recover() calls are flagged,
// shadowed identifiers and suppressed lines are not.
package a

import "fmt"

func swallows() (err error) {
	defer func() {
		if p := recover(); p != nil { // want `recover\(\) outside the containment boundary`
			err = fmt.Errorf("swallowed: %v", p)
		}
	}()
	return nil
}

func directDefer() {
	defer recover() // want `recover\(\) outside the containment boundary`
}

// shadowed defines a local function named recover; calling it is not the
// builtin and must stay silent.
func shadowed() {
	recover := func() error { return nil }
	_ = recover()
}

func suppressed() {
	defer func() {
		_ = recover() //portlint:ignore recoverhygiene fixture demonstrating suppression
	}()
}
