// Package recoverhygiene implements the portlint analyzer that keeps crash
// containment at the experiment-cell boundary. The robustness layer's
// contract is that a simulator panic unwinds to internal/experiments, where
// it becomes a structured CellError carrying the machine configuration and
// the flight recorder's tail. A stray recover() deeper in the model would
// swallow the panic before the cell boundary sees it — losing the stack,
// the diagnosis, and possibly continuing the simulation in a corrupt state.
// The analyzer therefore flags every call to the recover builtin outside the
// allowlisted containment packages. Test files are never analyzed, so tests
// remain free to assert on panics however they like.
package recoverhygiene

import (
	"go/ast"
	"go/types"

	"portsim/internal/lint/analysis"
)

// Allowed lists the package import paths that may call recover(): the
// experiment engine (the cell crash boundary) and the diagnostics package
// that formats what containment captured.
var Allowed = map[string]bool{
	"portsim/internal/experiments": true,
	"portsim/internal/diag":        true,
}

// Analyzer is the recoverhygiene analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "recoverhygiene",
	Doc: "flags recover() outside the crash-containment packages so panics " +
		"keep unwinding to the experiment-cell boundary where they are " +
		"converted into diagnosed CellErrors",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if Allowed[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ident, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[ident].(*types.Builtin); ok && b.Name() == "recover" {
				pass.Reportf(call.Pos(),
					"recover() outside the containment boundary swallows panics before "+
						"internal/experiments can convert them into diagnosed CellErrors; "+
						"let the panic unwind to the cell boundary")
			}
			return true
		})
	}
	return nil
}
