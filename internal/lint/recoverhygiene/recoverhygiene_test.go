package recoverhygiene_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/recoverhygiene"
)

func TestRecoverHygiene(t *testing.T) {
	analysistest.Run(t, recoverhygiene.Analyzer, "a")
}

// TestAllowedPackageExempt checks that an allowlisted package may recover.
func TestAllowedPackageExempt(t *testing.T) {
	const path = "portsim/internal/lint/recoverhygiene/testdata/src/contained"
	recoverhygiene.Allowed[path] = true
	defer delete(recoverhygiene.Allowed, path)
	analysistest.Run(t, recoverhygiene.Analyzer, "contained")
}
