package escapegate_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/escapegate"
)

func TestEscapeGate(t *testing.T) {
	analysistest.Run(t, escapegate.Analyzer, "a")
}
