package a

import "fmt"

// fixture for the escapegate analyzer: root() is annotated, leak() and
// moved() are plain helpers the closure reaches, and the compiler-proven
// escapes inside them must be reported with the call chain. Escapes inside
// panic arguments are tolerated.

var keepPtr *int

//portlint:hotpath
func root(n int) {
	leak()
	moved()
	guarded(n)
}

func leak() {
	x := new(int) // want `compiler-proven heap allocation in the hotpath closure: new\(int\) escapes to heap .*chain: a\.root -> a\.leak`
	keepPtr = x
}

func moved() {
	y := 0 // want `heap allocation in the hotpath closure: y escapes to heap .*chain: a\.root -> a\.moved`
	keepPtr = &y
}

func guarded(n int) {
	if n > 2 {
		panic(fmt.Sprintf("bad n: %d", n)) // escape tolerated inside panic arguments
	}
}
