// Package guarded is a layerimports fixture standing in for a model
// package: presentation imports are flagged, ordinary ones are not.
package guarded

import (
	"expvar" // want `import "expvar" in a model package`
	"fmt"
	"net/http" // want `import "net/http" in a model package`
	"sort"

	"encoding/json" // want `import "encoding/json" in a model package`
)

func use() {
	_ = fmt.Sprint(sort.IntsAreSorted(nil))
	_ = json.Valid(nil)
	_ = expvar.Get("x")
	_ = http.StatusOK
}
