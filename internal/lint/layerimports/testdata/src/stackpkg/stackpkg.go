// Package stackpkg is a layerimports fixture standing in for the
// accounting vocabulary (internal/cpustack): both presentation machinery
// and model/telemetry imports are flagged — the package every layer
// imports must itself import (almost) nothing.
package stackpkg

import (
	"fmt"
	"net/http" // want `import "net/http" in the accounting vocabulary`
	"sync/atomic"

	"portsim/internal/core" // want `import "portsim/internal/core" in the accounting vocabulary`
)

func use() {
	fmt.Println(http.StatusOK)
	var v atomic.Uint64
	v.Add(1)
	_ = core.NewLineBufferSet(1, 64)
}
