// Package free is a layerimports fixture for a non-guarded package: the
// same presentation imports are perfectly legal outside the model.
package free

import (
	"encoding/json"
	"net/http"
)

func use() {
	_ = json.Valid(nil)
	_ = http.StatusOK
}
