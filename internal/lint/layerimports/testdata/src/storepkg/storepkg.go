// Package storepkg is a layerimports fixture standing in for the durable
// cell store: model imports are flagged, while the file-I/O and
// serialisation imports the store exists for stay silent.
package storepkg

import (
	"encoding/json"
	"os"

	"portsim/internal/core" // want `import "portsim/internal/core" in the store layer`
)

func use() {
	_ = json.Valid(nil)
	_ = os.IsNotExist(nil)
	_ = core.NewLineBufferSet(1, 64)
}
