package layerimports_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/layerimports"
)

// TestGuardedPackageFlagged treats the fixture as a model package and
// expects every presentation import to be reported.
func TestGuardedPackageFlagged(t *testing.T) {
	const path = "portsim/internal/lint/layerimports/testdata/src/guarded"
	layerimports.Guarded[path] = true
	defer delete(layerimports.Guarded, path)
	analysistest.Run(t, layerimports.Analyzer, "guarded")
}

// TestUnguardedPackageExempt checks the same imports stay silent outside
// the guarded set.
func TestUnguardedPackageExempt(t *testing.T) {
	analysistest.Run(t, layerimports.Analyzer, "free")
}

// TestStorePackageFlagged treats the fixture as the durable store and
// expects its model import to be reported while encoding/json and os —
// banned in model packages, native to the store — stay silent.
func TestStorePackageFlagged(t *testing.T) {
	const path = "portsim/internal/lint/layerimports/testdata/src/storepkg"
	layerimports.StoreGuarded[path] = true
	defer delete(layerimports.StoreGuarded, path)
	analysistest.Run(t, layerimports.Analyzer, "storepkg")
}

// TestStackPackageFlagged treats the fixture as the accounting vocabulary
// and expects both presentation and model imports to be reported while
// fmt and sync/atomic — all the package legitimately needs — stay silent.
func TestStackPackageFlagged(t *testing.T) {
	const path = "portsim/internal/lint/layerimports/testdata/src/stackpkg"
	layerimports.StackGuarded[path] = true
	defer delete(layerimports.StackGuarded, path)
	analysistest.Run(t, layerimports.Analyzer, "stackpkg")
}

// TestGuardedSetPinsModelPackages pins the production guard list so a
// refactor cannot silently drop a model package from enforcement.
func TestGuardedSetPinsModelPackages(t *testing.T) {
	for _, pkg := range []string{
		"portsim/internal/cpu",
		"portsim/internal/core",
		"portsim/internal/mem",
	} {
		if !layerimports.Guarded[pkg] {
			t.Errorf("%s missing from the guarded set", pkg)
		}
	}
	for _, imp := range []string{"net/http", "encoding/json", "expvar", "portsim/internal/telemetry"} {
		if layerimports.Forbidden[imp] == "" {
			t.Errorf("%s missing from the forbidden set", imp)
		}
	}
	if !layerimports.StoreGuarded["portsim/internal/cellstore"] {
		t.Error("portsim/internal/cellstore missing from the store guard set")
	}
	for _, imp := range []string{
		"portsim/internal/cpu",
		"portsim/internal/core",
		"portsim/internal/mem",
	} {
		if layerimports.StoreForbidden[imp] == "" {
			t.Errorf("%s missing from the store-forbidden set", imp)
		}
	}
	if !layerimports.StackGuarded["portsim/internal/cpustack"] {
		t.Error("portsim/internal/cpustack missing from the stack guard set")
	}
	for _, imp := range []string{
		"net/http",
		"encoding/json",
		"expvar",
		"portsim/internal/telemetry",
		"portsim/internal/cpu",
		"portsim/internal/core",
		"portsim/internal/mem",
	} {
		if layerimports.StackForbidden[imp] == "" {
			t.Errorf("%s missing from the stack-forbidden set", imp)
		}
	}
}
