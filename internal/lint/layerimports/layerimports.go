// Package layerimports implements the portlint analyzer that keeps the
// simulator model presentation-free. The telemetry layer's contract is
// that observability is bolted on from the outside: internal/telemetry
// reads end-of-cell snapshots, it is never imported by the model, and no
// serving or serialisation concern leaks into the cycle-accurate code.
// The analyzer enforces the direction of that dependency by flagging
// imports of HTTP/JSON/metrics machinery inside the guarded model
// packages (internal/cpu, internal/core, internal/mem). Test files are
// never analyzed.
package layerimports

import (
	"strconv"

	"portsim/internal/lint/analysis"
)

// Guarded lists the model packages that must stay free of presentation
// machinery: the pipeline, the cache-port subsystem and the memory
// hierarchy.
var Guarded = map[string]bool{
	"portsim/internal/cpu":  true,
	"portsim/internal/core": true,
	"portsim/internal/mem":  true,
}

// Forbidden maps each banned import path to the reason it is banned.
var Forbidden = map[string]string{
	"net/http":                   "HTTP serving belongs in internal/telemetry or the cmd layer",
	"encoding/json":              "serialisation belongs in the config/experiments/telemetry layers",
	"expvar":                     "metric publication belongs in internal/telemetry",
	"portsim/internal/telemetry": "the model must not depend on its own observability layer",
}

// Analyzer is the layerimports analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "layerimports",
	Doc: "flags presentation-layer imports (net/http, encoding/json, expvar, " +
		"internal/telemetry) inside the simulator model packages, keeping " +
		"observability strictly outside the cycle-accurate code",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Guarded[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if reason, ok := Forbidden[path]; ok {
				pass.Reportf(imp.Pos(),
					"import %q in a model package: %s", path, reason)
			}
		}
	}
	return nil
}
