// Package layerimports implements the portlint analyzer that keeps the
// simulator model presentation-free. The telemetry layer's contract is
// that observability is bolted on from the outside: internal/telemetry
// reads end-of-cell snapshots, it is never imported by the model, and no
// serving or serialisation concern leaks into the cycle-accurate code.
// The analyzer enforces the direction of that dependency by flagging
// imports of HTTP/JSON/metrics machinery inside the guarded model
// packages (internal/cpu, internal/core, internal/mem). Test files are
// never analyzed.
//
// A second roster guards the opposite direction for the persistence
// layer: internal/cellstore is exactly where file I/O and serialisation
// belong (os and encoding/json are fine there), but it must stay ignorant
// of the simulator model — entries carry opaque payloads, and the
// experiments layer owns their encoding. Importing internal/{cpu,core,mem}
// from the store is flagged.
//
// A third roster covers the accounting vocabulary: internal/cpustack sits
// below both the model (cpu charges buckets) and the presentation layers
// (telemetry and portbench read snapshots), so it must stay dependency-free
// — no serving, no serialisation, no model, no telemetry. Anything beyond
// the taxonomy and its atomics would drag presentation machinery into every
// importer, including the hot loop.
package layerimports

import (
	"strconv"

	"portsim/internal/lint/analysis"
)

// Guarded lists the model packages that must stay free of presentation
// machinery: the pipeline, the cache-port subsystem and the memory
// hierarchy.
var Guarded = map[string]bool{
	"portsim/internal/cpu":  true,
	"portsim/internal/core": true,
	"portsim/internal/mem":  true,
}

// Forbidden maps each banned import path to the reason it is banned.
var Forbidden = map[string]string{
	"net/http":                   "HTTP serving belongs in internal/telemetry or the cmd layer",
	"encoding/json":              "serialisation belongs in the config/experiments/telemetry layers",
	"expvar":                     "metric publication belongs in internal/telemetry",
	"portsim/internal/telemetry": "the model must not depend on its own observability layer",
}

// StoreGuarded lists the persistence packages that must stay ignorant of
// the simulator model.
var StoreGuarded = map[string]bool{
	"portsim/internal/cellstore": true,
}

// StoreForbidden maps each model import banned inside the store layer to
// the reason. os and encoding/json are deliberately absent: the store is
// exactly where file I/O and serialisation belong.
var StoreForbidden = map[string]string{
	"portsim/internal/cpu":  "the store holds opaque payloads; cpu.Result encoding belongs in internal/experiments",
	"portsim/internal/core": "the store must not reach into the pipeline model",
	"portsim/internal/mem":  "the store must not reach into the memory hierarchy",
}

// StackGuarded lists the leaf vocabulary packages that every layer may
// import and that therefore must import (almost) nothing themselves.
var StackGuarded = map[string]bool{
	"portsim/internal/cpustack": true,
}

// StackForbidden maps each import banned inside the accounting vocabulary
// to the reason. The roster bans both directions at once: presentation
// machinery (the package is imported by the hot loop) and the model/
// telemetry packages (both import it — the reverse edge would be a cycle
// and a layering hole even where the compiler tolerates it).
var StackForbidden = map[string]string{
	"net/http":                   "the accounting vocabulary is imported by the hot loop; serving belongs in internal/telemetry",
	"encoding/json":              "manifest encoding of CPI stacks belongs in the telemetry/experiments layers",
	"expvar":                     "metric publication belongs in internal/telemetry",
	"portsim/internal/telemetry": "telemetry reads cpustack snapshots; the dependency must never reverse",
	"portsim/internal/cpu":       "the model charges cpustack buckets; the dependency must never reverse",
	"portsim/internal/core":      "the accounting vocabulary must stay below the model",
	"portsim/internal/mem":       "the accounting vocabulary must stay below the model",
}

// Analyzer is the layerimports analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "layerimports",
	Doc: "flags presentation-layer imports (net/http, encoding/json, expvar, " +
		"internal/telemetry) inside the simulator model packages, keeping " +
		"observability strictly outside the cycle-accurate code; model " +
		"imports inside the persistence layer (internal/cellstore), keeping " +
		"the durable store simulator-ignorant; and any presentation, model " +
		"or telemetry import inside the accounting vocabulary " +
		"(internal/cpustack), keeping the leaf package a leaf",
	Run: run,
}

func run(pass *analysis.Pass) error {
	var banned map[string]string
	var where string
	switch {
	case Guarded[pass.Pkg.Path()]:
		banned, where = Forbidden, "a model package"
	case StoreGuarded[pass.Pkg.Path()]:
		banned, where = StoreForbidden, "the store layer"
	case StackGuarded[pass.Pkg.Path()]:
		banned, where = StackForbidden, "the accounting vocabulary"
	default:
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if reason, ok := banned[path]; ok {
				pass.Reportf(imp.Pos(),
					"import %q in %s: %s", path, where, reason)
			}
		}
	}
	return nil
}
