// Package a is a detrand fixture: global rand and wall-clock uses are
// flagged, injected seeded generators and suppressed lines are not.
package a

import (
	"math/rand"
	mrv2 "math/rand/v2"
	"time"
)

func globalRand() int {
	n := rand.Intn(6)                  // want `rand.Intn draws from the global rand source`
	n += int(rand.Int63())             // want `rand.Int63 draws from the global rand source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand.Shuffle draws from the global rand source`
	n += mrv2.IntN(6)                  // want `mrv2.IntN draws from the global rand source`
	return n
}

func wallClock() time.Duration {
	t := time.Now()      // want `time.Now reads the wall clock`
	return time.Since(t) // want `time.Since reads the wall clock`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	r2 := mrv2.New(mrv2.NewPCG(1, 2))
	return r.Intn(6) + r2.IntN(6)
}

func notTheClock() time.Time {
	return time.Unix(42, 0)
}

func suppressed() time.Time {
	return time.Now() //portlint:ignore detrand fixture demonstrating suppression
}
