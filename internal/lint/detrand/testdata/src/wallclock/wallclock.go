// Package wallclock is a detrand fixture for the AllowWallClock exemption:
// the test adds this package's path to the allowlist, so the wall-clock
// reads pass while global rand stays flagged.
package wallclock

import (
	"math/rand"
	"time"
)

func report() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func stillFlagged() float64 {
	return rand.Float64() // want `rand.Float64 draws from the global rand source`
}
