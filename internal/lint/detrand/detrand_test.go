package detrand_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "a")
}

// TestAllowWallClock checks that allowlisting a package exempts its
// wall-clock reads but keeps the global-rand rules.
func TestAllowWallClock(t *testing.T) {
	const path = "portsim/internal/lint/detrand/testdata/src/wallclock"
	detrand.AllowWallClock[path] = true
	defer delete(detrand.AllowWallClock, path)
	analysistest.Run(t, detrand.Analyzer, "wallclock")
}
