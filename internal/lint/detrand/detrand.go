// Package detrand implements the portlint analyzer that guards the
// simulator's run-to-run reproducibility. Every result table in
// EXPERIMENTS.md is keyed by a workload seed; a single call to the global
// math/rand source (process-seeded since Go 1.20) or to the wall clock in
// simulator code silently turns those tables into noise. The analyzer flags:
//
//   - references to package-level math/rand and math/rand/v2 functions
//     (rand.Intn, rand.Float64, rand.Shuffle, ...), which draw from the
//     shared, unseeded source. Constructing an explicit seeded generator
//     (rand.New, rand.NewSource, rand.NewZipf, rand.NewPCG, rand.NewChaCha8)
//     stays legal — that is the injected-PRNG pattern the workload
//     generators use.
//   - references to time.Now, time.Since and time.Until, which leak wall
//     time into simulated behaviour. Packages whose job is wall-clock
//     reporting (cmd/portbench's throughput summary) are exempted through
//     AllowWallClock.
//
// Test files are never analyzed, so tests remain free to time themselves.
package detrand

import (
	"go/ast"
	"go/types"

	"portsim/internal/lint/analysis"
)

// AllowWallClock lists package import paths allowed to read the wall clock.
// The math/rand rules still apply to them: a benchmark driver may time
// itself, but it must not perturb simulated behaviour.
var AllowWallClock = map[string]bool{
	"portsim/cmd/portbench":      true,
	"portsim/internal/telemetry": true,
}

// seededConstructors are the math/rand and math/rand/v2 package functions
// that build an explicit generator instead of drawing from the global one.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// wallClockFuncs are the time package functions that observe the current
// time.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "flags global math/rand usage and wall-clock reads that would break " +
		"run-to-run determinism of simulation results",
	Run: run,
}

func run(pass *analysis.Pass) error {
	allowClock := AllowWallClock[pass.Pkg.Path()]
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if ok && !seededConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the global rand source and breaks run-to-run determinism; use an injected seeded *rand.Rand",
						ident.Name, fn.Name())
				}
			case "time":
				if wallClockFuncs[sel.Sel.Name] && !allowClock {
					pass.Reportf(sel.Pos(),
						"%s.%s reads the wall clock in simulator code; derive timing from simulated cycles (or add the package to detrand.AllowWallClock if it only reports host throughput)",
						ident.Name, sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
