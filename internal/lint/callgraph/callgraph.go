// Package callgraph builds a static call graph over the packages the
// portlint loader produced, for the whole-program analyzers (hotpathclosure,
// escapegate, maporder). The graph is deliberately simple and deterministic
// rather than precise:
//
//   - Direct calls and concrete method calls resolve to the called
//     function's declaration.
//   - Interface method calls resolve to every in-repo named type that
//     implements the interface (the conservative over-approximation: any of
//     them could be behind the value at run time).
//   - A function or method referenced as a value (passed as a callback,
//     stored in a field) counts as called from the referencing function —
//     again conservative: a reference that is never invoked only widens the
//     closure, it cannot hide an invocation from it.
//   - Calls inside function literals are attributed to the enclosing
//     declared function, because the literal runs (if ever) with the
//     enclosing function's hot-path obligations.
//
// Nodes and edges are collected in source order over packages sorted by
// import path, so every traversal below is reproducible run to run — a
// requirement the byte-stable portlint -json output inherits.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"portsim/internal/lint/analysis"
)

// Directives recognised in function doc comments.
const (
	// HotpathDirective marks a closure root: the function runs on the
	// simulator's per-cycle hot path.
	HotpathDirective = "//portlint:hotpath"
	// ColdpathDirective stops closure propagation: the function is
	// reachable from a hot function but runs only on a cold edge (error
	// path, end-of-run drain). It must carry an invariant comment on the
	// same line explaining why the edge is cold.
	ColdpathDirective = "//portlint:coldpath"
)

// Func is one function declaration in the loaded packages.
type Func struct {
	// Obj is the type-checker's canonical object for the function.
	Obj *types.Func
	// Decl is the source declaration (always non-nil, with a body).
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *analysis.Package
	// Calls are the function's call sites and function-value references in
	// source order. Callees outside the loaded packages (stdlib and other
	// dependencies) are included; they have no Func node of their own.
	Calls []Call

	// Hotpath and Coldpath report the doc-comment directives.
	Hotpath  bool
	Coldpath bool
	// ColdpathReason is the invariant comment after the coldpath
	// directive; empty means the directive is malformed.
	ColdpathReason string
}

// Call is one resolved call site (or function-value reference).
type Call struct {
	// Pos is the call or reference position.
	Pos token.Pos
	// Callee is the resolved function object. For interface method calls
	// one Call is recorded per in-repo implementation, plus one for the
	// interface method itself.
	Callee *types.Func
	// ViaInterface marks edges added by interface-implementation
	// resolution rather than direct syntax.
	ViaInterface bool
}

// Graph is the static call graph of one loaded package set.
//
// Nodes are keyed by types.Func.FullName rather than object identity: a
// target package type-checked from source and the same package imported
// from export data by a sibling target yield distinct *types.Func objects
// for the same function, and the full name is the identity that survives
// that split.
type Graph struct {
	Fset *token.FileSet

	funcs map[string]*Func
	order []*Func
}

// Build constructs the call graph over the loaded packages.
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{funcs: make(map[string]*Func)}
	if len(pkgs) == 0 {
		return g
	}
	g.Fset = pkgs[0].Fset

	// Pass 1: index every declared function.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Pkg: pkg}
				fn.Hotpath, fn.Coldpath, fn.ColdpathReason = directives(fd)
				g.funcs[obj.FullName()] = fn
				g.order = append(g.order, fn)
			}
		}
	}

	// Pass 2: resolve call sites.
	res := newResolver(pkgs)
	for _, fn := range g.order {
		fn.Calls = res.callsIn(fn)
	}
	return g
}

// Funcs returns every declared function in deterministic (source) order.
func (g *Graph) Funcs() []*Func { return g.order }

// Lookup returns the graph node for a function object, or nil when the
// function is not declared in the loaded packages. Resolution goes through
// FullName, so an export-data object and its source-checked counterpart
// find the same node.
func (g *Graph) Lookup(obj *types.Func) *Func { return g.funcs[obj.FullName()] }

// resolver resolves the callee of each call expression and enumerates
// interface implementations among the loaded packages.
type resolver struct {
	pkgs []*analysis.Package
	// named lists every named non-interface type declared in the loaded
	// packages, in deterministic order, for interface-implementation
	// scans.
	named []*types.Named
	// ifaceImpl caches interface-method -> implementing methods.
	ifaceImpl map[*types.Func][]*types.Func
}

func newResolver(pkgs []*analysis.Package) *resolver {
	r := &resolver{pkgs: pkgs, ifaceImpl: make(map[*types.Func][]*types.Func)}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			r.named = append(r.named, named)
		}
	}
	return r
}

// implementations returns the in-repo methods that satisfy an interface
// method, resolving dynamic dispatch conservatively.
func (r *resolver) implementations(m *types.Func) []*types.Func {
	if impls, ok := r.ifaceImpl[m]; ok {
		return impls
	}
	var impls []*types.Func
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		r.ifaceImpl[m] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		r.ifaceImpl[m] = nil
		return nil
	}
	for _, named := range r.named {
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if impl, ok := obj.(*types.Func); ok && impl != m {
			impls = append(impls, impl)
		}
	}
	r.ifaceImpl[m] = impls
	return impls
}

// callsIn walks one function body and returns its resolved calls in source
// order.
func (r *resolver) callsIn(fn *Func) []Call {
	info := fn.Pkg.TypesInfo
	var calls []Call

	// selIdents collects the Sel identifier of every selector expression so
	// the bare-identifier pass below does not double-count method names,
	// and callFuns the (unparenthesised) callee expression of every call so
	// references already counted as calls are not recounted as values.
	selIdents := make(map[*ast.Ident]bool)
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			selIdents[e.Sel] = true
		case *ast.CallExpr:
			callFuns[ast.Unparen(e.Fun)] = true
		}
		return true
	})

	add := func(pos token.Pos, callee *types.Func, viaIface bool) {
		if callee == nil {
			return
		}
		calls = append(calls, Call{Pos: pos, Callee: callee, ViaInterface: viaIface})
	}

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			r.resolve(info, ast.Unparen(e.Fun), e.Lparen, add)
		case *ast.SelectorExpr:
			if !callFuns[e] {
				r.resolve(info, e, e.Pos(), add) // method/function value reference
			}
		case *ast.Ident:
			if callFuns[e] || selIdents[e] {
				return true
			}
			if obj, ok := info.Uses[e].(*types.Func); ok {
				add(e.Pos(), obj, false) // function value reference
			}
		}
		return true
	})
	return calls
}

// resolve resolves one callee expression (identifier or selector) and emits
// the call edges for it.
func (r *resolver) resolve(info *types.Info, fun ast.Expr, pos token.Pos, add func(token.Pos, *types.Func, bool)) {
	switch f := fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[f].(*types.Func); ok {
			add(pos, obj, false)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			add(pos, m, false)
			if types.IsInterface(sel.Recv()) {
				for _, impl := range r.implementations(m) {
					add(pos, impl, true)
				}
			}
			return
		}
		// Qualified identifier (pkg.Fn) or type conversion selector.
		if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
			add(pos, obj, false)
		}
	}
}

// directives parses the hotpath/coldpath doc-comment markers.
func directives(fd *ast.FuncDecl) (hot, cold bool, coldReason string) {
	if fd.Doc == nil {
		return false, false, ""
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == HotpathDirective {
			hot = true
		}
		if rest, ok := strings.CutPrefix(text, ColdpathDirective); ok {
			cold = true
			coldReason = strings.TrimSpace(rest)
		}
	}
	return hot, cold, coldReason
}

// DisplayName renders a function for call-chain diagnostics:
// "cpu.(*Core).fetch" for pointer-receiver methods, "mem.NewSystem" for
// package functions.
func DisplayName(f *types.Func) string {
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Name() + "."
	}
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s(%s%s).%s", pkg, ptr, n.Obj().Name(), f.Name())
		}
	}
	return pkg + f.Name()
}

// Entry is one function in the hotpath closure.
type Entry struct {
	Fn *Func
	// Root marks a //portlint:hotpath-annotated function.
	Root bool
	// Chain is the call chain of display names from a root (first element)
	// to this function (last element); a root's chain has one element. The
	// breadth-first search makes it a shortest chain, and the
	// deterministic visit order makes it the same chain every run.
	Chain []string
}

// Closure is the transitive hotpath closure: every function reachable from
// a //portlint:hotpath root through packages in scope, stopping at
// //portlint:coldpath functions.
type Closure struct {
	graph   *Graph
	entries map[string]*Entry // keyed by types.Func.FullName
	order   []*Entry
	// coldStops are the coldpath-annotated functions the propagation
	// actually stopped at, in visit order.
	coldStops []*Func
}

// HotpathClosure computes the closure. scopePackages lists the import paths
// propagation may enter; the packages containing the roots themselves are
// always in scope, so fixtures and scratch modules need no configuration.
func (g *Graph) HotpathClosure(scopePackages []string) *Closure {
	cl := &Closure{graph: g, entries: make(map[string]*Entry)}
	scope := make(map[string]bool, len(scopePackages))
	for _, p := range scopePackages {
		scope[p] = true
	}

	var queue []*Entry
	for _, fn := range g.Funcs() {
		if fn.Hotpath {
			scope[fn.Pkg.Path] = true
			e := &Entry{Fn: fn, Root: true, Chain: []string{DisplayName(fn.Obj)}}
			cl.entries[fn.Obj.FullName()] = e
			cl.order = append(cl.order, e)
			queue = append(queue, e)
		}
	}

	seenCold := make(map[string]bool)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, call := range cur.Fn.Calls {
			callee := g.Lookup(call.Callee)
			if callee == nil || !scope[callee.Pkg.Path] {
				continue // outside the loaded packages or out of scope
			}
			key := callee.Obj.FullName()
			if callee.Coldpath {
				if !seenCold[key] {
					seenCold[key] = true
					cl.coldStops = append(cl.coldStops, callee)
				}
				continue
			}
			if _, ok := cl.entries[key]; ok {
				continue
			}
			chain := make([]string, len(cur.Chain), len(cur.Chain)+1)
			copy(chain, cur.Chain)
			e := &Entry{Fn: callee, Chain: append(chain, DisplayName(callee.Obj))}
			cl.entries[key] = e
			cl.order = append(cl.order, e)
			queue = append(queue, e)
		}
	}
	return cl
}

// Entries returns the closure in deterministic visit order (roots first, in
// source order, then breadth-first).
func (cl *Closure) Entries() []*Entry { return cl.order }

// ColdStops returns the coldpath functions that stopped propagation.
func (cl *Closure) ColdStops() []*Func { return cl.coldStops }

// Contains returns the closure entry for a function object, or nil.
func (cl *Closure) Contains(obj *types.Func) *Entry { return cl.entries[obj.FullName()] }
