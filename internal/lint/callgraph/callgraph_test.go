package callgraph_test

import (
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"portsim/internal/lint/callgraph"
	"portsim/internal/lint/loader"
)

// buildScratch writes a scratch module, loads it, and builds its call graph.
func buildScratch(t *testing.T, files map[string]string) *callgraph.Graph {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := loader.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loader.Load: %v", err)
	}
	return callgraph.Build(pkgs)
}

// find returns the graph node whose display name matches.
func find(t *testing.T, g *callgraph.Graph, display string) *callgraph.Func {
	t.Helper()
	for _, fn := range g.Funcs() {
		if callgraph.DisplayName(fn.Obj) == display {
			return fn
		}
	}
	t.Fatalf("function %s not in graph; have %v", display, names(g))
	return nil
}

func names(g *callgraph.Graph) []string {
	var out []string
	for _, fn := range g.Funcs() {
		out = append(out, callgraph.DisplayName(fn.Obj))
	}
	return out
}

func calleeNames(fn *callgraph.Func) []string {
	var out []string
	for _, c := range fn.Calls {
		out = append(out, callgraph.DisplayName(c.Callee))
	}
	return out
}

func TestDirectAndMethodCalls(t *testing.T) {
	g := buildScratch(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"a.go": `package a

type Box struct{ n int }

func (b *Box) Bump() { b.n++ }

func helper() int { return 1 }

//portlint:hotpath
func Root(b *Box) int {
	b.Bump()
	return helper()
}
`,
	})
	root := find(t, g, "a.Root")
	if !root.Hotpath {
		t.Error("Root should carry the hotpath directive")
	}
	got := calleeNames(root)
	want := []string{"a.(*Box).Bump", "a.helper"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Root calls = %v, want %v", got, want)
	}
}

func TestInterfaceResolution(t *testing.T) {
	g := buildScratch(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"a.go": `package a

type Sink interface{ Emit(int) }

type fast struct{}

func (fast) Emit(int) {}

type slow struct{ buf []int }

func (s *slow) Emit(v int) { s.buf = append(s.buf, v) }

//portlint:hotpath
func Root(s Sink) { s.Emit(1) }
`,
	})
	root := find(t, g, "a.Root")
	got := calleeNames(root)
	// The interface method itself plus both in-repo implementations.
	want := []string{"a.(Sink).Emit", "a.(fast).Emit", "a.(*slow).Emit"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Root calls = %v, want %v", got, want)
	}
	var viaIface int
	for _, c := range root.Calls {
		if c.ViaInterface {
			viaIface++
		}
	}
	if viaIface != 2 {
		t.Errorf("want 2 interface-resolved edges, got %d", viaIface)
	}
}

func TestFuncValueAndLiteralAttribution(t *testing.T) {
	g := buildScratch(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"a.go": `package a

func callback() {}

func inner() {}

func apply(f func()) { f() }

//portlint:hotpath
func Root() {
	apply(callback)     // function value reference
	go func() { inner() }() // literal attributed to Root
}
`,
	})
	root := find(t, g, "a.Root")
	got := calleeNames(root)
	want := []string{"a.apply", "a.callback", "a.inner"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Root calls = %v, want %v", got, want)
	}
}

func TestHotpathClosureChainsAndColdpath(t *testing.T) {
	g := buildScratch(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"a.go": `package a

//portlint:hotpath
func Root() {
	hop1()
	drain()
}

func hop1() { hop2() }

func hop2() {}

//portlint:coldpath runs once at end of simulation, outside the cycle loop
func drain() { expensive() }

func expensive() {}
`,
	})
	cl := g.HotpathClosure(nil)
	byName := make(map[string][]string)
	for _, e := range cl.Entries() {
		byName[callgraph.DisplayName(e.Fn.Obj)] = e.Chain
	}
	wantChains := map[string][]string{
		"a.Root": {"a.Root"},
		"a.hop1": {"a.Root", "a.hop1"},
		"a.hop2": {"a.Root", "a.hop1", "a.hop2"},
	}
	if !reflect.DeepEqual(byName, wantChains) {
		t.Errorf("closure chains = %v, want %v", byName, wantChains)
	}
	if _, in := byName["a.expensive"]; in {
		t.Error("coldpath must stop propagation before a.expensive")
	}
	stops := cl.ColdStops()
	if len(stops) != 1 || callgraph.DisplayName(stops[0].Obj) != "a.drain" {
		t.Errorf("cold stops = %v, want [a.drain]", stops)
	}
	if stops[0].ColdpathReason == "" {
		t.Error("coldpath reason not captured")
	}
}

func TestClosureScopeAcrossPackages(t *testing.T) {
	g := buildScratch(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"a/a.go": `package a

import (
	"scratch/inscope"
	"scratch/outscope"
)

//portlint:hotpath
func Root() {
	inscope.Reached()
	outscope.Skipped()
}
`,
		"inscope/b.go":  "package inscope\n\nfunc Reached() {}\n",
		"outscope/c.go": "package outscope\n\nfunc Skipped() {}\n",
	})
	cl := g.HotpathClosure([]string{"scratch/inscope"})
	var got []string
	for _, e := range cl.Entries() {
		got = append(got, callgraph.DisplayName(e.Fn.Obj))
	}
	want := []string{"a.Root", "inscope.Reached"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("closure = %v, want %v", got, want)
	}
}

// TestDeterministicOrder builds the same module twice and asserts identical
// node and edge order — the property the byte-stable JSON output rests on.
func TestDeterministicOrder(t *testing.T) {
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"a.go": `package a

type Sink interface{ Emit(int) }

type t1 struct{}

func (t1) Emit(int) {}

type t2 struct{}

func (t2) Emit(int) {}

//portlint:hotpath
func Root(s Sink) {
	s.Emit(1)
	aux()
}

func aux() {}
`,
	}
	flatten := func(g *callgraph.Graph) []string {
		var out []string
		for _, fn := range g.Funcs() {
			out = append(out, callgraph.DisplayName(fn.Obj)+"->"+strings.Join(calleeNames(fn), ";"))
		}
		return out
	}
	first := flatten(buildScratch(t, files))
	second := flatten(buildScratch(t, files))
	if !reflect.DeepEqual(first, second) {
		t.Errorf("graph order differs across builds:\n%v\n%v", first, second)
	}
}

func TestDisplayNameForms(t *testing.T) {
	g := buildScratch(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"a.go": `package a

type V struct{}

func (V) ByValue()    {}
func (*V) ByPointer() {}
func Plain()          {}
`,
	})
	want := map[string]bool{
		"a.(V).ByValue":    true,
		"a.(*V).ByPointer": true,
		"a.Plain":          true,
	}
	for _, fn := range g.Funcs() {
		name := callgraph.DisplayName(fn.Obj)
		if !want[name] {
			t.Errorf("unexpected display name %q", name)
		}
		delete(want, name)
	}
	for name := range want {
		t.Errorf("missing display name %q", name)
	}
	var nilFunc *types.Func
	_ = nilFunc // DisplayName requires a non-nil *types.Func by contract
}
