package loader_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"portsim/internal/lint/loader"
)

// writeModule lays out a scratch module from name -> content pairs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestBuildTagExcludedFiles loads a package where one file is excluded by a
// build constraint; the loader must analyze only the included file and must
// not stumble over symbols that exist only behind the tag.
func TestBuildTagExcludedFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"tagged/hidden.go": "//go:build someunusedtag\n\npackage tagged\n\n" +
			"func Hidden() { onlyBehindTag() }\n",
		"tagged/visible.go": "package tagged\n\nfunc Visible() int { return 1 }\n",
	})
	pkgs, err := loader.Load(dir, "./tagged")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 1 {
		t.Errorf("parsed %d files, want 1 (hidden.go is excluded by its build tag)", n)
	}
	if obj := pkgs[0].Types.Scope().Lookup("Visible"); obj == nil {
		t.Error("Visible not in package scope")
	}
	if obj := pkgs[0].Types.Scope().Lookup("Hidden"); obj != nil {
		t.Error("Hidden leaked into the package scope despite its build tag")
	}
}

// TestTestOnlyPackageSkipped loads a directory holding only _test.go files;
// portlint does not analyze test files, so the loader must skip the package
// cleanly instead of type-checking an empty file list.
func TestTestOnlyPackageSkipped(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":               "module scratch\n\ngo 1.22\n",
		"onlytest/x_test.go":   "package onlytest\n",
		"real/real.go":         "package real\n\nfunc F() {}\n",
		"onlytest/placeholder": "",
	})
	pkgs, err := loader.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "scratch/real" {
		t.Errorf("loaded %v, want only scratch/real (the _test.go-only package is skipped)", paths)
	}
}

// TestTypeCheckFailureIsStructuredError loads a package that does not
// compile; the loader must return an error naming the problem, not panic
// and not return half-checked packages.
func TestTypeCheckFailureIsStructuredError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":           "module scratch\n\ngo 1.22\n",
		"broken/broken.go": "package broken\n\nfunc f() int { return undefinedName }\n",
	})
	pkgs, err := loader.Load(dir, "./broken")
	if err == nil {
		t.Fatalf("Load succeeded with %d packages, want an error", len(pkgs))
	}
	if pkgs != nil {
		t.Errorf("Load returned packages alongside the error: %v", pkgs)
	}
	if !strings.Contains(err.Error(), "undefinedName") {
		t.Errorf("error does not name the failing symbol: %v", err)
	}
}

// TestNoMatchingPackages pins the structured error for a pattern that
// matches nothing.
func TestNoMatchingPackages(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module scratch\n\ngo 1.22\n",
		"a/a.go":   "package a\n",
		"a/ignore": "",
	})
	_, err := loader.Load(dir, "./nosuchdir")
	if err == nil {
		t.Fatal("Load of a non-existent pattern succeeded, want error")
	}
}
