// Package loader loads and type-checks Go packages for portlint without
// depending on golang.org/x/tools. It shells out to `go list -export` to
// resolve package patterns and to obtain compiled export data for every
// dependency (standard library included), then parses and type-checks only
// the requested packages from source with the standard library's gc
// importer reading that export data. This is the same division of labour as
// x/tools/go/packages in LoadSyntax mode, built from stdlib parts, and it
// works fully offline: the go tool compiles export data locally.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"portsim/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load resolves the patterns relative to dir (typically the module root)
// and returns the matched packages, parsed and type-checked, sorted by
// import path. Dependencies are loaded from export data and are not
// returned. Patterns default to ./... when empty.
func Load(dir string, patterns ...string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*analysis.Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			// A package with only _test.go files (or with every file
			// excluded by build tags) has nothing portlint analyzes; go
			// list still reports it, so skip it rather than hand the type
			// checker an empty file list.
			continue
		}
		pkg, err := typeCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goList runs `go list -export -deps` and splits the result into the
// requested target packages and an import-path -> export-file map covering
// every dependency.
func goList(dir string, patterns []string) ([]listPackage, map[string]string, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,GoFiles,Standard,DepOnly",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("loader: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		exports[p.ImportPath] = p.Export
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, nil, fmt.Errorf("loader: no packages match %s", strings.Join(patterns, " "))
	}
	return targets, exports, nil
}

// typeCheck parses a target package's non-test files and type-checks them
// against export data for all imports.
func typeCheck(fset *token.FileSet, imp types.Importer, t listPackage) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}

	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, _ := conf.Check(t.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("loader: type errors in %s:\n  %s",
			t.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	return &analysis.Package{
		Path:      t.ImportPath,
		Dir:       t.Dir,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		Fset:      fset,
	}, nil
}
