// Package lint is the portlint driver: it loads packages, runs the analyzer
// suite over them, applies //portlint:ignore suppressions and returns the
// findings in a stable order. Suppressed findings are retained with
// Suppressed set rather than dropped, so the -json output can carry
// suppression state and the -suppressions audit can detect stale
// directives; text output and exit codes consider only active findings.
// cmd/portlint is a thin wrapper; the repository's self-test runs the same
// entrypoints in-process.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"portsim/internal/lint/analysis"
	"portsim/internal/lint/configbounds"
	"portsim/internal/lint/counterhygiene"
	"portsim/internal/lint/cyclemath"
	"portsim/internal/lint/detrand"
	"portsim/internal/lint/escapegate"
	"portsim/internal/lint/floatcmp"
	"portsim/internal/lint/hotpath"
	"portsim/internal/lint/hotpathclosure"
	"portsim/internal/lint/layerimports"
	"portsim/internal/lint/loader"
	"portsim/internal/lint/maporder"
	"portsim/internal/lint/recoverhygiene"
)

// Suite returns the full portlint analyzer suite.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		configbounds.Analyzer,
		counterhygiene.Analyzer,
		cyclemath.Analyzer,
		detrand.Analyzer,
		escapegate.Analyzer,
		floatcmp.Analyzer,
		hotpath.Analyzer,
		hotpathclosure.Analyzer,
		layerimports.Analyzer,
		maporder.Analyzer,
		recoverhygiene.Analyzer,
	}
}

// Finding is one diagnostic resolved to a concrete source position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string

	// Chain is the root→sink call chain for whole-program diagnostics
	// (hotpathclosure, escapegate); nil for per-site findings.
	Chain []string

	// Suppressed marks a finding silenced by a //portlint:ignore directive.
	// Suppressed findings never fail a lint run; they are kept for the
	// -json suppression state and the stale-suppression audit.
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Active filters findings down to the unsuppressed ones that gate CI.
func Active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Run loads the patterns relative to dir and analyzes them with the given
// analyzers (the full Suite when analyzers is empty).
func Run(dir string, patterns []string, analyzers ...*analysis.Analyzer) ([]Finding, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return Analyze(pkgs, analyzers...)
}

// Analyze runs the analyzers over already-loaded packages.
func Analyze(pkgs []*analysis.Package, analyzers ...*analysis.Analyzer) ([]Finding, error) {
	if len(analyzers) == 0 {
		analyzers = Suite()
	}
	if len(pkgs) == 0 {
		return nil, nil
	}
	fset := pkgs[0].Fset
	suppressed := suppressionIndex(Directives(pkgs))

	var findings []Finding
	report := func(name string) func(analysis.Diagnostic) {
		return func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			findings = append(findings, Finding{
				Analyzer:   name,
				Position:   pos,
				Message:    d.Message,
				Chain:      d.Chain,
				Suppressed: suppressed[suppressionKey{pos.Filename, pos.Line, name}],
			})
		}
	}
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range pkgs {
				pass := &analysis.Pass{
					Analyzer:  a,
					Fset:      fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.TypesInfo,
					Report:    report(a.Name),
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
				}
			}
		}
		if a.RunModule != nil {
			pass := &analysis.ModulePass{
				Analyzer: a,
				Fset:     fset,
				Pkgs:     pkgs,
				Report:   report(a.Name),
			}
			if err := a.RunModule(pass); err != nil {
				return nil, fmt.Errorf("lint: %s module pass: %v", a.Name, err)
			}
		}
	}
	// Stable order: position, then analyzer, then message — the message
	// tie-break keeps same-position findings from the same analyzer (for
	// example two escape diagnostics on one line) in a byte-stable order
	// for -json.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// suppressionKey addresses one (file, line, analyzer) suppression.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

const ignorePrefix = "//portlint:ignore"

// Directive is one //portlint:ignore comment in the analyzed sources.
type Directive struct {
	Position token.Position
	// Analyzers are the comma-separated analyzer names the directive
	// silences.
	Analyzers []string
	// Reason is the invariant comment after the analyzer list; the
	// -suppressions audit requires it to be non-empty.
	Reason string
}

// Directives collects every //portlint:ignore directive in the loaded
// packages, in deterministic (package, file, position) order. A directive
// silences the named analyzers on its own line and on the line below, which
// covers both trailing comments and standalone comment lines above the
// flagged statement.
func Directives(pkgs []*analysis.Package) []Directive {
	var dirs []Directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					var names []string
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							names = append(names, name)
						}
					}
					if len(names) == 0 {
						continue
					}
					dirs = append(dirs, Directive{
						Position:  pkg.Fset.Position(c.Pos()),
						Analyzers: names,
						Reason:    strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
					})
				}
			}
		}
	}
	return dirs
}

// suppressionIndex expands directives into the per-line lookup Analyze
// consults.
func suppressionIndex(dirs []Directive) map[suppressionKey]bool {
	sup := make(map[suppressionKey]bool)
	for _, d := range dirs {
		for _, name := range d.Analyzers {
			sup[suppressionKey{d.Position.Filename, d.Position.Line, name}] = true
			sup[suppressionKey{d.Position.Filename, d.Position.Line + 1, name}] = true
		}
	}
	return sup
}
