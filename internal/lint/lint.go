// Package lint is the portlint driver: it loads packages, runs the analyzer
// suite over them, applies //portlint:ignore suppressions and returns the
// surviving findings in a stable order. cmd/portlint is a thin wrapper; the
// repository's self-test runs the same entrypoints in-process.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"portsim/internal/lint/analysis"
	"portsim/internal/lint/configbounds"
	"portsim/internal/lint/counterhygiene"
	"portsim/internal/lint/cyclemath"
	"portsim/internal/lint/detrand"
	"portsim/internal/lint/floatcmp"
	"portsim/internal/lint/hotpath"
	"portsim/internal/lint/layerimports"
	"portsim/internal/lint/loader"
	"portsim/internal/lint/recoverhygiene"
)

// Suite returns the full portlint analyzer suite.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		configbounds.Analyzer,
		counterhygiene.Analyzer,
		cyclemath.Analyzer,
		detrand.Analyzer,
		floatcmp.Analyzer,
		hotpath.Analyzer,
		layerimports.Analyzer,
		recoverhygiene.Analyzer,
	}
}

// Finding is one diagnostic surviving suppression, resolved to a concrete
// source position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Run loads the patterns relative to dir and analyzes them with the given
// analyzers (the full Suite when analyzers is empty).
func Run(dir string, patterns []string, analyzers ...*analysis.Analyzer) ([]Finding, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return Analyze(pkgs, analyzers...)
}

// Analyze runs the analyzers over already-loaded packages.
func Analyze(pkgs []*analysis.Package, analyzers ...*analysis.Analyzer) ([]Finding, error) {
	if len(analyzers) == 0 {
		analyzers = Suite()
	}
	if len(pkgs) == 0 {
		return nil, nil
	}
	fset := pkgs[0].Fset
	suppressed := suppressions(fset, pkgs)

	var findings []Finding
	report := func(name string) func(analysis.Diagnostic) {
		return func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if suppressed[suppressionKey{pos.Filename, pos.Line, name}] {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Position: pos, Message: d.Message})
		}
	}
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range pkgs {
				pass := &analysis.Pass{
					Analyzer:  a,
					Fset:      fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.TypesInfo,
					Report:    report(a.Name),
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
				}
			}
		}
		if a.RunModule != nil {
			pass := &analysis.ModulePass{
				Analyzer: a,
				Fset:     fset,
				Pkgs:     pkgs,
				Report:   report(a.Name),
			}
			if err := a.RunModule(pass); err != nil {
				return nil, fmt.Errorf("lint: %s module pass: %v", a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// suppressionKey addresses one (file, line, analyzer) suppression.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

const ignorePrefix = "//portlint:ignore"

// suppressions collects //portlint:ignore directives. A directive silences
// the named analyzers on its own line and on the line below, which covers
// both trailing comments and standalone comment lines above the flagged
// statement.
func suppressions(fset *token.FileSet, pkgs []*analysis.Package) map[suppressionKey]bool {
	sup := make(map[suppressionKey]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, name := range strings.Split(fields[0], ",") {
						if name == "" {
							continue
						}
						sup[suppressionKey{pos.Filename, pos.Line, name}] = true
						sup[suppressionKey{pos.Filename, pos.Line + 1, name}] = true
					}
				}
			}
		}
	}
	return sup
}
