// Package analysis defines the analyzer API for portlint, the repository's
// custom static-analysis suite. It deliberately mirrors the core surface of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) so analyzers
// written against it port to the upstream framework mechanically — the
// upstream module is not vendored because this repository builds offline
// with the standard library only.
//
// Two extensions cover what the x/tools multichecker expresses through
// Facts and flags:
//
//   - Analyzer.RunModule runs once over every loaded package, for
//     whole-module invariants such as "every counter name that is read is
//     also written somewhere" (see the counterhygiene analyzer).
//
//   - Suppression comments of the form
//
//     //portlint:ignore <analyzer>[,<analyzer>...] [reason]
//
//     silence diagnostics on the same line, or on the following line when
//     the comment stands alone. The driver (internal/lint) applies them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //portlint:ignore directives. It must be a lower-case identifier.
	Name string

	// Doc is the one-paragraph description shown by `portlint -list`.
	Doc string

	// Run analyzes a single package. It may report diagnostics via
	// pass.Report and may return an error for internal failures (which
	// aborts the whole lint run, unlike a diagnostic).
	Run func(*Pass) error

	// RunModule, if non-nil, runs once after every per-package pass with
	// the full set of loaded packages, for cross-package invariants.
	RunModule func(*ModulePass) error
}

// Package bundles everything the driver knows about one loaded package.
type Package struct {
	// Path is the package's import path as reported by the go tool.
	Path string

	// Dir is the package's directory on disk.
	Dir string

	// Files are the parsed non-test Go files. Test files are not
	// analyzed: every portlint invariant applies to simulator code, and
	// tests are free to use wall clocks, ad-hoc counter names and
	// hand-built configs.
	Files []*ast.File

	// Types is the type-checked package.
	Types *types.Package

	// TypesInfo carries the type-checker's expression and identifier
	// resolution for Files.
	TypesInfo *types.Info

	// Fset translates token positions for Files.
	Fset *token.FileSet
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a diagnostic against the package under analysis.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ModulePass carries an analyzer's view of the whole loaded module for
// RunModule hooks.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	Report func(Diagnostic)
}

// Reportf reports a formatted module-level diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned at Pos in the shared FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Chain, when non-empty, is the static call chain that makes the
	// diagnostic whole-program: the first element is the annotated root
	// (for the hotpath-closure analyzers, a //portlint:hotpath function)
	// and the last is the function containing Pos. The driver carries it
	// into the finding and the portlint-diag/v1 JSON output.
	Chain []string
}
