package configbounds_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/configbounds"
)

func TestConfigbounds(t *testing.T) {
	analysistest.Run(t, configbounds.Analyzer, "a")
}
