// Package configbounds implements the portlint analyzer that keeps machine
// configurations inside the config package's validation envelope. The
// simulator trusts config.Machine invariants (power-of-two geometries,
// coherent port arrangements — see Machine.Validate); a struct literal
// built in a random package bypasses Validate and can put the model into
// states the paper's design space never defined. Non-test code must obtain
// configurations from the config package's entrypoints (Baseline, DualPort,
// Presets, FromJSON, ...) and mutate fields from there before the
// simulator's constructor re-validates. Empty literals (config.Machine{})
// are exempt: they are the idiomatic zero value of error returns and carry
// no field assumptions. Test files are not analyzed, so tests remain free
// to build adversarial configs.
package configbounds

import (
	"go/ast"
	"go/types"

	"portsim/internal/lint/analysis"
)

// ConfigPackage is the import path of the validated configuration package.
// Literal construction of its struct types is confined to the package
// itself.
var ConfigPackage = "portsim/internal/config"

// Analyzer is the configbounds analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "configbounds",
	Doc: "flags struct literals of config types outside the config package, " +
		"which bypass the package's validation entrypoints",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == ConfigPackage {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || tv.Type == nil {
				return true
			}
			named, ok := types.Unalias(tv.Type).(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != ConfigPackage {
				return true
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				return true
			}
			pass.Reportf(lit.Pos(),
				"raw %s.%s literal bypasses the config package's validation; start from a preset (config.Baseline, config.Presets, ...) or config.FromJSON and mutate fields",
				obj.Pkg().Name(), obj.Name())
			return true
		})
	}
	return nil
}
