// Package a is a configbounds fixture: raw literals of config struct types
// are flagged, presets, mutation and empty zero-value literals are not.
package a

import "portsim/internal/config"

func rawLiteral() config.Machine {
	return config.Machine{Name: "adhoc"} // want `raw config.Machine literal bypasses the config package's validation`
}

func rawGeom() config.CacheGeom {
	return config.CacheGeom{SizeBytes: 1024} // want `raw config.CacheGeom literal bypasses the config package's validation`
}

func fromPreset() config.Machine {
	m := config.Baseline()
	m.Ports.Count = 4
	return m
}

func zeroValue() (config.Machine, error) {
	return config.Machine{}, nil
}
