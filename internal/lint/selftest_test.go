package lint_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"portsim/internal/lint"
)

// TestRepoClean asserts the invariant CI gates on: the full analyzer suite
// reports zero active findings over the module's own packages (suppressed
// findings are expected — every //portlint:ignore directive shields one).
func TestRepoClean(t *testing.T) {
	findings, err := lint.Run("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range lint.Active(findings) {
		t.Errorf("portlint finding on the repository itself: %s", f)
	}
}

// TestGoVet asserts go vet stays clean, mirroring the CI gate.
func TestGoVet(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	cmd := exec.Command(goTool, "vet", "./...")
	cmd.Dir = "../.."
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet ./...: %v\n%s", err, out.Bytes())
	}
}

// TestPlantedViolations builds a scratch module containing one violation per
// determinism/arithmetic analyzer and asserts the suite fails on it — the
// guarantee that a regression cannot slip through a green lint run.
func TestPlantedViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("main.go", `package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	defer func() { _ = recover() }()       // bare recover: recoverhygiene
	start := uint64(time.Now().UnixNano()) // time.Now: detrand
	end := uint64(rand.Int63())            // global rand: detrand
	elapsed := end - start                 // unguarded uint64 subtraction: cyclemath
	if float64(elapsed) == 1.0 {           // exact float equality: floatcmp
		fmt.Println("never")
	}
}
`)

	findings, err := lint.Run(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("lint.Run on scratch module: %v", err)
	}
	wantAnalyzers := []string{"cyclemath", "detrand", "floatcmp", "recoverhygiene"}
	got := make(map[string]int)
	for _, f := range findings {
		got[f.Analyzer]++
	}
	for _, name := range wantAnalyzers {
		if got[name] == 0 {
			t.Errorf("planted %s violation not reported; findings: %v", name, findings)
		}
	}
	if got["detrand"] < 2 {
		t.Errorf("want both the rand and wall-clock detrand findings, got %d", got["detrand"])
	}
}

// TestPlantedClosureViolation plants an allocating helper two hops below an
// annotated hotpath function in a scratch module and asserts the acceptance
// criterion for the whole-program analyzers: both hotpathclosure and
// escapegate catch it, each with the root→sink call chain.
func TestPlantedClosureViolation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("hot.go", `package hot

var sink []int

//portlint:hotpath
func step() {
	helperA()
}

func helperA() { helperB() }

func helperB() {
	sink = make([]int, 32)
}
`)

	findings, err := lint.Run(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("lint.Run on scratch module: %v", err)
	}
	wantChain := []string{"hot.step", "hot.helperA", "hot.helperB"}
	caught := make(map[string]bool)
	for _, f := range findings {
		if f.Analyzer != "hotpathclosure" && f.Analyzer != "escapegate" {
			continue
		}
		caught[f.Analyzer] = true
		if strings.Join(f.Chain, ",") != strings.Join(wantChain, ",") {
			t.Errorf("%s chain = %v, want %v", f.Analyzer, f.Chain, wantChain)
		}
		if !strings.Contains(f.Message, "hot.step -> hot.helperA -> hot.helperB") {
			t.Errorf("%s message missing the root→sink chain: %s", f.Analyzer, f.Message)
		}
	}
	for _, name := range []string{"hotpathclosure", "escapegate"} {
		if !caught[name] {
			t.Errorf("planted two-hop allocation not caught by %s; findings: %v", name, findings)
		}
	}
}

// TestSuiteStable pins the analyzer roster so CI output stays predictable.
func TestSuiteStable(t *testing.T) {
	var names []string
	for _, a := range lint.Suite() {
		names = append(names, a.Name)
	}
	want := "configbounds,counterhygiene,cyclemath,detrand,escapegate,floatcmp,hotpath,hotpathclosure,layerimports,maporder,recoverhygiene"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("Suite() = %s, want %s", got, want)
	}
}
