package lint

import (
	"encoding/json"
	"fmt"
	"path/filepath"
)

// DiagFormat is the format identifier of the machine-readable diagnostics
// file emitted by portlint -json.
const DiagFormat = "portlint-diag/v1"

// DiagFile is the top-level object of the portlint-diag/v1 schema. Findings
// appear in the driver's stable order (file, line, column, analyzer,
// message), with file paths relative to the analyzed module root and
// slash-separated, so two runs over the same tree produce byte-identical
// output on any platform.
type DiagFile struct {
	Format   string        `json:"format"`
	Findings []DiagFinding `json:"findings"`
	Counts   DiagCounts    `json:"counts"`
}

// DiagFinding is one finding in portlint-diag/v1.
type DiagFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Chain is the root→sink call chain for whole-program findings.
	Chain []string `json:"chain,omitempty"`
	// Suppressed reports whether a //portlint:ignore directive silences
	// the finding; suppressed findings do not fail the run.
	Suppressed bool `json:"suppressed"`
}

// DiagCounts summarizes a run for CI dashboards.
type DiagCounts struct {
	Active     int `json:"active"`
	Suppressed int `json:"suppressed"`
}

// EncodeDiagnostics renders findings as portlint-diag/v1 JSON (indented,
// trailing newline). dir is the module root the paths are made relative to;
// paths outside it are kept absolute.
func EncodeDiagnostics(dir string, findings []Finding) ([]byte, error) {
	out := DiagFile{Format: DiagFormat, Findings: []DiagFinding{}}
	for _, f := range findings {
		file := f.Position.Filename
		if dir != "" {
			if rel, err := filepath.Rel(dir, file); err == nil && !isOutside(rel) {
				file = rel
			}
		}
		out.Findings = append(out.Findings, DiagFinding{
			Analyzer:   f.Analyzer,
			File:       filepath.ToSlash(file),
			Line:       f.Position.Line,
			Col:        f.Position.Column,
			Message:    f.Message,
			Chain:      f.Chain,
			Suppressed: f.Suppressed,
		})
		if f.Suppressed {
			out.Counts.Suppressed++
		} else {
			out.Counts.Active++
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("lint: encoding diagnostics: %v", err)
	}
	return append(data, '\n'), nil
}

// isOutside reports whether a relative path escapes its base directory.
func isOutside(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
