package hotpath_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "a")
}
