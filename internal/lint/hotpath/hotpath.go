// Package hotpath implements the portlint analyzer that keeps the
// simulator's cycle loop allocation-free. Functions marked with a
// //portlint:hotpath directive in their doc comment run once (or more) per
// simulated cycle across every cell of every experiment; a single heap
// allocation there multiplies into millions per campaign and shows up
// directly in the BENCH_*.json allocs/1k-cycles trajectory. Inside a marked
// function (and any function literal it contains) the analyzer flags:
//
//   - calls into package fmt, except inside the arguments of a panic call:
//     formatting allocates, but a panicking cycle loop is already off the
//     hot path and owes the operator a readable message.
//   - map composite literals and make(map[...]...), which always allocate;
//     hot-path lookups belong in flat slices or fixed-size arrays.
//   - make and new of any type: per-cycle scratch must be pre-allocated at
//     construction time and reused.
//   - append into anything except a reuse slice — a local variable bound to
//     an expression of the form base[:0] (the compact-in-place idiom, which
//     recycles base's backing array and cannot grow while the function
//     keeps total length <= len(base)). Any other append target may grow
//     an escaping slice and is flagged.
//
// A site whose safety rests on an invariant the analyzer cannot see (for
// example a free-list append whose capacity equals the physical register
// count, fixed at construction) carries a //portlint:ignore hotpath comment
// stating the invariant, exactly like the other portlint analyzers.
//
// Test files are not analyzed.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"portsim/internal/lint/analysis"
)

// directive is the doc-comment marker that opts a function in.
const directive = "//portlint:hotpath"

// Analyzer is the hotpath analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flags heap allocations (fmt, map literals, make/new, growing append) " +
		"inside functions marked //portlint:hotpath",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !marked(fn) {
				continue
			}
			check(pass, fn.Body)
		}
	}
	return nil
}

// marked reports whether the function's doc comment carries the directive.
func marked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// check walks one marked function body. reuse collects the local variables
// bound to base[:0] reslices before the flagging pass so that declaration
// order inside the body does not matter.
func check(pass *analysis.Pass, body *ast.BlockStmt) {
	reuse := reuseSlices(body)
	walk(pass, body, reuse, false)
}

// reuseSlices returns the names of local variables assigned a value of the
// form base[:0] anywhere in the body.
func reuseSlices(body *ast.BlockStmt) map[string]bool {
	reuse := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isZeroReslice(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				reuse[id.Name] = true
			}
		}
		return true
	})
	return reuse
}

// isZeroReslice matches base[:0] (and base[0:0]).
func isZeroReslice(e ast.Expr) bool {
	s, ok := e.(*ast.SliceExpr)
	if !ok || s.Slice3 || s.High == nil {
		return false
	}
	if s.Low != nil && !isIntLiteral(s.Low, "0") {
		return false
	}
	return isIntLiteral(s.High, "0")
}

func isIntLiteral(e ast.Expr, lit string) bool {
	b, ok := e.(*ast.BasicLit)
	return ok && b.Value == lit
}

// walk descends the AST flagging allocation sites. inPanic is true while
// inside the argument list of a panic call, where fmt is tolerated.
func walk(pass *analysis.Pass, n ast.Node, reuse map[string]bool, inPanic bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass, e, "panic"):
				for _, arg := range e.Args {
					walk(pass, arg, reuse, true)
				}
				return false
			case isFmtCall(pass, e):
				if !inPanic {
					pass.Reportf(e.Pos(), "fmt call in a //portlint:hotpath function allocates; format off the hot path (fmt is tolerated only inside panic arguments)")
				}
			case isBuiltin(pass, e, "make"):
				if len(e.Args) > 0 && isMapType(pass, e.Args[0]) {
					pass.Reportf(e.Pos(), "make(map) in a //portlint:hotpath function allocates; use a flat slice or fixed-size array keyed by index")
				} else {
					pass.Reportf(e.Pos(), "make in a //portlint:hotpath function allocates per call; pre-allocate at construction and reuse")
				}
			case isBuiltin(pass, e, "new"):
				pass.Reportf(e.Pos(), "new in a //portlint:hotpath function allocates per call; pre-allocate at construction and reuse")
			case isBuiltin(pass, e, "append"):
				if len(e.Args) > 0 && !isReuseTarget(e.Args[0], reuse) {
					pass.Reportf(e.Pos(), "append into %s in a //portlint:hotpath function may grow an escaping slice; append only into base[:0] reuse slices (or //portlint:ignore hotpath with the capacity invariant)", types.ExprString(e.Args[0]))
				}
			}
		case *ast.CompositeLit:
			if isMapType(pass, e) {
				pass.Reportf(e.Pos(), "map literal in a //portlint:hotpath function allocates; hoist it to a package-level variable or construction time")
			}
		}
		return true
	})
}

// isReuseTarget reports whether an append destination is a reuse slice: a
// base[:0] expression directly, or a local variable bound to one.
func isReuseTarget(dst ast.Expr, reuse map[string]bool) bool {
	if isZeroReslice(dst) {
		return true
	}
	id, ok := dst.(*ast.Ident)
	return ok && reuse[id.Name]
}

// isBuiltin reports whether the call's function is the named Go builtin
// (and not a shadowing local identifier).
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// isFmtCall reports whether the call is a selector into package fmt.
func isFmtCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "fmt"
}

// isMapType reports whether the expression's type is a map.
func isMapType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
