// Package hotpath implements the portlint analyzer that keeps the
// simulator's cycle loop allocation-free. Functions marked with a
// //portlint:hotpath directive in their doc comment run once (or more) per
// simulated cycle across every cell of every experiment; a single heap
// allocation there multiplies into millions per campaign and shows up
// directly in the BENCH_*.json allocs/1k-cycles trajectory. Inside a marked
// function (and any function literal it contains) the analyzer flags:
//
//   - calls into package fmt, except inside the arguments of a panic call:
//     formatting allocates, but a panicking cycle loop is already off the
//     hot path and owes the operator a readable message.
//   - map composite literals and make(map[...]...), which always allocate;
//     hot-path lookups belong in flat slices or fixed-size arrays.
//   - make and new of any type: per-cycle scratch must be pre-allocated at
//     construction time and reused.
//   - append into anything except a reuse slice — a local variable bound to
//     an expression of the form base[:0] (the compact-in-place idiom, which
//     recycles base's backing array and cannot grow while the function
//     keeps total length <= len(base)). Any other append target may grow
//     an escaping slice and is flagged.
//
// A site whose safety rests on an invariant the analyzer cannot see (for
// example a free-list append whose capacity equals the physical register
// count, fixed at construction) carries a //portlint:ignore hotpath comment
// stating the invariant, exactly like the other portlint analyzers.
//
// The same body checks are exported as CheckBody for the hotpathclosure
// analyzer, which applies them to every unannotated function the call graph
// proves reachable from a marked root.
//
// Test files are not analyzed.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"portsim/internal/lint/analysis"
)

// directive is the doc-comment marker that opts a function in.
const directive = "//portlint:hotpath"

// Analyzer is the hotpath analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flags heap allocations (fmt, map literals, make/new, growing append) " +
		"inside functions marked //portlint:hotpath",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !Marked(fn) {
				continue
			}
			CheckBody(pass.TypesInfo, fn.Body, "a //portlint:hotpath function", "hotpath",
				func(pos token.Pos, format string, args ...any) {
					pass.Reportf(pos, format, args...)
				})
		}
	}
	return nil
}

// Marked reports whether the function's doc comment carries the
// //portlint:hotpath directive.
func Marked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// CheckBody runs the hot-path allocation checks over one function body.
// where is the phrase naming why the body is hot ("a //portlint:hotpath
// function" here; the closure analyzer substitutes its own wording), and
// ignoreName is the analyzer name quoted in the append suppression hint.
// reuse collection happens before the flagging pass so that declaration
// order inside the body does not matter.
func CheckBody(info *types.Info, body *ast.BlockStmt, where, ignoreName string, report func(token.Pos, string, ...any)) {
	c := &checker{info: info, where: where, ignoreName: ignoreName, report: report}
	reuse := reuseSlices(body)
	c.walk(body, reuse, false)
}

// checker bundles the state one CheckBody invocation threads through the
// walk.
type checker struct {
	info       *types.Info
	where      string
	ignoreName string
	report     func(token.Pos, string, ...any)
}

// reuseSlices returns the names of local variables assigned a value of the
// form base[:0] anywhere in the body.
func reuseSlices(body *ast.BlockStmt) map[string]bool {
	reuse := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isZeroReslice(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				reuse[id.Name] = true
			}
		}
		return true
	})
	return reuse
}

// isZeroReslice matches base[:0] (and base[0:0]).
func isZeroReslice(e ast.Expr) bool {
	s, ok := e.(*ast.SliceExpr)
	if !ok || s.Slice3 || s.High == nil {
		return false
	}
	if s.Low != nil && !isIntLiteral(s.Low, "0") {
		return false
	}
	return isIntLiteral(s.High, "0")
}

func isIntLiteral(e ast.Expr, lit string) bool {
	b, ok := e.(*ast.BasicLit)
	return ok && b.Value == lit
}

// walk descends the AST flagging allocation sites. inPanic is true while
// inside the argument list of a panic call, where fmt is tolerated.
func (c *checker) walk(n ast.Node, reuse map[string]bool, inPanic bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			switch {
			case c.isBuiltin(e, "panic"):
				for _, arg := range e.Args {
					c.walk(arg, reuse, true)
				}
				return false
			case c.isFmtCall(e):
				if !inPanic {
					c.report(e.Pos(), "fmt call in %s allocates; format off the hot path (fmt is tolerated only inside panic arguments)", c.where)
				}
			case c.isBuiltin(e, "make"):
				if len(e.Args) > 0 && c.isMapType(e.Args[0]) {
					c.report(e.Pos(), "make(map) in %s allocates; use a flat slice or fixed-size array keyed by index", c.where)
				} else {
					c.report(e.Pos(), "make in %s allocates per call; pre-allocate at construction and reuse", c.where)
				}
			case c.isBuiltin(e, "new"):
				c.report(e.Pos(), "new in %s allocates per call; pre-allocate at construction and reuse", c.where)
			case c.isBuiltin(e, "append"):
				if len(e.Args) > 0 && !isReuseTarget(e.Args[0], reuse) {
					c.report(e.Pos(), "append into %s in %s may grow an escaping slice; append only into base[:0] reuse slices (or //portlint:ignore %s with the capacity invariant)", types.ExprString(e.Args[0]), c.where, c.ignoreName)
				}
			}
		case *ast.CompositeLit:
			if c.isMapType(e) {
				c.report(e.Pos(), "map literal in %s allocates; hoist it to a package-level variable or construction time", c.where)
			}
		}
		return true
	})
}

// isReuseTarget reports whether an append destination is a reuse slice: a
// base[:0] expression directly, or a local variable bound to one.
func isReuseTarget(dst ast.Expr, reuse map[string]bool) bool {
	if isZeroReslice(dst) {
		return true
	}
	id, ok := dst.(*ast.Ident)
	return ok && reuse[id.Name]
}

// isBuiltin reports whether the call's function is the named Go builtin
// (and not a shadowing local identifier).
func (c *checker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = c.info.Uses[id].(*types.Builtin)
	return ok
}

// isFmtCall reports whether the call is a selector into package fmt.
func (c *checker) isFmtCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := c.info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "fmt"
}

// isMapType reports whether the expression's type is a map.
func (c *checker) isMapType(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
