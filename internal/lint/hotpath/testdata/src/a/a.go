// Package a is a hotpath fixture: allocation sites inside marked functions
// are flagged; the same constructs in unmarked functions are not, and the
// sanctioned idioms (panic formatting, base[:0] reuse appends, suppression
// with an invariant) stay silent.
package a

import "fmt"

type ring struct {
	entries []int
	scratch []int
	free    []int16
}

// tick is the planted violation: every rule fires in one marked function.
//
//portlint:hotpath
func (r *ring) tick(n int) {
	fmt.Println("cycle", n) // want `fmt call in a //portlint:hotpath function allocates`
	m := map[int]bool{}     // want `map literal in a //portlint:hotpath function allocates`
	_ = m
	lut := make(map[int]int) // want `make\(map\) in a //portlint:hotpath function allocates`
	_ = lut
	buf := make([]int, n) // want `make in a //portlint:hotpath function allocates per call`
	_ = buf
	p := new(ring) // want `new in a //portlint:hotpath function allocates per call`
	_ = p
	r.entries = append(r.entries, n) // want `append into r.entries in a //portlint:hotpath function may grow an escaping slice`
}

// compact shows the sanctioned idioms: panic may format, and appends into
// base[:0] reuse slices recycle existing storage.
//
//portlint:hotpath
func (r *ring) compact(now int) {
	if now < 0 {
		panic(fmt.Sprintf("ring: negative cycle %d", now))
	}
	kept := r.entries[:0]
	for _, e := range r.entries {
		if e >= now {
			kept = append(kept, e)
		}
	}
	r.entries = kept
	r.scratch = append(r.scratch[:0], kept...)
}

// release demonstrates the documented escape hatch for a capacity-stable
// append the analyzer cannot prove safe.
//
//portlint:hotpath
func (r *ring) release(p int16) {
	r.free = append(r.free, p) //portlint:ignore hotpath free list capacity is fixed at construction
}

// cold is unmarked: identical constructs draw no diagnostics.
func (r *ring) cold(n int) {
	fmt.Println("cold", n)
	_ = map[int]bool{}
	_ = make(map[int]int)
	_ = make([]int, n)
	r.entries = append(r.entries, n)
}
