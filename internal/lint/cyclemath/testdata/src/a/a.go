// Package a is a cyclemath fixture: unguarded uint64 subtraction and
// ordered never-sentinel comparisons are flagged; guarded subtraction,
// constant operands and equality tests are not.
package a

import "math"

const never = math.MaxUint64

func unguarded(now, start uint64) uint64 {
	return now - start // want `uint64 subtraction now - start wraps on underflow`
}

func unguardedAssign(budget, cost uint64) uint64 {
	budget -= cost // want `uint64 subtraction budget - cost wraps on underflow`
	return budget
}

func guarded(now, start uint64) uint64 {
	if now < start {
		return 0
	}
	return now - start
}

func guardedFlipped(now, start uint64) uint64 {
	if start > now {
		return 0
	}
	return now - start
}

func constantOperand(x uint64) uint64 {
	return x - 1
}

func signedInt(a, b int64) int64 {
	return a - b
}

func sentinelOrdered(done uint64) bool {
	if done >= never { // want `ordered comparison against the never sentinel`
		return false
	}
	return done >= 18446744073709551615 // want `ordered comparison against the never sentinel`
}

func sentinelEquality(done uint64) bool {
	return done != never
}

func suppressed(addr, base uint64) uint64 {
	return addr - base //portlint:ignore cyclemath fixture invariant: base is addr masked down
}
