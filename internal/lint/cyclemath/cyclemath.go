// Package cyclemath implements the portlint analyzer for unsigned cycle
// arithmetic. The simulator keeps cycle counts, completion times and
// addresses in uint64, where subtraction silently wraps: `now - start`
// is ~1.8e19 when start is still in the future, and every derived statistic
// inherits the corruption. Two rules:
//
//   - subtraction (a - b, a -= b) of non-constant uint64 operands is
//     flagged unless the enclosing function also compares the same two
//     operands (the dominating ordering check that makes the subtraction
//     safe, e.g. `if now < start { return 0 }` before `now - start`).
//     The check is intra-function and syntactic — it matches the operand
//     expressions textually — so it cannot prove dominance, but it forces
//     every wrapping subtraction to at least sit next to its guard. Sites
//     whose safety comes from non-comparison invariants (masked-down
//     addresses, for instance) carry a //portlint:ignore cyclemath comment
//     explaining the invariant.
//
//   - ordered comparisons (<, <=, >, >=) against the `never` completion
//     sentinel (math.MaxUint64, spelled as a constant or a magic literal)
//     are flagged: a completion time is either scheduled or never, so only
//     == and != are meaningful, and >= in particular reads as "ready"
//     while actually matching the unscheduled sentinel.
//
// Test files are not analyzed.
package cyclemath

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"portsim/internal/lint/analysis"
)

// Analyzer is the cyclemath analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "cyclemath",
	Doc: "flags uint64 cycle subtraction without a dominating ordering check " +
		"and ordered comparisons against the never sentinel",
	Run: run,
}

var maxUint64 = constant.MakeUint64(math.MaxUint64)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc applies both rules inside one function body. The guard set is
// collected over the whole declaration, including function literals it
// contains: a closure may rely on an ordering check established in its
// enclosing function.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	guards := make(map[[2]string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		e, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch e.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			guards[pairKey(e.X, e.Y)] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.SUB:
				checkSub(pass, guards, e.OpPos, e.X, e.Y)
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				checkSentinel(pass, e)
			}
		case *ast.AssignStmt:
			if e.Tok == token.SUB_ASSIGN {
				checkSub(pass, guards, e.TokPos, e.Lhs[0], e.Rhs[0])
			}
		}
		return true
	})
}

// checkSub flags a uint64 subtraction a-b whose operand pair never appears
// in an ordering comparison within the same function.
func checkSub(pass *analysis.Pass, guards map[[2]string]bool, pos token.Pos, a, b ast.Expr) {
	if !isUint64(pass.TypesInfo, a) || !isUint64(pass.TypesInfo, b) {
		return
	}
	if isConst(pass.TypesInfo, a) || isConst(pass.TypesInfo, b) {
		return
	}
	if guards[pairKey(a, b)] {
		return
	}
	pass.Reportf(pos,
		"uint64 subtraction %s - %s wraps on underflow and has no ordering check on the pair in this function; guard it (or //portlint:ignore cyclemath with the invariant that makes it safe)",
		types.ExprString(a), types.ExprString(b))
}

// checkSentinel flags ordered comparisons where either operand is the
// math.MaxUint64 never-sentinel.
func checkSentinel(pass *analysis.Pass, e *ast.BinaryExpr) {
	if isNeverSentinel(pass.TypesInfo, e.X) || isNeverSentinel(pass.TypesInfo, e.Y) {
		pass.Reportf(e.OpPos,
			"ordered comparison against the never sentinel (math.MaxUint64); a completion time is either scheduled or never, so compare with == or !=")
	}
}

func isNeverSentinel(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, maxUint64)
}

func isUint64(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// pairKey normalises an operand pair to an order-independent key so that
// `a < b` guards `b - a` as well as `a - b`.
func pairKey(a, b ast.Expr) [2]string {
	x, y := types.ExprString(a), types.ExprString(b)
	if x > y {
		x, y = y, x
	}
	return [2]string{x, y}
}
