package cyclemath_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/cyclemath"
)

func TestCyclemath(t *testing.T) {
	analysistest.Run(t, cyclemath.Analyzer, "a")
}
