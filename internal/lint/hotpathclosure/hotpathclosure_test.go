package hotpathclosure_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/hotpathclosure"
)

func TestHotpathClosure(t *testing.T) {
	analysistest.Run(t, hotpathclosure.Analyzer, "a")
}
