// Package hotpathclosure implements the whole-program companion to the
// hotpath analyzer. Where hotpath checks only functions that carry the
// //portlint:hotpath directive, hotpathclosure builds the static call graph
// of the loaded module, computes every function reachable from a directive
// root through the model packages (internal/cpu, internal/core,
// internal/mem — plus any package that declares a root, so fixtures need no
// configuration), and applies the same allocation discipline to each
// reachable body. An unannotated allocating helper two hops below the cycle
// loop is exactly as hot as the loop itself; this analyzer is what makes
// the annotation transitive.
//
// Interface method calls are resolved conservatively to every in-repo
// implementation. A reachable function that is genuinely cold — an error
// drain, an end-of-run report — opts out with
//
//	//portlint:coldpath <invariant comment>
//
// in its doc comment; the comment is mandatory and must state why the edge
// cannot run per cycle. Diagnostics carry the root→sink call chain both in
// the message and in the structured Chain field of portlint-diag/v1 output.
package hotpathclosure

import (
	"fmt"
	"go/token"
	"strings"

	"portsim/internal/lint/analysis"
	"portsim/internal/lint/callgraph"
	"portsim/internal/lint/hotpath"
)

// Scope lists the import paths the closure may propagate through. Packages
// that declare a //portlint:hotpath root are always in scope. Like
// layerimports.Guarded, this is package-level configuration: the simulator's
// model packages, where every per-cycle function lives.
var Scope = []string{
	"portsim/internal/core",
	"portsim/internal/cpu",
	"portsim/internal/mem",
}

// Analyzer is the hotpathclosure analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathclosure",
	Doc: "propagates the //portlint:hotpath allocation discipline to every function " +
		"reachable from a marked root through the model packages, reporting the " +
		"root→sink call chain; //portlint:coldpath (with an invariant comment) stops propagation",
	RunModule: runModule,
}

func runModule(pass *analysis.ModulePass) error {
	g := callgraph.Build(pass.Pkgs)

	for _, fn := range g.Funcs() {
		if fn.Coldpath && fn.ColdpathReason == "" {
			pass.Reportf(fn.Decl.Pos(), "//portlint:coldpath on %s needs an invariant comment on the directive line explaining why the function cannot run per cycle", callgraph.DisplayName(fn.Obj))
		}
		if fn.Coldpath && fn.Hotpath {
			pass.Reportf(fn.Decl.Pos(), "%s is marked both //portlint:hotpath and //portlint:coldpath; pick one", callgraph.DisplayName(fn.Obj))
		}
	}

	cl := g.HotpathClosure(Scope)
	for _, e := range cl.Entries() {
		if e.Root {
			continue // the hotpath analyzer already checks annotated bodies
		}
		chain := e.Chain
		where := fmt.Sprintf("the hotpath closure of %s", chain[0])
		suffix := " [chain: " + strings.Join(chain, " -> ") + "]"
		hotpath.CheckBody(e.Fn.Pkg.TypesInfo, e.Fn.Decl.Body, where, "hotpathclosure",
			func(pos token.Pos, format string, args ...any) {
				pass.Report(analysis.Diagnostic{
					Pos:     pos,
					Message: fmt.Sprintf(format, args...) + suffix,
					Chain:   chain,
				})
			})
	}
	return nil
}
