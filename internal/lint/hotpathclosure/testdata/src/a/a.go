package a

// fixture for the hotpathclosure analyzer: root() is annotated, nothing
// below it is, and the closure pass must find the allocations two hops
// down, through interface dispatch, and stop at coldpath boundaries.

var free []int

//portlint:hotpath
func root() {
	hop()
	drain()
	emit(&impl{})
	recycle()
}

func hop() {
	leak()
}

func leak() {
	_ = make([]int, 8) // want `make in the hotpath closure of a\.root allocates per call`
}

type sink interface{ put(int) }

type impl struct{ buf []int }

func (s *impl) put(v int) {
	s.buf = append(s.buf, v) // want `append into s\.buf in the hotpath closure of a\.root`
}

func emit(s sink) { s.put(1) }

// drain is genuinely cold and opts out with an invariant comment; nothing
// under it is checked.
//
//portlint:coldpath runs once at end of simulation, outside the cycle loop
func drain() {
	_ = make([]int, 1024)
}

// badCold is missing the mandatory invariant comment.
//
//portlint:coldpath
func badCold() {} // want `//portlint:coldpath on a\.badCold needs an invariant comment`

func recycle() {
	free = append(free, 1) //portlint:ignore hotpathclosure free-list capacity fixed at construction
}
