// Package counterhygiene implements the portlint analyzer for the
// stringly-typed stats.Set counter namespace. Counters are created on first
// write and read back by name; a typo on either side produces a silent zero
// that flows straight into EXPERIMENTS.md. The analyzer enforces:
//
//   - Per package: every counter name passed to (*stats.Set).Add/Inc/Get/
//     Ratio must be a compile-time string constant, or a call to a name
//     constructor declared in the stats package itself (stats.ClassCounter,
//     stats.GrantBucket) for the few families whose names are data-
//     dependent.
//   - In the core simulator packages (ConstOnlyPackages), the constant must
//     be one of the canonical names declared in internal/stats/names.go —
//     bare string literals are flagged, so the whole counter vocabulary
//     lives in one audited file.
//   - Across the module: a name (or name constructor) that is read but
//     never written is flagged as a probable typo; the converse — canonical
//     constants in names.go that no code ever writes — is flagged as dead
//     vocabulary, as are two constants spelling the same name.
//
// The cross-module checks need the writers in the analyzed package set, so
// they self-disable when no write is visible (linting a single read-only
// package) — run portlint over ./... for full coverage. Test files are not
// analyzed; tests exercise ad-hoc counters freely.
package counterhygiene

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"portsim/internal/lint/analysis"
)

// StatsPackage is the import path of the stats package whose Set type owns
// the counter namespace.
var StatsPackage = "portsim/internal/stats"

// NamesFile is the basename of the canonical counter-vocabulary file inside
// StatsPackage.
var NamesFile = "names.go"

// ConstOnlyPackages are the packages whose counter names must come from the
// canonical constants in NamesFile rather than bare string literals.
var ConstOnlyPackages = map[string]bool{
	"portsim/internal/cpu":   true,
	"portsim/internal/core":  true,
	"portsim/internal/cache": true,
}

// methodNameArgs maps stats.Set method names to the indices of their
// counter-name arguments and whether the method writes the counter.
var methodNameArgs = map[string]struct {
	args  []int
	write bool
}{
	"Add":   {args: []int{0}, write: true},
	"Inc":   {args: []int{0}, write: true},
	"Get":   {args: []int{0}, write: false},
	"Ratio": {args: []int{0, 1}, write: false},
}

// Analyzer is the counterhygiene analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "counterhygiene",
	Doc: "flags non-constant and non-canonical stats counter names, counter " +
		"reads that no code ever writes, and dead or duplicate entries in " +
		"the canonical names file",
	Run:       run,
	RunModule: runModule,
}

// use records one counter-name argument at a call site.
type use struct {
	// key identifies the counter: the literal name for constant
	// arguments, or "call:<pkgpath>.<func>" for blessed name-constructor
	// calls.
	key     string
	display string // human-readable form for diagnostics
	write   bool
	pos     token.Pos
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == StatsPackage {
		// The stats package implements the counter API; its internal
		// plumbing (Inc delegating to Add, Merge re-adding names) is
		// necessarily dynamic.
		return nil
	}
	constOnly := ConstOnlyPackages[pass.Pkg.Path()]
	forEachUse(pass.Files, pass.TypesInfo, func(arg ast.Expr, write bool) {
		tv := pass.TypesInfo.Types[arg]
		if tv.Value != nil && tv.Value.Kind() == constant.String {
			if !constOnly {
				return
			}
			if c := namedConstOf(pass.TypesInfo, arg); c == nil {
				pass.Reportf(arg.Pos(),
					"stringly-typed counter name %s; use the canonical constant from %s's %s",
					types.ExprString(arg), StatsPackage, NamesFile)
			} else if c.Pkg() == nil || c.Pkg().Path() != StatsPackage {
				pass.Reportf(arg.Pos(),
					"counter name constant %s is declared outside %s; move it into the canonical %s",
					c.Name(), StatsPackage, NamesFile)
			}
			return
		}
		if constructorOf(pass.TypesInfo, arg) != nil {
			return
		}
		pass.Reportf(arg.Pos(),
			"non-constant counter name %s defeats typo detection; use a constant from %s's %s or a stats name constructor",
			types.ExprString(arg), StatsPackage, NamesFile)
	})
	return nil
}

func runModule(pass *analysis.ModulePass) error {
	var uses []use
	for _, pkg := range pass.Pkgs {
		forEachUse(pkg.Files, pkg.TypesInfo, func(arg ast.Expr, write bool) {
			u := use{write: write, pos: arg.Pos()}
			tv := pkg.TypesInfo.Types[arg]
			switch {
			case tv.Value != nil && tv.Value.Kind() == constant.String:
				u.key = constant.StringVal(tv.Value)
				u.display = fmt.Sprintf("%q", u.key)
			default:
				fn := constructorOf(pkg.TypesInfo, arg)
				if fn == nil {
					return // reported per-package as non-constant
				}
				u.key = "call:" + fn.Pkg().Path() + "." + fn.Name()
				u.display = fn.Pkg().Name() + "." + fn.Name() + "(...)"
			}
			uses = append(uses, u)
		})
	}

	written := make(map[string]bool)
	for _, u := range uses {
		if u.write {
			written[u.key] = true
		}
	}
	// With no writer in the analyzed set every read would look orphaned;
	// that means we are linting a read-only slice of the module, where the
	// cross-package checks cannot say anything useful.
	if len(written) == 0 {
		return nil
	}
	for _, u := range uses {
		if !u.write && !written[u.key] {
			pass.Reportf(u.pos,
				"counter %s is read but never written anywhere in the analyzed packages (typo, or a missing Add/Inc)",
				u.display)
		}
	}
	checkNamesFile(pass, written)
	return nil
}

// checkNamesFile audits the canonical vocabulary in StatsPackage's
// NamesFile: every exported string constant there must be written by some
// analyzed package, and no two constants may spell the same counter.
func checkNamesFile(pass *analysis.ModulePass, written map[string]bool) {
	var stats *analysis.Package
	for _, pkg := range pass.Pkgs {
		if pkg.Path == StatsPackage {
			stats = pkg
		}
	}
	if stats == nil {
		return // stats not among the analyzed packages
	}
	firstByValue := make(map[string]*types.Const)
	scope := stats.Types.Scope()
	var names []string
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String || !c.Exported() {
			continue
		}
		if filepath.Base(pass.Fset.Position(c.Pos()).Filename) != NamesFile {
			continue
		}
		names = append(names, name)
		value := constant.StringVal(c.Val())
		if prev, dup := firstByValue[value]; dup {
			pass.Reportf(c.Pos(), "counter name constant %s duplicates %s (both %q)",
				c.Name(), prev.Name(), value)
		} else {
			firstByValue[value] = c
		}
	}
	sort.Strings(names)
	for _, name := range names {
		c := scope.Lookup(name).(*types.Const)
		value := constant.StringVal(c.Val())
		if first := firstByValue[value]; first != nil && first != c {
			continue // duplicate already reported
		}
		if !written[value] {
			pass.Reportf(c.Pos(),
				"canonical counter name %s (%q) is never written by the analyzed packages; delete it or add the missing instrumentation",
				c.Name(), value)
		}
	}
}

// WrittenNames returns the sorted literal counter names written anywhere in
// pkgs, for regenerating the canonical names file (portlint -counters).
func WrittenNames(pkgs []*analysis.Package) []string {
	set := make(map[string]bool)
	for _, pkg := range pkgs {
		forEachUse(pkg.Files, pkg.TypesInfo, func(arg ast.Expr, write bool) {
			tv := pkg.TypesInfo.Types[arg]
			if write && tv.Value != nil && tv.Value.Kind() == constant.String {
				set[constant.StringVal(tv.Value)] = true
			}
		})
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// forEachUse invokes fn for every counter-name argument of a stats.Set
// method call in the files.
func forEachUse(files []*ast.File, info *types.Info, fn func(arg ast.Expr, write bool)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method, ok := methodNameArgs[sel.Sel.Name]
			if !ok || !isStatsSetMethod(info, sel) {
				return true
			}
			for _, idx := range method.args {
				if idx < len(call.Args) {
					fn(call.Args[idx], method.write)
				}
			}
			return true
		})
	}
}

// isStatsSetMethod reports whether sel selects a method whose receiver is
// the stats.Set type.
func isStatsSetMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Set" && obj.Pkg() != nil && obj.Pkg().Path() == StatsPackage
}

// namedConstOf resolves arg to the declared constant it references, or nil
// when arg is not a plain constant reference (a literal, a concatenation).
func namedConstOf(info *types.Info, arg ast.Expr) *types.Const {
	var ident *ast.Ident
	switch e := arg.(type) {
	case *ast.Ident:
		ident = e
	case *ast.SelectorExpr:
		ident = e.Sel
	default:
		return nil
	}
	c, _ := info.Uses[ident].(*types.Const)
	return c
}

// constructorOf reports the stats-package function a name-constructor call
// resolves to, or nil when arg is not such a call.
func constructorOf(info *types.Info, arg ast.Expr) *types.Func {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return nil
	}
	var ident *ast.Ident
	switch e := call.Fun.(type) {
	case *ast.Ident:
		ident = e
	case *ast.SelectorExpr:
		ident = e.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[ident].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != StatsPackage {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Results().Len() != 1 {
		return nil
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.String {
		return nil
	}
	return fn
}
