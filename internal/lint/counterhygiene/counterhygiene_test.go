package counterhygiene_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/counterhygiene"
)

func TestCounterhygiene(t *testing.T) {
	analysistest.Run(t, counterhygiene.Analyzer, "a")
}

// TestConstOnly checks the canonical-constant requirement imposed on the
// core simulator packages.
func TestConstOnly(t *testing.T) {
	const path = "portsim/internal/lint/counterhygiene/testdata/src/constonly"
	counterhygiene.ConstOnlyPackages[path] = true
	defer delete(counterhygiene.ConstOnlyPackages, path)
	analysistest.Run(t, counterhygiene.Analyzer, "constonly")
}

// TestNamesFileAudit points StatsPackage at the fakestats fixture so the
// names.go dead-constant and duplicate checks run against a controlled
// vocabulary.
func TestNamesFileAudit(t *testing.T) {
	orig := counterhygiene.StatsPackage
	counterhygiene.StatsPackage = "portsim/internal/lint/counterhygiene/testdata/src/fakestats"
	defer func() { counterhygiene.StatsPackage = orig }()
	analysistest.Run(t, counterhygiene.Analyzer, "fakestats", "b")
}
