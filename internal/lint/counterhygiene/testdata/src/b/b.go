// Package b writes a subset of the fakestats vocabulary, leaving DeadName
// untouched and reading one name nobody writes.
package b

import "portsim/internal/lint/counterhygiene/testdata/src/fakestats"

func record(s *fakestats.Set) uint64 {
	s.Add(fakestats.Good, 1)
	s.Inc(fakestats.Dup1)
	return s.Get("b.typo") // want `counter "b\.typo" is read but never written`
}
