// Package constonly is a counterhygiene fixture for ConstOnlyPackages:
// counter names must be the canonical constants from the stats package, so
// bare literals and locally declared constants are both flagged.
package constonly

import "portsim/internal/stats"

const localName = "co.local"

func record(s *stats.Set, class string) {
	s.Add(stats.Cycles, 1)
	s.Inc(stats.ClassCounter(class))
	s.Inc("co.raw")     // want `stringly-typed counter name "co\.raw"`
	s.Add(localName, 2) // want `counter name constant localName is declared outside`
}
