// Package fakestats is a miniature stand-in for the real stats package,
// used by the counterhygiene tests to exercise the names-file audit: the
// test points counterhygiene.StatsPackage at this package, so the checks in
// names.go run against a controlled vocabulary.
package fakestats

// Set mirrors the counter API of the real stats.Set.
type Set struct {
	counters map[string]uint64
}

// Add accumulates v into the named counter.
func (s *Set) Add(name string, v uint64) {
	if s.counters == nil {
		s.counters = make(map[string]uint64)
	}
	s.counters[name] += v
}

// Inc adds one to the named counter.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the named counter's value.
func (s *Set) Get(name string) uint64 { return s.counters[name] }

// Ratio returns num/den as a float.
func (s *Set) Ratio(num, den string) float64 {
	if d := s.Get(den); d != 0 {
		return float64(s.Get(num)) / float64(d)
	}
	return 0
}
