// Canonical counter vocabulary for the fakestats fixture. DeadName is never
// written by package b, and Dup2 spells the same counter as Dup1; both are
// audit findings.
package fakestats

const (
	Good     = "good"
	DeadName = "dead.name" // want `canonical counter name DeadName \("dead\.name"\) is never written`
	Dup1     = "same.value"
	Dup2     = "same.value" // want `counter name constant Dup2 duplicates Dup1`
)
