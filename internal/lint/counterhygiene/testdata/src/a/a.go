// Package a is a counterhygiene fixture for a regular (non-core) package:
// constant names and stats name constructors are fine, dynamic names are
// flagged, and reads without a matching write anywhere are typo candidates.
package a

import (
	"fmt"

	"portsim/internal/stats"
)

const total = "a.total"

func record(s *stats.Set, class string) {
	s.Add(total, 3)
	s.Inc("a.hits")
	s.Add(stats.Cycles, 100)
	s.Add(stats.GrantBucket(2), 1)

	_ = s.Get("a.hits")
	_ = s.Get(stats.GrantBucket(2))
	_ = s.Get("a.typo")                         // want `counter "a\.typo" is read but never written`
	_ = s.Ratio(total, "a.missing")             // want `counter "a\.missing" is read but never written`
	_ = s.Get(stats.ClassCounter(class))        // want `counter stats\.ClassCounter\(\.\.\.\) is read but never written`
	_ = s.Get(fmt.Sprintf("a.%s.bytes", class)) // want `non-constant counter name fmt\.Sprintf\(.*\) defeats typo detection`
}
