// Package maporder implements the portlint analyzer that closes the last
// structural nondeterminism hole detrand (wall clock, math/rand) does not
// cover: Go's map iteration order is randomized per run, so a `range` over
// a map whose loop body reaches an output sink makes tables, traces and
// manifests differ run to run even with identical inputs.
//
// The analyzer flags a range over a map-typed expression when the loop body
//
//   - calls an output sink directly — fmt.Print*/Fprint*, an Encode method,
//     or a Write/WriteString method with the io.Writer signature shape — or
//   - calls an in-repo function that transitively reaches such a sink
//     (computed as a fixed point over the module call graph), or
//   - appends to a variable declared outside the loop that is not passed to
//     a sort.* or slices.* call after the loop in the same function.
//
// The sanctioned pattern is collect → sort → emit: range the map into a
// key slice, sort it, then iterate the slice. Ranges that only accumulate
// order-independent values (sums, maxima, counts) are not flagged.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"portsim/internal/lint/analysis"
	"portsim/internal/lint/callgraph"
)

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range over maps whose body reaches an output sink (fmt.Fprint*, " +
		"encoders, writers — directly or transitively) or appends to a slice that " +
		"is never sorted afterwards; collect into a slice and sort it instead",
	RunModule: runModule,
}

// fmtOutput is the set of package fmt functions that write to an output
// stream (fmt.Sprint* builds a string and is judged by what happens to it).
var fmtOutput = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runModule(pass *analysis.ModulePass) error {
	g := callgraph.Build(pass.Pkgs)

	// Fixed point: a function is emitting if its body contains a direct
	// sink call, or it calls an emitting in-repo function.
	emitting := make(map[*callgraph.Func]bool)
	for _, fn := range g.Funcs() {
		if hasDirectSink(fn.Pkg.TypesInfo, fn.Decl.Body) {
			emitting[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			if emitting[fn] {
				continue
			}
			for _, call := range fn.Calls {
				if callee := g.Lookup(call.Callee); callee != nil && emitting[callee] {
					emitting[fn] = true
					changed = true
					break
				}
			}
		}
	}

	for _, fn := range g.Funcs() {
		checkFunc(pass, g, emitting, fn)
	}
	return nil
}

// checkFunc flags the offending map ranges inside one function.
func checkFunc(pass *analysis.ModulePass, g *callgraph.Graph, emitting map[*callgraph.Func]bool, fn *callgraph.Func) {
	info := fn.Pkg.TypesInfo
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(info, rng.X) {
			return true
		}
		mapStr := types.ExprString(rng.X)

		// Direct or transitive sink inside the body: no sort can intervene.
		sink := findSink(info, g, emitting, rng.Body)
		if sink != "" {
			pass.Reportf(rng.For, "range over map %s reaches an output sink (%s); map order is randomized per run — collect into a slice, sort, then emit", mapStr, sink)
		}

		// Appends into outer variables: flagged unless sorted after the loop.
		for _, v := range outerAppendTargets(info, rng) {
			if !sortedAfter(info, fn.Decl.Body, rng, v) {
				pass.Reportf(rng.For, "range over map %s appends to %s in map order and %s is never sorted afterwards; sort it after the loop before it is emitted", mapStr, v.Name(), v.Name())
			}
		}
		return true
	})
}

// hasDirectSink reports whether a body contains a direct output-sink call.
func hasDirectSink(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := directSink(info, call); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

// findSink returns a description of the first output sink the body reaches,
// or "".
func findSink(info *types.Info, g *callgraph.Graph, emitting map[*callgraph.Func]bool, body ast.Node) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := directSink(info, call); ok {
			found = name
			return false
		}
		if obj := calleeObj(info, call); obj != nil {
			if callee := g.Lookup(obj); callee != nil && emitting[callee] {
				found = callgraph.DisplayName(obj)
				return false
			}
		}
		return true
	})
	return found
}

// directSink reports whether a call writes to an output stream, returning a
// human-readable name for the diagnostic.
func directSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// fmt.Print* / fmt.Fprint*.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := info.Uses[id].(*types.PkgName); ok {
			if pkg.Imported().Path() == "fmt" && fmtOutput[sel.Sel.Name] {
				return "fmt." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	// Encoder Encode methods and io.Writer-shaped Write/WriteString.
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	m, ok := s.Obj().(*types.Func)
	if !ok {
		return "", false
	}
	switch m.Name() {
	case "Encode":
		return callgraph.DisplayName(m), true
	case "Write", "WriteString":
		if sig, ok := m.Type().(*types.Signature); ok && writerShape(sig) {
			return callgraph.DisplayName(m), true
		}
	}
	return "", false
}

// writerShape matches func(...) (int, error) with one parameter, the
// io.Writer Write/WriteString signature.
func writerShape(sig *types.Signature) bool {
	if sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	first, ok := sig.Results().At(0).Type().(*types.Basic)
	if !ok || first.Kind() != types.Int {
		return false
	}
	named, ok := sig.Results().At(1).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// calleeObj resolves a call's callee to a function object, or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := info.Uses[f].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		if s, ok := info.Selections[f]; ok {
			obj, _ := s.Obj().(*types.Func)
			return obj
		}
		obj, _ := info.Uses[f.Sel].(*types.Func)
		return obj
	}
	return nil
}

// outerAppendTargets returns the distinct variables declared outside the
// range statement that the loop body appends into, in first-append order.
func outerAppendTargets(info *types.Info, rng *ast.RangeStmt) []*types.Var {
	var vars []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return true
		}
		if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
			return true
		}
		target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[target].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		// Declared outside the range statement: its definition position is
		// not within the statement's span.
		if v.Pos() >= rng.Pos() && v.Pos() < rng.End() {
			return true
		}
		seen[v] = true
		vars = append(vars, v)
		return true
	})
	return vars
}

// sortedAfter reports whether a sort.* or slices.* call referencing v
// appears after the range statement in the enclosing body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, v *types.Var) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rng.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pkg.Imported().Path()
		if path != "sort" && path != "slices" && !strings.HasSuffix(path, "/slices") {
			return true
		}
		for _, arg := range call.Args {
			if mentions(info, arg, v) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// mentions reports whether the expression references v.
func mentions(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
			return false
		}
		return !found
	})
	return found
}

// isMapType reports whether the expression's type is a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
