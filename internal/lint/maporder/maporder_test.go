package maporder_test

import (
	"testing"

	"portsim/internal/lint/analysistest"
	"portsim/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "a")
}
