package a

import (
	"fmt"
	"io"
	"sort"
)

// fixture for the maporder analyzer: direct sinks, transitive sinks through
// a helper, unsorted appends, and the sanctioned collect-sort-emit pattern.

func direct(m map[string]int) {
	for k := range m { // want `range over map m reaches an output sink \(fmt\.Println\)`
		fmt.Println(k)
	}
}

func toWriter(w io.Writer, m map[string]int) {
	for k, v := range m { // want `range over map m reaches an output sink \(fmt\.Fprintf\)`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func render(s string) { fmt.Println(s) }

func transitive(m map[string]int) {
	for k := range m { // want `range over map m reaches an output sink \(a\.render\)`
		render(k)
	}
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys in map order and keys is never sorted`
		keys = append(keys, k)
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m { // order-independent: not flagged
		total += v
	}
	return total
}

func localAppend(m map[string]int) {
	for k := range m {
		line := []byte{}
		line = append(line, k...) // target declared inside the loop: not flagged
		_ = line
	}
}
