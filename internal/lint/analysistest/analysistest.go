// Package analysistest runs a portlint analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest. Fixtures live under the
// analyzer package's testdata/src/<pkg>/ directory; they are real,
// compilable packages inside this module (the go tool's pattern expansion
// skips testdata directories, so planted violations never reach go build
// ./... or go vet ./...).
//
// Expectation syntax, on the line the diagnostic is expected:
//
//	s.Get("typo") // want `regexp`
//
// Multiple backquoted regexps on one line expect multiple diagnostics.
// Lines without a want comment must produce no diagnostics. Both the
// per-package Run and the module-level RunModule of the analyzer execute;
// the module pass sees exactly the fixture packages named in the call.
// //portlint:ignore suppressions are applied, so fixtures can also assert
// that a suppressed line stays silent.
package analysistest

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"portsim/internal/lint"
	"portsim/internal/lint/analysis"
	"portsim/internal/lint/loader"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads testdata/src/<fixture> for each named fixture (relative to the
// calling test's package directory) and analyzes them together with a.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	if len(fixtures) == 0 {
		t.Fatal("analysistest: no fixture packages given")
	}
	patterns := make([]string, len(fixtures))
	for i, fx := range fixtures {
		patterns[i] = "./testdata/src/" + fx
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	all, err := lint.Analyze(pkgs, a)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	// Want comments describe the findings that would gate CI; suppressed
	// ones stay invisible here so fixtures can assert an ignore directive
	// keeps a line silent.
	findings := lint.Active(all)

	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg, f, func(file string, line int, re *regexp.Regexp) {
				k := lineKey{file, line}
				wants[k] = append(wants[k], re)
			})
		}
	}

	for _, f := range findings {
		k := lineKey{f.Position.Filename, f.Position.Line}
		idx := -1
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s: unexpected diagnostic: %s: %s", f.Position, f.Analyzer, f.Message)
			continue
		}
		wants[k] = append(wants[k][:idx], wants[k][idx+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// collectWants parses the // want comments of one file.
func collectWants(t *testing.T, pkg *analysis.Package, f *ast.File, add func(file string, line int, re *regexp.Regexp)) {
	t.Helper()
	for _, group := range f.Comments {
		for _, c := range group.List {
			_, rest, found := strings.Cut(c.Text, "// want ")
			if !found {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			matches := wantRE.FindAllStringSubmatch(rest, -1)
			if len(matches) == 0 {
				t.Fatalf("%s: malformed want comment %q: expectations must be backquoted regexps", pos, c.Text)
			}
			for _, m := range matches {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
				}
				add(pos.Filename, pos.Line, re)
			}
		}
	}
}
