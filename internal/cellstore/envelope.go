// Package cellstore is the durable, content-addressed store behind the
// experiment engine's in-process memo: one file per finished cell, keyed
// by the (machine-config hash, workload, seed, insts) identity the
// manifest layer computes, so a killed campaign resumes with only its
// unfinished cells re-simulated.
//
// The store is deliberately ignorant of the simulator: entries carry an
// opaque JSON payload (portlint's layerimports analyzer forbids this
// package from importing internal/{core,cpu,mem}), and the experiments
// layer owns the encoding of results and cell failures. What the store
// does own is durability and integrity:
//
//   - Crash-safe writes: every Put lands via temp file + fsync + atomic
//     rename (+ directory fsync), so a process killed mid-Put leaves at
//     worst an ignorable temp file, never a half-visible entry.
//   - Per-entry integrity: entries are wrapped in a portsim-cell/v1
//     envelope carrying a SHA-256 checksum of the body; any mismatch —
//     torn write, bit rot, truncation — is detected on read.
//   - Quarantine, not crash: a corrupt entry is renamed to *.corrupt,
//     recorded as a structured StoreError and reported as a miss, so the
//     campaign re-simulates the one cell instead of failing.
package cellstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Schema identifies the on-disk envelope format. Bump the suffix on any
// incompatible change; unknown schemas quarantine on read.
const Schema = "portsim-cell/v1"

// Key is the identity of one experiment cell. It mirrors the identity the
// manifest layer computes — the short config hash plus the cell
// coordinates — extended with the fault descriptor for poisoned cells so
// an injected failure can never be restored into a clean campaign (or
// vice versa).
type Key struct {
	// ConfigHash fingerprints the machine-configuration JSON, same
	// algorithm and width as the manifest layer's config_hash (SHA-256,
	// first 6 bytes, hex).
	ConfigHash string `json:"config_hash"`
	// Machine is the configuration's display name. It is part of the
	// identity: two presets could hash identically only by sharing every
	// parameter AND the name (the name is inside the config JSON), but
	// keeping it in the key makes entries self-describing under Scan.
	Machine string `json:"machine"`
	// Workload is the built-in workload name. Ad-hoc mutated profiles are
	// never stored — their identity lives outside the config hash.
	Workload string `json:"workload"`
	// Seed and Insts pin the generator seed and instruction budget.
	Seed  int64  `json:"seed"`
	Insts uint64 `json:"insts"`
	// Fault is the fault descriptor (experiments -inject syntax) when the
	// cell was deliberately poisoned, empty for clean cells.
	Fault string `json:"fault,omitempty"`
}

// HashConfig fingerprints one machine-configuration JSON document exactly
// as the manifest layer does (telemetry.HashConfig): SHA-256, first 6
// bytes, hex. Duplicated here rather than imported so the store stays
// free of the telemetry layer; a cross-package test pins the equality.
func HashConfig(cfgJSON []byte) string {
	sum := sha256.Sum256(cfgJSON)
	return hex.EncodeToString(sum[:6])
}

// ID returns the entry's content address: SHA-256 over the canonical JSON
// of the key, truncated to 16 bytes of hex. It is the base of the entry's
// filename.
func (k Key) ID() string {
	doc, err := json.Marshal(k)
	if err != nil {
		// Key is a struct of plain strings and integers; Marshal cannot
		// fail on it. Guard anyway so a future field type keeps the
		// invariant visible.
		panic(fmt.Sprintf("cellstore: key not marshalable: %v", err))
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:16])
}

// Failure is the stored form of a deterministic cell failure. The
// simulator is deterministic, so a cell that died once dies identically
// on every retry; storing the failure means a poisoned cell fails exactly
// once across runs instead of once per run.
type Failure struct {
	// Message is the underlying error text, verbatim.
	Message string `json:"message"`
	// Panicked marks failures born from a contained panic (the
	// experiments layer maps this back onto its ErrCellPanic sentinel).
	Panicked bool `json:"panicked,omitempty"`
	// Stack is the contained panic's stack trace from the original run,
	// kept for forensics; empty for ordinary simulation errors.
	Stack string `json:"stack,omitempty"`
}

// Entry is one stored cell: its identity plus exactly one of Result
// (opaque payload owned by the experiments layer) or Failure.
type Entry struct {
	Key Key `json:"key"`
	// Result is the successful cell's encoded result; nil for failures.
	Result json.RawMessage `json:"result,omitempty"`
	// Failure is the failed cell's stored error; nil for results.
	Failure *Failure `json:"failure,omitempty"`
}

// Validate checks the entry's structural invariant.
func (e *Entry) Validate() error {
	if e.Key.Workload == "" || e.Key.ConfigHash == "" {
		return fmt.Errorf("cellstore: entry missing workload or config hash")
	}
	if e.Key.Insts == 0 {
		return fmt.Errorf("cellstore: entry has a zero instruction budget")
	}
	hasRes := len(e.Result) > 0
	hasFail := e.Failure != nil
	if hasRes == hasFail {
		return fmt.Errorf("cellstore: entry must carry exactly one of result or failure")
	}
	if hasFail && e.Failure.Message == "" {
		return fmt.Errorf("cellstore: stored failure has no message")
	}
	return nil
}

// envelope is the on-disk wrapper: schema, checksum, body. The body is
// kept as raw bytes so the checksum covers the exact serialised form.
type envelope struct {
	Schema   string          `json:"schema"`
	Checksum string          `json:"checksum"`
	Entry    json.RawMessage `json:"entry"`
}

// bodyChecksum computes the envelope checksum of an entry body.
func bodyChecksum(body []byte) string {
	sum := sha256.Sum256(body)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// EncodeEntry serialises an entry into envelope bytes ready for disk. The
// output is deterministic: the same entry always encodes to the same
// bytes, so a re-Put of an identical cell is byte-identical — the
// content-addressing invariant.
func EncodeEntry(e *Entry) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("cellstore: encoding entry: %w", err)
	}
	// The envelope is marshalled compactly: MarshalIndent would re-indent
	// the embedded raw body, and the checksum covers the body's exact
	// bytes as stored.
	env := envelope{Schema: Schema, Checksum: bodyChecksum(body), Entry: body}
	data, err := json.Marshal(&env)
	if err != nil {
		return nil, fmt.Errorf("cellstore: encoding envelope: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeEntry parses and verifies envelope bytes: schema, checksum, entry
// structure. Every corruption shape — truncation, bit flips, wrong
// schema, checksum mismatch, structural nonsense — comes back as an
// error, never a panic; the store turns that error into a quarantine.
func DecodeEntry(data []byte) (*Entry, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("cellstore: envelope not parseable: %w", err)
	}
	if env.Schema != Schema {
		return nil, fmt.Errorf("cellstore: envelope schema %q, want %q", env.Schema, Schema)
	}
	if len(env.Entry) == 0 {
		return nil, fmt.Errorf("cellstore: envelope has no entry body")
	}
	if got := bodyChecksum(env.Entry); got != env.Checksum {
		return nil, fmt.Errorf("cellstore: checksum mismatch: envelope says %s, body is %s", env.Checksum, got)
	}
	var e Entry
	if err := json.Unmarshal(env.Entry, &e); err != nil {
		return nil, fmt.Errorf("cellstore: entry body not parseable: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}
