package cellstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// File-layout constants. Entries are flat files named <key-id>.cell.json;
// in-flight writes use a .tmp suffix (swept on Open); quarantined entries
// keep their content under a .corrupt suffix for post-mortems.
const (
	entrySuffix   = ".cell.json"
	tmpSuffix     = ".tmp"
	corruptSuffix = ".corrupt"
)

// Put retry policy: a failing write is retried with exponential backoff
// before the store degrades to store-less operation. The backoff sleeps
// through Options.Sleep, so tests run the policy without the wall time.
const (
	putAttempts    = 3
	putBackoffBase = 5 * time.Millisecond
)

// ErrDegraded is returned (wrapped in a StoreError) once a store has
// given up on its directory: every later Put and Get is a silent no-op,
// so the campaign finishes store-less instead of dying on disk errors.
var ErrDegraded = errors.New("cellstore: store degraded to store-less operation")

// StoreError is a structured store-level failure: what operation hit it,
// which entry, and why. Quarantines and degradations are recorded as
// StoreErrors retrievable via Errors(); they never fail the campaign.
type StoreError struct {
	// Op is the store operation: "get", "put", "scan", "open".
	Op string
	// Path is the entry file involved, empty for store-wide failures.
	Path string
	// Key identifies the cell when known.
	Key *Key
	// Quarantined is the path the corrupt entry was moved to, when the
	// error led to a quarantine.
	Quarantined string
	// Err is the underlying cause.
	Err error
}

// Error renders the one-line description.
func (e *StoreError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cellstore: %s", e.Op)
	if e.Path != "" {
		fmt.Fprintf(&b, " %s", e.Path)
	}
	if e.Key != nil {
		fmt.Fprintf(&b, " (%s on %s)", e.Key.Workload, e.Key.Machine)
	}
	fmt.Fprintf(&b, ": %v", e.Err)
	if e.Quarantined != "" {
		fmt.Fprintf(&b, " (quarantined to %s)", e.Quarantined)
	}
	return b.String()
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *StoreError) Unwrap() error { return e.Err }

// Stats is the store's operation accounting, used for the portbench
// store summary, the resume hit/miss report and the telemetry gauges.
type Stats struct {
	// Hits and Misses count Get outcomes (a quarantined Get is a miss).
	Hits   uint64
	Misses uint64
	// Puts counts entries durably written; PutFailures counts Put calls
	// that exhausted their retries.
	Puts        uint64
	PutFailures uint64
	// Quarantined counts corrupt entries moved aside.
	Quarantined uint64
	// Degraded reports whether the store has shut itself off.
	Degraded bool
}

// Options tunes a store. The zero value is production behaviour.
type Options struct {
	// Fault, when non-nil, injects store-level failures (torn writes,
	// post-write corruption, I/O errors) for robustness testing.
	Fault *Fault
	// Logf, when non-nil, receives one line per noteworthy store event:
	// quarantines, retried writes, degradation. portbench points it at
	// stderr; nil means silent.
	Logf func(format string, args ...any)
	// Sleep implements the Put retry backoff; nil means time.Sleep.
	Sleep func(d time.Duration)
	// noSync skips the fsyncs on the write path. Test-only (unexported,
	// reachable only from this package's tests): the fuzz harness would
	// otherwise pay two fsyncs per exec. It trades away crash safety.
	noSync bool
}

// Store is a durable, content-addressed cell store over one directory.
// It is safe for concurrent use by the experiment runner's worker pool.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	degraded bool
	errs     []*StoreError

	stats struct {
		hits, misses, puts, putFailures, quarantined uint64
	}
	faultN uint64 // operation counter driving deterministic fault rates
}

// Open opens (creating if necessary) a store over dir. Leftover temp
// files from a previous crash are swept away — they were never visible
// as entries, so removing them is always safe.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cellstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, &StoreError{Op: "open", Path: dir, Err: err}
	}
	s := &Store{dir: dir, opts: opts}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, &StoreError{Op: "open", Path: dir, Err: err}
	}
	for _, de := range names {
		if strings.HasSuffix(de.Name(), tmpSuffix) {
			path := filepath.Join(dir, de.Name())
			if err := os.Remove(path); err == nil {
				s.logf("cellstore: swept stale temp file %s (crashed mid-write)", path)
			}
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// logf emits one store event line when a logger is installed.
func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// recordErr appends a structured store error for Errors().
func (s *Store) recordErr(e *StoreError) {
	s.mu.Lock()
	s.errs = append(s.errs, e)
	s.mu.Unlock()
}

// Errors returns every structured store error recorded so far
// (quarantines, degradation), oldest first.
func (s *Store) Errors() []*StoreError {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*StoreError, len(s.errs))
	copy(out, s.errs)
	return out
}

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:        s.stats.hits,
		Misses:      s.stats.misses,
		Puts:        s.stats.puts,
		PutFailures: s.stats.putFailures,
		Quarantined: s.stats.quarantined,
		Degraded:    s.degraded,
	}
}

// isDegraded reports the degraded flag under the lock.
func (s *Store) isDegraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// degrade shuts the store off after an unrecoverable failure. Later Gets
// miss and later Puts no-op, so the campaign runs to completion exactly
// as if -store had never been given — correctness over durability.
func (s *Store) degrade(cause *StoreError) {
	s.mu.Lock()
	first := !s.degraded
	s.degraded = true
	s.errs = append(s.errs, cause)
	s.mu.Unlock()
	if first {
		s.logf("cellstore: WARNING: %v; continuing without the store", cause)
	}
}

// entryPath returns the file path of a key's entry.
func (s *Store) entryPath(k Key) string {
	return filepath.Join(s.dir, k.ID()+entrySuffix)
}

// Get looks a cell up. A missing entry returns (nil, nil) — a plain
// miss. A corrupt entry (unreadable, bad schema, checksum mismatch,
// structural nonsense, or an entry whose stored key disagrees with the
// requested one) is quarantined and also reported as a miss: the campaign
// re-simulates the cell and the next Put replaces the entry. Get only
// returns a non-nil error for the degraded store sentinel, which callers
// may treat as a miss too.
func (s *Store) Get(k Key) (*Entry, error) {
	if s.isDegraded() {
		return nil, nil
	}
	path := s.entryPath(k)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		s.count(func(st *Store) { st.stats.misses++ })
		return nil, nil
	}
	if err != nil {
		// Unreadable but present (permissions, I/O error): quarantine so
		// the campaign makes progress; if even the rename fails the entry
		// simply stays and the next run retries it.
		s.quarantine("get", path, &k, err)
		return nil, nil
	}
	e, err := DecodeEntry(data)
	if err != nil {
		s.quarantine("get", path, &k, err)
		return nil, nil
	}
	if e.Key != k {
		// A content-addressed store should make this impossible; seeing
		// it means the file was overwritten or the hash scheme changed.
		s.quarantine("get", path, &k, fmt.Errorf("stored key %+v does not match requested %+v", e.Key, k))
		return nil, nil
	}
	s.count(func(st *Store) { st.stats.hits++ })
	return e, nil
}

// Quarantine moves a key's entry aside with an experiments-layer reason
// (e.g. an envelope that verified but whose payload the experiments layer
// cannot decode) and records the StoreError. The next Get misses and the
// cell is re-simulated.
func (s *Store) Quarantine(k Key, reason error) {
	if s.isDegraded() {
		return
	}
	s.quarantine("get", s.entryPath(k), &k, reason)
}

// quarantine renames a corrupt entry to *.corrupt, records the error and
// counts the miss.
func (s *Store) quarantine(op, path string, k *Key, cause error) {
	qpath := path + corruptSuffix
	se := &StoreError{Op: op, Path: path, Key: k, Err: cause}
	if err := os.Rename(path, qpath); err == nil {
		se.Quarantined = qpath
	}
	s.mu.Lock()
	s.stats.quarantined++
	s.stats.misses++
	s.errs = append(s.errs, se)
	s.mu.Unlock()
	s.logf("cellstore: WARNING: quarantined corrupt entry: %v", se)
}

// count mutates the stats under the lock.
func (s *Store) count(fn func(*Store)) {
	s.mu.Lock()
	fn(s)
	s.mu.Unlock()
}

// Put durably writes one entry. The write is crash-safe — temp file,
// fsync, atomic rename, directory fsync — so a kill at any instant leaves
// either the old state or the complete new entry, never a torn one.
// Failures are retried with backoff; exhausting the retries records the
// failure and degrades the store to store-less operation. Put never
// fails the campaign: the returned error is advisory.
func (s *Store) Put(e *Entry) error {
	if s.isDegraded() {
		return nil
	}
	data, err := EncodeEntry(e)
	if err != nil {
		// An unencodable entry is a caller bug, not a disk failure; do
		// not degrade the store over it.
		se := &StoreError{Op: "put", Key: &e.Key, Err: err}
		s.recordErr(se)
		return se
	}
	path := s.entryPath(e.Key)
	var lastErr error
	for attempt := 0; attempt < putAttempts; attempt++ {
		if attempt > 0 {
			s.sleep(putBackoffBase << (attempt - 1))
		}
		if err := s.writeEntry(path, data); err != nil {
			lastErr = err
			s.logf("cellstore: put %s attempt %d/%d failed: %v", path, attempt+1, putAttempts, err)
			continue
		}
		s.faultAfterPut(path, data)
		s.count(func(st *Store) { st.stats.puts++ })
		return nil
	}
	s.count(func(st *Store) { st.stats.putFailures++ })
	se := &StoreError{Op: "put", Path: path, Key: &e.Key,
		Err: fmt.Errorf("%w: %d attempts failed, last: %v", ErrDegraded, putAttempts, lastErr)}
	s.degrade(se)
	return se
}

// sleep applies the configured backoff.
func (s *Store) sleep(d time.Duration) {
	if s.opts.Sleep != nil {
		s.opts.Sleep(d)
		return
	}
	time.Sleep(d)
}

// writeEntry performs one crash-safe write attempt, consulting the fault
// injector for write-path faults (ioerr, torn).
func (s *Store) writeEntry(path string, data []byte) error {
	if s.faultFires(FaultIOErr) {
		return fmt.Errorf("injected I/O error (fault %s)", s.opts.Fault)
	}
	if s.faultFires(FaultTorn) {
		// A torn write models a crash mid-write on a filesystem without
		// atomic rename semantics: the entry becomes visible truncated.
		// Bypass the temp+rename discipline deliberately.
		s.logf("cellstore: fault: tearing write of %s", path)
		return os.WriteFile(path, data[:len(data)/2], 0o644)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*"+tmpSuffix)
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Any failure past here removes the temp file; the entry path is
	// untouched until the rename.
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if !s.opts.noSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if s.opts.noSync {
		return nil
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Not every filesystem supports it; unsupported is not an error.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

// Scan decodes every entry in the store in filename order (deterministic
// across runs) and calls fn for each. Corrupt entries are quarantined
// exactly as Get would, counted, and skipped. The returned count is the
// number of healthy entries visited.
func (s *Store) Scan(fn func(*Entry) error) (int, error) {
	if s.isDegraded() {
		return 0, nil
	}
	des, err := os.ReadDir(s.dir)
	if err != nil {
		se := &StoreError{Op: "scan", Path: s.dir, Err: err}
		s.recordErr(se)
		return 0, se
	}
	names := make([]string, 0, len(des))
	for _, de := range des {
		if strings.HasSuffix(de.Name(), entrySuffix) {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	n := 0
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			s.quarantine("scan", path, nil, err)
			continue
		}
		e, err := DecodeEntry(data)
		if err != nil {
			s.quarantine("scan", path, nil, err)
			continue
		}
		n++
		if fn != nil {
			if err := fn(e); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// faultFires reports whether the configured fault injector fires for the
// given mode on this operation, advancing the deterministic rate counter.
func (s *Store) faultFires(mode FaultMode) bool {
	f := s.opts.Fault
	if f == nil || f.Mode != mode {
		return false
	}
	s.mu.Lock()
	s.faultN++
	n := s.faultN
	s.mu.Unlock()
	return f.fires(n)
}

// faultAfterPut applies post-write corruption (corrupt mode): flip one
// byte in the middle of the just-written entry, exactly the bit rot the
// checksum exists to catch.
func (s *Store) faultAfterPut(path string, data []byte) {
	if !s.faultFires(FaultCorrupt) {
		return
	}
	s.logf("cellstore: fault: corrupting %s", path)
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return
	}
	defer f.Close()
	off := int64(len(data) / 2)
	b := [1]byte{data[off] ^ 0xff}
	f.WriteAt(b[:], off)
}
