package cellstore

import (
	"encoding/json"
	"os"
	"testing"
)

// FuzzDecodeEntry drives envelope decoding with adversarial bytes: a
// decode either yields an entry that re-validates, or an error — never a
// panic. The corpus seeds the shapes the corruption table test covers:
// valid envelopes, truncations and bit flips.
func FuzzDecodeEntry(f *testing.F) {
	valid, err := EncodeEntry(&Entry{
		Key: Key{
			ConfigHash: HashConfig([]byte(`{"name":"baseline"}`)),
			Machine:    "baseline",
			Workload:   "compress",
			Seed:       42,
			Insts:      40_000,
		},
		Result: json.RawMessage(`{"cycles":123}`),
	})
	if err != nil {
		f.Fatal(err)
	}
	failure, err := EncodeEntry(&Entry{
		Key: Key{ConfigHash: "abcdef012345", Machine: "dual", Workload: "eqntott", Seed: 7, Insts: 1000},
		Failure: &Failure{
			Message:  "experiments: cell panicked: boom",
			Panicked: true,
			Stack:    "goroutine 1 [running]:\nmain.main()",
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(failure)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)
	f.Add([]byte(`{"schema":"portsim-cell/v1","checksum":"sha256:00","entry":{}}`))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEntry(data)
		if err != nil {
			if e != nil {
				t.Fatal("DecodeEntry returned both an entry and an error")
			}
			return
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("decoded entry does not re-validate: %v", err)
		}
		// A decodable entry must re-encode and decode to the same key —
		// the content address survives the trip.
		data2, err := EncodeEntry(e)
		if err != nil {
			t.Fatalf("re-encode of decoded entry failed: %v", err)
		}
		e2, err := DecodeEntry(data2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if e2.Key != e.Key {
			t.Fatalf("key changed across re-encode: %+v vs %+v", e.Key, e2.Key)
		}
	})
}

// FuzzGetNeverPanics plants arbitrary bytes at a valid entry path and
// asserts the full store read path (decode + quarantine) never panics
// and always leaves the store usable.
func FuzzGetNeverPanics(f *testing.F) {
	k := Key{
		ConfigHash: HashConfig([]byte(`{"name":"baseline"}`)),
		Machine:    "baseline",
		Workload:   "compress",
		Seed:       42,
		Insts:      40_000,
	}
	valid, err := EncodeEntry(&Entry{Key: k, Result: json.RawMessage(`{"cycles":1}`)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte("{"))
	f.Add([]byte{})

	// One store serves every exec: the fuzz target overwrites the same
	// entry slot each round, so corpus growth does not pay a per-exec
	// tempdir+Open tax.
	s, err := Open(f.TempDir(), Options{noSync: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(s.entryPath(k), data, 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get returned an error: %v", err)
		}
		if e != nil && e.Key != k {
			t.Fatalf("Get returned an entry for the wrong key: %+v", e.Key)
		}
		// Whatever happened, the store must still accept a clean Put and
		// serve it back.
		if err := s.Put(&Entry{Key: k, Result: json.RawMessage(`{"cycles":2}`)}); err != nil {
			t.Fatalf("Put after fuzzed Get failed: %v", err)
		}
		if got, _ := s.Get(k); got == nil {
			t.Fatal("store unusable after fuzzed Get")
		}
	})
}
