package cellstore

import (
	"fmt"
	"strconv"
	"strings"
)

// FaultMode selects which store failure a Fault injects.
type FaultMode string

// Store fault modes, the portbench -inject-store vocabulary.
const (
	// FaultTorn tears an entry mid-Put: the write bypasses the
	// temp+rename discipline and lands truncated, modelling a crash on a
	// filesystem without atomic rename. The next Get must quarantine it.
	FaultTorn FaultMode = "torn"
	// FaultCorrupt flips a byte in the entry after a successful Put —
	// bit rot the checksum must catch on the next Get.
	FaultCorrupt FaultMode = "corrupt"
	// FaultIOErr fails the write attempt itself, driving the Put
	// retry/backoff path and, when persistent, store degradation.
	FaultIOErr FaultMode = "ioerr"
)

// Fault describes one injected store failure domain. Rate selects how
// often it fires; firing is deterministic (a counter, not a PRNG), so a
// faulted campaign behaves identically on every run.
type Fault struct {
	// Mode is the failure to inject.
	Mode FaultMode `json:"mode"`
	// Rate is the fraction of eligible operations that fault, in (0, 1].
	Rate float64 `json:"rate"`
}

// ParseFault parses the portbench -inject-store syntax "mode[:rate]".
// Rate defaults to 1 (every eligible operation faults).
func ParseFault(s string) (*Fault, error) {
	mode, rateStr, hasRate := strings.Cut(s, ":")
	f := &Fault{Mode: FaultMode(mode), Rate: 1}
	switch f.Mode {
	case FaultTorn, FaultCorrupt, FaultIOErr:
	default:
		return nil, fmt.Errorf("cellstore: unknown store fault mode %q (have %s, %s, %s)",
			mode, FaultTorn, FaultCorrupt, FaultIOErr)
	}
	if hasRate {
		r, err := strconv.ParseFloat(rateStr, 64)
		if err != nil {
			return nil, fmt.Errorf("cellstore: bad store fault rate %q: %v", rateStr, err)
		}
		if !(r > 0 && r <= 1) {
			return nil, fmt.Errorf("cellstore: store fault rate %v out of (0, 1]", r)
		}
		f.Rate = r
	}
	return f, nil
}

// String renders the fault in ParseFault syntax.
func (f *Fault) String() string {
	if f.Rate < 1 {
		return fmt.Sprintf("%s:%g", f.Mode, f.Rate)
	}
	return string(f.Mode)
}

// fires reports whether the n-th eligible operation faults. The schedule
// is the deterministic Bresenham spread of Rate over the integers: the
// k-th fault lands on operation ceil(k/Rate), so a rate of 0.25 fires on
// operations 4, 8, 12, ... and a rate of 1 on every operation.
func (f *Fault) fires(n uint64) bool {
	return uint64(float64(n)*f.Rate) > uint64(float64(n-1)*f.Rate)
}
