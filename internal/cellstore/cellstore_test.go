package cellstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testKey returns a valid cell identity for tests.
func testKey(workload string) Key {
	return Key{
		ConfigHash: HashConfig([]byte(`{"name":"baseline"}`)),
		Machine:    "baseline",
		Workload:   workload,
		Seed:       42,
		Insts:      40_000,
	}
}

// testEntry returns a valid result entry.
func testEntry(workload string) *Entry {
	return &Entry{
		Key:    testKey(workload),
		Result: json.RawMessage(`{"cycles":123,"insts":456}`),
	}
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	e := testEntry("compress")
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(e.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("Get missed a just-Put entry")
	}
	if got.Key != e.Key || string(got.Result) != string(e.Result) {
		t.Errorf("roundtrip mutated the entry: %+v", got)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 0 || st.Quarantined != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGetMissOnEmptyStore(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	got, err := s.Get(testKey("compress"))
	if err != nil || got != nil {
		t.Fatalf("Get on empty store = %v, %v; want nil, nil", got, err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("stats = %+v, want one miss", st)
	}
}

func TestFailureEntryRoundtrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	e := &Entry{
		Key:     testKey("eqntott"),
		Failure: &Failure{Message: "watchdog: store buffer full", Panicked: false},
	}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(e.Key)
	if err != nil || got == nil {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if got.Failure == nil || got.Failure.Message != e.Failure.Message {
		t.Errorf("failure lost in roundtrip: %+v", got)
	}
}

// TestPutIsDeterministic pins the content-addressing invariant: the same
// entry always encodes to the same bytes at the same path.
func TestPutIsDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	for _, dir := range []string{dirA, dirB} {
		s := open(t, dir, Options{})
		if err := s.Put(testEntry("compress")); err != nil {
			t.Fatal(err)
		}
	}
	read := func(dir string) (string, []byte) {
		des, err := os.ReadDir(dir)
		if err != nil || len(des) != 1 {
			t.Fatalf("ReadDir(%s) = %v, %v; want one entry", dir, des, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, des[0].Name()))
		if err != nil {
			t.Fatal(err)
		}
		return des[0].Name(), data
	}
	nameA, bytesA := read(dirA)
	nameB, bytesB := read(dirB)
	if nameA != nameB || string(bytesA) != string(bytesB) {
		t.Errorf("identical entries encoded differently: %s vs %s", nameA, nameB)
	}
}

// TestKeyIdentity checks that every key coordinate, including the fault
// descriptor, separates the content address — a poisoned cell can never
// collide with its clean twin.
func TestKeyIdentity(t *testing.T) {
	base := testKey("compress")
	mutations := []func(*Key){
		func(k *Key) { k.ConfigHash = HashConfig([]byte("other")) },
		func(k *Key) { k.Machine = "dual" },
		func(k *Key) { k.Workload = "eqntott" },
		func(k *Key) { k.Seed = 43 },
		func(k *Key) { k.Insts = 50_000 },
		func(k *Key) { k.Fault = "panic:compress:100" },
	}
	seen := map[string]bool{base.ID(): true}
	for i, mut := range mutations {
		k := base
		mut(&k)
		if seen[k.ID()] {
			t.Errorf("mutation %d did not change the key ID", i)
		}
		seen[k.ID()] = true
	}
}

// TestOpenSweepsTempFiles simulates a crash mid-Put: the leftover temp
// file must disappear on the next Open and never surface as an entry.
func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "put-123.tmp")
	if err := os.WriteFile(stale, []byte("half an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale temp file survived Open: %v", err)
	}
	if n, err := s.Scan(nil); err != nil || n != 0 {
		t.Errorf("Scan after sweep = %d, %v; want 0 entries", n, err)
	}
}

// TestCorruptShapesQuarantine is the corruption table test: every corrupt
// shape must quarantine (entry renamed *.corrupt, StoreError recorded,
// miss returned) — never panic, never fail the campaign.
func TestCorruptShapesQuarantine(t *testing.T) {
	valid, err := EncodeEntry(testEntry("compress"))
	if err != nil {
		t.Fatal(err)
	}
	flip := func(data []byte, i int) []byte {
		out := append([]byte(nil), data...)
		out[i] ^= 0xff
		return out
	}
	reschema := func(data []byte) []byte {
		return []byte(strings.Replace(string(data), Schema, "portsim-cell/v999", 1))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty file", nil},
		{"binary garbage", []byte{0x00, 0xff, 0x13, 0x37}},
		{"truncated half", valid[:len(valid)/2]},
		{"truncated tail", valid[:len(valid)-2]},
		{"flipped byte in body", flip(valid, len(valid)/2)},
		{"flipped byte in header", flip(valid, 15)},
		{"wrong schema", reschema(valid)},
		{"valid json wrong shape", []byte(`{"schema":"` + Schema + `","checksum":"x","entry":{"key":{}}}`)},
		{"entry with neither result nor failure", mustEncodeRaw(t, testKey("compress"))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t, t.TempDir(), Options{})
			k := testKey("compress")
			path := s.entryPath(k)
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(k)
			if err != nil || got != nil {
				t.Fatalf("Get on corrupt entry = %v, %v; want miss", got, err)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Errorf("corrupt entry not quarantined: %v", err)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("corrupt entry still in place: %v", err)
			}
			st := s.Stats()
			if st.Quarantined != 1 || st.Misses != 1 {
				t.Errorf("stats = %+v, want one quarantine counted as a miss", st)
			}
			errs := s.Errors()
			if len(errs) != 1 {
				t.Fatalf("%d store errors recorded, want 1", len(errs))
			}
			if errs[0].Quarantined == "" || errs[0].Op != "get" {
				t.Errorf("StoreError = %+v, want op=get with quarantine path", errs[0])
			}
			// A re-Put must replace the quarantined slot and hit again.
			if err := s.Put(testEntry("compress")); err != nil {
				t.Fatal(err)
			}
			if got, _ := s.Get(k); got == nil {
				t.Error("re-Put after quarantine did not restore the entry")
			}
		})
	}
}

// mustEncodeRaw hand-builds an envelope whose body passes the checksum
// but violates the entry invariant (no result, no failure).
func mustEncodeRaw(t *testing.T, k Key) []byte {
	t.Helper()
	body, err := json.Marshal(&Entry{Key: k})
	if err != nil {
		t.Fatal(err)
	}
	env := struct {
		Schema   string          `json:"schema"`
		Checksum string          `json:"checksum"`
		Entry    json.RawMessage `json:"entry"`
	}{Schema, bodyChecksum(body), body}
	data, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGetRejectsKeyMismatch plants a valid entry at the wrong content
// address (a hash-scheme violation) and expects a quarantine.
func TestGetRejectsKeyMismatch(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	other := testEntry("eqntott")
	data, err := EncodeEntry(other)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("compress")
	if err := os.WriteFile(s.entryPath(k), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(k); err != nil || got != nil {
		t.Fatalf("Get on mismatched key = %v, %v; want miss", got, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("stats = %+v, want quarantine", st)
	}
}

// TestQuarantineByCaller covers the experiments-layer escape hatch: an
// envelope that verifies but whose payload the caller cannot use.
func TestQuarantineByCaller(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	e := testEntry("compress")
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	s.Quarantine(e.Key, errors.New("payload schema mismatch"))
	if got, _ := s.Get(e.Key); got != nil {
		t.Error("entry still readable after caller quarantine")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScanVisitsEntriesInStableOrder(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for _, w := range []string{"compress", "eqntott", "database"} {
		if err := s.Put(testEntry(w)); err != nil {
			t.Fatal(err)
		}
	}
	// Plant one corrupt entry; Scan must skip and quarantine it.
	bad := filepath.Join(dir, strings.Repeat("ab", 16)+".cell.json")
	if err := os.WriteFile(bad, []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	var order1, order2 []string
	collect := func(dst *[]string) func(*Entry) error {
		return func(e *Entry) error {
			*dst = append(*dst, e.Key.Workload)
			return nil
		}
	}
	n, err := s.Scan(collect(&order1))
	if err != nil || n != 3 {
		t.Fatalf("Scan = %d, %v; want 3 healthy entries", n, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("stats = %+v, want the planted rot quarantined", st)
	}
	if n, err := s.Scan(collect(&order2)); err != nil || n != 3 {
		t.Fatalf("second Scan = %d, %v", n, err)
	}
	if strings.Join(order1, ",") != strings.Join(order2, ",") {
		t.Errorf("Scan order unstable: %v vs %v", order1, order2)
	}
}

// TestDegradedStoreIsInert drives the ioerr fault at rate 1 until Put
// exhausts its retries, then checks the store has shut itself off.
func TestDegradedStoreIsInert(t *testing.T) {
	var slept []time.Duration
	var logs []string
	s := open(t, t.TempDir(), Options{
		Fault: &Fault{Mode: FaultIOErr, Rate: 1},
		Sleep: func(d time.Duration) { slept = append(slept, d) },
		Logf:  func(f string, a ...any) { logs = append(logs, strings.TrimSpace(f)) },
	})
	e := testEntry("compress")
	err := s.Put(e)
	if err == nil {
		t.Fatal("Put under persistent ioerr returned nil")
	}
	if !errors.Is(err, ErrDegraded) {
		t.Errorf("Put error %v does not wrap ErrDegraded", err)
	}
	if len(slept) != putAttempts-1 {
		t.Errorf("%d backoff sleeps, want %d", len(slept), putAttempts-1)
	}
	for i := 1; i < len(slept); i++ {
		if slept[i] <= slept[i-1] {
			t.Errorf("backoff not increasing: %v", slept)
		}
	}
	st := s.Stats()
	if !st.Degraded || st.PutFailures != 1 {
		t.Errorf("stats = %+v, want degraded with one put failure", st)
	}
	// Degraded store: every operation is an inert no-op.
	if err := s.Put(e); err != nil {
		t.Errorf("Put on degraded store = %v, want silent no-op", err)
	}
	if got, err := s.Get(e.Key); got != nil || err != nil {
		t.Errorf("Get on degraded store = %v, %v", got, err)
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "WARNING") {
			found = true
		}
	}
	if !found {
		t.Error("degradation produced no warning log")
	}
}

// TestIOErrRetryRecovers uses a sub-1 rate so the first attempt faults
// and the retry lands: the entry must be durably written, no degrade.
func TestIOErrRetryRecovers(t *testing.T) {
	s := open(t, t.TempDir(), Options{
		Fault: &Fault{Mode: FaultIOErr, Rate: 0.5},
		Sleep: func(time.Duration) {},
	})
	// Rate 0.5 fires on every second eligible operation (n=2,4,...).
	// First Put: attempt 1 (n=1) clean → no retry needed.
	// Second Put: attempt 1 (n=2) faults, attempt 2 (n=3) clean.
	for i := 0; i < 2; i++ {
		e := testEntry([]string{"compress", "eqntott"}[i])
		if err := s.Put(e); err != nil {
			t.Fatalf("Put %d = %v", i, err)
		}
		if got, _ := s.Get(e.Key); got == nil {
			t.Fatalf("Put %d not durably written", i)
		}
	}
	st := s.Stats()
	if st.Degraded || st.Puts != 2 || st.PutFailures != 0 {
		t.Errorf("stats = %+v, want two clean puts after retry", st)
	}
}

// TestTornPutQuarantinesOnRead: a torn write is visible (that is the
// point of the fault) but the next Get must detect and quarantine it.
func TestTornPutQuarantinesOnRead(t *testing.T) {
	s := open(t, t.TempDir(), Options{Fault: &Fault{Mode: FaultTorn, Rate: 1}})
	e := testEntry("compress")
	if err := s.Put(e); err != nil {
		t.Fatalf("torn Put reported failure: %v", err)
	}
	got, err := s.Get(e.Key)
	if err != nil || got != nil {
		t.Fatalf("Get on torn entry = %v, %v; want quarantine miss", got, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCorruptPutQuarantinesOnRead: post-Put bit flips must be caught by
// the checksum on the next Get.
func TestCorruptPutQuarantinesOnRead(t *testing.T) {
	s := open(t, t.TempDir(), Options{Fault: &Fault{Mode: FaultCorrupt, Rate: 1}})
	e := testEntry("compress")
	if err := s.Put(e); err != nil {
		t.Fatalf("Put = %v", err)
	}
	got, err := s.Get(e.Key)
	if err != nil || got != nil {
		t.Fatalf("Get on corrupted entry = %v, %v; want quarantine miss", got, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestParseStoreFault(t *testing.T) {
	f, err := ParseFault("torn")
	if err != nil || f.Mode != FaultTorn || f.Rate != 1 {
		t.Errorf("ParseFault(torn) = %+v, %v", f, err)
	}
	if f.String() != "torn" {
		t.Errorf("String() = %q", f.String())
	}
	f, err = ParseFault("corrupt:0.25")
	if err != nil || f.Mode != FaultCorrupt || f.Rate != 0.25 {
		t.Errorf("ParseFault(corrupt:0.25) = %+v, %v", f, err)
	}
	if f.String() != "corrupt:0.25" {
		t.Errorf("String() = %q", f.String())
	}
	for _, bad := range []string{"", "frob", "torn:0", "torn:2", "torn:-1", "torn:x", "torn:0.5:9"} {
		if _, err := ParseFault(bad); err == nil {
			t.Errorf("ParseFault(%q) accepted", bad)
		}
	}
}

// TestFaultRateSchedule pins the deterministic firing schedule.
func TestFaultRateSchedule(t *testing.T) {
	f := &Fault{Mode: FaultTorn, Rate: 0.25}
	var fired []uint64
	for n := uint64(1); n <= 12; n++ {
		if f.fires(n) {
			fired = append(fired, n)
		}
	}
	want := []uint64{4, 8, 12}
	if len(fired) != len(want) {
		t.Fatalf("fired on %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on %v, want %v", fired, want)
		}
	}
	full := &Fault{Mode: FaultTorn, Rate: 1}
	for n := uint64(1); n <= 5; n++ {
		if !full.fires(n) {
			t.Errorf("rate 1 did not fire on operation %d", n)
		}
	}
}

// TestHashConfigWidth pins the manifest-compatible hash shape.
func TestHashConfigWidth(t *testing.T) {
	h := HashConfig([]byte(`{"name":"baseline"}`))
	if len(h) != 12 {
		t.Errorf("HashConfig width = %d hex chars, want 12", len(h))
	}
	if h == HashConfig([]byte(`{"name":"dual"}`)) {
		t.Error("distinct configs hash identically")
	}
}
