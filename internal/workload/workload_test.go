package workload

import (
	"testing"

	"portsim/internal/isa"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s: %v", p.Name, err)
		}
	}
	if len(Profiles()) != 7 {
		t.Errorf("expected 7 workloads, have %d", len(Profiles()))
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName of unknown workload succeeded")
	}
}

func TestValidateRejects(t *testing.T) {
	base, _ := ByName("compress")
	cases := []struct {
		name string
		f    func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"mix over 1", func(p *Profile) { p.Mix.Load = 0.9; p.Mix.Store = 0.9 }},
		{"memory mix without regions", func(p *Profile) { p.Regions = nil }},
		{"zero weight region", func(p *Profile) { p.Regions[0].Weight = 0 }},
		{"tiny region", func(p *Profile) { p.Regions[0].Size = 32 }},
		{"misaligned base", func(p *Profile) { p.Regions[0].Base = 3 }},
		{"sequential without stride", func(p *Profile) { p.Regions[0].StrideBytes = 0 }},
		{"odd stride", func(p *Profile) { p.Regions[0].StrideBytes = 12 }},
		{"negative run", func(p *Profile) { p.Regions[0].Run = -1 }},
		{"no code", func(p *Profile) { p.CodeBlocks = 0 }},
		{"short blocks", func(p *Profile) { p.MeanBlockLen = 1 }},
		{"size fracs", func(p *Profile) { p.Size8Frac = 0.8; p.Size1Frac = 0.8 }},
		{"kernel without length", func(p *Profile) { p.Kernel.LengthMean = 0 }},
		{"kernel mix without regions", func(p *Profile) { p.Kernel.Regions = nil }},
		{"kernel code layout", func(p *Profile) { p.Kernel.CodeBlocks = 0 }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			p.Regions = append([]Region(nil), base.Regions...)
			tt.f(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid profile accepted")
			}
		})
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		Sequential: "sequential", Strided: "strided", Random: "random",
		Chase: "chase", Stack: "stack",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
	if Pattern(99).String() == "" {
		t.Error("unknown pattern renders empty")
	}
}

// drive pulls n instructions from a fresh generator.
func drive(t *testing.T, name string, seed int64, n int) []isa.Inst {
	t.Helper()
	p, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	g, err := New(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]isa.Inst, n)
	for i := range out {
		if !g.Next(&out[i]) {
			t.Fatal("generator exhausted")
		}
	}
	if g.Emitted() != uint64(n) {
		t.Errorf("Emitted = %d, want %d", g.Emitted(), n)
	}
	return out
}

func TestGeneratorInstructionsValid(t *testing.T) {
	for _, name := range Names() {
		insts := drive(t, name, 1, 20000)
		for i := range insts {
			if err := insts[i].Validate(); err != nil {
				t.Fatalf("%s inst %d invalid: %v (%v)", name, i, err, insts[i])
			}
		}
	}
}

func TestGeneratorPCChain(t *testing.T) {
	// DESIGN.md invariant: each instruction's NextPC is the PC of the
	// next instruction — the stream is a coherent control-flow walk.
	for _, name := range Names() {
		insts := drive(t, name, 2, 50000)
		for i := 0; i+1 < len(insts); i++ {
			if got := insts[i].NextPC(); got != insts[i+1].PC {
				t.Fatalf("%s: inst %d (%v) NextPC %#x but next PC is %#x",
					name, i, insts[i].Class, got, insts[i+1].PC)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, name := range Names() {
		a := drive(t, name, 42, 10000)
		b := drive(t, name, 42, 10000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: divergence at %d with equal seeds", name, i)
			}
		}
		c := drive(t, name, 43, 10000)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical streams", name)
		}
	}
}

func TestGeneratorAddressesInRegions(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		insts := drive(t, name, 3, 30000)
		inAnyRegion := func(addr uint64, size uint8, kernel bool) bool {
			regs := p.Regions
			if kernel {
				regs = p.Kernel.Regions
			}
			for _, r := range regs {
				if addr >= r.Base && addr+uint64(size) <= r.Base+r.Size {
					return true
				}
			}
			return false
		}
		for i := range insts {
			in := &insts[i]
			if !in.Class.IsMem() {
				continue
			}
			if !inAnyRegion(in.Addr, in.Size, in.Kernel) {
				t.Fatalf("%s: access %#x/%d (kernel=%v) outside all regions",
					name, in.Addr, in.Size, in.Kernel)
			}
		}
	}
}

func TestGeneratorMixRoughlyHonoured(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		insts := drive(t, name, 4, 100000)
		var loads, stores, userInsts int
		for i := range insts {
			if insts[i].Kernel {
				continue
			}
			userInsts++
			switch insts[i].Class {
			case isa.Load:
				loads++
			case isa.Store:
				stores++
			}
		}
		lf := float64(loads) / float64(userInsts)
		sf := float64(stores) / float64(userInsts)
		// Terminators dilute the body mix by roughly 1/MeanBlockLen;
		// allow a generous band.
		if lf < p.Mix.Load*0.6 || lf > p.Mix.Load*1.2 {
			t.Errorf("%s: load fraction %.3f far from mix %.3f", name, lf, p.Mix.Load)
		}
		if sf < p.Mix.Store*0.6 || sf > p.Mix.Store*1.2 {
			t.Errorf("%s: store fraction %.3f far from mix %.3f", name, sf, p.Mix.Store)
		}
	}
}

func TestGeneratorKernelFraction(t *testing.T) {
	// database and pmake are configured OS-heavy; eqntott is not. The
	// generated kernel fractions must reflect that ordering.
	frac := func(name string) float64 {
		insts := drive(t, name, 5, 200000)
		k := 0
		for i := range insts {
			if insts[i].Kernel {
				k++
			}
		}
		return float64(k) / float64(len(insts))
	}
	db, pm, eq := frac("database"), frac("pmake"), frac("eqntott")
	if db < 0.08 {
		t.Errorf("database kernel fraction %.3f too low", db)
	}
	if pm < 0.2 {
		t.Errorf("pmake kernel fraction %.3f too low", pm)
	}
	if eq > 0.08 {
		t.Errorf("eqntott kernel fraction %.3f too high", eq)
	}
	if !(pm > db && db > eq) {
		t.Errorf("kernel-intensity ordering wrong: pmake=%.3f database=%.3f eqntott=%.3f", pm, db, eq)
	}
}

func TestGeneratorKernelUsesOwnFootprint(t *testing.T) {
	insts := drive(t, "pmake", 6, 200000)
	sawKernelMem, sawUserMem := false, false
	for i := range insts {
		in := &insts[i]
		if !in.Class.IsMem() {
			continue
		}
		if in.Kernel {
			sawKernelMem = true
			if in.Addr < kdataBase {
				t.Fatalf("kernel access %#x in user data range", in.Addr)
			}
		} else {
			sawUserMem = true
			if in.Addr >= kdataBase {
				t.Fatalf("user access %#x in kernel data range", in.Addr)
			}
		}
	}
	if !sawKernelMem || !sawUserMem {
		t.Error("stream lacked kernel or user memory activity")
	}
}

func TestGeneratorSpatialLocalityOrdering(t *testing.T) {
	// eqntott (sequential bit vectors) must show far more chunk-adjacent
	// consecutive loads than raytrace (pointer chasing) — the property
	// the load-all technique exploits.
	adjacency := func(name string) float64 {
		insts := drive(t, name, 7, 200000)
		var lastLoad uint64
		var have bool
		adjacent, total := 0, 0
		for i := range insts {
			in := &insts[i]
			if in.Class != isa.Load || in.Kernel {
				continue
			}
			if have {
				total++
				if in.Addr>>5 == lastLoad>>5 { // same 32-byte chunk
					adjacent++
				}
			}
			lastLoad = in.Addr
			have = true
		}
		return float64(adjacent) / float64(total)
	}
	eq, rt := adjacency("eqntott"), adjacency("raytrace")
	if eq <= rt {
		t.Errorf("spatial adjacency: eqntott %.3f <= raytrace %.3f", eq, rt)
	}
	if eq < 0.3 {
		t.Errorf("eqntott adjacency %.3f implausibly low for a sequential workload", eq)
	}
}

func TestGeneratorBranchBias(t *testing.T) {
	// Per-static-branch outcomes must be biased (predictable), not coin
	// flips everywhere: a majority-vote "predictor" per PC should beat
	// 60% on most workloads.
	insts := drive(t, "compress", 8, 100000)
	taken := map[uint64][2]int{}
	for i := range insts {
		if insts[i].Class != isa.Branch {
			continue
		}
		c := taken[insts[i].PC]
		if insts[i].Taken {
			c[0]++
		}
		c[1]++
		taken[insts[i].PC] = c
	}
	if len(taken) < 10 {
		t.Fatalf("only %d static branches seen", len(taken))
	}
	correct, total := 0, 0
	for _, c := range taken {
		maj := c[0]
		if c[1]-c[0] > maj {
			maj = c[1] - c[0]
		}
		correct += maj
		total += c[1]
	}
	if acc := float64(correct) / float64(total); acc < 0.6 {
		t.Errorf("majority-vote branch accuracy %.3f; branches are unpredictable noise", acc)
	}
}

func TestGeneratorRejectsInvalidProfile(t *testing.T) {
	p, _ := ByName("compress")
	p.CodeBlocks = 0
	if _, err := New(p, 1); err == nil {
		t.Error("invalid profile accepted by New")
	}
}

func TestLayoutBlockAt(t *testing.T) {
	l := buildLayout(50, 6, 0x1000, 0x55)
	for i := 0; i < 50; i++ {
		if got := l.blockAt(l.starts[i]); got != i {
			t.Fatalf("blockAt(start of %d) = %d", i, got)
		}
		end := l.starts[i] + uint64(4*l.lens[i])
		if got := l.blockAt(end - 4); got != i {
			t.Fatalf("blockAt(last pc of %d) = %d", i, got)
		}
	}
	if l.blockAt(0x10) != -1 {
		t.Error("blockAt below code returned a block")
	}
	last := 49
	if l.blockAt(l.starts[last]+uint64(4*l.lens[last])) != -1 {
		t.Error("blockAt past code returned a block")
	}
}
