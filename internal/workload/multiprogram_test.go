package workload

import (
	"testing"

	"portsim/internal/isa"
)

func TestMultiprogramValidation(t *testing.T) {
	p, _ := ByName("pmake")
	if _, err := NewMultiprogram(p, 0, 5000, 1); err == nil {
		t.Error("zero processes accepted")
	}
	if _, err := NewMultiprogram(p, 2, 10, 1); err == nil {
		t.Error("tiny quantum accepted")
	}
	bad := p
	bad.CodeBlocks = 0
	if _, err := NewMultiprogram(bad, 2, 5000, 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestMultiprogramSingleProcessMatchesGenerator(t *testing.T) {
	p, _ := ByName("compress")
	m, err := NewMultiprogram(p, 1, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	var a, b isa.Inst
	for i := 0; i < 20000; i++ {
		if !m.Next(&a) || !g.Next(&b) {
			t.Fatal("stream ended")
		}
		if a != b {
			t.Fatalf("inst %d: single-process multiprogram diverged from the raw generator", i)
		}
	}
	if m.Switches() != 0 {
		t.Errorf("single process context-switched %d times", m.Switches())
	}
}

func TestMultiprogramSwitchesAndRelocates(t *testing.T) {
	p, _ := ByName("compress")
	m, err := NewMultiprogram(p, 4, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var in isa.Inst
	sawOffsets := map[uint64]bool{}
	syscallMarkers := uint64(0)
	for i := 0; i < 100000; i++ {
		if !m.Next(&in) {
			t.Fatal("stream ended")
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("inst %d invalid: %v (%v)", i, err, in)
		}
		if !in.Kernel {
			sawOffsets[in.PC/processStride] = true
			if in.Class.IsMem() && in.Addr%processStride >= KernelCodeBase && in.Addr < 8<<30 {
				t.Fatalf("user access %#x inside kernel range", in.Addr)
			}
		} else {
			// Kernel code and data are shared: never relocated.
			if in.PC >= processStride {
				t.Fatalf("kernel PC %#x relocated", in.PC)
			}
			if in.Class.IsMem() && in.Addr >= processStride {
				t.Fatalf("kernel access %#x relocated", in.Addr)
			}
		}
		if in.Class == isa.Syscall && in.Target == KernelCodeBase {
			syscallMarkers++
		}
	}
	if len(sawOffsets) != 4 {
		t.Errorf("saw %d process address spaces, want 4", len(sawOffsets))
	}
	if m.Switches() < 20 {
		t.Errorf("only %d switches in 100k instructions at quantum 2000", m.Switches())
	}
	if syscallMarkers < m.Switches() {
		t.Errorf("%d switch markers for %d switches", syscallMarkers, m.Switches())
	}
	if m.Processes() != 4 {
		t.Errorf("Processes = %d", m.Processes())
	}
}

func TestMultiprogramDeterminism(t *testing.T) {
	p, _ := ByName("database")
	collect := func(seed int64) []isa.Inst {
		m, err := NewMultiprogram(p, 3, 3000, seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]isa.Inst, 30000)
		for i := range out {
			if !m.Next(&out[i]) {
				t.Fatal("ended")
			}
		}
		return out
	}
	a, b := collect(5), collect(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d with equal seeds", i)
		}
	}
}

func TestMultiprogramProcessesUseDistinctSeeds(t *testing.T) {
	// Two processes of the same profile must not execute in lockstep: the
	// per-process seeds differ, so their user PCs (mod the address-space
	// stride) diverge quickly.
	p, _ := ByName("compress")
	m, err := NewMultiprogram(p, 2, 1000, 11)
	if err != nil {
		t.Fatal(err)
	}
	var in isa.Inst
	perProc := map[uint64][]uint64{}
	for i := 0; i < 50000; i++ {
		m.Next(&in)
		if in.Kernel || in.Class == isa.Syscall {
			continue
		}
		proc := in.PC / processStride
		if len(perProc[proc]) < 200 {
			perProc[proc] = append(perProc[proc], in.PC%processStride)
		}
	}
	if len(perProc) != 2 {
		t.Fatalf("saw %d processes", len(perProc))
	}
	same := 0
	n := 200
	for i := 0; i < n; i++ {
		if perProc[0][i] == perProc[1][i] {
			same++
		}
	}
	if same == n {
		t.Error("processes executed identical instruction sequences (seeds not separated)")
	}
}
