package workload

import (
	"fmt"
	"math/rand"

	"portsim/internal/isa"
)

// Code layout constants. User and kernel code live in disjoint address
// ranges; kernel data likewise sits high.
const (
	userCodeBase   = 0x0040_0000
	kernelCodeBase = 0x8000_0000
	maxCallDepth   = 64
)

// splitmix64 hashes a static entity id into per-entity constants (block
// lengths, branch biases), independent of the dynamic PRNG so that code
// structure is a function of the profile alone.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// codeLayout is the synthetic static program of one privilege mode: a list
// of contiguous basic blocks with per-block terminators and biases.
type codeLayout struct {
	base      uint64
	lens      []int    // instructions per block, incl. terminator
	starts    []uint64 // starting PC of each block
	termKind  []isa.Class
	takenProb []float64
	target    []int // successor block index for taken/jump/call
}

// buildLayout derives a deterministic code layout from a salt (so user and
// kernel layouts differ even with equal parameters).
func buildLayout(blocks, meanLen int, base uint64, salt uint64) *codeLayout {
	l := &codeLayout{
		base:      base,
		lens:      make([]int, blocks),
		starts:    make([]uint64, blocks),
		termKind:  make([]isa.Class, blocks),
		takenProb: make([]float64, blocks),
		target:    make([]int, blocks),
	}
	pc := base
	for i := 0; i < blocks; i++ {
		h := splitmix64(uint64(i) ^ salt)
		// Block length in [2, 2*meanLen], mean ~ meanLen.
		l.lens[i] = 2 + int(h%uint64(2*meanLen-3))
		l.starts[i] = pc
		pc += uint64(4 * l.lens[i])

		h2 := splitmix64(h)
		switch {
		case i == blocks-1:
			// The last block always jumps back to the top so the
			// stream never falls off the end of the code.
			l.termKind[i] = isa.Jump
			l.target[i] = 0
		case h2%100 < 70:
			l.termKind[i] = isa.Branch
			// Per-static-branch bias: most branches are strongly
			// biased (loop back-edges, error checks), a few are
			// weakly biased — this is what gives the direction
			// predictor realistic work at realistic accuracy.
			switch (h2 / 100) % 10 {
			case 0, 1, 2, 3:
				l.takenProb[i] = 0.97
			case 4, 5, 6:
				l.takenProb[i] = 0.03
			case 7, 8:
				l.takenProb[i] = 0.85
			default:
				l.takenProb[i] = 0.35
			}
			// Mostly backward (loops), some forward.
			if (h2/1000)%4 != 0 {
				back := 1 + int((h2/10000)%8)
				l.target[i] = i - back
				if l.target[i] < 0 {
					l.target[i] = 0
				}
			} else {
				fwd := 2 + int((h2/10000)%8)
				l.target[i] = i + fwd
				if l.target[i] >= blocks {
					l.target[i] = 0
				}
			}
		case h2%100 < 80:
			l.termKind[i] = isa.Jump
			l.target[i] = int((h2 / 100) % uint64(blocks))
		case h2%100 < 90:
			l.termKind[i] = isa.Call
			l.target[i] = int((h2 / 100) % uint64(blocks))
		default:
			l.termKind[i] = isa.Return
			l.target[i] = 0 // actual target comes from the call stack
		}
	}
	return l
}

// blockAt maps a PC to a block index (for return targets), or -1.
func (l *codeLayout) blockAt(pc uint64) int {
	lo, hi := 0, len(l.starts)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		s := l.starts[mid]
		e := s + uint64(4*l.lens[mid])
		switch {
		case pc < s:
			hi = mid - 1
		case pc >= e:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// regionState is the dynamic cursor of one region.
type regionState struct {
	spec   Region
	cursor uint64
	run    int
	runOff uint64
	// baseReg is the long-lived architectural register holding the
	// region's base pointer. Real code addresses memory through stable
	// bases (stack pointer, object pointers), so memory operations take
	// their address dependence from it rather than from hot short-lived
	// registers; it is rewritten only by occasional pointer updates.
	baseReg isa.Reg
	// chaseReg is the destination register of the last chase load, which
	// the next chase load consumes (serial dependence).
	chaseReg isa.Reg
}

// modeState bundles everything that differs between user and kernel mode.
type modeState struct {
	layout   *codeLayout
	mix      Mix
	regions  []regionState
	weights  []float64 // cumulative, normalised
	block    int
	posInBlk int
	kernel   bool
}

// Generator implements trace.Stream for a Profile.
type Generator struct {
	prof Profile
	rng  *rand.Rand

	user, kern modeState
	cur        *modeState

	// Call stack of return PCs (with the mode they belong to).
	callStack []retSite

	// Register allocation: rotating destination rings plus a recency
	// window for sourcing operands.
	nextIntDest, nextFPDest int
	recentInt, recentFP     [8]isa.Reg

	// Kernel cadence.
	toKernel    int // user instructions until next kernel entry
	kernelLeft  int // kernel instructions remaining in this episode
	pendingTrap bool

	emitted uint64
}

type retSite struct {
	pc     uint64
	kernel bool
}

// New constructs a generator for the profile with the given seed. The
// profile must validate.
func New(p Profile, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		prof: p,
		rng:  rand.New(rand.NewSource(seed)),
	}
	g.user = newModeState(p.Mix, p.Regions, buildLayout(p.CodeBlocks, p.MeanBlockLen, userCodeBase, 0xABCD), false)
	if p.Kernel.EveryMean > 0 {
		k := p.Kernel
		g.kern = newModeState(k.Mix, k.Regions, buildLayout(k.CodeBlocks, k.MeanBlockLen, kernelCodeBase, 0x1234), true)
		g.toKernel = g.exp(k.EveryMean)
	}
	g.cur = &g.user
	g.nextIntDest = 1
	g.nextFPDest = int(isa.FPBase) + 1
	for i := range g.recentInt {
		g.recentInt[i] = isa.Reg(1 + i)
		g.recentFP[i] = isa.FPBase + isa.Reg(1+i)
	}
	return g, nil
}

func newModeState(mix Mix, regions []Region, layout *codeLayout, kernel bool) modeState {
	ms := modeState{layout: layout, mix: mix, kernel: kernel}
	total := 0.0
	for _, r := range regions {
		total += r.Weight
	}
	cum := 0.0
	for i, r := range regions {
		cum += r.Weight / total
		rs := regionState{spec: r, cursor: r.Base, baseReg: isa.Reg(25 + i%6)}
		if r.Pattern == Stack {
			rs.cursor = r.Base + r.Size/2
		}
		ms.regions = append(ms.regions, rs)
		ms.weights = append(ms.weights, cum)
	}
	return ms
}

// exp draws an exponential-ish integer with the given mean (at least 1),
// implemented as a geometric draw for determinism and speed.
func (g *Generator) exp(mean int) int {
	if mean <= 1 {
		return 1
	}
	// Geometric with p = 1/mean has mean ~= mean.
	n := 1
	for g.rng.Float64() > 1.0/float64(mean) {
		n++
		if n >= 20*mean {
			break
		}
	}
	return n
}

// Emitted returns the number of instructions produced so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Next implements trace.Stream. The generator never exhausts; wrap it in
// trace.NewLimit for a bounded run.
func (g *Generator) Next(in *isa.Inst) bool {
	ms := g.cur
	blk := ms.block
	pc := ms.layout.starts[blk] + uint64(4*ms.posInBlk)
	last := ms.posInBlk == ms.layout.lens[blk]-1

	*in = isa.Inst{PC: pc, Kernel: ms.kernel}

	if last {
		g.emitTerminator(in, ms, blk)
	} else {
		g.emitBody(in, ms)
		ms.posInBlk++
	}
	g.emitted++
	g.tickKernelCadence(ms)
	return true
}

// NextBatch implements trace.Batcher: it fills all of dst (the generator
// never exhausts) with exactly the instructions the same number of Next
// calls would have produced, at one dynamic dispatch for the whole chunk.
func (g *Generator) NextBatch(dst []isa.Inst) int {
	for i := range dst {
		g.Next(&dst[i])
	}
	return len(dst)
}

// tickKernelCadence advances the user->kernel->user state machine. Traps
// and returns are realised at block boundaries by emitTerminator; here we
// only run the countdowns.
func (g *Generator) tickKernelCadence(ms *modeState) {
	if g.prof.Kernel.EveryMean == 0 {
		return
	}
	if ms.kernel {
		if g.kernelLeft > 0 {
			g.kernelLeft--
		}
		return
	}
	if g.toKernel > 0 {
		g.toKernel--
	}
	if g.toKernel == 0 {
		g.pendingTrap = true
	}
}

// emitTerminator produces the block's final instruction and moves the
// generator to the next block, honouring pending kernel traps and exits.
func (g *Generator) emitTerminator(in *isa.Inst, ms *modeState, blk int) {
	l := ms.layout
	fall := in.PC + 4

	// Kernel entry: override the terminator with a syscall.
	if g.pendingTrap && !ms.kernel {
		g.pendingTrap = false
		g.toKernel = -1 // re-armed at kernel exit
		g.kernelLeft = g.exp(g.prof.Kernel.LengthMean)
		in.Class = isa.Syscall
		in.Target = g.kern.layout.starts[0]
		g.pushCall(fall, false)
		g.kern.block = 0
		g.kern.posInBlk = 0
		g.cur = &g.kern
		return
	}
	// Kernel exit: return to the trapped user PC.
	if ms.kernel && g.kernelLeft == 0 {
		in.Class = isa.Return
		ret, ok := g.popCallTo(false)
		if !ok {
			ret = retSite{pc: g.user.layout.starts[0], kernel: false}
		}
		in.Target = ret.pc
		ub := g.user.layout.blockAt(ret.pc)
		if ub < 0 {
			ub = 0
			in.Target = g.user.layout.starts[0]
		}
		g.user.block = ub
		//portlint:ignore cyclemath pushed return PCs lie inside the layout, so starts[ub] <= ret.pc
		g.user.posInBlk = int((ret.pc - g.user.layout.starts[ub]) / 4)
		g.cur = &g.user
		g.toKernel = g.exp(g.prof.Kernel.EveryMean)
		return
	}

	kind := l.termKind[blk]
	switch kind {
	case isa.Branch:
		in.Class = isa.Branch
		in.Target = l.starts[l.target[blk]]
		in.Taken = g.rng.Float64() < l.takenProb[blk]
		if in.Taken {
			g.enterBlock(ms, l.target[blk])
		} else {
			g.enterBlock(ms, blk+1)
		}
	case isa.Jump:
		in.Class = isa.Jump
		in.Target = l.starts[l.target[blk]]
		g.enterBlock(ms, l.target[blk])
	case isa.Call:
		in.Class = isa.Call
		in.Target = l.starts[l.target[blk]]
		g.pushCall(fall, ms.kernel)
		g.enterBlock(ms, l.target[blk])
	case isa.Return:
		in.Class = isa.Return
		ret, ok := g.popCallSameMode(ms.kernel)
		if !ok {
			// Nothing to return to in this mode: degrade to a jump.
			in.Class = isa.Jump
			in.Target = l.starts[l.target[blk]]
			g.enterBlock(ms, l.target[blk])
			return
		}
		in.Target = ret.pc
		b := l.blockAt(ret.pc)
		if b < 0 {
			b = 0
			in.Target = l.starts[0]
		}
		ms.block = b
		//portlint:ignore cyclemath pushed return PCs lie inside the layout, so starts[b] <= ret.pc
		ms.posInBlk = int((ret.pc - l.starts[b]) / 4)
	default:
		panic(fmt.Sprintf("workload: block %d has terminator %v", blk, kind))
	}
}

func (g *Generator) enterBlock(ms *modeState, b int) {
	if b >= len(ms.layout.lens) {
		b = 0
	}
	ms.block = b
	ms.posInBlk = 0
}

func (g *Generator) pushCall(pc uint64, kernel bool) {
	if len(g.callStack) >= maxCallDepth {
		copy(g.callStack, g.callStack[1:])
		g.callStack = g.callStack[:len(g.callStack)-1]
	}
	g.callStack = append(g.callStack, retSite{pc: pc, kernel: kernel})
}

// popCallTo pops the most recent return site belonging to the given mode,
// discarding younger sites of the other mode. Used at kernel exit, where
// any kernel frames left above the trapped user frame are abandoned.
func (g *Generator) popCallTo(kernel bool) (retSite, bool) {
	for len(g.callStack) > 0 {
		top := g.callStack[len(g.callStack)-1]
		g.callStack = g.callStack[:len(g.callStack)-1]
		if top.kernel == kernel {
			return top, true
		}
	}
	return retSite{}, false
}

// popCallSameMode pops the top frame only when it belongs to the given
// mode; otherwise the stack is untouched. Ordinary return terminators use
// this so a kernel return never consumes the user resume frame pushed by
// the syscall that entered the episode.
func (g *Generator) popCallSameMode(kernel bool) (retSite, bool) {
	if n := len(g.callStack); n > 0 && g.callStack[n-1].kernel == kernel {
		top := g.callStack[n-1]
		g.callStack = g.callStack[:n-1]
		return top, true
	}
	return retSite{}, false
}

// emitBody produces one non-terminator instruction according to the mix.
func (g *Generator) emitBody(in *isa.Inst, ms *modeState) {
	r := g.rng.Float64()
	m := ms.mix
	switch {
	case r < m.Load:
		g.emitLoad(in, ms)
	case r < m.Load+m.Store:
		g.emitStore(in, ms)
	case r < m.Load+m.Store+m.FPAdd:
		g.emitFP(in, isa.FPAdd)
	case r < m.Load+m.Store+m.FPAdd+m.FPMul:
		g.emitFP(in, isa.FPMul)
	case r < m.Load+m.Store+m.FPAdd+m.FPMul+m.FPDiv:
		g.emitFP(in, isa.FPDiv)
	case r < m.Load+m.Store+m.FPAdd+m.FPMul+m.FPDiv+m.IntMul:
		g.emitInt(in, isa.IntMul)
	case r < m.Load+m.Store+m.FPAdd+m.FPMul+m.FPDiv+m.IntMul+m.IntDiv:
		g.emitInt(in, isa.IntDiv)
	case r < m.total():
		in.Class = isa.Nop
	default:
		g.emitInt(in, isa.IntALU)
	}
}

func (g *Generator) emitInt(in *isa.Inst, class isa.Class) {
	in.Class = class
	in.Src1 = g.sourceInt()
	in.Src2 = g.sourceInt()
	// Occasional pointer updates rewrite a base register (cursor bumps,
	// object-field walks), creating realistic sparse address dependences.
	if class == isa.IntALU && g.rng.Float64() < 0.03 {
		in.Dest = isa.Reg(25 + g.rng.Intn(6))
		return
	}
	in.Dest = g.allocInt()
}

func (g *Generator) emitFP(in *isa.Inst, class isa.Class) {
	in.Class = class
	in.Src1 = g.sourceFP()
	in.Src2 = g.sourceFP()
	in.Dest = g.allocFP()
}

func (g *Generator) emitLoad(in *isa.Inst, ms *modeState) {
	in.Class = isa.Load
	rs := g.pickRegion(ms)
	size := g.accessSize()
	in.Addr = g.nextAddr(rs, size)
	in.Size = size
	if rs.spec.Pattern == Chase && rs.chaseReg != isa.RegZero {
		in.Src1 = rs.chaseReg // serial dependence on the previous hop
	} else {
		in.Src1 = rs.baseReg // stable base pointer
	}
	if g.isFPRegion(rs) {
		in.Dest = g.allocFP()
	} else {
		in.Dest = g.allocInt()
		if rs.spec.Pattern == Chase {
			rs.chaseReg = in.Dest
		}
	}
}

func (g *Generator) emitStore(in *isa.Inst, ms *modeState) {
	in.Class = isa.Store
	rs := g.pickRegion(ms)
	size := g.accessSize()
	in.Addr = g.nextAddr(rs, size)
	in.Size = size
	in.Src1 = rs.baseReg // stable base pointer
	if g.isFPRegion(rs) {
		in.Src2 = g.sourceFP()
	} else {
		in.Src2 = g.sourceInt() // data register
	}
}

// isFPRegion: strided/sequential numeric arrays feed the FP pipelines when
// the profile has FP work; a cheap, deterministic heuristic.
func (g *Generator) isFPRegion(rs *regionState) bool {
	hasFP := g.cur.mix.FPAdd+g.cur.mix.FPMul+g.cur.mix.FPDiv > 0
	return hasFP && (rs.spec.Pattern == Strided || rs.spec.Pattern == Sequential)
}

func (g *Generator) accessSize() uint8 {
	r := g.rng.Float64()
	switch {
	case r < g.prof.Size8Frac:
		return 8
	case r < g.prof.Size8Frac+g.prof.Size1Frac:
		return 1
	default:
		return 4
	}
}

func (g *Generator) pickRegion(ms *modeState) *regionState {
	r := g.rng.Float64()
	for i := range ms.regions {
		if r <= ms.weights[i] {
			return &ms.regions[i]
		}
	}
	return &ms.regions[len(ms.regions)-1]
}

// nextAddr advances the region cursor and returns a naturally aligned
// address for the access.
func (g *Generator) nextAddr(rs *regionState, size uint8) uint64 {
	s := &rs.spec
	align := uint64(size)
	var addr uint64
	switch s.Pattern {
	case Sequential, Strided:
		if rs.run > 0 {
			rs.run--
			rs.runOff += uint64(size)
			addr = rs.cursor + rs.runOff
		} else {
			rs.cursor += s.StrideBytes
			if rs.cursor+s.StrideBytes >= s.Base+s.Size {
				rs.cursor = s.Base
			}
			rs.runOff = 0
			if s.Run > 1 {
				rs.run = s.Run - 1
			}
			addr = rs.cursor
		}
	case Random:
		addr = s.Base + uint64(g.rng.Int63n(int64(s.Size-8)))
	case Chase:
		rs.cursor = s.Base + (splitmix64(rs.cursor) % (s.Size - 8))
		addr = rs.cursor
	case Stack:
		// Wander near the stack pointer.
		delta := uint64(g.rng.Int63n(128))
		if g.rng.Intn(2) == 0 && rs.cursor > s.Base+delta+64 {
			rs.cursor -= delta //portlint:ignore cyclemath guard above gives cursor > Base+delta+64 >= delta
		} else if rs.cursor+delta+64 < s.Base+s.Size {
			rs.cursor += delta
		}
		addr = rs.cursor
	}
	addr &^= align - 1
	// Clamp inside the region after alignment.
	if addr < s.Base {
		addr = s.Base
	}
	if addr+align > s.Base+s.Size {
		addr = s.Base + s.Size - align //portlint:ignore cyclemath Region.Size is validated >= 64 >= align
		addr &^= align - 1
	}
	return addr
}

// allocInt rotates through the integer destination ring and records
// recency.
func (g *Generator) allocInt() isa.Reg {
	r := isa.Reg(g.nextIntDest)
	g.nextIntDest++
	if g.nextIntDest > 24 {
		g.nextIntDest = 1
	}
	copy(g.recentInt[1:], g.recentInt[:len(g.recentInt)-1])
	g.recentInt[0] = r
	return r
}

func (g *Generator) allocFP() isa.Reg {
	r := isa.Reg(g.nextFPDest)
	g.nextFPDest++
	if g.nextFPDest > int(isa.FPBase)+24 {
		g.nextFPDest = int(isa.FPBase) + 1
	}
	copy(g.recentFP[1:], g.recentFP[:len(g.recentFP)-1])
	g.recentFP[0] = r
	return r
}

// sourceInt picks an operand register: usually a recently written one
// (short dependence distances dominate real code), occasionally a distant
// one, occasionally none.
func (g *Generator) sourceInt() isa.Reg {
	r := g.rng.Float64()
	switch {
	case r < 0.15:
		return isa.RegZero
	case r < 0.75:
		return g.recentInt[g.rng.Intn(3)]
	default:
		return g.recentInt[g.rng.Intn(len(g.recentInt))]
	}
}

func (g *Generator) sourceFP() isa.Reg {
	r := g.rng.Float64()
	switch {
	case r < 0.6:
		return g.recentFP[g.rng.Intn(3)]
	default:
		return g.recentFP[g.rng.Intn(len(g.recentFP))]
	}
}
