package workload

import (
	"fmt"
	"testing"

	"portsim/internal/isa"
	"portsim/internal/trace"
)

// TestArenaCursorMatchesGenerator is the golden identity behind the shared
// trace arenas: for every profile, across seeds and materialisation
// budgets, a cursor over trace.Materialize(New(prof, seed)) must replay
// instruction-for-instruction what a fresh generator produces. This is the
// property that lets a sweep generate each (profile, seed) trace once and
// replay it per cell without perturbing a single emitted number.
func TestArenaCursorMatchesGenerator(t *testing.T) {
	for _, name := range Names() {
		for _, seed := range []int64{1, 42, 987654321} {
			for _, n := range []int{1_000, 20_000} {
				prof, ok := ByName(name)
				if !ok {
					t.Fatalf("workload %q vanished", name)
				}
				src, err := New(prof, seed)
				if err != nil {
					t.Fatalf("New(%s, %d): %v", name, seed, err)
				}
				a := trace.Materialize(src, n)
				if a.Len() != n {
					t.Fatalf("%s/%d: materialised %d instructions, want %d", name, seed, a.Len(), n)
				}
				ref, err := New(prof, seed)
				if err != nil {
					t.Fatalf("New(%s, %d): %v", name, seed, err)
				}
				cur := a.NewCursor()
				var want, got isa.Inst
				for i := 0; i < n; i++ {
					if !ref.Next(&want) {
						t.Fatalf("%s/%d: generator exhausted at %d", name, seed, i)
					}
					if !cur.Next(&got) {
						t.Fatalf("%s/%d: cursor exhausted at %d", name, seed, i)
					}
					if want != got {
						t.Fatalf("%s/%d/n=%d: instruction %d diverged:\n live   %+v\n replay %+v",
							name, seed, n, i, want, got)
					}
				}
			}
		}
	}
}

// TestMultiprogramReplayIdentity pins the multiprogram interleave contract:
// replaying per-process arena cursors through NewMultiprogramReplay — the
// quantum schedule, the injected context-switch markers, the address-space
// relocation — produces the identical stream to the live NewMultiprogram
// generators, for every multiprogramming level the A6 experiment runs.
func TestMultiprogramReplayIdentity(t *testing.T) {
	const n = 30_000
	prof, ok := ByName("compress")
	if !ok {
		t.Fatal("compress workload missing")
	}
	for _, procs := range []int{1, 2, 4, 8} {
		for _, quantum := range []int{500, 5_000} {
			t.Run(fmt.Sprintf("procs=%d/quantum=%d", procs, quantum), func(t *testing.T) {
				live, err := NewMultiprogram(prof, procs, quantum, 42)
				if err != nil {
					t.Fatalf("NewMultiprogram: %v", err)
				}
				// Each per-process trace needs at most n instructions; the
				// interleaver never pulls more than it emits.
				cursors := make([]*trace.Cursor, procs)
				for i := range cursors {
					gen, err := New(prof, 42+int64(i)*SeedStride)
					if err != nil {
						t.Fatalf("New: %v", err)
					}
					cursors[i] = trace.Materialize(gen, n).NewCursor()
				}
				replay, err := NewMultiprogramReplay(cursors, quantum, 42)
				if err != nil {
					t.Fatalf("NewMultiprogramReplay: %v", err)
				}
				var want, got isa.Inst
				for i := 0; i < n; i++ {
					if !live.Next(&want) {
						t.Fatalf("live stream exhausted at %d", i)
					}
					if !replay.Next(&got) {
						t.Fatalf("replay exhausted at %d", i)
					}
					if want != got {
						t.Fatalf("instruction %d diverged:\n live   %+v\n replay %+v", i, want, got)
					}
				}
				if live.Switches() != replay.Switches() {
					t.Errorf("switch count diverged: live %d, replay %d", live.Switches(), replay.Switches())
				}
				if live.Emitted() != replay.Emitted() {
					t.Errorf("emitted count diverged: live %d, replay %d", live.Emitted(), replay.Emitted())
				}
			})
		}
	}
}

// TestMultiprogramReplayEndsCleanly: a replay over finite cursors must
// report exhaustion (Next false, short NextBatch) instead of emitting
// garbage when the current process's trace runs dry.
func TestMultiprogramReplayEndsCleanly(t *testing.T) {
	prof, ok := ByName("compress")
	if !ok {
		t.Fatal("compress workload missing")
	}
	gen, err := New(prof, 7)
	if err != nil {
		t.Fatal(err)
	}
	cur := trace.Materialize(gen, 500).NewCursor()
	replay, err := NewMultiprogramReplay([]*trace.Cursor{cur}, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]isa.Inst, 600)
	if got := replay.NextBatch(buf); got != 500 {
		t.Fatalf("NextBatch over a 500-instruction replay returned %d", got)
	}
	var in isa.Inst
	if replay.Next(&in) {
		t.Fatal("Next returned true past exhaustion")
	}
}
