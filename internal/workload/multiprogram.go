package workload

import (
	"fmt"
	"math/rand"

	"portsim/internal/isa"
	"portsim/internal/trace"
)

// KernelCodeBase is the lowest kernel address; everything below it belongs
// to user space. Exported for consumers that must distinguish the shared
// kernel from per-process user ranges (the multiprogramming wrapper, trace
// analytics).
const KernelCodeBase uint64 = kernelCodeBase

// processStride separates the address spaces of multiprogrammed processes.
// 8 GB apart: far beyond any single profile's footprint, so processes never
// alias in caches or TLBs.
const processStride uint64 = 1 << 33

// SeedStride separates the per-process generator seeds of a multiprogrammed
// workload: process i runs with seed + i*SeedStride. Exported so the arena
// registry in internal/experiments can materialise per-process traces whose
// replay is instruction-identical to NewMultiprogram's live generators.
const SeedStride int64 = 7919

// Multiprogram interleaves N independent instances of a profile, switching
// between them on an exponentially distributed quantum — the
// multiprogrammed behaviour of the paper's pmake-style workloads, where
// context switches cold-start the caches and TLBs.
//
// Each process runs the same profile with its own seed and an address-space
// offset applied to all user-mode PCs, data addresses and control targets;
// the kernel (code and data) is shared, as in a real OS. A context switch
// is marked by an injected serialising syscall, so the stream is NOT a
// single coherent control-flow walk across switch boundaries — exactly like
// a trace that includes interrupts.
type Multiprogram struct {
	procs   []procStream
	offsets []uint64
	rng     *rand.Rand

	current     int
	quantumMean int
	left        int

	// switchPending injects the context-switch marker before the next
	// process's first instruction.
	switchPending bool
	emitted       uint64
	switches      uint64
}

// procStream is the per-process instruction source the interleaver pulls
// from: a live Generator, or an arena replay cursor whose contents must be
// the identical dynamic trace.
type procStream interface {
	Next(in *isa.Inst) bool
}

// NewMultiprogram builds a multiprogrammed stream of `processes` instances
// of prof, switching every quantumMean instructions on average.
func NewMultiprogram(prof Profile, processes, quantumMean int, seed int64) (*Multiprogram, error) {
	if processes < 1 {
		return nil, fmt.Errorf("workload: need at least one process")
	}
	if quantumMean < 100 {
		return nil, fmt.Errorf("workload: quantum %d too short to be meaningful", quantumMean)
	}
	m := &Multiprogram{
		rng:         rand.New(rand.NewSource(seed)),
		quantumMean: quantumMean,
	}
	for i := 0; i < processes; i++ {
		g, err := New(prof, seed+int64(i)*SeedStride)
		if err != nil {
			return nil, err
		}
		m.procs = append(m.procs, g)
		m.offsets = append(m.offsets, uint64(i)*processStride)
	}
	m.left = m.drawQuantum()
	return m, nil
}

// NewMultiprogramReplay builds the same interleaved stream as
// NewMultiprogram, but over pre-materialised per-process traces instead of
// live generators. Cursor i must replay the dynamic trace of
// New(prof, seed+int64(i)*SeedStride) — the arena registry in
// internal/experiments guarantees this — and the quantum schedule is drawn
// from the same seeded source as the live constructor's, so the interleave
// is instruction-identical until a cursor runs out. Cursors are finite:
// unlike live generators the replay ends (Next returns false) when the
// current process's trace is exhausted, so callers must size the arenas
// past the instruction budget they will consume.
func NewMultiprogramReplay(procs []*trace.Cursor, quantumMean int, seed int64) (*Multiprogram, error) {
	if len(procs) < 1 {
		return nil, fmt.Errorf("workload: need at least one process")
	}
	if quantumMean < 100 {
		return nil, fmt.Errorf("workload: quantum %d too short to be meaningful", quantumMean)
	}
	m := &Multiprogram{
		rng:         rand.New(rand.NewSource(seed)),
		quantumMean: quantumMean,
	}
	for i, c := range procs {
		m.procs = append(m.procs, c)
		m.offsets = append(m.offsets, uint64(i)*processStride)
	}
	m.left = m.drawQuantum()
	return m, nil
}

func (m *Multiprogram) drawQuantum() int {
	// Geometric with the configured mean, at least 10 instructions.
	n := 10
	for m.rng.Float64() > 1.0/float64(m.quantumMean) {
		n++
		if n >= 20*m.quantumMean {
			break
		}
	}
	return n
}

// Processes returns the multiprogramming level.
func (m *Multiprogram) Processes() int { return len(m.procs) }

// Switches returns the number of context switches performed.
func (m *Multiprogram) Switches() uint64 { return m.switches }

// Next implements trace.Stream.
func (m *Multiprogram) Next(in *isa.Inst) bool {
	if m.switchPending {
		// The context-switch marker: a serialising kernel entry at the
		// outgoing process's last PC. The core drains its pipeline on
		// it, charging the switch's direct cost; the indirect cost
		// (cold caches, cold TLB) follows from the address-space jump.
		m.switchPending = false
		*in = isa.Inst{
			PC:     m.lastUserPC(),
			Class:  isa.Syscall,
			Target: kernelCodeBase,
			Kernel: false,
		}
		m.emitted++
		return true
	}
	if m.left <= 0 && len(m.procs) > 1 {
		m.current = (m.current + 1) % len(m.procs)
		m.left = m.drawQuantum()
		m.switches++
		m.switchPending = true
		return m.Next(in)
	}
	g := m.procs[m.current]
	if !g.Next(in) {
		return false
	}
	m.relocate(in, m.offsets[m.current])
	m.left--
	m.emitted++
	return true
}

// NextBatch implements trace.Batcher; see Generator.NextBatch. The quantum
// countdown and switch markers run inside the loop exactly as they would
// across individual Next calls. A short count only happens on replayed
// (finite) process streams; live generators never end.
func (m *Multiprogram) NextBatch(dst []isa.Inst) int {
	for i := range dst {
		if !m.Next(&dst[i]) {
			return i
		}
	}
	return len(dst)
}

// lastUserPC gives a stable PC in the current process's code range for the
// injected switch marker.
func (m *Multiprogram) lastUserPC() uint64 {
	return userCodeBase + m.offsets[m.current]
}

// relocate applies the process's address-space offset to user-mode
// addresses, leaving the shared kernel ranges untouched. Kernel-mode
// control transfers back into user space (episode exits) are relocated so
// the process resumes in its own range.
func (m *Multiprogram) relocate(in *isa.Inst, off uint64) {
	if off == 0 {
		return
	}
	if !in.Kernel {
		in.PC += off
		if in.Class.IsMem() {
			in.Addr += off
		}
		if in.Class.IsCtrl() && in.Class != isa.Syscall {
			in.Target += off
		}
		return
	}
	// Kernel mode: code and data are shared, but a return whose target
	// lies in user space goes back to this process's range.
	if in.Class.IsCtrl() && in.Target < KernelCodeBase {
		in.Target += off
	}
}

// Emitted returns the total instructions produced.
func (m *Multiprogram) Emitted() uint64 { return m.emitted }
