package workload

// Data-region base addresses. User regions sit low, kernel data high;
// everything is disjoint from the code ranges in generator.go.
const (
	heapBase   = 0x1000_0000
	hotBase    = 0x1800_0000
	tableBase  = 0x2000_0000
	streamBase = 0x3000_0000
	stackBase  = 0x7fff_0000
	kdataBase  = 0x9000_0000
	khotBase   = 0x9800_0000
	kbufBase   = 0xa000_0000
)

// Region locality follows the classic hot/cold split: each random or
// pointer-chasing structure is modelled as a heavily weighted hot subset
// (fits in or near the L1) plus a lightly weighted cold whole (misses to L2
// or memory). This reproduces the ~90-97% L1 hit rates of the paper's
// cache-resident workloads while keeping a realistic miss tail.

// kernelDefault is the kernel-mode behaviour shared by the profiles:
// integer-dominated code with mixed locality (hot dispatch structures, cold
// file-cache buffers) and a code working set larger than any one user loop —
// the cache-disruptive behaviour the paper's OS-inclusive methodology
// captures.
func kernelDefault(everyMean, lengthMean int) KernelSpec {
	return KernelSpec{
		EveryMean:  everyMean,
		LengthMean: lengthMean,
		Mix:        Mix{Load: 0.31, Store: 0.16, IntMul: 0.01},
		Regions: []Region{
			{Name: "khot", Weight: 0.49, Base: khotBase, Size: 12 << 10, Pattern: Random},
			{Name: "kstructs", Weight: 0.03, Base: kdataBase, Size: 128 << 10, Pattern: Random},
			{Name: "kbuffers", Weight: 0.33, Base: kbufBase, Size: 128 << 10, Pattern: Sequential, StrideBytes: 8, Run: 6},
			{Name: "kstack", Weight: 0.15, Base: kdataBase + (16 << 20), Size: 16 << 10, Pattern: Stack},
		},
		CodeBlocks:   1200,
		MeanBlockLen: 6,
	}
}

// Profiles returns the seven workload profiles of the evaluation, in the
// order the paper-style tables list them. Each models the reference-stream
// statistics of one application family (see DESIGN.md for the mapping).
func Profiles() []Profile {
	return []Profile{
		{
			Name:        "compress",
			Description: "SPEC compress: integer, sequential input buffer plus a hashed dictionary",
			Mix:         Mix{Load: 0.30, Store: 0.15, IntMul: 0.01},
			Regions: []Region{
				{Name: "input", Weight: 0.35, Base: streamBase, Size: 1 << 20, Pattern: Sequential, StrideBytes: 8, Run: 7},
				{Name: "hashhot", Weight: 0.45, Base: hotBase, Size: 12 << 10, Pattern: Random},
				{Name: "hashcold", Weight: 0.02, Base: tableBase, Size: 128 << 10, Pattern: Random},
				{Name: "stack", Weight: 0.18, Base: stackBase, Size: 8 << 10, Pattern: Stack},
			},
			CodeBlocks:   300,
			MeanBlockLen: 7,
			Size8Frac:    0.35,
			Size1Frac:    0.25,
			Kernel:       kernelDefault(20000, 600),
		},
		{
			Name:        "eqntott",
			Description: "SPEC eqntott: branchy integer over hot small arrays, high spatial locality",
			Mix:         Mix{Load: 0.33, Store: 0.10},
			Regions: []Region{
				{Name: "bitvecs", Weight: 0.7, Base: tableBase, Size: 40 << 10, Pattern: Sequential, StrideBytes: 8, Run: 8},
				{Name: "terms", Weight: 0.02, Base: heapBase, Size: 128 << 10, Pattern: Random},
				{Name: "termhot", Weight: 0.18, Base: hotBase, Size: 12 << 10, Pattern: Random},
				{Name: "stack", Weight: 0.1, Base: stackBase, Size: 8 << 10, Pattern: Stack},
			},
			CodeBlocks:   200,
			MeanBlockLen: 5,
			Size8Frac:    0.25,
			Size1Frac:    0.1,
			Kernel:       kernelDefault(30000, 500),
		},
		{
			Name:        "mp3d",
			Description: "SPLASH mp3d: FP particle code, strided array sweeps, heavy load traffic",
			Mix:         Mix{Load: 0.34, Store: 0.16, FPAdd: 0.13, FPMul: 0.09, FPDiv: 0.01},
			Regions: []Region{
				{Name: "particles", Weight: 0.42, Base: heapBase, Size: 2 << 20, Pattern: Strided, StrideBytes: 40, Run: 5},
				{Name: "cellhot", Weight: 0.38, Base: hotBase, Size: 12 << 10, Pattern: Random},
				{Name: "cells", Weight: 0.05, Base: tableBase, Size: 128 << 10, Pattern: Random},
				{Name: "stack", Weight: 0.15, Base: stackBase, Size: 8 << 10, Pattern: Stack},
			},
			CodeBlocks:   250,
			MeanBlockLen: 9,
			Size8Frac:    0.8,
			Kernel:       kernelDefault(40000, 500),
		},
		{
			Name:        "raytrace",
			Description: "rendering: FP with pointer chasing through a BVH, poor spatial locality",
			Mix:         Mix{Load: 0.34, Store: 0.12, FPAdd: 0.11, FPMul: 0.09, FPDiv: 0.01},
			Regions: []Region{
				{Name: "bvhhot", Weight: 0.45, Base: hotBase, Size: 12 << 10, Pattern: Chase},
				{Name: "bvh", Weight: 0.03, Base: heapBase, Size: 128 << 10, Pattern: Chase},
				{Name: "trihot", Weight: 0.24, Base: hotBase + (64 << 10), Size: 8 << 10, Pattern: Random},
				{Name: "tris", Weight: 0.03, Base: tableBase, Size: 192 << 10, Pattern: Random},
				{Name: "stack", Weight: 0.25, Base: stackBase, Size: 16 << 10, Pattern: Stack},
			},
			CodeBlocks:   500,
			MeanBlockLen: 8,
			Size8Frac:    0.75,
			Kernel:       kernelDefault(35000, 500),
		},
		{
			Name:        "verilog",
			Description: "VCS gate-level simulation: irregular integer event lists, large footprint",
			Mix:         Mix{Load: 0.33, Store: 0.14, IntMul: 0.005},
			Regions: []Region{
				{Name: "nethot", Weight: 0.43, Base: hotBase, Size: 12 << 10, Pattern: Chase},
				{Name: "netlist", Weight: 0.02, Base: heapBase, Size: 128 << 10, Pattern: Chase},
				{Name: "events", Weight: 0.35, Base: tableBase, Size: 512 << 10, Pattern: Sequential, StrideBytes: 16, Run: 8},
				{Name: "valhot", Weight: 0.18, Base: hotBase + (64 << 10), Size: 8 << 10, Pattern: Random},
				{Name: "values", Weight: 0.02, Base: streamBase, Size: 128 << 10, Pattern: Random},
			},
			CodeBlocks:   900,
			MeanBlockLen: 6,
			Size8Frac:    0.3,
			Size1Frac:    0.05,
			Kernel:       kernelDefault(25000, 600),
		},
		{
			Name:        "database",
			Description: "commercial OLTP: random probes over a large footprint, frequent kernel entries",
			Mix:         Mix{Load: 0.32, Store: 0.15, IntMul: 0.005},
			Regions: []Region{
				{Name: "bufhot", Weight: 0.51, Base: hotBase, Size: 12 << 10, Pattern: Random},
				{Name: "bufpool", Weight: 0.05, Base: heapBase, Size: 1 << 20, Pattern: Random},
				{Name: "index", Weight: 0.04, Base: tableBase, Size: 256 << 10, Pattern: Chase},
				{Name: "log", Weight: 0.15, Base: streamBase, Size: 512 << 10, Pattern: Sequential, StrideBytes: 8, Run: 6},
				{Name: "stack", Weight: 0.25, Base: stackBase, Size: 16 << 10, Pattern: Stack},
			},
			CodeBlocks:   1500,
			MeanBlockLen: 6,
			Size8Frac:    0.45,
			Kernel:       kernelDefault(4000, 900),
		},
		{
			Name:        "pmake",
			Description: "parallel compilation: OS-dominated, short processes, cold caches",
			Mix:         Mix{Load: 0.31, Store: 0.15, IntMul: 0.01},
			Regions: []Region{
				{Name: "asthot", Weight: 0.43, Base: hotBase, Size: 12 << 10, Pattern: Chase},
				{Name: "ast", Weight: 0.03, Base: heapBase, Size: 128 << 10, Pattern: Chase},
				{Name: "symhot", Weight: 0.15, Base: hotBase + (64 << 10), Size: 12 << 10, Pattern: Random},
				{Name: "symtab", Weight: 0.04, Base: tableBase, Size: 128 << 10, Pattern: Random},
				{Name: "srcbuf", Weight: 0.15, Base: streamBase, Size: 512 << 10, Pattern: Sequential, StrideBytes: 8, Run: 6},
				{Name: "stack", Weight: 0.2, Base: stackBase, Size: 16 << 10, Pattern: Stack},
			},
			CodeBlocks:   1000,
			MeanBlockLen: 6,
			Size8Frac:    0.3,
			Size1Frac:    0.15,
			Kernel:       kernelDefault(2500, 1200),
		},
	}
}

// ByName returns the named profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the profile names in table order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
