package workload

import (
	"testing"

	"portsim/internal/isa"
	"portsim/internal/trace"
)

var _ trace.Batcher = (*Generator)(nil)
var _ trace.Batcher = (*Multiprogram)(nil)

// TestNextBatchMatchesNext is the golden equivalence test for batched
// generation: for every named workload and several seeds, pulling the
// stream through NextBatch — in deliberately awkward chunk sizes — must
// produce instruction-for-instruction the same sequence as per-call Next.
// This is the property that lets the simulator batch fetch without
// perturbing a single emitted number.
func TestNextBatchMatchesNext(t *testing.T) {
	const n = 20_000
	chunkSizes := []int{1, 3, 7, 64, 128, 1000}
	for _, name := range Names() {
		for _, seed := range []int64{1, 42, 987654321} {
			prof, ok := ByName(name)
			if !ok {
				t.Fatalf("workload %q vanished", name)
			}
			ref, err := New(prof, seed)
			if err != nil {
				t.Fatalf("New(%s, %d): %v", name, seed, err)
			}
			batched, err := New(prof, seed)
			if err != nil {
				t.Fatalf("New(%s, %d): %v", name, seed, err)
			}
			want := make([]isa.Inst, n)
			for i := range want {
				if !ref.Next(&want[i]) {
					t.Fatalf("%s/%d: generator exhausted at %d", name, seed, i)
				}
			}
			got := drainBatched(t, batched, n, chunkSizes)
			compareStreams(t, name, seed, want, got)
		}
	}
}

// TestMultiprogramNextBatchMatchesNext covers the multiprogrammed wrapper,
// whose quantum countdown and injected switch markers must survive
// batching unchanged.
func TestMultiprogramNextBatchMatchesNext(t *testing.T) {
	const n = 20_000
	prof, ok := ByName("compress")
	if !ok {
		t.Fatal("compress workload missing")
	}
	for _, procs := range []int{1, 4} {
		ref, err := NewMultiprogram(prof, procs, 2_000, 7)
		if err != nil {
			t.Fatalf("NewMultiprogram: %v", err)
		}
		batched, err := NewMultiprogram(prof, procs, 2_000, 7)
		if err != nil {
			t.Fatalf("NewMultiprogram: %v", err)
		}
		want := make([]isa.Inst, n)
		for i := range want {
			if !ref.Next(&want[i]) {
				t.Fatalf("procs=%d: stream exhausted at %d", procs, i)
			}
		}
		got := drainBatched(t, batched, n, []int{1, 5, 128, 333})
		compareStreams(t, "compress-mp", int64(procs), want, got)
	}
}

// drainBatched pulls n instructions via NextBatch, cycling through the
// given chunk sizes so refill boundaries land at many different offsets.
func drainBatched(t *testing.T, b trace.Batcher, n int, chunkSizes []int) []isa.Inst {
	t.Helper()
	got := make([]isa.Inst, 0, n)
	for i := 0; len(got) < n; i++ {
		size := chunkSizes[i%len(chunkSizes)]
		if left := n - len(got); size > left {
			size = left
		}
		buf := make([]isa.Inst, size)
		k := b.NextBatch(buf)
		if k != size {
			t.Fatalf("NextBatch(%d) = %d on an endless stream", size, k)
		}
		got = append(got, buf[:k]...)
	}
	return got
}

func compareStreams(t *testing.T, name string, seed int64, want, got []isa.Inst) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s/%d: length mismatch %d vs %d", name, seed, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s/%d: instruction %d diverged:\n per-call %+v\n batched  %+v",
				name, seed, i, want[i], got[i])
		}
	}
}
