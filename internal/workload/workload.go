// Package workload provides deterministic synthetic workload generators
// that stand in for the paper's SimOS/IRIX applications. Each generator
// emits a dynamic instruction stream (implementing trace.Stream) whose
// statistics — instruction mix, working-set size, spatial and temporal
// locality, store adjacency, and periodic kernel episodes — are the
// properties the cache-port study actually depends on.
//
// A workload is described by a Profile: an instruction mix, a set of data
// regions with access patterns, a synthetic code layout (basic blocks with
// per-branch biases, calls and returns), and a kernel-activity model that
// periodically traps into a separate kernel code/data footprint, following
// the paper's emphasis on evaluating with operating-system activity
// included.
//
// Generators are fully deterministic: the same profile and seed always
// produce the identical stream.
package workload

import "fmt"

// Pattern selects how a data region is walked.
type Pattern uint8

// Region access patterns.
const (
	// Sequential walks the region with a fixed stride, wrapping at the
	// end — high spatial locality (buffers, arrays, streams).
	Sequential Pattern = iota
	// Strided walks with a stride larger than the access size — the
	// particle-array style of mp3d, defeating narrow spatial locality.
	Strided
	// Random touches uniformly distributed aligned addresses — hash
	// tables, OLTP index probes.
	Random
	// Chase models pointer chasing: the next address depends on the
	// previous load's value, so consecutive chase loads are serially
	// dependent and spatially unrelated.
	Chase
	// Stack models push/pop traffic near a moving stack pointer — very
	// hot, very local.
	Stack
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case Chase:
		return "chase"
	case Stack:
		return "stack"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// Region describes one data region of a workload.
type Region struct {
	// Name labels the region in dumps.
	Name string
	// Weight is the relative probability a memory access targets this
	// region.
	Weight float64
	// Base and Size delimit the region.
	Base, Size uint64
	// Pattern selects the walk.
	Pattern Pattern
	// StrideBytes is the walk stride for Sequential/Strided.
	StrideBytes uint64
	// Run is the number of consecutive accesses made at adjacent
	// addresses before the pattern advances (models multi-word records:
	// a run of 2-4 gives the wide port spatially adjacent work).
	Run int
}

// Mix gives the instruction-class mix of a workload's body instructions.
// Fractions are of all instructions; the remainder after memory, FP and
// long-latency integer ops is single-cycle integer ALU work. Control flow is
// structural (one terminator per basic block) and therefore set by
// MeanBlockLen in the Profile, not by Mix.
type Mix struct {
	Load   float64
	Store  float64
	FPAdd  float64
	FPMul  float64
	FPDiv  float64
	IntMul float64
	IntDiv float64
	Nop    float64
}

func (m Mix) total() float64 {
	return m.Load + m.Store + m.FPAdd + m.FPMul + m.FPDiv + m.IntMul + m.IntDiv + m.Nop
}

// KernelSpec configures the kernel-activity model: every EveryMean user
// instructions (exponentially distributed), the workload traps into kernel
// code for LengthMean instructions (also exponential), executing with the
// kernel's own mix, regions and code footprint.
type KernelSpec struct {
	// EveryMean is the mean number of user instructions between kernel
	// entries; zero disables kernel activity.
	EveryMean int
	// LengthMean is the mean kernel episode length in instructions.
	LengthMean int
	// Mix is the kernel instruction mix.
	Mix Mix
	// Regions are the kernel data regions.
	Regions []Region
	// CodeBlocks is the kernel code footprint in basic blocks.
	CodeBlocks int
	// MeanBlockLen is the kernel basic-block length.
	MeanBlockLen int
}

// Profile fully describes a synthetic workload.
type Profile struct {
	// Name identifies the workload in tables.
	Name string
	// Description says what real application family it models.
	Description string
	// Mix is the user-mode instruction mix.
	Mix Mix
	// Regions are the user-mode data regions (weights need not sum to 1;
	// they are normalised).
	Regions []Region
	// CodeBlocks is the number of static basic blocks (code footprint).
	CodeBlocks int
	// MeanBlockLen is the mean instructions per basic block, including
	// the terminator; it determines the control-flow fraction.
	MeanBlockLen int
	// Size8Frac and Size1Frac give the fraction of memory accesses that
	// are 8-byte and 1-byte respectively; the rest are 4-byte.
	Size8Frac, Size1Frac float64
	// Kernel configures OS activity.
	Kernel KernelSpec
}

// Validate checks the profile for internal consistency.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile has no name")
	}
	if t := p.Mix.total(); t < 0 || t > 1 {
		return fmt.Errorf("workload: %s: mix fractions sum to %v", p.Name, t)
	}
	if len(p.Regions) == 0 && p.Mix.Load+p.Mix.Store > 0 {
		return fmt.Errorf("workload: %s: memory mix but no regions", p.Name)
	}
	for i, r := range p.Regions {
		if err := validateRegion(p.Name, r); err != nil {
			return fmt.Errorf("%w (region %d)", err, i)
		}
	}
	if p.CodeBlocks < 1 {
		return fmt.Errorf("workload: %s: needs at least one code block", p.Name)
	}
	if p.MeanBlockLen < 2 {
		return fmt.Errorf("workload: %s: mean block length %d too small", p.Name, p.MeanBlockLen)
	}
	if p.Size8Frac < 0 || p.Size1Frac < 0 || p.Size8Frac+p.Size1Frac > 1 {
		return fmt.Errorf("workload: %s: size fractions invalid", p.Name)
	}
	k := &p.Kernel
	if k.EveryMean < 0 || k.LengthMean < 0 {
		return fmt.Errorf("workload: %s: negative kernel cadence", p.Name)
	}
	if k.EveryMean > 0 {
		if k.LengthMean < 1 {
			return fmt.Errorf("workload: %s: kernel episodes need a length", p.Name)
		}
		if t := k.Mix.total(); t < 0 || t > 1 {
			return fmt.Errorf("workload: %s: kernel mix sums to %v", p.Name, t)
		}
		if len(k.Regions) == 0 && k.Mix.Load+k.Mix.Store > 0 {
			return fmt.Errorf("workload: %s: kernel memory mix but no kernel regions", p.Name)
		}
		for i, r := range k.Regions {
			if err := validateRegion(p.Name+"/kernel", r); err != nil {
				return fmt.Errorf("%w (kernel region %d)", err, i)
			}
		}
		if k.CodeBlocks < 1 || k.MeanBlockLen < 2 {
			return fmt.Errorf("workload: %s: kernel code layout invalid", p.Name)
		}
	}
	return nil
}

func validateRegion(who string, r Region) error {
	switch {
	case r.Weight <= 0:
		return fmt.Errorf("workload: %s: region %q weight must be positive", who, r.Name)
	case r.Size < 64:
		return fmt.Errorf("workload: %s: region %q smaller than a cache line", who, r.Name)
	case r.Base%8 != 0:
		return fmt.Errorf("workload: %s: region %q base not 8-byte aligned", who, r.Name)
	case (r.Pattern == Sequential || r.Pattern == Strided) && (r.StrideBytes == 0 || r.StrideBytes%8 != 0):
		return fmt.Errorf("workload: %s: region %q needs an 8-byte-multiple stride", who, r.Name)
	case r.Run < 0:
		return fmt.Errorf("workload: %s: region %q negative run", who, r.Name)
	}
	return nil
}
