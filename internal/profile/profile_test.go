package profile

import (
	"strings"
	"testing"

	"portsim/internal/isa"
	"portsim/internal/trace"
	"portsim/internal/workload"
)

func TestObserveCounts(t *testing.T) {
	a := New(Options{})
	insts := []isa.Inst{
		{PC: 0x1000, Class: isa.IntALU, Dest: 1},
		{PC: 0x1004, Class: isa.Load, Dest: 2, Addr: 0x8000, Size: 8},
		{PC: 0x1008, Class: isa.Load, Dest: 3, Addr: 0x8008, Size: 4, Kernel: true},
		{PC: 0x100c, Class: isa.Store, Src1: 2, Addr: 0x9000, Size: 2},
		{PC: 0x1010, Class: isa.Branch, Target: 0x1000, Taken: true},
		{PC: 0x1000, Class: isa.Branch, Target: 0x1000, Taken: false},
	}
	for i := range insts {
		a.Observe(&insts[i])
	}
	if a.Insts != 6 || a.Kernel != 1 {
		t.Errorf("insts=%d kernel=%d", a.Insts, a.Kernel)
	}
	if a.Loads != 2 || a.Stores != 1 || a.MemRefs != 3 {
		t.Errorf("loads=%d stores=%d", a.Loads, a.Stores)
	}
	if a.BytesRead != 12 || a.BytesStored != 2 {
		t.Errorf("bytes read=%d stored=%d", a.BytesRead, a.BytesStored)
	}
	if a.Branches != 2 || a.TakenBranches != 1 {
		t.Errorf("branches=%d taken=%d", a.Branches, a.TakenBranches)
	}
	if got := a.TakenRate(); got != 0.5 {
		t.Errorf("TakenRate = %v", got)
	}
	if got := a.MemFrac(); got != 0.5 {
		t.Errorf("MemFrac = %v", got)
	}
	if got := a.KernelFrac(); got != 1.0/6.0 {
		t.Errorf("KernelFrac = %v", got)
	}
}

func TestChunkAdjacency(t *testing.T) {
	a := New(Options{ChunkSizes: []uint64{32}})
	addrs := []uint64{0x100, 0x108, 0x110, 0x200, 0x208}
	for _, addr := range addrs {
		in := isa.Inst{PC: 0x1000, Class: isa.Load, Dest: 1, Addr: addr, Size: 8}
		a.Observe(&in)
	}
	// Pairs: (100,108)=same, (108,110)=same, (110,200)=diff, (200,208)=same.
	if got := a.ChunkAdjacency(32); got != 0.75 {
		t.Errorf("ChunkAdjacency = %v, want 0.75", got)
	}
	if got := a.ChunkAdjacency(128); got != 0 {
		t.Errorf("untracked chunk size returned %v", got)
	}
}

func TestFootprint(t *testing.T) {
	a := New(Options{LineBytes: 32, PageBytes: 4096})
	for _, addr := range []uint64{0x0, 0x8, 0x20, 0x1000, 0x2000} {
		in := isa.Inst{PC: 0x1000, Class: isa.Store, Addr: addr, Size: 8}
		a.Observe(&in)
	}
	if got := a.FootprintLines(); got != 4 { // lines 0x0, 0x20, 0x1000, 0x2000
		t.Errorf("FootprintLines = %d, want 4", got)
	}
	if got := a.FootprintBytes(); got != 128 {
		t.Errorf("FootprintBytes = %d", got)
	}
	if got := a.FootprintPages(); got != 3 { // pages 0, 1, 2
		t.Errorf("FootprintPages = %d, want 3", got)
	}
}

func TestStrideFraction(t *testing.T) {
	a := New(Options{})
	for _, addr := range []uint64{0x100, 0x108, 0x110, 0x5110} {
		in := isa.Inst{PC: 0x1000, Class: isa.Load, Dest: 1, Addr: addr, Size: 8}
		a.Observe(&in)
	}
	// Deltas: 8, 8, 0x5000. Two of three pairs in [1,16].
	if got := a.StrideFraction(1, 16); got != 2.0/3.0 {
		t.Errorf("StrideFraction(1,16) = %v, want 2/3", got)
	}
	if got := a.StrideFraction(1<<13, 1<<16); got != 1.0/3.0 {
		t.Errorf("StrideFraction(big) = %v, want 1/3", got)
	}
}

func TestLog2Bucket(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 8: 4, 1 << 20: 21}
	for d, want := range cases {
		if got := log2Bucket(d); got != want {
			t.Errorf("log2Bucket(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestConsumeAndReport(t *testing.T) {
	p, _ := workload.ByName("eqntott")
	g, err := workload.New(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Options{})
	n := a.Consume(g, 50_000)
	if n != 50_000 || a.Insts != 50_000 {
		t.Fatalf("consumed %d", n)
	}
	out := a.Report("eqntott profile")
	for _, frag := range []string{"memory references", "adjacency @32B", "footprint", "instruction mix", "load"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

// TestGeneratorsMatchIntendedLocality validates the synthetic workloads
// through the analytics: sequential workloads must show far higher chunk
// adjacency than pointer-chasing ones, and OS-heavy ones a larger page
// footprint per instruction.
func TestGeneratorsMatchIntendedLocality(t *testing.T) {
	analyse := func(name string) *Analysis {
		p, _ := workload.ByName(name)
		g, err := workload.New(p, 9)
		if err != nil {
			t.Fatal(err)
		}
		a := New(Options{})
		a.Consume(trace.NewLimit(g, 100_000), 0)
		return a
	}
	eq := analyse("eqntott")
	rt := analyse("raytrace")
	if eq.ChunkAdjacency(32) <= rt.ChunkAdjacency(32) {
		t.Errorf("adjacency: eqntott %.3f <= raytrace %.3f",
			eq.ChunkAdjacency(32), rt.ChunkAdjacency(32))
	}
	db := analyse("database")
	if db.FootprintPages() <= eq.FootprintPages() {
		t.Errorf("database pages %d <= eqntott pages %d",
			db.FootprintPages(), eq.FootprintPages())
	}
	pm := analyse("pmake")
	if pm.KernelFrac() < 0.2 {
		t.Errorf("pmake kernel fraction %.3f", pm.KernelFrac())
	}
}

func TestEmptyAnalysis(t *testing.T) {
	a := New(Options{})
	if a.MemFrac() != 0 || a.TakenRate() != 0 || a.KernelFrac() != 0 ||
		a.ChunkAdjacency(32) != 0 || a.StrideFraction(1, 8) != 0 {
		t.Error("empty analysis returned non-zero rates")
	}
}
