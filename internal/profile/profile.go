// Package profile computes reference-stream analytics from dynamic
// instruction streams: instruction mix, memory footprint, stride and
// chunk-adjacency distributions, and cold-miss working-set curves. The
// workload generators are validated against these metrics (they are the
// statistics the cache-port study actually depends on), and cmd/tracegen
// exposes them for captured traces.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"portsim/internal/isa"
	"portsim/internal/stats"
	"portsim/internal/trace"
)

// Analysis is the accumulated profile of a stream.
type Analysis struct {
	Insts  uint64
	Kernel uint64

	ClassCounts [isa.NumClasses]uint64

	// Memory behaviour.
	MemRefs     uint64
	Loads       uint64
	Stores      uint64
	BytesRead   uint64
	BytesStored uint64

	// Branch behaviour.
	Branches      uint64
	TakenBranches uint64

	// strideHist counts |address delta| buckets between consecutive
	// memory references (log2 buckets, bucket 0 = same address).
	strideHist *stats.Histogram

	// chunkAdjacent counts consecutive memory references landing in the
	// same aligned chunk of each tracked size.
	chunkSizes    []uint64
	chunkAdjacent []uint64

	// Footprint: distinct lines and pages touched.
	lines map[uint64]struct{}
	pages map[uint64]struct{}

	lastAddr  uint64
	haveLast  bool
	lineBytes uint64
	pageBytes uint64
}

// Options configure an analysis.
type Options struct {
	// LineBytes sets the footprint granularity (default 32).
	LineBytes uint64
	// PageBytes sets the page-footprint granularity (default 4096).
	PageBytes uint64
	// ChunkSizes are the alignment widths for adjacency tracking
	// (default 16, 32, 64) — the candidate wide-port widths.
	ChunkSizes []uint64
}

// New returns an empty analysis.
func New(opts Options) *Analysis {
	if opts.LineBytes == 0 {
		opts.LineBytes = 32
	}
	if opts.PageBytes == 0 {
		opts.PageBytes = 4096
	}
	if len(opts.ChunkSizes) == 0 {
		opts.ChunkSizes = []uint64{16, 32, 64}
	}
	return &Analysis{
		strideHist:    stats.NewHistogram(33), // log2 buckets 0..32
		chunkSizes:    opts.ChunkSizes,
		chunkAdjacent: make([]uint64, len(opts.ChunkSizes)),
		lines:         make(map[uint64]struct{}),
		pages:         make(map[uint64]struct{}),
		lineBytes:     opts.LineBytes,
		pageBytes:     opts.PageBytes,
	}
}

// Observe accumulates one instruction.
func (a *Analysis) Observe(in *isa.Inst) {
	a.Insts++
	if in.Kernel {
		a.Kernel++
	}
	a.ClassCounts[in.Class]++
	switch in.Class {
	case isa.Branch:
		a.Branches++
		if in.Taken {
			a.TakenBranches++
		}
	case isa.Load, isa.Store:
		a.MemRefs++
		if in.Class == isa.Load {
			a.Loads++
			a.BytesRead += uint64(in.Size)
		} else {
			a.Stores++
			a.BytesStored += uint64(in.Size)
		}
		a.lines[in.Addr/a.lineBytes] = struct{}{}
		a.pages[in.Addr/a.pageBytes] = struct{}{}
		if a.haveLast {
			a.strideHist.Observe(log2Bucket(absDelta(in.Addr, a.lastAddr)))
			for i, cs := range a.chunkSizes {
				if in.Addr/cs == a.lastAddr/cs {
					a.chunkAdjacent[i]++
				}
			}
		}
		a.lastAddr = in.Addr
		a.haveLast = true
	}
}

// Consume drains a stream into the analysis, up to max instructions
// (0 = unbounded), returning the count observed.
func (a *Analysis) Consume(s trace.Stream, max uint64) uint64 {
	var in isa.Inst
	var n uint64
	for (max == 0 || n < max) && s.Next(&in) {
		a.Observe(&in)
		n++
	}
	return n
}

func absDelta(x, y uint64) uint64 {
	if x > y {
		return x - y
	}
	return y - x
}

func log2Bucket(d uint64) uint64 {
	if d == 0 {
		return 0
	}
	b := uint64(1)
	for d > 1 {
		d >>= 1
		b++
	}
	return b
}

// KernelFrac returns the kernel-mode instruction fraction.
func (a *Analysis) KernelFrac() float64 {
	if a.Insts == 0 {
		return 0
	}
	return float64(a.Kernel) / float64(a.Insts)
}

// MemFrac returns the memory-reference fraction of the stream.
func (a *Analysis) MemFrac() float64 {
	if a.Insts == 0 {
		return 0
	}
	return float64(a.MemRefs) / float64(a.Insts)
}

// TakenRate returns the conditional-branch taken rate.
func (a *Analysis) TakenRate() float64 {
	if a.Branches == 0 {
		return 0
	}
	return float64(a.TakenBranches) / float64(a.Branches)
}

// ChunkAdjacency returns the fraction of consecutive memory references
// sharing the aligned chunk of the given size — the statistic that predicts
// the load-all technique's hit rate. Returns 0 for untracked sizes.
func (a *Analysis) ChunkAdjacency(chunkBytes uint64) float64 {
	if a.MemRefs < 2 {
		return 0
	}
	for i, cs := range a.chunkSizes {
		if cs == chunkBytes {
			return float64(a.chunkAdjacent[i]) / float64(a.MemRefs-1)
		}
	}
	return 0
}

// FootprintLines returns the number of distinct cache lines touched.
func (a *Analysis) FootprintLines() int { return len(a.lines) }

// FootprintBytes returns the line-granular footprint in bytes.
func (a *Analysis) FootprintBytes() uint64 { return uint64(len(a.lines)) * a.lineBytes }

// FootprintPages returns the number of distinct pages touched — the DTLB's
// working set.
func (a *Analysis) FootprintPages() int { return len(a.pages) }

// StrideFraction returns the fraction of consecutive reference pairs whose
// absolute address delta falls in [lo, hi] bytes.
func (a *Analysis) StrideFraction(lo, hi uint64) float64 {
	if a.MemRefs < 2 {
		return 0
	}
	var count uint64
	for b := log2Bucket(lo); b <= log2Bucket(hi) && b < 33; b++ {
		count += a.strideHist.Bucket(b)
	}
	return float64(count) / float64(a.MemRefs-1)
}

// Report renders the analysis as a plain-text table.
func (a *Analysis) Report(title string) string {
	var b strings.Builder
	t := stats.NewTable(title, "metric", "value")
	t.AddRow("instructions", fmt.Sprint(a.Insts))
	t.AddRow("kernel fraction", stats.Percent(a.KernelFrac()))
	t.AddRow("memory references", fmt.Sprintf("%d (%s of insts)", a.MemRefs, stats.Percent(a.MemFrac())))
	t.AddRow("loads / stores", fmt.Sprintf("%d / %d", a.Loads, a.Stores))
	t.AddRow("bytes read / written", fmt.Sprintf("%d / %d", a.BytesRead, a.BytesStored))
	t.AddRow("branches (taken)", fmt.Sprintf("%d (%s)", a.Branches, stats.Percent(a.TakenRate())))
	t.AddRow("footprint", fmt.Sprintf("%d lines = %d KB, %d pages",
		a.FootprintLines(), a.FootprintBytes()>>10, a.FootprintPages()))
	for _, cs := range a.chunkSizes {
		t.AddRow(fmt.Sprintf("adjacency @%dB chunks", cs), stats.Percent(a.ChunkAdjacency(cs)))
	}
	b.WriteString(t.String())

	// Class mix, densest first.
	type cc struct {
		c isa.Class
		n uint64
	}
	var mix []cc
	for c := 0; c < isa.NumClasses; c++ {
		if a.ClassCounts[c] > 0 {
			mix = append(mix, cc{isa.Class(c), a.ClassCounts[c]})
		}
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].n > mix[j].n })
	mt := stats.NewTable("instruction mix", "class", "count", "share")
	for _, m := range mix {
		mt.AddRow(m.c.String(), fmt.Sprint(m.n), stats.Percent(float64(m.n)/float64(a.Insts)))
	}
	b.WriteString("\n")
	b.WriteString(mt.String())
	return b.String()
}
