package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if got := s.Get("missing"); got != 0 {
		t.Errorf("untouched counter = %d, want 0", got)
	}
	s.Inc("a")
	s.Add("a", 4)
	s.Add("b", 10)
	if got := s.Get("a"); got != 5 {
		t.Errorf("a = %d, want 5", got)
	}
	if got := s.Get("b"); got != 10 {
		t.Errorf("b = %d, want 10", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names() = %v, want [a b] in creation order", names)
	}
}

func TestSetRatio(t *testing.T) {
	s := NewSet()
	s.Add("hits", 3)
	s.Add("accesses", 4)
	if got := s.Ratio("hits", "accesses"); got != 0.75 {
		t.Errorf("Ratio = %v, want 0.75", got)
	}
	if got := s.Ratio("hits", "never"); got != 0 {
		t.Errorf("Ratio with zero denominator = %v, want 0", got)
	}
}

// TestSetRatioZeroDenominator pins Ratio to SafeRatio's no-events rule for
// a denominator counter that exists but never fired — the case a cell with
// zero port accesses produces. The result must be exactly zero, never NaN
// or Inf leaking into a report table.
func TestSetRatioZeroDenominator(t *testing.T) {
	s := NewSet()
	s.Add("rejects", 7)
	s.Add("accesses", 0)
	got := s.Ratio("rejects", "accesses")
	if got != 0 {
		t.Errorf("Ratio(7, explicit 0) = %v, want 0", got)
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("Ratio(7, explicit 0) = %v; must be finite", got)
	}
}

func TestSetMerge(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Errorf("after merge x=%d y=%d, want 3 and 3", a.Get("x"), a.Get("y"))
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Add("zeta", 1)
	s.Add("alpha", 2)
	out := s.String()
	if !strings.Contains(out, "alpha=2") || !strings.Contains(out, "zeta=1") {
		t.Errorf("String() = %q missing counters", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Errorf("String() not sorted: %q", out)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []uint64{0, 1, 1, 3, 7, 9} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 21 {
		t.Errorf("Sum = %d, want 21", h.Sum())
	}
	if h.Max() != 9 {
		t.Errorf("Max = %d, want 9", h.Max())
	}
	if h.Bucket(1) != 2 {
		t.Errorf("Bucket(1) = %d, want 2", h.Bucket(1))
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow())
	}
	if h.Bucket(100) != 2 {
		t.Errorf("Bucket(out of range) = %d, want overflow count 2", h.Bucket(100))
	}
	if got, want := h.Mean(), 21.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got := h.Fraction(1); math.Abs(got-2.0/6.0) > 1e-12 {
		t.Errorf("Fraction(1) = %v, want 1/3", got)
	}
}

// TestHistogramObserveN checks that a batched observation is
// indistinguishable from the equivalent run of single observations — the
// property skipTo relies on when it logs a whole inert gap of zero-grant
// cycles in one call — and that n=0 is a strict no-op.
func TestHistogramObserveN(t *testing.T) {
	batched := NewHistogram(4)
	single := NewHistogram(4)
	for _, c := range []struct{ v, n uint64 }{{0, 1000}, {2, 3}, {9, 5}, {3, 0}} {
		batched.ObserveN(c.v, c.n)
		for i := uint64(0); i < c.n; i++ {
			single.Observe(c.v)
		}
	}
	if batched.Count() != single.Count() || batched.Sum() != single.Sum() || batched.Max() != single.Max() {
		t.Errorf("ObserveN summary (count=%d sum=%d max=%d) diverges from Observe loop (count=%d sum=%d max=%d)",
			batched.Count(), batched.Sum(), batched.Max(), single.Count(), single.Sum(), single.Max())
	}
	for b := uint64(0); b < 4; b++ {
		if batched.Bucket(b) != single.Bucket(b) {
			t.Errorf("bucket %d: ObserveN %d, Observe loop %d", b, batched.Bucket(b), single.Bucket(b))
		}
	}
	if batched.Overflow() != single.Overflow() {
		t.Errorf("overflow: ObserveN %d, Observe loop %d", batched.Overflow(), single.Overflow())
	}
	empty := NewHistogram(4)
	empty.ObserveN(2, 0)
	if empty.Count() != 0 || empty.Max() != 0 {
		t.Errorf("ObserveN(v, 0) mutated the histogram: count=%d max=%d", empty.Count(), empty.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(2)
	if h.Mean() != 0 || h.Fraction(0) != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramPanicsOnZeroBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(0) did not panic")
		}
	}()
	NewHistogram(0)
}

// TestHistogramConservation property: count equals the sum of all buckets
// plus overflow, for any sample sequence.
func TestHistogramConservation(t *testing.T) {
	f := func(samples []uint16) bool {
		h := NewHistogram(8)
		for _, s := range samples {
			h.Observe(uint64(s))
		}
		var total uint64
		for v := uint64(0); v < 8; v++ {
			total += h.Bucket(v)
		}
		total += h.Overflow()
		return total == h.Count() && h.Count() == uint64(len(samples))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("GeoMean(5) = %v, want 5", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("GeoMean with zero should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Error("GeoMean with negative should be NaN")
	}
}

// TestGeoMeanBounds property: the geometric mean of positive values lies
// between the minimum and maximum.
func TestGeoMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(r)
			if v > 1e-6 && v < 1e6 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		g := GeoMean(xs)
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "workload", "ipc", "note")
	tb.AddRowf("compress", 1.234567, "ok")
	tb.AddRow("db", "2.0")
	out := tb.String()
	if !strings.Contains(out, "Figure X") {
		t.Errorf("missing title in %q", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Errorf("float not formatted to 3 decimals in %q", out)
	}
	if !strings.Contains(out, "workload") || !strings.Contains(out, "---") {
		t.Errorf("missing header or separator in %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("got %d lines, want 5 (title, header, sep, 2 rows)", len(lines))
	}
}

func TestCellAndPercent(t *testing.T) {
	if got := Cell(float32(1.5)); got != "1.500" {
		t.Errorf("Cell(float32) = %q", got)
	}
	if got := Cell(42); got != "42" {
		t.Errorf("Cell(int) = %q", got)
	}
	if got := Percent(0.915); got != "91.5%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Fig", "a", "b")
	tb.AddRow("x", "1,5")
	tb.AddRow(`say "hi"`, "2")
	out := tb.CSV()
	want := "# Fig\na,b\nx,\"1,5\"\n\"say \"\"hi\"\"\",2\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestTableCSVNoTitleNoHeader(t *testing.T) {
	tb := NewTable("")
	tb.AddRow("only", "row")
	if got := tb.CSV(); got != "only,row\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestSafeRatio(t *testing.T) {
	cases := []struct {
		num, den, want float64
	}{
		{1, 2, 0.5},
		{3, 0, 0}, // branch-free cell: no NaN
		{0, 0, 0}, // fully empty counters
		{-4, 2, -2},
		{5, 0.5, 10},
	}
	for _, c := range cases {
		if got := SafeRatio(c.num, c.den); got != c.want {
			t.Errorf("SafeRatio(%v, %v) = %v, want %v", c.num, c.den, got, c.want)
		}
	}
	if got := SafeRatio(1, 0); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("SafeRatio(1, 0) = %v; must be finite", got)
	}
}

func TestPortRejects(t *testing.T) {
	s := NewSet()
	if got := PortRejects(s); got != 0 {
		t.Errorf("empty set rejects = %d, want 0", got)
	}
	s.Add(PortRejectPortBusy, 3)
	s.Add(PortRejectMSHR, 2)
	s.Add(PortRejectStoreConflict, 1)
	s.Add(PortRejectBankConflict, 4)
	s.Add(PortGrants, 99) // not a rejection; must not be counted
	if got := PortRejects(s); got != 10 {
		t.Errorf("rejects = %d, want 10", got)
	}
	if len(PortRejectNames) != 4 {
		t.Errorf("PortRejectNames has %d entries, want the 4 rejection reasons", len(PortRejectNames))
	}
}
