package stats

import "fmt"

// This file is the canonical counter vocabulary of the simulator. Every
// counter written into a stats.Set by non-test code is named here (or built
// by one of the name constructors below), and the core simulator packages
// are required by portlint's counterhygiene analyzer to use these constants
// rather than string literals — a typo'd name then fails compilation or
// lint instead of silently reading zero. Regenerate the expected write set
// with `go run ./cmd/portlint -counters ./...` when adding counters.

// Core pipeline counters (written by internal/cpu).
const (
	Cycles       = "cycles"
	Instructions = "instructions"
	InstsUser    = "insts.user"
	InstsKernel  = "insts.kernel"
	Loads        = "loads"
	Stores       = "stores"
	Branches     = "branches"
	Mispredicts  = "mispredicts"

	StallFetchCycles       = "stall.fetch_cycles"
	StallROBFullCycles     = "stall.rob_full_cycles"
	StallCommitStoreBuffer = "stall.commit_store_buffer"

	LSQForwards   = "lsq.forwards"
	LSQViolations = "lsq.violations"

	FetchWrongPathLines = "fetch.wrong_path_lines"
)

// Memory-hierarchy counters (written by internal/cpu from the cache and
// TLB models).
const (
	L1DHits       = "l1d.hits"
	L1DMisses     = "l1d.misses"
	L1DWritebacks = "l1d.writebacks"
	L1IHits       = "l1i.hits"
	L1IMisses     = "l1i.misses"
	L2Hits        = "l2.hits"
	L2Misses      = "l2.misses"
	DRAMAccesses  = "dram.accesses"
	ITLBHits      = "itlb.hits"
	ITLBMisses    = "itlb.misses"
	DTLBHits      = "dtlb.hits"
	DTLBMisses    = "dtlb.misses"
)

// Cache-port counters (written by internal/core's MemPort, the subsystem
// under study in the paper).
const (
	PortCycles               = "port.cycles"
	PortGrants               = "port.grants"
	PortLoadAccesses         = "port.load_accesses"
	PortStoreAccesses        = "port.store_accesses"
	PortLoadsFromCache       = "port.loads_from_cache"
	PortLoadsFromLineBuffer  = "port.loads_from_line_buffer"
	PortLoadsFromStoreBuffer = "port.loads_from_store_buffer"
	PortRejectPortBusy       = "port.reject_port_busy"
	PortRejectMSHR           = "port.reject_mshr"
	PortRejectStoreConflict  = "port.reject_store_conflict"
	PortRejectBankConflict   = "port.reject_bank_conflict"
	PortSBInserts            = "port.sb_inserts"
	PortSBCombined           = "port.sb_combined"
	PortSBDrains             = "port.sb_drains"
	PortSBForwards           = "port.sb_forwards"
	PortLBHits               = "port.lb_hits"
	PortLBFills              = "port.lb_fills"
	PortLBInvalidations      = "port.lb_invalidations"
	PortRefillCycles         = "port.refill_cycles"
	PortPrefetches           = "port.prefetches"
	PortUsefulPrefetches     = "port.useful_prefetches"
)

// PortRejectNames lists every load-rejection counter, in reporting order.
// Consumers that need "total rejects" (the telemetry reject-rate
// histogram, diagnosis summaries) must sum these rather than hand-pick a
// subset that silently goes stale when a rejection reason is added.
var PortRejectNames = []string{
	PortRejectPortBusy,
	PortRejectMSHR,
	PortRejectStoreConflict,
	PortRejectBankConflict,
}

// PortRejects returns the total load rejections recorded in s, summed
// over every rejection reason.
func PortRejects(s *Set) uint64 {
	var total uint64
	for _, name := range PortRejectNames {
		total += s.Get(name)
	}
	return total
}

// ClassCounter names the per-instruction-class commit counter for an
// isa.Class string (e.g. "class.load"). The only data-dependent counter
// family next to GrantBucket; counterhygiene treats calls to these
// constructors as canonical names.
func ClassCounter(class string) string { return "class." + class }

// GrantBucket names the port-grant histogram counter for cycles that
// granted exactly n accesses.
func GrantBucket(n int) string { return fmt.Sprintf("port.cycles_with_%d_grants", n) }
