// Package stats provides the statistics machinery shared by the simulator:
// named counters, ratio helpers, bounded histograms, and plain-text table
// rendering used by the experiment harness to print paper-style tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Set is a collection of named counters. Counter names are created on first
// use; the zero value is not usable — construct with NewSet.
type Set struct {
	counters map[string]uint64
	order    []string
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]uint64)}
}

// Add increments the named counter by n, creating it if necessary.
func (s *Set) Add(name string, n uint64) {
	if _, ok := s.counters[name]; !ok {
		s.order = append(s.order, name)
	}
	s.counters[name] += n
}

// Inc increments the named counter by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the value of the named counter (zero if never touched).
func (s *Set) Get(name string) uint64 { return s.counters[name] }

// Names returns the counter names in creation order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// SafeRatio returns num/den, or 0 when den is exactly zero. Every rate the
// experiment harness renders (miss rates, mispredict rates, per-kI counts,
// IPC ratios) divides by a quantity that is zero precisely when the
// underlying counters never fired — a branch-free or memory-op-free cell —
// and 0, not NaN or +Inf, is the value a table should show for "no events".
func SafeRatio(num, den float64) float64 {
	if den == 0 { //portlint:ignore floatcmp a zero denominator is the exact no-events case, not a rounding artefact
		return 0
	}
	return num / den
}

// Ratio returns num/den as a float, with SafeRatio's no-events rule: 0 when
// the denominator counter never fired.
func (s *Set) Ratio(num, den string) float64 {
	return SafeRatio(float64(s.counters[num]), float64(s.counters[den]))
}

// Merge adds every counter of other into s.
func (s *Set) Merge(other *Set) {
	for _, name := range other.order {
		s.Add(name, other.counters[name])
	}
}

// String renders the set as "name=value" lines sorted by name, primarily for
// debugging and log output.
func (s *Set) String() string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, s.counters[n])
	}
	return b.String()
}

// Histogram is a fixed-range histogram of non-negative integer samples.
// Samples at or above the bucket count land in the overflow bucket.
type Histogram struct {
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      uint64
	max      uint64
}

// NewHistogram returns a histogram with buckets for values 0..n-1 and an
// overflow bucket for values >= n. It panics if n is not positive, since a
// histogram without buckets indicates a construction bug.
func NewHistogram(n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	return &Histogram{buckets: make([]uint64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if v < uint64(len(h.buckets)) {
		h.buckets[v]++
	} else {
		h.overflow++
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// ObserveN records n identical samples of value v in one step, exactly as n
// Observe(v) calls would. The event-driven clock uses it to log a whole
// skipped gap of zero-grant cycles without ticking through them.
func (h *Histogram) ObserveN(v, n uint64) {
	if n == 0 {
		return
	}
	if v < uint64(len(h.buckets)) {
		h.buckets[v] += n
	} else {
		h.overflow += n
	}
	h.count += n
	h.sum += v * n
	if v > h.max {
		h.max = v
	}
}

// Reset zeroes every bucket and summary statistic, restoring the
// just-constructed state while keeping the bucket array.
func (h *Histogram) Reset() {
	clear(h.buckets)
	h.overflow, h.count, h.sum, h.max = 0, 0, 0, 0
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest sample observed (zero when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of the samples (zero when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns the count of samples with value v, or the overflow count
// when v is outside the tracked range.
func (h *Histogram) Bucket(v uint64) uint64 {
	if v < uint64(len(h.buckets)) {
		return h.buckets[v]
	}
	return h.overflow
}

// Overflow returns the count of samples at or above the bucket range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Fraction returns the fraction of samples equal to v (overflow for v out of
// range); zero when the histogram is empty.
func (h *Histogram) Fraction(v uint64) float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.Bucket(v)) / float64(h.count)
}

// GeoMean returns the geometric mean of the values. Non-positive inputs make
// a geometric mean meaningless, so they are rejected by returning NaN; the
// experiment harness treats that as a configuration error.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Table accumulates rows and renders an aligned plain-text table, the output
// format for every reproduced figure and table.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row of pre-formatted cells. Short rows are padded with
// empty cells; long rows extend the column count.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row, formatting each cell with Cell.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.rows = append(t.rows, row)
}

// Cell formats a single value for table output: floats with three decimals,
// everything else via %v.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.3f", x)
	case float32:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Percent formats a fraction in [0,1] as a percentage with one decimal.
func Percent(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// CSV renders the table as RFC-4180-style comma-separated values (title as
// a comment line, header, then rows). Cells containing commas or quotes are
// quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "# %s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
