package diag

import (
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, EventFetch, 2, 3)
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if r.Len() != 0 || r.Total() != 0 || r.Depth() != 0 {
		t.Error("nil recorder reports non-zero sizes")
	}
	if ev := r.Events(); ev != nil {
		t.Errorf("nil recorder returned events: %v", ev)
	}
}

func TestRecorderKeepsOrderBeforeWrap(t *testing.T) {
	r := NewRecorder(8)
	for i := uint64(0); i < 5; i++ {
		r.Record(i, EventIssue, i, 0)
	}
	ev := r.Events()
	if len(ev) != 5 {
		t.Fatalf("len = %d, want 5", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != uint64(i) {
			t.Errorf("event %d has cycle %d", i, e.Cycle)
		}
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
}

func TestRecorderWrapsOldestFirst(t *testing.T) {
	r := NewRecorder(4)
	for i := uint64(0); i < 10; i++ {
		r.Record(i, EventCommit, i, 0)
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d, want 4", len(ev))
	}
	want := []uint64{6, 7, 8, 9}
	for i, e := range ev {
		if e.Cycle != want[i] {
			t.Errorf("event %d: cycle %d, want %d", i, e.Cycle, want[i])
		}
	}
	if r.Total() != 10 {
		t.Errorf("total = %d, want 10", r.Total())
	}
	if r.Len() != 4 || r.Depth() != 4 {
		t.Errorf("len/depth = %d/%d, want 4/4", r.Len(), r.Depth())
	}
}

// TestRecorderWraparoundCycleSorted is the regression test behind the trace
// exporter: the reassembled tail must come back in exact recording order —
// and therefore non-decreasing cycle order — at every possible ring phase,
// including bursts of same-cycle events that straddle the wrap point. Seq
// doubles as the recording sequence number, so any reassembly that splits
// the ring at the wrong slot shows up as a Seq discontinuity even where
// cycles tie.
func TestRecorderWraparoundCycleSorted(t *testing.T) {
	const depth = 8
	for n := 1; n <= 4*depth; n++ {
		r := NewRecorder(depth)
		for i := 0; i < n; i++ {
			// Three events per cycle: ties cross the wrap boundary at
			// most phases of n.
			r.Record(uint64(i/3), EventGrant, uint64(i), 0)
		}
		ev := r.Events()
		wantLen := n
		if wantLen > depth {
			wantLen = depth
		}
		if len(ev) != wantLen {
			t.Fatalf("n=%d: len = %d, want %d", n, len(ev), wantLen)
		}
		first := uint64(n - wantLen)
		for i, e := range ev {
			if want := first + uint64(i); e.Seq != want {
				t.Fatalf("n=%d: event %d has seq %d, want %d (tail out of recording order)", n, i, e.Seq, want)
			}
			if i > 0 && e.Cycle < ev[i-1].Cycle {
				t.Fatalf("n=%d: cycle regressed at event %d: %d after %d", n, i, e.Cycle, ev[i-1].Cycle)
			}
		}
		wantDropped := uint64(0)
		if n > depth {
			wantDropped = uint64(n - depth)
		}
		if r.Dropped() != wantDropped {
			t.Fatalf("n=%d: dropped = %d, want %d", n, r.Dropped(), wantDropped)
		}
	}
}

func TestDroppedNilAndUnwrapped(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Dropped() != 0 {
		t.Error("nil recorder reports drops")
	}
	r := NewRecorder(4)
	r.Record(1, EventFetch, 0, 0)
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d before wrap, want 0", r.Dropped())
	}
}

func TestEventsReturnsACopy(t *testing.T) {
	r := NewRecorder(4)
	r.Record(1, EventStall, 7, 0x40)
	ev := r.Events()
	r.Record(2, EventCommit, 8, 0)
	if len(ev) != 1 || ev[0].Cycle != 1 {
		t.Error("Events snapshot mutated by later Record")
	}
}

func TestDefaultDepthApplied(t *testing.T) {
	if d := NewRecorder(0).Depth(); d != DefaultDepth {
		t.Errorf("depth = %d, want %d", d, DefaultDepth)
	}
	if d := NewRecorder(-3).Depth(); d != DefaultDepth {
		t.Errorf("depth = %d, want %d", d, DefaultDepth)
	}
}

func TestKindStrings(t *testing.T) {
	for k := EventKind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if got := EventKind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestFormatEvents(t *testing.T) {
	r := NewRecorder(4)
	r.Record(12, EventGrant, 3, 0x1000)
	s := FormatEvents(r.Events())
	if !strings.Contains(s, "cycle 12") || !strings.Contains(s, "port-grant") {
		t.Errorf("formatted events missing fields:\n%s", s)
	}
	if empty := FormatEvents(nil); !strings.Contains(empty, "disabled") {
		t.Errorf("empty format = %q", empty)
	}
}
