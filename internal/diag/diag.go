// Package diag provides the simulator's flight recorder: a fixed-size ring
// buffer of recent pipeline events (fetch, issue, port grant, store drain,
// commit, stall, reject), each stamped with the simulated cycle. The
// recorder exists for failure forensics — when an experiment cell panics,
// wedges or blows its cycle deadline, the last few hundred events show what
// the pipeline was doing when it died, without re-running the simulation
// under a debugger.
//
// Recording is strictly passive (no simulation state is read back out of
// the recorder) and a nil *Recorder is a valid, disabled recorder: every
// method is nil-safe, so the hot simulation loop pays one pointer test per
// event site when the recorder is off. The experiment engine leaves it off
// by default and switches it on for fault-injection runs and `portbench
// -repro` replays.
package diag

import (
	"fmt"
	"strings"
)

// EventKind classifies one pipeline event.
type EventKind uint8

// Pipeline event kinds.
const (
	// EventFetch: an instruction entered the fetch buffer. Seq is its
	// fetch sequence number, Addr its PC.
	EventFetch EventKind = iota
	// EventIssue: an instruction started execution. Addr is its memory
	// address for loads/stores, zero otherwise.
	EventIssue
	// EventGrant: a load claimed a cache-port slot. Addr is the access
	// address.
	EventGrant
	// EventDrain: a store-buffer entry claimed a port slot for its cache
	// write. Seq is the entry's store-buffer sequence number, Addr the
	// chunk address.
	EventDrain
	// EventCommit: an instruction retired. Addr is its PC.
	EventCommit
	// EventStall: commit was blocked this cycle (head-of-ROB store could
	// not enter the store buffer). Seq is the blocked instruction, Addr
	// its store address.
	EventStall
	// EventReject: a load offered to the memory port was refused. Addr is
	// the access address.
	EventReject
	// EventCPI: the cycle-accounting classification changed bucket. Seq is
	// the new cpustack.Bucket index; Addr is unused. Recorded only on
	// transitions, so a traced cell's timeline carries one event per
	// attribution phase instead of one per cycle.
	EventCPI

	numKinds
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventFetch:
		return "fetch"
	case EventIssue:
		return "issue"
	case EventGrant:
		return "port-grant"
	case EventDrain:
		return "store-drain"
	case EventCommit:
		return "commit"
	case EventStall:
		return "commit-stall"
	case EventReject:
		return "port-reject"
	case EventCPI:
		return "cpi-bucket"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded pipeline event. The fields are fixed-width so
// recording never allocates.
type Event struct {
	// Cycle is the simulated cycle the event occurred on.
	Cycle uint64
	// Kind classifies the event.
	Kind EventKind
	// Seq is the instruction (or store-buffer entry) sequence number.
	Seq uint64
	// Addr is the PC or data address the event concerns, zero when the
	// event has no address.
	Addr uint64
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("cycle %d: %-11s seq=%d addr=%#x", e.Cycle, e.Kind, e.Seq, e.Addr)
}

// DefaultDepth is the ring capacity used when NewRecorder is given a
// non-positive depth. It comfortably exceeds the 64-event minimum a failure
// report promises while staying small enough to embed in error values.
const DefaultDepth = 256

// Recorder is the flight recorder: a fixed-capacity ring over Events. The
// zero of *Recorder (nil) is a disabled recorder; all methods tolerate it.
// A Recorder is not safe for concurrent use — each simulated core owns its
// own, matching the one-goroutine-per-simulation execution model.
//
// The ring invariant that the trace exporter depends on: event number n
// (zero-based, in recording order) lives at buf[n % depth]. Every derived
// quantity — length, write position, oldest retained event — is computed
// from the single monotonic counter total, so chronological reassembly
// after wraparound cannot disagree with the write path.
type Recorder struct {
	buf   []Event // full-length ring storage, indexed by total % depth
	total uint64  // events ever recorded
}

// NewRecorder returns a recorder retaining the last depth events
// (DefaultDepth when depth is not positive).
func NewRecorder(depth int) *Recorder {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Recorder{buf: make([]Event, depth)}
}

// Record appends one event, overwriting the oldest once the ring is full.
// It is a no-op on a nil recorder and never allocates.
func (r *Recorder) Record(cycle uint64, kind EventKind, seq, addr uint64) {
	if r == nil {
		return
	}
	r.buf[r.total%uint64(len(r.buf))] = Event{Cycle: cycle, Kind: kind, Seq: seq, Addr: addr}
	r.total++
}

// Enabled reports whether the recorder is live.
func (r *Recorder) Enabled() bool { return r != nil }

// Depth returns the ring capacity (zero when disabled).
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded, including overwritten
// ones.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns the number of events lost to ring wraparound, so a trace
// export can state exactly how much history precedes its first event.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	depth := uint64(len(r.buf))
	if r.total <= depth {
		return 0
	}
	return r.total - depth
}

// Events returns the retained events oldest-first, as a copy safe to hold
// after the recorder keeps recording. It returns nil on a disabled or empty
// recorder.
//
// Ordering: event n sits at buf[n % depth], so once the ring has wrapped,
// the oldest retained event (number total-depth) occupies the slot the next
// write would claim, buf[total % depth]. Splitting there yields the events
// in exact recording order — and therefore non-decreasing cycle order,
// since cycles only move forward while recording.
func (r *Recorder) Events() []Event {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	if r.total > uint64(len(r.buf)) {
		start := int(r.total % uint64(len(r.buf)))
		out = append(out, r.buf[start:]...)
		out = append(out, r.buf[:start]...)
		return out
	}
	return append(out, r.buf[:n]...)
}

// FormatEvents renders events one per line, for inclusion in failure
// reports.
func FormatEvents(events []Event) string {
	if len(events) == 0 {
		return "(no flight-recorder events; recorder disabled for this run)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "last %d flight-recorder events (oldest first):\n", len(events))
	for _, ev := range events {
		b.WriteString("  ")
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}
