package bpred

import (
	"testing"
	"testing/quick"

	"portsim/internal/config"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.train(false)
	}
	if c != 0 {
		t.Errorf("counter under-saturated to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.train(true)
	}
	if c != 3 {
		t.Errorf("counter over-saturated to %d", c)
	}
	if !c.taken() {
		t.Error("saturated-taken counter predicts not-taken")
	}
}

func TestCounterHysteresis(t *testing.T) {
	// A strongly-taken counter must survive one not-taken outcome.
	c := counter(3).train(false)
	if !c.taken() {
		t.Error("single not-taken flipped a strong counter")
	}
	if c.train(false).taken() {
		t.Error("two not-takens did not flip the counter")
	}
}

func TestStatic(t *testing.T) {
	var s Static
	if s.Predict(0x1000) {
		t.Error("static predictor predicted taken")
	}
	s.Update(0x1000, true) // must not panic
}

func TestBimodalLearnsAlwaysTaken(t *testing.T) {
	b, err := NewBimodal(64)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x4000)
	for i := 0; i < 4; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed to learn an always-taken branch")
	}
	other := uint64(0x4004)
	if b.Predict(other) {
		t.Error("training leaked to an unrelated, non-aliased branch")
	}
}

func TestBimodalAliasing(t *testing.T) {
	b, err := NewBimodal(16)
	if err != nil {
		t.Fatal(err)
	}
	// PCs 16 words apart alias in a 16-entry table.
	a, c := uint64(0x1000), uint64(0x1000+16*4)
	for i := 0; i < 4; i++ {
		b.Update(a, true)
	}
	if !b.Predict(c) {
		t.Error("aliased branches must share a counter")
	}
}

func TestBimodalRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -1, 3, 100} {
		if _, err := NewBimodal(n); err == nil {
			t.Errorf("NewBimodal(%d) accepted", n)
		}
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	g, err := NewGshare(1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A branch alternating T,NT,T,NT is unpredictable bimodally but
	// perfectly predictable with history. Train for a few periods, then
	// check accuracy over one more period.
	pc := uint64(0x8000)
	for i := 0; i < 200; i++ {
		g.Update(pc, i%2 == 0)
	}
	correct := 0
	for i := 200; i < 220; i++ {
		want := i%2 == 0
		if g.Predict(pc) == want {
			correct++
		}
		g.Update(pc, want)
	}
	if correct < 19 {
		t.Errorf("gshare predicted %d/20 of an alternating pattern", correct)
	}
}

func TestGshareRejectsBadConfig(t *testing.T) {
	if _, err := NewGshare(1000, 8); err == nil {
		t.Error("non-power-of-two table accepted")
	}
	if _, err := NewGshare(1024, 0); err == nil {
		t.Error("zero history accepted")
	}
	if _, err := NewGshare(1024, 31); err == nil {
		t.Error("oversized history accepted")
	}
}

func TestBTBHitAfterInsert(t *testing.T) {
	b, err := NewBTB(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(0x1000, 0x2000)
	if tgt, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 {
		t.Errorf("Lookup = (%#x,%v), want (0x2000,true)", tgt, ok)
	}
	if _, ok := b.Lookup(0x1004); ok {
		t.Error("lookup of never-inserted PC hit")
	}
}

func TestBTBUpdateExisting(t *testing.T) {
	b, _ := NewBTB(16, 2)
	b.Insert(0x1000, 0x2000)
	b.Insert(0x1000, 0x3000)
	if tgt, _ := b.Lookup(0x1000); tgt != 0x3000 {
		t.Errorf("target not updated, got %#x", tgt)
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	// 2-way, 2 sets => set = (pc>>2)&1. PCs 0x0, 0x8, 0x10 all map to set 0.
	b, err := NewBTB(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(0x0, 0xa)
	b.Insert(0x8, 0xb)
	b.Lookup(0x0) // make 0x0 most recent
	b.Insert(0x10, 0xc)
	if _, ok := b.Lookup(0x8); ok {
		t.Error("LRU entry 0x8 survived replacement")
	}
	if _, ok := b.Lookup(0x0); !ok {
		t.Error("MRU entry 0x0 was evicted")
	}
	if tgt, ok := b.Lookup(0x10); !ok || tgt != 0xc {
		t.Error("newly inserted entry missing")
	}
}

func TestBTBDisabled(t *testing.T) {
	b, err := NewBTB(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(0x1000, 0x2000)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("disabled BTB returned a hit")
	}
}

func TestBTBRejectsBadGeometry(t *testing.T) {
	if _, err := NewBTB(10, 3); err == nil {
		t.Error("entries not divisible by ways accepted")
	}
	if _, err := NewBTB(24, 2); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	for _, a := range []uint64{1, 2, 3} {
		r.Push(a)
	}
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop of empty RAS succeeded")
	}
}

func TestRASOverflowOverwritesOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if got, _ := r.Pop(); got != 3 {
		t.Errorf("first pop = %d, want 3", got)
	}
	if got, _ := r.Pop(); got != 2 {
		t.Errorf("second pop = %d, want 2", got)
	}
	if _, ok := r.Pop(); ok {
		t.Error("overwritten entry resurfaced")
	}
}

func TestRASDisabled(t *testing.T) {
	r := NewRAS(0)
	r.Push(5)
	if _, ok := r.Pop(); ok {
		t.Error("zero-depth RAS returned an entry")
	}
}

// TestRASMatchesReference property: against an unbounded reference stack,
// the RAS agrees on every pop as long as its depth was never exceeded by the
// live stack depth since the popped entry was pushed. We check the simpler,
// still strong property: with a deep RAS (depth >= pushes), behaviour is
// exactly a stack.
func TestRASMatchesReference(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRAS(len(ops) + 1)
		var ref []uint64
		for i, op := range ops {
			if op%3 != 0 { // push twice as often as pop
				v := uint64(i) + 100
				r.Push(v)
				ref = append(ref, v)
			} else {
				got, ok := r.Pop()
				if len(ref) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := ref[len(ref)-1]
				ref = ref[:len(ref)-1]
				if !ok || got != want {
					return false
				}
			}
		}
		return r.Depth() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewUnitFromConfig(t *testing.T) {
	cfg := config.Baseline().Pred
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Dir.(*Gshare); !ok {
		t.Errorf("baseline predictor is %T, want *Gshare", u.Dir)
	}
	if u.BTB == nil || u.RAS == nil {
		t.Error("unit missing BTB or RAS")
	}
	for _, kind := range []string{"static", "bimodal"} {
		c := cfg
		c.Kind = kind
		if _, err := New(c); err != nil {
			t.Errorf("kind %q rejected: %v", kind, err)
		}
	}
	bad := cfg
	bad.Kind = "neural"
	if _, err := New(bad); err == nil {
		t.Error("unknown predictor kind accepted")
	}
	bad = cfg
	bad.BTBEntries, bad.BTBAssoc = 10, 3
	if _, err := New(bad); err == nil {
		t.Error("bad BTB geometry accepted")
	}
	bad = cfg
	bad.TableEntries = 1000
	if _, err := New(bad); err == nil {
		t.Error("bad table size accepted")
	}
}

func TestGshareBeatsBimodalOnCorrelated(t *testing.T) {
	// Sanity check the motivation for the baseline predictor: on a
	// history-correlated pattern, gshare should beat bimodal clearly.
	g, _ := NewGshare(4096, 10)
	b, _ := NewBimodal(4096)
	pc := uint64(0x100)
	pattern := []bool{true, true, false, true, false, false}
	gc, bc := 0, 0
	n := 3000
	for i := 0; i < n; i++ {
		want := pattern[i%len(pattern)]
		if g.Predict(pc) == want {
			gc++
		}
		if b.Predict(pc) == want {
			bc++
		}
		g.Update(pc, want)
		b.Update(pc, want)
	}
	if gc <= bc {
		t.Errorf("gshare (%d/%d) did not beat bimodal (%d/%d) on a periodic pattern", gc, n, bc, n)
	}
	if float64(gc)/float64(n) < 0.9 {
		t.Errorf("gshare accuracy %.2f too low on a learnable pattern", float64(gc)/float64(n))
	}
}
