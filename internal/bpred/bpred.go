// Package bpred implements the branch prediction structures of the simulated
// front end: two-bit saturating-counter direction predictors (bimodal and
// gshare), a set-associative branch target buffer, and a return-address
// stack. The paper's processor model follows the MIPS R10000's dynamic
// prediction; prediction accuracy matters to the port study because
// mispredictions throttle the memory-reference rate reaching the cache port.
package bpred

import (
	"fmt"

	"portsim/internal/config"
)

// DirPredictor predicts conditional-branch directions and learns from
// resolved outcomes.
type DirPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome of the branch
	// at pc. Implementations must be called in program order.
	Update(pc uint64, taken bool)
	// Reset restores the predictor to its just-constructed state, so a
	// pooled simulation can reuse its tables for a fresh run.
	Reset()
}

// counter is a two-bit saturating counter: 0,1 predict not-taken; 2,3
// predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) train(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Static is the trivial predictor: backward taken, forward not-taken is not
// representable without the target, so it predicts not-taken always. It is
// the degenerate baseline used in predictor-sensitivity tests.
type Static struct{}

// Predict always predicts not-taken.
func (Static) Predict(uint64) bool { return false }

// Update is a no-op.
func (Static) Update(uint64, bool) {}

// Reset is a no-op.
func (Static) Reset() {}

// Bimodal is a per-branch table of two-bit counters indexed by PC.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal returns a bimodal predictor with the given table size (must be
// a power of two).
func NewBimodal(entries int) (*Bimodal, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: bimodal table size %d not a power of two", entries)
	}
	t := make([]counter, entries)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}, nil
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements DirPredictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].train(taken)
}

// Reset implements DirPredictor: every counter returns to weakly not-taken,
// exactly as NewBimodal left it.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 1
	}
}

// Gshare XORs a global branch-history register with the PC to index a shared
// table of two-bit counters. This is the predictor configuration of the
// baseline machine.
type Gshare struct {
	table    []counter
	mask     uint64
	history  uint64
	histMask uint64
}

// NewGshare returns a gshare predictor with the given table size (power of
// two) and global-history length in bits.
func NewGshare(entries, historyBits int) (*Gshare, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: gshare table size %d not a power of two", entries)
	}
	if historyBits < 1 || historyBits > 30 {
		return nil, fmt.Errorf("bpred: gshare history length %d out of range", historyBits)
	}
	t := make([]counter, entries)
	for i := range t {
		t[i] = 1
	}
	return &Gshare{
		table:    t,
		mask:     uint64(entries - 1),
		histMask: (1 << historyBits) - 1,
	}, nil
}

func (g *Gshare) index(pc uint64) uint64 { return ((pc >> 2) ^ g.history) & g.mask }

// Predict implements DirPredictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements DirPredictor. The global history is updated with the
// actual outcome (the model trains at resolution, in program order).
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].train(taken)
	g.history = (g.history << 1) & g.histMask
	if taken {
		g.history |= 1
	}
}

// Reset implements DirPredictor: counters return to weakly not-taken and
// the global history clears, exactly as NewGshare left them.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 1
	}
	g.history = 0
}

// btbEntry is one BTB way.
type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
	lru    uint64
}

// BTB is a set-associative branch target buffer with true-LRU replacement.
// The front end consults it to redirect fetch on predicted-taken branches;
// a taken prediction without a BTB hit cannot be redirected and costs the
// same bubble as a misprediction.
type BTB struct {
	sets    [][]btbEntry
	setMask uint64
	clock   uint64
}

// NewBTB returns a BTB with the given total entries and associativity.
func NewBTB(entries, assoc int) (*BTB, error) {
	if entries == 0 {
		return &BTB{}, nil // disabled: every lookup misses
	}
	if assoc <= 0 || entries%assoc != 0 {
		return nil, fmt.Errorf("bpred: BTB %d entries / %d ways invalid", entries, assoc)
	}
	nsets := entries / assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("bpred: BTB set count %d not a power of two", nsets)
	}
	sets := make([][]btbEntry, nsets)
	for i := range sets {
		sets[i] = make([]btbEntry, assoc)
	}
	return &BTB{sets: sets, setMask: uint64(nsets - 1)}, nil
}

// Lookup returns the stored target for pc and whether it was present.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	if len(b.sets) == 0 {
		return 0, false
	}
	set := b.sets[(pc>>2)&b.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			b.clock++
			set[i].lru = b.clock
			return set[i].target, true
		}
	}
	return 0, false
}

// Insert records the target of the branch at pc, replacing the LRU way.
func (b *BTB) Insert(pc, target uint64) {
	if len(b.sets) == 0 {
		return
	}
	set := b.sets[(pc>>2)&b.setMask]
	b.clock++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].target = target
			set[i].lru = b.clock
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{tag: pc, target: target, valid: true, lru: b.clock}
}

// Reset empties the BTB, restoring its just-constructed state.
func (b *BTB) Reset() {
	for _, set := range b.sets {
		clear(set)
	}
	b.clock = 0
}

// RAS is a return-address stack with wrap-around overwrite on overflow, as
// in real hardware: pushing onto a full stack silently overwrites the oldest
// entry, and popping an empty stack returns a miss.
type RAS struct {
	stack []uint64
	top   int // number of live entries, saturates at len(stack)
	pos   int // next push index
}

// NewRAS returns a return-address stack of the given depth; depth zero
// disables it (every Pop misses).
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint64, depth)}
}

// Push records a return address.
func (r *RAS) Push(addr uint64) {
	if len(r.stack) == 0 {
		return
	}
	r.stack[r.pos] = addr
	r.pos = (r.pos + 1) % len(r.stack)
	if r.top < len(r.stack) {
		r.top++
	}
}

// Pop returns the most recent return address and whether one was available.
func (r *RAS) Pop() (uint64, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.pos = (r.pos - 1 + len(r.stack)) % len(r.stack)
	r.top--
	return r.stack[r.pos], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.top }

// Reset empties the stack, restoring its just-constructed state.
func (r *RAS) Reset() {
	clear(r.stack)
	r.top = 0
	r.pos = 0
}

// Unit bundles a direction predictor, BTB and RAS as configured, and is the
// interface the fetch stage uses.
type Unit struct {
	Dir DirPredictor
	BTB *BTB
	RAS *RAS
}

// Reset restores the whole unit to its just-constructed state, so a pooled
// simulation reuses the (potentially large) predictor tables instead of
// reallocating them per run.
func (u *Unit) Reset() {
	u.Dir.Reset()
	u.BTB.Reset()
	u.RAS.Reset()
}

// New builds a prediction unit from configuration. The configuration is
// assumed validated (config.Machine.Validate); invalid geometry still
// returns an error rather than panicking.
func New(cfg config.Predictor) (*Unit, error) {
	var dir DirPredictor
	var err error
	switch cfg.Kind {
	case "static":
		dir = Static{}
	case "bimodal":
		dir, err = NewBimodal(cfg.TableEntries)
	case "gshare":
		dir, err = NewGshare(cfg.TableEntries, cfg.HistoryBits)
	default:
		err = fmt.Errorf("bpred: unknown predictor kind %q", cfg.Kind)
	}
	if err != nil {
		return nil, err
	}
	btb, err := NewBTB(cfg.BTBEntries, cfg.BTBAssoc)
	if err != nil {
		return nil, err
	}
	return &Unit{Dir: dir, BTB: btb, RAS: NewRAS(cfg.RASEntries)}, nil
}
