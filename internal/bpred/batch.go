package bpred

import "portsim/internal/isa"

// Op is one control instruction of a fetch group presented to PredictGroup:
// the trace coordinates the predictors need going in, and the prediction
// outcome coming out. Index is caller-owned (the fetch stage records the
// op's position within its group) and is not interpreted here.
type Op struct {
	PC     uint64
	Target uint64
	Class  isa.Class
	Taken  bool
	Index  int

	// Outcome, filled by PredictGroup.
	Mispredicted bool
	Serialize    bool
}

// PredictGroup runs the front-end predictors over the control instructions
// of one fetch group, in program order, performing exactly the predictor
// reads and updates that repeated per-instruction prediction would: the
// direction predictor, the BTB (whose lookups bump LRU state, so even a
// hit mutates) and the RAS see the identical operation sequence. It stops
// after the first group-ending op — one that mispredicted or serialises —
// because the instructions behind it are not fetched this cycle and must
// not train. Returns the number of ops processed; only the last processed
// op can carry an outcome flag.
//
//portlint:hotpath
func (u *Unit) PredictGroup(ops []Op) int {
	for i := range ops {
		op := &ops[i]
		switch op.Class {
		case isa.Branch:
			predTaken := u.Dir.Predict(op.PC)
			if predTaken != op.Taken {
				op.Mispredicted = true
			} else if op.Taken {
				// Direction right, but fetch can only redirect with a
				// target from the BTB.
				tgt, ok := u.BTB.Lookup(op.PC)
				if !ok || tgt != op.Target {
					op.Mispredicted = true
				}
			}
			u.Dir.Update(op.PC, op.Taken)
			if op.Taken {
				u.BTB.Insert(op.PC, op.Target)
			}
		case isa.Jump:
			tgt, ok := u.BTB.Lookup(op.PC)
			if !ok || tgt != op.Target {
				op.Mispredicted = true
			}
			u.BTB.Insert(op.PC, op.Target)
		case isa.Call:
			tgt, ok := u.BTB.Lookup(op.PC)
			if !ok || tgt != op.Target {
				op.Mispredicted = true
			}
			u.BTB.Insert(op.PC, op.Target)
			u.RAS.Push(op.PC + 4)
		case isa.Return:
			tgt, ok := u.RAS.Pop()
			if !ok || tgt != op.Target {
				op.Mispredicted = true
			}
		case isa.Syscall:
			// Kernel entry serialises the pipeline.
			op.Serialize = true
		}
		if op.Mispredicted || op.Serialize {
			return i + 1
		}
	}
	return len(ops)
}
