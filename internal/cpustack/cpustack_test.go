package cpustack

import (
	"regexp"
	"testing"
)

// TestNilStackIsDisabled pins the nil-recorder discipline: every method on
// a nil *Stack is a safe no-op, so the disabled path needs no branches
// beyond the pointer test callers already do.
func TestNilStackIsDisabled(t *testing.T) {
	var s *Stack
	s.Charge(Useful, 10)
	s.Reset()
	if s.Total() != 0 || s.Get(Useful) != 0 {
		t.Error("nil stack reports charges")
	}
	if s.Snapshot() != nil {
		t.Error("nil stack snapshots non-nil")
	}
}

// TestChargeAndSnapshot checks accumulation, freezing, and reset.
func TestChargeAndSnapshot(t *testing.T) {
	s := NewStack()
	s.Charge(Useful, 3)
	s.Charge(MemFillWait, 2)
	s.Charge(Useful, 1)
	s.Charge(StoreBufferFull, 0) // zero charge is a no-op
	if got := s.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	snap := s.Snapshot()
	if snap.Get(Useful) != 4 || snap.Get(MemFillWait) != 2 {
		t.Fatalf("snapshot %v", snap.Buckets)
	}
	if err := snap.CheckConservation(6); err != nil {
		t.Fatal(err)
	}
	if err := snap.CheckConservation(7); err == nil {
		t.Fatal("conservation check accepted a leak")
	}
	s.Reset()
	if s.Total() != 0 {
		t.Error("reset stack still charged")
	}
	if snap.Total() != 6 {
		t.Error("reset mutated an existing snapshot")
	}
}

// TestNamesRoundTrip pins the name tables: every bucket has a distinct
// dotted name that resolves back, a metric-safe spelling, and a group.
func TestNamesRoundTrip(t *testing.T) {
	metricRe := regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	seen := map[string]bool{}
	for b := Bucket(0); b < NumBuckets; b++ {
		name := b.String()
		if name == "" || seen[name] {
			t.Fatalf("bucket %d: empty or duplicate name %q", b, name)
		}
		seen[name] = true
		back, ok := BucketByName(name)
		if !ok || back != b {
			t.Errorf("BucketByName(%q) = %v, %v; want %v, true", name, back, ok, b)
		}
		if !metricRe.MatchString(b.MetricName()) {
			t.Errorf("metric name %q for %s is not metric-safe", b.MetricName(), name)
		}
		if b.Group() == "" {
			t.Errorf("bucket %s has no group", name)
		}
	}
	if _, ok := BucketByName("no-such-bucket"); ok {
		t.Error("BucketByName accepted an unknown name")
	}
	if got := len(Names()); got != int(NumBuckets) {
		t.Errorf("Names() has %d entries, want %d", got, NumBuckets)
	}
}

// TestMapRoundTrip checks the manifest form: zero buckets are omitted,
// unknown names are rejected, and known ones restore exactly.
func TestMapRoundTrip(t *testing.T) {
	s := NewStack()
	s.Charge(Useful, 5)
	s.Charge(IssuePortReject, 7)
	m := s.Snapshot().Map()
	if len(m) != 2 {
		t.Fatalf("Map kept zero buckets: %v", m)
	}
	back, err := FromMap(m)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *s.Snapshot() {
		t.Fatalf("roundtrip mismatch: %v vs %v", back.Buckets, s.Snapshot().Buckets)
	}
	if _, err := FromMap(map[string]uint64{"bogus": 1}); err == nil {
		t.Error("FromMap accepted an unknown bucket")
	}
	if snap, err := FromMap(nil); snap != nil || err != nil {
		t.Error("FromMap(nil) should be (nil, nil)")
	}
	var nilSnap *Snapshot
	if nilSnap.Map() != nil {
		t.Error("nil snapshot maps non-nil")
	}
}
