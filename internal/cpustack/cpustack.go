// Package cpustack defines the simulator's cycle-accounting taxonomy: a
// leveled set of attribution buckets (useful work, front-end starvation,
// issue-blocked causes, memory-system waits, store-buffer back-pressure,
// commit latency) plus the conservation law that makes a CPI stack
// trustworthy — every simulated cycle lands in exactly one bucket, so the
// bucket sum equals the cycle count, exactly, whether the core stepped
// every cycle or fast-forwarded over inert gaps.
//
// The package is deliberately tiny and dependency-free: the model
// (internal/cpu) charges buckets on its own decision points, the
// presentation layers (internal/telemetry, cmd/portbench) read snapshots.
// Like internal/diag, a nil *Stack is the disabled state and costs the hot
// loop nothing but a pointer test; an armed stack costs one atomic add per
// attributed span and never allocates.
package cpustack

import (
	"fmt"
	"sync/atomic"
)

// Bucket identifies one leaf of the attribution taxonomy.
type Bucket uint8

// The taxonomy. Leveled: the issue.* buckets decompose "issue-blocked",
// the mem.* buckets decompose "waiting on the memory system". The order
// here is the reporting order everywhere (tables, manifests, /metrics,
// Perfetto tracks).
const (
	// Useful — at least one instruction committed this cycle.
	Useful Bucket = iota
	// FetchStarved — the reorder buffer was empty: the front end (fetch
	// stall, redirect bubble, instruction-cache miss) starved the back end.
	FetchStarved
	// IssuePortReject — a ready load offered to the cache port was
	// refused for a structural reason other than MSHR exhaustion: port
	// busy, bank conflict, or an overlapping buffered store.
	IssuePortReject
	// IssueOperandWait — the oldest instruction was still waiting for
	// operands (or address generation) and nothing above applied.
	IssueOperandWait
	// IssueDivider — the oldest instruction needed the unpipelined
	// multiply/divide unit: either executing on it or queued behind it.
	IssueDivider
	// MemMSHRFull — a ready load was refused because every miss-status
	// register was in flight.
	MemMSHRFull
	// MemDRAMBandwidth — the oldest instruction was a memory operation in
	// flight while the DRAM channel was busy (bandwidth, not latency).
	MemDRAMBandwidth
	// MemFillWait — the oldest instruction was a memory operation in
	// flight waiting on a cache fill or forward with the channel idle.
	MemFillWait
	// StoreBufferFull — the completed store at the head of the reorder
	// buffer could not commit because the store buffer refused it, or the
	// end-of-run drain was flushing buffered stores.
	StoreBufferFull
	// CommitStall — the oldest instruction had executed (or was in its
	// last execution cycles) and the machine was waiting out the
	// completion-to-commit latency.
	CommitStall
	// SkippedInert — a fast-forwarded gap the gap classifier could not
	// attribute to a specific head-of-ROB cause. Kept as its own bucket so
	// an attribution hole is visible instead of polluting a named cause.
	SkippedInert

	// NumBuckets is the bucket count; valid buckets are < NumBuckets.
	NumBuckets
)

// names is the canonical dotted spelling, index-aligned with the Bucket
// constants.
var names = [NumBuckets]string{
	"useful",
	"fetch-starved",
	"issue.port-reject",
	"issue.operand-wait",
	"issue.divider",
	"mem.mshr-full",
	"mem.dram-bandwidth",
	"mem.fill-wait",
	"store-buffer-full",
	"commit-stall",
	"skipped-inert",
}

// metricNames is the Prometheus-safe spelling ([a-z0-9_] only),
// index-aligned with the Bucket constants.
var metricNames = [NumBuckets]string{
	"useful",
	"fetch_starved",
	"issue_port_reject",
	"issue_operand_wait",
	"issue_divider",
	"mem_mshr_full",
	"mem_dram_bandwidth",
	"mem_fill_wait",
	"store_buffer_full",
	"commit_stall",
	"skipped_inert",
}

// String returns the canonical dotted bucket name.
func (b Bucket) String() string {
	if b >= NumBuckets {
		return fmt.Sprintf("bucket(%d)", uint8(b))
	}
	return names[b]
}

// MetricName returns the bucket name restricted to the metric-name
// charset, for /metrics series like portsim_cpi_mem_fill_wait_cycles_total.
func (b Bucket) MetricName() string { return metricNames[b] }

// Group returns the bucket's top taxonomy level: the issue.* buckets
// report "issue", the mem.* buckets "memory", everything else itself.
func (b Bucket) Group() string {
	switch b {
	case IssuePortReject, IssueOperandWait, IssueDivider:
		return "issue"
	case MemMSHRFull, MemDRAMBandwidth, MemFillWait:
		return "memory"
	default:
		return b.String()
	}
}

// BucketByName resolves a canonical dotted name back to its Bucket.
func BucketByName(name string) (Bucket, bool) {
	for b := Bucket(0); b < NumBuckets; b++ {
		if names[b] == name {
			return b, true
		}
	}
	return 0, false
}

// Names returns the canonical bucket names in reporting order.
func Names() []string {
	out := make([]string, NumBuckets)
	copy(out, names[:])
	return out
}

// Stack is a live cycle-attribution accumulator. The zero value is ready
// to use; a nil *Stack is the disabled state — every method is nil-safe,
// so callers keep the one-pointer-test discipline of internal/diag. The
// counters are atomics so a telemetry scrape (the /campaign endpoint) can
// snapshot a stack that a simulation worker is still charging.
type Stack struct {
	buckets [NumBuckets]atomic.Uint64
}

// NewStack returns an empty stack.
func NewStack() *Stack { return new(Stack) }

// Charge attributes n cycles to bucket b. No-op on a nil stack.
func (s *Stack) Charge(b Bucket, n uint64) {
	if s == nil || n == 0 {
		return
	}
	s.buckets[b].Add(n)
}

// Get returns the cycles charged to bucket b so far.
func (s *Stack) Get(b Bucket) uint64 {
	if s == nil {
		return 0
	}
	return s.buckets[b].Load()
}

// Total returns the cycles charged across every bucket.
func (s *Stack) Total() uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for b := range s.buckets {
		total += s.buckets[b].Load()
	}
	return total
}

// Snapshot freezes the stack into a plain value. Returns nil on a nil
// stack, so the snapshot of a disabled run stays "no data" rather than a
// stack of zeroes.
func (s *Stack) Snapshot() *Snapshot {
	if s == nil {
		return nil
	}
	var snap Snapshot
	for b := range s.buckets {
		snap.Buckets[b] = s.buckets[b].Load()
	}
	return &snap
}

// Reset zeroes every bucket (pooled-core reuse).
func (s *Stack) Reset() {
	if s == nil {
		return
	}
	for b := range s.buckets {
		s.buckets[b].Store(0)
	}
}

// Snapshot is a frozen CPI stack: plain counters, safe to copy, compare
// and serialise.
type Snapshot struct {
	Buckets [NumBuckets]uint64
}

// Get returns the cycles attributed to bucket b.
func (s *Snapshot) Get(b Bucket) uint64 { return s.Buckets[b] }

// Total returns the sum over every bucket.
func (s *Snapshot) Total() uint64 {
	var total uint64
	for _, v := range s.Buckets {
		total += v
	}
	return total
}

// CheckConservation verifies the invariant that makes a CPI stack
// meaningful: the buckets partition the run's cycles, so their sum equals
// the cycle count exactly.
func (s *Snapshot) CheckConservation(cycles uint64) error {
	if got := s.Total(); got != cycles {
		return fmt.Errorf("cpustack: buckets sum to %d cycles, run took %d (leak %+d)",
			got, cycles, int64(got)-int64(cycles))
	}
	return nil
}

// Map renders the snapshot as name → cycles, omitting empty buckets.
// This is the manifest's cpi_stack form.
func (s *Snapshot) Map() map[string]uint64 {
	if s == nil {
		return nil
	}
	out := make(map[string]uint64)
	for b := Bucket(0); b < NumBuckets; b++ {
		if s.Buckets[b] > 0 {
			out[names[b]] = s.Buckets[b]
		}
	}
	return out
}

// FromMap rebuilds a snapshot from its Map form, rejecting unknown bucket
// names so a manifest or stored cell written by an incompatible build
// fails loudly instead of silently dropping cycles.
func FromMap(m map[string]uint64) (*Snapshot, error) {
	if m == nil {
		return nil, nil
	}
	var snap Snapshot
	for name, v := range m {
		b, ok := BucketByName(name)
		if !ok {
			return nil, fmt.Errorf("cpustack: unknown bucket %q", name)
		}
		snap.Buckets[b] = v
	}
	return &snap, nil
}
