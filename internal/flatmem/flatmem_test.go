package flatmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := New()
	b := []byte{1, 2, 3}
	m.ReadAt(0x123456, b)
	if !bytes.Equal(b, []byte{0, 0, 0}) {
		t.Errorf("untouched memory read %v, want zeros", b)
	}
}

func TestRoundTrip(t *testing.T) {
	m := New()
	m.WriteAt(0x1000, []byte{1, 2, 3, 4})
	got := make([]byte, 4)
	m.ReadAt(0x1000, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("round trip = %v", got)
	}
}

func TestOverwrite(t *testing.T) {
	m := New()
	m.WriteAt(8, []byte{1, 1, 1, 1})
	m.WriteAt(9, []byte{7, 7})
	got := make([]byte, 4)
	m.ReadAt(8, got)
	if !bytes.Equal(got, []byte{1, 7, 7, 1}) {
		t.Errorf("overwrite = %v, want [1 7 7 1]", got)
	}
}

func TestCrossesPages(t *testing.T) {
	m := New()
	addr := uint64(PageBytes) - 2 // straddles page 0 / page 1
	m.WriteAt(addr, []byte{9, 8, 7, 6})
	got := make([]byte, 4)
	m.ReadAt(addr, got)
	if !bytes.Equal(got, []byte{9, 8, 7, 6}) {
		t.Errorf("page-crossing round trip = %v", got)
	}
	b := make([]byte, 1)
	m.ReadAt(addr+100, b)
	if b[0] != 0 {
		t.Error("unwritten byte on touched page not zero")
	}
}

func TestSpanLongerThanPage(t *testing.T) {
	m := New()
	big := make([]byte, 3*PageBytes)
	for i := range big {
		big[i] = byte(i)
	}
	m.WriteAt(100, big)
	got := make([]byte, len(big))
	m.ReadAt(100, got)
	if !bytes.Equal(got, big) {
		t.Error("multi-page span corrupted")
	}
}

// TestMatchesMap property: Mem behaves as a byte map for arbitrary write
// sequences.
func TestMatchesMap(t *testing.T) {
	type op struct {
		Addr uint32
		Data []byte
	}
	f := func(ops []op) bool {
		m := New()
		ref := map[uint64]byte{}
		for _, o := range ops {
			if len(o.Data) == 0 || len(o.Data) > 100 {
				continue
			}
			m.WriteAt(uint64(o.Addr), o.Data)
			for i, b := range o.Data {
				ref[uint64(o.Addr)+uint64(i)] = b
			}
		}
		for a, want := range ref {
			got := make([]byte, 1)
			m.ReadAt(a, got)
			if got[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
