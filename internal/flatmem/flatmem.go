// Package flatmem provides a sparse byte-addressable memory used as the
// reference model in correctness tests and as the backing store of
// functional caches. It sits at the bottom of the package graph so both
// internal/cache and internal/mem can depend on it.
package flatmem

// pageBits sizes the lazily allocated pages.
const pageBits = 12

// Mem is a sparse byte-addressable memory. All bytes read as zero until
// written. The zero value is not usable; construct with New.
type Mem struct {
	pages map[uint64]*[1 << pageBits]byte
}

// New returns an empty memory.
func New() *Mem {
	return &Mem{pages: make(map[uint64]*[1 << pageBits]byte)}
}

func (m *Mem) page(addr uint64, create bool) *[1 << pageBits]byte {
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && create {
		p = new([1 << pageBits]byte)
		m.pages[key] = p
	}
	return p
}

// ReadAt copies len(p) bytes starting at addr into p.
func (m *Mem) ReadAt(addr uint64, p []byte) {
	for len(p) > 0 {
		off := addr & (1<<pageBits - 1)
		n := int(min(uint64(len(p)), 1<<pageBits-off))
		pg := m.page(addr, false)
		if pg == nil {
			clear(p[:n])
		} else {
			copy(p[:n], pg[off:])
		}
		p = p[n:]
		addr += uint64(n)
	}
}

// WriteAt copies p into the memory starting at addr.
func (m *Mem) WriteAt(addr uint64, p []byte) {
	for len(p) > 0 {
		off := addr & (1<<pageBits - 1)
		n := int(min(uint64(len(p)), 1<<pageBits-off))
		pg := m.page(addr, true)
		copy(pg[off:], p[:n])
		p = p[n:]
		addr += uint64(n)
	}
}

// PageBytes is the allocation granularity, exported for tests that want to
// exercise page-boundary behaviour.
const PageBytes = 1 << pageBits
