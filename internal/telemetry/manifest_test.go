package telemetry

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"portsim/internal/cellstore"
)

func sampleCampaign() *Campaign {
	reg := NewRegistry()
	c := NewCampaign(reg, 4)
	c.CellDone(CellSample{
		Machine: "baseline-1port", Workload: "compress", ConfigJSON: []byte(`{"ports":1}`),
		WallSeconds: 0.5, Cycles: 10_000, Insts: 8_000,
		PortUtilization: 0.4, PortRejectRate: 0.2,
	})
	c.CellDone(CellSample{
		Machine: "baseline-1port", Workload: "compress", ConfigJSON: []byte(`{"ports":1}`),
		MemoHit: true, Cycles: 10_000, Insts: 8_000,
		PortUtilization: 0.4, PortRejectRate: 0.2,
	})
	c.CellDone(CellSample{
		Machine: "2-port", Workload: "eqntott", ConfigJSON: []byte(`{"ports":2}`),
		WallSeconds: 0.25, Cycles: 5_000, Insts: 4_500,
		PortUtilization: 0.3, PortRejectRate: 0.05,
	})
	c.CellDone(CellSample{
		Machine: "2-port", Workload: "compress", ConfigJSON: []byte(`{"ports":2}`),
		Failed: true, Error: "experiments: deadline exceeded",
		PortUtilization: -1, PortRejectRate: -1,
	})
	return c
}

func sampleInfo() ManifestInfo {
	return ManifestInfo{
		CreatedAt:   time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Command:     []string{"portbench", "-quick"},
		Seed:        42,
		Insts:       40_000,
		Workloads:   []string{"compress", "eqntott"},
		Parallel:    4,
		Experiments: []string{"T2", "F1"},
		BenchJSON:   "BENCH_ci.json",
		WallSeconds: 1.5,
	}
}

func TestBuildManifestValidatesAndSorts(t *testing.T) {
	m := sampleCampaign().BuildManifest(sampleInfo())
	if err := m.Validate(); err != nil {
		t.Fatalf("built manifest invalid: %v", err)
	}
	if m.Totals.Cells != 4 || m.Totals.Failed != 1 || m.Totals.MemoHits != 1 {
		t.Errorf("totals = %+v", m.Totals)
	}
	if m.Totals.SimCycles != 15_000 || m.Totals.SimInsts != 12_500 {
		t.Errorf("sim totals = %d/%d, want 15000/12500", m.Totals.SimCycles, m.Totals.SimInsts)
	}
	// Sorted by workload, then machine; the memoised duplicate follows its
	// simulated twin.
	wantOrder := []string{
		"compress/2-port", "compress/baseline-1port", "compress/baseline-1port", "eqntott/2-port",
	}
	for i, cell := range m.Cells {
		if got := cell.Workload + "/" + cell.Machine; got != wantOrder[i] {
			t.Errorf("cell %d = %s, want %s", i, got, wantOrder[i])
		}
	}
	if m.Cells[1].MemoHit || !m.Cells[2].MemoHit {
		t.Error("simulated cell does not precede its memoised duplicate")
	}
	if m.ConfigHash == "" || m.Cells[0].ConfigHash == "" {
		t.Error("missing config hashes")
	}
}

// TestManifestOrderInsensitive pins determinism: the same cells arriving
// in a different completion order must produce an identical manifest.
func TestManifestOrderInsensitive(t *testing.T) {
	a := sampleCampaign().BuildManifest(sampleInfo())

	reg := NewRegistry()
	c := NewCampaign(reg, 4)
	c.CellDone(CellSample{
		Machine: "2-port", Workload: "compress", ConfigJSON: []byte(`{"ports":2}`),
		Failed: true, Error: "experiments: deadline exceeded",
		PortUtilization: -1, PortRejectRate: -1,
	})
	c.CellDone(CellSample{
		Machine: "2-port", Workload: "eqntott", ConfigJSON: []byte(`{"ports":2}`),
		WallSeconds: 0.25, Cycles: 5_000, Insts: 4_500,
		PortUtilization: 0.3, PortRejectRate: 0.05,
	})
	c.CellDone(CellSample{
		Machine: "baseline-1port", Workload: "compress", ConfigJSON: []byte(`{"ports":1}`),
		MemoHit: true, Cycles: 10_000, Insts: 8_000,
		PortUtilization: 0.4, PortRejectRate: 0.2,
	})
	c.CellDone(CellSample{
		Machine: "baseline-1port", Workload: "compress", ConfigJSON: []byte(`{"ports":1}`),
		WallSeconds: 0.5, Cycles: 10_000, Insts: 8_000,
		PortUtilization: 0.4, PortRejectRate: 0.2,
	})
	b := c.BuildManifest(sampleInfo())

	// Wall-second fields differ only via info (identical here); everything
	// else must match cell for cell.
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if !reflect.DeepEqual(a.Cells[i], b.Cells[i]) {
			t.Errorf("cell %d differs:\n%+v\n%+v", i, a.Cells[i], b.Cells[i])
		}
	}
	if a.ConfigHash != b.ConfigHash {
		t.Errorf("config hashes differ: %s vs %s", a.ConfigHash, b.ConfigHash)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleCampaign().BuildManifest(sampleInfo())
	path := filepath.Join(t.TempDir(), "MANIFEST.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema || got.Totals != m.Totals || len(got.Cells) != len(m.Cells) {
		t.Errorf("round trip drifted: %+v", got)
	}
}

func TestManifestValidateRejectsCorruption(t *testing.T) {
	fresh := func() *Manifest { return sampleCampaign().BuildManifest(sampleInfo()) }
	cases := []struct {
		name    string
		corrupt func(*Manifest)
		wantErr string
	}{
		{"schema", func(m *Manifest) { m.Schema = "portsim-manifest/v0" }, "schema"},
		{"timestamp", func(m *Manifest) { m.CreatedAt = "yesterday" }, "RFC 3339"},
		{"no workloads", func(m *Manifest) { m.Workloads = nil }, "no workloads"},
		{"zero insts", func(m *Manifest) { m.Insts = 0 }, "instruction budget"},
		{"parallel", func(m *Manifest) { m.Parallel = 0 }, "parallel"},
		{"cell names", func(m *Manifest) { m.Cells[0].Workload = "" }, "missing workload"},
		{"config hash", func(m *Manifest) { m.Cells[0].ConfigHash = "" }, "config_hash"},
		{"outcome", func(m *Manifest) { m.Cells[0].Outcome = "maybe" }, "unknown outcome"},
		{"ok with error", func(m *Manifest) {
			for i := range m.Cells {
				if m.Cells[i].Outcome == OutcomeOK {
					m.Cells[i].Error = "spurious"
					return
				}
			}
		}, "outcome ok but error"},
		{"failed without error", func(m *Manifest) {
			for i := range m.Cells {
				if m.Cells[i].Outcome == OutcomeFailed {
					m.Cells[i].Error = ""
					return
				}
			}
		}, "without an error"},
		{"totals", func(m *Manifest) { m.Totals.SimCycles++ }, "disagree"},
		{"negative wall", func(m *Manifest) { m.Cells[0].WallSeconds = -1 }, "negative wall_seconds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := fresh()
			tc.corrupt(m)
			err := m.Validate()
			if err == nil {
				t.Fatal("corruption accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// storeCampaign is sampleCampaign plus one cell restored from the durable
// store.
func storeCampaign() *Campaign {
	c := sampleCampaign()
	c.CellDone(CellSample{
		Machine: "4-port", Workload: "eqntott", ConfigJSON: []byte(`{"ports":4}`),
		StoreHit: true, Cycles: 7_000, Insts: 6_000,
		PortUtilization: 0.2, PortRejectRate: 0.01,
	})
	return c
}

// TestManifestStoreSummary pins the durable-store accounting: restored
// cells count as store hits, stay out of the simulated-work totals, and the
// campaign-level store summary survives the round trip.
func TestManifestStoreSummary(t *testing.T) {
	c := storeCampaign()
	if c.StoreHits() != 1 {
		t.Fatalf("StoreHits() = %d, want 1", c.StoreHits())
	}
	info := sampleInfo()
	info.Store = &ManifestStore{Dir: "cells", Resumed: true, Hits: 1, Misses: 2, Puts: 2}
	m := c.BuildManifest(info)
	if err := m.Validate(); err != nil {
		t.Fatalf("built manifest invalid: %v", err)
	}
	if m.Totals.StoreHits != 1 || m.Totals.Cells != 5 {
		t.Errorf("totals = %+v, want 1 store hit over 5 cells", m.Totals)
	}
	// The restored cell's cycles must not inflate the simulated totals.
	if m.Totals.SimCycles != 15_000 || m.Totals.SimInsts != 12_500 {
		t.Errorf("sim totals = %d/%d, want 15000/12500", m.Totals.SimCycles, m.Totals.SimInsts)
	}
	path := filepath.Join(t.TempDir(), "MANIFEST.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Store == nil || *got.Store != *info.Store {
		t.Errorf("store summary drifted: %+v", got.Store)
	}
}

// TestManifestStoreValidation covers the store-specific corruption shapes.
func TestManifestStoreValidation(t *testing.T) {
	// fresh rebuilds from scratch every time: BuildManifest passes the
	// ManifestStore pointer through, so a corrupting case must not leak its
	// mutation into the next one.
	fresh := func() *Manifest {
		info := sampleInfo()
		info.Store = &ManifestStore{Dir: "cells", Hits: 1, Misses: 2, Puts: 2}
		return storeCampaign().BuildManifest(info)
	}

	m := fresh()
	m.Store = nil
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "without a store summary") {
		t.Errorf("store hits without a summary accepted: %v", err)
	}

	m = fresh()
	m.Store.Dir = ""
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "without a directory") {
		t.Errorf("store summary without dir accepted: %v", err)
	}

	m = fresh()
	m.Store.Hits = 0
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "store reports only") {
		t.Errorf("more store-hit cells than store hits accepted: %v", err)
	}

	m = fresh()
	for i := range m.Cells {
		if m.Cells[i].StoreHit {
			m.Cells[i].MemoHit = true
		}
	}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "both memo_hit and store_hit") {
		t.Errorf("cell with both hit kinds accepted: %v", err)
	}
}

// TestManifestArenasSummary: the trace-arena summary survives the round
// trip and the validator rejects the implausible shapes.
func TestManifestArenasSummary(t *testing.T) {
	info := sampleInfo()
	info.Arenas = &ManifestArenas{
		BudgetBytes: 512 << 20, Count: 2, Bytes: 61_440,
		Builds: 2, Hits: 9, Fallbacks: 1, Evictions: 0,
	}
	m := sampleCampaign().BuildManifest(info)
	if err := m.Validate(); err != nil {
		t.Fatalf("built manifest invalid: %v", err)
	}
	path := filepath.Join(t.TempDir(), "MANIFEST.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arenas == nil || *got.Arenas != *info.Arenas {
		t.Errorf("arena summary drifted: %+v", got.Arenas)
	}

	fresh := func() *Manifest {
		i := sampleInfo()
		i.Arenas = &ManifestArenas{BudgetBytes: 1 << 20, Count: 1, Bytes: 100, Builds: 1, Hits: 3}
		return sampleCampaign().BuildManifest(i)
	}
	cases := []struct {
		name    string
		corrupt func(*ManifestArenas)
		want    string
	}{
		{"zero budget", func(a *ManifestArenas) { a.BudgetBytes = 0 }, "budget"},
		{"over budget", func(a *ManifestArenas) { a.Bytes = 2 << 20 }, "exceeds budget"},
		{"count without bytes", func(a *ManifestArenas) { a.Bytes = 0 }, "zero bytes"},
		{"count over builds", func(a *ManifestArenas) { a.Count = 5 }, "only 1 builds"},
	}
	for _, c := range cases {
		m := fresh()
		c.corrupt(m.Arenas)
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s accepted: %v", c.name, err)
		}
	}
}

func TestWriteManifestRefusesInvalid(t *testing.T) {
	m := sampleCampaign().BuildManifest(sampleInfo())
	m.Schema = "nope"
	if err := WriteManifest(filepath.Join(t.TempDir(), "m.json"), m); err == nil {
		t.Fatal("invalid manifest written")
	}
}

// TestHashConfigMatchesCellstore pins the deliberate duplication: the
// durable cell store computes config hashes with its own copy of this
// algorithm (it must not import the telemetry layer), and resume identity
// depends on the two never drifting apart.
func TestHashConfigMatchesCellstore(t *testing.T) {
	for _, doc := range []string{`{}`, `{"name":"baseline-1port","ports":1}`, ""} {
		if got, want := cellstore.HashConfig([]byte(doc)), HashConfig([]byte(doc)); got != want {
			t.Errorf("HashConfig(%q): cellstore %s, telemetry %s", doc, got, want)
		}
	}
}
