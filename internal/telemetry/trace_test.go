package telemetry

import (
	"encoding/json"
	"testing"

	"portsim/internal/diag"
)

// sampleEvents is a port-conflict vignette: two grants and a drain in one
// cycle on a 2-lane machine (one access stacked per lane plus overflow
// pressure), a reject, pipeline activity around it.
func sampleEvents() []diag.Event {
	return []diag.Event{
		{Cycle: 10, Kind: diag.EventFetch, Seq: 1, Addr: 0x1000},
		{Cycle: 10, Kind: diag.EventIssue, Seq: 1, Addr: 0x2000},
		{Cycle: 11, Kind: diag.EventGrant, Seq: 1, Addr: 0x2000},
		{Cycle: 11, Kind: diag.EventGrant, Seq: 2, Addr: 0x2008},
		{Cycle: 11, Kind: diag.EventReject, Seq: 3, Addr: 0x2010},
		{Cycle: 12, Kind: diag.EventDrain, Seq: 4, Addr: 0x3000},
		{Cycle: 12, Kind: diag.EventCommit, Seq: 1, Addr: 0x1000},
		{Cycle: 13, Kind: diag.EventStall, Seq: 5, Addr: 0x4000},
	}
}

func sampleMeta() TraceMeta {
	return TraceMeta{Machine: "2-port", Workload: "compress", Seed: 42, Lanes: 2, Dropped: 100, Total: 108}
}

// TestTraceStructurallyValid is the acceptance-criterion test: the encoded
// JSON must parse as a trace-event document whose events all carry
// pid/tid/ph/ts (metadata events excepted for ts) with ts monotonically
// non-decreasing per (pid, tid) track — the properties Perfetto's importer
// requires.
func TestTraceStructurallyValid(t *testing.T) {
	tr, err := BuildTrace(sampleEvents(), sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Re-parse generically, as a trace viewer would.
	var doc struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	type track struct{ pid, tid int }
	lastTs := map[track]float64{}
	phases := map[string]int{}
	for i, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if name == "" || ph == "" {
			t.Fatalf("event %d missing name or ph: %v", i, ev)
		}
		pid, okPid := ev["pid"].(float64)
		if !okPid {
			t.Fatalf("event %d missing pid: %v", i, ev)
		}
		phases[ph]++
		if ph == "M" {
			continue
		}
		tid, okTid := ev["tid"].(float64)
		if !okTid {
			t.Fatalf("event %d missing tid: %v", i, ev)
		}
		ts, okTs := ev["ts"].(float64)
		if !okTs {
			t.Fatalf("event %d missing ts: %v", i, ev)
		}
		tr := track{int(pid), int(tid)}
		if prev, seen := lastTs[tr]; seen && ts < prev {
			t.Errorf("event %d: ts %v regressed below %v on track %v", i, ts, prev, tr)
		}
		lastTs[tr] = ts
	}
	for _, ph := range []string{"M", "i", "X"} {
		if phases[ph] == 0 {
			t.Errorf("no %q-phase events in trace", ph)
		}
	}
	if doc.OtherData["eventsDropped"] != "100" {
		t.Errorf("otherData eventsDropped = %q, want 100", doc.OtherData["eventsDropped"])
	}
}

// TestTraceLaneAssignment pins the per-port lane semantics: same-cycle
// grants occupy distinct lanes, rejects live on their own track above the
// lanes, and pipeline events stay in the pipeline process.
func TestTraceLaneAssignment(t *testing.T) {
	tr, err := BuildTrace(sampleEvents(), sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	var grantTids []int
	var rejectTid, drainTid int
	for _, ev := range tr.TraceEvents {
		switch ev.Name {
		case "grant":
			if ev.Pid != portsPid || ev.Ph != "X" || ev.Dur != 1 {
				t.Errorf("grant not an X/dur=1 event in the ports process: %+v", ev)
			}
			grantTids = append(grantTids, ev.Tid)
		case "reject":
			rejectTid = ev.Tid
			if ev.Ph != "i" {
				t.Errorf("reject is %q, want instant", ev.Ph)
			}
		case "drain":
			drainTid = ev.Tid
		case "fetch", "issue", "commit", "commit-stall":
			if ev.Pid != pipelinePid {
				t.Errorf("%s event outside the pipeline process: %+v", ev.Name, ev)
			}
		}
	}
	if len(grantTids) != 2 || grantTids[0] == grantTids[1] {
		t.Errorf("same-cycle grants share a lane: tids %v", grantTids)
	}
	if rejectTid != 3 { // lanes 1..2, rejects above
		t.Errorf("reject tid = %d, want 3", rejectTid)
	}
	if drainTid != 1 { // new cycle resets the lane rotation
		t.Errorf("drain tid = %d, want 1", drainTid)
	}
}

func TestBuildTraceRejectsUnsortedEvents(t *testing.T) {
	events := []diag.Event{
		{Cycle: 5, Kind: diag.EventCommit},
		{Cycle: 4, Kind: diag.EventCommit},
	}
	if _, err := BuildTrace(events, sampleMeta()); err == nil {
		t.Fatal("out-of-order events accepted")
	}
}

func TestBuildTraceEmptyAndZeroLanes(t *testing.T) {
	tr, err := BuildTrace(nil, TraceMeta{Machine: "m", Workload: "w"})
	if err != nil {
		t.Fatal(err)
	}
	// Metadata only, but still a loadable document.
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "M" {
			t.Errorf("unexpected non-metadata event in empty trace: %+v", ev)
		}
	}
	if _, err := tr.Encode(); err != nil {
		t.Fatal(err)
	}
}
