package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): for every metric a # HELP and # TYPE
// line, then the samples; histograms expand into cumulative _bucket series
// with le labels, plus _sum and _count. Metrics appear in registration
// order, so the body is deterministic for a fixed snapshot.
func WritePrometheus(w io.Writer, snap []MetricSnapshot) error {
	for _, m := range snap {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		switch m.Kind {
		case string(kindCounter):
			if _, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.IntValue); err != nil {
				return err
			}
		case string(kindGauge):
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value)); err != nil {
				return err
			}
		case string(kindHistogram):
			for _, b := range m.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, formatBound(b.UpperBound), b.Cumulative); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.Name, formatFloat(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", m.Name, m.Count); err != nil {
				return err
			}
		default:
			return fmt.Errorf("telemetry: unknown metric kind %q for %s", m.Kind, m.Name)
		}
	}
	return nil
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBound renders a bucket upper bound for the le label.
func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
