package telemetry

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSnapshot builds the fixed registry state behind the golden file:
// one of every metric kind with hand-picked values, so the golden body
// pins HELP/TYPE lines, counter/gauge formatting, and cumulative histogram
// expansion all at once.
func goldenSnapshot() []MetricSnapshot {
	reg := NewRegistry()
	c := reg.Counter("portsim_cells_done_total", "Experiment cells completed.")
	c.Add(37)
	g := reg.Gauge("portsim_sim_cycles_per_second", "Simulated cycles per wall second.")
	g.Set(1.25e6)
	reg.GaugeFunc("portsim_cells_planned", "Cells the suite will submit.", func() float64 { return 126 })
	h := reg.Histogram("portsim_port_utilization",
		"Mean fraction of port slots granted per cycle.",
		[]float64{0.25, 0.5, 0.75})
	for _, v := range []float64{0.1, 0.3, 0.3, 0.6, 0.9} {
		h.Observe(v)
	}
	return reg.Snapshot()
}

// TestPrometheusGolden pins the /metrics body byte-for-byte. Regenerate
// with `go test ./internal/telemetry -run Golden -update` after a
// deliberate format change.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus body drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusHistogramCumulative spells out the histogram contract
// separately from the golden bytes: buckets are cumulative, end at +Inf
// with the total count, and _count matches the +Inf bucket.
func TestPrometheusHistogramCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	wantLines := []string{
		`portsim_port_utilization_bucket{le="0.25"} 1`,
		`portsim_port_utilization_bucket{le="0.5"} 3`,
		`portsim_port_utilization_bucket{le="0.75"} 4`,
		`portsim_port_utilization_bucket{le="+Inf"} 5`,
		`portsim_port_utilization_count 5`,
		`# TYPE portsim_port_utilization histogram`,
		`# HELP portsim_cells_done_total Experiment cells completed.`,
		`# TYPE portsim_cells_done_total counter`,
		`# TYPE portsim_sim_cycles_per_second gauge`,
	}
	for _, line := range wantLines {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("missing line %q in body:\n%s", line, body)
		}
	}
	// Cumulative counts must never decrease down the bucket list.
	var last uint64
	for _, m := range goldenSnapshot() {
		if m.Kind != "histogram" {
			continue
		}
		last = 0
		for i, b := range m.Buckets {
			if b.Cumulative < last {
				t.Errorf("%s bucket %d regressed: %d after %d", m.Name, i, b.Cumulative, last)
			}
			last = b.Cumulative
		}
		if m.Buckets[len(m.Buckets)-1].Cumulative != m.Count {
			t.Errorf("%s +Inf bucket %d != count %d", m.Name, m.Buckets[len(m.Buckets)-1].Cumulative, m.Count)
		}
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	if got := formatFloat(1.5); got != "1.5" {
		t.Errorf("formatFloat(1.5) = %q", got)
	}
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatFloat(+Inf) = %q", got)
	}
	if got := formatFloat(math.Inf(-1)); got != "-Inf" {
		t.Errorf("formatFloat(-Inf) = %q", got)
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}
