package telemetry

import (
	"encoding/json"
	"fmt"
	"strconv"

	"portsim/internal/cpustack"
	"portsim/internal/diag"
)

// This file converts a flight-recorder tail into Chrome trace-event JSON,
// the format Perfetto and chrome://tracing load directly. The mapping:
// one process ("pipeline") carries instant tracks for fetch, issue, commit
// and commit-stall, plus a "cpi" counter track that steps between
// attribution buckets whenever cycle accounting was armed (the recorder
// stores one EventCPI per bucket transition, so the counter renders the
// active bucket as a 0/1 square wave per bucket series); a second process
// ("cache ports") carries one lane per
// port slot — grants and store drains claim lanes in arrival order within
// each cycle, so a fully shaded lane row is a saturated port — plus a
// rejects track where every refused access shows as an instant. Simulated
// cycles are rendered as microseconds (1 cycle = 1us), giving Perfetto a
// familiar time axis; there is no wall time anywhere in a trace.

// Trace track geometry. Pipeline events live under pipelinePid, port
// events under portsPid; within the ports process, lanes occupy tids
// 1..Lanes and rejects sit just above them.
const (
	pipelinePid = 1
	portsPid    = 2

	tidFetch       = 1
	tidIssue       = 2
	tidCommit      = 3
	tidCommitStall = 4
)

// TraceMeta describes the cell a tail was captured from.
type TraceMeta struct {
	// Machine and Workload name the cell.
	Machine  string
	Workload string
	// Seed is the workload generator seed.
	Seed int64
	// Lanes is the port subsystem's peak grants per cycle (ports, or banks
	// when banked) and sets the number of lane tracks.
	Lanes int
	// Dropped counts events lost to ring wraparound before the tail, and
	// Total the events ever recorded, so the trace states exactly which
	// window of history it shows.
	Dropped uint64
	Total   uint64
}

// TraceEvent is one Chrome trace-event object. Field names and the ph
// phase codes are fixed by the trace-event format; every event the
// exporter emits is either M (metadata), i (instant) or X (complete, with
// a duration).
type TraceEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat,omitempty"`
	Ph    string  `json:"ph"`
	Ts    float64 `json:"ts"`
	Dur   float64 `json:"dur,omitempty"`
	Pid   int     `json:"pid"`
	Tid   int     `json:"tid"`
	Scope string  `json:"s,omitempty"`
	Args  any     `json:"args,omitempty"`
}

// eventArgs annotates a pipeline or port event.
type eventArgs struct {
	Seq  uint64 `json:"seq"`
	Addr string `json:"addr"`
}

// nameArgs annotates a metadata event.
type nameArgs struct {
	Name string `json:"name"`
}

// Trace is a complete trace-event JSON document.
type Trace struct {
	TraceEvents []TraceEvent      `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

// BuildTrace converts a flight-recorder tail into a trace. The events must
// be in recording order (non-decreasing cycles), which is what
// diag.Recorder.Events returns even after wraparound; a regression there
// would silently scramble every track, so it is re-checked here and
// reported as an error rather than trusted.
func BuildTrace(events []diag.Event, meta TraceMeta) (*Trace, error) {
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			return nil, fmt.Errorf("telemetry: flight-recorder events out of cycle order at index %d: cycle %d after %d",
				i, events[i].Cycle, events[i-1].Cycle)
		}
	}
	lanes := meta.Lanes
	if lanes < 1 {
		lanes = 1
	}
	tidRejects := lanes + 1

	t := &Trace{
		TraceEvents: make([]TraceEvent, 0, len(events)+8+lanes),
		OtherData: map[string]string{
			"machine":        meta.Machine,
			"workload":       meta.Workload,
			"seed":           strconv.FormatInt(meta.Seed, 10),
			"events":         strconv.Itoa(len(events)),
			"eventsRecorded": strconv.FormatUint(meta.Total, 10),
			"eventsDropped":  strconv.FormatUint(meta.Dropped, 10),
			"timeUnit":       "1us = 1 simulated cycle",
		},
	}

	procName := func(pid int, name string) {
		t.TraceEvents = append(t.TraceEvents, TraceEvent{
			Name: "process_name", Ph: "M", Pid: pid, Args: nameArgs{Name: name},
		})
	}
	threadName := func(pid, tid int, name string) {
		t.TraceEvents = append(t.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: nameArgs{Name: name},
		})
	}
	procName(pipelinePid, fmt.Sprintf("pipeline %s/%s", meta.Machine, meta.Workload))
	threadName(pipelinePid, tidFetch, "fetch")
	threadName(pipelinePid, tidIssue, "issue")
	threadName(pipelinePid, tidCommit, "commit")
	threadName(pipelinePid, tidCommitStall, "commit-stall")
	procName(portsPid, "cache ports")
	for lane := 1; lane <= lanes; lane++ {
		threadName(portsPid, lane, fmt.Sprintf("port lane %d", lane-1))
	}
	threadName(portsPid, tidRejects, "rejects")

	// prevCPI tracks the last attribution bucket seen, so each transition
	// closes the previous series (drops it to 0) as it raises the new one
	// — Perfetto counters hold their last value until told otherwise.
	prevCPI := -1

	// laneCycle/laneNext assign each cycle's grants and drains to lanes in
	// arrival order; a new cycle resets the rotation.
	laneCycle := uint64(0)
	laneNext := 0
	laneFor := func(cycle uint64) int {
		if cycle != laneCycle {
			laneCycle, laneNext = cycle, 0
		}
		lane := laneNext
		laneNext++
		if lane >= lanes {
			// More grants in one cycle than the configuration allows would
			// be a simulator bug; keep the trace loadable by stacking the
			// excess on the last lane.
			lane = lanes - 1
		}
		return lane + 1
	}

	for _, ev := range events {
		ts := float64(ev.Cycle)
		args := eventArgs{Seq: ev.Seq, Addr: "0x" + strconv.FormatUint(ev.Addr, 16)}
		switch ev.Kind {
		case diag.EventFetch:
			t.TraceEvents = append(t.TraceEvents, TraceEvent{
				Name: "fetch", Cat: "pipeline", Ph: "i", Ts: ts,
				Pid: pipelinePid, Tid: tidFetch, Scope: "t", Args: args,
			})
		case diag.EventIssue:
			t.TraceEvents = append(t.TraceEvents, TraceEvent{
				Name: "issue", Cat: "pipeline", Ph: "i", Ts: ts,
				Pid: pipelinePid, Tid: tidIssue, Scope: "t", Args: args,
			})
		case diag.EventCommit:
			t.TraceEvents = append(t.TraceEvents, TraceEvent{
				Name: "commit", Cat: "pipeline", Ph: "i", Ts: ts,
				Pid: pipelinePid, Tid: tidCommit, Scope: "t", Args: args,
			})
		case diag.EventStall:
			t.TraceEvents = append(t.TraceEvents, TraceEvent{
				Name: "commit-stall", Cat: "pipeline", Ph: "i", Ts: ts,
				Pid: pipelinePid, Tid: tidCommitStall, Scope: "t", Args: args,
			})
		case diag.EventGrant:
			t.TraceEvents = append(t.TraceEvents, TraceEvent{
				Name: "grant", Cat: "port", Ph: "X", Ts: ts, Dur: 1,
				Pid: portsPid, Tid: laneFor(ev.Cycle), Args: args,
			})
		case diag.EventDrain:
			t.TraceEvents = append(t.TraceEvents, TraceEvent{
				Name: "drain", Cat: "port", Ph: "X", Ts: ts, Dur: 1,
				Pid: portsPid, Tid: laneFor(ev.Cycle), Args: args,
			})
		case diag.EventCPI:
			b := cpustack.Bucket(ev.Seq)
			vals := make(map[string]uint64, 2)
			if prevCPI >= 0 && prevCPI != int(b) {
				vals[cpustack.Bucket(prevCPI).String()] = 0
			}
			vals[b.String()] = 1
			prevCPI = int(b)
			t.TraceEvents = append(t.TraceEvents, TraceEvent{
				Name: "cpi", Cat: "cpi", Ph: "C", Ts: ts,
				Pid: pipelinePid, Args: vals,
			})
		case diag.EventReject:
			t.TraceEvents = append(t.TraceEvents, TraceEvent{
				Name: "reject", Cat: "port", Ph: "i", Ts: ts,
				Pid: portsPid, Tid: tidRejects, Scope: "t", Args: args,
			})
		default:
			t.TraceEvents = append(t.TraceEvents, TraceEvent{
				Name: ev.Kind.String(), Cat: "other", Ph: "i", Ts: ts,
				Pid: pipelinePid, Tid: tidFetch, Scope: "t", Args: args,
			})
		}
	}
	return t, nil
}

// Encode renders the trace as JSON.
func (t *Trace) Encode() ([]byte, error) {
	return json.Marshal(t)
}
