package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"portsim/internal/cpustack"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerServesLiveMetricsMidRun is the acceptance-criterion test for
// the -listen endpoint: while cells are still completing, /metrics must
// serve the campaign gauges and successive scrapes must observe progress.
func TestServerServesLiveMetricsMidRun(t *testing.T) {
	reg := NewRegistry()
	camp := NewCampaign(reg, 64)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	cell := func(i int) CellSample {
		return CellSample{
			Machine:         "baseline-1port",
			Workload:        "compress",
			ConfigJSON:      []byte(fmt.Sprintf(`{"cell":%d}`, i)),
			WallSeconds:     0.01,
			Cycles:          1000,
			Insts:           800,
			PortUtilization: 0.4,
			PortRejectRate:  0.1,
		}
	}

	// First half of the campaign, then a mid-run scrape, then the rest
	// completing concurrently with more scrapes.
	for i := 0; i < 32; i++ {
		camp.CellDone(cell(i))
	}
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "portsim_cells_done_total 32\n") {
		t.Errorf("mid-run /metrics missing done=32:\n%s", body)
	}
	if !strings.Contains(body, "portsim_cells_planned 64\n") {
		t.Errorf("mid-run /metrics missing planned gauge:\n%s", body)
	}
	if !strings.Contains(body, "portsim_sim_cycles_total 32000\n") {
		t.Errorf("mid-run /metrics missing cycle total:\n%s", body)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 32; i < 64; i++ {
			camp.CellDone(cell(i))
		}
	}()
	for i := 0; i < 20; i++ {
		get(t, base+"/metrics") // must never error or race
	}
	wg.Wait()

	_, body = get(t, base+"/metrics")
	if !strings.Contains(body, "portsim_cells_done_total 64\n") {
		t.Errorf("final /metrics missing done=64:\n%s", body)
	}
	if !strings.Contains(body, `portsim_port_utilization_bucket{le="0.4"} 64`) {
		t.Errorf("final /metrics missing utilization histogram:\n%s", body)
	}
}

func TestServerVarsAndHealthz(t *testing.T) {
	reg := NewRegistry()
	camp := NewCampaign(reg, 2)
	camp.CellDone(CellSample{
		Machine: "m", Workload: "w", ConfigJSON: []byte("{}"),
		Failed: true, Error: "deadline",
		PortUtilization: -1, PortRejectRate: -1,
	})
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if health["status"] != "ok" {
		t.Errorf("health status = %v", health["status"])
	}

	code, body = get(t, base+"/vars")
	if code != http.StatusOK {
		t.Fatalf("/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if vars["portsim_cells_failed_total"] != float64(1) {
		t.Errorf("vars failed = %v, want 1", vars["portsim_cells_failed_total"])
	}
	hist, ok := vars["portsim_cell_wall_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("vars histogram missing: %v", vars["portsim_cell_wall_seconds"])
	}
	if _, ok := hist["buckets"]; !ok {
		t.Error("vars histogram has no buckets")
	}
}

func TestServeBadAddress(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", NewRegistry()); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestServerShutdownReleasesPort pins the graceful-shutdown contract: after
// Shutdown returns, the exact address the server held must be immediately
// bindable by a new server — no lingering listener, no TIME_WAIT surprise
// from the server's own socket.
func TestServerShutdownReleasesPort(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if code, _ := get(t, "http://"+addr+"/healthz"); code != http.StatusOK {
		t.Fatalf("pre-shutdown /healthz status %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still answering after Shutdown")
	}
	srv2, err := Serve(addr, reg)
	if err != nil {
		t.Fatalf("rebinding %s after shutdown: %v", addr, err)
	}
	defer srv2.Close()
	if code, _ := get(t, "http://"+addr+"/healthz"); code != http.StatusOK {
		t.Fatalf("rebound /healthz status %d", code)
	}
}

// TestServerCampaignEndpoint covers the live status plane: /campaign is a
// 404 until a campaign attaches, then reports running cells with their
// live accounting stacks and completed cells with their frozen ones, and
// /debug/pprof answers on the same mux.
func TestServerCampaignEndpoint(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, _ := get(t, base+"/campaign"); code != http.StatusNotFound {
		t.Errorf("/campaign without a campaign: status %d, want 404", code)
	}

	camp := NewCampaign(reg, 3)
	camp.EnableCPIStack(reg)
	srv.SetCampaign(camp)

	stack := cpustack.NewStack()
	stack.Charge(cpustack.Useful, 700)
	stack.Charge(cpustack.StoreBufferFull, 300)
	camp.CellStarted(CellStartSample{
		Machine: "baseline-1port", Workload: "compress",
		ConfigJSON: []byte(`{"ports":1}`), Experiment: "F1", Stack: stack,
	})
	camp.CellDone(CellSample{
		Machine: "dual-port", Workload: "eqntott", ConfigJSON: []byte(`{"ports":2}`),
		WallSeconds: 0.1, Cycles: 1000, Insts: 900,
		PortUtilization: 0.5, PortRejectRate: 0.1,
		CPIStack: stack.Snapshot(),
	})

	code, body := get(t, base+"/campaign")
	if code != http.StatusOK {
		t.Fatalf("/campaign status %d", code)
	}
	var st CampaignStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/campaign not JSON: %v\n%s", err, body)
	}
	if st.Schema != CampaignStatusSchema || st.Planned != 3 || st.Done != 1 {
		t.Errorf("status headline wrong: %+v", st)
	}
	if st.Pending != 1 { // 3 planned - 1 done - 1 running
		t.Errorf("pending = %d, want 1", st.Pending)
	}
	if len(st.Running) != 1 || st.Running[0].Workload != "compress" ||
		st.Running[0].Experiment != "F1" || st.Running[0].Cycles != 1000 {
		t.Errorf("running cells wrong: %+v", st.Running)
	}
	if st.Running[0].CPIStack["useful"] != 700 {
		t.Errorf("running cell live stack wrong: %+v", st.Running[0].CPIStack)
	}
	if len(st.Cells) != 1 || st.Cells[0].State != "ok" || st.Cells[0].CPIStack["store-buffer-full"] != 300 {
		t.Errorf("done cells wrong: %+v", st.Cells)
	}

	// The live stack keeps moving after the snapshot: /campaign must see
	// the new total on the next scrape.
	stack.Charge(cpustack.MemFillWait, 500)
	_, body = get(t, base+"/campaign")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Running[0].Cycles != 1500 {
		t.Errorf("second scrape cycles = %d, want 1500", st.Running[0].Cycles)
	}

	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}

	// Completing the running cell moves it out of the running set.
	camp.CellDone(CellSample{
		Machine: "baseline-1port", Workload: "compress", ConfigJSON: []byte(`{"ports":1}`),
		WallSeconds: 0.2, Cycles: 1500, Insts: 1200,
		PortUtilization: 0.4, PortRejectRate: 0.2,
		CPIStack: stack.Snapshot(),
	})
	_, body = get(t, base+"/campaign")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Running) != 0 || st.Done != 2 {
		t.Errorf("after completion: %d running, %d done; want 0, 2", len(st.Running), st.Done)
	}
}
