package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerServesLiveMetricsMidRun is the acceptance-criterion test for
// the -listen endpoint: while cells are still completing, /metrics must
// serve the campaign gauges and successive scrapes must observe progress.
func TestServerServesLiveMetricsMidRun(t *testing.T) {
	reg := NewRegistry()
	camp := NewCampaign(reg, 64)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	cell := func(i int) CellSample {
		return CellSample{
			Machine:         "baseline-1port",
			Workload:        "compress",
			ConfigJSON:      []byte(fmt.Sprintf(`{"cell":%d}`, i)),
			WallSeconds:     0.01,
			Cycles:          1000,
			Insts:           800,
			PortUtilization: 0.4,
			PortRejectRate:  0.1,
		}
	}

	// First half of the campaign, then a mid-run scrape, then the rest
	// completing concurrently with more scrapes.
	for i := 0; i < 32; i++ {
		camp.CellDone(cell(i))
	}
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "portsim_cells_done_total 32\n") {
		t.Errorf("mid-run /metrics missing done=32:\n%s", body)
	}
	if !strings.Contains(body, "portsim_cells_planned 64\n") {
		t.Errorf("mid-run /metrics missing planned gauge:\n%s", body)
	}
	if !strings.Contains(body, "portsim_sim_cycles_total 32000\n") {
		t.Errorf("mid-run /metrics missing cycle total:\n%s", body)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 32; i < 64; i++ {
			camp.CellDone(cell(i))
		}
	}()
	for i := 0; i < 20; i++ {
		get(t, base+"/metrics") // must never error or race
	}
	wg.Wait()

	_, body = get(t, base+"/metrics")
	if !strings.Contains(body, "portsim_cells_done_total 64\n") {
		t.Errorf("final /metrics missing done=64:\n%s", body)
	}
	if !strings.Contains(body, `portsim_port_utilization_bucket{le="0.4"} 64`) {
		t.Errorf("final /metrics missing utilization histogram:\n%s", body)
	}
}

func TestServerVarsAndHealthz(t *testing.T) {
	reg := NewRegistry()
	camp := NewCampaign(reg, 2)
	camp.CellDone(CellSample{
		Machine: "m", Workload: "w", ConfigJSON: []byte("{}"),
		Failed: true, Error: "deadline",
		PortUtilization: -1, PortRejectRate: -1,
	})
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if health["status"] != "ok" {
		t.Errorf("health status = %v", health["status"])
	}

	code, body = get(t, base+"/vars")
	if code != http.StatusOK {
		t.Fatalf("/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if vars["portsim_cells_failed_total"] != float64(1) {
		t.Errorf("vars failed = %v, want 1", vars["portsim_cells_failed_total"])
	}
	hist, ok := vars["portsim_cell_wall_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("vars histogram missing: %v", vars["portsim_cell_wall_seconds"])
	}
	if _, ok := hist["buckets"]; !ok {
		t.Error("vars histogram has no buckets")
	}
}

func TestServeBadAddress(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", NewRegistry()); err == nil {
		t.Fatal("bad address accepted")
	}
}
