package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter")
	g := reg.Gauge("g", "a gauge")
	c.Inc()
	c.Add(41)
	g.Set(2.5)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	if g.Value() != 2.5 {
		t.Errorf("gauge = %v, want 2.5", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "a histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d metrics, want 1", len(snap))
	}
	m := snap[0]
	if m.Count != 5 {
		t.Errorf("count = %d, want 5", m.Count)
	}
	if want := 0.5 + 1 + 1.5 + 3 + 100; m.Sum != want {
		t.Errorf("sum = %v, want %v", m.Sum, want)
	}
	// Cumulative: <=1 holds 0.5 and 1; <=2 adds 1.5; <=4 adds 3; +Inf adds
	// 100.
	wantCum := []uint64{2, 3, 4, 5}
	if len(m.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(m.Buckets), len(wantCum))
	}
	for i, b := range m.Buckets {
		if b.Cumulative != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Cumulative, wantCum[i])
		}
	}
	if !math.IsInf(m.Buckets[len(m.Buckets)-1].UpperBound, 1) {
		t.Error("last bucket bound is not +Inf")
	}
}

func TestSnapshotIsRegistrationOrdered(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_total", "")
	reg.Gauge("aa", "")
	reg.GaugeFunc("mm", "", func() float64 { return 7 })
	snap := reg.Snapshot()
	want := []string{"zz_total", "aa", "mm"}
	for i, m := range snap {
		if m.Name != want[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, m.Name, want[i])
		}
	}
	if snap[2].Value != 7 {
		t.Errorf("gauge func value = %v, want 7", snap[2].Value)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"", "1abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", name)
				}
			}()
			reg.Counter(name, "")
		}()
	}
	reg.Counter("dup", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate name accepted")
			}
		}()
		reg.Gauge("dup", "")
	}()
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	reg := NewRegistry()
	for i, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds case %d accepted", i)
				}
			}()
			reg.Histogram("h", "", bounds)
		}()
	}
}

// TestConcurrentUpdates exercises the registry under the race detector the
// way a campaign does: workers updating, a scraper snapshotting.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	h := reg.Histogram("h", "", []float64{1, 10})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			reg.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 4000 {
		t.Errorf("counter = %d, want 4000", c.Value())
	}
	snap := reg.Snapshot()
	if snap[1].Count != 4000 {
		t.Errorf("histogram count = %d, want 4000", snap[1].Count)
	}
}
