package telemetry

import (
	"encoding/json"
	"math"
	"net"
	"net/http"
	"time"
)

// Server publishes a registry over HTTP: /metrics (Prometheus text),
// /vars (expvar-style JSON), /healthz (liveness). It is the opt-in side
// channel behind `portbench -listen`; nothing in the simulator ever talks
// to it — scrapes only read registry snapshots.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	reg   *Registry
	start time.Time
}

// Serve binds addr (host:port; :0 picks a free port) and serves the
// registry until Close. It returns once the listener is bound, so the
// caller can report the concrete address before the campaign starts.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, reg: reg, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/vars", s.handleVars)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (concrete even for :0 requests).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, s.reg.Snapshot())
}

// handleVars renders the snapshot as a single JSON object keyed by metric
// name, in the spirit of expvar: scalars for counters and gauges, an
// object with buckets/sum/count for histograms. Non-finite gauge values
// are stringified, since JSON has no Inf/NaN.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	snap := s.reg.Snapshot()
	vars := make(map[string]any, len(snap))
	for _, m := range snap {
		switch m.Kind {
		case string(kindCounter):
			vars[m.Name] = m.IntValue
		case string(kindGauge):
			if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
				vars[m.Name] = formatFloat(m.Value)
			} else {
				vars[m.Name] = m.Value
			}
		case string(kindHistogram):
			buckets := make([]map[string]any, len(m.Buckets))
			for i, b := range m.Buckets {
				buckets[i] = map[string]any{
					"le":         formatBound(b.UpperBound),
					"cumulative": b.Cumulative,
				}
			}
			vars[m.Name] = map[string]any{
				"buckets": buckets,
				"sum":     m.Sum,
				"count":   m.Count,
			}
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(vars)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}
