package telemetry

import (
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Server publishes a registry over HTTP: /metrics (Prometheus text),
// /vars (expvar-style JSON), /healthz (liveness), /campaign (live
// campaign status) and /debug/pprof (runtime profiles, with simulations
// labelled by cell and experiment). It is the opt-in side channel behind
// `portbench -listen`; nothing in the simulator ever talks to it —
// scrapes only read registry snapshots and campaign atomics.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	reg      *Registry
	start    time.Time
	campaign atomic.Pointer[Campaign]
}

// Serve binds addr (host:port; :0 picks a free port) and serves the
// registry until Close or Shutdown. It returns once the listener is
// bound, so the caller can report the concrete address before the
// campaign starts.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, reg: reg, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/vars", s.handleVars)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/campaign", s.handleCampaign)
	// pprof does not register itself here: the package-level handlers go to
	// http.DefaultServeMux, which this server never uses, so they are wired
	// explicitly. Profiles of a live campaign carry the runner's pprof
	// labels (cell, experiment, workload, machine).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	return s, nil
}

// SetCampaign attaches the campaign /campaign reports on. Safe to call at
// any time, including never (the endpoint then reports no campaign).
func (s *Server) SetCampaign(c *Campaign) { s.campaign.Store(c) }

// Addr returns the bound listen address (concrete even for :0 requests).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately and releases the port.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown gracefully stops the server: the listener closes at once (the
// port is released), then in-flight scrapes run to completion within the
// context's deadline.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// handleCampaign serves the live campaign status document.
func (s *Server) handleCampaign(w http.ResponseWriter, _ *http.Request) {
	c := s.campaign.Load()
	if c == nil {
		http.Error(w, `{"error":"no campaign attached"}`, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.Status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, s.reg.Snapshot())
}

// handleVars renders the snapshot as a single JSON object keyed by metric
// name, in the spirit of expvar: scalars for counters and gauges, an
// object with buckets/sum/count for histograms. Non-finite gauge values
// are stringified, since JSON has no Inf/NaN.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	snap := s.reg.Snapshot()
	vars := make(map[string]any, len(snap))
	for _, m := range snap {
		switch m.Kind {
		case string(kindCounter):
			vars[m.Name] = m.IntValue
		case string(kindGauge):
			if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
				vars[m.Name] = formatFloat(m.Value)
			} else {
				vars[m.Name] = m.Value
			}
		case string(kindHistogram):
			buckets := make([]map[string]any, len(m.Buckets))
			for i, b := range m.Buckets {
				buckets[i] = map[string]any{
					"le":         formatBound(b.UpperBound),
					"cumulative": b.Cumulative,
				}
			}
			vars[m.Name] = map[string]any{
				"buckets": buckets,
				"sum":     m.Sum,
				"count":   m.Count,
			}
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(vars)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}
