package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"runtime"
	"sort"
	"sync"
	"time"
)

// CellSample is the end-of-cell snapshot the experiment runner's observer
// delivers: cell identity, outcome and the port-level rates derived from
// the cell's final stats.Set. Nothing here is sampled mid-simulation — the
// hot loop stays untouched whether telemetry is on or off.
type CellSample struct {
	Machine    string
	Workload   string
	ConfigJSON []byte

	MemoHit bool
	// StoreHit marks a cell restored from the durable cell store. Like a
	// memo hit it was not simulated in this run: its cycles, instructions
	// and (zero) wall time stay out of the simulation-rate metrics.
	StoreHit bool
	Failed   bool
	Error    string

	WallSeconds float64
	Cycles      uint64
	Insts       uint64

	// PortUtilization is the mean fraction of port slots granted per
	// cycle, PortRejectRate the fraction of port offers refused; negative
	// values mean "unknown" (failed cell) and are not observed.
	PortUtilization float64
	PortRejectRate  float64
}

// Campaign accumulates a run's telemetry: the live registry metrics served
// by -listen and the per-cell rows a manifest is built from. It is safe
// for concurrent use by the runner's worker pool.
type Campaign struct {
	start        time.Time
	startMallocs uint64

	cellsPlanned *Gauge
	cellsDone    *Counter
	cellsFailed  *Counter
	memoHits     *Counter
	storeHits    *Counter
	simCycles    *Counter
	simInsts     *Counter
	wallHist     *Histogram
	utilHist     *Histogram
	rejectHist   *Histogram

	mu    sync.Mutex
	cells []ManifestCell
}

// mallocCount reads the runtime's cumulative allocation counter.
func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// NewCampaign registers the campaign metric set on reg and returns the
// accumulator. planned is the number of cells the selected experiments
// will submit (0 when unknown).
func NewCampaign(reg *Registry, planned int) *Campaign {
	c := &Campaign{
		start:        time.Now(),
		startMallocs: mallocCount(),

		cellsPlanned: reg.Gauge("portsim_cells_planned",
			"Experiment cells the selected suite will submit."),
		cellsDone: reg.Counter("portsim_cells_done_total",
			"Experiment cells completed (simulated, memoised or failed)."),
		cellsFailed: reg.Counter("portsim_cells_failed_total",
			"Experiment cells that failed (panic, deadline, watchdog stall)."),
		memoHits: reg.Counter("portsim_cells_memo_hits_total",
			"Experiment cells satisfied from the runner's memo cache."),
		storeHits: reg.Counter("portsim_cells_store_hits_total",
			"Experiment cells restored from the durable cell store."),
		simCycles: reg.Counter("portsim_sim_cycles_total",
			"Simulated cycles across non-memoised cells."),
		simInsts: reg.Counter("portsim_sim_insts_total",
			"Committed instructions across non-memoised cells."),
		wallHist: reg.Histogram("portsim_cell_wall_seconds",
			"Wall-clock time per simulated (non-memoised) cell.",
			[]float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 120}),
		utilHist: reg.Histogram("portsim_port_utilization",
			"Mean fraction of cache-port slots granted per cycle, one sample per cell.",
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}),
		rejectHist: reg.Histogram("portsim_port_reject_rate",
			"Fraction of cache-port offers refused, one sample per cell.",
			[]float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1}),
	}
	c.cellsPlanned.Set(float64(planned))
	reg.GaugeFunc("portsim_sim_cycles_per_second",
		"Simulated cycles per wall second since campaign start.",
		func() float64 {
			secs := time.Since(c.start).Seconds()
			if secs <= 0 {
				return 0
			}
			return float64(c.simCycles.Value()) / secs
		})
	reg.GaugeFunc("portsim_allocs_per_1k_cycles",
		"Heap allocations per thousand simulated cycles since campaign start.",
		func() float64 {
			cycles := c.simCycles.Value()
			if cycles == 0 {
				return 0
			}
			allocs := mallocCount() - c.startMallocs //portlint:ignore cyclemath runtime.MemStats.Mallocs is monotonic and startMallocs sampled the earlier value
			return float64(allocs) / (float64(cycles) / 1000)
		})
	return c
}

// CellDone folds one completed cell into the metrics and the manifest
// rows.
func (c *Campaign) CellDone(s CellSample) {
	c.cellsDone.Inc()
	if s.Failed {
		c.cellsFailed.Inc()
	}
	if s.MemoHit {
		c.memoHits.Inc()
	} else if s.StoreHit {
		c.storeHits.Inc()
	} else if !s.Failed {
		c.simCycles.Add(s.Cycles)
		c.simInsts.Add(s.Insts)
		c.wallHist.Observe(s.WallSeconds)
		if s.PortUtilization >= 0 {
			c.utilHist.Observe(s.PortUtilization)
		}
		if s.PortRejectRate >= 0 {
			c.rejectHist.Observe(s.PortRejectRate)
		}
	}

	cell := ManifestCell{
		Workload:    s.Workload,
		Machine:     s.Machine,
		ConfigHash:  HashConfig(s.ConfigJSON),
		Outcome:     OutcomeOK,
		MemoHit:     s.MemoHit,
		StoreHit:    s.StoreHit,
		WallSeconds: s.WallSeconds,
		Cycles:      s.Cycles,
		Insts:       s.Insts,
	}
	if s.Failed {
		cell.Outcome = OutcomeFailed
		cell.Error = s.Error
		if cell.Error == "" {
			cell.Error = "unknown failure"
		}
	}
	c.mu.Lock()
	c.cells = append(c.cells, cell)
	c.mu.Unlock()
}

// Done returns the number of cells completed so far.
func (c *Campaign) Done() int { return int(c.cellsDone.Value()) }

// MemoHits returns how many completed cells were satisfied from the
// result memo instead of being simulated. Throughput and ETA estimates
// must exclude them: a memo hit completes in microseconds, so folding it
// into a per-cell rate makes the remaining full-cost cells look nearly
// free.
func (c *Campaign) MemoHits() int { return int(c.memoHits.Value()) }

// StoreHits returns how many completed cells were restored from the durable
// cell store. Like memo hits, they are excluded from throughput and ETA
// estimates: a restore costs one file read, not a simulation.
func (c *Campaign) StoreHits() int { return int(c.storeHits.Value()) }

// SimCycles returns the simulated-cycle total so far.
func (c *Campaign) SimCycles() uint64 { return c.simCycles.Value() }

// Elapsed returns the wall time since the campaign started.
func (c *Campaign) Elapsed() time.Duration { return time.Since(c.start) }

// ManifestInfo carries the campaign-level fields of a manifest that the
// accumulator cannot know itself.
type ManifestInfo struct {
	CreatedAt   time.Time
	Command     []string
	Seed        int64
	Insts       uint64
	Workloads   []string
	Parallel    int
	Experiments []string
	BenchJSON   string
	TraceOut    string
	Bundles     []string
	WallSeconds float64
	// Store is the durable-store summary, nil when the campaign ran
	// without one.
	Store *ManifestStore
	// Arenas is the trace-arena summary, nil when arenas were disabled.
	Arenas *ManifestArenas
}

// BuildManifest assembles the manifest from the accumulated cells. Cells
// are sorted by (workload, machine, config hash, memo-hit), so the
// document is deterministic regardless of worker-pool completion order.
func (c *Campaign) BuildManifest(info ManifestInfo) *Manifest {
	c.mu.Lock()
	cells := make([]ManifestCell, len(c.cells))
	copy(cells, c.cells)
	c.mu.Unlock()
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.ConfigHash != b.ConfigHash {
			return a.ConfigHash < b.ConfigHash
		}
		return !a.MemoHit && b.MemoHit
	})

	var totals ManifestTotals
	totals.WallSeconds = info.WallSeconds
	distinct := make(map[string]bool)
	for _, cell := range cells {
		totals.Cells++
		distinct[cell.ConfigHash] = true
		if cell.Outcome == OutcomeFailed {
			totals.Failed++
		}
		switch {
		case cell.MemoHit:
			totals.MemoHits++
		case cell.StoreHit:
			totals.StoreHits++
		case cell.Outcome == OutcomeOK:
			totals.SimCycles += cell.Cycles
			totals.SimInsts += cell.Insts
		}
	}

	return &Manifest{
		Schema:      ManifestSchema,
		CreatedAt:   info.CreatedAt.Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Command:     info.Command,
		Seed:        info.Seed,
		Insts:       info.Insts,
		Workloads:   info.Workloads,
		Parallel:    info.Parallel,
		Experiments: info.Experiments,
		ConfigHash:  campaignHash(info, distinct),
		BenchJSON:   info.BenchJSON,
		TraceOut:    info.TraceOut,
		Bundles:     info.Bundles,
		Store:       info.Store,
		Arenas:      info.Arenas,
		Cells:       cells,
		Totals:      totals,
	}
}

// campaignHash fingerprints the campaign inputs: seed, budget, workload
// list and the sorted set of distinct machine-configuration hashes.
func campaignHash(info ManifestInfo, distinct map[string]bool) string {
	hashes := make([]string, 0, len(distinct))
	for h := range distinct {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	payload, _ := json.Marshal(struct {
		Seed      int64    `json:"seed"`
		Insts     uint64   `json:"insts"`
		Workloads []string `json:"workloads"`
		Configs   []string `json:"configs"`
	}{info.Seed, info.Insts, info.Workloads, hashes})
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:6])
}
